// Tests for the channel substrate: plain / TLS-like / QKD channels and
// Bounded-Storage-Model key agreement.
#include <gtest/gtest.h>

#include "channel/bsm.h"
#include "channel/bsm_channel.h"
#include "channel/channel.h"
#include "channel/qkd_channel.h"
#include "channel/tls_channel.h"
#include "node/cluster.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

TEST(PlainChannel, PassthroughAndTranscript) {
  PlainChannel tx, rx;
  const Bytes msg = to_bytes(std::string_view("hello"));
  const Bytes frame = tx.seal(msg);
  EXPECT_EQ(rx.open(frame), msg);
  EXPECT_EQ(tx.transcript().frames.size(), 1u);
  // A cleartext transcript falls immediately.
  SchemeRegistry reg;
  EXPECT_EQ(tx.transcript().falls_at(reg), 0u);
}

TEST(TlsChannel, RoundTrip) {
  SimRng rng(1);
  auto [a, b] = TlsChannel::handshake(rng);
  const Bytes msg = to_bytes(std::string_view("shard payload"));
  EXPECT_EQ(b->open(a->seal(msg)), msg);
  // And the other direction.
  const Bytes msg2 = to_bytes(std::string_view("ack"));
  EXPECT_EQ(a->open(b->seal(msg2)), msg2);
}

TEST(TlsChannel, FramesAreNotPlaintext) {
  SimRng rng(2);
  auto [a, b] = TlsChannel::handshake(rng);
  const Bytes msg(100, 0x41);
  const Bytes frame = a->seal(msg);
  // The frame must not contain the plaintext run.
  const auto it = std::search(frame.begin(), frame.end(), msg.begin(),
                              msg.end());
  EXPECT_EQ(it, frame.end());
}

TEST(TlsChannel, TamperDetected) {
  SimRng rng(3);
  auto [a, b] = TlsChannel::handshake(rng);
  Bytes frame = a->seal(to_bytes(std::string_view("x")));
  frame[frame.size() / 2] ^= 1;
  EXPECT_THROW(b->open(frame), IntegrityError);
}

TEST(TlsChannel, ReplayDetected) {
  SimRng rng(4);
  auto [a, b] = TlsChannel::handshake(rng);
  const Bytes frame = a->seal(to_bytes(std::string_view("once")));
  EXPECT_NO_THROW(b->open(frame));
  EXPECT_THROW(b->open(frame), IntegrityError);
}

TEST(TlsChannel, MultiMessageSequence) {
  SimRng rng(5);
  auto [a, b] = TlsChannel::handshake(rng);
  for (int i = 0; i < 20; ++i) {
    const Bytes msg = to_bytes("msg " + std::to_string(i));
    EXPECT_EQ(b->open(a->seal(msg)), msg);
  }
  EXPECT_EQ(a->transcript().frames.size(), 21u);  // handshake + 20
}

TEST(TlsChannel, TranscriptFallsWithEitherScheme) {
  SimRng rng(6);
  auto [a, b] = TlsChannel::handshake(rng);
  a->seal(Bytes(10, 1));
  SchemeRegistry reg;
  EXPECT_EQ(a->transcript().falls_at(reg), kNever);
  reg.set_break_epoch(SchemeId::kAes256Ctr, 30);
  EXPECT_EQ(a->transcript().falls_at(reg), 30u);
  reg.set_break_epoch(SchemeId::kEcdhSecp256k1, 12);
  EXPECT_EQ(a->transcript().falls_at(reg), 12u);
}

TEST(QkdChannel, RoundTripAndItsClassification) {
  SimRng rng(7);
  auto res = QkdChannel::establish(4096, rng);
  ASSERT_FALSE(res.eavesdropper_detected);
  const Bytes msg = to_bytes(std::string_view("secret share"));
  EXPECT_EQ(res.right->open(res.left->seal(msg)), msg);
  EXPECT_EQ(res.left->security(), SecurityClass::kInformationTheoretic);
  // QKD transcripts never fall, under any break schedule.
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kAes256Ctr, 1);
  reg.set_break_epoch(SchemeId::kEcdhSecp256k1, 1);
  EXPECT_EQ(res.left->transcript().falls_at(reg), kNever);
}

TEST(QkdChannel, PadExhaustionIsAHardError) {
  SimRng rng(8);
  auto res = QkdChannel::establish(100, rng);
  // 100 bytes of pad: one 40-byte message costs 40 + 24; a second
  // exhausts the budget.
  EXPECT_NO_THROW(res.left->seal(Bytes(40, 1)));
  EXPECT_THROW(res.left->seal(Bytes(40, 1)), UnrecoverableError);
}

TEST(QkdChannel, TamperDetectedByOneTimeMac) {
  SimRng rng(9);
  auto res = QkdChannel::establish(1024, rng);
  Bytes frame = res.left->seal(to_bytes(std::string_view("qbit")));
  frame[4] ^= 1;
  EXPECT_THROW(res.right->open(frame), IntegrityError);
}

TEST(QkdChannel, EavesdropperDetectedWithHighProbability) {
  SimRng rng(10);
  int detected = 0;
  for (int i = 0; i < 100; ++i) {
    auto res = QkdChannel::establish(64, rng, /*eavesdropper=*/true,
                                     /*sample_bits=*/64);
    detected += res.eavesdropper_detected;
    if (res.eavesdropper_detected) {
      EXPECT_EQ(res.left, nullptr);  // no channel comes up
    }
  }
  // P(miss) = 0.75^64 ~ 1e-8: all 100 runs should detect.
  EXPECT_EQ(detected, 100);
}

TEST(QkdChannel, FramesCiphertextIndependentOfPlaintextPrefix) {
  // OTP: same plaintext twice yields different ciphertexts (fresh pad).
  SimRng rng(11);
  auto res = QkdChannel::establish(4096, rng);
  const Bytes msg(32, 0x7e);
  const Bytes f1 = res.left->seal(msg);
  const Bytes f2 = res.left->seal(msg);
  EXPECT_NE(f1, f2);
}

// ------------------------------------------------------------ BsmChannel

TEST(BsmChannel, RoundTripAndCostAccounting) {
  SimRng rng(20);
  BsmParams p;
  p.stream_words = 1 << 12;
  p.samples_per_party = 256;
  auto res = BsmChannel::establish(256, p, rng);
  ASSERT_NE(res.left, nullptr);
  EXPECT_GT(res.rounds, 0u);
  // The practicality number: beacon traffic dwarfs the pad distilled.
  EXPECT_GT(res.bytes_streamed, 256u * 100);

  const Bytes msg = to_bytes(std::string_view("bsm share"));
  EXPECT_EQ(res.right->open(res.left->seal(msg)), msg);
  EXPECT_EQ(res.left->security(), SecurityClass::kInformationTheoretic);
}

TEST(BsmChannel, PadExhaustionAndTamper) {
  SimRng rng(21);
  BsmParams p;
  p.stream_words = 1 << 12;
  p.samples_per_party = 256;
  auto res = BsmChannel::establish(64, p, rng);
  Bytes frame = res.left->seal(Bytes(30, 1));  // 30 + 24 pad used
  frame[6] ^= 1;  // flip a ciphertext byte (past the length prefix)
  EXPECT_THROW(res.right->open(frame), IntegrityError);
  EXPECT_THROW(res.left->seal(Bytes(30, 1)), UnrecoverableError);
}

TEST(BsmChannel, TranscriptNeverFalls) {
  SimRng rng(22);
  BsmParams p;
  p.stream_words = 1 << 12;
  p.samples_per_party = 256;
  auto res = BsmChannel::establish(128, p, rng);
  res.left->seal(Bytes(10, 2));
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kAes256Ctr, 1);
  reg.set_break_epoch(SchemeId::kEcdhSecp256k1, 1);
  EXPECT_EQ(res.left->transcript().falls_at(reg), kNever);
}

TEST(BsmChannel, ClusterTransportWorks) {
  Cluster cluster(2, ChannelKind::kBsm, 9);
  StoredBlob b;
  b.object = "x";
  b.shard_index = 0;
  b.data = Bytes(100, 7);
  EXPECT_EQ(cluster.upload(0, b), TransferStatus::kOk);
  const auto got = cluster.download(0, "x", 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data, Bytes(100, 7));
}

// ------------------------------------------------------------------- BSM

TEST(Bsm, HonestPartiesAgreeWithReasonableSampling) {
  SimRng rng(12);
  BsmParams p;
  p.stream_words = 1 << 16;
  p.samples_per_party = 1024;  // E[intersection] = 1024^2/65536 = 16
  p.adversary_words = 1 << 10;
  const auto res = bsm_key_agreement(p, BsmAdversaryStrategy::kRandom, rng);
  EXPECT_TRUE(res.agreed);
  EXPECT_GT(res.intersection_size, 0u);
  EXPECT_EQ(res.key.size(), 32u);
}

TEST(Bsm, BothEndpointsDeriveSameKeyMaterialDeterministically) {
  // The run derives one key from the common words; determinism across
  // identical seeds stands in for "both parties compute the same key".
  BsmParams p;
  p.stream_words = 1 << 14;
  p.samples_per_party = 512;
  SimRng r1(13), r2(13);
  const auto a = bsm_key_agreement(p, BsmAdversaryStrategy::kRandom, r1);
  const auto b = bsm_key_agreement(p, BsmAdversaryStrategy::kRandom, r2);
  ASSERT_TRUE(a.agreed);
  EXPECT_EQ(Bytes(a.key.begin(), a.key.end()),
            Bytes(b.key.begin(), b.key.end()));
}

TEST(Bsm, SmallAdversaryRarelyKnowsKey) {
  SimRng rng(14);
  BsmParams p;
  p.stream_words = 1 << 14;
  p.samples_per_party = 512;       // E[I] = 16
  p.adversary_words = 1 << 11;     // 12.5% of the stream
  int steals = 0, runs = 0;
  for (int i = 0; i < 30; ++i) {
    const auto res = bsm_key_agreement(p, BsmAdversaryStrategy::kRandom, rng);
    if (!res.agreed) continue;
    ++runs;
    steals += res.adversary_has_key;
  }
  ASSERT_GT(runs, 10);
  // (1/8)^16 is astronomically small; zero steals expected.
  EXPECT_EQ(steals, 0);
}

TEST(Bsm, FullStorageAdversaryAlwaysWins) {
  SimRng rng(15);
  BsmParams p;
  p.stream_words = 1 << 12;
  p.samples_per_party = 256;
  p.adversary_words = p.stream_words;  // stores everything
  const auto res = bsm_key_agreement(p, BsmAdversaryStrategy::kPrefix, rng);
  ASSERT_TRUE(res.agreed);
  EXPECT_TRUE(res.adversary_has_key);
}

TEST(Bsm, AnalyticProbabilityMatchesShape) {
  EXPECT_DOUBLE_EQ(bsm_adversary_success_probability(1.0, 10), 1.0);
  EXPECT_LT(bsm_adversary_success_probability(0.5, 16), 1e-4);
  EXPECT_GT(bsm_adversary_success_probability(0.5, 2),
            bsm_adversary_success_probability(0.5, 8));
}

TEST(Bsm, ParamValidation) {
  SimRng rng(16);
  BsmParams p;
  p.stream_words = 16;
  p.samples_per_party = 32;  // more samples than stream
  EXPECT_THROW(bsm_key_agreement(p, BsmAdversaryStrategy::kRandom, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace aegis
