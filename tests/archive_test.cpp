// Integration tests for the archive core: every encoding end-to-end over
// the simulated cluster, failure/corruption handling, refresh and rewrap
// semantics, key custody, the Table 1 classifier and the HNDL exposure
// analyzer, and full obsolescence timelines.
#include <gtest/gtest.h>

#include "archive/analyzer.h"
#include "archive/aont.h"
#include "archive/archive.h"
#include "archive/cost.h"
#include "archive/multi.h"
#include "archive/obsolescence.h"
#include "archive/workload.h"
#include "crypto/chacha20.h"
#include "node/adversary.h"
#include "util/entropy.h"
#include "util/error.h"

#include <algorithm>
#include <thread>

namespace aegis {
namespace {

struct Harness {
  Cluster cluster;
  SchemeRegistry registry;
  ChaChaRng rng;
  TimestampAuthority tsa;
  Archive archive;

  Harness(ArchivalPolicy policy, unsigned nodes, std::uint64_t seed = 1)
      : cluster(nodes, policy.channel, seed),
        rng(seed),
        tsa(rng),
        archive(cluster, std::move(policy), registry, tsa, rng) {}
};

Bytes test_data(std::size_t size, std::uint64_t seed = 9) {
  SimRng rng(seed);
  return rng.bytes(size);
}

// ---------------------------------------------------------------- AONT

TEST(Aont, PackageRoundTrip) {
  ChaChaRng rng(1);
  const Bytes data = test_data(10000);
  const Bytes package = aont_package(data, SchemeId::kAes256Ctr, rng);
  EXPECT_EQ(package.size(), aont_package_size(data.size()));
  EXPECT_EQ(aont_unpackage(package), data);
  EXPECT_EQ(aont_package_cipher(package), SchemeId::kAes256Ctr);
}

TEST(Aont, PackageIsKeyless) {
  // Two packages of the same data differ (fresh random key), yet both
  // unpack without any external key.
  ChaChaRng rng(2);
  const Bytes data = test_data(500);
  const Bytes p1 = aont_package(data, SchemeId::kChaCha20, rng);
  const Bytes p2 = aont_package(data, SchemeId::kChaCha20, rng);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(aont_unpackage(p1), data);
  EXPECT_EQ(aont_unpackage(p2), data);
}

TEST(Aont, MalformedPackageRejected) {
  EXPECT_THROW(aont_unpackage(Bytes(10, 0)), ParseError);
  ChaChaRng rng(3);
  Bytes p = aont_package(test_data(100), SchemeId::kAes128Ctr, rng);
  p.resize(p.size() - 1);
  EXPECT_THROW(aont_unpackage(p), ParseError);
}

TEST(Aont, OtpRejected) {
  ChaChaRng rng(4);
  EXPECT_THROW(aont_package(test_data(10), SchemeId::kOneTimePad, rng),
               InvalidArgument);
}

// -------------------------------------------------- put/get per encoding

class ArchiveEncoding : public ::testing::TestWithParam<ArchivalPolicy> {};

TEST_P(ArchiveEncoding, PutGetRoundTrip) {
  Harness h(GetParam(), 12);
  const Bytes data = test_data(3000);
  h.archive.put("doc", data);
  EXPECT_EQ(h.archive.get("doc"), data);
}

TEST_P(ArchiveEncoding, SurvivesMaximumNodeLoss) {
  const ArchivalPolicy policy = GetParam();
  Harness h(policy, 12);
  const Bytes data = test_data(2000);
  h.archive.put("doc", data);

  // Kill nodes until only the reconstruction threshold remains reachable.
  const unsigned threshold = policy.reconstruction_threshold();
  for (unsigned i = threshold; i < policy.n; ++i) h.cluster.fail_node(i);
  EXPECT_EQ(h.archive.get("doc"), data);

  // One more loss crosses the threshold.
  h.cluster.fail_node(0);
  EXPECT_THROW(h.archive.get("doc"), UnrecoverableError);
}

TEST_P(ArchiveEncoding, MeasuredOverheadMatchesNominalFloor) {
  const ArchivalPolicy policy = GetParam();
  Harness h(policy, 12);
  h.archive.put("doc", test_data(4096));
  const StorageReport r = h.archive.storage_report();
  EXPECT_GE(r.overhead(), policy.nominal_overhead() * 0.99)
      << policy.name;
  // Within 2x of nominal (LRSS sources and AONT canary add overhead).
  EXPECT_LE(r.overhead(), policy.nominal_overhead() * 2.0 + 0.5)
      << policy.name;
}

TEST_P(ArchiveEncoding, VerifyCleanArchive) {
  Harness h(GetParam(), 12);
  h.archive.put("doc", test_data(1000));
  const VerifyReport r = h.archive.verify("doc");
  EXPECT_TRUE(r.ok()) << "bad=" << r.shards_bad
                      << " chain=" << to_string(r.chain_status);
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, ArchiveEncoding,
    ::testing::Values(
        ArchivalPolicy::FigReplication(), ArchivalPolicy::FigErasure(),
        ArchivalPolicy::FigEncryption(), ArchivalPolicy::FigEntropic(),
        ArchivalPolicy::FigShamir(), ArchivalPolicy::FigPacked(),
        ArchivalPolicy::FigLrss(), ArchivalPolicy::ArchiveSafeLT(),
        ArchivalPolicy::AontRs(), ArchivalPolicy::HasDpss(),
        ArchivalPolicy::Lincos()),
    [](const ::testing::TestParamInfo<ArchivalPolicy>& info) {
      std::string n = info.param.name;
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

// ------------------------------------------------- pool size determinism

// encode_workers is a pure throughput knob: every observable output —
// shard hashes, merkle root, and retrieved plaintext — must be
// bit-identical across pool sizes (given identical seeds), because all
// randomness is drawn serially before parallel sections.
TEST(Archive, EncodeWorkersDoesNotChangeOutput) {
  const Bytes data = test_data(20000);
  std::vector<unsigned> worker_counts = {1, 2};
  if (std::thread::hardware_concurrency() > 2)
    worker_counts.push_back(std::thread::hardware_concurrency());

  for (ArchivalPolicy base : {ArchivalPolicy::FigShamir(),
                              ArchivalPolicy::FigErasure(),
                              ArchivalPolicy::FigPacked(),
                              ArchivalPolicy::AontRs()}) {
    std::vector<Bytes> roots;
    std::vector<std::vector<Bytes>> hashes;
    for (unsigned workers : worker_counts) {
      ArchivalPolicy p = base;
      p.encode_workers = workers;
      Harness h(p, 12);
      h.archive.put("doc", data);
      const ObjectManifest& m = h.archive.manifest("doc");
      roots.push_back(m.merkle_root);
      hashes.push_back(m.shard_hashes);
      EXPECT_EQ(h.archive.get("doc"), data)
          << base.name << " workers=" << workers;
    }
    for (std::size_t i = 1; i < roots.size(); ++i) {
      EXPECT_EQ(roots[i], roots[0])
          << base.name << " workers=" << worker_counts[i];
      EXPECT_EQ(hashes[i], hashes[0])
          << base.name << " workers=" << worker_counts[i];
    }
  }
}

TEST(Archive, EncodeWorkersValidation) {
  ArchivalPolicy p = ArchivalPolicy::FigErasure();
  p.encode_workers = 257;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p.encode_workers = 256;
  EXPECT_NO_THROW(p.validate());
}

// ------------------------------------------------------ corruption paths

TEST(Archive, CorruptedShardSkippedOnRead) {
  Harness h(ArchivalPolicy::FigErasure(), 12);
  const Bytes data = test_data(999);
  h.archive.put("doc", data);

  // Flip a byte in node 0's shard.
  StorageNode& n0 = h.cluster.node(0);
  StoredBlob bad = *n0.get("doc", 0);
  bad.data[0] ^= 1;
  n0.put(bad);

  EXPECT_EQ(h.archive.get("doc"), data);  // parity covers it
  const VerifyReport r = h.archive.verify("doc");
  EXPECT_EQ(r.shards_bad, 1u);
  EXPECT_FALSE(r.ok());
}

TEST(Archive, DuplicateAndUnknownIds) {
  Harness h(ArchivalPolicy::FigShamir(), 8);
  h.archive.put("doc", test_data(10));
  EXPECT_THROW(h.archive.put("doc", test_data(10)), InvalidArgument);
  EXPECT_THROW(h.archive.get("nope"), InvalidArgument);
  h.archive.remove("doc");
  EXPECT_THROW(h.archive.get("doc"), InvalidArgument);
}

TEST(Archive, PolicyNeedsEnoughNodes) {
  ArchivalPolicy p = ArchivalPolicy::FigShamir();  // n = 5
  Cluster cluster(3, p.channel, 1);
  SchemeRegistry reg;
  ChaChaRng rng(1);
  TimestampAuthority tsa(rng);
  EXPECT_THROW(Archive(cluster, p, reg, tsa, rng), InvalidArgument);
}

// ------------------------------------------------------------- refresh

TEST(Archive, RefreshBumpsGenerationAndPreservesData) {
  Harness h(ArchivalPolicy::VsrArchive(), 8);
  const Bytes data = test_data(512);
  h.archive.put("doc", data);
  EXPECT_EQ(h.archive.manifest("doc").generation, 0u);

  h.archive.refresh();
  EXPECT_EQ(h.archive.manifest("doc").generation, 1u);
  EXPECT_EQ(h.archive.get("doc"), data);

  h.archive.refresh();
  EXPECT_EQ(h.archive.manifest("doc").generation, 2u);
  EXPECT_EQ(h.archive.get("doc"), data);
  EXPECT_GT(h.cluster.stats().refresh_messages, 0u);
}

TEST(Archive, RefreshRerandomizesStoredShares) {
  Harness h(ArchivalPolicy::VsrArchive(), 8);
  h.archive.put("doc", test_data(256));
  const Bytes before = h.cluster.node(0).get("doc", 0)->data;
  h.archive.refresh();
  const Bytes after = h.cluster.node(0).get("doc", 0)->data;
  EXPECT_NE(before, after);
}

TEST(Archive, LrssAndPackedRefreshViaReshare) {
  for (ArchivalPolicy p :
       {ArchivalPolicy::FigLrss(), ArchivalPolicy::FigPacked()}) {
    p.proactive_refresh = true;
    Harness h(p, 12);
    const Bytes data = test_data(800);
    h.archive.put("doc", data);
    h.archive.refresh();
    EXPECT_EQ(h.archive.manifest("doc").generation, 1u);
    EXPECT_EQ(h.archive.get("doc"), data) << p.name;
  }
}

// ------------------------------------------------------- rewrap/migrate

TEST(Archive, CascadeRewrapAddsLayerKeepsPlaintext) {
  Harness h(ArchivalPolicy::ArchiveSafeLT(), 12);
  const Bytes data = test_data(1500);
  h.archive.put("doc", data);
  EXPECT_EQ(h.archive.manifest("doc").current_ciphers().size(), 3u);

  h.archive.rewrap(SchemeId::kAes128Ctr);
  const auto& m = h.archive.manifest("doc");
  EXPECT_EQ(m.current_ciphers().size(), 4u);
  EXPECT_EQ(m.generation, 1u);
  // History preserves the old stack for old harvested material.
  EXPECT_EQ(m.cipher_history[0].size(), 3u);
  EXPECT_EQ(h.archive.get("doc"), data);
}

TEST(Archive, RewrapOnlyForCascades) {
  Harness h(ArchivalPolicy::FigShamir(), 8);
  EXPECT_THROW(h.archive.rewrap(SchemeId::kChaCha20), InvalidArgument);
}

TEST(Archive, ReencryptSwapsStack) {
  Harness h(ArchivalPolicy::CloudBaseline(), 12);
  const Bytes data = test_data(1024);
  h.archive.put("doc", data);
  h.archive.reencrypt({SchemeId::kChaCha20});
  const auto& m = h.archive.manifest("doc");
  EXPECT_EQ(m.current_ciphers(),
            (std::vector<SchemeId>{SchemeId::kChaCha20}));
  EXPECT_EQ(m.cipher_history[0],
            (std::vector<SchemeId>{SchemeId::kAes256Ctr}));
  EXPECT_EQ(h.archive.get("doc"), data);
}

// ------------------------------------------------- timestamps under breaks

TEST(Archive, ChainExpiresWithoutRenewal) {
  Harness h(ArchivalPolicy::CloudBaseline(), 12);
  h.registry.set_break_epoch(SchemeId::kSigGenA, 5);
  h.archive.put("doc", test_data(100));
  for (int i = 0; i < 6; ++i) h.cluster.advance_epoch();
  const VerifyReport r = h.archive.verify("doc");
  EXPECT_EQ(r.chain_status, ChainStatus::kExpiredGuarantee);
}

TEST(Archive, RenewedChainSurvivesBreak) {
  Harness h(ArchivalPolicy::CloudBaseline(), 12);
  h.registry.set_break_epoch(SchemeId::kSigGenA, 5);
  h.archive.put("doc", test_data(100));
  for (int i = 0; i < 4; ++i) h.cluster.advance_epoch();
  h.tsa.rotate(SchemeId::kSigGenB, h.rng);
  h.archive.renew_timestamps();  // at epoch 4, before the break at 5
  for (int i = 0; i < 10; ++i) h.cluster.advance_epoch();
  EXPECT_EQ(h.archive.verify("doc").chain_status, ChainStatus::kValid);
}

TEST(Archive, NotaryKeepsArchiveChainsValidThroughBreaks) {
  Harness h(ArchivalPolicy::CloudBaseline(), 12);
  h.registry.set_break_epoch(SchemeId::kSigGenA, 8);
  h.registry.set_break_epoch(SchemeId::kSigGenB, 16);

  h.archive.put("a", test_data(100, 1));
  h.archive.put("b", test_data(100, 2));

  NotaryService notary(h.tsa, h.registry, h.rng);
  h.archive.watch_timestamps(notary);

  for (int e = 0; e < 20; ++e) {
    notary.tick(h.cluster.now());
    h.cluster.advance_epoch();
  }
  EXPECT_EQ(h.archive.verify("a").chain_status, ChainStatus::kValid);
  EXPECT_EQ(h.archive.verify("b").chain_status, ChainStatus::kValid);
}

// -------------------------------------------------------------- classify

TEST(Classify, Table1Rows) {
  // ArchiveSafeLT: Computational / Computational / Low
  auto c = classify(ArchivalPolicy::ArchiveSafeLT());
  EXPECT_EQ(c.at_rest, SecurityClass::kComputational);
  EXPECT_EQ(c.in_transit, SecurityClass::kComputational);
  EXPECT_LT(c.nominal_overhead, 2.0);

  // AONT-RS: Computational / Computational / Low
  c = classify(ArchivalPolicy::AontRs());
  EXPECT_EQ(c.at_rest, SecurityClass::kComputational);
  EXPECT_LT(c.nominal_overhead, 2.0);

  // HasDPSS: ITS keys... at-rest data is computational ciphertext with
  // ITS-shared keys; the paper's row says Computational/ITS — our
  // classifier reports the data plane; key custody is separate.
  c = classify(ArchivalPolicy::HasDpss());
  EXPECT_EQ(c.at_rest, SecurityClass::kComputational);

  // LINCOS: ITS / ITS / High
  c = classify(ArchivalPolicy::Lincos());
  EXPECT_EQ(c.at_rest, SecurityClass::kInformationTheoretic);
  EXPECT_EQ(c.in_transit, SecurityClass::kInformationTheoretic);
  EXPECT_GE(c.nominal_overhead, 3.0);
  EXPECT_TRUE(c.hiding_timestamps);

  // POTSHARDS: Computational transit / ITS rest / High cost
  c = classify(ArchivalPolicy::Potshards());
  EXPECT_EQ(c.at_rest, SecurityClass::kInformationTheoretic);
  EXPECT_EQ(c.in_transit, SecurityClass::kComputational);
  EXPECT_GE(c.nominal_overhead, 3.0);

  // Cloud: Computational / Computational / Low
  c = classify(ArchivalPolicy::CloudBaseline());
  EXPECT_EQ(c.at_rest, SecurityClass::kComputational);
  EXPECT_LT(c.nominal_overhead, 2.0);
}

// ------------------------------------------------------------- exposure

TEST(Exposure, CloudHndlFallsAtCipherBreak) {
  // Sweep adversary harvests everything over time; ciphertext held early,
  // plaintext only when AES falls — and retroactively over old harvest.
  ArchivalPolicy p = ArchivalPolicy::CloudBaseline();
  TimelineConfig cfg;
  cfg.epochs = 20;
  cfg.object_count = 3;
  cfg.breaks = {{SchemeId::kAes256Ctr, 15}};
  const TimelineResult r = run_timeline(p, cfg);

  EXPECT_EQ(r.exposure.exposed_count, 3u);
  // Harvest completed well before the break; exposure lands AT the break.
  EXPECT_EQ(r.exposure.first_exposure, 15u);
  for (const auto& o : r.exposure.objects) {
    EXPECT_TRUE(o.ciphertext_held);
    EXPECT_LT(o.ciphertext_at, 15u);
  }
}

TEST(Exposure, CloudSafeWhileCipherHolds) {
  ArchivalPolicy p = ArchivalPolicy::CloudBaseline();
  TimelineConfig cfg;
  cfg.epochs = 20;
  cfg.object_count = 3;  // no breaks scheduled
  const TimelineResult r = run_timeline(p, cfg);
  EXPECT_EQ(r.exposure.exposed_count, 0u);
  for (const auto& o : r.exposure.objects) EXPECT_TRUE(o.ciphertext_held);
}

TEST(Exposure, CascadeFallsOnlyWhenAllLayersFall) {
  ArchivalPolicy p = ArchivalPolicy::ArchiveSafeLT();
  TimelineConfig cfg;
  cfg.epochs = 30;
  cfg.object_count = 2;
  cfg.breaks = {{SchemeId::kAes256Ctr, 10}, {SchemeId::kChaCha20, 18}};
  // Speck never breaks -> cascade holds.
  TimelineResult r = run_timeline(p, cfg);
  EXPECT_EQ(r.exposure.exposed_count, 0u);

  cfg.breaks.push_back({SchemeId::kSpeck128Ctr, 25});
  r = run_timeline(p, cfg);
  EXPECT_EQ(r.exposure.exposed_count, 2u);
  EXPECT_EQ(r.exposure.first_exposure, 25u);  // the LAST layer's break
}

TEST(Exposure, StaticShamirFallsToMobileAdversary) {
  // POTSHARDS without refresh: the sweep adversary reaches t distinct
  // nodes after t epochs; no cryptanalysis needed, ever.
  ArchivalPolicy p = ArchivalPolicy::Potshards();  // t=3, n=5
  TimelineConfig cfg;
  cfg.epochs = 10;
  cfg.object_count = 2;
  const TimelineResult r = run_timeline(p, cfg);
  EXPECT_EQ(r.exposure.exposed_count, 2u);
  EXPECT_EQ(r.exposure.first_exposure, 2u);  // epochs 0,1,2 = 3 nodes
}

TEST(Exposure, ProactiveRefreshDefeatsMobileAdversary) {
  // Same sharing, but refreshed every epoch: one share per generation is
  // all the adversary ever holds.
  ArchivalPolicy p = ArchivalPolicy::VsrArchive();
  TimelineConfig cfg;
  cfg.epochs = 30;
  cfg.object_count = 2;
  const TimelineResult r = run_timeline(p, cfg);
  EXPECT_EQ(r.exposure.exposed_count, 0u);
  for (const auto& o : r.exposure.objects)
    EXPECT_LT(o.best_generation_shards, 3u);
}

TEST(Exposure, RefreshedShamirStillFallsViaTlsWiretapBreak) {
  // The §3.2 transit observation: ITS at rest + proactive refresh, but
  // every refresh re-uploads all n shares over TLS. Break ECDH and the
  // recorded conversations hand the adversary a full same-generation
  // share set.
  ArchivalPolicy p = ArchivalPolicy::VsrArchive();  // TLS transport
  TimelineConfig cfg;
  cfg.epochs = 20;
  cfg.object_count = 2;
  cfg.breaks = {{SchemeId::kEcdhSecp256k1, 12}};
  const TimelineResult r = run_timeline(p, cfg);
  EXPECT_EQ(r.exposure.exposed_count, 2u);
  EXPECT_EQ(r.exposure.first_exposure, 12u);
}

TEST(Exposure, LincosSurvivesEverything) {
  // QKD transport + refreshed Shamir + Pedersen stamps: break every
  // computational scheme we have and harvest for 40 epochs — nothing.
  ArchivalPolicy p = ArchivalPolicy::Lincos();
  TimelineConfig cfg;
  cfg.epochs = 40;
  cfg.object_count = 3;
  cfg.breaks = {{SchemeId::kAes256Ctr, 5},
                {SchemeId::kEcdhSecp256k1, 5},
                {SchemeId::kChaCha20, 5},
                {SchemeId::kSpeck128Ctr, 5},
                {SchemeId::kSha256, 5},
                {SchemeId::kSchnorrSecp256k1, 5}};
  const TimelineResult r = run_timeline(p, cfg);
  EXPECT_EQ(r.exposure.exposed_count, 0u);
  EXPECT_TRUE(r.all_objects_retrievable);
}

TEST(Exposure, AontFullPackageNeedsNoBreak) {
  ArchivalPolicy p = ArchivalPolicy::AontRs();  // k=6, n=9
  TimelineConfig cfg;
  cfg.epochs = 10;  // sweep reaches 6 nodes by epoch 5
  cfg.object_count = 1;
  const TimelineResult r = run_timeline(p, cfg);
  EXPECT_EQ(r.exposure.exposed_count, 1u);
  EXPECT_EQ(r.exposure.first_exposure, 5u);
  EXPECT_NE(r.exposure.objects[0].mechanism.find("keyless"),
            std::string::npos);
}

TEST(Exposure, AontSingleShardPlusBreak) {
  ArchivalPolicy p = ArchivalPolicy::AontRs();
  // Package under Speck so breaking it does NOT also break the TLS
  // transport (which would expose through the wiretap route instead).
  p.ciphers = {SchemeId::kSpeck128Ctr};
  TimelineConfig cfg;
  cfg.epochs = 3;  // sweep touches only 3 of 9 nodes: below k
  cfg.object_count = 1;
  cfg.breaks = {{SchemeId::kSpeck128Ctr, 2}};
  const TimelineResult r = run_timeline(p, cfg);
  ASSERT_EQ(r.exposure.exposed_count, 1u);
  EXPECT_EQ(r.exposure.first_exposure, 2u);
  EXPECT_NE(r.exposure.objects[0].mechanism.find("primitive broken"),
            std::string::npos);
}

TEST(Exposure, HasDpssKeyTheftRoute) {
  // Keys VSS'd on-cluster WITHOUT refresh: the sweeping adversary
  // collects vault_threshold key shares of generation 0 plus the
  // ciphertext, and decrypts with zero cryptanalysis.
  ArchivalPolicy p = ArchivalPolicy::HasDpss();
  p.proactive_refresh = false;  // ablate the defence
  TimelineConfig cfg;
  cfg.epochs = 12;
  cfg.object_count = 1;
  const TimelineResult r = run_timeline(p, cfg);
  ASSERT_EQ(r.exposure.exposed_count, 1u);
  EXPECT_NE(r.exposure.objects[0].mechanism.find("key shares"),
            std::string::npos);

  // With refresh on (the actual HasDPSS design) the route closes.
  const TimelineResult r2 = run_timeline(ArchivalPolicy::HasDpss(), cfg);
  EXPECT_EQ(r2.exposure.exposed_count, 0u);
}

TEST(Exposure, EntropicCaveatReported) {
  ArchivalPolicy p = ArchivalPolicy::FigEntropic();
  TimelineConfig cfg;
  cfg.epochs = 12;
  cfg.object_count = 1;
  const TimelineResult r = run_timeline(p, cfg);
  EXPECT_EQ(r.exposure.exposed_count, 0u);
  EXPECT_TRUE(r.exposure.objects[0].entropy_caveat);
}

TEST(Exposure, ReplicationExposesImmediately) {
  ArchivalPolicy p = ArchivalPolicy::FigReplication();
  TimelineConfig cfg;
  cfg.epochs = 2;
  cfg.object_count = 1;
  const TimelineResult r = run_timeline(p, cfg);
  ASSERT_EQ(r.exposure.exposed_count, 1u);
  EXPECT_EQ(r.exposure.first_exposure, 0u);
}

// ----------------------------------------------------------- repair/audit

TEST(Archive, RepairErasureRebuildsDamagedShardsInPlace) {
  Harness h(ArchivalPolicy::FigErasure(), 12);
  const Bytes data = test_data(2222);
  h.archive.put("doc", data);
  const std::uint32_t gen_before = h.archive.manifest("doc").generation;

  // Destroy one shard, corrupt another.
  h.cluster.node(1).erase("doc", 1);
  StoredBlob bad = *h.cluster.node(4).get("doc", 4);
  bad.data[3] ^= 0xff;
  h.cluster.node(4).put(bad);

  EXPECT_EQ(h.archive.repair("doc"), 2u);
  // Erasure repair keeps the generation (same codeword).
  EXPECT_EQ(h.archive.manifest("doc").generation, gen_before);
  EXPECT_TRUE(h.archive.verify("doc").ok());
  EXPECT_EQ(h.archive.get("doc"), data);
  // Idempotent: nothing left to do.
  EXPECT_EQ(h.archive.repair("doc"), 0u);
}

TEST(Archive, RepairReplication) {
  Harness h(ArchivalPolicy::FigReplication(), 6);
  const Bytes data = test_data(100);
  h.archive.put("doc", data);
  h.cluster.node(0).erase("doc", 0);
  h.cluster.node(2).erase("doc", 2);
  EXPECT_EQ(h.archive.repair("doc"), 2u);
  EXPECT_TRUE(h.archive.verify("doc").ok());
}

TEST(Archive, RepairShamirResharesAtNewGeneration) {
  Harness h(ArchivalPolicy::FigShamir(), 8);
  const Bytes data = test_data(300);
  h.archive.put("doc", data);
  h.cluster.node(2).erase("doc", 2);

  EXPECT_EQ(h.archive.repair("doc"), 5u);  // full re-share
  EXPECT_EQ(h.archive.manifest("doc").generation, 1u);
  EXPECT_TRUE(h.archive.verify("doc").ok());
  EXPECT_EQ(h.archive.get("doc"), data);
}

TEST(Archive, RepairBelowThresholdFails) {
  Harness h(ArchivalPolicy::FigErasure(), 12);  // k=6, n=9
  h.archive.put("doc", test_data(100));
  for (std::uint32_t i = 0; i < 4; ++i) h.cluster.node(i).erase("doc", i);
  EXPECT_THROW(h.archive.repair("doc"), UnrecoverableError);
}

TEST(Archive, AuditCleanAndDamaged) {
  Harness h(ArchivalPolicy::FigErasure(), 12);
  h.archive.put("doc", test_data(500));

  auto r = h.archive.audit("doc");
  EXPECT_EQ(r.challenges, 9u);
  EXPECT_EQ(r.passed, 9u);
  EXPECT_TRUE(r.clean());

  // Corrupt one shard, take one node offline, delete one shard.
  StoredBlob bad = *h.cluster.node(1).get("doc", 1);
  bad.data[0] ^= 1;
  h.cluster.node(1).put(bad);
  h.cluster.fail_node(2);
  h.cluster.node(3).erase("doc", 3);

  r = h.archive.audit("doc");
  EXPECT_EQ(r.failed, 1u);
  EXPECT_EQ(r.silent, 2u);
  EXPECT_EQ(r.passed, 6u);
  EXPECT_FALSE(r.clean());

  // Audit found it; repair fixes it (restore the offline node first).
  h.cluster.restore_node(2);
  EXPECT_EQ(h.archive.repair("doc"), 2u);
  EXPECT_TRUE(h.archive.audit("doc").clean());
}

TEST(Archive, AuditRotatesChallenges) {
  Harness h(ArchivalPolicy::FigReplication(), 6);
  h.archive.put("doc", test_data(64));
  // More audits than the precomputed pool: wraps without error.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(h.archive.audit("doc").clean());
}

TEST(Archive, ScrubAuditsAndRepairsEverything) {
  Harness h(ArchivalPolicy::FigErasure(), 12);
  for (int i = 0; i < 4; ++i)
    h.archive.put("obj-" + std::to_string(i), test_data(500 + i, i));

  // Damage a spread of shards across objects.
  h.cluster.node(0).erase("obj-0", 0);
  StoredBlob bad = *h.cluster.node(2).get("obj-1", 2);
  bad.data[1] ^= 4;
  h.cluster.node(2).put(bad);
  h.cluster.node(5).erase("obj-3", 5);

  const auto report = h.archive.scrub();
  EXPECT_EQ(report.objects, 4u);
  EXPECT_EQ(report.shards_repaired, 3u);
  EXPECT_EQ(report.unrecoverable, 0u);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(h.archive.audit("obj-" + std::to_string(i)).clean()) << i;
}

TEST(Archive, ScrubReportsUnrecoverable) {
  Harness h(ArchivalPolicy::FigErasure(), 12);  // k=6, n=9
  h.archive.put("doomed", test_data(100));
  for (std::uint32_t i = 0; i < 5; ++i) h.cluster.node(i).erase("doomed", i);
  const auto report = h.archive.scrub();
  EXPECT_EQ(report.unrecoverable, 1u);
}

// ----------------------------------------------------- entropy escalation

TEST(Exposure, EntropicEncodingLowEntropyContentEscalates) {
  // The same policy: random content keeps the caveat, an all-zeros
  // "message" is measurably unprotected and the analyzer says so.
  ArchivalPolicy p = ArchivalPolicy::FigEntropic();
  Harness h(p, 12);
  SimRng sim(5);
  h.archive.put("highent", sim.bytes(65536));
  h.archive.put("lowent", Bytes(65536, 0));
  EXPECT_NEAR(h.archive.manifest("lowent").est_entropy_per_byte, 0.0, 1e-9);
  EXPECT_GT(h.archive.manifest("highent").est_entropy_per_byte, 7.0);

  // Give the adversary k shards of each.
  MobileAdversary adv(6, CorruptionStrategy::kSweep, 3);
  adv.corrupt_epoch(h.cluster);

  const ExposureAnalyzer analyzer(h.archive, h.registry);
  const auto report =
      analyzer.analyze(adv.harvest(), h.cluster.wiretap(), 10);

  const auto* low = report.find("lowent");
  const auto* high = report.find("highent");
  ASSERT_NE(low, nullptr);
  ASSERT_NE(high, nullptr);
  EXPECT_TRUE(low->content_exposed);
  EXPECT_NE(low->mechanism.find("low-entropy"), std::string::npos);
  EXPECT_FALSE(high->content_exposed);
  EXPECT_TRUE(high->entropy_caveat);
}

// ------------------------------------------------------- redistribution

TEST(Archive, RedistributeNodesGrowsAccessStructure) {
  Harness h(ArchivalPolicy::Potshards(), 12);  // (3,5)
  const Bytes data = test_data(700);
  h.archive.put("doc", data);

  h.archive.redistribute_nodes(4, 9);
  const auto& m = h.archive.manifest("doc");
  EXPECT_EQ(m.t, 4u);
  EXPECT_EQ(m.n, 9u);
  EXPECT_EQ(h.archive.policy().t, 4u);
  EXPECT_EQ(h.archive.get("doc"), data);
  EXPECT_TRUE(h.archive.verify("doc").ok());

  // New threshold enforced: 5 node losses leave 4 shares = t, ok...
  for (unsigned i = 4; i < 9; ++i) h.cluster.fail_node(i);
  EXPECT_EQ(h.archive.get("doc"), data);
  h.cluster.fail_node(0);  // now 3 < t
  EXPECT_THROW(h.archive.get("doc"), UnrecoverableError);
}

TEST(Archive, RedistributeNodesShrinks) {
  Harness h(ArchivalPolicy::Potshards(), 8);
  const Bytes data = test_data(128);
  h.archive.put("doc", data);
  h.archive.redistribute_nodes(2, 3);
  EXPECT_EQ(h.archive.get("doc"), data);
  // Old shards beyond the new n are gone from their nodes.
  EXPECT_EQ(h.cluster.node(4).get("doc", 4), nullptr);
}

TEST(Archive, RedistributeNodesValidation) {
  Harness h(ArchivalPolicy::Potshards(), 8);
  EXPECT_THROW(h.archive.redistribute_nodes(5, 3), InvalidArgument);
  EXPECT_THROW(h.archive.redistribute_nodes(2, 100), InvalidArgument);
  Harness h2(ArchivalPolicy::CloudBaseline(), 12);
  EXPECT_THROW(h2.archive.redistribute_nodes(2, 3), InvalidArgument);
}

// ------------------------------------------------------------ catalog

TEST(Archive, ManifestSerializationRoundTrip) {
  Harness h(ArchivalPolicy::Lincos(), 8);  // commitment + chain + seedless
  h.archive.put("doc", test_data(400));
  const ObjectManifest& m = h.archive.manifest("doc");
  const ObjectManifest back = ObjectManifest::deserialize(m.serialize());
  EXPECT_EQ(back.id, m.id);
  EXPECT_EQ(back.size, m.size);
  EXPECT_EQ(back.encoding, m.encoding);
  EXPECT_EQ(back.generation, m.generation);
  EXPECT_EQ(back.shard_hashes, m.shard_hashes);
  EXPECT_EQ(back.merkle_root, m.merkle_root);
  EXPECT_EQ(back.has_commitment, m.has_commitment);
  EXPECT_TRUE(back.commitment == m.commitment);
  EXPECT_EQ(back.chain.length(), m.chain.length());
  EXPECT_EQ(back.cipher_history, m.cipher_history);
}

TEST(Archive, CatalogExportImportRestoresFullOperation) {
  ArchivalPolicy policy = ArchivalPolicy::ArchiveSafeLT();
  Cluster cluster(12, policy.channel, 7);
  SchemeRegistry registry;
  ChaChaRng rng(7);
  TimestampAuthority tsa(rng);

  Bytes blob;
  Bytes d1 = test_data(900, 1), d2 = test_data(50, 2);
  {
    Archive original(cluster, policy, registry, tsa, rng);
    original.put("alpha", d1);
    original.put("beta", d2);
    blob = original.export_catalog();
  }  // client machine dies; manifests and keys gone

  Archive restored(cluster, policy, registry, tsa, rng);
  EXPECT_THROW(restored.get("alpha"), InvalidArgument);  // no catalog yet
  restored.import_catalog(blob);
  EXPECT_EQ(restored.get("alpha"), d1);
  EXPECT_EQ(restored.get("beta"), d2);
  EXPECT_TRUE(restored.verify("alpha").ok());
  // Audits still work (challenges traveled in the catalog).
  EXPECT_TRUE(restored.audit("beta").clean());
}

TEST(Archive, CatalogImportRejectsGarbage) {
  Harness h(ArchivalPolicy::FigShamir(), 8);
  EXPECT_THROW(h.archive.import_catalog(Bytes(7, 0xab)), ParseError);
}

// -------------------------------------------------------------- workload

TEST(Workload, DeterministicAndShaped) {
  WorkloadConfig cfg;
  cfg.object_count = 50;
  cfg.seed = 9;
  WorkloadGenerator a(cfg), b(cfg);
  for (int i = 0; i < 50; ++i) {
    const WorkloadItem x = a.next();
    const WorkloadItem y = b.next();
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.data, y.data);
    EXPECT_GE(x.data.size(), cfg.min_size);
    EXPECT_LE(x.data.size(), cfg.max_size);
  }
  EXPECT_EQ(a.remaining(), 0u);
  EXPECT_GT(a.bytes_generated(), 0u);
}

TEST(Workload, StructuredContentHasLowEntropy) {
  WorkloadConfig cfg;
  cfg.object_count = 200;
  cfg.text_fraction = 0.5;
  cfg.median_size = 8192;
  cfg.seed = 4;
  WorkloadGenerator gen(cfg);
  int structured = 0;
  for (int i = 0; i < 200; ++i) {
    const WorkloadItem item = gen.next();
    if (item.data.size() < 1024) continue;  // too small to judge
    const double h = estimate_entropy_per_byte(item.data);
    if (item.structured) {
      ++structured;
      EXPECT_LT(h, 4.0) << item.id;
    } else {
      EXPECT_GT(h, 6.0) << item.id;
    }
  }
  EXPECT_GT(structured, 50);  // the mix is actually mixed
}

TEST(Workload, SizesAreHeavyTailed) {
  WorkloadConfig cfg;
  cfg.object_count = 500;
  cfg.median_size = 4096;
  cfg.size_sigma = 1.2;
  cfg.seed = 11;
  WorkloadGenerator gen(cfg);
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 500; ++i) sizes.push_back(gen.next().data.size());
  std::sort(sizes.begin(), sizes.end());
  const std::size_t median = sizes[250];
  // Median near the configured value, max far above it.
  EXPECT_GT(median, 2000u);
  EXPECT_LT(median, 9000u);
  EXPECT_GT(sizes.back(), median * 8);
}

TEST(Workload, Validation) {
  WorkloadConfig cfg;
  cfg.object_count = 0;
  EXPECT_THROW(WorkloadGenerator{cfg}, InvalidArgument);
}

// ------------------------------------------------------------ MultiArchive

TEST(MultiArchive, RoutesByClassAndRetrieves) {
  Cluster cluster(12, ChannelKind::kTls, 3);
  SchemeRegistry registry;
  ChaChaRng rng(3);
  TimestampAuthority tsa(rng);
  MultiArchive pasis(cluster, registry, tsa, rng);

  const Bytes pub = test_data(400, 1);
  const Bytes sec = test_data(400, 2);
  pasis.put("bulletin", pub, Sensitivity::kPublic);
  pasis.put("dossier", sec, Sensitivity::kTopSecret);

  EXPECT_EQ(pasis.get("bulletin"), pub);
  EXPECT_EQ(pasis.get("dossier"), sec);
  EXPECT_EQ(pasis.sensitivity("dossier"), Sensitivity::kTopSecret);
  EXPECT_TRUE(pasis.verify("bulletin").ok());
  EXPECT_TRUE(pasis.verify("dossier").ok());
}

TEST(MultiArchive, PerClassCostSplitMatchesPolicies) {
  Cluster cluster(12, ChannelKind::kTls, 4);
  SchemeRegistry registry;
  ChaChaRng rng(4);
  TimestampAuthority tsa(rng);
  MultiArchive pasis(cluster, registry, tsa, rng);

  pasis.put("a", test_data(4096, 1), Sensitivity::kPublic);
  pasis.put("b", test_data(4096, 2), Sensitivity::kTopSecret);

  // Public rides 1.5x erasure; top-secret rides 5x Shamir — the
  // "Low-High" spread of PASIS's Table 1 row.
  EXPECT_NEAR(pasis.storage_report(Sensitivity::kPublic).overhead(), 1.5,
              0.05);
  EXPECT_NEAR(pasis.storage_report(Sensitivity::kTopSecret).overhead(), 5.0,
              0.05);
  const StorageReport total = pasis.storage_report();
  EXPECT_NEAR(total.overhead(), (1.5 + 5.0) / 2, 0.1);
}

TEST(MultiArchive, RefreshOnlyTouchesProactiveClasses) {
  Cluster cluster(12, ChannelKind::kTls, 5);
  SchemeRegistry registry;
  ChaChaRng rng(5);
  TimestampAuthority tsa(rng);
  MultiArchive pasis(cluster, registry, tsa, rng);

  pasis.put("pub", test_data(100, 1), Sensitivity::kPublic);
  pasis.put("top", test_data(100, 2), Sensitivity::kTopSecret);
  pasis.refresh();

  EXPECT_EQ(pasis.archive_for(Sensitivity::kPublic).manifest("pub").generation,
            0u);
  EXPECT_EQ(
      pasis.archive_for(Sensitivity::kTopSecret).manifest("top").generation,
      1u);
  EXPECT_EQ(pasis.get("top"), test_data(100, 2));
}

TEST(MultiArchive, DuplicateIdsRejectedAcrossClasses) {
  Cluster cluster(12, ChannelKind::kTls, 6);
  SchemeRegistry registry;
  ChaChaRng rng(6);
  TimestampAuthority tsa(rng);
  MultiArchive pasis(cluster, registry, tsa, rng);
  pasis.put("x", test_data(10), Sensitivity::kPublic);
  EXPECT_THROW(pasis.put("x", test_data(10), Sensitivity::kSecret),
               InvalidArgument);
  EXPECT_THROW(pasis.get("unknown"), InvalidArgument);
}

TEST(MultiArchive, PolicyOverrideBeforeUseOnly) {
  Cluster cluster(12, ChannelKind::kTls, 7);
  SchemeRegistry registry;
  ChaChaRng rng(7);
  TimestampAuthority tsa(rng);
  MultiArchive pasis(cluster, registry, tsa, rng);

  ArchivalPolicy lincos = ArchivalPolicy::Lincos();
  pasis.set_policy(Sensitivity::kTopSecret, lincos);
  EXPECT_EQ(pasis.policy(Sensitivity::kTopSecret).name, "LINCOS");

  pasis.put("doc", test_data(64), Sensitivity::kTopSecret);
  EXPECT_THROW(pasis.set_policy(Sensitivity::kTopSecret, lincos),
               InvalidArgument);
}

// ------------------------------------------------------------ cost model

TEST(Cost, PaperReencryptionNumbers) {
  // §3.2: read-out times for the four cited archives. We reproduce the
  // arithmetic (decimal TB, 30.44-day months); see EXPERIMENTS.md for
  // the rounding deltas vs. the paper's printed values.
  const auto hpss = estimate_reencryption(SiteModel::OakRidgeHpss());
  EXPECT_NEAR(hpss.read_months, 6.57, 0.05);
  const auto mars = estimate_reencryption(SiteModel::EcmwfMars());
  EXPECT_NEAR(mars.read_months, 10.38, 0.05);
  const auto eos = estimate_reencryption(SiteModel::CernEos());
  EXPECT_NEAR(eos.read_months, 8.31, 0.05);
  const auto perg = estimate_reencryption(SiteModel::Pergamum());
  EXPECT_NEAR(perg.read_months, 0.76, 0.02);
}

TEST(Cost, PracticalPenaltiesMultiply) {
  const auto e = estimate_reencryption(SiteModel::CernEos(), 2.0, 2.0);
  EXPECT_NEAR(e.practical_months, e.read_months * 4.0, 1e-9);
}

TEST(Cost, CpuBoundEstimate) {
  const auto e =
      estimate_reencryption(SiteModel::Pergamum(), 2, 2, 100.0, 10);
  EXPECT_GT(e.cpu_bound_months, 0.0);
}

TEST(Cost, MediaEconomicsOrdering) {
  // At archival scale over a century: DNA's synthesis cost dominates a
  // small archive; glass needs no migration; tape re-buys itself 10x.
  const double tb = 1000.0;  // 1 PB
  const double glass = total_cost_usd(MediaModel::Glass(), tb, 1.5, 100);
  const double tape = total_cost_usd(MediaModel::Tape(), tb, 1.5, 100);
  const double hdd = total_cost_usd(MediaModel::Hdd(), tb, 1.5, 100);
  EXPECT_LT(glass, tape);
  EXPECT_LT(tape, hdd);
}

TEST(Cost, MttdlOrderingMatchesTolerance) {
  // More tolerated failures -> astronomically more MTTDL; and the
  // paper's POTSHARDS jab in one line: Shamir(3,5) at 5x storage has a
  // WORSE MTTDL than replication(3) at 3x.
  const double afr = 0.04, repair = 24.0;
  const double repl3 = mttdl_years(3, 1, afr, repair);       // r=2
  const double rs69 = mttdl_years(9, 6, afr, repair);        // r=3
  const double shamir35 = mttdl_years(5, 3, afr, repair);    // r=2
  EXPECT_GT(rs69, repl3);
  EXPECT_GT(repl3, shamir35);
  // Faster repair helps superlinearly in r.
  EXPECT_GT(mttdl_years(9, 6, afr, 6.0), rs69);
}

TEST(Cost, MttdlValidation) {
  EXPECT_THROW(mttdl_years(0, 1, 0.04, 24), InvalidArgument);
  EXPECT_THROW(mttdl_years(3, 4, 0.04, 24), InvalidArgument);
  EXPECT_THROW(mttdl_years(3, 1, -1, 24), InvalidArgument);
  EXPECT_THROW(mttdl_years(3, 1, 0.04, 0), InvalidArgument);
}

TEST(Cost, Validation) {
  EXPECT_THROW(total_cost_usd(MediaModel::Tape(), 10, 0.5, 100),
               InvalidArgument);
  SiteModel s{"x", 100.0, 0.0};
  EXPECT_THROW(estimate_reencryption(s), InvalidArgument);
}

}  // namespace
}  // namespace aegis
