// A minimal JSON syntax checker shared by the test binaries: enough to
// prove exported lines/documents are well-formed without pulling in a
// JSON library.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace aegis {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    pos_ = 0;
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      default: return number_or_keyword();
    }
  }
  bool object() {
    ++pos_;  // {
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // [
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') { ++pos_; continue; }
      if (s_[pos_] == '"') { ++pos_; return true; }
    }
    return false;
  }
  bool number_or_keyword() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.'))
      ++pos_;
    return pos_ > start;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace aegis
