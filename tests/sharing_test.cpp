// Tests for the secret-sharing substrate: Shamir, packed sharing,
// Feldman/Pedersen VSS, proactive refresh, redistribution, LRSS, and the
// local-leakage attack.
#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/chacha20.h"
#include "sharing/lrss.h"
#include "sharing/packed.h"
#include "sharing/proactive.h"
#include "sharing/redistribute.h"
#include "sharing/shamir.h"
#include "sharing/vss.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

// ---------------------------------------------------------------- Shamir

TEST(Shamir, SplitRecoverRoundTrip) {
  ChaChaRng rng(1);
  const Bytes secret = to_bytes(std::string_view("long-term archival secret"));
  const auto shares = shamir_split(secret, 3, 5, rng);
  ASSERT_EQ(shares.size(), 5u);
  EXPECT_EQ(shamir_recover(shares, 3), secret);
}

TEST(Shamir, AnyTSubsetRecovers) {
  ChaChaRng rng(2);
  SimRng sim(2);
  const Bytes secret = sim.bytes(64);
  const auto shares = shamir_split(secret, 3, 6, rng);
  // All C(6,3)=20 subsets.
  for (unsigned a = 0; a < 6; ++a)
    for (unsigned b = a + 1; b < 6; ++b)
      for (unsigned c = b + 1; c < 6; ++c) {
        const std::vector<Share> sub = {shares[a], shares[b], shares[c]};
        EXPECT_EQ(shamir_recover(sub, 3), secret);
      }
}

TEST(Shamir, BelowThresholdThrows) {
  ChaChaRng rng(3);
  const auto shares = shamir_split(Bytes{1, 2, 3}, 3, 5, rng);
  const std::vector<Share> two = {shares[0], shares[1]};
  EXPECT_THROW(shamir_recover(two, 3), UnrecoverableError);
}

TEST(Shamir, SharesLookRandom) {
  // Perfect secrecy's observable footprint: two different secrets with
  // the same randomness stream produce shares differing in distribution
  // only; here we at least check shares != secret and differ per index.
  ChaChaRng rng(4);
  const Bytes secret(32, 0xAA);
  const auto shares = shamir_split(secret, 2, 4, rng);
  for (const auto& s : shares) EXPECT_NE(s.data, secret);
  EXPECT_NE(shares[0].data, shares[1].data);
}

TEST(Shamir, T1IsReplicationOfSecret) {
  // With t=1 the polynomial is constant: every share equals the secret.
  ChaChaRng rng(5);
  const Bytes secret = {9, 8, 7};
  const auto shares = shamir_split(secret, 1, 3, rng);
  for (const auto& s : shares) EXPECT_EQ(s.data, secret);
}

TEST(Shamir, DuplicateIndicesRejected) {
  ChaChaRng rng(6);
  auto shares = shamir_split(Bytes{1}, 2, 3, rng);
  const std::vector<Share> dup = {shares[0], shares[0]};
  EXPECT_THROW(shamir_recover(dup, 2), InvalidArgument);
}

TEST(Shamir, LengthMismatchRejected) {
  ChaChaRng rng(7);
  auto shares = shamir_split(Bytes{1, 2}, 2, 3, rng);
  shares[1].data.push_back(0);
  const std::vector<Share> bad = {shares[0], shares[1]};
  EXPECT_THROW(shamir_recover(bad, 2), InvalidArgument);
}

TEST(Shamir, ParamValidation) {
  ChaChaRng rng(8);
  EXPECT_THROW(shamir_split(Bytes{1}, 0, 3, rng), InvalidArgument);
  EXPECT_THROW(shamir_split(Bytes{1}, 4, 3, rng), InvalidArgument);
  EXPECT_THROW(shamir_split(Bytes{1}, 2, 256, rng), InvalidArgument);
}

TEST(Shamir, EmptySecret) {
  ChaChaRng rng(9);
  const auto shares = shamir_split(Bytes{}, 2, 3, rng);
  EXPECT_TRUE(shamir_recover(shares, 2).empty());
}

TEST(Shamir, SerializeRoundTrip) {
  Share s{42, {1, 2, 3}};
  const Share back = Share::deserialize(s.serialize());
  EXPECT_EQ(back.index, 42);
  EXPECT_EQ(back.data, s.data);
}

TEST(Shamir, ZeroSharingPreservesSecretWhenAdded) {
  ChaChaRng rng(10);
  const Bytes secret = rng.bytes(16);
  auto shares = shamir_split(secret, 3, 5, rng);
  const auto zero = shamir_zero_sharing(16, 3, 5, rng);
  for (unsigned i = 0; i < 5; ++i)
    xor_inplace(MutByteView(shares[i].data.data(), 16), zero[i].data);
  EXPECT_EQ(shamir_recover(shares, 3), secret);
  // And the zero sharing itself recovers to all-zeros.
  EXPECT_EQ(shamir_recover(zero, 3), Bytes(16, 0));
}

// Pool determinism: with identical rng seeds, split/recover/refresh must
// be bit-identical for every pool size (all randomness is drawn serially
// on the calling thread; workers only write disjoint ranges).
TEST(Shamir, PooledSplitRecoverRefreshMatchSerial) {
  SimRng sim(50);
  const Bytes secret = sim.bytes(10000 + 7);

  ChaChaRng serial_rng(5);
  const auto serial_shares = shamir_split(secret, 3, 7, serial_rng);
  const Bytes serial_secret = shamir_recover(
      {serial_shares.begin(), serial_shares.begin() + 3}, 3);
  ChaChaRng serial_refresh_rng(6);
  const auto serial_fresh =
      proactive_refresh(serial_shares, 3, serial_refresh_rng);

  for (unsigned workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    ChaChaRng rng(5);
    const auto shares = shamir_split(secret, 3, 7, rng, &pool);
    ASSERT_EQ(shares.size(), serial_shares.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      EXPECT_EQ(shares[i].index, serial_shares[i].index);
      EXPECT_EQ(shares[i].data, serial_shares[i].data)
          << "workers=" << workers << " share=" << i;
    }
    EXPECT_EQ(
        shamir_recover({shares.begin(), shares.begin() + 3}, 3, &pool),
        serial_secret);
    ChaChaRng refresh_rng(6);
    const auto fresh =
        proactive_refresh(shares, 3, refresh_rng, nullptr, &pool);
    for (std::size_t i = 0; i < fresh.size(); ++i)
      EXPECT_EQ(fresh[i].data, serial_fresh[i].data)
          << "workers=" << workers << " share=" << i;
  }
}

// Property sweep over (t, n).
class ShamirGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(ShamirGeometry, RoundTripWithRandomSubset) {
  const auto [t, n] = GetParam();
  ChaChaRng rng(t * 997 + n);
  SimRng sim(t * 31 + n);
  const Bytes secret = sim.bytes(100);
  auto shares = shamir_split(secret, t, n, rng);
  // Shuffle and take an arbitrary t-subset.
  for (std::size_t i = shares.size(); i > 1; --i)
    std::swap(shares[i - 1], shares[sim.uniform(i)]);
  shares.resize(t);
  EXPECT_EQ(shamir_recover(shares, t), secret);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ShamirGeometry,
    ::testing::Values(std::pair{1u, 1u}, std::pair{2u, 2u}, std::pair{2u, 5u},
                      std::pair{3u, 7u}, std::pair{5u, 9u},
                      std::pair{10u, 20u}, std::pair{50u, 100u},
                      std::pair{128u, 255u}));

// ---------------------------------------------------------------- Packed

TEST(Packed, RoundTrip) {
  ChaChaRng rng(11);
  SimRng sim(11);
  const PackedSharing ps(2, 4, 10);  // t=2, k=4, n=10
  const Bytes secret = sim.bytes(100);
  const auto shares = ps.split(secret, rng);
  ASSERT_EQ(shares.size(), 10u);
  EXPECT_EQ(ps.recover(shares, secret.size()), secret);
}

TEST(Packed, ShareSizeIsSecretOverK) {
  ChaChaRng rng(12);
  const PackedSharing ps(2, 4, 10);
  const Bytes secret(800, 7);
  const auto shares = ps.split(secret, rng);
  // 800 bytes = 400 elems = 100 batches of k=4 -> 100 elems = 200 bytes.
  EXPECT_EQ(shares[0].data.size(), 200u);
  EXPECT_DOUBLE_EQ(ps.storage_overhead(), 2.5);  // n/k
}

TEST(Packed, RecoverWithExactThresholdSubset) {
  ChaChaRng rng(13);
  SimRng sim(13);
  const PackedSharing ps(3, 2, 8);
  const Bytes secret = sim.bytes(61);  // odd length exercises padding
  auto shares = ps.split(secret, rng);
  for (std::size_t i = shares.size(); i > 1; --i)
    std::swap(shares[i - 1], shares[sim.uniform(i)]);
  shares.resize(ps.recover_threshold());  // t+k = 5
  EXPECT_EQ(ps.recover(shares, secret.size()), secret);
}

TEST(Packed, BelowThresholdThrows) {
  ChaChaRng rng(14);
  const PackedSharing ps(2, 2, 6);
  auto shares = ps.split(Bytes(10, 1), rng);
  shares.resize(3);  // below t+k = 4
  EXPECT_THROW(ps.recover(shares, 10), UnrecoverableError);
}

TEST(Packed, ParamValidation) {
  EXPECT_THROW(PackedSharing(0, 2, 5), InvalidArgument);
  EXPECT_THROW(PackedSharing(2, 0, 5), InvalidArgument);
  EXPECT_THROW(PackedSharing(3, 3, 5), InvalidArgument);  // n < t+k
  EXPECT_THROW(PackedSharing(1, 1, 65534), InvalidArgument);
}

TEST(Packed, SerializeRoundTrip) {
  PackedShare s{1234, {5, 6, 7, 8}};
  const PackedShare back = PackedShare::deserialize(s.serialize());
  EXPECT_EQ(back.index, 1234);
  EXPECT_EQ(back.data, s.data);
}

TEST(Packed, DuplicateSharesRejected) {
  ChaChaRng rng(15);
  const PackedSharing ps(1, 1, 3);
  auto shares = ps.split(Bytes{1, 2}, rng);
  const std::vector<PackedShare> dup = {shares[0], shares[0], shares[1]};
  EXPECT_THROW(ps.recover(dup, 2), InvalidArgument);
}

TEST(Packed, PooledSplitRecoverMatchSerial) {
  SimRng sim(51);
  const Bytes secret = sim.bytes(4096 + 3);
  const PackedSharing ps(3, 4, 11);

  ChaChaRng serial_rng(7);
  const auto serial_shares = ps.split(secret, serial_rng);
  std::vector<PackedShare> subset(serial_shares.begin(),
                                  serial_shares.begin() + 7);
  const Bytes serial_out = ps.recover(subset, secret.size());
  EXPECT_EQ(serial_out, secret);

  for (unsigned workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    ChaChaRng rng(7);
    const auto shares = ps.split(secret, rng, &pool);
    ASSERT_EQ(shares.size(), serial_shares.size());
    for (std::size_t i = 0; i < shares.size(); ++i)
      EXPECT_EQ(shares[i].data, serial_shares[i].data)
          << "workers=" << workers << " share=" << i;
    std::vector<PackedShare> sub(shares.begin(), shares.begin() + 7);
    EXPECT_EQ(ps.recover(sub, secret.size(), &pool), serial_out)
        << "workers=" << workers;
  }
}

TEST(Packed, CodecCacheReturnsSameInstance) {
  const PackedSharing& a = packed_codec(3, 4, 11);
  const PackedSharing& b = packed_codec(3, 4, 11);
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &packed_codec(3, 4, 12));
  EXPECT_THROW(packed_codec(0, 1, 3), InvalidArgument);
}

// ------------------------------------------------------------------- VSS

TEST(Vss, FeldmanDealVerifyRecover) {
  ChaChaRng rng(16);
  const U256 secret(123456789);
  const auto d = feldman_deal(secret, 3, 5, rng);
  ASSERT_EQ(d.shares.size(), 5u);
  for (const auto& s : d.shares)
    EXPECT_TRUE(vss_verify_share(s, d.commitments)) << s.index;
  EXPECT_EQ(vss_recover(d.shares, 3), secret);
}

TEST(Vss, PedersenDealVerifyRecover) {
  ChaChaRng rng(17);
  const auto& curve = ec::Secp256k1::instance();
  const U256 secret = curve.random_scalar(rng);
  const auto d = pedersen_deal(secret, 4, 7, rng);
  for (const auto& s : d.shares)
    EXPECT_TRUE(vss_verify_share(s, d.commitments)) << s.index;
  EXPECT_EQ(vss_recover(d.shares, 4), secret);
}

TEST(Vss, TamperedShareDetected) {
  ChaChaRng rng(18);
  auto d = pedersen_deal(U256(42), 2, 4, rng);
  d.shares[1].value = U256(999999);
  EXPECT_FALSE(vss_verify_share(d.shares[1], d.commitments));
  // The untouched shares still verify.
  EXPECT_TRUE(vss_verify_share(d.shares[0], d.commitments));
}

TEST(Vss, FeldmanTamperedShareDetected) {
  ChaChaRng rng(19);
  auto d = feldman_deal(U256(42), 2, 4, rng);
  d.shares[0].value = U256(1);
  EXPECT_FALSE(vss_verify_share(d.shares[0], d.commitments));
}

TEST(Vss, AnyTSubsetRecovers) {
  ChaChaRng rng(20);
  const U256 secret(777);
  const auto d = pedersen_deal(secret, 2, 5, rng);
  for (unsigned a = 0; a < 5; ++a)
    for (unsigned b = a + 1; b < 5; ++b) {
      const std::vector<VssShare> sub = {d.shares[a], d.shares[b]};
      EXPECT_EQ(vss_recover(sub, 2), secret);
    }
}

TEST(Vss, BelowThresholdThrows) {
  ChaChaRng rng(21);
  const auto d = pedersen_deal(U256(7), 3, 5, rng);
  const std::vector<VssShare> two = {d.shares[0], d.shares[1]};
  EXPECT_THROW(vss_recover(two, 3), UnrecoverableError);
}

TEST(Vss, PedersenCommitmentsMatchRecoveredOpening) {
  // The constant-term commitment must open to (secret, recovered blind).
  ChaChaRng rng(22);
  const U256 secret(31337);
  const auto d = pedersen_deal(secret, 3, 5, rng);
  const U256 blind0 = vss_recover_blind(d.shares, 3);
  const auto c0 = PedersenCommitment::decode(d.commitments.points[0]);
  EXPECT_TRUE(pedersen_verify(c0, {secret, blind0}));
}

TEST(Vss, FixedBlindDealMatchesCommitment) {
  ChaChaRng rng(23);
  const auto& curve = ec::Secp256k1::instance();
  const U256 secret = curve.random_scalar(rng);
  const U256 blind = curve.random_scalar(rng);
  const auto d = pedersen_deal_fixed_blind0(secret, blind, 2, 3, rng);
  const auto c0 = PedersenCommitment::decode(d.commitments.points[0]);
  EXPECT_TRUE(pedersen_verify(c0, {secret, blind}));
  for (const auto& s : d.shares)
    EXPECT_TRUE(vss_verify_share(s, d.commitments));
}

// Property sweep over VSS geometries.
class VssGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(VssGeometry, DealVerifyRecoverBothDealers) {
  const auto [t, n] = GetParam();
  ChaChaRng rng(t * 131 + n);
  const auto& curve = ec::Secp256k1::instance();
  const U256 secret = curve.random_scalar(rng);

  for (const bool pedersen : {false, true}) {
    const VssDealing d = pedersen ? pedersen_deal(secret, t, n, rng)
                                  : feldman_deal(secret, t, n, rng);
    ASSERT_EQ(d.shares.size(), n);
    ASSERT_EQ(d.commitments.threshold(), t);
    for (const auto& s : d.shares)
      EXPECT_TRUE(vss_verify_share(s, d.commitments))
          << (pedersen ? "pedersen" : "feldman") << " t=" << t << " n=" << n;
    EXPECT_EQ(vss_recover(d.shares, t), secret);
    // Tampering any single share is caught.
    VssShare bad = d.shares[n / 2];
    bad.value = curve.fn().add(bad.value, U256(3));
    EXPECT_FALSE(vss_verify_share(bad, d.commitments));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, VssGeometry,
    ::testing::Values(std::pair{1u, 1u}, std::pair{1u, 4u}, std::pair{2u, 3u},
                      std::pair{3u, 5u}, std::pair{5u, 8u},
                      std::pair{7u, 12u}, std::pair{10u, 15u}));

// Multi-round proactive refresh property: after K rounds, (a) the secret
// is invariant, (b) shares from any two DIFFERENT rounds never combine,
// (c) commitments always verify the current shares.
TEST(Proactive, MultiRoundInvariants) {
  ChaChaRng rng(60);
  const U256 secret(987123);
  const unsigned t = 3, n = 5;
  VssDealing current = pedersen_deal(secret, t, n, rng);
  std::vector<std::vector<VssShare>> history = {current.shares};

  for (int round = 0; round < 4; ++round) {
    const auto r = proactive_refresh_vss(current, t, n, rng);
    current.shares = r.shares;
    current.commitments = r.commitments;
    history.push_back(current.shares);

    EXPECT_EQ(vss_recover(current.shares, t), secret) << round;
    for (const auto& s : current.shares)
      EXPECT_TRUE(vss_verify_share(s, current.commitments));
  }

  // Cross-generation mixing fails for every pair of rounds.
  for (std::size_t a = 0; a < history.size(); ++a) {
    for (std::size_t b = a + 1; b < history.size(); ++b) {
      const std::vector<VssShare> mixed = {history[a][0], history[a][1],
                                           history[b][2]};
      EXPECT_NE(vss_recover(mixed, t), secret) << a << "x" << b;
    }
  }
}

// ------------------------------------------------------------- Proactive

TEST(Proactive, BulkRefreshPreservesSecretAndRerandomizes) {
  ChaChaRng rng(24);
  const Bytes secret = rng.bytes(32);
  const auto shares = shamir_split(secret, 3, 5, rng);
  RefreshStats stats;
  const auto fresh = proactive_refresh(shares, 3, rng, &stats);
  EXPECT_EQ(shamir_recover(fresh, 3), secret);
  // Every share changed.
  for (unsigned i = 0; i < 5; ++i) EXPECT_NE(fresh[i].data, shares[i].data);
  // n dealers, n(n-1) messages.
  EXPECT_EQ(stats.dealers, 5u);
  EXPECT_EQ(stats.messages, 20u);
  EXPECT_EQ(stats.bytes, 20u * 32);
}

TEST(Proactive, OldAndNewSharesDoNotCombine) {
  // The mobile-adversary defeat: t-1 old shares + 1 new share must not
  // reconstruct the secret.
  ChaChaRng rng(25);
  const Bytes secret = rng.bytes(16);
  const auto old_shares = shamir_split(secret, 3, 5, rng);
  const auto fresh = proactive_refresh(old_shares, 3, rng);
  const std::vector<Share> mixed = {old_shares[0], old_shares[1], fresh[2]};
  EXPECT_NE(shamir_recover(mixed, 3), secret);
}

TEST(Proactive, VssRefreshPreservesSecretAndVerifies) {
  ChaChaRng rng(26);
  const U256 secret(987654321);
  const auto d = pedersen_deal(secret, 3, 5, rng);
  const auto r = proactive_refresh_vss(d, 3, 5, rng);
  EXPECT_TRUE(r.accused.empty());
  EXPECT_EQ(r.stats.dealers, 5u);
  for (const auto& s : r.shares)
    EXPECT_TRUE(vss_verify_share(s, r.commitments)) << s.index;
  EXPECT_EQ(vss_recover(r.shares, 3), secret);
}

TEST(Proactive, CorruptDealerDetectedAndExcluded) {
  ChaChaRng rng(27);
  const U256 secret(555);
  const auto d = pedersen_deal(secret, 3, 5, rng);
  const auto r = proactive_refresh_vss(d, 3, 5, rng, {2, 4});
  EXPECT_EQ(r.accused, (std::vector<std::uint32_t>{2, 4}));
  EXPECT_EQ(r.stats.dealers, 3u);
  // Refresh still completes correctly with honest dealings only.
  for (const auto& s : r.shares)
    EXPECT_TRUE(vss_verify_share(s, r.commitments));
  EXPECT_EQ(vss_recover(r.shares, 3), secret);
}

// ---------------------------------------------------------- Redistribute

TEST(Redistribute, BulkChangesGeometry) {
  ChaChaRng rng(28);
  const Bytes secret = rng.bytes(48);
  const auto shares = shamir_split(secret, 3, 5, rng);
  RefreshStats stats;
  const auto fresh = redistribute(shares, 3, 4, 9, rng, &stats);
  ASSERT_EQ(fresh.size(), 9u);
  EXPECT_EQ(shamir_recover(fresh, 4), secret);
  EXPECT_EQ(stats.dealers, 3u);  // t old holders contribute
  // Below the new threshold it fails.
  std::vector<Share> three(fresh.begin(), fresh.begin() + 3);
  EXPECT_THROW(shamir_recover(three, 4), UnrecoverableError);
}

TEST(Redistribute, ShrinkGeometry) {
  ChaChaRng rng(29);
  const Bytes secret = rng.bytes(16);
  const auto shares = shamir_split(secret, 4, 8, rng);
  const auto fresh = redistribute(shares, 4, 2, 3, rng);
  EXPECT_EQ(shamir_recover(fresh, 2), secret);
}

TEST(Redistribute, VssHonestRoundTrip) {
  ChaChaRng rng(30);
  const U256 secret(13579);
  const auto d = pedersen_deal(secret, 3, 5, rng);
  const auto r = redistribute_vss(d, 3, 4, 7, rng);
  EXPECT_TRUE(r.accused.empty());
  ASSERT_EQ(r.shares.size(), 7u);
  for (const auto& s : r.shares)
    EXPECT_TRUE(vss_verify_share(s, r.commitments)) << s.index;
  EXPECT_EQ(vss_recover(r.shares, 4), secret);
}

TEST(Redistribute, VssCheaterCaught) {
  ChaChaRng rng(31);
  const U256 secret(24680);
  const auto d = pedersen_deal(secret, 2, 5, rng);
  const auto r = redistribute_vss(d, 2, 3, 6, rng, {1});
  EXPECT_EQ(r.accused, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(vss_recover(r.shares, 3), secret);
}

TEST(Redistribute, VssTooManyCheatersUnrecoverable) {
  ChaChaRng rng(32);
  const auto d = pedersen_deal(U256(1), 4, 5, rng);
  EXPECT_THROW(redistribute_vss(d, 4, 2, 4, rng, {1, 2}),
               UnrecoverableError);
}

// ------------------------------------------------------------------ LRSS

TEST(Lrss, RoundTrip) {
  ChaChaRng rng(33);
  const Lrss lrss(3, 5);
  const Bytes secret = rng.bytes(40);
  const auto sharing = lrss.split(secret, rng);
  ASSERT_EQ(sharing.shares.size(), 5u);
  EXPECT_EQ(lrss.recover(sharing.shares, sharing.seed), secret);
}

TEST(Lrss, SubsetRecovery) {
  ChaChaRng rng(34);
  const Lrss lrss(2, 5);
  const Bytes secret = rng.bytes(20);
  const auto sharing = lrss.split(secret, rng);
  const std::vector<LrssShare> sub = {sharing.shares[4], sharing.shares[1]};
  EXPECT_EQ(lrss.recover(sub, sharing.seed), secret);
}

TEST(Lrss, BelowThresholdThrows) {
  ChaChaRng rng(35);
  const Lrss lrss(3, 5);
  const auto sharing = lrss.split(Bytes(10, 1), rng);
  const std::vector<LrssShare> sub = {sharing.shares[0], sharing.shares[1]};
  EXPECT_THROW(lrss.recover(sub, sharing.seed), UnrecoverableError);
}

TEST(Lrss, ShareSizeReflectsLeakageBudget) {
  const Lrss small(2, 4, 64), big(2, 4, 4096);
  EXPECT_LT(small.share_size(100), big.share_size(100));
  // Overhead is source + masked share, strictly more than Shamir's 1x.
  EXPECT_GT(small.share_size(100), 100u);
}

TEST(Lrss, SerializeRoundTrip) {
  LrssShare s{3, {1, 2, 3, 4, 5, 6, 7, 8}, {9, 10}};
  const LrssShare back = LrssShare::deserialize(s.serialize());
  EXPECT_EQ(back.index, 3);
  EXPECT_EQ(back.source, s.source);
  EXPECT_EQ(back.masked, s.masked);
}

// -------------------------------------------------- local-leakage attack

TEST(LeakageAttack, BreaksShamirWithOneBitPerShare) {
  // n = 20 > 8(t-1) = 16: the attack must find a functional, and the
  // parity it predicts from single-bit leaks must equal the true secret
  // parity on EVERY byte, across many random sharings.
  ChaChaRng rng(36);
  const unsigned t = 3, n = 20;

  std::vector<std::uint8_t> xs;
  for (unsigned i = 1; i <= n; ++i) xs.push_back(static_cast<std::uint8_t>(i));
  const auto plan = plan_shamir_lsb_attack(t, xs);
  ASSERT_TRUE(plan.feasible);
  ASSERT_NE(plan.secret_mask, 0);

  for (int trial = 0; trial < 20; ++trial) {
    SimRng sim(trial);
    const Bytes secret = sim.bytes(32);
    const auto shares = shamir_split(secret, t, n, rng);
    EXPECT_EQ(apply_shamir_lsb_attack(plan, shares),
              secret_parities(secret, plan.secret_mask))
        << "trial " << trial;
  }
}

TEST(LeakageAttack, InfeasibleWithSingleShare) {
  // One leaked bit against 8 unknown coefficient bits: the only way a
  // functional could exist is if the coefficient row were zero, and for
  // x = 1 the row is bit0(2^b) = [b == 0], which is nonzero.
  const auto plan = plan_shamir_lsb_attack(2, {1});
  EXPECT_FALSE(plan.feasible);
}

TEST(LeakageAttack, StructuredPointsBeatTheGenericBound) {
  // Counting alone suggests n > 8(t-1) leaked bits are needed, but the
  // GF(2)-rows induced by consecutive evaluation points are linearly
  // dependent, so the attack already succeeds at n = 8 for t = 3 — small
  // char-2 fields are even weaker than the naive argument implies.
  ChaChaRng rng(38);
  std::vector<std::uint8_t> xs;
  for (unsigned i = 1; i <= 8; ++i) xs.push_back(static_cast<std::uint8_t>(i));
  const auto plan = plan_shamir_lsb_attack(3, xs);
  ASSERT_TRUE(plan.feasible);
  SimRng sim(99);
  const Bytes secret = sim.bytes(16);
  const auto shares = shamir_split(secret, 3, 8, rng);
  EXPECT_EQ(apply_shamir_lsb_attack(plan, shares),
            secret_parities(secret, plan.secret_mask));
}

TEST(LeakageAttack, BreaksPackedSharingOverGf65536) {
  // Packed sharing inherits the linear structure: LSB leakage from each
  // share yields an exact parity over the packed secrets.
  ChaChaRng rng(40);
  const PackedSharing ps(3, 4, 60);  // t=3, k=4, n=60 > 16t
  const auto plan = plan_packed_lsb_attack(ps);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.secret_masks.size(), 4u);

  for (int trial = 0; trial < 10; ++trial) {
    SimRng sim(trial + 77);
    const Bytes secret = sim.bytes(64);  // 32 elems = 8 batches of k=4
    const auto shares = ps.split(secret, rng);
    EXPECT_EQ(apply_packed_lsb_attack(plan, shares),
              packed_secret_parities(secret, 4, plan.secret_masks))
        << "trial " << trial;
  }
}

TEST(LeakageAttack, PackedInfeasibleWithFewShares) {
  // n = 8 shares against 16*3 = 48 randomness bit-unknowns over a large
  // field: generically no eliminating combination exists.
  const PackedSharing ps(3, 2, 8);
  EXPECT_FALSE(plan_packed_lsb_attack(ps).feasible);
}

TEST(LeakageAttack, LrssResistsTheSameLeakage) {
  // Leak the LSB of every *stored* LRSS byte-0 (mask word) the same way;
  // the predicted parity should be uncorrelated with the secret parity —
  // about half the trials disagree.
  ChaChaRng rng(37);
  const unsigned t = 3, n = 20;
  const Lrss lrss(t, n);

  std::vector<std::uint8_t> xs;
  for (unsigned i = 1; i <= n; ++i) xs.push_back(static_cast<std::uint8_t>(i));
  const auto plan = plan_shamir_lsb_attack(t, xs);
  ASSERT_TRUE(plan.feasible);

  int agree = 0, total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    SimRng sim(trial + 1000);
    const Bytes secret = sim.bytes(8);
    const auto sharing = lrss.split(secret, rng);
    // Adversary leaks LSBs of the *masked* payload (what sits on disk).
    std::vector<Share> leaked_view;
    for (const auto& s : sharing.shares)
      leaked_view.push_back({s.index, s.masked});
    const auto predicted = apply_shamir_lsb_attack(plan, leaked_view);
    const auto truth = secret_parities(secret, plan.secret_mask);
    for (std::size_t p = 0; p < truth.size(); ++p) {
      agree += predicted[p] == truth[p];
      ++total;
    }
  }
  // Shamir would give 100% agreement; LRSS should be near 50%.
  const double rate = static_cast<double>(agree) / total;
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

}  // namespace
}  // namespace aegis
