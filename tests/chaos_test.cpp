// Seeded end-to-end chaos scenarios: epoch loops mixing scheduled
// outages, flaky links, at-rest bit-rot, the mobile adversary, and
// periodic scrubbing. The contract under test is the archive's
// self-healing story — while faults stay within a policy's tolerance the
// archive loses nothing and never returns wrong bytes; beyond tolerance
// it degrades to UnrecoverableError, never a crash or silent corruption.
#include <gtest/gtest.h>

#include "archive/archive.h"
#include "archive/doctor.h"
#include "archive/migration.h"
#include "crypto/chacha20.h"
#include "crypto/sha256.h"
#include "node/adversary.h"
#include "obs/obs.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

struct Rig {
  Cluster cluster;
  SchemeRegistry registry;
  ChaChaRng rng;
  TimestampAuthority tsa;
  Archive archive;

  Rig(ArchivalPolicy policy, std::uint64_t seed = 1)
      : cluster(policy.n, policy.channel, seed),
        rng(seed),
        tsa(rng),
        archive(cluster, std::move(policy), registry, tsa, rng) {}
};

Bytes test_data(std::size_t size, std::uint64_t seed) {
  SimRng rng(seed);
  return rng.bytes(size);
}

// ------------------------------------------------- put() under degradation

TEST(Chaos, PutAgainstPartiallyOfflineClusterReportsUnderReplication) {
  Rig rig(ArchivalPolicy::FigErasure());  // RS(6,9)
  const Bytes data = test_data(4000, 21);
  rig.cluster.fail_node(2);
  rig.cluster.fail_node(7);

  const PutReport report = rig.archive.put("doc", data);
  EXPECT_EQ(report.shards_total, 9u);
  EXPECT_EQ(report.shards_written, 7u);
  EXPECT_EQ(report.under_replication(), 2u);
  EXPECT_FALSE(report.fully_replicated());
  EXPECT_EQ(report.failed_shards, (std::vector<std::uint32_t>{2, 7}));

  // Degraded but durable: the data reads back through 7 of 9 shards.
  EXPECT_EQ(rig.archive.get("doc"), data);
}

TEST(Chaos, RepairHealsUnderReplicatedWrite) {
  Rig rig(ArchivalPolicy::FigErasure());
  const Bytes data = test_data(4000, 22);
  rig.cluster.fail_node(2);
  rig.cluster.fail_node(7);
  ASSERT_EQ(rig.archive.put("doc", data).under_replication(), 2u);

  rig.cluster.restore_node(2);
  rig.cluster.restore_node(7);
  EXPECT_EQ(rig.archive.repair("doc"), 2u);
  EXPECT_EQ(rig.archive.put("doc2", data).under_replication(), 0u);
  EXPECT_EQ(rig.archive.get("doc"), data);
  EXPECT_TRUE(rig.archive.verify("doc").ok());
}

TEST(Chaos, PutBelowThresholdThrowsAndRollsBack) {
  Rig rig(ArchivalPolicy::FigErasure());  // needs k=6 of 9
  for (NodeId id : {0u, 1u, 2u, 3u}) rig.cluster.fail_node(id);
  EXPECT_THROW(rig.archive.put("doc", test_data(1000, 23)),
               UnrecoverableError);
  // No zombie object: manifest gone, surviving nodes hold no shards.
  EXPECT_EQ(rig.archive.manifests().count("doc"), 0u);
  for (NodeId id = 4; id < 9; ++id)
    EXPECT_EQ(rig.cluster.node(id).get("doc", id), nullptr);
}

TEST(Chaos, PutThroughFlakyLinksRetriesToFullReplication) {
  Rig rig(ArchivalPolicy::FigErasure());
  LinkFaults flaky;
  flaky.drop_prob = 0.25;
  flaky.corrupt_prob = 0.2;
  rig.cluster.faults().set_link_faults(flaky);

  const Bytes data = test_data(6000, 24);
  const PutReport report = rig.archive.put("doc", data);
  // Bounded retry rode out every transient fault for this seed.
  EXPECT_TRUE(report.fully_replicated());
  EXPECT_GT(rig.archive.io_stats().upload_retries, 0u);
  EXPECT_EQ(rig.archive.get("doc"), data);
}

// --------------------------------------------------------- epoch chaos loops

// One policy's chaos loop: scheduled rolling outages (one node at a time,
// every other epoch), flaky links, light bit-rot, the mobile adversary
// harvesting away, and a scrub every epoch. Faults stay within tolerance,
// so every read of every epoch must return exactly the stored bytes.
void chaos_loop_zero_loss(ArchivalPolicy policy, std::uint64_t seed) {
  SCOPED_TRACE(policy.name + " seed " + std::to_string(seed));
  const unsigned n = policy.n;
  // Redundancy margin: shards the policy can lose and still decode.
  const unsigned margin = n - std::max(policy.k, policy.t);
  Rig rig(std::move(policy), seed);

  LinkFaults flaky;
  flaky.drop_prob = 0.1;
  flaky.corrupt_prob = 0.08;
  flaky.spike_prob = 0.1;
  rig.cluster.faults().set_link_faults(flaky);
  rig.cluster.faults().set_bitrot(4.0);
  // Rolling one-node outages, at most one node dark at a time. An
  // outage consumes margin for ~2 epochs (offline, then the breaker's
  // cooldown during which the stale shard cannot be rewritten), so the
  // cadence scales with the policy's margin: thin-margin policies get
  // recovery room between outages, fat-margin ones get hammered.
  const Epoch stride = margin >= 3 ? 2 : 4;
  for (Epoch e = 2; e <= 20; e += stride)
    rig.cluster.faults().schedule_outage((e / stride) % n, e, 1);

  std::map<ObjectId, Bytes> truth;
  for (int i = 0; i < 3; ++i) {
    const ObjectId id = "obj" + std::to_string(i);
    truth[id] = test_data(2000 + 700 * i, seed * 10 + i);
    rig.archive.put(id, truth[id]);
  }

  MobileAdversary adversary(1, CorruptionStrategy::kSweep, seed);

  for (Epoch e = 1; e <= 20; ++e) {
    rig.cluster.advance_epoch();
    adversary.corrupt_epoch(rig.cluster);  // harvests, per the threat model

    const Archive::ScrubReport scrub = rig.archive.scrub();
    EXPECT_EQ(scrub.unrecoverable, 0u) << "epoch " << e;

    for (const auto& [id, data] : truth)
      EXPECT_EQ(rig.archive.get(id), data) << "epoch " << e;
  }

  // The chaos was real: faults actually fired.
  EXPECT_FALSE(rig.cluster.faults().timeline().empty());
  EXPECT_GT(adversary.bytes_harvested(), 0u);
  for (const auto& [id, data] : truth)
    EXPECT_TRUE(rig.archive.verify(id).ok()) << id;
}

TEST(Chaos, ErasureSurvivesEpochLoopWithinTolerance) {
  chaos_loop_zero_loss(ArchivalPolicy::FigErasure(), 101);
}

TEST(Chaos, ShamirSurvivesEpochLoopWithinTolerance) {
  chaos_loop_zero_loss(ArchivalPolicy::FigShamir(), 102);
}

TEST(Chaos, LincosSurvivesEpochLoopWithinTolerance) {
  chaos_loop_zero_loss(ArchivalPolicy::Lincos(), 103);
}

// ------------------------------------------------------- beyond tolerance

TEST(Chaos, BeyondToleranceFailsCleanlyNeverWrongBytes) {
  Rig rig(ArchivalPolicy::FigErasure());  // tolerance: n - k = 3
  const Bytes data = test_data(3000, 31);
  rig.archive.put("doc", data);

  // Rot 4 shards at rest — one past tolerance.
  for (NodeId id = 0; id < 4; ++id) {
    for (StoredBlob* blob : rig.cluster.node(id).all_blobs_mut())
      blob->data[blob->data.size() / 2] ^= 0x40;
  }

  // Reads degrade to a clean failure: never a crash, never wrong bytes.
  try {
    const Bytes got = rig.archive.get("doc");
    FAIL() << "read beyond tolerance returned "
           << (got == data ? "impossibly-correct" : "WRONG") << " bytes";
  } catch (const UnrecoverableError&) {
    // expected
  }

  Archive::ScrubReport scrub = rig.archive.scrub();
  EXPECT_EQ(scrub.unrecoverable, 1u);

  // Within tolerance the same machinery heals: un-rot one shard.
  for (StoredBlob* blob : rig.cluster.node(3).all_blobs_mut())
    blob->data[blob->data.size() / 2] ^= 0x40;
  EXPECT_EQ(rig.archive.repair("doc"), 3u);
  EXPECT_EQ(rig.archive.get("doc"), data);
  EXPECT_TRUE(rig.archive.verify("doc").ok());
}

TEST(Chaos, TotalBlackoutIsUnrecoverableNotACrash) {
  Rig rig(ArchivalPolicy::FigShamir());  // (3,5)
  const Bytes data = test_data(800, 32);
  rig.archive.put("doc", data);
  for (NodeId id = 0; id < 5; ++id) rig.cluster.fail_node(id);
  EXPECT_THROW(rig.archive.get("doc"), UnrecoverableError);
  EXPECT_THROW(rig.archive.repair("doc"), UnrecoverableError);
  const Archive::ScrubReport scrub = rig.archive.scrub();
  EXPECT_EQ(scrub.unrecoverable, 1u);

  // Power restored: nothing was actually lost at rest.
  for (NodeId id = 0; id < 5; ++id) rig.cluster.restore_node(id);
  EXPECT_EQ(rig.archive.get("doc"), data);
}

// ------------------------------------------------ doctor vs at-rest bit-rot

// A quiescent archive (no client traffic) under seeded FaultInjector
// bit-rot: background doctor slices must detect the rot within a bounded
// number of steps, repair it, and leave the full AlertRaised -> repair
// -> AlertCleared trail in both the event stream and the audit ledger.
TEST(Chaos, DoctorHealsQuiescentBitRotWithAlertTrail) {
  ArchivalPolicy policy = ArchivalPolicy::FigErasure();  // RS(6, 9)
  policy.scrub_batch = 16;  // one slice sweeps the whole catalog
  Rig rig(std::move(policy), 424242);

  std::map<ObjectId, Bytes> truth;
  for (int i = 0; i < 3; ++i) {
    const ObjectId id = "obj" + std::to_string(i);
    truth[id] = test_data(1500 + 500 * i, 4240 + i);
    rig.archive.put(id, truth[id]);
  }

  // Ordered trail of scrub-corruption alerts and repairs.
  std::vector<std::pair<std::string, std::string>> trail;
  rig.cluster.obs().events().subscribe([&](const Event& e) {
    if (e.kind() == EventKind::kAlertRaised) {
      const auto& p = std::get<AlertRaised>(e.payload);
      if (p.rule == "scrub-corruption") trail.emplace_back("raised", p.rule);
    } else if (e.kind() == EventKind::kAlertCleared) {
      const auto& p = std::get<AlertCleared>(e.payload);
      if (p.rule == "scrub-corruption") trail.emplace_back("cleared", p.rule);
    } else if (e.kind() == EventKind::kRepairCompleted) {
      trail.emplace_back("repair",
                         std::get<RepairCompleted>(e.payload).object);
    }
  });

  Doctor doctor(rig.archive);  // alert baselines armed before any rot
  rig.cluster.faults().set_bitrot(4.0);

  unsigned detected_at = 0, repairs = 0;
  for (Epoch e = 1; e <= 12 && detected_at == 0; ++e) {
    rig.cluster.advance_epoch();
    const DoctorStepReport rep = doctor.step();
    EXPECT_EQ(rep.unrecoverable, 0u) << "epoch " << e;
    repairs += rep.shards_repaired;
    if (rep.damaged > 0) detected_at = e;
  }
  ASSERT_GT(detected_at, 0u) << "seeded bit-rot never landed within bound";
  ASSERT_GT(repairs, 0u);
  EXPECT_TRUE(doctor.alerts().active("scrub-corruption"));

  // Rot stops; within two quiet slices the rate alert must clear.
  rig.cluster.faults().set_bitrot(0.0);
  rig.cluster.advance_epoch();
  DoctorStepReport quiet = doctor.step();
  if (quiet.damaged > 0) {  // rot landed between the last slice and shutoff
    rig.cluster.advance_epoch();
    quiet = doctor.step();
  }
  EXPECT_EQ(quiet.damaged, 0u);
  EXPECT_FALSE(doctor.alerts().active("scrub-corruption"));
  EXPECT_EQ(doctor.degraded_count(), 0u);

  // Nothing lost, nothing wrong — and every object verifies.
  for (const auto& [id, data] : truth) {
    EXPECT_EQ(rig.archive.get(id), data) << id;
    EXPECT_TRUE(rig.archive.verify(id).ok()) << id;
  }

  // The event trail reads repair -> raised -> ... -> cleared: the slice
  // repairs before its alert evaluation, and quiescence clears.
  ASSERT_GE(trail.size(), 3u);
  std::size_t first_raised = trail.size();
  for (std::size_t i = 0; i < trail.size(); ++i)
    if (trail[i].first == "raised") { first_raised = i; break; }
  ASSERT_LT(first_raised, trail.size());
  bool repair_before_alert = false;
  for (std::size_t i = 0; i < first_raised; ++i)
    if (trail[i].first == "repair") repair_before_alert = true;
  EXPECT_TRUE(repair_before_alert);
  EXPECT_EQ(trail.back(), (std::pair<std::string, std::string>{
                              "cleared", "scrub-corruption"}));
  unsigned raised = 0, cleared = 0;
  for (const auto& [what, who] : trail) {
    if (what == "raised") ++raised;
    if (what == "cleared") ++cleared;
  }
  EXPECT_EQ(raised, cleared);  // every alert episode closed

  // The audit ledger carries the same trail, record for record: the
  // bus-driven repair and alert records appear in exactly the order the
  // events fired, and the chain verifies offline.
  std::vector<std::pair<std::string, std::string>> ledgered;
  for (const AuditRecord& r : rig.cluster.obs().ledger().records()) {
    if (r.op == "archive.repair")
      ledgered.emplace_back("repair", r.object);
    else if (r.op == "doctor.alert" && r.object == "scrub-corruption")
      ledgered.emplace_back(r.outcome, r.object);
  }
  EXPECT_EQ(ledgered, trail);
  EXPECT_TRUE(rig.cluster.obs().ledger().verify_chain().ok);
}

// --------------------------------------------------- migration under faults

// The §3.2 crash-consistency story: a whole-archive re-encryption hit by
// link faults mid-flight must never strand an object. The legacy path
// bumped the manifest generation and overwrote shards in place BEFORE
// knowing the dispersal landed, so a below-threshold write left the
// manifest pointing at a generation that never fully existed — the
// object was gone for good. The staged-generation protocol commits only
// after the new shard set is durable, so at every instant every object
// is readable under exactly one coherent cipher stack.
TEST(Chaos, ReencryptionFaultsMidFlightStrandNoObject) {
  ArchivalPolicy policy = ArchivalPolicy::CloudBaseline();  // RS(6,9) + AES
  policy.io_retries = 0;  // every transient fault is terminal this run
  policy.migrate_batch = 1;
  Rig rig(std::move(policy), 4242);

  std::map<ObjectId, Bytes> truth;
  for (int i = 0; i < 4; ++i) {
    const ObjectId id = "obj" + std::to_string(i);
    truth[id] = test_data(2500 + 400 * i, 900 + i);
    rig.archive.put(id, truth[id]);
  }

  // Flaky enough that staged dispersals fall below threshold for this
  // seed (the stall), while enough reads still squeak through.
  LinkFaults flaky;
  flaky.drop_prob = 0.3;
  rig.cluster.faults().set_link_faults(flaky);

  unsigned stalls = 0;
  bool migrated = false;
  for (int attempt = 0; attempt < 300 && !migrated; ++attempt) {
    try {
      rig.archive.reencrypt({SchemeId::kChaCha20});
      migrated = true;
    } catch (const UnrecoverableError&) {
      ++stalls;
      // THE invariant the old code violated: a faulted migration pass
      // leaves every object — committed and uncommitted alike —
      // perfectly readable. Check it with the faults off so the reads
      // themselves can't flake.
      rig.cluster.faults().set_link_faults(LinkFaults{});
      for (const auto& [id, data] : truth)
        ASSERT_EQ(rig.archive.get(id), data)
            << id << " stranded after a faulted migration pass";
      rig.cluster.faults().set_link_faults(flaky);
    }
  }
  ASSERT_TRUE(migrated);
  EXPECT_GT(stalls, 0u) << "seed produced no mid-flight fault; the "
                           "scenario tested nothing";

  rig.cluster.faults().set_link_faults(LinkFaults{});
  for (const auto& [id, data] : truth) {
    const ObjectManifest& m = rig.archive.manifest(id);
    EXPECT_EQ(m.current_ciphers(),
              std::vector<SchemeId>{SchemeId::kChaCha20});
    EXPECT_FALSE(m.staged.has_value());
    EXPECT_EQ(rig.archive.get(id), data);
  }
  // The chaos was real and the engine recorded it.
  const MetricsSnapshot snap = rig.cluster.obs().metrics().snapshot();
  ASSERT_NE(snap.find("archive.migrate.stalls"), nullptr);
  EXPECT_GE(snap.find("archive.migrate.stalls")->value, 1.0);
}

// Kill the operator mid-migration (archive instance destroyed), restore
// from the checkpoint pair (cursor + catalog) on a fresh instance over
// the same — still faulty — cluster, and finish the job.
TEST(Chaos, MigrationResumesFromCheckpointAfterCrash) {
  ArchivalPolicy policy = ArchivalPolicy::CloudBaseline();
  policy.migrate_batch = 1;
  Rig rig(std::move(policy), 77);

  std::map<ObjectId, Bytes> truth;
  for (int i = 0; i < 5; ++i) {
    const ObjectId id = "obj" + std::to_string(i);
    truth[id] = test_data(1800 + 250 * i, 700 + i);
    rig.archive.put(id, truth[id]);
  }

  LinkFaults flaky;
  flaky.drop_prob = 0.1;
  flaky.corrupt_prob = 0.05;
  rig.cluster.faults().set_link_faults(flaky);

  MigrationSpec spec;
  spec.kind = MigrationKind::kReencrypt;
  spec.fresh = {SchemeId::kChaCha20};
  MigrationEngine eng(rig.archive, spec);
  eng.step();
  eng.step();  // two objects committed, second still unpromoted

  const Bytes cursor_blob = eng.checkpoint();
  const Bytes catalog = rig.archive.export_catalog();

  // "Crash": the original archive and engine are never touched again.
  ArchivalPolicy policy2 = ArchivalPolicy::CloudBaseline();
  policy2.migrate_batch = 1;
  Archive restored(rig.cluster, std::move(policy2), rig.registry, rig.tsa,
                   rig.rng);
  restored.import_catalog(catalog);
  MigrationEngine resumed(restored,
                          MigrationState::deserialize(cursor_blob));
  for (int attempt = 0; attempt < 300 && !resumed.done(); ++attempt) {
    try {
      resumed.step();
    } catch (const UnrecoverableError&) {
      // stalled on a flaky dispersal; the cursor holds, try again
    }
  }
  ASSERT_TRUE(resumed.done());

  rig.cluster.faults().set_link_faults(LinkFaults{});
  for (const auto& [id, data] : truth) {
    const ObjectManifest& m = restored.manifest(id);
    EXPECT_EQ(m.generation, 1u) << id;
    EXPECT_EQ(m.current_ciphers(),
              std::vector<SchemeId>{SchemeId::kChaCha20});
    EXPECT_EQ(restored.get(id), data);
    EXPECT_TRUE(restored.verify(id).ok()) << id;
  }
}

// ------------------------------------------------------------ observability

TEST(Chaos, ForcedOutageProducesMatchingNodeQuarantinedEvent) {
  Rig rig(ArchivalPolicy::FigErasure());
  BreakerPolicy breaker;
  breaker.failure_threshold = 3;
  breaker.cooldown_epochs = 2;
  rig.cluster.set_breaker_policy(breaker);

  std::vector<NodeQuarantined> seen;
  rig.cluster.obs().events().subscribe([&](const Event& e) {
    if (const auto* q = std::get_if<NodeQuarantined>(&e.payload))
      seen.push_back(*q);
  });

  // Force the outage; each put fails its shard-2 write on the dead node.
  rig.cluster.fail_node(2);
  for (int i = 0; i < 3; ++i)
    rig.archive.put("doc" + std::to_string(i), test_data(1500, 40 + i));

  // The breaker opened exactly once, and every view of that fact agrees:
  // NodeHealth, the cluster.breaker.quarantines counter, and the event
  // stream all report the same quarantine of the same node.
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].node, 2u);
  EXPECT_EQ(seen[0].consecutive_failures, 3u);
  EXPECT_EQ(seen[0].until, rig.cluster.health(2).quarantined_until);
  EXPECT_EQ(rig.cluster.health(2).quarantines, 1u);

  unsigned total_quarantines = 0;
  for (NodeId id = 0; id < rig.cluster.size(); ++id)
    total_quarantines += rig.cluster.health(id).quarantines;
  EventBus& events = rig.cluster.obs().events();
  EXPECT_EQ(events.count(EventKind::kNodeQuarantined), total_quarantines);
  const MetricsSnapshot snap = rig.cluster.obs().metrics().snapshot();
  ASSERT_NE(snap.find("cluster.breaker.quarantines"), nullptr);
  EXPECT_EQ(snap.find("cluster.breaker.quarantines")->value,
            static_cast<double>(total_quarantines));

  // While quarantined, further puts skip the node without new events.
  rig.archive.put("later", test_data(500, 50));
  EXPECT_EQ(events.count(EventKind::kNodeQuarantined), 1u);

  // Cooldown passes, the node comes back, the re-probe closes the
  // breaker; restore_node announces itself on the bus too.
  rig.cluster.restore_node(2);
  EXPECT_EQ(events.count(EventKind::kNodeRestored), 1u);
  rig.cluster.advance_epoch();
  rig.cluster.advance_epoch();
  EXPECT_EQ(rig.archive.repair("doc0"), 1u);
  EXPECT_EQ(events.count(EventKind::kNodeQuarantined), 1u);  // no re-open
}

}  // namespace
}  // namespace aegis
