// Tests for Merkle trees and timestamp chains, including the temporal
// verification rules under simulated scheme breaks.
#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "crypto/sha256.h"
#include "integrity/merkle.h"
#include "integrity/notary.h"
#include "integrity/timestamp.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

// ---------------------------------------------------------------- Merkle

std::vector<Bytes> make_leaves(std::size_t n, std::uint64_t seed = 7) {
  SimRng rng(seed);
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < n; ++i) leaves.push_back(rng.bytes(50 + i));
  return leaves;
}

TEST(Merkle, SingleLeaf) {
  const auto leaves = make_leaves(1);
  const MerkleTree tree(leaves);
  const auto proof = tree.prove(0);
  EXPECT_TRUE(proof.steps.empty());
  EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[0], proof));
}

TEST(Merkle, AllProofsVerifyAcrossSizes) {
  for (std::size_t n : {2ul, 3ul, 4ul, 5ul, 7ul, 8ul, 9ul, 33ul}) {
    const auto leaves = make_leaves(n, n);
    const MerkleTree tree(leaves);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], tree.prove(i)))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Merkle, WrongLeafFails) {
  const auto leaves = make_leaves(5);
  const MerkleTree tree(leaves);
  const auto proof = tree.prove(2);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[3], proof));
  EXPECT_FALSE(
      MerkleTree::verify(tree.root(), to_bytes(std::string_view("x")), proof));
}

TEST(Merkle, TamperedProofFails) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  auto proof = tree.prove(3);
  proof.steps[1].hash[0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[3], proof));
  // Tampered direction bit also fails.
  auto proof2 = tree.prove(3);
  proof2.steps[0].sibling_on_left = !proof2.steps[0].sibling_on_left;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[3], proof2));
}

TEST(Merkle, DifferentLeavesDifferentRoots) {
  auto leaves = make_leaves(4);
  const Bytes root1 = MerkleTree(leaves).root();
  leaves[2][0] ^= 1;
  EXPECT_NE(MerkleTree(leaves).root(), root1);
}

TEST(Merkle, EmptyRejected) {
  EXPECT_THROW(MerkleTree({}), InvalidArgument);
}

TEST(Merkle, ProofIndexOutOfRange) {
  const MerkleTree tree(make_leaves(3));
  EXPECT_THROW(tree.prove(3), InvalidArgument);
}

// ------------------------------------------------------------ Timestamps

TEST(Timestamp, SingleLinkVerifies) {
  ChaChaRng rng(1);
  TimestampAuthority tsa(rng);
  SchemeRegistry reg;
  const Bytes digest = Sha256::hash(to_bytes(std::string_view("doc")));
  const auto chain =
      TimestampChain::begin(tsa, digest, SchemeId::kSha256, 0);
  EXPECT_EQ(chain.verify(digest, reg, 5), ChainStatus::kValid);
}

TEST(Timestamp, WrongPayloadRejected) {
  ChaChaRng rng(2);
  TimestampAuthority tsa(rng);
  SchemeRegistry reg;
  const Bytes digest = Sha256::hash(to_bytes(std::string_view("doc")));
  const auto chain =
      TimestampChain::begin(tsa, digest, SchemeId::kSha256, 0);
  const Bytes other = Sha256::hash(to_bytes(std::string_view("forged")));
  EXPECT_EQ(chain.verify(other, reg, 5), ChainStatus::kBrokenChainLink);
}

TEST(Timestamp, UnrenewedChainExpiresAtBreak) {
  // Signature generation A breaks at epoch 10; an un-renewed chain is
  // worthless from then on — the §3.3 failure mode.
  ChaChaRng rng(3);
  TimestampAuthority tsa(rng, SchemeId::kSigGenA);
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kSigGenA, 10);

  const Bytes digest = Sha256::hash(to_bytes(std::string_view("doc")));
  const auto chain =
      TimestampChain::begin(tsa, digest, SchemeId::kSha256, 0);
  EXPECT_EQ(chain.verify(digest, reg, 9), ChainStatus::kValid);
  EXPECT_EQ(chain.verify(digest, reg, 10), ChainStatus::kExpiredGuarantee);
  EXPECT_EQ(chain.verify(digest, reg, 100), ChainStatus::kExpiredGuarantee);
}

TEST(Timestamp, RenewalBeforeBreakPreservesValidity) {
  // Renewing with generation B before A breaks keeps the chain valid
  // forever after A's break — the Haber–Stornetta argument.
  ChaChaRng rng(4);
  TimestampAuthority tsa(rng, SchemeId::kSigGenA);
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kSigGenA, 10);

  const Bytes digest = Sha256::hash(to_bytes(std::string_view("doc")));
  auto chain = TimestampChain::begin(tsa, digest, SchemeId::kSha256, 0);

  tsa.rotate(SchemeId::kSigGenB, rng);
  chain.renew(tsa, 8);  // before A breaks at 10

  EXPECT_EQ(chain.length(), 2u);
  EXPECT_EQ(chain.verify(digest, reg, 50), ChainStatus::kValid);
}

TEST(Timestamp, RenewalAfterBreakIsTooLate) {
  // If A already broke when the renewal happened, the old guarantee had
  // lapsed — an attacker could have forged history in the gap.
  ChaChaRng rng(5);
  TimestampAuthority tsa(rng, SchemeId::kSigGenA);
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kSigGenA, 10);

  const Bytes digest = Sha256::hash(to_bytes(std::string_view("doc")));
  auto chain = TimestampChain::begin(tsa, digest, SchemeId::kSha256, 0);

  tsa.rotate(SchemeId::kSigGenB, rng);
  chain.renew(tsa, 12);  // A broke at 10: gap!

  EXPECT_EQ(chain.verify(digest, reg, 50), ChainStatus::kExpiredGuarantee);
}

TEST(Timestamp, ThreeGenerationChain) {
  ChaChaRng rng(6);
  TimestampAuthority tsa(rng, SchemeId::kSigGenA);
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kSigGenA, 10);
  reg.set_break_epoch(SchemeId::kSigGenB, 20);

  const Bytes digest = Sha256::hash(to_bytes(std::string_view("doc")));
  auto chain = TimestampChain::begin(tsa, digest, SchemeId::kSha256, 0);
  tsa.rotate(SchemeId::kSigGenB, rng);
  chain.renew(tsa, 9);
  tsa.rotate(SchemeId::kSigGenC, rng);
  chain.renew(tsa, 19);

  EXPECT_EQ(chain.length(), 3u);
  EXPECT_EQ(chain.verify(digest, reg, 1000), ChainStatus::kValid);
}

TEST(Timestamp, TamperedLinkDetected) {
  ChaChaRng rng(7);
  TimestampAuthority tsa(rng);
  SchemeRegistry reg;
  const Bytes digest = Sha256::hash(to_bytes(std::string_view("doc")));
  auto chain = TimestampChain::begin(tsa, digest, SchemeId::kSha256, 0);
  chain.renew(tsa, 1);

  // Mutate the first link after the fact: the second link's prev_hash
  // no longer matches.
  auto links = chain.links();
  // (links() is a copy accessor; rebuild a chain through serialization
  // to tamper — simpler: verify that deserialized+reserialized links
  // round-trip, and that a bitflip breaks the signature.)
  TimestampLink l = TimestampLink::deserialize(links[0].serialize());
  EXPECT_EQ(l.serialize(), links[0].serialize());
  l.epoch ^= 1;
  SchnorrSignature sig;
  sig.bytes = l.signature;
  EXPECT_FALSE(schnorr_verify(l.signer_pub, l.serialize_unsigned(), sig));
}

TEST(Timestamp, HashChainLeaksCommitChainHides) {
  ChaChaRng rng(8);
  TimestampAuthority tsa(rng);
  const Bytes digest = Sha256::hash(to_bytes(std::string_view("doc")));
  const auto hash_chain =
      TimestampChain::begin(tsa, digest, SchemeId::kSha256, 0);
  EXPECT_TRUE(hash_chain.leaks_content_on_digest_break());

  const auto stamp =
      commit_and_stamp(tsa, to_bytes(std::string_view("doc")), 0, rng);
  EXPECT_FALSE(stamp.chain.leaks_content_on_digest_break());
}

TEST(Timestamp, CommittedStampRoundTrip) {
  ChaChaRng rng(9);
  TimestampAuthority tsa(rng);
  SchemeRegistry reg;
  const Bytes doc = to_bytes(std::string_view("the medical record"));
  const auto stamp = commit_and_stamp(tsa, doc, 0, rng);
  EXPECT_TRUE(verify_committed_stamp(stamp, doc, reg, 5));
  EXPECT_FALSE(verify_committed_stamp(
      stamp, to_bytes(std::string_view("another record")), reg, 5));
}

TEST(Timestamp, LinkSerializationRoundTrip) {
  ChaChaRng rng(10);
  TimestampAuthority tsa(rng, SchemeId::kSigGenB);
  const auto link =
      tsa.stamp(Bytes{1, 2, 3}, SchemeId::kSha256, Bytes{9, 9}, 42);
  const auto back = TimestampLink::deserialize(link.serialize());
  EXPECT_EQ(back.epoch, 42u);
  EXPECT_EQ(back.payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(back.prev_hash, (Bytes{9, 9}));
  EXPECT_EQ(back.sig_scheme, SchemeId::kSigGenB);
  EXPECT_EQ(back.signature, link.signature);
}

// ---------------------------------------------------------------- Notary

TEST(Notary, KeepsChainsAliveAcrossACenturyOfBreaks) {
  ChaChaRng rng(20);
  TimestampAuthority tsa(rng, SchemeId::kSigGenA);
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kSigGenA, 30);
  reg.set_break_epoch(SchemeId::kSigGenB, 60);
  // GenC survives the horizon.

  NotaryService notary(tsa, reg, rng);

  const Bytes d1 = Sha256::hash(to_bytes(std::string_view("doc-1")));
  const Bytes d2 = Sha256::hash(to_bytes(std::string_view("doc-2")));
  auto c1 = TimestampChain::begin(tsa, d1, SchemeId::kSha256, 0);
  auto c2 = TimestampChain::begin(tsa, d2, SchemeId::kSha256, 0);
  notary.watch(&c1);
  notary.watch(&c2);
  EXPECT_EQ(notary.watched(), 2u);

  unsigned total_renewals = 0;
  for (Epoch e = 0; e < 100; ++e) total_renewals += notary.tick(e);

  // Two breaks to outlive -> exactly two renewals per chain, not one
  // per epoch: the notary renews only when needed.
  EXPECT_EQ(total_renewals, 4u);
  EXPECT_EQ(c1.length(), 3u);
  EXPECT_EQ(c1.verify(d1, reg, 100), ChainStatus::kValid);
  EXPECT_EQ(c2.verify(d2, reg, 100), ChainStatus::kValid);
}

TEST(Notary, UnwatchedChainDiesWatchedChainLives) {
  ChaChaRng rng(21);
  TimestampAuthority tsa(rng, SchemeId::kSigGenA);
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kSigGenA, 10);

  NotaryService notary(tsa, reg, rng);
  const Bytes d = Sha256::hash(to_bytes(std::string_view("doc")));
  auto watched = TimestampChain::begin(tsa, d, SchemeId::kSha256, 0);
  auto orphan = TimestampChain::begin(tsa, d, SchemeId::kSha256, 0);
  notary.watch(&watched);

  for (Epoch e = 0; e < 20; ++e) notary.tick(e);

  EXPECT_EQ(watched.verify(d, reg, 20), ChainStatus::kValid);
  EXPECT_EQ(orphan.verify(d, reg, 20), ChainStatus::kExpiredGuarantee);
}

TEST(Notary, ExhaustedLadderIsAHardError) {
  ChaChaRng rng(22);
  TimestampAuthority tsa(rng, SchemeId::kSigGenA);
  SchemeRegistry reg;
  // Everything breaks at 5: nowhere to rotate.
  reg.set_break_epoch(SchemeId::kSigGenA, 5);
  reg.set_break_epoch(SchemeId::kSigGenB, 5);
  reg.set_break_epoch(SchemeId::kSigGenC, 5);

  NotaryService notary(tsa, reg, rng);
  const Bytes d = Sha256::hash(to_bytes(std::string_view("doc")));
  auto chain = TimestampChain::begin(tsa, d, SchemeId::kSha256, 0);
  notary.watch(&chain);
  EXPECT_THROW(notary.tick(4), IntegrityError);
}

TEST(Notary, NoBreaksMeansNoChurn) {
  ChaChaRng rng(23);
  TimestampAuthority tsa(rng);
  SchemeRegistry reg;
  NotaryService notary(tsa, reg, rng);
  const Bytes d = Sha256::hash(to_bytes(std::string_view("doc")));
  auto chain = TimestampChain::begin(tsa, d, SchemeId::kSha256, 0);
  notary.watch(&chain);
  for (Epoch e = 0; e < 50; ++e) EXPECT_EQ(notary.tick(e), 0u);
  EXPECT_EQ(chain.length(), 1u);
}

TEST(Notary, Validation) {
  ChaChaRng rng(24);
  TimestampAuthority tsa(rng);
  SchemeRegistry reg;
  EXPECT_THROW(NotaryService(tsa, reg, rng, {}), InvalidArgument);
  EXPECT_THROW(NotaryService(tsa, reg, rng, {SchemeId::kSha256}),
               InvalidArgument);
  NotaryService notary(tsa, reg, rng);
  EXPECT_THROW(notary.watch(nullptr), InvalidArgument);
}

TEST(Timestamp, NonSignatureSchemeRejected) {
  ChaChaRng rng(11);
  EXPECT_THROW(TimestampAuthority(rng, SchemeId::kSha256), InvalidArgument);
  TimestampAuthority tsa(rng);
  EXPECT_THROW(tsa.rotate(SchemeId::kAes128Ctr, rng), InvalidArgument);
}

}  // namespace
}  // namespace aegis
