// Tests for the node substrate: storage nodes, cluster transport with
// wiretapping, and the mobile adversary.
#include <gtest/gtest.h>

#include "node/adversary.h"
#include "node/cluster.h"
#include "node/node.h"
#include "util/error.h"

namespace aegis {
namespace {

StoredBlob blob(const std::string& obj, std::uint32_t shard,
                std::uint32_t gen = 0, std::size_t size = 10) {
  StoredBlob b;
  b.object = obj;
  b.shard_index = shard;
  b.generation = gen;
  b.data = Bytes(size, static_cast<std::uint8_t>(shard));
  return b;
}

TEST(StorageNode, PutGetEraseAccounting) {
  StorageNode node(0);
  node.put(blob("a", 0, 0, 100));
  node.put(blob("a", 1, 0, 50));
  EXPECT_EQ(node.bytes_stored(), 150u);
  EXPECT_NE(node.get("a", 0), nullptr);
  EXPECT_EQ(node.get("a", 2), nullptr);

  // Replacing a shard updates accounting instead of double counting.
  node.put(blob("a", 0, 1, 70));
  EXPECT_EQ(node.bytes_stored(), 120u);
  EXPECT_EQ(node.get("a", 0)->generation, 1u);

  node.erase("a", 0);
  EXPECT_EQ(node.bytes_stored(), 50u);
  node.erase_object("a");
  EXPECT_EQ(node.bytes_stored(), 0u);
  EXPECT_EQ(node.blob_count(), 0u);
}

TEST(StorageNode, OfflineAnswersNothing) {
  StorageNode node(0);
  node.put(blob("a", 0));
  node.set_online(false);
  EXPECT_EQ(node.get("a", 0), nullptr);
  node.set_online(true);
  EXPECT_NE(node.get("a", 0), nullptr);
}

TEST(StoredBlob, SerializationRoundTrip) {
  StoredBlob b = blob("object-name", 3, 7, 20);
  b.stored_at = 99;
  const StoredBlob back = StoredBlob::deserialize(b.serialize());
  EXPECT_EQ(back.object, "object-name");
  EXPECT_EQ(back.shard_index, 3u);
  EXPECT_EQ(back.generation, 7u);
  EXPECT_EQ(back.stored_at, 99u);
  EXPECT_EQ(back.data, b.data);
}

TEST(Cluster, UploadDownloadRoundTrip) {
  for (ChannelKind kind :
       {ChannelKind::kPlain, ChannelKind::kTls, ChannelKind::kQkd}) {
    Cluster cluster(3, kind, 42);
    EXPECT_EQ(cluster.upload(1, blob("obj", 0, 0, 64)), TransferStatus::kOk);
    const auto got = cluster.download(1, "obj", 0);
    ASSERT_TRUE(got.ok()) << to_string(kind);
    EXPECT_EQ(got->data, Bytes(64, 0));
    EXPECT_EQ(cluster.stats().uploads, 1u);
    EXPECT_EQ(cluster.stats().downloads, 1u);
  }
}

TEST(Cluster, OfflineNodeRefusesTraffic) {
  Cluster cluster(3, ChannelKind::kPlain, 1);
  cluster.fail_node(2);
  EXPECT_EQ(cluster.upload(2, blob("x", 0)), TransferStatus::kNodeOffline);
  EXPECT_EQ(cluster.download(2, "x", 0).status,
            TransferStatus::kNodeOffline);
  EXPECT_EQ(cluster.online_count(), 2u);
  cluster.restore_node(2);
  EXPECT_EQ(cluster.upload(2, blob("x", 0)), TransferStatus::kOk);
  EXPECT_EQ(cluster.download(2, "y", 9).status, TransferStatus::kMissing);
}

TEST(Cluster, WiretapRecordsEveryConversation) {
  Cluster cluster(2, ChannelKind::kTls, 7);
  cluster.upload(0, blob("a", 0));
  cluster.upload(1, blob("a", 1));
  cluster.download(0, "a", 0);
  ASSERT_EQ(cluster.wiretap().size(), 3u);
  EXPECT_EQ(cluster.wiretap()[0].payload.object, "a");
  EXPECT_EQ(cluster.wiretap()[0].transcript.cipher, SchemeId::kAes256Ctr);
}

TEST(Cluster, TlsWiretapFallsWithBreak) {
  Cluster cluster(2, ChannelKind::kTls, 7);
  cluster.upload(0, blob("a", 0));
  SchemeRegistry reg;
  EXPECT_EQ(cluster.wiretap()[0].transcript.falls_at(reg), kNever);
  reg.set_break_epoch(SchemeId::kEcdhSecp256k1, 25);
  EXPECT_EQ(cluster.wiretap()[0].transcript.falls_at(reg), 25u);
}

TEST(Cluster, QkdWiretapNeverFalls) {
  Cluster cluster(2, ChannelKind::kQkd, 7);
  cluster.upload(0, blob("a", 0));
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kEcdhSecp256k1, 1);
  reg.set_break_epoch(SchemeId::kAes256Ctr, 1);
  EXPECT_EQ(cluster.wiretap()[0].transcript.falls_at(reg), kNever);
}

TEST(Cluster, EpochClock) {
  Cluster cluster(1, ChannelKind::kPlain, 1);
  EXPECT_EQ(cluster.now(), 0u);
  cluster.advance_epoch();
  cluster.advance_epoch();
  EXPECT_EQ(cluster.now(), 2u);
}

TEST(Cluster, Validation) {
  EXPECT_THROW(Cluster(0, ChannelKind::kPlain, 1), InvalidArgument);
  Cluster cluster(2, ChannelKind::kPlain, 1);
  EXPECT_THROW(cluster.node(5), InvalidArgument);
}

TEST(Cluster, VirtualTimeAccounting) {
  Cluster cluster(2, ChannelKind::kPlain, 5);
  EXPECT_DOUBLE_EQ(cluster.simulated_ms(), 0.0);

  // Node 0: default WAN (40ms, 50 MB/s). Node 1: LAN-fast.
  cluster.set_node_profile(1, {1.0, 1000.0});
  cluster.upload(0, blob("a", 0, 0, 50000));
  const double after0 = cluster.simulated_ms();
  EXPECT_GT(after0, 40.0);   // latency floor
  EXPECT_LT(after0, 45.0);   // 50 KB at 50 MB/s ~ 1ms

  cluster.upload(1, blob("a", 1, 0, 50000));
  const double delta1 = cluster.simulated_ms() - after0;
  EXPECT_LT(delta1, after0);  // the fast node is cheaper

  cluster.download(0, "a", 0);
  EXPECT_GT(cluster.simulated_ms(), after0 + delta1 + 40.0);
}

TEST(Cluster, NodeProfileValidation) {
  Cluster cluster(2, ChannelKind::kPlain, 5);
  EXPECT_THROW(cluster.set_node_profile(9, {1, 1}), InvalidArgument);
  EXPECT_THROW(cluster.set_node_profile(0, {1, 0}), InvalidArgument);
  EXPECT_THROW(cluster.set_node_profile(0, {-1, 10}), InvalidArgument);
}

// -------------------------------------------------------------- Adversary

Cluster populated_cluster(unsigned n) {
  Cluster cluster(n, ChannelKind::kPlain, 3);
  for (unsigned i = 0; i < n; ++i)
    cluster.upload(i, blob("obj", i, 0, 32));
  return cluster;
}

TEST(MobileAdversary, BudgetRespected) {
  auto cluster = populated_cluster(10);
  MobileAdversary adv(3, CorruptionStrategy::kRandom, 1);
  const auto touched = adv.corrupt_epoch(cluster);
  EXPECT_EQ(touched.size(), 3u);
  EXPECT_EQ(adv.harvest().size(), 3u);  // one blob per corrupted node
}

TEST(MobileAdversary, SweepCoversAllNodesOverTime) {
  auto cluster = populated_cluster(6);
  MobileAdversary adv(2, CorruptionStrategy::kSweep, 1);
  for (int e = 0; e < 3; ++e) {
    adv.corrupt_epoch(cluster);
    cluster.advance_epoch();
  }
  EXPECT_EQ(adv.nodes_ever_corrupted(), 6u);
}

TEST(MobileAdversary, StickyStaysPut) {
  auto cluster = populated_cluster(8);
  MobileAdversary adv(2, CorruptionStrategy::kSticky, 1);
  for (int e = 0; e < 5; ++e) {
    adv.corrupt_epoch(cluster);
    cluster.advance_epoch();
  }
  EXPECT_EQ(adv.nodes_ever_corrupted(), 2u);
  // But it re-harvests those nodes every epoch.
  EXPECT_EQ(adv.harvest().size(), 10u);
}

TEST(MobileAdversary, HarvestRecordsEpochAndGeneration) {
  auto cluster = populated_cluster(4);
  cluster.advance_epoch();
  cluster.advance_epoch();
  MobileAdversary adv(1, CorruptionStrategy::kSweep, 1);
  adv.corrupt_epoch(cluster);
  ASSERT_EQ(adv.harvest().size(), 1u);
  EXPECT_EQ(adv.harvest()[0].taken_at, 2u);
  EXPECT_EQ(adv.harvest()[0].blob.generation, 0u);
  EXPECT_GT(adv.bytes_harvested(), 0u);
}

TEST(MobileAdversary, ZeroBudgetRejected) {
  EXPECT_THROW(MobileAdversary(0, CorruptionStrategy::kRandom, 1),
               InvalidArgument);
}

// ---------------------------------------------------------- Fault injection

TEST(FaultInjector, ScheduledOutageCrashesAndRestarts) {
  Cluster cluster(3, ChannelKind::kPlain, 5);
  cluster.faults().schedule_outage(1, 2, 3);  // down epochs 2,3,4
  for (Epoch e = 1; e <= 6; ++e) {
    cluster.advance_epoch();
    const bool expect_online = e < 2 || e >= 5;
    EXPECT_EQ(cluster.node(1).online(), expect_online) << "epoch " << e;
  }
  // Timeline recorded exactly one crash and one restart for node 1.
  unsigned crashes = 0, restarts = 0;
  for (const FaultEvent& ev : cluster.faults().timeline()) {
    crashes += ev.kind == FaultEvent::Kind::kCrash;
    restarts += ev.kind == FaultEvent::Kind::kRestart;
  }
  EXPECT_EQ(crashes, 1u);
  EXPECT_EQ(restarts, 1u);
}

TEST(FaultInjector, DroppedConversationsReportAndCharge) {
  Cluster cluster(2, ChannelKind::kPlain, 6);
  LinkFaults flaky;
  flaky.drop_prob = 1.0;
  cluster.faults().set_link_faults(0, flaky);

  EXPECT_EQ(cluster.upload(0, blob("a", 0)), TransferStatus::kDropped);
  EXPECT_GT(cluster.simulated_ms(), 0.0);  // the timeout is not free
  EXPECT_EQ(cluster.stats().uploads, 0u);  // nothing landed
  EXPECT_EQ(cluster.stats().dropped, 1u);
  // The healthy node is unaffected.
  EXPECT_EQ(cluster.upload(1, blob("a", 1)), TransferStatus::kOk);
}

TEST(FaultInjector, CorruptedUploadNeverStoresCleanShard) {
  Cluster cluster(1, ChannelKind::kPlain, 7);
  LinkFaults noisy;
  noisy.corrupt_prob = 1.0;
  cluster.faults().set_link_faults(noisy);

  const StoredBlob sent = blob("a", 0, 0, 256);
  EXPECT_EQ(cluster.upload(0, sent), TransferStatus::kCorrupted);
  // Whatever (if anything) landed must differ from the sent frame.
  const StoredBlob* stored = cluster.node(0).get("a", 0);
  if (stored != nullptr) {
    EXPECT_FALSE(stored->object == sent.object &&
                 stored->shard_index == sent.shard_index &&
                 stored->generation == sent.generation &&
                 stored->stored_at == sent.stored_at &&
                 stored->data == sent.data);
  }
}

TEST(FaultInjector, LatencySpikeMultipliesVirtualTime) {
  Cluster calm(1, ChannelKind::kPlain, 8);
  Cluster spiky(1, ChannelKind::kPlain, 8);
  LinkFaults f;
  f.spike_prob = 1.0;
  f.spike_multiplier = 10.0;
  spiky.faults().set_link_faults(f);

  calm.upload(0, blob("a", 0, 0, 1000));
  spiky.upload(0, blob("a", 0, 0, 1000));
  EXPECT_NEAR(spiky.simulated_ms(), 10.0 * calm.simulated_ms(), 1e-6);
}

TEST(FaultInjector, BitRotFlipsStoredBits) {
  Cluster cluster(1, ChannelKind::kPlain, 9);
  cluster.upload(0, blob("a", 0, 0, 4096));
  const Bytes before = cluster.node(0).get("a", 0)->data;

  cluster.faults().set_bitrot(10000.0);  // heavy rot, tiny blob
  cluster.advance_epoch();
  const Bytes after = cluster.node(0).get("a", 0)->data;
  EXPECT_NE(before, after);
  EXPECT_EQ(before.size(), after.size());

  bool rot_logged = false;
  for (const FaultEvent& ev : cluster.faults().timeline())
    rot_logged |= ev.kind == FaultEvent::Kind::kBitRot;
  EXPECT_TRUE(rot_logged);
}

TEST(FaultInjector, Validation) {
  Cluster cluster(1, ChannelKind::kPlain, 10);
  EXPECT_THROW(cluster.faults().schedule_outage(0, 1, 0), InvalidArgument);
  EXPECT_THROW(cluster.faults().set_random_outages(1.5, 1, 2),
               InvalidArgument);
  EXPECT_THROW(cluster.faults().set_random_outages(0.1, 3, 2),
               InvalidArgument);
  EXPECT_THROW(cluster.faults().set_bitrot(-1.0), InvalidArgument);
  LinkFaults bad;
  bad.drop_prob = 2.0;
  EXPECT_THROW(cluster.faults().set_link_faults(bad), InvalidArgument);
  EXPECT_FALSE(cluster.faults().active());
  cluster.faults().set_bitrot(0.5);
  EXPECT_TRUE(cluster.faults().active());
}

// ---------------------------------------------------------- Circuit breaker

TEST(CircuitBreaker, QuarantinesAfterConsecutiveFailuresAndReprobes) {
  Cluster cluster(2, ChannelKind::kPlain, 11);
  BreakerPolicy breaker;
  breaker.failure_threshold = 3;
  breaker.cooldown_epochs = 2;
  cluster.set_breaker_policy(breaker);

  cluster.node(0).set_online(false);  // direct: keep health bookkeeping
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(cluster.upload(0, blob("a", 0)), TransferStatus::kNodeOffline);

  // Breaker now open: requests are refused without touching the node.
  EXPECT_EQ(cluster.upload(0, blob("a", 0)), TransferStatus::kQuarantined);
  EXPECT_EQ(cluster.download(0, "a", 0).status,
            TransferStatus::kQuarantined);
  EXPECT_EQ(cluster.health(0).quarantines, 1u);
  EXPECT_EQ(cluster.stats().quarantine_rejections, 2u);

  // The node comes back, but the breaker stays open until the cooldown.
  cluster.node(0).set_online(true);
  EXPECT_EQ(cluster.upload(0, blob("a", 0)), TransferStatus::kQuarantined);
  cluster.advance_epoch();
  cluster.advance_epoch();
  // Cooldown over: the re-probe goes through and closes the breaker.
  EXPECT_EQ(cluster.upload(0, blob("a", 0)), TransferStatus::kOk);
  EXPECT_EQ(cluster.health(0).consecutive_failures, 0u);
}

TEST(CircuitBreaker, FailedReprobeReopensImmediately) {
  Cluster cluster(1, ChannelKind::kPlain, 12);
  BreakerPolicy breaker;
  breaker.failure_threshold = 2;
  breaker.cooldown_epochs = 1;
  cluster.set_breaker_policy(breaker);

  cluster.node(0).set_online(false);
  cluster.upload(0, blob("a", 0));
  cluster.upload(0, blob("a", 0));
  EXPECT_EQ(cluster.upload(0, blob("a", 0)), TransferStatus::kQuarantined);

  cluster.advance_epoch();  // cooldown passes, node still down
  EXPECT_EQ(cluster.upload(0, blob("a", 0)), TransferStatus::kNodeOffline);
  // That failed probe re-opened the breaker at once.
  EXPECT_EQ(cluster.upload(0, blob("a", 0)), TransferStatus::kQuarantined);
  EXPECT_EQ(cluster.health(0).quarantines, 2u);
}

TEST(CircuitBreaker, ManualRestoreClearsBreakerState) {
  Cluster cluster(1, ChannelKind::kPlain, 13);
  cluster.fail_node(0);
  for (int i = 0; i < 5; ++i) cluster.upload(0, blob("a", 0));
  EXPECT_EQ(cluster.upload(0, blob("a", 0)), TransferStatus::kQuarantined);

  cluster.restore_node(0);  // administrator says: healthy again
  EXPECT_EQ(cluster.upload(0, blob("a", 0)), TransferStatus::kOk);
}

TEST(StoredBlob, EpochRoundTripsExactly) {
  // Proactive-refresh bookkeeping depends on exact stored_at round-trips
  // through the u32 wire field — exercise the extreme epoch values.
  for (const Epoch epoch : {Epoch{0}, Epoch{1}, Epoch{0xffffffffu}}) {
    StoredBlob b = blob("e", 0);
    b.stored_at = epoch;
    EXPECT_EQ(StoredBlob::deserialize(b.serialize()).stored_at, epoch);
  }
}

}  // namespace
}  // namespace aegis
