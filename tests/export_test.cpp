// Exporter conformance and audit-ledger tamper evidence: Prometheus
// text exposition (name mangling, cumulative histogram buckets, the
// le="+Inf" == _count invariant), Chrome trace-event JSON (well-formed,
// nesting preserved under the synthetic timeline), and the hash-chained
// ledger (round trip, event-bus population, single-byte tampering of
// ANY field localized to exactly the tampered record).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "json_checker.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/error.h"

namespace aegis {
namespace {

// ------------------------------------------------------------- prometheus

TEST(PrometheusExport, NameMangling) {
  EXPECT_EQ(prometheus_name("archive.put.count"), "aegis_archive_put_count");
  EXPECT_EQ(prometheus_name("cluster.epoch"), "aegis_cluster_epoch");
  EXPECT_EQ(prometheus_name("a.b.c.d"), "aegis_a_b_c_d");
}

TEST(PrometheusExport, CounterAndGaugeFamilies) {
  MetricsRegistry reg;
  reg.counter("archive.put.count").inc(12);
  reg.gauge("cluster.nodes_online").set(-3);
  const std::string text = to_prometheus(reg.snapshot());

  EXPECT_NE(text.find("# TYPE aegis_archive_put_count counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("\naegis_archive_put_count 12\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aegis_cluster_nodes_online gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("\naegis_cluster_nodes_online -3\n"),
            std::string::npos);
}

// Pulls every "<family>_bucket{le="X"} N" line of one family, in order.
std::vector<std::pair<std::string, std::uint64_t>> bucket_lines(
    const std::string& text, const std::string& family) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  const std::string prefix = family + "_bucket{le=\"";
  std::size_t pos = 0;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    const std::size_t le_start = pos + prefix.size();
    const std::size_t le_end = text.find('"', le_start);
    const std::size_t val_start = text.find(' ', le_end) + 1;
    out.emplace_back(text.substr(le_start, le_end - le_start),
                     std::strtoull(text.c_str() + val_start, nullptr, 10));
    pos = le_end;
  }
  return out;
}

TEST(PrometheusExport, HistogramBucketInvariants) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("archive.put.ms", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(5.0);
  h.observe(1000.0);  // overflow bucket
  const std::string text = to_prometheus(reg.snapshot());

  EXPECT_NE(text.find("# TYPE aegis_archive_put_ms histogram\n"),
            std::string::npos);
  const auto buckets = bucket_lines(text, "aegis_archive_put_ms");
  ASSERT_EQ(buckets.size(), 4u);
  // Cumulative counts, monotone nondecreasing, bounds in order.
  EXPECT_EQ(buckets[0], (std::pair<std::string, std::uint64_t>{"1", 1}));
  EXPECT_EQ(buckets[1], (std::pair<std::string, std::uint64_t>{"10", 3}));
  EXPECT_EQ(buckets[2], (std::pair<std::string, std::uint64_t>{"100", 3}));
  for (std::size_t i = 1; i < buckets.size(); ++i)
    EXPECT_GE(buckets[i].second, buckets[i - 1].second);
  // The final bucket is always le="+Inf" and equals _count.
  EXPECT_EQ(buckets.back().first, "+Inf");
  EXPECT_EQ(buckets.back().second, 4u);
  EXPECT_NE(text.find("aegis_archive_put_ms_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("aegis_archive_put_ms_sum 1010.5\n"),
            std::string::npos);
}

// ------------------------------------------------------------ chrome trace

struct Slice {
  std::string name;
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  std::uint64_t end() const { return ts + dur; }
};

std::vector<Slice> parse_slices(const std::string& json) {
  std::vector<Slice> out;
  std::size_t pos = 0;
  while ((pos = json.find("{\"name\":\"", pos)) != std::string::npos) {
    Slice s;
    const std::size_t name_start = pos + 9;
    const std::size_t name_end = json.find('"', name_start);
    s.name = json.substr(name_start, name_end - name_start);
    const std::size_t ts_pos = json.find("\"ts\":", name_end) + 5;
    s.ts = std::strtoull(json.c_str() + ts_pos, nullptr, 10);
    const std::size_t dur_pos = json.find("\"dur\":", ts_pos) + 6;
    s.dur = std::strtoull(json.c_str() + dur_pos, nullptr, 10);
    out.push_back(std::move(s));
    pos = dur_pos;
  }
  return out;
}

TEST(ChromeTraceExport, WellFormedAndPreservesNesting) {
  Tracer tracer(16);
  Epoch now = 3;
  tracer.set_epoch_source([&now] { return now; });
  {
    TraceSpan outer(tracer, "archive.scrub");
    {
      TraceSpan inner(tracer, "archive.audit", {{"object", "doc-1"}});
      now = 4;
    }
    { TraceSpan sibling(tracer, "archive.repair"); }
  }
  { TraceSpan later(tracer, "archive.get"); }

  const std::string json = to_chrome_trace(tracer.snapshot());
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"object\":\"doc-1\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch_end\":4"), std::string::npos);

  const std::vector<Slice> slices = parse_slices(json);
  ASSERT_EQ(slices.size(), 4u);
  auto find = [&](const std::string& name) -> const Slice& {
    for (const Slice& s : slices)
      if (s.name == name) return s;
    static Slice none;
    ADD_FAILURE() << "no slice " << name;
    return none;
  };
  const Slice& outer = find("archive.scrub");
  const Slice& inner = find("archive.audit");
  const Slice& sibling = find("archive.repair");
  const Slice& later = find("archive.get");
  // Children strictly inside the parent; siblings disjoint; the span
  // begun after the parent closed starts after it.
  EXPECT_GT(inner.ts, outer.ts);
  EXPECT_LT(inner.end(), outer.end());
  EXPECT_GT(sibling.ts, outer.ts);
  EXPECT_LT(sibling.end(), outer.end());
  EXPECT_TRUE(inner.end() <= sibling.ts || sibling.end() <= inner.ts);
  EXPECT_GT(later.ts, outer.ts);
}

TEST(ChromeTraceExport, EscapesAttrValues) {
  Tracer tracer(4);
  tracer.set_epoch_source([] { return Epoch{0}; });
  { TraceSpan s(tracer, "archive.put", {{"object", "he said \"hi\"\\n"}}); }
  const std::string json = to_chrome_trace(tracer.snapshot());
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST(JsonEscapeFn, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

// ------------------------------------------------------------ audit ledger

TEST(AuditLedger, AppendVerifySerializeRoundTrip) {
  AuditLedger ledger;
  EXPECT_TRUE(ledger.verify_chain().ok);  // empty chain is valid
  ledger.append(1, "archive.put", "doc-a", "ok");
  ledger.append(1, "archive.put", "doc-b", "under:2");
  ledger.append(3, "archive.scrub", "", "objects:2,repaired:0");
  ASSERT_EQ(ledger.size(), 3u);
  EXPECT_TRUE(ledger.verify_chain().ok);
  // The chain links: each prev_hash is the predecessor's entry_hash.
  EXPECT_EQ(ledger.records()[1].prev_hash, ledger.records()[0].entry_hash);
  EXPECT_EQ(ledger.head(), ledger.records()[2].entry_hash);

  const Bytes wire = ledger.serialize();
  const AuditLedger copy = AuditLedger::deserialize(wire);
  ASSERT_EQ(copy.size(), 3u);
  EXPECT_TRUE(copy.verify_chain().ok);
  EXPECT_EQ(copy.head(), ledger.head());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(copy.records()[i].op, ledger.records()[i].op);
    EXPECT_EQ(copy.records()[i].entry_hash, ledger.records()[i].entry_hash);
    EXPECT_TRUE(JsonChecker(copy.records()[i].to_json()).valid());
  }
}

TEST(AuditLedger, AttachLedgersControlPlaneEventsOnly) {
  EventBus bus;
  AuditLedger ledger;
  ledger.attach(bus);
  bus.publish(2, NodeQuarantined{4, 7});
  bus.publish(2, ShardWritten{"doc", 0, 1, 4096});  // data plane: ignored
  bus.publish(3, ScrubCompleted{5, 2, 0});
  bus.publish(3, AlertRaised{"scrub-corruption", "archive.scrub.corrupt",
                             2.0, 1.0});
  bus.publish(4, AlertCleared{"scrub-corruption", "archive.scrub.corrupt",
                              0.0, 1.0});
  ASSERT_EQ(ledger.size(), 4u);
  EXPECT_EQ(ledger.records()[0].op, "cluster.quarantine");
  EXPECT_EQ(ledger.records()[0].object, "node:4");
  EXPECT_EQ(ledger.records()[1].op, "archive.scrub");
  EXPECT_EQ(ledger.records()[1].outcome,
            "objects:5,repaired:2,unrecoverable:0");
  EXPECT_EQ(ledger.records()[2].op, "doctor.alert");
  EXPECT_EQ(ledger.records()[2].object, "scrub-corruption");
  EXPECT_EQ(ledger.records()[2].outcome, "raised");
  EXPECT_EQ(ledger.records()[3].outcome, "cleared");
  EXPECT_TRUE(ledger.verify_chain().ok);
}

// Wire layout of one record with the fixed-width strings used below
// (ByteWriter length prefixes are 4 bytes; hashes are 32):
//   seq u64                     @ 0   (8 bytes)
//   prev_hash len+data          @ 8   (content @ 12, 32 bytes)
//   epoch u32                   @ 44  (4 bytes)
//   op len+data ("o<d>")        @ 48  (content @ 52, 2 bytes)
//   object len+data ("b<d>")    @ 54  (content @ 58, 2 bytes)
//   outcome len+data ("c<d>")   @ 60  (content @ 64, 2 bytes)
//   entry_hash len+data         @ 66  (content @ 70, 32 bytes)
// record size 102; ledger = u32 count + records + head len+data.
constexpr std::size_t kRecordSize = 102;

std::size_t field_offset(std::size_t record, std::size_t field) {
  static constexpr std::size_t kContent[] = {0, 12, 44, 52, 58, 64, 70};
  return 4 + record * kRecordSize + kContent[field];
}

TEST(AuditLedger, SingleByteTamperOfAnyFieldIsLocalized) {
  AuditLedger ledger;
  for (int i = 0; i < 4; ++i) {
    const char d = static_cast<char>('0' + i);
    ledger.append(static_cast<Epoch>(10 + i), std::string("o") + d,
                  std::string("b") + d, std::string("c") + d);
  }
  const Bytes wire = ledger.serialize();
  ASSERT_EQ(wire.size(), 4 + 4 * kRecordSize + 4 + 32);

  const char* kFieldNames[] = {"seq",     "prev_hash", "epoch",     "op",
                               "object",  "outcome",   "entry_hash"};
  for (std::size_t rec = 0; rec < 4; ++rec) {
    for (std::size_t field = 0; field < 7; ++field) {
      Bytes tampered = wire;
      tampered[field_offset(rec, field)] ^= 0x01;
      const AuditLedger bad = AuditLedger::deserialize(tampered);
      const ChainVerdict v = bad.verify_chain();
      EXPECT_FALSE(v.ok) << "record " << rec << " field "
                         << kFieldNames[field];
      EXPECT_EQ(v.first_bad, rec)
          << "record " << rec << " field " << kFieldNames[field] << ": "
          << v.reason;
    }
  }
}

TEST(AuditLedger, TamperedHeadHashDetected) {
  AuditLedger ledger;
  ledger.append(1, "archive.put", "doc", "ok");
  ledger.append(2, "archive.remove", "doc", "ok");
  Bytes wire = ledger.serialize();
  wire[wire.size() - 1] ^= 0x80;  // last byte of the stored head
  const AuditLedger bad = AuditLedger::deserialize(wire);
  const ChainVerdict v = bad.verify_chain();
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.first_bad, 1u);  // blamed on the newest record
}

TEST(AuditLedger, DeserializeRejectsWrongHashWidth) {
  AuditLedger ledger;
  ledger.append(1, "archive.put", "doc", "ok");
  Bytes wire = ledger.serialize();
  // Shrink the prev_hash length prefix of record 0 (record starts at 4,
  // after its 8-byte seq): parse must refuse rather than construct a
  // chain with a malformed hash.
  wire[4 + 8] = 16;
  EXPECT_THROW(AuditLedger::deserialize(wire), Error);
}

}  // namespace
}  // namespace aegis
