// MigrationEngine: the staged-generation protocol (stage -> publish ->
// promote), checkpoint/resume across Archive instances, batch pacing,
// the reserved-bandwidth throttle, and the observability it emits.
// Crash/fault scenarios that mix the engine with the fault injector
// live in chaos_test.cpp; this file covers the engine's contract on a
// healthy cluster.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "archive/archive.h"
#include "archive/migration.h"
#include "crypto/chacha20.h"
#include "crypto/sha256.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

struct Rig {
  Cluster cluster;
  SchemeRegistry registry;
  ChaChaRng rng;
  TimestampAuthority tsa;
  Archive archive;

  Rig(ArchivalPolicy policy, std::uint64_t seed = 1)
      : cluster(policy.n, policy.channel, seed),
        rng(seed),
        tsa(rng),
        archive(cluster, std::move(policy), registry, tsa, rng) {}
};

Bytes test_data(std::size_t size, std::uint64_t seed) {
  SimRng rng(seed);
  return rng.bytes(size);
}

std::map<ObjectId, Bytes> put_objects(Rig& rig, unsigned count,
                                      std::uint64_t seed) {
  std::map<ObjectId, Bytes> truth;
  for (unsigned i = 0; i < count; ++i) {
    const ObjectId id = "obj" + std::to_string(i);
    truth[id] = test_data(1500 + 300 * i, seed * 10 + i);
    rig.archive.put(id, truth[id]);
  }
  return truth;
}

// ------------------------------------------------------------- state serde

TEST(Migration, StateSerializationRoundTrip) {
  MigrationState s;
  s.kind = MigrationKind::kRewrap;
  s.fresh = {SchemeId::kChaCha20, SchemeId::kSpeck128Ctr};
  s.outer = SchemeId::kChaCha20;
  s.migration_id = 0xDEADBEEFCAFEF00Dull;
  s.cursor = "obj17";
  s.objects_done = 18;
  s.objects_skipped = 3;
  s.objects_total = 40;
  s.bytes_moved = 123456789;
  s.complete = false;

  const MigrationState back = MigrationState::deserialize(s.serialize());
  EXPECT_EQ(back.kind, s.kind);
  EXPECT_EQ(back.fresh, s.fresh);
  EXPECT_EQ(back.outer, s.outer);
  EXPECT_EQ(back.migration_id, s.migration_id);
  EXPECT_EQ(back.cursor, s.cursor);
  EXPECT_EQ(back.objects_done, s.objects_done);
  EXPECT_EQ(back.objects_skipped, s.objects_skipped);
  EXPECT_EQ(back.objects_total, s.objects_total);
  EXPECT_EQ(back.bytes_moved, s.bytes_moved);
  EXPECT_EQ(back.complete, s.complete);
}

TEST(Migration, StagedManifestSerializationRoundTrip) {
  Rig rig(ArchivalPolicy::CloudBaseline());
  rig.archive.put("doc", test_data(2000, 7));

  // A manifest carrying in-flight migration state must survive the
  // catalog round-trip — the checkpoint story depends on it.
  ObjectManifest m = rig.archive.manifest("doc");
  ObjectManifest::StagedGeneration st;
  st.phase = ObjectManifest::StagedGeneration::Phase::kPublished;
  st.generation = 3;
  st.ciphers = {SchemeId::kChaCha20};
  st.shard_hashes = {Sha256::hash(test_data(8, 1))};
  st.merkle_root = Sha256::hash(test_data(8, 2));
  st.audit_challenges.assign(1, {});
  st.audit_challenges[0].push_back(
      {test_data(16, 3), Sha256::hash(test_data(8, 4))});
  m.staged = st;
  m.last_migration = 42;

  const ObjectManifest back = ObjectManifest::deserialize(m.serialize());
  ASSERT_TRUE(back.staged.has_value());
  EXPECT_EQ(back.staged->phase, st.phase);
  EXPECT_EQ(back.staged->generation, st.generation);
  EXPECT_EQ(back.staged->ciphers, st.ciphers);
  EXPECT_EQ(back.staged->shard_hashes, st.shard_hashes);
  EXPECT_EQ(back.staged->merkle_root, st.merkle_root);
  ASSERT_EQ(back.staged->audit_challenges.size(), 1u);
  ASSERT_EQ(back.staged->audit_challenges[0].size(), 1u);
  EXPECT_EQ(back.staged->audit_challenges[0][0].nonce,
            st.audit_challenges[0][0].nonce);
  EXPECT_EQ(back.staged->audit_challenges[0][0].expected,
            st.audit_challenges[0][0].expected);
  EXPECT_EQ(back.last_migration, 42u);
}

// ------------------------------------------------------------- validation

TEST(Migration, SpecValidationMatchesLegacyRules) {
  Rig plain(ArchivalPolicy::FigErasure());  // no cipher stack
  MigrationSpec re;
  re.kind = MigrationKind::kReencrypt;
  re.fresh = {SchemeId::kChaCha20};
  EXPECT_THROW(MigrationEngine(plain.archive, re), InvalidArgument);

  Rig cloud(ArchivalPolicy::CloudBaseline());  // not a cascade
  MigrationSpec wrap;
  wrap.kind = MigrationKind::kRewrap;
  wrap.outer = SchemeId::kChaCha20;
  EXPECT_THROW(MigrationEngine(cloud.archive, wrap), InvalidArgument);

  Rig cascade(ArchivalPolicy::ArchiveSafeLT());
  MigrationSpec bad;
  bad.kind = MigrationKind::kRewrap;
  bad.outer = SchemeId::kSha256;  // not a cipher
  EXPECT_THROW(MigrationEngine(cascade.archive, bad), InvalidArgument);

  MigrationSpec empty;
  empty.kind = MigrationKind::kReencrypt;  // empty replacement stack
  EXPECT_THROW(MigrationEngine(cloud.archive, empty), InvalidArgument);
}

// ------------------------------------- batch pacing + deferred promotion

TEST(Migration, StepBatchesAndDefersPromotionBehindCheckpoints) {
  ArchivalPolicy policy = ArchivalPolicy::CloudBaseline();
  policy.migrate_batch = 2;
  Rig rig(policy);
  const auto truth = put_objects(rig, 5, 3);

  MigrationSpec spec;
  spec.kind = MigrationKind::kReencrypt;
  spec.fresh = {SchemeId::kChaCha20};
  MigrationEngine eng(rig.archive, spec);

  // Step 1 stages + publishes the first batch; nothing to promote yet.
  MigrationStepReport r1 = eng.step();
  EXPECT_EQ(r1.migrated, 2u);
  EXPECT_EQ(r1.promoted, 0u);
  EXPECT_FALSE(r1.done);
  EXPECT_GT(r1.bytes_moved, 0u);

  // The published objects' manifests moved to the new generation, but
  // their real shard slots still hold the OLD generation — the new
  // blobs sit under the staging key until the next step promotes them.
  const ObjectManifest& m0 = rig.archive.manifest("obj0");
  ASSERT_TRUE(m0.staged.has_value());
  EXPECT_EQ(m0.staged->phase,
            ObjectManifest::StagedGeneration::Phase::kPublished);
  EXPECT_EQ(m0.generation, 1u);
  EXPECT_EQ(m0.current_ciphers(),
            std::vector<SchemeId>{SchemeId::kChaCha20});
  const StoredBlob* real = rig.cluster.node(0).get("obj0", 0);
  ASSERT_NE(real, nullptr);
  EXPECT_EQ(real->generation, 0u);  // old generation, untouched
  const StoredBlob* staging =
      rig.cluster.node(0).get(Archive::staging_object_id("obj0"), 0);
  ASSERT_NE(staging, nullptr);
  EXPECT_EQ(staging->generation, 1u);

  // Mixed-generation reads: published-unpromoted AND untouched objects
  // all read back mid-flight.
  for (const auto& [id, data] : truth) EXPECT_EQ(rig.archive.get(id), data);

  // Step 2 promotes the first batch, then migrates the next.
  MigrationStepReport r2 = eng.step();
  EXPECT_EQ(r2.promoted, 2u);
  EXPECT_EQ(r2.migrated, 2u);
  EXPECT_FALSE(rig.archive.manifest("obj0").staged.has_value());
  const StoredBlob* promoted = rig.cluster.node(0).get("obj0", 0);
  ASSERT_NE(promoted, nullptr);
  EXPECT_EQ(promoted->generation, 1u);

  // Step 3 finishes the sweep; step 4 promotes the tail and completes.
  MigrationStepReport r3 = eng.step();
  EXPECT_EQ(r3.promoted, 2u);
  EXPECT_EQ(r3.migrated, 1u);
  EXPECT_FALSE(r3.done);
  MigrationStepReport r4 = eng.step();
  EXPECT_EQ(r4.promoted, 1u);
  EXPECT_EQ(r4.migrated, 0u);
  EXPECT_TRUE(r4.done);
  EXPECT_TRUE(eng.done());

  EXPECT_EQ(eng.state().objects_done, 5u);
  EXPECT_EQ(eng.state().objects_skipped, 0u);

  // Steady state: no staging blobs anywhere, everything on the new
  // stack, everything readable and verifiable.
  for (const auto& [id, data] : truth) {
    for (std::uint32_t i = 0; i < 9; ++i)
      EXPECT_EQ(rig.cluster.node(i).get(Archive::staging_object_id(id), i),
                nullptr);
    EXPECT_EQ(rig.archive.manifest(id).generation, 1u);
    EXPECT_EQ(rig.archive.get(id), data);
    EXPECT_TRUE(rig.archive.verify(id).ok()) << id;
  }

  EventBus& events = rig.cluster.obs().events();
  EXPECT_EQ(events.count(EventKind::kMigrationProgress), 5u);
  EXPECT_EQ(events.count(EventKind::kMigrationCheckpoint), 4u);
}

TEST(Migration, AlreadyCurrentObjectsAreSkippedNotRewritten) {
  Rig rig(ArchivalPolicy::CloudBaseline());
  const auto truth = put_objects(rig, 3, 5);

  MigrationSpec spec;
  spec.kind = MigrationKind::kReencrypt;
  spec.fresh = ArchivalPolicy::CloudBaseline().ciphers;  // already current
  MigrationEngine eng(rig.archive, spec);
  const MigrationStepReport r = eng.step();

  // Skips don't consume batch budget: one step sweeps the catalog.
  EXPECT_TRUE(r.done);
  EXPECT_EQ(r.skipped, 3u);
  EXPECT_EQ(r.migrated, 0u);
  EXPECT_EQ(eng.state().objects_done, 0u);
  for (const auto& [id, data] : truth) {
    EXPECT_EQ(rig.archive.manifest(id).generation, 0u);
    EXPECT_EQ(rig.archive.get(id), data);
  }
}

// --------------------------------------------------- checkpoint + resume

TEST(Migration, CheckpointResumesOnFreshArchiveInstance) {
  ArchivalPolicy policy = ArchivalPolicy::CloudBaseline();
  policy.migrate_batch = 2;
  Rig rig(policy);
  const auto truth = put_objects(rig, 5, 11);

  MigrationSpec spec;
  spec.kind = MigrationKind::kReencrypt;
  spec.fresh = {SchemeId::kChaCha20};
  MigrationEngine eng(rig.archive, spec);
  eng.step();
  eng.step();  // 4 of 5 committed
  ASSERT_EQ(eng.state().objects_done, 4u);

  // The crash-resume checkpoint: engine cursor + catalog, saved
  // together at a step boundary. The first archive is now dead to us.
  const Bytes cursor_blob = eng.checkpoint();
  const Bytes catalog = rig.archive.export_catalog();

  ArchivalPolicy policy2 = ArchivalPolicy::CloudBaseline();
  policy2.migrate_batch = 2;
  Archive restored(rig.cluster, policy2, rig.registry, rig.tsa, rig.rng);
  restored.import_catalog(catalog);
  MigrationEngine resumed(restored,
                          MigrationState::deserialize(cursor_blob));
  EXPECT_FALSE(resumed.done());
  resumed.run();

  EXPECT_EQ(resumed.state().objects_done, 5u);
  EXPECT_TRUE(resumed.state().complete);
  for (const auto& [id, data] : truth) {
    const ObjectManifest& m = restored.manifest(id);
    EXPECT_EQ(m.generation, 1u) << id;
    EXPECT_EQ(m.current_ciphers(),
              std::vector<SchemeId>{SchemeId::kChaCha20});
    ASSERT_EQ(m.cipher_history.size(), 2u);
    EXPECT_FALSE(m.staged.has_value());
    EXPECT_EQ(restored.get(id), data);
    EXPECT_TRUE(restored.verify(id).ok()) << id;
    for (std::uint32_t i = 0; i < 9; ++i)
      EXPECT_EQ(rig.cluster.node(i).get(Archive::staging_object_id(id), i),
                nullptr);
  }
}

TEST(Migration, RewrapResumeAddsExactlyOneLayer) {
  ArchivalPolicy policy = ArchivalPolicy::ArchiveSafeLT();
  policy.migrate_batch = 1;
  Rig rig(policy);
  const auto truth = put_objects(rig, 4, 13);

  MigrationSpec spec;
  spec.kind = MigrationKind::kRewrap;
  spec.outer = SchemeId::kChaCha20;
  MigrationEngine eng(rig.archive, spec);
  eng.step();
  eng.step();

  const Bytes cursor_blob = eng.checkpoint();
  const Bytes catalog = rig.archive.export_catalog();

  ArchivalPolicy policy2 = ArchivalPolicy::ArchiveSafeLT();
  policy2.migrate_batch = 1;
  Archive restored(rig.cluster, policy2, rig.registry, rig.tsa, rig.rng);
  restored.import_catalog(catalog);
  MigrationEngine resumed(restored,
                          MigrationState::deserialize(cursor_blob));
  resumed.run();

  // The idempotence fingerprint keeps a resumed run from double-
  // wrapping objects the dead run already committed: exactly one new
  // outer layer everywhere.
  for (const auto& [id, data] : truth) {
    const ObjectManifest& m = restored.manifest(id);
    EXPECT_EQ(m.generation, 1u) << id;
    EXPECT_EQ(m.current_ciphers().size(), 4u) << id;
    EXPECT_EQ(m.current_ciphers().back(), SchemeId::kChaCha20);
    EXPECT_EQ(m.cipher_history[0].size(), 3u);
    EXPECT_EQ(restored.get(id), data);
  }
}

TEST(Migration, ResumedRunMatchesUninterruptedRun) {
  // Same seed, same puts: an uninterrupted run and a killed-and-resumed
  // run must commit the same objects along the same cursor path and
  // land on identical shard sets.
  const auto build = [](Rig& rig) { return put_objects(rig, 5, 17); };

  ArchivalPolicy pa = ArchivalPolicy::CloudBaseline();
  pa.migrate_batch = 2;
  Rig a(pa, 99);
  build(a);
  std::vector<ObjectId> cursors_a;
  a.cluster.obs().events().subscribe([&](const Event& e) {
    if (const auto* c = std::get_if<MigrationCheckpoint>(&e.payload))
      cursors_a.push_back(c->cursor);
  });
  MigrationSpec spec;
  spec.kind = MigrationKind::kReencrypt;
  spec.fresh = {SchemeId::kChaCha20};
  MigrationEngine ea(a.archive, spec);
  ea.run();

  ArchivalPolicy pb = ArchivalPolicy::CloudBaseline();
  pb.migrate_batch = 2;
  Rig b(pb, 99);
  build(b);
  std::vector<ObjectId> cursors_b;
  b.cluster.obs().events().subscribe([&](const Event& e) {
    if (const auto* c = std::get_if<MigrationCheckpoint>(&e.payload))
      cursors_b.push_back(c->cursor);
  });
  MigrationEngine eb(b.archive, spec);
  eb.step();
  const Bytes cursor_blob = eb.checkpoint();
  const Bytes catalog = b.archive.export_catalog();
  ArchivalPolicy pb2 = ArchivalPolicy::CloudBaseline();
  pb2.migrate_batch = 2;
  Archive restored(b.cluster, pb2, b.registry, b.tsa, b.rng);
  restored.import_catalog(catalog);
  MigrationEngine eb2(restored, MigrationState::deserialize(cursor_blob));
  eb2.run();

  EXPECT_EQ(ea.state().objects_done, eb2.state().objects_done);
  EXPECT_EQ(ea.state().bytes_moved, eb2.state().bytes_moved);
  EXPECT_EQ(cursors_a, cursors_b);
  for (const auto& [id, ma] : a.archive.manifests()) {
    const ObjectManifest& mb = restored.manifest(id);
    EXPECT_EQ(ma.generation, mb.generation) << id;
    EXPECT_EQ(ma.cipher_history, mb.cipher_history) << id;
    // Shard bytes are key-deterministic, so the merkle roots agree even
    // across the kill/resume boundary.
    EXPECT_EQ(ma.merkle_root, mb.merkle_root) << id;
  }
}

// ----------------------------------------------------- timestamp renewal

TEST(Migration, RenewTimestampsRunsAsBackgroundJob) {
  ArchivalPolicy policy = ArchivalPolicy::CloudBaseline();
  policy.migrate_batch = 2;
  Rig rig(policy);
  const auto truth = put_objects(rig, 3, 19);
  rig.cluster.advance_epoch();

  MigrationSpec spec;
  spec.kind = MigrationKind::kRenewTimestamps;
  MigrationEngine eng(rig.archive, spec);
  eng.run();

  EXPECT_EQ(eng.state().objects_done, 3u);
  for (const auto& [id, data] : truth) {
    EXPECT_EQ(rig.archive.manifest(id).chain.length(), 2u);
    EXPECT_TRUE(rig.archive.verify(id).ok()) << id;
    // Renewal never touches shards: generation 0 all the way.
    EXPECT_EQ(rig.archive.manifest(id).generation, 0u);
  }
  EXPECT_EQ(rig.cluster.obs().events().count(EventKind::kChainRenewed), 3u);
}

// ---------------------------------------------------------- observability

TEST(Migration, EngineReadsDontInflateClientGetMetrics) {
  Rig rig(ArchivalPolicy::CloudBaseline());
  put_objects(rig, 3, 23);

  // The legacy one-shot entry point now routes through the engine,
  // whose internal reads bypass the public get() path.
  rig.archive.reencrypt({SchemeId::kChaCha20});

  const MetricsSnapshot snap = rig.cluster.obs().metrics().snapshot();
  const auto* gets = snap.find("archive.get.count");
  EXPECT_TRUE(gets == nullptr || gets->value == 0.0)
      << "migration reads leaked into the client read metrics";
  ASSERT_NE(snap.find("archive.migrate.objects"), nullptr);
  EXPECT_EQ(snap.find("archive.migrate.objects")->value, 3.0);
  ASSERT_NE(snap.find("archive.migrate.count"), nullptr);
  EXPECT_GE(snap.find("archive.migrate.count")->value, 1.0);
  ASSERT_NE(snap.find("archive.migrate.bytes"), nullptr);
  EXPECT_GT(snap.find("archive.migrate.bytes")->value, 0.0);
  EXPECT_EQ(rig.cluster.obs().events().count(EventKind::kMigrationProgress),
            3u);
}

// --------------------------------------------------------------- throttle

TEST(Migration, BandwidthFractionStretchesMigrationClock) {
  // migrate_bandwidth_frac = 0.5 models §3.2's "reserve 2x capacity"
  // rule: the same migration must consume twice the virtual time.
  const auto run_migration = [](double frac) {
    ArchivalPolicy policy = ArchivalPolicy::CloudBaseline();
    policy.migrate_bandwidth_frac = frac;
    Rig rig(policy, 7);
    put_objects(rig, 3, 29);
    MigrationSpec spec;
    spec.kind = MigrationKind::kReencrypt;
    spec.fresh = {SchemeId::kChaCha20};
    MigrationEngine eng(rig.archive, spec);
    const double t0 = rig.cluster.simulated_ms();
    eng.run();
    return rig.cluster.simulated_ms() - t0;
  };

  const double full = run_migration(1.0);
  const double throttled = run_migration(0.5);
  ASSERT_GT(full, 0.0);
  EXPECT_NEAR(throttled, 2.0 * full, 1e-6 * full);
}

TEST(Migration, PolicyRejectsBadMigrationKnobs) {
  ArchivalPolicy p = ArchivalPolicy::CloudBaseline();
  p.migrate_batch = 0;
  EXPECT_THROW(p.validate(), InvalidArgument);

  ArchivalPolicy q = ArchivalPolicy::CloudBaseline();
  q.migrate_bandwidth_frac = 0.0;
  EXPECT_THROW(q.validate(), InvalidArgument);
  q.migrate_bandwidth_frac = 1.5;
  EXPECT_THROW(q.validate(), InvalidArgument);
}

}  // namespace
}  // namespace aegis
