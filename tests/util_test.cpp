// Unit tests for src/util: byte helpers, RNG determinism, serialization,
// thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/entropy.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/serde.h"
#include "util/thread_pool.h"

namespace aegis {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes b = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(hex_encode(b), "0001deadbeefff");
  EXPECT_EQ(hex_decode("0001deadbeefff"), b);
  EXPECT_EQ(hex_decode("0001DEADBEEFFF"), b);  // upper case accepted
}

TEST(Bytes, HexDecodeRejectsBadInput) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);    // non-hex
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(hex_encode({}), "");
  EXPECT_TRUE(hex_decode("").empty());
}

TEST(Bytes, XorBasics) {
  const Bytes a = {0xff, 0x00, 0xaa};
  const Bytes b = {0x0f, 0xf0, 0xaa};
  EXPECT_EQ(xor_bytes(a, b), Bytes({0xf0, 0xf0, 0x00}));
  // Involution: (a ^ b) ^ b == a.
  EXPECT_EQ(xor_bytes(xor_bytes(a, b), b), a);
  EXPECT_THROW(xor_bytes(a, Bytes{0x01}), std::invalid_argument);
}

TEST(Bytes, XorInplace) {
  Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  xor_inplace(MutByteView(a.data(), a.size()), b);
  EXPECT_EQ(a, Bytes({0, 0, 0}));
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  EXPECT_TRUE(ct_equal(a, Bytes({1, 2, 3})));
  EXPECT_FALSE(ct_equal(a, Bytes({1, 2, 4})));
  EXPECT_FALSE(ct_equal(a, Bytes({1, 2})));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {};
  const Bytes c = {3};
  EXPECT_EQ(concat({a, b, c}), Bytes({1, 2, 3}));
}

TEST(Bytes, ToStringRoundTrip) {
  const Bytes b = to_bytes(std::string_view("hello"));
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Bytes, SecureWipeZeroes) {
  Bytes b = {1, 2, 3, 4};
  secure_wipe(b.data(), b.size());
  EXPECT_EQ(b, Bytes({0, 0, 0, 0}));
}

TEST(SimRng, DeterministicGivenSeed) {
  SimRng a(42), b(42), c(43);
  const auto x = a.bytes(64);
  EXPECT_EQ(x, b.bytes(64));
  EXPECT_NE(x, c.bytes(64));
}

TEST(SimRng, UniformBoundsRespected) {
  SimRng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_THROW(rng.uniform(0), InvalidArgument);
}

TEST(SimRng, UniformDoubleInRange) {
  SimRng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SimRng, UniformCoversRange) {
  SimRng rng(1);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.uniform(10)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(SimRng, ChanceExtremes) {
  SimRng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Entropy, ExtremesAndOrdering) {
  // All-zero content: zero entropy by every measure.
  const Bytes zeros(4096, 0);
  EXPECT_DOUBLE_EQ(shannon_entropy_per_byte(zeros), 0.0);
  EXPECT_DOUBLE_EQ(min_entropy_per_byte(zeros), 0.0);
  EXPECT_DOUBLE_EQ(estimate_entropy_per_byte(zeros), 0.0);

  // Uniform random content: close to 8 bits/byte on order-0 and high on
  // every estimator.
  SimRng rng(1);
  const Bytes random = rng.bytes(1 << 16);
  EXPECT_GT(shannon_entropy_per_byte(random), 7.9);
  EXPECT_GT(min_entropy_per_byte(random), 7.0);
  EXPECT_GT(estimate_entropy_per_byte(random), 7.0);

  // Ordering: structured < random.
  const Bytes text = to_bytes(std::string_view(
      "the quick brown fox jumps over the lazy dog, again and again and "
      "again and again and again and again and again and again and"));
  EXPECT_LT(estimate_entropy_per_byte(text),
            estimate_entropy_per_byte(random));
}

TEST(Entropy, MarkovCatchesPeriodicStructure) {
  // "abab..." has 1 bit/byte order-0 entropy but ~0 conditional entropy:
  // the first-order model must see through it.
  Bytes ab;
  for (int i = 0; i < 2048; ++i) ab.push_back(i % 2 ? 'b' : 'a');
  EXPECT_NEAR(shannon_entropy_per_byte(ab), 1.0, 0.01);
  EXPECT_LT(markov1_entropy_per_byte(ab), 0.05);
  EXPECT_LT(estimate_entropy_per_byte(ab), 0.05);
}

TEST(Entropy, EmptyAndTinyInputs) {
  EXPECT_DOUBLE_EQ(shannon_entropy_per_byte({}), 0.0);
  EXPECT_DOUBLE_EQ(min_entropy_per_byte({}), 0.0);
  const Bytes one = {42};
  EXPECT_DOUBLE_EQ(estimate_entropy_per_byte(one), 0.0);
}

TEST(Serde, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.bytes(Bytes{1, 2, 3});
  w.str("archive");
  const Bytes buf = std::move(w).take();

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.bytes(), Bytes({1, 2, 3}));
  EXPECT_EQ(r.str(), "archive");
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Serde, TruncationThrows) {
  ByteWriter w;
  w.u32(1234);
  const Bytes buf = std::move(w).take();
  ByteReader r(buf);
  EXPECT_THROW(r.u64(), ParseError);
}

TEST(Serde, LengthPrefixTruncationThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow, but none do
  const Bytes buf = std::move(w).take();
  ByteReader r(buf);
  EXPECT_THROW(r.bytes(), ParseError);
}

TEST(Serde, TrailingBytesDetected) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  const Bytes buf = std::move(w).take();
  ByteReader r(buf);
  r.u8();
  EXPECT_THROW(r.expect_done(), ParseError);
}

TEST(ThreadPool, ZeroWorkersIsInlineMode) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  // Inline submit runs on the calling thread before returning.
  const auto self = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); }).get();
  EXPECT_EQ(ran_on, self);
}

TEST(ThreadPool, SubmitRunsAllTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i)
    futs.push_back(pool.submit([&] { ++count; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelBlocksCoversRangeExactlyOnce) {
  // Every index in [0, count) must be visited exactly once, for all
  // combinations of worker count and range size (including count <
  // workers and count == 0).
  for (unsigned workers : {0u, 1u, 2u, 4u}) {
    ThreadPool pool(workers);
    for (std::size_t count : {0ul, 1ul, 2ul, 3ul, 7ul, 64ul, 1000ul}) {
      std::vector<std::atomic<int>> hits(count);
      pool.parallel_blocks(count, [&](std::size_t lo, std::size_t hi) {
        ASSERT_LE(lo, hi);
        ASSERT_LE(hi, count);
        for (std::size_t i = lo; i < hi; ++i) ++hits[i];
      });
      for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "workers=" << workers
                                     << " count=" << count << " i=" << i;
    }
  }
}

TEST(ThreadPool, ParallelBlocksChunksAreContiguousAndOrdered) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_blocks(100, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 0u);
  EXPECT_EQ(chunks.back().second, 100u);
  for (std::size_t i = 1; i < chunks.size(); ++i)
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);  // no gap, no overlap
}

TEST(ThreadPool, ParallelBlocksPropagatesException) {
  for (unsigned workers : {0u, 2u}) {
    ThreadPool pool(workers);
    EXPECT_THROW(
        pool.parallel_blocks(10,
                             [&](std::size_t lo, std::size_t) {
                               if (lo == 0)
                                 throw std::runtime_error("chunk failed");
                             }),
        std::runtime_error)
        << "workers=" << workers;
    // Pool must still be usable after an exception.
    std::atomic<int> ok{0};
    pool.parallel_blocks(4, [&](std::size_t lo, std::size_t hi) {
      ok += static_cast<int>(hi - lo);
    });
    EXPECT_EQ(ok.load(), 4);
  }
}

TEST(ThreadPool, FreeFunctionNullPoolRunsInline) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_blocks(nullptr, 17, [&](std::size_t lo, std::size_t hi) {
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 17}));
}

TEST(Serde, EmptyByteString) {
  ByteWriter w;
  w.bytes(Bytes{});
  ByteReader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
}

}  // namespace
}  // namespace aegis
