// Observability layer: metrics registry (lock-free counters under
// contention, histogram buckets, JSON export), trace spans (nesting,
// ring overflow), the typed event bus (re-entrant subscribe/unsubscribe)
// and the archive's operation reports — including the contract that the
// metric view and the struct view of the same activity never disagree.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive.h"
#include "crypto/chacha20.h"
#include "json_checker.h"
#include "obs/obs.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aegis {
namespace {

// ------------------------------------------------------------------ metrics

TEST(Metrics, CounterExactUnderContention) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.op.count");
  constexpr unsigned kThreads = 8;
  constexpr unsigned kIncs = 20000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (unsigned i = 0; i < kIncs; ++i) c.inc();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), std::uint64_t{kThreads} * kIncs);
}

TEST(Metrics, HistogramExactUnderContention) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.op.ms", {1.0, 10.0, 100.0});
  constexpr unsigned kThreads = 4;
  constexpr unsigned kObs = 5000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (unsigned i = 0; i < kObs; ++i) h.observe(2.0);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), std::uint64_t{kThreads} * kObs);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0 * kThreads * kObs);
  // All observations land in the (1, 10] bucket.
  EXPECT_EQ(h.buckets()[1], std::uint64_t{kThreads} * kObs);
}

TEST(Metrics, HistogramBucketPlacement) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.lat.ms", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper edge)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // overflow
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, NameAndTypeDiscipline) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("Bad.Name"), InvalidArgument);
  EXPECT_THROW(reg.counter(""), InvalidArgument);
  EXPECT_THROW(reg.counter(".leading"), InvalidArgument);
  reg.counter("layer.op.metric");
  // Same name, same type: the same instance.
  reg.counter("layer.op.metric").inc(3);
  EXPECT_EQ(reg.counter("layer.op.metric").value(), 3u);
  // Same name, different type: refused.
  EXPECT_THROW(reg.gauge("layer.op.metric"), InvalidArgument);
  EXPECT_THROW(reg.histogram("layer.op.metric"), InvalidArgument);
}

// The JSON syntax checker lives in tests/json_checker.h (shared with
// the exporter and doctor test binaries).

TEST(Metrics, SnapshotJsonLinesWellFormedWithRequiredKeys) {
  MetricsRegistry reg;
  reg.counter("archive.put.count").inc(12);
  reg.gauge("cluster.epoch").set(-3);
  reg.histogram("archive.put.ms").observe(7.5);
  const MetricsSnapshot snap = reg.snapshot();
  const auto lines = snap.to_json_lines("workload");
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    EXPECT_NE(line.find("\"bench\":\"workload\""), std::string::npos);
    EXPECT_NE(line.find("\"metric\":\""), std::string::npos);
    EXPECT_NE(line.find("\"type\":\""), std::string::npos);
  }
  // Counter/gauge carry "value"; histogram carries count/sum/buckets.
  EXPECT_NE(lines[0].find("\"value\":12"), std::string::npos);
  EXPECT_NE(lines[2].find("\"value\":-3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"count\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"sum\":7.5"), std::string::npos);
  EXPECT_NE(lines[1].find("\"le\":\"inf\""), std::string::npos);

  EXPECT_NE(snap.find("cluster.epoch"), nullptr);
  EXPECT_EQ(snap.find("no.such.metric"), nullptr);
}

// ------------------------------------------------------------------- spans

TEST(Trace, SpansNestAndRecordVirtualEpochs) {
  Tracer tracer(16);
  Epoch now = 7;
  tracer.set_epoch_source([&now] { return now; });
  {
    TraceSpan outer(tracer, "archive.scrub");
    now = 9;
    {
      TraceSpan inner(tracer, "archive.audit", {{"object", "doc"}});
      EXPECT_EQ(tracer.open_depth(), 2u);
    }
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner completes first.
  EXPECT_EQ(spans[0].name, "archive.audit");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[0].epoch_begin, 9u);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "object");
  EXPECT_EQ(spans[1].name, "archive.scrub");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].epoch_begin, 7u);
  EXPECT_EQ(spans[1].epoch_end, 9u);
}

TEST(Trace, RingOverflowKeepsNewestSpans) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i)
    TraceSpan span(tracer, "op." + std::to_string(i));
  EXPECT_TRUE(tracer.overflowed());
  EXPECT_EQ(tracer.started(), 10u);
  EXPECT_EQ(tracer.finished(), 10u);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "op.6");  // oldest survivor
  EXPECT_EQ(spans[3].name, "op.9");  // newest
}

// ------------------------------------------------------------------ events

TEST(Events, TypedSubscriptionAndKindCounts) {
  EventBus bus;
  std::vector<NodeId> quarantined;
  bus.subscribe_to<NodeQuarantined>(
      std::function<void(const NodeQuarantined&, const Event&)>(
          [&](const NodeQuarantined& q, const Event& e) {
            quarantined.push_back(q.node);
            EXPECT_EQ(e.kind(), EventKind::kNodeQuarantined);
          }));
  bus.publish(1, NodeRestored{5});
  bus.publish(2, NodeQuarantined{3, 4, 4});
  bus.publish(2, NodeQuarantined{7, 4, 4});
  EXPECT_EQ(quarantined, (std::vector<NodeId>{3, 7}));
  EXPECT_EQ(bus.count(EventKind::kNodeQuarantined), 2u);
  EXPECT_EQ(bus.count(EventKind::kNodeRestored), 1u);
  EXPECT_EQ(bus.count(EventKind::kShardWritten), 0u);
  EXPECT_EQ(bus.total(), 3u);
}

TEST(Events, UnsubscribeDuringDispatch) {
  EventBus bus;
  int first = 0, second = 0, third = 0;
  EventBus::SubscriberId second_id = 0;
  bus.subscribe([&](const Event&) {
    ++first;
    bus.unsubscribe(second_id);  // kill a later subscriber mid-dispatch
  });
  second_id = bus.subscribe([&](const Event&) { ++second; });
  bus.subscribe([&](const Event&) { ++third; });

  bus.publish(1, NodeRestored{0});
  // The unsubscribed callback is skipped for the in-flight event too.
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 0);
  EXPECT_EQ(third, 1);
  EXPECT_EQ(bus.subscriber_count(), 2u);

  bus.publish(2, NodeRestored{0});
  EXPECT_EQ(first, 2);
  EXPECT_EQ(second, 0);
  EXPECT_EQ(third, 2);
}

TEST(Events, SelfUnsubscribeAndSubscribeDuringDispatch) {
  EventBus bus;
  int once = 0, late = 0;
  EventBus::SubscriberId once_id = 0;
  once_id = bus.subscribe([&](const Event&) {
    ++once;
    bus.unsubscribe(once_id);  // fire-once subscriber
    bus.subscribe([&](const Event&) { ++late; });  // added mid-dispatch
  });
  bus.publish(1, NodeRestored{0});
  // The new subscriber must NOT see the event that created it.
  EXPECT_EQ(once, 1);
  EXPECT_EQ(late, 0);
  bus.publish(2, NodeRestored{0});
  EXPECT_EQ(once, 1);
  EXPECT_EQ(late, 1);
}

// ----------------------------------------------------------- thread pool

TEST(ThreadPoolMetrics, CountsTasksInWorkerAndInlineModes) {
  MetricsRegistry reg;
  {
    ThreadPool pool(2);
    pool.bind_metrics(&reg, "test.pool");
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) futures.push_back(pool.submit([] {}));
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(reg.counter("test.pool.tasks").value(), 20u);
  EXPECT_EQ(reg.histogram("test.pool.task_ms").count(), 20u);
  EXPECT_EQ(reg.gauge("test.pool.queue_depth").value(), 0);

  ThreadPool inline_pool(0);
  inline_pool.bind_metrics(&reg, "test.inline");
  inline_pool.submit([] {}).get();
  EXPECT_EQ(reg.counter("test.inline.tasks").value(), 1u);
}

// ------------------------------------------------- archive integration

struct Rig {
  Cluster cluster;
  SchemeRegistry registry;
  ChaChaRng rng;
  TimestampAuthority tsa;
  Archive archive;

  Rig(ArchivalPolicy policy, std::uint64_t seed = 1)
      : cluster(policy.n, policy.channel, seed),
        rng(seed),
        tsa(rng),
        archive(cluster, std::move(policy), registry, tsa, rng) {}
};

Bytes test_data(std::size_t size, std::uint64_t seed) {
  SimRng rng(seed);
  return rng.bytes(size);
}

TEST(ArchiveObs, GetReportCarriesEvidenceAndMatchesGet) {
  Rig rig(ArchivalPolicy::FigErasure());  // RS(6,9)
  const Bytes data = test_data(4000, 31);
  rig.archive.put("doc", data);

  const GetResult res = rig.archive.get_report("doc");
  EXPECT_EQ(res.data, data);
  EXPECT_EQ(res.report.op, "archive.get");
  EXPECT_EQ(res.report.shards_gathered, 6u);
  EXPECT_EQ(res.report.shards_bad, 0u);
  EXPECT_EQ(res.report.retries, 0u);
  EXPECT_GT(res.report.bytes_down, 0u);
  EXPECT_EQ(res.report.logical_bytes, data.size());
  EXPECT_TRUE(res.report.ok());
  EXPECT_TRUE(JsonChecker(res.report.to_json()).valid())
      << res.report.to_json();

  // The thin wrapper returns the same bytes.
  EXPECT_EQ(rig.archive.get("doc"), data);
}

TEST(ArchiveObs, OpReportsStampedAndCounted) {
  Rig rig(ArchivalPolicy::FigErasure());
  const Bytes data = test_data(1000, 32);
  const PutReport put = rig.archive.put("doc", data);
  EXPECT_EQ(put.op, "archive.put");
  EXPECT_GT(put.duration_ms, 0.0);
  EXPECT_TRUE(JsonChecker(put.to_json()).valid()) << put.to_json();

  const VerifyReport verify = rig.archive.verify("doc");
  EXPECT_EQ(verify.op, "archive.verify");
  EXPECT_TRUE(verify.ok());

  const Archive::ScrubReport scrub = rig.archive.scrub();
  EXPECT_EQ(scrub.op, "archive.scrub");
  EXPECT_TRUE(JsonChecker(scrub.to_json()).valid()) << scrub.to_json();

  const MetricsSnapshot snap = rig.cluster.obs().metrics().snapshot();
  EXPECT_EQ(snap.find("archive.put.count")->value, 1.0);
  EXPECT_EQ(snap.find("archive.verify.count")->value, 1.0);
  EXPECT_EQ(snap.find("archive.scrub.count")->value, 1.0);
  // scrub audits every object through the instrumented entry point.
  EXPECT_EQ(snap.find("archive.audit.count")->value, 1.0);
  ASSERT_NE(snap.find("archive.put.ms"), nullptr);
  EXPECT_EQ(snap.find("archive.put.ms")->value, 1.0);  // one observation
}

TEST(ArchiveObs, WatchTimestampsRunsInstrumented) {
  // watch_timestamps was the one public operation outside run_op: no
  // span, no count, invisible to dashboards. Now it reports like every
  // other op.
  Rig rig(ArchivalPolicy::FigErasure());
  rig.archive.put("doc", test_data(500, 33));
  NotaryService notary(rig.tsa, rig.registry, rig.rng);
  rig.archive.watch_timestamps(notary);

  const MetricsSnapshot snap = rig.cluster.obs().metrics().snapshot();
  ASSERT_NE(snap.find("archive.watch_timestamps.count"), nullptr);
  EXPECT_EQ(snap.find("archive.watch_timestamps.count")->value, 1.0);
  ASSERT_NE(snap.find("archive.watch_timestamps.ms"), nullptr);
}

TEST(ArchiveObs, RetryMetricsExactlyMirrorIoStats) {
  Rig rig(ArchivalPolicy::FigErasure(), 7);
  LinkFaults flaky;
  flaky.drop_prob = 0.2;
  rig.cluster.faults().set_link_faults(flaky);

  for (int i = 0; i < 5; ++i)
    rig.archive.put("doc" + std::to_string(i), test_data(2000, 40 + i));
  for (int i = 0; i < 5; ++i)
    rig.archive.get("doc" + std::to_string(i));

  const IoStats& io = rig.archive.io_stats();
  EXPECT_GT(io.upload_retries, 0u);  // the fault rate must actually bite
  const MetricsSnapshot snap = rig.cluster.obs().metrics().snapshot();
  EXPECT_EQ(snap.find("archive.io.upload_attempts")->value,
            static_cast<double>(io.upload_attempts));
  EXPECT_EQ(snap.find("archive.io.upload_retries")->value,
            static_cast<double>(io.upload_retries));
  EXPECT_EQ(snap.find("archive.io.upload_failures")->value,
            static_cast<double>(io.upload_failures));
  EXPECT_EQ(snap.find("archive.io.download_attempts")->value,
            static_cast<double>(io.download_attempts));
  EXPECT_EQ(snap.find("archive.io.download_retries")->value,
            static_cast<double>(io.download_retries));
  // Every retry inside put()/get() is attributed to that op.
  EXPECT_EQ(snap.find("archive.put.retries")->value,
            static_cast<double>(io.upload_retries));
  EXPECT_EQ(snap.find("archive.get.retries")->value,
            static_cast<double>(io.download_retries));
  EXPECT_TRUE(JsonChecker(io.to_json()).valid()) << io.to_json();
}

TEST(ArchiveObs, OperationFailedEventCarriesErrorCode) {
  Rig rig(ArchivalPolicy::FigErasure());
  std::vector<OperationFailed> failures;
  rig.cluster.obs().events().subscribe([&](const Event& e) {
    if (const auto* f = std::get_if<OperationFailed>(&e.payload))
      failures.push_back(*f);
  });
  rig.archive.put("doc", test_data(100, 50));
  try {
    rig.archive.put("doc", test_data(100, 50));  // duplicate
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDuplicateObject);
  }
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].op, "archive.put");
  EXPECT_EQ(failures[0].object, "doc");
  EXPECT_EQ(failures[0].code, ErrorCode::kDuplicateObject);
  EXPECT_EQ(std::string(to_string(ErrorCode::kDuplicateObject)),
            "duplicate-object");

  const MetricsSnapshot snap = rig.cluster.obs().metrics().snapshot();
  EXPECT_EQ(snap.find("archive.put.failures")->value, 1.0);
  EXPECT_EQ(snap.find("archive.put.count")->value, 2.0);
}

TEST(ArchiveObs, ShardWritesTraced) {
  Rig rig(ArchivalPolicy::FigErasure());
  rig.archive.put("doc", test_data(500, 60));
  // 9 data shards landed -> 9 ShardWritten events.
  EXPECT_EQ(rig.cluster.obs().events().count(EventKind::kShardWritten), 9u);
  // The put span is in the ring.
  const auto spans = rig.cluster.obs().tracer().snapshot();
  bool saw_put = false;
  for (const auto& s : spans) saw_put |= s.name == "archive.put";
  EXPECT_TRUE(saw_put);
}

}  // namespace
}  // namespace aegis
