// Tests for the message-passing layer and the distributed PSS protocol.
#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "protocol/pss.h"
#include "protocol/key_service.h"
#include "protocol/vsr.h"
#include "util/error.h"

namespace aegis {
namespace {

// -------------------------------------------------------------- MessageBus

TEST(MessageBus, PointToPointDelivery) {
  Cluster cluster(4, ChannelKind::kPlain, 1);
  MessageBus bus(cluster, ChannelKind::kTls);

  ProtocolMessage m;
  m.from = 0;
  m.to = 2;
  m.topic = "test/hello";
  m.payload = Bytes{1, 2, 3};
  bus.send(m);

  EXPECT_TRUE(bus.drain(1).empty());
  const auto got = bus.drain(2);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, 0u);
  EXPECT_EQ(got[0].topic, "test/hello");
  EXPECT_EQ(got[0].payload, (Bytes{1, 2, 3}));
  EXPECT_TRUE(bus.drain(2).empty());  // drained
  EXPECT_EQ(bus.messages_sent(), 1u);
}

TEST(MessageBus, BroadcastReachesAllButSender) {
  Cluster cluster(5, ChannelKind::kPlain, 2);
  MessageBus bus(cluster, ChannelKind::kPlain);
  bus.broadcast(1, "test/bcast", Bytes{9});
  EXPECT_TRUE(bus.drain(1).empty());
  for (NodeId id : {0u, 2u, 3u, 4u}) {
    const auto got = bus.drain(id);
    ASSERT_EQ(got.size(), 1u) << id;
    EXPECT_EQ(got[0].payload, Bytes{9});
  }
  EXPECT_EQ(bus.messages_sent(), 4u);
}

TEST(MessageBus, MessagesAppearInWiretap) {
  Cluster cluster(2, ChannelKind::kPlain, 3);
  MessageBus bus(cluster, ChannelKind::kTls);
  ProtocolMessage m;
  m.from = 0;
  m.to = 1;
  m.topic = "pss/subshare";
  m.payload = Bytes(32, 5);
  bus.send(m);
  ASSERT_EQ(cluster.wiretap().size(), 1u);
  EXPECT_EQ(cluster.wiretap()[0].payload.object, "@proto/pss/subshare");
  EXPECT_EQ(cluster.wiretap()[0].transcript.cipher, SchemeId::kAes256Ctr);
}

TEST(ProtocolMessage, SerializationRoundTrip) {
  ProtocolMessage m;
  m.from = 7;
  m.to = 9;
  m.topic = "x/y";
  m.payload = Bytes{4, 5};
  const auto back = ProtocolMessage::deserialize(m.serialize());
  EXPECT_EQ(back.from, 7u);
  EXPECT_EQ(back.to, 9u);
  EXPECT_EQ(back.topic, "x/y");
  EXPECT_EQ(back.payload, (Bytes{4, 5}));
}

// --------------------------------------------------------- distributed PSS

struct PssHarness {
  Cluster cluster;
  MessageBus bus;
  ChaChaRng rng;
  U256 secret;
  std::vector<PssParticipant> nodes;
  unsigned t, n;

  PssHarness(unsigned t_, unsigned n_, std::uint64_t seed = 1)
      : cluster(n_, ChannelKind::kPlain, seed),
        bus(cluster, ChannelKind::kTls),
        rng(seed),
        t(t_),
        n(n_) {
    secret = ec::Secp256k1::instance().random_scalar(rng);
    const VssDealing d = pedersen_deal(secret, t, n, rng);
    for (NodeId i = 0; i < n; ++i)
      nodes.emplace_back(i, t, n, d.shares[i], d.commitments);
  }

  U256 recover(unsigned count) const {
    std::vector<VssShare> shares;
    for (unsigned i = 0; i < count; ++i) shares.push_back(nodes[i].share());
    return vss_recover(shares, t);
  }
};

TEST(DistributedPss, HonestRefreshPreservesSecret) {
  PssHarness h(3, 5);
  const auto before0 = h.nodes[0].share().value;

  const PssRoundResult r = run_pss_refresh(h.nodes, h.bus, h.rng);
  EXPECT_TRUE(r.accused.empty());
  EXPECT_NE(h.nodes[0].share().value, before0);  // re-randomized
  EXPECT_EQ(h.recover(3), h.secret);

  // All nodes hold the SAME refreshed commitments, and every share
  // verifies against them.
  for (const auto& node : h.nodes) {
    EXPECT_EQ(node.commitments().points, h.nodes[0].commitments().points);
    EXPECT_TRUE(vss_verify_share(node.share(), node.commitments()));
  }
}

TEST(DistributedPss, TrafficIsNSquared) {
  PssHarness h(3, 5);
  const PssRoundResult r = run_pss_refresh(h.nodes, h.bus, h.rng);
  // n(n-1) sub-shares + n(n-1) commitment broadcasts, no accusations.
  EXPECT_EQ(r.messages, 2u * 5 * 4);
  EXPECT_GT(r.bytes, 0u);
}

TEST(DistributedPss, ByzantineDealerAccusedAndExcluded) {
  PssHarness h(3, 5, 7);
  h.nodes[2].set_byzantine(true);

  const PssRoundResult r = run_pss_refresh(h.nodes, h.bus, h.rng);
  EXPECT_EQ(r.accused, (std::set<NodeId>{2}));

  // Refresh still correct and consistent across honest nodes.
  EXPECT_EQ(h.recover(3), h.secret);
  for (const auto& node : h.nodes)
    EXPECT_TRUE(vss_verify_share(node.share(), node.commitments()));
}

TEST(DistributedPss, TwoByzantineDealers) {
  PssHarness h(2, 6, 9);
  h.nodes[0].set_byzantine(true);
  h.nodes[4].set_byzantine(true);
  const PssRoundResult r = run_pss_refresh(h.nodes, h.bus, h.rng);
  EXPECT_EQ(r.accused, (std::set<NodeId>{0, 4}));
  EXPECT_EQ(h.recover(2), h.secret);
}

TEST(DistributedPss, RepeatedRoundsStayConsistent) {
  PssHarness h(3, 5, 11);
  for (int round = 0; round < 5; ++round) {
    run_pss_refresh(h.nodes, h.bus, h.rng);
    EXPECT_EQ(h.recover(3), h.secret) << "round " << round;
  }
}

TEST(DistributedPss, OldAndNewSharesDoNotMix) {
  PssHarness h(3, 5, 13);
  std::vector<VssShare> old_shares;
  for (unsigned i = 0; i < 2; ++i) old_shares.push_back(h.nodes[i].share());

  run_pss_refresh(h.nodes, h.bus, h.rng);

  std::vector<VssShare> mixed = old_shares;
  mixed.push_back(h.nodes[2].share());
  EXPECT_NE(vss_recover(mixed, 3), h.secret);
}

TEST(DistributedPss, ParticipantValidation) {
  ChaChaRng rng(1);
  const VssDealing d = pedersen_deal(U256(5), 2, 3, rng);
  // Wrong index pairing rejected.
  EXPECT_THROW(PssParticipant(0, 2, 3, d.shares[1], d.commitments),
               InvalidArgument);
  // Feldman dealings rejected (no hiding).
  const VssDealing f = feldman_deal(U256(5), 2, 3, rng);
  EXPECT_THROW(PssParticipant(0, 2, 3, f.shares[0], f.commitments),
               InvalidArgument);
}

// ---------------------------------------------------------- distributed VSR

struct VsrHarness {
  Cluster cluster;
  MessageBus bus;
  ChaChaRng rng;
  U256 secret;
  unsigned t, n, t2, n2;
  VssDealing dealing;
  std::vector<VsrOldHolder> old_holders;
  std::vector<VsrNewHolder> new_holders;

  VsrHarness(unsigned t_, unsigned n_, unsigned t2_, unsigned n2_,
             std::uint64_t seed = 1)
      : cluster(n_ + n2_, ChannelKind::kPlain, seed),
        bus(cluster, ChannelKind::kTls),
        rng(seed),
        t(t_),
        n(n_),
        t2(t2_),
        n2(n2_) {
    secret = ec::Secp256k1::instance().random_scalar(rng);
    dealing = pedersen_deal(secret, t, n, rng);
    for (NodeId i = 0; i < n; ++i)
      old_holders.emplace_back(i, t2, n2, n, dealing.shares[i]);
    for (unsigned j = 0; j < n2; ++j)
      new_holders.emplace_back(n + j, t, n, t2, n2, n, dealing.commitments);
  }

  U256 recover_new(unsigned count) const {
    std::vector<VssShare> shares;
    for (unsigned j = 0; j < count; ++j)
      shares.push_back(new_holders[j].share());
    return vss_recover(shares, t2);
  }
};

TEST(DistributedVsr, HonestRedistributionPreservesSecret) {
  VsrHarness h(3, 5, 4, 7);
  const VsrResult r = run_vsr(h.old_holders, h.new_holders, h.bus, h.rng);
  EXPECT_TRUE(r.accused.empty());
  EXPECT_EQ(h.recover_new(4), h.secret);

  // Every new holder agrees on the commitments, and every new share
  // verifies against them.
  for (const auto& holder : h.new_holders) {
    EXPECT_EQ(holder.commitments().points,
              h.new_holders[0].commitments().points);
    EXPECT_TRUE(vss_verify_share(holder.share(), holder.commitments()));
  }
  // New threshold enforced.
  std::vector<VssShare> three;
  for (unsigned j = 0; j < 3; ++j) three.push_back(h.new_holders[j].share());
  EXPECT_THROW(vss_recover(three, 4), UnrecoverableError);
}

TEST(DistributedVsr, ShrinkingGeometry) {
  VsrHarness h(4, 8, 2, 3, 5);
  run_vsr(h.old_holders, h.new_holders, h.bus, h.rng);
  EXPECT_EQ(h.recover_new(2), h.secret);
}

TEST(DistributedVsr, CheatingOldHolderCaught) {
  VsrHarness h(3, 5, 3, 5, 7);
  h.old_holders[1].set_byzantine(true);
  const VsrResult r = run_vsr(h.old_holders, h.new_holders, h.bus, h.rng);
  EXPECT_EQ(r.accused, (std::set<NodeId>{1}));
  EXPECT_EQ(h.recover_new(3), h.secret);
}

TEST(DistributedVsr, TooManyCheatersUnrecoverable) {
  VsrHarness h(4, 5, 3, 4, 9);
  h.old_holders[0].set_byzantine(true);
  h.old_holders[2].set_byzantine(true);
  EXPECT_THROW(run_vsr(h.old_holders, h.new_holders, h.bus, h.rng),
               UnrecoverableError);
}

TEST(DistributedVsr, OldSharesUselessAgainstNewSharing) {
  VsrHarness h(3, 5, 3, 5, 11);
  run_vsr(h.old_holders, h.new_holders, h.bus, h.rng);
  // Two old shares + one new share must not reconstruct.
  std::vector<VssShare> mixed = {h.dealing.shares[0], h.dealing.shares[1],
                                 h.new_holders[0].share()};
  // Indices collide across generations (both 1-based): remap the new
  // one out of the way is NOT allowed — instead just check the honest
  // combination semantics: recovery from old shares still works (the
  // old polynomial exists) but the protocols retire those nodes; the
  // meaningful property is that new shares form an INDEPENDENT sharing:
  const U256 from_old = vss_recover(
      {h.dealing.shares.begin(), h.dealing.shares.begin() + 3}, 3);
  EXPECT_EQ(from_old, h.secret);  // redistribution does not re-randomize
                                  // the old sharing (refresh does that)
  (void)mixed;
}

// ------------------------------------------------------------ KeyService

TEST(KeyService, StoreFetchRoundTrip) {
  Cluster cluster(5, ChannelKind::kPlain, 1);
  KeyService svc(cluster, 3, 5, ChannelKind::kTls);
  ChaChaRng rng(1);
  const U256 key = ec::Secp256k1::instance().random_scalar(rng);
  EXPECT_EQ(svc.store("master-1", key, rng), 5u);
  EXPECT_EQ(svc.fetch("master-1"), key);
  EXPECT_GT(svc.messages(), 0u);
}

TEST(KeyService, SurvivesOfflineHolders) {
  Cluster cluster(5, ChannelKind::kPlain, 2);
  KeyService svc(cluster, 3, 5, ChannelKind::kTls);
  ChaChaRng rng(2);
  const U256 key(424242);
  svc.store("k", key, rng);
  cluster.fail_node(0);
  cluster.fail_node(3);
  EXPECT_EQ(svc.fetch("k"), key);
  cluster.fail_node(1);  // only 2 < t left
  EXPECT_THROW(svc.fetch("k"), UnrecoverableError);
}

TEST(KeyService, ByzantineHolderResponsesDetected) {
  Cluster cluster(5, ChannelKind::kPlain, 3);
  KeyService svc(cluster, 3, 5, ChannelKind::kTls);
  ChaChaRng rng(3);
  const U256 key(777777);
  svc.store("k", key, rng);
  // Two liars: their corrupted shares are dropped at verification and
  // the fetch still reconstructs from the three honest holders.
  svc.holder(0).set_byzantine(true);
  svc.holder(2).set_byzantine(true);
  EXPECT_EQ(svc.fetch("k"), key);
  // Three liars leave fewer than t honest responses.
  svc.holder(4).set_byzantine(true);
  EXPECT_THROW(svc.fetch("k"), UnrecoverableError);
}

TEST(KeyService, RefreshRetiresStolenShares) {
  Cluster cluster(5, ChannelKind::kPlain, 4);
  KeyService svc(cluster, 3, 5, ChannelKind::kTls);
  ChaChaRng rng(4);
  const U256 key(13579);
  svc.store("k", key, rng);

  // Adversary steals two shares pre-refresh.
  std::vector<VssShare> stolen;
  for (NodeId i = 0; i < 2; ++i)
    stolen.push_back(*svc.holder(i).answer_fetch("k"));

  const auto accused = svc.refresh(rng);
  EXPECT_TRUE(accused.empty());
  EXPECT_EQ(svc.fetch("k"), key);  // still reconstructs post-refresh

  // One more pre-refresh share would have crossed t=3; but mixing the
  // two stolen old shares with a fresh one reconstructs garbage.
  stolen.push_back(*svc.holder(2).answer_fetch("k"));
  EXPECT_NE(vss_recover(stolen, 3), key);
}

TEST(KeyService, RefreshWithByzantineHolderAccuses) {
  Cluster cluster(5, ChannelKind::kPlain, 5);
  KeyService svc(cluster, 3, 5, ChannelKind::kTls);
  ChaChaRng rng(5);
  svc.store("k", U256(2468), rng);
  svc.holder(1).set_byzantine(true);
  const auto accused = svc.refresh(rng);
  EXPECT_EQ(accused, (std::set<NodeId>{1}));
  // Honest majority carried the refresh; fetch from honest holders only.
  svc.holder(1).set_byzantine(false);
  EXPECT_EQ(svc.fetch("k"), U256(2468));
}

TEST(KeyService, MultipleKeysIndependent) {
  Cluster cluster(4, ChannelKind::kPlain, 6);
  KeyService svc(cluster, 2, 4, ChannelKind::kTls);
  ChaChaRng rng(6);
  svc.store("a", U256(1), rng);
  svc.store("b", U256(2), rng);
  svc.refresh(rng);
  EXPECT_EQ(svc.fetch("a"), U256(1));
  EXPECT_EQ(svc.fetch("b"), U256(2));
  EXPECT_THROW(svc.fetch("missing"), UnrecoverableError);
}

TEST(DistributedVsr, WireCostScales) {
  VsrHarness h(3, 5, 4, 7, 13);
  const VsrResult r = run_vsr(h.old_holders, h.new_holders, h.bus, h.rng);
  // n sub-share fan-outs of n2 messages each, twice (shares + comms).
  EXPECT_EQ(r.messages, 2u * 5 * 7);
  EXPECT_GT(r.bytes, 0u);
}

}  // namespace
}  // namespace aegis
