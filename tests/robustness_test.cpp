// Robustness sweeps: every wire-format parser in the library is fed
// mutated, truncated and garbage inputs. The contract under attack
// input is uniform — throw an aegis::Error (ParseError and friends) or
// return a well-formed value; never crash, never read out of bounds.
// (Run under ASan/UBSan for the full effect; in plain builds these still
// catch logic errors and uncaught exception types.)
#include <gtest/gtest.h>

#include <map>

#include "archive/aont.h"
#include "archive/archive.h"
#include "crypto/chacha20.h"
#include "crypto/secp256k1.h"
#include "integrity/timestamp.h"
#include "node/messaging.h"
#include "node/node.h"
#include "sharing/lrss.h"
#include "sharing/packed.h"
#include "sharing/shamir.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

// Exercises one parser against truncations, bit flips and random bytes.
// `parse` must either throw aegis::Error (or std::exception subtypes we
// expect from parsing) or succeed. An unexpected exception type fails
// the test with the mutation seed/stage/offset, so the exact input that
// escaped the contract can be replayed.
template <typename ParseFn>
void fuzz_parser(const Bytes& valid, ParseFn parse, std::uint64_t seed) {
  SimRng rng(seed);

  const auto attempt = [&](ByteView input, const char* stage,
                           std::uint64_t detail) {
    try {
      parse(input);
    } catch (const Error&) {
      // expected: the parser rejected the mutation cleanly
    } catch (const std::exception& e) {
      ADD_FAILURE() << "non-aegis exception escaped parser: seed=" << seed
                    << " stage=" << stage << " detail=" << detail << ": "
                    << e.what();
    } catch (...) {
      ADD_FAILURE() << "non-exception type escaped parser: seed=" << seed
                    << " stage=" << stage << " detail=" << detail;
    }
  };

  // Every truncation length (detail = length kept).
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const Bytes cut(valid.begin(), valid.begin() + len);
    attempt(cut, "truncate", len);
  }

  // Random single-bit flips (detail = byte_offset * 8 + bit).
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mut = valid;
    const std::uint64_t offset = rng.uniform(mut.size());
    const std::uint64_t bit = rng.uniform(8);
    mut[offset] ^= static_cast<std::uint8_t>(1u << bit);
    attempt(mut, "bitflip", offset * 8 + bit);
  }

  // Pure garbage of assorted sizes (detail = length).
  for (std::size_t len : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    const Bytes junk = rng.bytes(len);
    attempt(junk, "garbage", len);
  }
}

TEST(Robustness, ShareParser) {
  Share s{3, {1, 2, 3, 4, 5}};
  fuzz_parser(s.serialize(),
              [](ByteView b) { (void)Share::deserialize(b); }, 1);
}

TEST(Robustness, PackedShareParser) {
  PackedShare s{7, {9, 8, 7, 6}};
  fuzz_parser(s.serialize(),
              [](ByteView b) { (void)PackedShare::deserialize(b); }, 2);
}

TEST(Robustness, LrssShareParser) {
  LrssShare s{2, Bytes(40, 1), Bytes(16, 2)};
  fuzz_parser(s.serialize(),
              [](ByteView b) { (void)LrssShare::deserialize(b); }, 3);
}

TEST(Robustness, StoredBlobParser) {
  StoredBlob blob;
  blob.object = "some/object";
  blob.shard_index = 4;
  blob.generation = 2;
  blob.data = Bytes(64, 0xcc);
  fuzz_parser(blob.serialize(),
              [](ByteView b) { (void)StoredBlob::deserialize(b); }, 4);
}

TEST(Robustness, ProtocolMessageParser) {
  ProtocolMessage m;
  m.from = 1;
  m.to = 2;
  m.topic = "pss/subshare";
  m.payload = Bytes(68, 0xee);
  fuzz_parser(m.serialize(),
              [](ByteView b) { (void)ProtocolMessage::deserialize(b); }, 5);
}

TEST(Robustness, TimestampLinkParser) {
  ChaChaRng rng(6);
  TimestampAuthority tsa(rng);
  const auto link = tsa.stamp(Bytes(32, 1), SchemeId::kSha256, {}, 3);
  fuzz_parser(link.serialize(),
              [](ByteView b) { (void)TimestampLink::deserialize(b); }, 6);
}

TEST(Robustness, TimestampChainParser) {
  ChaChaRng rng(7);
  TimestampAuthority tsa(rng);
  auto chain = TimestampChain::begin(tsa, Bytes(32, 2), SchemeId::kSha256, 0);
  chain.renew(tsa, 1);
  fuzz_parser(chain.serialize(),
              [](ByteView b) { (void)TimestampChain::deserialize(b); }, 7);
}

TEST(Robustness, AontParser) {
  ChaChaRng rng(8);
  const Bytes pkg = aont_package(Bytes(100, 3), SchemeId::kAes128Ctr, rng);
  fuzz_parser(pkg, [](ByteView b) { (void)aont_unpackage(b); }, 8);
}

TEST(Robustness, ManifestParser) {
  // A rich manifest (LINCOS profile: commitment + chain + challenges).
  ArchivalPolicy p = ArchivalPolicy::Lincos();
  Cluster cluster(p.n, p.channel, 9);
  SchemeRegistry reg;
  ChaChaRng rng(9);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, p, reg, tsa, rng);
  archive.put("doc", Bytes(200, 4));
  fuzz_parser(archive.manifest("doc").serialize(),
              [](ByteView b) { (void)ObjectManifest::deserialize(b); }, 9);
}

TEST(Robustness, EcPointDecoder) {
  const auto& curve = ec::Secp256k1::instance();
  const Bytes valid = curve.encode(curve.generator());
  fuzz_parser(valid, [&](ByteView b) { (void)curve.decode(b); }, 10);
}

TEST(Robustness, FaultInjectorDeterminism) {
  // Same seed + same schedule => identical fault timeline, bit for bit.
  const auto run = [](std::uint64_t seed) {
    Cluster cluster(6, ChannelKind::kPlain, seed);
    FaultInjector& faults = cluster.faults();
    faults.schedule_outage(2, 3, 2);
    faults.set_random_outages(0.15, 1, 3);
    LinkFaults link;
    link.drop_prob = 0.2;
    link.corrupt_prob = 0.15;
    link.spike_prob = 0.1;
    faults.set_link_faults(link);
    faults.set_bitrot(256.0);

    StoredBlob blob;
    blob.object = "obj";
    blob.data = Bytes(512, 0xab);
    for (NodeId i = 0; i < 6; ++i) {
      blob.shard_index = i;
      cluster.upload(i, blob);
    }
    for (int epoch = 0; epoch < 20; ++epoch) {
      cluster.advance_epoch();
      for (NodeId i = 0; i < 6; ++i) cluster.download(i, "obj", i);
    }
    return cluster.faults().timeline();
  };

  const auto first = run(77);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run(77));   // replayable
  EXPECT_NE(first, run(78));   // and actually seed-dependent
}

TEST(Robustness, CorruptedBlobOnNodeNeverCrashesReads) {
  // End-to-end: random corruption of stored shards must degrade reads
  // gracefully (skip/throw), never crash or mis-return.
  ArchivalPolicy p = ArchivalPolicy::FigErasure();
  Cluster cluster(p.n, ChannelKind::kPlain, 11);
  SchemeRegistry reg;
  ChaChaRng rng(11);
  SimRng sim(11);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, p, reg, tsa, rng);
  const Bytes data = sim.bytes(777);
  archive.put("doc", data);

  for (int trial = 0; trial < 50; ++trial) {
    // Corrupt 1-3 random shards (within parity tolerance of RS(6,9)).
    const unsigned hits = 1 + static_cast<unsigned>(sim.uniform(3));
    std::map<NodeId, StoredBlob> originals;  // clean copy per victim
    for (unsigned h = 0; h < hits; ++h) {
      const NodeId victim = static_cast<NodeId>(sim.uniform(p.n));
      if (originals.count(victim) > 0) continue;  // corrupt once each
      const StoredBlob* cur = cluster.node(victim).get("doc", victim);
      if (cur == nullptr) continue;
      originals.emplace(victim, *cur);
      StoredBlob bad = *cur;
      if (!bad.data.empty())
        bad.data[sim.uniform(bad.data.size())] ^= 0xff;
      cluster.node(victim).put(bad);
    }

    const Bytes got = archive.get("doc");
    EXPECT_EQ(got, data);  // within tolerance: always the right answer

    // Undo this trial's damage so corruption never exceeds tolerance.
    for (auto& [victim, blob] : originals) cluster.node(victim).put(blob);
  }
  EXPECT_EQ(archive.get("doc"), data);
  EXPECT_TRUE(archive.verify("doc").ok());
}

}  // namespace
}  // namespace aegis
