// Tests for systematic Reed-Solomon coding, including property sweeps
// over (k, n) geometries and erasure patterns.
#include <gtest/gtest.h>

#include "erasure/codec_cache.h"
#include "erasure/reed_solomon.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aegis {
namespace {

std::vector<std::optional<Bytes>> as_optionals(const std::vector<Bytes>& v) {
  return {v.begin(), v.end()};
}

TEST(ReedSolomon, RoundTripNoLoss) {
  SimRng rng(1);
  const ReedSolomon rs(4, 7);
  const Bytes data = rng.bytes(1000);
  const auto shards = rs.encode(data);
  ASSERT_EQ(shards.size(), 7u);
  EXPECT_EQ(rs.decode(as_optionals(shards), data.size()), data);
}

TEST(ReedSolomon, SystematicPrefix) {
  // First k shards concatenated == data (plus padding).
  SimRng rng(2);
  const ReedSolomon rs(3, 5);
  const Bytes data = rng.bytes(299);  // not a multiple of k
  const auto shards = rs.encode(data);
  Bytes joined;
  for (unsigned i = 0; i < 3; ++i)
    joined.insert(joined.end(), shards[i].begin(), shards[i].end());
  EXPECT_EQ(Bytes(joined.begin(), joined.begin() + 299), data);
}

TEST(ReedSolomon, RecoversFromAnyKSubset) {
  SimRng rng(3);
  const ReedSolomon rs(3, 6);
  const Bytes data = rng.bytes(500);
  const auto shards = rs.encode(data);

  // Exhaustively drop every possible set of 3 shards (C(6,3) = 20).
  for (unsigned a = 0; a < 6; ++a) {
    for (unsigned b = a + 1; b < 6; ++b) {
      for (unsigned c = b + 1; c < 6; ++c) {
        auto partial = as_optionals(shards);
        partial[a].reset();
        partial[b].reset();
        partial[c].reset();
        EXPECT_EQ(rs.decode(partial, data.size()), data)
            << "dropped " << a << "," << b << "," << c;
      }
    }
  }
}

TEST(ReedSolomon, FailsBelowThreshold) {
  SimRng rng(4);
  const ReedSolomon rs(4, 6);
  const auto shards = rs.encode(rng.bytes(100));
  auto partial = as_optionals(shards);
  partial[0].reset();
  partial[2].reset();
  partial[4].reset();  // only 3 < k=4 left
  EXPECT_THROW(rs.decode(partial, 100), UnrecoverableError);
}

TEST(ReedSolomon, ReconstructShardsRepairsAll) {
  SimRng rng(5);
  const ReedSolomon rs(3, 6);
  const Bytes data = rng.bytes(333);
  const auto shards = rs.encode(data);
  auto partial = as_optionals(shards);
  partial[1].reset();
  partial[5].reset();
  const auto repaired = rs.reconstruct_shards(partial);
  ASSERT_EQ(repaired.size(), 6u);
  for (unsigned i = 0; i < 6; ++i) EXPECT_EQ(repaired[i], shards[i]) << i;
}

TEST(ReedSolomon, EmptyInput) {
  const ReedSolomon rs(2, 4);
  const auto shards = rs.encode(Bytes{});
  ASSERT_EQ(shards.size(), 4u);
  for (const auto& s : shards) EXPECT_TRUE(s.empty());
  EXPECT_TRUE(rs.decode(as_optionals(shards), 0).empty());
}

TEST(ReedSolomon, SingleByteAndTinyInputs) {
  SimRng rng(6);
  const ReedSolomon rs(3, 5);
  for (std::size_t len : {1ul, 2ul, 3ul, 4ul}) {
    const Bytes data = rng.bytes(len);
    auto partial = as_optionals(rs.encode(data));
    partial[0].reset();
    partial[1].reset();
    EXPECT_EQ(rs.decode(partial, len), data) << "len=" << len;
  }
}

TEST(ReedSolomon, ParamValidation) {
  EXPECT_THROW(ReedSolomon(0, 5), InvalidArgument);
  EXPECT_THROW(ReedSolomon(6, 5), InvalidArgument);
  EXPECT_THROW(ReedSolomon(2, 256), InvalidArgument);
  EXPECT_NO_THROW(ReedSolomon(1, 1));
  EXPECT_NO_THROW(ReedSolomon(255, 255));
}

TEST(ReedSolomon, K1IsReplication) {
  const ReedSolomon rs(1, 3);
  const Bytes data = {1, 2, 3, 4};
  const auto shards = rs.encode(data);
  for (const auto& s : shards) EXPECT_EQ(s, data);
}

TEST(ReedSolomon, StorageOverhead) {
  EXPECT_DOUBLE_EQ(ReedSolomon(4, 6).storage_overhead(), 1.5);
  EXPECT_DOUBLE_EQ(ReedSolomon(1, 3).storage_overhead(), 3.0);
}

TEST(ReedSolomon, EncodeShardsValidatesInput) {
  const ReedSolomon rs(2, 4);
  EXPECT_THROW(rs.encode_shards({Bytes{1}}), InvalidArgument);  // != k
  EXPECT_THROW(rs.encode_shards({Bytes{1}, Bytes{1, 2}}), InvalidArgument);
}

TEST(ReedSolomon, CauchyRoundTripAndExhaustiveErasures) {
  SimRng rng(7);
  const ReedSolomon rs(3, 6, RsMatrix::kCauchy);
  const Bytes data = rng.bytes(500);
  const auto shards = rs.encode(data);

  // Systematic property holds for Cauchy too.
  Bytes joined;
  for (unsigned i = 0; i < 3; ++i)
    joined.insert(joined.end(), shards[i].begin(), shards[i].end());
  EXPECT_EQ(Bytes(joined.begin(), joined.begin() + 500), data);

  // All C(6,3) erasure patterns decode.
  for (unsigned a = 0; a < 6; ++a)
    for (unsigned b = a + 1; b < 6; ++b)
      for (unsigned c = b + 1; c < 6; ++c) {
        auto partial = as_optionals(shards);
        partial[a].reset();
        partial[b].reset();
        partial[c].reset();
        EXPECT_EQ(rs.decode(partial, data.size()), data);
      }
}

TEST(ReedSolomon, CauchyAndVandermondeAgreeOnData) {
  // Different parity, same recovered data from any k shards.
  SimRng rng(8);
  const Bytes data = rng.bytes(301);
  const ReedSolomon vand(4, 8, RsMatrix::kVandermonde);
  const ReedSolomon cauchy(4, 8, RsMatrix::kCauchy);
  auto sv = as_optionals(vand.encode(data));
  auto sc = as_optionals(cauchy.encode(data));
  for (int i : {0, 2, 5, 7}) {
    sv[i].reset();
    sc[i].reset();
  }
  EXPECT_EQ(vand.decode(sv, data.size()), data);
  EXPECT_EQ(cauchy.decode(sc, data.size()), data);
}

TEST(ReedSolomon, CauchyGeometryLimit) {
  EXPECT_THROW(ReedSolomon(128, 200, RsMatrix::kCauchy), InvalidArgument);
  EXPECT_NO_THROW(ReedSolomon(100, 156, RsMatrix::kCauchy));
}

// ------------------------------------------------------------ codec cache

TEST(RsCodecCache, SameGeometryReturnsSameInstance) {
  const ReedSolomon& a = rs_codec(4, 7);
  const ReedSolomon& b = rs_codec(4, 7);
  EXPECT_EQ(&a, &b);
  // Different geometry or matrix kind is a different codec.
  EXPECT_NE(&a, &rs_codec(4, 8));
  EXPECT_NE(&a, &rs_codec(4, 7, RsMatrix::kCauchy));
  EXPECT_EQ(&rs_codec(4, 7, RsMatrix::kCauchy),
            &rs_codec(4, 7, RsMatrix::kCauchy));
}

TEST(RsCodecCache, InvalidGeometryThrowsEveryCall) {
  // Validation happens in the ReedSolomon ctor; a failed construction
  // must not poison the cache.
  EXPECT_THROW(rs_codec(0, 5), InvalidArgument);
  EXPECT_THROW(rs_codec(0, 5), InvalidArgument);
  EXPECT_THROW(rs_codec(5, 4), InvalidArgument);
}

TEST(RsCodecCache, CachedCodecEncodesCorrectly) {
  SimRng rng(40);
  const Bytes data = rng.bytes(500);
  const auto shards = rs_codec(4, 7).encode(data);
  EXPECT_EQ(rs_codec(4, 7).decode(as_optionals(shards), data.size()), data);
}

// ------------------------------------------------------- pool determinism

TEST(ReedSolomon, PooledEncodeMatchesSerial) {
  SimRng rng(41);
  const ReedSolomon rs(10, 14);
  const Bytes data = rng.bytes(100 * 1000 + 13);
  const auto serial = rs.encode(data);
  for (unsigned workers : {1u, 2u, 5u}) {
    ThreadPool pool(workers);
    EXPECT_EQ(rs.encode(data, &pool), serial) << "workers=" << workers;
  }
}

TEST(ReedSolomon, PooledDecodeAndReconstructMatchSerial) {
  SimRng rng(42);
  const ReedSolomon rs(6, 9);
  const Bytes data = rng.bytes(77777);
  auto partial = as_optionals(rs.encode(data));
  partial[0].reset();
  partial[4].reset();
  partial[8].reset();
  const Bytes serial_decode = rs.decode(partial, data.size());
  auto serial_shards = partial;
  rs.reconstruct_shards(serial_shards);
  for (unsigned workers : {1u, 3u}) {
    ThreadPool pool(workers);
    EXPECT_EQ(rs.decode(partial, data.size(), &pool), serial_decode);
    auto pooled_shards = partial;
    rs.reconstruct_shards(pooled_shards, &pool);
    EXPECT_EQ(pooled_shards, serial_shards) << "workers=" << workers;
  }
  EXPECT_EQ(serial_decode, data);
}

// Property sweep: round-trip across geometries with random erasures.
class RsGeometry : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(RsGeometry, RoundTripWithMaxErasures) {
  const auto [k, n] = GetParam();
  SimRng rng(k * 1000 + n);
  const ReedSolomon rs(k, n);
  const Bytes data = rng.bytes(257);
  auto partial = as_optionals(rs.encode(data));
  // Erase exactly n-k random distinct shards.
  unsigned erased = 0;
  while (erased < n - k) {
    const auto idx = static_cast<std::size_t>(rng.uniform(n));
    if (partial[idx]) {
      partial[idx].reset();
      ++erased;
    }
  }
  EXPECT_EQ(rs.decode(partial, data.size()), data);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RsGeometry,
    ::testing::Values(std::pair{1u, 2u}, std::pair{2u, 3u}, std::pair{3u, 5u},
                      std::pair{4u, 10u}, std::pair{8u, 12u},
                      std::pair{10u, 14u}, std::pair{16u, 20u},
                      std::pair{32u, 40u}, std::pair{100u, 120u},
                      std::pair{200u, 255u}));

}  // namespace
}  // namespace aegis
