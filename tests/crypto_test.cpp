// Tests for the crypto substrate: known-answer vectors for every
// primitive, algebraic properties for the group-based constructions, and
// behaviour tests for the scheme registry.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/cipher.h"
#include "crypto/combiner.h"
#include "crypto/entropic.h"
#include "crypto/hmac.h"
#include "crypto/pedersen.h"
#include "crypto/scheme.h"
#include "crypto/schnorr.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"
#include "crypto/sha3.h"
#include "crypto/speck.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

// ----------------------------------------------------------------- SHA-2

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(hex_encode(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_encode(Sha256::hash(to_bytes(std::string_view("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      hex_encode(Sha256::hash(to_bytes(std::string_view(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  SimRng rng(1);
  const Bytes msg = rng.bytes(1000);
  for (std::size_t split : {0ul, 1ul, 63ul, 64ul, 65ul, 999ul, 1000ul}) {
    Sha256 h;
    h.update(ByteView(msg).subspan(0, split));
    h.update(ByteView(msg).subspan(split));
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha512, Fips180Vectors) {
  EXPECT_EQ(
      hex_encode(Sha512::hash(to_bytes(std::string_view("abc")))),
      "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
      "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
  EXPECT_EQ(
      hex_encode(Sha512::hash({})),
      "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
      "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha3, Fips202Vectors) {
  EXPECT_EQ(hex_encode(Sha3_256::hash({})),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
  EXPECT_EQ(hex_encode(Sha3_256::hash(to_bytes(std::string_view("abc")))),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
  EXPECT_EQ(
      hex_encode(Sha3_256::hash(to_bytes(std::string_view(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
      "41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376");
}

TEST(Sha3, IncrementalMatchesOneShot) {
  SimRng rng(50);
  const Bytes msg = rng.bytes(1000);
  for (std::size_t split : {0ul, 1ul, 135ul, 136ul, 137ul, 999ul}) {
    Sha3_256 h;
    h.update(ByteView(msg).subspan(0, split));
    h.update(ByteView(msg).subspan(split));
    EXPECT_EQ(h.finish(), Sha3_256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha3, IndependentFamilyFromSha2) {
  const Bytes msg = to_bytes(std::string_view("generation test"));
  EXPECT_NE(Sha3_256::hash(msg), Sha256::hash(msg));
  // And the registry treats them as independently breakable.
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kSha256, 10);
  EXPECT_TRUE(reg.is_broken(SchemeId::kSha256, 10));
  EXPECT_FALSE(reg.is_broken(SchemeId::kSha3_256, 1000));
}

TEST(Hmac, Rfc4231Vectors) {
  // Test case 1
  const Bytes key1(20, 0x0b);
  EXPECT_EQ(hex_encode(hmac_sha256(key1, to_bytes(std::string_view("Hi There")))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2: key "Jefe", data "what do ya want for nothing?"
  EXPECT_EQ(hex_encode(hmac_sha256(
                to_bytes(std::string_view("Jefe")),
                to_bytes(std::string_view("what do ya want for nothing?")))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hkdf, Rfc5869TestCase1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = hex_decode("000102030405060708090a0b0c");
  const Bytes info = hex_decode("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(ikm, salt, info, 42);
  EXPECT_EQ(hex_encode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ExpandLengthLimits) {
  const Bytes prk(32, 1);
  EXPECT_THROW(hkdf_expand(prk, {}, 0), InvalidArgument);
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), InvalidArgument);
  EXPECT_EQ(hkdf_expand(prk, {}, 255 * 32).size(), 255u * 32);
}

// ------------------------------------------------------------------- AES

TEST(Aes, Fips197BlockVectors) {
  // AES-128
  {
    const Bytes key = hex_decode("000102030405060708090a0b0c0d0e0f");
    Bytes block = hex_decode("00112233445566778899aabbccddeeff");
    Aes aes(key);
    aes.encrypt_block(block.data());
    EXPECT_EQ(hex_encode(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
  }
  // AES-256
  {
    const Bytes key = hex_decode(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
    Bytes block = hex_decode("00112233445566778899aabbccddeeff");
    Aes aes(key);
    aes.encrypt_block(block.data());
    EXPECT_EQ(hex_encode(block), "8ea2b7ca516745bfeafc49904b496089");
  }
}

TEST(Aes, CtrRoundTripAndInvolution) {
  SimRng rng(2);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Bytes msg = rng.bytes(1000);
  const Bytes ct = aes_ctr(key, iv, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(aes_ctr(key, iv, ct), msg);
}

TEST(Aes, CtrNistSp80038aVector) {
  // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt
  const Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv = hex_decode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = hex_decode("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(hex_encode(aes_ctr(key, iv, pt)),
            "874d6191b620e3261bef6864990db6ce");
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_THROW(Aes(Bytes(15)), InvalidArgument);
  EXPECT_THROW(Aes(Bytes(24)), InvalidArgument);  // AES-192 unsupported
  EXPECT_THROW(aes_ctr(Bytes(16), Bytes(8), Bytes(4)), InvalidArgument);
}

// -------------------------------------------------------------- ChaCha20

TEST(ChaCha20, Rfc8439Vector) {
  const Bytes key = hex_decode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = hex_decode("000000000000004a00000000");
  const std::string pt =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  const Bytes ct = chacha20(key, nonce, to_bytes(pt), 1);
  EXPECT_EQ(hex_encode(ByteView(ct).subspan(0, 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
  EXPECT_EQ(chacha20(key, nonce, ct, 1), to_bytes(pt));
}

TEST(ChaCha20, RejectsBadParams) {
  EXPECT_THROW(chacha20(Bytes(31), Bytes(12), Bytes(1)), InvalidArgument);
  EXPECT_THROW(chacha20(Bytes(32), Bytes(11), Bytes(1)), InvalidArgument);
}

TEST(ChaChaRng, DeterministicAndDistinct) {
  ChaChaRng a(42), b(42), c(43);
  const Bytes x = a.bytes(100);
  EXPECT_EQ(x, b.bytes(100));
  EXPECT_NE(x, c.bytes(100));
}

TEST(ChaChaRng, FillChunkingConsistent) {
  // Drawing 100 bytes at once == drawing 10 x 10 bytes.
  ChaChaRng a(7), b(7);
  const Bytes whole = a.bytes(100);
  Bytes parts;
  for (int i = 0; i < 10; ++i) {
    const Bytes p = b.bytes(10);
    parts.insert(parts.end(), p.begin(), p.end());
  }
  EXPECT_EQ(whole, parts);
}

// ----------------------------------------------------------------- Speck

TEST(Speck, PaperTestVector) {
  // Speck128/128 vector from the 2013 NSA paper (appendix).
  const Bytes key = hex_decode("000102030405060708090a0b0c0d0e0f");
  Speck128 cipher(key);
  std::uint64_t x = 0x6c61766975716520ULL, y = 0x7469206564616d20ULL;
  cipher.encrypt_block(x, y);
  EXPECT_EQ(x, 0xa65d985179783265ULL);
  EXPECT_EQ(y, 0x7860fedf5c570d18ULL);
}

TEST(Speck, CtrRoundTrip) {
  SimRng rng(3);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Bytes msg = rng.bytes(333);
  EXPECT_EQ(speck_ctr(key, iv, speck_ctr(key, iv, msg)), msg);
}

// -------------------------------------------------------------- Entropic

TEST(EntropicXor, InvolutionAndKeySize) {
  SimRng rng(4);
  const Bytes key = rng.bytes(EntropicXor::kKeySize);
  const Bytes msg = rng.bytes(500);
  EntropicXor enc(key);
  const Bytes ct = enc.apply(msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(enc.apply(ct), msg);
  EXPECT_THROW(EntropicXor(Bytes(8)), InvalidArgument);
}

TEST(EntropicXor, DifferentKeysDifferentPads) {
  SimRng rng(5);
  const Bytes zero(256, 0);
  const Bytes pad1 = EntropicXor(rng.bytes(16)).apply(zero);
  const Bytes pad2 = EntropicXor(rng.bytes(16)).apply(zero);
  EXPECT_NE(pad1, pad2);
}

TEST(EntropicXor, BiasBoundGrowsWithLength) {
  EXPECT_LT(EntropicXor::bias_bound(64), EntropicXor::bias_bound(1 << 20));
  EXPECT_GT(EntropicXor::bias_bound(8), 0.0);
}

TEST(Gf64, MulFieldProperties) {
  SimRng rng(6);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.next_u64(), b = rng.next_u64(),
                        c = rng.next_u64();
    EXPECT_EQ(gf64_mul(a, b), gf64_mul(b, a));
    EXPECT_EQ(gf64_mul(gf64_mul(a, b), c), gf64_mul(a, gf64_mul(b, c)));
    EXPECT_EQ(gf64_mul(a, b ^ c),
              gf64_mul(a, b) ^ gf64_mul(a, c));
    EXPECT_EQ(gf64_mul(a, 1), a);
  }
}

// ---------------------------------------------------------------- Cipher

TEST(CipherFacade, AllCiphersRoundTrip) {
  ChaChaRng rng(7);
  SimRng sim(7);
  const Bytes msg = sim.bytes(777);
  for (SchemeId id :
       {SchemeId::kAes128Ctr, SchemeId::kAes256Ctr, SchemeId::kChaCha20,
        SchemeId::kSpeck128Ctr, SchemeId::kOneTimePad,
        SchemeId::kEntropicXor}) {
    const SecureBytes key = generate_key(id, rng, msg.size());
    const Bytes iv = generate_iv(id, rng);
    const ByteView kv(key.data(), key.size());
    const Bytes ct = cipher_apply(id, kv, iv, msg);
    EXPECT_NE(ct, msg) << scheme_name(id);
    EXPECT_EQ(cipher_apply(id, kv, iv, ct), msg) << scheme_name(id);
  }
}

TEST(CipherFacade, NonCipherRejected) {
  EXPECT_THROW(cipher_params(SchemeId::kSha256), InvalidArgument);
  EXPECT_THROW(cipher_params(SchemeId::kReedSolomon), InvalidArgument);
}

// ------------------------------------------------------------- Combiners

TEST(CascadeCombiner, RoundTripAllDepths) {
  ChaChaRng rng(40);
  SimRng sim(40);
  const Bytes msg = sim.bytes(500);
  for (unsigned depth = 1; depth <= 3; ++depth) {
    std::vector<SchemeId> comps(
        {SchemeId::kAes256Ctr, SchemeId::kChaCha20, SchemeId::kSpeck128Ctr});
    comps.resize(depth);
    const CascadeCombiner cc(comps);
    const auto keys = cc.keygen(rng);
    const Bytes ct = cc.seal(msg, keys);
    EXPECT_EQ(ct.size(), msg.size());  // no expansion
    EXPECT_NE(ct, msg);
    EXPECT_EQ(cc.open(ct, keys), msg);
  }
}

TEST(CascadeCombiner, FallsWithLastComponent) {
  const CascadeCombiner cc({SchemeId::kAes256Ctr, SchemeId::kChaCha20});
  SchemeRegistry reg;
  EXPECT_EQ(cc.falls_at(reg), kNever);
  reg.set_break_epoch(SchemeId::kAes256Ctr, 10);
  EXPECT_EQ(cc.falls_at(reg), kNever);  // ChaCha still stands
  reg.set_break_epoch(SchemeId::kChaCha20, 25);
  EXPECT_EQ(cc.falls_at(reg), 25u);
}

TEST(CascadeCombiner, Validation) {
  EXPECT_THROW(CascadeCombiner({}), InvalidArgument);
  EXPECT_THROW(CascadeCombiner({SchemeId::kSha256}), InvalidArgument);
  EXPECT_THROW(CascadeCombiner({SchemeId::kOneTimePad}), InvalidArgument);
}

TEST(XorCombiner, RoundTripAndExpansion) {
  ChaChaRng rng(41);
  SimRng sim(41);
  const Bytes msg = sim.bytes(333);
  const XorCombiner xc(SchemeId::kAes256Ctr, SchemeId::kSpeck128Ctr);
  const auto keys = xc.keygen(rng);
  const Bytes ct = xc.seal(msg, keys, rng);
  EXPECT_GE(ct.size(), 2 * msg.size());  // the storage price
  EXPECT_EQ(xc.open(ct, keys), msg);
}

TEST(XorCombiner, FreshRandomnessPerSeal) {
  ChaChaRng rng(42);
  const Bytes msg(64, 0x11);
  const XorCombiner xc(SchemeId::kChaCha20, SchemeId::kAes128Ctr);
  const auto keys = xc.keygen(rng);
  EXPECT_NE(xc.seal(msg, keys, rng), xc.seal(msg, keys, rng));
}

TEST(XorCombiner, FallsOnlyWhenBothBreak) {
  const XorCombiner xc(SchemeId::kAes256Ctr, SchemeId::kChaCha20);
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kAes256Ctr, 5);
  EXPECT_EQ(xc.falls_at(reg), kNever);
  reg.set_break_epoch(SchemeId::kChaCha20, 9);
  EXPECT_EQ(xc.falls_at(reg), 9u);
}

TEST(XorCombiner, BrokenHalfAloneRevealsNothingStructural) {
  // With E2 "broken" (we just decrypt r honestly), the remaining half
  // E1(m xor r) xor r == m xor pad1 — still ciphertext under E1. Sanity:
  // reconstructing with only one half fails structurally.
  ChaChaRng rng(43);
  const XorCombiner xc(SchemeId::kAes256Ctr, SchemeId::kChaCha20);
  const auto keys = xc.keygen(rng);
  const Bytes ct = xc.seal(Bytes(100, 0x5c), keys, rng);
  Bytes truncated(ct.begin(), ct.begin() + ct.size() / 2);
  EXPECT_THROW(xc.open(truncated, keys), ParseError);
}

// --------------------------------------------------------------- Schemes

TEST(SchemeRegistry, BreakSemantics) {
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kAes128Ctr, 10);
  EXPECT_FALSE(reg.is_broken(SchemeId::kAes128Ctr, 9));
  EXPECT_TRUE(reg.is_broken(SchemeId::kAes128Ctr, 10));
  EXPECT_TRUE(reg.is_broken(SchemeId::kAes128Ctr, 1000));
  EXPECT_FALSE(reg.is_broken(SchemeId::kChaCha20, 1000));
  reg.clear_break(SchemeId::kAes128Ctr);
  EXPECT_FALSE(reg.is_broken(SchemeId::kAes128Ctr, 1000));
}

TEST(SchemeRegistry, ItsSchemesCannotBreak) {
  SchemeRegistry reg;
  EXPECT_THROW(reg.set_break_epoch(SchemeId::kOneTimePad, 5),
               InvalidArgument);
  EXPECT_THROW(reg.set_break_epoch(SchemeId::kShamirGf256, 5),
               InvalidArgument);
  EXPECT_THROW(reg.set_break_epoch(SchemeId::kPedersenCommit, 5),
               InvalidArgument);
}

TEST(SchemeRegistry, CascadeBreakEpochs) {
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kAes256Ctr, 10);
  reg.set_break_epoch(SchemeId::kChaCha20, 20);
  // A single-cipher object falls at its cipher's break.
  EXPECT_EQ(reg.earliest_break({SchemeId::kAes256Ctr}), 10u);
  // A cascade survives until the *last* layer falls.
  EXPECT_EQ(reg.latest_break({SchemeId::kAes256Ctr, SchemeId::kChaCha20}),
            20u);
  // A cascade containing an unbroken cipher never falls.
  EXPECT_EQ(reg.latest_break({SchemeId::kAes256Ctr, SchemeId::kSpeck128Ctr}),
            kNever);
  // earliest_break with nothing scheduled.
  EXPECT_EQ(reg.earliest_break({SchemeId::kSpeck128Ctr}), kNever);
}

TEST(SchemeInfo, Classifications) {
  EXPECT_EQ(scheme_info(SchemeId::kAes256Ctr).confidentiality,
            SecurityClass::kComputational);
  EXPECT_EQ(scheme_info(SchemeId::kOneTimePad).confidentiality,
            SecurityClass::kInformationTheoretic);
  EXPECT_EQ(scheme_info(SchemeId::kEntropicXor).confidentiality,
            SecurityClass::kEntropic);
  EXPECT_EQ(scheme_info(SchemeId::kShamirGf256).kind, SchemeKind::kSharing);
  EXPECT_EQ(scheme_name(SchemeId::kChaCha20), "ChaCha20");
}

// ------------------------------------------------------------- secp256k1

TEST(Secp256k1, GeneratorSanity) {
  const auto& curve = ec::Secp256k1::instance();
  // 2G has the known x-coordinate.
  U256 x, y;
  curve.to_affine(curve.dbl(curve.generator()), x, y);
  EXPECT_EQ(x.to_hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
}

TEST(Secp256k1, OrderAnnihilatesGenerator) {
  const auto& curve = ec::Secp256k1::instance();
  const ec::Point zero = curve.mul(curve.generator(), curve.order());
  EXPECT_TRUE(curve.is_infinity(zero));
}

TEST(Secp256k1, GroupLaws) {
  const auto& curve = ec::Secp256k1::instance();
  SimRng rng(8);
  const U256 a = curve.random_scalar(rng);
  const U256 b = curve.random_scalar(rng);
  // (a+b)G == aG + bG
  const U256 ab = curve.fn().add(a, b);
  EXPECT_TRUE(curve.eq(curve.mul_gen(ab),
                       curve.add(curve.mul_gen(a), curve.mul_gen(b))));
  // P + (-P) == identity
  const ec::Point p = curve.mul_gen(a);
  EXPECT_TRUE(curve.is_infinity(curve.add(p, curve.neg(p))));
  // P + identity == P
  EXPECT_TRUE(curve.eq(curve.add(p, ec::Point{}), p));
}

TEST(Secp256k1, EncodeDecodeRoundTrip) {
  const auto& curve = ec::Secp256k1::instance();
  SimRng rng(9);
  for (int i = 0; i < 10; ++i) {
    const ec::Point p = curve.mul_gen(curve.random_scalar(rng));
    const Bytes enc = curve.encode(p);
    EXPECT_EQ(enc.size(), 33u);
    EXPECT_TRUE(curve.eq(curve.decode(enc), p));
  }
  // Identity encodes to the 1-byte sentinel.
  const Bytes id_enc = curve.encode(ec::Point{});
  EXPECT_EQ(id_enc, Bytes{0x00});
  EXPECT_TRUE(curve.is_infinity(curve.decode(id_enc)));
}

TEST(Secp256k1, DecodeRejectsGarbage) {
  const auto& curve = ec::Secp256k1::instance();
  EXPECT_THROW(curve.decode(Bytes(33, 0xff)), ParseError);
  EXPECT_THROW(curve.decode(Bytes(32, 0x02)), ParseError);
}

TEST(Secp256k1, PedersenHIndependentOfG) {
  const auto& curve = ec::Secp256k1::instance();
  EXPECT_FALSE(curve.is_infinity(curve.pedersen_h()));
  EXPECT_FALSE(curve.eq(curve.pedersen_h(), curve.generator()));
}

// -------------------------------------------------------------- Pedersen

TEST(Pedersen, CommitVerifyRoundTrip) {
  ChaChaRng rng(10);
  PedersenOpening open;
  const auto c = pedersen_commit(U256(12345), rng, open);
  EXPECT_TRUE(pedersen_verify(c, open));
  // Wrong value or blind fails.
  PedersenOpening bad = open;
  bad.value = U256(12346);
  EXPECT_FALSE(pedersen_verify(c, bad));
  bad = open;
  bad.blind = U256(999);
  EXPECT_FALSE(pedersen_verify(c, bad));
}

TEST(Pedersen, BytesCommitRoundTrip) {
  ChaChaRng rng(11);
  PedersenOpening open;
  const Bytes msg = to_bytes(std::string_view("the archive record"));
  const auto c = pedersen_commit_bytes(msg, rng, open);
  EXPECT_TRUE(pedersen_verify_bytes(c, msg, open.blind));
  EXPECT_FALSE(pedersen_verify_bytes(
      c, to_bytes(std::string_view("another record")), open.blind));
}

TEST(Pedersen, Homomorphism) {
  const auto& curve = ec::Secp256k1::instance();
  ChaChaRng rng(12);
  const U256 v1 = curve.random_scalar(rng), v2 = curve.random_scalar(rng);
  const U256 r1 = curve.random_scalar(rng), r2 = curve.random_scalar(rng);
  const auto c1 = pedersen_commit(v1, r1);
  const auto c2 = pedersen_commit(v2, r2);
  const auto sum = pedersen_add(c1, c2);
  EXPECT_TRUE(pedersen_verify(
      sum, {curve.fn().add(v1, v2), curve.fn().add(r1, r2)}));
}

TEST(Pedersen, HidingCommitmentsLookUnrelated) {
  // Same value, different blinds -> different commitments (the hiding
  // property's observable footprint).
  ChaChaRng rng(13);
  PedersenOpening o1, o2;
  const auto c1 = pedersen_commit(U256(7), rng, o1);
  const auto c2 = pedersen_commit(U256(7), rng, o2);
  EXPECT_FALSE(c1 == c2);
}

TEST(Pedersen, EncodingRoundTrip) {
  ChaChaRng rng(14);
  PedersenOpening open;
  const auto c = pedersen_commit(U256(42), rng, open);
  EXPECT_TRUE(PedersenCommitment::decode(c.encode()) == c);
}

// --------------------------------------------------------------- Schnorr

TEST(Schnorr, SignVerifyRoundTrip) {
  ChaChaRng rng(15);
  const auto kp = schnorr_keygen(rng);
  const Bytes msg = to_bytes(std::string_view("timestamp me"));
  const auto sig = schnorr_sign(kp, msg);
  EXPECT_TRUE(schnorr_verify(kp.public_key, msg, sig));
}

TEST(Schnorr, RejectsTamperedMessageAndSignature) {
  ChaChaRng rng(16);
  const auto kp = schnorr_keygen(rng);
  const Bytes msg = to_bytes(std::string_view("original"));
  auto sig = schnorr_sign(kp, msg);
  EXPECT_FALSE(schnorr_verify(kp.public_key,
                              to_bytes(std::string_view("forged")), sig));
  sig.bytes[40] ^= 1;
  EXPECT_FALSE(schnorr_verify(kp.public_key, msg, sig));
}

TEST(Schnorr, RejectsWrongKey) {
  ChaChaRng rng(17);
  const auto kp1 = schnorr_keygen(rng);
  const auto kp2 = schnorr_keygen(rng);
  const Bytes msg = to_bytes(std::string_view("msg"));
  EXPECT_FALSE(schnorr_verify(kp2.public_key, msg, schnorr_sign(kp1, msg)));
}

TEST(Schnorr, DeterministicSignatures) {
  ChaChaRng rng(18);
  const auto kp = schnorr_keygen(rng);
  const Bytes msg = to_bytes(std::string_view("same message"));
  EXPECT_EQ(schnorr_sign(kp, msg).bytes, schnorr_sign(kp, msg).bytes);
}

TEST(Schnorr, MalformedSignatureRejectedGracefully) {
  ChaChaRng rng(19);
  const auto kp = schnorr_keygen(rng);
  SchnorrSignature sig;
  sig.bytes = Bytes(65, 0xab);  // not even a valid point
  EXPECT_FALSE(schnorr_verify(kp.public_key, Bytes{1}, sig));
  sig.bytes = Bytes(10, 0);  // wrong length
  EXPECT_FALSE(schnorr_verify(kp.public_key, Bytes{1}, sig));
}

}  // namespace
}  // namespace aegis
