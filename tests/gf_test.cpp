// Unit + property tests for the finite-field substrate: GF(2^8),
// GF(2^16), U256 and Montgomery arithmetic.
#include <gtest/gtest.h>

#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "gf/mont.h"
#include "gf/u256.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

// ---------------------------------------------------------------- GF(2^8)

TEST(Gf256, FieldAxiomsExhaustiveInverse) {
  // Every nonzero element has a multiplicative inverse.
  for (unsigned a = 1; a < 256; ++a) {
    const auto inv = gf256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256, MulCommutativeAssociativeSampled) {
  SimRng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
    EXPECT_EQ(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
    // Distributivity over XOR-addition.
    EXPECT_EQ(gf256::mul(a, gf256::add(b, c)),
              gf256::add(gf256::mul(a, b), gf256::mul(a, c)));
  }
}

TEST(Gf256, MulIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256::mul(x, 1), x);
    EXPECT_EQ(gf256::mul(x, 0), 0);
  }
}

TEST(Gf256, DivInvertsMul) {
  SimRng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.uniform(255));
    EXPECT_EQ(gf256::div(gf256::mul(a, b), b), a);
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (unsigned a = 1; a < 256; a += 7) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 10; ++e) {
      EXPECT_EQ(gf256::pow(static_cast<std::uint8_t>(a), e), acc);
      acc = gf256::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  // g=2 generates the multiplicative group: 2^255 == 1, 2^k != 1 for k<255.
  std::uint8_t acc = 1;
  for (int i = 0; i < 255; ++i) {
    acc = gf256::mul(acc, 2);
    if (i < 254) EXPECT_NE(acc, 1) << "order divides " << i + 1;
  }
  EXPECT_EQ(acc, 1);
}

TEST(Gf256, PolyEvalHorner) {
  // p(x) = 3 + 5x + 7x^2 at x=2 computed manually.
  const Bytes coeffs = {3, 5, 7};
  const auto expect = gf256::add(
      3, gf256::add(gf256::mul(5, 2), gf256::mul(7, gf256::mul(2, 2))));
  EXPECT_EQ(gf256::poly_eval(coeffs, 2), expect);
}

TEST(Gf256, MulAddRowMatchesScalarLoop) {
  SimRng rng(3);
  Bytes dst = rng.bytes(257), src = rng.bytes(257);
  Bytes expect = dst;
  const std::uint8_t c = 0x53;
  for (std::size_t i = 0; i < src.size(); ++i)
    expect[i] = gf256::add(expect[i], gf256::mul(c, src[i]));
  gf256::mul_add_row(MutByteView(dst.data(), dst.size()), src, c);
  EXPECT_EQ(dst, expect);
}

TEST(Gf256, MulRowSpecialCases) {
  Bytes src = {1, 2, 3};
  Bytes dst(3);
  gf256::mul_row(MutByteView(dst.data(), 3), src, 0);
  EXPECT_EQ(dst, Bytes({0, 0, 0}));
  gf256::mul_row(MutByteView(dst.data(), 3), src, 1);
  EXPECT_EQ(dst, src);
}

// ---------------------------------------------------- GF(2^8) row kernels
//
// Every selectable kernel must be byte-for-byte identical to the scalar
// reference on every length class the SIMD paths carve up differently:
// empty, sub-16 tails, exact 16/32 blocks, and off-by-one around both.

class Gf256RowKernels : public ::testing::Test {
 protected:
  void TearDown() override { gf256::set_row_kernel(gf256::RowKernel::kAuto); }

  static std::vector<gf256::RowKernel> selectable() {
    std::vector<gf256::RowKernel> out;
    for (auto k : {gf256::RowKernel::kPortable, gf256::RowKernel::kSsse3,
                   gf256::RowKernel::kAvx2}) {
      if (gf256::row_kernel_available(k)) out.push_back(k);
    }
    return out;
  }
};

TEST_F(Gf256RowKernels, AllKernelsMatchScalarAcrossLengthClasses) {
  SimRng rng(20);
  const std::size_t lens[] = {0, 1, 15, 16, 17, 31, 32, 33, 255, 256, 257};
  for (std::size_t len : lens) {
    const Bytes src = rng.bytes(len);
    const Bytes dst0 = rng.bytes(len);
    for (std::uint8_t c : {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{2},
                           std::uint8_t{0x53}, std::uint8_t{0xff}}) {
      gf256::set_row_kernel(gf256::RowKernel::kScalar);
      Bytes want_add = dst0, want_mul(len);
      gf256::mul_add_row(MutByteView(want_add.data(), len), src, c);
      gf256::mul_row(MutByteView(want_mul.data(), len), src, c);
      for (auto k : selectable()) {
        gf256::set_row_kernel(k);
        Bytes got_add = dst0, got_mul(len);
        gf256::mul_add_row(MutByteView(got_add.data(), len), src, c);
        gf256::mul_row(MutByteView(got_mul.data(), len), src, c);
        EXPECT_EQ(got_add, want_add)
            << "mul_add_row kernel=" << gf256::row_kernel_name()
            << " len=" << len << " c=" << int(c);
        EXPECT_EQ(got_mul, want_mul)
            << "mul_row kernel=" << gf256::row_kernel_name() << " len=" << len
            << " c=" << int(c);
      }
    }
  }
}

TEST_F(Gf256RowKernels, RandomLengthsFuzzAgainstScalar) {
  SimRng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = rng.uniform(1024);
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    const Bytes src = rng.bytes(len);
    const Bytes dst0 = rng.bytes(len);
    gf256::set_row_kernel(gf256::RowKernel::kScalar);
    Bytes want = dst0;
    gf256::mul_add_row(MutByteView(want.data(), len), src, c);
    for (auto k : selectable()) {
      gf256::set_row_kernel(k);
      Bytes got = dst0;
      gf256::mul_add_row(MutByteView(got.data(), len), src, c);
      EXPECT_EQ(got, want) << "kernel=" << gf256::row_kernel_name()
                           << " len=" << len << " c=" << int(c);
    }
  }
}

TEST_F(Gf256RowKernels, InPlaceAliasAllowedAndIdenticalAcrossKernels) {
  // dst == src exactly is the in-place Horner update Shamir relies on.
  SimRng rng(22);
  const Bytes init = rng.bytes(100);
  gf256::set_row_kernel(gf256::RowKernel::kScalar);
  Bytes want = init;
  gf256::mul_row(MutByteView(want.data(), want.size()),
                 ByteView(want.data(), want.size()), 0x1d);
  for (auto k : selectable()) {
    gf256::set_row_kernel(k);
    Bytes got = init;
    gf256::mul_row(MutByteView(got.data(), got.size()),
                   ByteView(got.data(), got.size()), 0x1d);
    EXPECT_EQ(got, want) << "kernel=" << gf256::row_kernel_name();
  }
}

TEST_F(Gf256RowKernels, PartialOverlapThrows) {
  Bytes buf(64, 0xab);
  // dst starts 1 byte into src: forward-copy hazard, must be rejected.
  EXPECT_THROW(gf256::mul_row(MutByteView(buf.data() + 1, 32),
                              ByteView(buf.data(), 32), 3),
               InvalidArgument);
  EXPECT_THROW(gf256::mul_add_row(MutByteView(buf.data(), 32),
                                  ByteView(buf.data() + 31, 32), 3),
               InvalidArgument);
  // Disjoint halves of one buffer are fine.
  EXPECT_NO_THROW(gf256::mul_row(MutByteView(buf.data(), 32),
                                 ByteView(buf.data() + 32, 32), 3));
}

TEST_F(Gf256RowKernels, KernelSelectionApi) {
  // Scalar and portable are always available; auto resolves to something.
  EXPECT_TRUE(gf256::row_kernel_available(gf256::RowKernel::kScalar));
  EXPECT_TRUE(gf256::row_kernel_available(gf256::RowKernel::kPortable));
  EXPECT_TRUE(gf256::row_kernel_available(gf256::RowKernel::kAuto));
  gf256::set_row_kernel(gf256::RowKernel::kScalar);
  EXPECT_STREQ(gf256::row_kernel_name(), "scalar");
  gf256::set_row_kernel(gf256::RowKernel::kPortable);
  EXPECT_STREQ(gf256::row_kernel_name(), "portable");
  // Requesting an unavailable kernel must throw, not silently fall back.
  if (!gf256::row_kernel_available(gf256::RowKernel::kAvx2)) {
    EXPECT_THROW(gf256::set_row_kernel(gf256::RowKernel::kAvx2),
                 InvalidArgument);
  }
}

// --------------------------------------------------------------- GF(2^16)

TEST(Gf65536, InverseSampled) {
  SimRng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(1 + rng.uniform(65535));
    EXPECT_EQ(gf65536::mul(a, gf65536::inv(a)), 1);
  }
}

TEST(Gf65536, FieldAxiomsSampled) {
  SimRng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.uniform(65536));
    const auto b = static_cast<std::uint16_t>(rng.uniform(65536));
    const auto c = static_cast<std::uint16_t>(rng.uniform(65536));
    EXPECT_EQ(gf65536::mul(a, b), gf65536::mul(b, a));
    EXPECT_EQ(gf65536::mul(gf65536::mul(a, b), c),
              gf65536::mul(a, gf65536::mul(b, c)));
    EXPECT_EQ(gf65536::mul(a, gf65536::add(b, c)),
              gf65536::add(gf65536::mul(a, b), gf65536::mul(a, c)));
  }
}

TEST(Gf65536, InvZeroThrows) {
  EXPECT_THROW(gf65536::inv(0), InvalidArgument);
  EXPECT_THROW(gf65536::div(1, 0), InvalidArgument);
}

TEST(Gf65536, InterpolationRecoversPolynomial) {
  // Fix a degree-4 polynomial, evaluate at 6 points, interpolate back.
  const std::vector<gf65536::Elem> coeffs = {1000, 2000, 3000, 4000, 5000};
  std::vector<gf65536::Elem> xs, ys;
  for (gf65536::Elem x = 1; x <= 5; ++x) {
    xs.push_back(x);
    ys.push_back(gf65536::poly_eval(coeffs, x));
  }
  // P(0) must equal the constant coefficient.
  EXPECT_EQ(gf65536::interpolate_at(xs, ys, 0), coeffs[0]);
  // And an out-of-sample evaluation must match.
  EXPECT_EQ(gf65536::interpolate_at(xs, ys, 77),
            gf65536::poly_eval(coeffs, 77));
}

TEST(Gf65536, InterpolationDuplicateXThrows) {
  std::vector<gf65536::Elem> xs = {1, 1}, ys = {2, 3};
  EXPECT_THROW(gf65536::interpolate_at(xs, ys, 0), InvalidArgument);
}

// ------------------------------------------------------------------ U256

TEST(U256, HexRoundTrip) {
  const U256 v = U256::from_hex(
      "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  EXPECT_EQ(v.to_hex(),
            "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  EXPECT_EQ(U256(0x1234).to_hex(),
            "0000000000000000000000000000000000000000000000000000000000001234");
}

TEST(U256, BytesRoundTrip) {
  SimRng rng(6);
  for (int i = 0; i < 100; ++i) {
    Bytes b = rng.bytes(32);
    EXPECT_EQ(U256::from_bytes_be(b).to_bytes_be(), b);
  }
}

TEST(U256, Comparisons) {
  EXPECT_LT(U256(1), U256(2));
  EXPECT_GT(U256(0, 0, 0, 1), U256(0xffffffffffffffffULL, 0, 0, 0));
  EXPECT_EQ(U256(5), U256(5));
}

TEST(U256, AddSubInverse) {
  SimRng rng(7);
  for (int i = 0; i < 200; ++i) {
    const U256 a = U256::from_bytes_be(rng.bytes(32));
    const U256 b = U256::from_bytes_be(rng.bytes(32));
    U256 s, d;
    const auto carry = add_carry(a, b, s);
    const auto borrow = sub_borrow(s, b, d);
    // (a + b) - b == a modulo 2^256, and carry==borrow.
    EXPECT_EQ(d, a);
    EXPECT_EQ(carry, borrow);
  }
}

TEST(U256, BitLength) {
  EXPECT_EQ(U256().bit_length(), 0u);
  EXPECT_EQ(U256(1).bit_length(), 1u);
  EXPECT_EQ(U256(0xff).bit_length(), 8u);
  EXPECT_EQ(U256(0, 1, 0, 0).bit_length(), 65u);
}

TEST(U256, ShiftRoundTrip) {
  U256 v(0x8000000000000001ULL, 0, 0, 0);
  U256 copy = v;
  const auto out = shl1(copy);
  EXPECT_EQ(out, 0u);
  shr1(copy);
  EXPECT_EQ(copy, v);
}

TEST(U256, MulWideSmall) {
  const U512 p = mul_wide(U256(0xffffffffffffffffULL), U256(2));
  EXPECT_EQ(p.w[0], 0xfffffffffffffffeULL);
  EXPECT_EQ(p.w[1], 1ULL);
}

TEST(U256, ModGenericAgainstKnown) {
  // 10^2 mod 7 == 2
  const U512 x = mul_wide(U256(10), U256(10));
  EXPECT_EQ(mod_generic(x, U256(7)), U256(2));
}

// ------------------------------------------------------------ Montgomery

TEST(Montgomery, MatchesGenericReduction) {
  const U256 p = U256::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  const MontgomeryCtx ctx(p);
  SimRng rng(8);
  for (int i = 0; i < 200; ++i) {
    U256 a = U256::from_bytes_be(rng.bytes(32));
    U256 b = U256::from_bytes_be(rng.bytes(32));
    if (a >= p) { U256 t; sub_borrow(a, p, t); a = t; }
    if (b >= p) { U256 t; sub_borrow(b, p, t); b = t; }
    const U256 expect = mod_generic(mul_wide(a, b), p);
    const U256 got =
        ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
    EXPECT_EQ(got, expect);
  }
}

TEST(Montgomery, ToFromMontIdentity) {
  const U256 m = U256::from_hex(
      "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
  const MontgomeryCtx ctx(m);
  SimRng rng(9);
  for (int i = 0; i < 100; ++i) {
    U256 a = U256::from_bytes_be(rng.bytes(32));
    if (a >= m) { U256 t; sub_borrow(a, m, t); a = t; }
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(a)), a);
  }
}

TEST(Montgomery, PowSmallCases) {
  const MontgomeryCtx ctx(U256(101));  // prime
  const U256 three_m = ctx.to_mont(U256(3));
  // 3^5 = 243 = 41 mod 101
  EXPECT_EQ(ctx.from_mont(ctx.pow(three_m, U256(5))), U256(41));
  // Fermat: a^(p-1) == 1
  EXPECT_EQ(ctx.from_mont(ctx.pow(three_m, U256(100))), U256(1));
}

TEST(Montgomery, InverseFermat) {
  const U256 p = U256::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  const MontgomeryCtx ctx(p);
  SimRng rng(10);
  for (int i = 0; i < 20; ++i) {
    U256 a = U256::from_bytes_be(rng.bytes(32));
    if (a >= p) { U256 t; sub_borrow(a, p, t); a = t; }
    if (a.is_zero()) continue;
    const U256 am = ctx.to_mont(a);
    EXPECT_EQ(ctx.from_mont(ctx.mul(am, ctx.inv(am))), U256(1));
  }
}

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(MontgomeryCtx(U256(100)), InvalidArgument);
  EXPECT_THROW(MontgomeryCtx(U256(0)), InvalidArgument);
}

TEST(Montgomery, AddSubModular) {
  const MontgomeryCtx ctx(U256(13));
  EXPECT_EQ(ctx.add(U256(9), U256(9)), U256(5));
  EXPECT_EQ(ctx.sub(U256(3), U256(9)), U256(7));
}

}  // namespace
}  // namespace aegis
