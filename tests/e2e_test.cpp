// Cross-module end-to-end property sweeps: every policy crossed with
// awkward object sizes, long operation sequences (refresh + rewrap +
// repair + redistribute interleaved), catalog portability for every
// policy, and channel-kind matrices. These are the "does the whole
// machine stay consistent under realistic use" checks that unit tests
// per module cannot see.
#include <gtest/gtest.h>

#include <tuple>

#include "archive/archive.h"
#include "crypto/chacha20.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

std::vector<ArchivalPolicy> all_policies() {
  return {ArchivalPolicy::FigReplication(), ArchivalPolicy::FigErasure(),
          ArchivalPolicy::FigEncryption(),  ArchivalPolicy::FigEntropic(),
          ArchivalPolicy::FigShamir(),      ArchivalPolicy::FigPacked(),
          ArchivalPolicy::FigLrss(),        ArchivalPolicy::ArchiveSafeLT(),
          ArchivalPolicy::AontRs(),         ArchivalPolicy::HasDpss(),
          ArchivalPolicy::Lincos(),         ArchivalPolicy::VsrArchive()};
}

std::string policy_label(const ArchivalPolicy& p) {
  std::string n = p.name;
  for (char& c : n)
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  return n;
}

// ------------------------------------------------- size x policy matrix

class SizeMatrix
    : public ::testing::TestWithParam<std::tuple<ArchivalPolicy, std::size_t>> {
};

TEST_P(SizeMatrix, PutGetAcrossAwkwardSizes) {
  const auto& [policy, size] = GetParam();
  Cluster cluster(12, policy.channel, size + 1);
  SchemeRegistry reg;
  ChaChaRng rng(size + 1);
  SimRng sim(size + 7);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, policy, reg, tsa, rng);

  const Bytes data = sim.bytes(size);
  archive.put("obj", data);
  EXPECT_EQ(archive.get("obj"), data);
  const VerifyReport r = archive.verify("obj");
  EXPECT_TRUE(r.ok()) << "size=" << size;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SizeMatrix,
    ::testing::Combine(::testing::ValuesIn(all_policies()),
                       // 0, 1, sub-block, block boundaries, odd, big
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{15}, std::size_t{16},
                                         std::size_t{4097},
                                         std::size_t{65536})),
    [](const auto& info) {
      return policy_label(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param)) + "B";
    });

// ---------------------------------------------------- operation sequences

TEST(E2e, LongMixedOperationSequenceStaysConsistent) {
  ArchivalPolicy p = ArchivalPolicy::VsrArchive();
  Cluster cluster(12, p.channel, 42);
  SchemeRegistry reg;
  ChaChaRng rng(42);
  SimRng sim(42);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, p, reg, tsa, rng);

  std::map<ObjectId, Bytes> truth;
  for (int i = 0; i < 6; ++i) {
    const ObjectId id = "seq-" + std::to_string(i);
    truth[id] = sim.bytes(200 + 37 * i);
    archive.put(id, truth[id]);
  }

  for (int step = 0; step < 30; ++step) {
    switch (sim.uniform(6)) {
      case 0:
        archive.refresh();
        break;
      case 1: {  // bit rot + scrub
        const NodeId victim = static_cast<NodeId>(sim.uniform(12));
        auto blobs = cluster.node(victim).all_blobs();
        if (!blobs.empty()) {
          StoredBlob bad = *blobs[sim.uniform(blobs.size())];
          if (!bad.data.empty()) {
            bad.data[sim.uniform(bad.data.size())] ^= 1;
            cluster.node(victim).put(bad);
          }
        }
        archive.scrub();
        break;
      }
      case 2: {  // transient node outage during reads
        const NodeId down = static_cast<NodeId>(sim.uniform(5));
        cluster.fail_node(down);
        for (const auto& [id, data] : truth)
          EXPECT_EQ(archive.get(id), data);
        cluster.restore_node(down);
        break;
      }
      case 3:
        archive.redistribute_nodes(3, 5 + sim.uniform(5));
        break;
      case 4:
        archive.renew_timestamps();
        break;
      case 5:
        cluster.advance_epoch();
        break;
    }
    // Invariant: everything reads back exactly, every step.
    for (const auto& [id, data] : truth)
      ASSERT_EQ(archive.get(id), data) << "step " << step;
  }
}

TEST(E2e, CascadeLifecycle) {
  // Put -> rewrap x2 -> reencrypt -> repair -> catalog round trip.
  ArchivalPolicy p = ArchivalPolicy::ArchiveSafeLT();
  Cluster cluster(12, p.channel, 5);
  SchemeRegistry reg;
  ChaChaRng rng(5);
  SimRng sim(5);
  TimestampAuthority tsa(rng);

  const Bytes data = sim.bytes(3000);
  Bytes catalog;
  {
    Archive archive(cluster, p, reg, tsa, rng);
    archive.put("doc", data);
    archive.rewrap(SchemeId::kAes128Ctr);
    archive.rewrap(SchemeId::kChaCha20);
    EXPECT_EQ(archive.manifest("doc").current_ciphers().size(), 5u);
    archive.reencrypt({SchemeId::kSpeck128Ctr});
    EXPECT_EQ(archive.get("doc"), data);

    cluster.node(3).erase("doc", 3);
    EXPECT_EQ(archive.repair("doc"), 1u);
    catalog = archive.export_catalog();
  }

  Archive restored(cluster, p, reg, tsa, rng);
  restored.import_catalog(catalog);
  EXPECT_EQ(restored.get("doc"), data);
  EXPECT_TRUE(restored.verify("doc").ok());
}

// -------------------------------------------------- catalog for all kinds

class CatalogMatrix : public ::testing::TestWithParam<ArchivalPolicy> {};

TEST_P(CatalogMatrix, ExportImportEveryPolicy) {
  const ArchivalPolicy p = GetParam();
  Cluster cluster(12, p.channel, 9);
  SchemeRegistry reg;
  ChaChaRng rng(9);
  SimRng sim(9);
  TimestampAuthority tsa(rng);

  const Bytes data = sim.bytes(1234);
  Bytes catalog;
  {
    Archive archive(cluster, p, reg, tsa, rng);
    archive.put("doc", data);
    if (p.proactive_refresh) archive.refresh();
    catalog = archive.export_catalog();
  }
  Archive restored(cluster, p, reg, tsa, rng);
  restored.import_catalog(catalog);
  EXPECT_EQ(restored.get("doc"), data) << p.name;
}

INSTANTIATE_TEST_SUITE_P(Policies, CatalogMatrix,
                         ::testing::ValuesIn(all_policies()),
                         [](const auto& info) {
                           return policy_label(info.param);
                         });

// ------------------------------------------------- channels x encodings

class ChannelMatrix
    : public ::testing::TestWithParam<std::tuple<EncodingKind, ChannelKind>> {
};

TEST_P(ChannelMatrix, EveryEncodingOverEveryChannel) {
  const auto& [encoding, channel] = GetParam();
  ArchivalPolicy p;
  p.name = "matrix";
  p.encoding = encoding;
  p.n = 9;
  p.k = 6;
  p.t = 3;
  p.channel = channel;
  if (encoding == EncodingKind::kPacked) {
    p.k = 4;
    p.n = 10;
  }
  if (encoding == EncodingKind::kEntropicErasure)
    p.ciphers = {SchemeId::kEntropicXor};

  Cluster cluster(12, channel, 77);
  SchemeRegistry reg;
  ChaChaRng rng(77);
  SimRng sim(77);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, p, reg, tsa, rng);

  const Bytes data = sim.bytes(900);
  archive.put("obj", data);
  EXPECT_EQ(archive.get("obj"), data);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChannelMatrix,
    ::testing::Combine(
        ::testing::Values(EncodingKind::kReplication, EncodingKind::kErasure,
                          EncodingKind::kEncryptErasure,
                          EncodingKind::kEntropicErasure,
                          EncodingKind::kAontRs, EncodingKind::kShamir,
                          EncodingKind::kPacked, EncodingKind::kLrss),
        ::testing::Values(ChannelKind::kPlain, ChannelKind::kTls,
                          ChannelKind::kQkd, ChannelKind::kBsm)),
    [](const auto& info) {
      std::string n = std::string(to_string(std::get<0>(info.param))) + "_" +
                      to_string(std::get<1>(info.param));
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

}  // namespace
}  // namespace aegis
