// The doctor: alert-rule engine semantics (level vs delta, summed
// metrics, raise/clear edges), epoch-sliced background scrubbing with a
// durable cursor (resume on a fresh Doctor), the shared per-object core
// keeping the synchronous scrub and the background path identical, and
// the bandwidth-fraction throttle charging the virtual clock.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/doctor.h"
#include "crypto/chacha20.h"
#include "obs/obs.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

struct Rig {
  Cluster cluster;
  SchemeRegistry registry;
  ChaChaRng rng;
  TimestampAuthority tsa;
  Archive archive;

  Rig(ArchivalPolicy policy, std::uint64_t seed = 1)
      : cluster(policy.n, policy.channel, seed),
        rng(seed),
        tsa(rng),
        archive(cluster, std::move(policy), registry, tsa, rng) {}
};

Bytes test_data(std::size_t size, std::uint64_t seed) {
  SimRng rng(seed);
  return rng.bytes(size);
}

// Flips one byte in the first stored shard of `id` found on any node.
bool corrupt_one_shard(Rig& rig, const ObjectId& id) {
  for (NodeId node = 0; node < rig.cluster.size(); ++node) {
    for (const StoredBlob* blob : rig.cluster.node(node).all_blobs()) {
      if (blob->object != id || blob->data.empty()) continue;
      StoredBlob bad = *blob;
      bad.data[0] ^= 0xff;
      rig.cluster.node(node).put(bad);
      return true;
    }
  }
  return false;
}

// Erases `count` distinct shards of `id` (across nodes).
unsigned erase_shards(Rig& rig, const ObjectId& id, unsigned count) {
  unsigned erased = 0;
  for (NodeId node = 0; node < rig.cluster.size() && erased < count; ++node) {
    std::vector<std::uint32_t> shards;
    for (const StoredBlob* blob : rig.cluster.node(node).all_blobs())
      if (blob->object == id) shards.push_back(blob->shard_index);
    for (std::uint32_t s : shards) {
      if (erased >= count) break;
      rig.cluster.node(node).erase(id, s);
      ++erased;
    }
  }
  return erased;
}

// -------------------------------------------------------------- alert rules

TEST(AlertEngine, LevelRuleRaisesAndClearsOnThresholdEdges) {
  Observability obs;
  Gauge& g = obs.metrics().gauge("archive.doctor.degraded_objects");
  std::vector<std::string> log;
  obs.events().subscribe([&](const Event& e) {
    if (e.kind() == EventKind::kAlertRaised)
      log.push_back("raise:" + std::get<AlertRaised>(e.payload).rule);
    if (e.kind() == EventKind::kAlertCleared)
      log.push_back("clear:" + std::get<AlertCleared>(e.payload).rule);
  });

  AlertEngine engine;
  engine.add_rule({"under-replication",
                   {"archive.doctor.degraded_objects"},
                   AlertRule::Mode::kLevel,
                   1.0});

  auto eval = [&] { return engine.evaluate(obs.metrics().snapshot(), obs); };
  EXPECT_EQ(eval(), (std::pair<unsigned, unsigned>{0, 0}));
  g.set(2);
  EXPECT_EQ(eval(), (std::pair<unsigned, unsigned>{1, 0}));
  EXPECT_TRUE(engine.active("under-replication"));
  // Still above: no duplicate raise.
  EXPECT_EQ(eval(), (std::pair<unsigned, unsigned>{0, 0}));
  g.set(0);
  EXPECT_EQ(eval(), (std::pair<unsigned, unsigned>{0, 1}));
  EXPECT_FALSE(engine.active("under-replication"));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "raise:under-replication");
  EXPECT_EQ(log[1], "clear:under-replication");
}

TEST(AlertEngine, DeltaRuleArmsThenTracksGrowthAcrossSummedMetrics) {
  Observability obs;
  Counter& up = obs.metrics().counter("archive.io.upload_failures");
  Counter& down = obs.metrics().counter("archive.io.download_failures");
  up.inc(100);  // history before the engine ever looks

  AlertEngine engine;
  engine.add_rule({"retry-exhaustion",
                   {"archive.io.upload_failures",
                    "archive.io.download_failures"},
                   AlertRule::Mode::kDelta,
                   2.0});
  auto eval = [&] { return engine.evaluate(obs.metrics().snapshot(), obs); };

  // First evaluation only arms the baseline — history must not alert.
  EXPECT_EQ(eval(), (std::pair<unsigned, unsigned>{0, 0}));
  EXPECT_FALSE(engine.active("retry-exhaustion"));
  // Growth of 1 stays under threshold 2; growth across BOTH metrics sums.
  up.inc(1);
  EXPECT_EQ(eval(), (std::pair<unsigned, unsigned>{0, 0}));
  up.inc(1);
  down.inc(1);
  EXPECT_EQ(eval(), (std::pair<unsigned, unsigned>{1, 0}));
  // No growth this window: the rate alert clears.
  EXPECT_EQ(eval(), (std::pair<unsigned, unsigned>{0, 1}));
}

TEST(AlertEngine, MissingMetricsCountAsZero) {
  Observability obs;
  AlertEngine engine;
  engine.add_rule(
      {"ghost", {"no.such.metric"}, AlertRule::Mode::kLevel, 1.0});
  EXPECT_EQ(engine.evaluate(obs.metrics().snapshot(), obs),
            (std::pair<unsigned, unsigned>{0, 0}));
}

// ------------------------------------------------------------- doctor state

TEST(DoctorState, SerdeRoundTrip) {
  DoctorState s;
  s.cursor = "doc-17";
  s.passes = 3;
  s.objects_scanned = 123;
  s.shards_repaired = 9;
  s.unrecoverable = 1;
  s.pass_objects = 7;
  s.pass_repaired = 2;
  s.pass_unrecoverable = 1;
  const DoctorState r = DoctorState::deserialize(s.serialize());
  EXPECT_EQ(r.cursor, s.cursor);
  EXPECT_EQ(r.passes, s.passes);
  EXPECT_EQ(r.objects_scanned, s.objects_scanned);
  EXPECT_EQ(r.shards_repaired, s.shards_repaired);
  EXPECT_EQ(r.unrecoverable, s.unrecoverable);
  EXPECT_EQ(r.pass_objects, s.pass_objects);
  EXPECT_EQ(r.pass_repaired, s.pass_repaired);
  EXPECT_EQ(r.pass_unrecoverable, s.pass_unrecoverable);
  EXPECT_THROW(DoctorState::deserialize(test_data(5, 1)), Error);
}

// ------------------------------------------------------------ doctor slices

TEST(Doctor, SlicesThroughCatalogAndWrapsPass) {
  ArchivalPolicy policy = ArchivalPolicy::FigErasure();
  policy.scrub_batch = 2;
  Rig rig(std::move(policy));
  for (int i = 0; i < 5; ++i)
    rig.archive.put("doc-" + std::to_string(i), test_data(800, 40 + i));

  std::vector<ScrubCompleted> scrubs;
  rig.cluster.obs().events().subscribe([&](const Event& e) {
    if (e.kind() == EventKind::kScrubCompleted)
      scrubs.push_back(std::get<ScrubCompleted>(e.payload));
  });

  Doctor doctor(rig.archive);
  const DoctorStepReport s1 = doctor.step();
  EXPECT_EQ(s1.scanned, 2u);
  EXPECT_FALSE(s1.pass_completed);
  EXPECT_EQ(doctor.state().cursor, "doc-1");
  const DoctorStepReport s2 = doctor.step();
  EXPECT_EQ(s2.scanned, 2u);
  EXPECT_FALSE(s2.pass_completed);
  const DoctorStepReport s3 = doctor.step();
  EXPECT_EQ(s3.scanned, 1u);
  EXPECT_TRUE(s3.pass_completed);
  EXPECT_TRUE(doctor.state().cursor.empty());
  EXPECT_EQ(doctor.state().passes, 1u);
  EXPECT_EQ(doctor.state().objects_scanned, 5u);

  // One ScrubCompleted per pass, with whole-pass totals.
  ASSERT_EQ(scrubs.size(), 1u);
  EXPECT_EQ(scrubs[0].objects, 5u);
  EXPECT_EQ(scrubs[0].shards_repaired, 0u);
  EXPECT_EQ(scrubs[0].unrecoverable, 0u);

  // The next step starts pass 2 from the top.
  const DoctorStepReport s4 = doctor.step();
  EXPECT_EQ(s4.scanned, 2u);
  EXPECT_EQ(doctor.state().cursor, "doc-1");
}

TEST(Doctor, DetectsRepairsAndAlertsOnBitRot) {
  ArchivalPolicy policy = ArchivalPolicy::FigErasure();
  policy.scrub_batch = 8;  // whole catalog per slice
  Rig rig(std::move(policy));
  const Bytes data = test_data(2000, 50);
  for (int i = 0; i < 3; ++i)
    rig.archive.put("doc-" + std::to_string(i), data);
  Doctor doctor(rig.archive);
  ASSERT_TRUE(corrupt_one_shard(rig, "doc-1"));

  const DoctorStepReport s1 = doctor.step();
  EXPECT_EQ(s1.scanned, 3u);
  EXPECT_EQ(s1.damaged, 1u);
  EXPECT_EQ(s1.shards_repaired, 1u);
  EXPECT_EQ(s1.unrecoverable, 0u);
  EXPECT_EQ(s1.alerts_raised, 1u);  // scrub-corruption (delta rule)
  EXPECT_TRUE(doctor.alerts().active("scrub-corruption"));
  EXPECT_EQ(doctor.degraded_count(), 0u);  // healed in the same slice
  EXPECT_FALSE(doctor.alerts().active("under-replication"));
  EXPECT_EQ(rig.archive.get("doc-1"), data);

  // A quiet follow-up slice clears the rate alert.
  const DoctorStepReport s2 = doctor.step();
  EXPECT_EQ(s2.damaged, 0u);
  EXPECT_EQ(s2.alerts_cleared, 1u);
  EXPECT_FALSE(doctor.alerts().active("scrub-corruption"));

  // The ledger carries the per-object trail: doc-1 repaired, alert
  // raised and cleared, both scrub passes summarized.
  const auto& records = rig.cluster.obs().ledger().records();
  bool saw_repair = false, saw_raise = false, saw_clear = false;
  for (const AuditRecord& r : records) {
    if (r.op == "archive.scrub.object" && r.object == "doc-1" &&
        r.outcome == "repaired:1")
      saw_repair = true;
    if (r.op == "doctor.alert" && r.object == "scrub-corruption")
      (r.outcome == "raised" ? saw_raise : saw_clear) = true;
  }
  EXPECT_TRUE(saw_repair);
  EXPECT_TRUE(saw_raise);
  EXPECT_TRUE(saw_clear);
  EXPECT_TRUE(rig.cluster.obs().ledger().verify_chain().ok);
}

TEST(Doctor, UnrecoverableObjectStaysDegradedAndRetries) {
  ArchivalPolicy policy = ArchivalPolicy::FigErasure();  // RS(6, 9)
  policy.scrub_batch = 4;
  Rig rig(std::move(policy));
  rig.archive.put("doc", test_data(1500, 60));
  Doctor doctor(rig.archive);
  // 4 of 9 shards gone: only 5 survive, below the k=6 threshold.
  ASSERT_EQ(erase_shards(rig, "doc", 4), 4u);

  const DoctorStepReport s1 = doctor.step();
  EXPECT_EQ(s1.damaged, 1u);
  EXPECT_EQ(s1.unrecoverable, 1u);
  EXPECT_EQ(doctor.degraded_count(), 1u);
  EXPECT_TRUE(doctor.alerts().active("under-replication"));
  EXPECT_TRUE(doctor.alerts().active("scrub-corruption"));

  // Retried every pass; the level alert holds while damage persists.
  const DoctorStepReport s2 = doctor.step();
  EXPECT_EQ(s2.unrecoverable, 1u);
  EXPECT_TRUE(doctor.alerts().active("under-replication"));
  EXPECT_EQ(doctor.state().unrecoverable, 2u);  // cumulative, both passes

  // The object is still cataloged (an operator decision, not the
  // doctor's) and the ledger shows the repeated failure.
  EXPECT_EQ(rig.archive.manifests().count("doc"), 1u);
  unsigned unrecoverable_records = 0;
  for (const AuditRecord& r : rig.cluster.obs().ledger().records())
    if (r.op == "archive.scrub.object" && r.outcome == "unrecoverable")
      ++unrecoverable_records;
  EXPECT_EQ(unrecoverable_records, 2u);
}

TEST(Doctor, CheckpointResumesCursorOnFreshDoctor) {
  ArchivalPolicy policy = ArchivalPolicy::FigErasure();
  policy.scrub_batch = 2;
  Rig rig(std::move(policy));
  for (int i = 0; i < 4; ++i)
    rig.archive.put("doc-" + std::to_string(i), test_data(600, 70 + i));

  std::vector<ScrubCompleted> scrubs;
  rig.cluster.obs().events().subscribe([&](const Event& e) {
    if (e.kind() == EventKind::kScrubCompleted)
      scrubs.push_back(std::get<ScrubCompleted>(e.payload));
  });

  Bytes checkpoint;
  {
    Doctor doctor(rig.archive);
    EXPECT_EQ(doctor.step().scanned, 2u);
    checkpoint = doctor.checkpoint();
  }  // the doctor dies mid-pass

  Doctor resumed(rig.archive, DoctorState::deserialize(checkpoint));
  EXPECT_EQ(resumed.state().cursor, "doc-1");
  const DoctorStepReport s = resumed.step();
  EXPECT_EQ(s.scanned, 2u);  // doc-2, doc-3 — no rescan of done objects
  EXPECT_TRUE(s.pass_completed);
  ASSERT_EQ(scrubs.size(), 1u);
  EXPECT_EQ(scrubs[0].objects, 4u);  // whole-pass total spans the restart
}

TEST(Doctor, BandwidthFractionStretchesVirtualTime) {
  auto run_pass = [](double frac) {
    ArchivalPolicy policy = ArchivalPolicy::FigErasure();
    policy.scrub_batch = 8;
    policy.scrub_bandwidth_frac = frac;
    Rig rig(std::move(policy), 7);
    rig.archive.put("doc", test_data(4000, 80));
    Doctor doctor(rig.archive);
    EXPECT_TRUE(corrupt_one_shard(rig, "doc"));
    const double before = rig.cluster.simulated_ms();
    doctor.step();
    return rig.cluster.simulated_ms() - before;
  };
  const double full = run_pass(1.0);
  const double throttled = run_pass(0.25);
  EXPECT_GT(full, 0.0);
  // 25% bandwidth ≈ 4x the virtual time for the same repair work.
  EXPECT_GT(throttled, full * 3.0);
}

// ------------------------------------------------- sync scrub shares the core

TEST(Doctor, SynchronousScrubAndDoctorPassAreIdentical) {
  auto build = [] {
    ArchivalPolicy policy = ArchivalPolicy::FigErasure();
    policy.scrub_batch = 16;
    auto rig = std::make_unique<Rig>(std::move(policy), 9);
    for (int i = 0; i < 3; ++i)
      rig->archive.put("doc-" + std::to_string(i), test_data(900, 90 + i));
    return rig;
  };
  auto scrub_records = [](const Rig& rig) {
    std::vector<std::string> out;
    for (const AuditRecord& r : rig.cluster.obs().ledger().records())
      if (r.op == "archive.scrub.object")
        out.push_back(r.object + "=" + r.outcome);
    return out;
  };

  auto sync_rig = build();
  auto doctor_rig = build();
  ASSERT_TRUE(corrupt_one_shard(*sync_rig, "doc-1"));
  ASSERT_TRUE(corrupt_one_shard(*doctor_rig, "doc-1"));

  std::vector<ScrubCompleted> sync_events, doctor_events;
  sync_rig->cluster.obs().events().subscribe([&](const Event& e) {
    if (e.kind() == EventKind::kScrubCompleted)
      sync_events.push_back(std::get<ScrubCompleted>(e.payload));
  });
  doctor_rig->cluster.obs().events().subscribe([&](const Event& e) {
    if (e.kind() == EventKind::kScrubCompleted)
      doctor_events.push_back(std::get<ScrubCompleted>(e.payload));
  });

  const ScrubReport report = sync_rig->archive.scrub();
  Doctor doctor(doctor_rig->archive);
  const DoctorStepReport step = doctor.step();
  ASSERT_TRUE(step.pass_completed);

  // Identical ScrubCompleted payloads from either entry point.
  ASSERT_EQ(sync_events.size(), 1u);
  ASSERT_EQ(doctor_events.size(), 1u);
  EXPECT_EQ(sync_events[0].objects, doctor_events[0].objects);
  EXPECT_EQ(sync_events[0].shards_repaired, doctor_events[0].shards_repaired);
  EXPECT_EQ(sync_events[0].unrecoverable, doctor_events[0].unrecoverable);
  EXPECT_EQ(report.objects, sync_events[0].objects);
  EXPECT_EQ(report.shards_repaired, sync_events[0].shards_repaired);

  // Identical per-object ledger trail and shared archive.scrub.* metrics.
  EXPECT_EQ(scrub_records(*sync_rig), scrub_records(*doctor_rig));
  const auto sync_snap = sync_rig->cluster.obs().metrics().snapshot();
  const auto doc_snap = doctor_rig->cluster.obs().metrics().snapshot();
  for (const char* metric :
       {"archive.scrub.objects", "archive.scrub.corrupt",
        "archive.scrub.repaired", "archive.scrub.unrecoverable"}) {
    ASSERT_NE(sync_snap.find(metric), nullptr) << metric;
    ASSERT_NE(doc_snap.find(metric), nullptr) << metric;
    EXPECT_EQ(sync_snap.find(metric)->value, doc_snap.find(metric)->value)
        << metric;
  }
}

}  // namespace
}  // namespace aegis
