#include "gf/gf256.h"

#include "util/error.h"

namespace aegis::gf256 {

Elem poly_eval(ByteView coeffs, Elem x) {
  Elem acc = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = add(mul(acc, x), coeffs[i]);
  }
  return acc;
}

void mul_add_row(MutByteView dst, ByteView src, Elem c) {
  if (dst.size() != src.size())
    throw InvalidArgument("gf256::mul_add_row: length mismatch");
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  const unsigned lc = detail::kTables.log[c];
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= detail::kTables.exp[lc + detail::kTables.log[s]];
  }
}

void mul_row(MutByteView dst, ByteView src, Elem c) {
  if (dst.size() != src.size())
    throw InvalidArgument("gf256::mul_row: length mismatch");
  if (c == 0) {
    for (auto& b : dst) b = 0;
    return;
  }
  const unsigned lc = detail::kTables.log[c];
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const std::uint8_t s = src[i];
    dst[i] = s == 0 ? 0 : detail::kTables.exp[lc + detail::kTables.log[s]];
  }
}

}  // namespace aegis::gf256
