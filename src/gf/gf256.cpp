#include "gf/gf256.h"

#include <atomic>
#include <cstring>

#include "util/error.h"

namespace aegis::gf256 {

Elem poly_eval(ByteView coeffs, Elem x) {
  Elem acc = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = add(mul(acc, x), coeffs[i]);
  }
  return acc;
}

namespace detail {

void mul_add_row_scalar(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t n, Elem c) {
  const unsigned lc = kTables.log[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= kTables.exp[lc + kTables.log[s]];
  }
}

void mul_row_scalar(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t n, Elem c) {
  const unsigned lc = kTables.log[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    dst[i] = s == 0 ? 0 : kTables.exp[lc + kTables.log[s]];
  }
}

void mul_add_row_portable(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t n, Elem c) {
  const std::uint8_t* lo = kNib.row[c];
  const std::uint8_t* hi = lo + 16;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ lo[s & 0x0f] ^ hi[s >> 4]);
  }
}

void mul_row_portable(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n, Elem c) {
  const std::uint8_t* lo = kNib.row[c];
  const std::uint8_t* hi = lo + 16;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    dst[i] = static_cast<std::uint8_t>(lo[s & 0x0f] ^ hi[s >> 4]);
  }
}

}  // namespace detail

namespace {

using RowFn = void (*)(std::uint8_t*, const std::uint8_t*, std::size_t, Elem);

struct KernelEntry {
  RowKernel id;
  const char* name;
  RowFn mul;
  RowFn mul_add;
};

constexpr KernelEntry kScalarEntry{RowKernel::kScalar, "scalar",
                                   detail::mul_row_scalar,
                                   detail::mul_add_row_scalar};
constexpr KernelEntry kPortableEntry{RowKernel::kPortable, "portable",
                                     detail::mul_row_portable,
                                     detail::mul_add_row_portable};
#if defined(AEGIS_X86_SIMD)
constexpr KernelEntry kSsse3Entry{RowKernel::kSsse3, "ssse3",
                                  detail::mul_row_ssse3,
                                  detail::mul_add_row_ssse3};
constexpr KernelEntry kAvx2Entry{RowKernel::kAvx2, "avx2",
                                 detail::mul_row_avx2,
                                 detail::mul_add_row_avx2};
#endif

bool cpu_has(RowKernel k) {
#if defined(AEGIS_X86_SIMD)
  if (k == RowKernel::kSsse3) return __builtin_cpu_supports("ssse3") != 0;
  if (k == RowKernel::kAvx2) return __builtin_cpu_supports("avx2") != 0;
#else
  (void)k;
#endif
  return false;
}

const KernelEntry* pick_auto() {
#if defined(AEGIS_X86_SIMD)
  if (cpu_has(RowKernel::kAvx2)) return &kAvx2Entry;
  if (cpu_has(RowKernel::kSsse3)) return &kSsse3Entry;
#endif
  return &kPortableEntry;
}

std::atomic<const KernelEntry*> g_kernel{nullptr};

const KernelEntry& kernel() {
  const KernelEntry* k = g_kernel.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = pick_auto();
    g_kernel.store(k, std::memory_order_release);
  }
  return *k;
}

// dst == src exactly (in-place Horner) is fine; a partial overlap would
// make the vectorized paths read bytes the same call already rewrote,
// so it is rejected in every build.
void check_overlap(const std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t n) {
  if (dst == src || n == 0) return;
  if (dst < src + n && src < dst + n)
    throw InvalidArgument("gf256: partially overlapping row buffers");
}

}  // namespace

bool row_kernel_available(RowKernel k) {
  switch (k) {
    case RowKernel::kAuto:
    case RowKernel::kScalar:
    case RowKernel::kPortable:
      return true;
    case RowKernel::kSsse3:
    case RowKernel::kAvx2:
      return cpu_has(k);
  }
  return false;
}

void set_row_kernel(RowKernel k) {
  if (!row_kernel_available(k))
    throw InvalidArgument("gf256: row kernel unavailable on this build/CPU");
  switch (k) {
    case RowKernel::kAuto:
      g_kernel.store(pick_auto(), std::memory_order_release);
      return;
    case RowKernel::kScalar:
      g_kernel.store(&kScalarEntry, std::memory_order_release);
      return;
    case RowKernel::kPortable:
      g_kernel.store(&kPortableEntry, std::memory_order_release);
      return;
#if defined(AEGIS_X86_SIMD)
    case RowKernel::kSsse3:
      g_kernel.store(&kSsse3Entry, std::memory_order_release);
      return;
    case RowKernel::kAvx2:
      g_kernel.store(&kAvx2Entry, std::memory_order_release);
      return;
#else
    default:
      break;
#endif
  }
  throw InvalidArgument("gf256: row kernel unavailable on this build/CPU");
}

const char* row_kernel_name() { return kernel().name; }

void mul_add_row(MutByteView dst, ByteView src, Elem c) {
  if (dst.size() != src.size())
    throw InvalidArgument("gf256::mul_add_row: length mismatch");
  check_overlap(dst.data(), src.data(), dst.size());
  if (c == 0 || dst.empty()) return;
  if (c == 1) {
    if (dst.data() == src.data()) {
      std::memset(dst.data(), 0, dst.size());  // x ^= x
      return;
    }
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  kernel().mul_add(dst.data(), src.data(), dst.size(), c);
}

void mul_row(MutByteView dst, ByteView src, Elem c) {
  if (dst.size() != src.size())
    throw InvalidArgument("gf256::mul_row: length mismatch");
  check_overlap(dst.data(), src.data(), dst.size());
  if (dst.empty()) return;
  if (c == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (c == 1) {
    if (dst.data() != src.data())
      std::memcpy(dst.data(), src.data(), dst.size());
    return;
  }
  kernel().mul(dst.data(), src.data(), dst.size(), c);
}

}  // namespace aegis::gf256
