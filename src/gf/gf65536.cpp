#include "gf/gf65536.h"

#include <array>

#include "util/error.h"

namespace aegis::gf65536 {

namespace {

struct Tables {
  std::array<Elem, 2 * kOrder> exp;
  std::array<Elem, 65536> log;

  Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < kOrder; ++i) {
      exp[i] = static_cast<Elem>(x);
      log[x] = static_cast<Elem>(i);
      x <<= 1;
      if (x & 0x10000) x ^= kPoly;
    }
    for (unsigned i = kOrder; i < 2 * kOrder; ++i) exp[i] = exp[i - kOrder];
    log[0] = 0;  // never read for valid inputs
  }
};

const Tables& tables() {
  static const Tables t;  // thread-safe lazy init
  return t;
}

}  // namespace

Elem mul(Elem a, Elem b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<unsigned>(t.log[a]) + t.log[b]];
}

Elem inv(Elem a) {
  if (a == 0) throw InvalidArgument("gf65536::inv: zero has no inverse");
  const Tables& t = tables();
  return t.exp[kOrder - t.log[a]];
}

Elem div(Elem a, Elem b) {
  if (b == 0) throw InvalidArgument("gf65536::div: divide by zero");
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<unsigned>(t.log[a]) + kOrder - t.log[b]];
}

Elem pow(Elem a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  const unsigned l =
      (static_cast<unsigned long long>(t.log[a]) * e) % kOrder;
  return t.exp[l];
}

Elem poly_eval(const std::vector<Elem>& coeffs, Elem x) {
  Elem acc = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = add(mul(acc, x), coeffs[i]);
  }
  return acc;
}

Elem interpolate_at(const std::vector<Elem>& xs, const std::vector<Elem>& ys,
                    Elem x0) {
  if (xs.size() != ys.size() || xs.empty())
    throw InvalidArgument("gf65536::interpolate_at: bad point set");
  Elem acc = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // Lagrange basis L_i(x0) = prod_{j != i} (x0 - xs[j]) / (xs[i] - xs[j])
    Elem num = 1, den = 1;
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      num = mul(num, add(x0, xs[j]));      // char-2: subtraction is XOR
      den = mul(den, add(xs[i], xs[j]));
    }
    if (den == 0)
      throw InvalidArgument("gf65536::interpolate_at: duplicate x values");
    acc = add(acc, mul(ys[i], div(num, den)));
  }
  return acc;
}

}  // namespace aegis::gf65536
