// x86 PSHUFB row kernels for GF(2^8): the classic 4-bit split-table
// technique (each product c*s is the XOR of two 16-entry nibble lookups,
// which VPSHUFB performs 16/32 bytes at a time). Compiled only when
// AEGIS_NATIVE is ON on an x86 target; each function carries its own
// `target` attribute so the surrounding TU stays baseline-ISA and the
// runtime dispatcher in gf256.cpp can safely probe CPU support first.
//
// Every path computes the exact field product, so results are
// bit-identical to the scalar and portable kernels (property-tested in
// tests/gf_test.cpp).
#include "gf/gf256.h"

#if defined(AEGIS_X86_SIMD)

#include <immintrin.h>

namespace aegis::gf256::detail {

namespace {

#define AEGIS_TARGET_SSSE3 __attribute__((target("ssse3")))
#define AEGIS_TARGET_AVX2 __attribute__((target("avx2")))

AEGIS_TARGET_SSSE3 inline __m128i mul_block_ssse3(__m128i s, __m128i lo,
                                                  __m128i hi, __m128i mask) {
  const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
  const __m128i ph = _mm_shuffle_epi8(
      hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
  return _mm_xor_si128(pl, ph);
}

AEGIS_TARGET_AVX2 inline __m256i mul_block_avx2(__m256i s, __m256i lo,
                                                __m256i hi, __m256i mask) {
  const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
  const __m256i ph = _mm256_shuffle_epi8(
      hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
  return _mm256_xor_si256(pl, ph);
}

}  // namespace

AEGIS_TARGET_SSSE3
void mul_row_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t n, Elem c) {
  const std::uint8_t* tab = kNib.row[c];
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(tab));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(tab + 16));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     mul_block_ssse3(s, lo, hi, mask));
  }
  if (i < n) mul_row_portable(dst + i, src + i, n - i, c);
}

AEGIS_TARGET_SSSE3
void mul_add_row_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t n, Elem c) {
  const std::uint8_t* tab = kNib.row[c];
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(tab));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(tab + 16));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, mul_block_ssse3(s, lo, hi, mask)));
  }
  if (i < n) mul_add_row_portable(dst + i, src + i, n - i, c);
}

AEGIS_TARGET_AVX2
void mul_row_avx2(std::uint8_t* dst, const std::uint8_t* src,
                  std::size_t n, Elem c) {
  const std::uint8_t* tab = kNib.row[c];
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(tab)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(tab + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_block_avx2(s, lo, hi, mask));
  }
  if (i < n) mul_row_ssse3(dst + i, src + i, n - i, c);
}

AEGIS_TARGET_AVX2
void mul_add_row_avx2(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n, Elem c) {
  const std::uint8_t* tab = kNib.row[c];
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(tab)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(tab + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, mul_block_avx2(s, lo, hi, mask)));
  }
  if (i < n) mul_add_row_ssse3(dst + i, src + i, n - i, c);
}

}  // namespace aegis::gf256::detail

#endif  // AEGIS_X86_SIMD
