#include "gf/mont.h"

#include "util/error.h"

namespace aegis {

namespace {
// -m^-1 mod 2^64 via Newton iteration (m odd). Five iterations double
// the number of correct low bits each time: 5 -> 10 -> 20 -> 40 -> 80.
std::uint64_t neg_inv64(std::uint64_t m) {
  std::uint64_t inv = m;  // correct to 5 bits for odd m
  for (int i = 0; i < 5; ++i) inv *= 2 - m * inv;
  return ~inv + 1;  // -(m^-1)
}
}  // namespace

MontgomeryCtx::MontgomeryCtx(const U256& m) : m_(m) {
  if (m.is_zero() || !m.is_odd())
    throw InvalidArgument("MontgomeryCtx: modulus must be odd and nonzero");
  n0_ = neg_inv64(m.w[0]);

  // R mod m where R = 2^256: since m has its top bit set for our moduli we
  // could subtract once, but compute generically via shift-subtract.
  U512 r;  // 2^256
  r.w[4] = 1;
  r_mod_m_ = mod_generic(r, m_);

  // R^2 mod m = (R mod m)^2 mod m.
  r2_mod_m_ = mod_generic(mul_wide(r_mod_m_, r_mod_m_), m_);
}

// CIOS (coarsely integrated operand scanning) Montgomery multiplication.
U256 MontgomeryCtx::mul(const U256& a, const U256& b) const {
  std::uint64_t t[6] = {0, 0, 0, 0, 0, 0};  // 4 limbs + 2 carry slots
  for (int i = 0; i < 4; ++i) {
    // t += a.w[i] * b
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      carry += t[j];
      carry += static_cast<unsigned __int128>(a.w[i]) * b.w[j];
      t[j] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
    carry += t[4];
    t[4] = static_cast<std::uint64_t>(carry);
    t[5] = static_cast<std::uint64_t>(carry >> 64);

    // m-step: add (t[0] * n0') * m, which zeroes t[0]
    const std::uint64_t u = t[0] * n0_;
    carry = static_cast<unsigned __int128>(u) * m_.w[0] + t[0];
    carry >>= 64;
    for (int j = 1; j < 4; ++j) {
      carry += t[j];
      carry += static_cast<unsigned __int128>(u) * m_.w[j];
      t[j - 1] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
    carry += t[4];
    t[3] = static_cast<std::uint64_t>(carry);
    t[4] = t[5] + static_cast<std::uint64_t>(carry >> 64);
  }

  U256 r{t[0], t[1], t[2], t[3]};
  if (t[4] != 0 || r >= m_) {
    U256 tmp;
    sub_borrow(r, m_, tmp);
    r = tmp;
  }
  return r;
}

U256 MontgomeryCtx::to_mont(const U256& a) const { return mul(a, r2_mod_m_); }

U256 MontgomeryCtx::from_mont(const U256& a) const {
  return mul(a, U256(1));
}

U256 MontgomeryCtx::pow(const U256& a, const U256& e) const {
  U256 result = r_mod_m_;  // 1 in Montgomery form
  const unsigned nbits = e.bit_length();
  for (unsigned i = nbits; i-- > 0;) {
    result = sqr(result);
    if (e.bit(i)) result = mul(result, a);
  }
  return result;
}

U256 MontgomeryCtx::inv(const U256& a) const {
  if (a.is_zero()) throw InvalidArgument("MontgomeryCtx::inv: zero input");
  // Fermat: a^(m-2) mod m for prime m.
  U256 e;
  sub_borrow(m_, U256(2), e);
  return pow(a, e);
}

}  // namespace aegis
