// GF(2^8) arithmetic with the Reed-Solomon-standard reduction polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
//
// This is the workhorse field for bulk data: Reed-Solomon erasure coding,
// Shamir secret sharing, and the AONT all operate byte-wise over it.
// Multiplication uses log/antilog tables generated once at namespace scope
// (constexpr), so there is no runtime initialization to sequence.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace aegis::gf256 {

/// Field element; the zero byte is the additive identity.
using Elem = std::uint8_t;

namespace detail {

constexpr unsigned kPoly = 0x11D;  // x^8+x^4+x^3+x^2+1, generator g=2

struct Tables {
  std::array<std::uint8_t, 512> exp{};  // doubled so mul can skip a mod 255
  std::array<std::uint8_t, 256> log{};
};

constexpr Tables make_tables() {
  Tables t{};
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPoly;
  }
  for (unsigned i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
  return t;
}

inline constexpr Tables kTables = make_tables();

}  // namespace detail

/// Field addition (== subtraction): XOR.
constexpr Elem add(Elem a, Elem b) { return a ^ b; }
constexpr Elem sub(Elem a, Elem b) { return a ^ b; }

/// Field multiplication via log/antilog tables.
constexpr Elem mul(Elem a, Elem b) {
  if (a == 0 || b == 0) return 0;
  return detail::kTables
      .exp[detail::kTables.log[a] + detail::kTables.log[b]];
}

/// Multiplicative inverse. Throws nothing; inv(0) is a precondition
/// violation guarded by callers (asserted in debug builds).
constexpr Elem inv(Elem a) {
  // a^-1 = g^(255 - log a)
  return detail::kTables.exp[255 - detail::kTables.log[a]];
}

/// Field division a / b (b != 0).
constexpr Elem div(Elem a, Elem b) {
  if (a == 0) return 0;
  return detail::kTables
      .exp[detail::kTables.log[a] + 255 - detail::kTables.log[b]];
}

/// a^e with e reduced mod 255 (the multiplicative group order).
constexpr Elem pow(Elem a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const unsigned l = (static_cast<unsigned>(detail::kTables.log[a]) * e) % 255;
  return detail::kTables.exp[l];
}

/// Evaluates the polynomial coeffs[0] + coeffs[1]*x + ... at x (Horner).
Elem poly_eval(ByteView coeffs, Elem x);

/// dst[i] ^= c * src[i] for all i — the inner loop of RS encode/decode.
void mul_add_row(MutByteView dst, ByteView src, Elem c);

/// dst[i] = c * src[i].
void mul_row(MutByteView dst, ByteView src, Elem c);

}  // namespace aegis::gf256
