// GF(2^8) arithmetic with the Reed-Solomon-standard reduction polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
//
// This is the workhorse field for bulk data: Reed-Solomon erasure coding,
// Shamir secret sharing, and the AONT all operate byte-wise over it.
// Multiplication uses log/antilog tables generated once at namespace scope
// (constexpr), so there is no runtime initialization to sequence.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace aegis::gf256 {

/// Field element; the zero byte is the additive identity.
using Elem = std::uint8_t;

namespace detail {

constexpr unsigned kPoly = 0x11D;  // x^8+x^4+x^3+x^2+1, generator g=2

struct Tables {
  std::array<std::uint8_t, 512> exp{};  // doubled so mul can skip a mod 255
  std::array<std::uint8_t, 256> log{};
};

constexpr Tables make_tables() {
  Tables t{};
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPoly;
  }
  for (unsigned i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
  return t;
}

inline constexpr Tables kTables = make_tables();

/// Per-constant nibble product tables, the shared substrate of the
/// portable and PSHUFB row kernels: row c holds c*i for i in 0..15
/// (bytes 0..15) and c*(i<<4) (bytes 16..31), so
/// mul(c, s) == row[s & 0xf] ^ row[16 + (s >> 4)] for every byte s.
struct NibbleTables {
  alignas(32) std::uint8_t row[256][32];
};

constexpr NibbleTables make_nibble_tables() {
  NibbleTables t{};
  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned i = 0; i < 16; ++i) {
      unsigned lo = 0, hi = 0;
      if (c != 0 && i != 0) {
        lo = kTables.exp[kTables.log[c] + kTables.log[i]];
        hi = kTables.exp[kTables.log[c] + kTables.log[i << 4]];
      }
      t.row[c][i] = static_cast<std::uint8_t>(lo);
      t.row[c][16 + i] = static_cast<std::uint8_t>(hi);
    }
  }
  return t;
}

inline constexpr NibbleTables kNib = make_nibble_tables();

// Raw row kernels (dst/src must not partially overlap; dst == src is
// allowed). All implementations produce bit-identical output; they are
// selected at runtime by the dispatcher behind mul_row/mul_add_row.
void mul_row_scalar(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t n, Elem c);
void mul_add_row_scalar(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t n, Elem c);
void mul_row_portable(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n, Elem c);
void mul_add_row_portable(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t n, Elem c);
#if defined(AEGIS_X86_SIMD)
void mul_row_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t n, Elem c);
void mul_add_row_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t n, Elem c);
void mul_row_avx2(std::uint8_t* dst, const std::uint8_t* src,
                  std::size_t n, Elem c);
void mul_add_row_avx2(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n, Elem c);
#endif

}  // namespace detail

/// Field addition (== subtraction): XOR.
constexpr Elem add(Elem a, Elem b) { return a ^ b; }
constexpr Elem sub(Elem a, Elem b) { return a ^ b; }

/// Field multiplication via log/antilog tables.
constexpr Elem mul(Elem a, Elem b) {
  if (a == 0 || b == 0) return 0;
  return detail::kTables
      .exp[detail::kTables.log[a] + detail::kTables.log[b]];
}

/// Multiplicative inverse. Throws nothing; inv(0) is a precondition
/// violation guarded by callers (asserted in debug builds).
constexpr Elem inv(Elem a) {
  // a^-1 = g^(255 - log a)
  return detail::kTables.exp[255 - detail::kTables.log[a]];
}

/// Field division a / b (b != 0).
constexpr Elem div(Elem a, Elem b) {
  if (a == 0) return 0;
  return detail::kTables
      .exp[detail::kTables.log[a] + 255 - detail::kTables.log[b]];
}

/// a^e with e reduced mod 255 (the multiplicative group order).
constexpr Elem pow(Elem a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const unsigned l = (static_cast<unsigned>(detail::kTables.log[a]) * e) % 255;
  return detail::kTables.exp[l];
}

/// Evaluates the polynomial coeffs[0] + coeffs[1]*x + ... at x (Horner).
Elem poly_eval(ByteView coeffs, Elem x);

/// Row-kernel implementations selectable behind mul_row/mul_add_row.
enum class RowKernel : std::uint8_t {
  kAuto,      // best available for this CPU (the default)
  kScalar,    // original two-table-lookups-per-byte loop (baseline)
  kPortable,  // 4-bit split-table loop, bit-identical to the SIMD paths
  kSsse3,     // PSHUFB 16-byte nibble lookups
  kAvx2,      // VPSHUFB 32-byte nibble lookups
};

/// Whether `k` can run on this build + CPU. kAuto/kScalar/kPortable are
/// always available; kSsse3/kAvx2 require an x86 build with
/// AEGIS_NATIVE=ON and CPU support.
bool row_kernel_available(RowKernel k);

/// Forces the row kernel (kAuto re-enables runtime detection). Throws
/// InvalidArgument if unavailable. Intended for tests and benchmarks;
/// not safe to call concurrently with in-flight row operations.
void set_row_kernel(RowKernel k);

/// Name of the kernel mul_row/mul_add_row currently dispatch to:
/// "scalar", "portable", "ssse3" or "avx2".
const char* row_kernel_name();

/// dst[i] ^= c * src[i] for all i — the inner loop of RS encode/decode,
/// Shamir/packed/LRSS share arithmetic, and proactive refresh.
/// dst and src must be equal length and must not *partially* overlap
/// (dst == src exactly is fine; anything in between throws).
void mul_add_row(MutByteView dst, ByteView src, Elem c);

/// dst[i] = c * src[i]. Same aliasing contract as mul_add_row.
void mul_row(MutByteView dst, ByteView src, Elem c);

}  // namespace aegis::gf256
