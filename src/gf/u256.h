// Fixed-width 256-bit unsigned integer arithmetic.
//
// This backs the prime-field arithmetic (gf/mont.h) used by the secp256k1
// group, which in turn backs Pedersen commitments, Feldman/Pedersen VSS and
// Schnorr signatures. Limbs are little-endian uint64; wide products use
// unsigned __int128 (guaranteed on the GCC/Clang targets we support).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace aegis {

/// 256-bit unsigned integer, 4 little-endian 64-bit limbs.
struct U256 {
  std::array<std::uint64_t, 4> w{};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : w{v, 0, 0, 0} {}
  constexpr U256(std::uint64_t w0, std::uint64_t w1, std::uint64_t w2,
                 std::uint64_t w3)
      : w{w0, w1, w2, w3} {}

  constexpr bool is_zero() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  constexpr bool is_odd() const { return w[0] & 1; }

  /// Bit i (0 = least significant).
  constexpr bool bit(unsigned i) const {
    return (w[i / 64] >> (i % 64)) & 1;
  }

  /// Number of significant bits (0 for zero).
  unsigned bit_length() const;

  friend constexpr bool operator==(const U256&, const U256&) = default;
  std::strong_ordering operator<=>(const U256& o) const;

  /// Big-endian 32-byte encoding (the wire format for scalars/coords).
  Bytes to_bytes_be() const;
  static U256 from_bytes_be(ByteView b);  // throws InvalidArgument if != 32B

  std::string to_hex() const;
  static U256 from_hex(std::string_view hex);  // up to 64 hex digits
};

/// out = a + b, returns the carry bit.
std::uint64_t add_carry(const U256& a, const U256& b, U256& out);

/// out = a - b, returns the borrow bit.
std::uint64_t sub_borrow(const U256& a, const U256& b, U256& out);

/// Logical left shift by 1; returns the bit shifted out.
std::uint64_t shl1(U256& a);

/// Logical right shift by 1.
void shr1(U256& a);

/// 512-bit value as 8 little-endian limbs (product space).
struct U512 {
  std::array<std::uint64_t, 8> w{};
};

/// Full 256x256 -> 512 multiplication.
U512 mul_wide(const U256& a, const U256& b);

/// x mod m by shift-subtract. Slow (bit-serial); used only for one-off
/// setup values — hot paths go through MontgomeryCtx.
U256 mod_generic(const U512& x, const U256& m);

/// (a + b) mod m, assuming a, b < m.
U256 add_mod(const U256& a, const U256& b, const U256& m);

/// (a - b) mod m, assuming a, b < m.
U256 sub_mod(const U256& a, const U256& b, const U256& m);

}  // namespace aegis
