#include "gf/u256.h"

#include <bit>

#include "util/error.h"

namespace aegis {

unsigned U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (w[i] != 0)
      return static_cast<unsigned>(64 * i + 64 - std::countl_zero(w[i]));
  }
  return 0;
}

std::strong_ordering U256::operator<=>(const U256& o) const {
  for (int i = 3; i >= 0; --i) {
    if (w[i] != o.w[i]) return w[i] <=> o.w[i];
  }
  return std::strong_ordering::equal;
}

Bytes U256::to_bytes_be() const {
  Bytes out(32);
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t limb = w[3 - i];
    for (int j = 0; j < 8; ++j)
      out[i * 8 + j] = static_cast<std::uint8_t>(limb >> (8 * (7 - j)));
  }
  return out;
}

U256 U256::from_bytes_be(ByteView b) {
  if (b.size() != 32)
    throw InvalidArgument("U256::from_bytes_be: need exactly 32 bytes");
  U256 v;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t limb = 0;
    for (int j = 0; j < 8; ++j)
      limb = (limb << 8) | b[i * 8 + j];
    v.w[3 - i] = limb;
  }
  return v;
}

std::string U256::to_hex() const { return hex_encode(to_bytes_be()); }

U256 U256::from_hex(std::string_view hex) {
  if (hex.size() > 64) throw InvalidArgument("U256::from_hex: too long");
  std::string padded(64 - hex.size(), '0');
  padded.append(hex);
  return from_bytes_be(hex_decode(padded));
}

std::uint64_t add_carry(const U256& a, const U256& b, U256& out) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    carry += a.w[i];
    carry += b.w[i];
    out.w[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  return static_cast<std::uint64_t>(carry);
}

std::uint64_t sub_borrow(const U256& a, const U256& b, U256& out) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t ai = a.w[i];
    const std::uint64_t bi = b.w[i];
    const std::uint64_t d1 = ai - bi;
    const std::uint64_t b1 = ai < bi;
    const std::uint64_t d2 = d1 - borrow;
    const std::uint64_t b2 = d1 < borrow;
    out.w[i] = d2;
    borrow = b1 | b2;
  }
  return borrow;
}

std::uint64_t shl1(U256& a) {
  const std::uint64_t out = a.w[3] >> 63;
  for (int i = 3; i > 0; --i) a.w[i] = (a.w[i] << 1) | (a.w[i - 1] >> 63);
  a.w[0] <<= 1;
  return out;
}

void shr1(U256& a) {
  for (int i = 0; i < 3; ++i) a.w[i] = (a.w[i] >> 1) | (a.w[i + 1] << 63);
  a.w[3] >>= 1;
}

U512 mul_wide(const U256& a, const U256& b) {
  U512 r;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur = static_cast<unsigned __int128>(a.w[i]) * b.w[j];
      cur += r.w[i + j];
      cur += carry;
      r.w[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    r.w[i + 4] = carry;
  }
  return r;
}

U256 mod_generic(const U512& x, const U256& m) {
  if (m.is_zero()) throw InvalidArgument("mod_generic: zero modulus");
  U256 r;  // running remainder, always < m
  for (int bit = 511; bit >= 0; --bit) {
    const std::uint64_t carry = shl1(r);
    if ((x.w[bit / 64] >> (bit % 64)) & 1) r.w[0] |= 1;
    if (carry || r >= m) {
      U256 tmp;
      sub_borrow(r, m, tmp);
      r = tmp;
    }
  }
  return r;
}

U256 add_mod(const U256& a, const U256& b, const U256& m) {
  U256 s;
  const std::uint64_t carry = add_carry(a, b, s);
  if (carry || s >= m) {
    U256 t;
    sub_borrow(s, m, t);
    return t;
  }
  return s;
}

U256 sub_mod(const U256& a, const U256& b, const U256& m) {
  U256 d;
  if (sub_borrow(a, b, d)) {
    U256 t;
    add_carry(d, m, t);
    return t;
  }
  return d;
}

}  // namespace aegis
