// GF(2^16) arithmetic with reduction polynomial
// x^16 + x^12 + x^3 + x + 1 (0x1100B).
//
// Packed secret sharing needs a field large enough that a single
// polynomial can hold k packed secrets + t randomness and still issue
// hundreds of shares; GF(2^16) supports up to 65535 distinct evaluation
// points. Tables (256 KiB) are built lazily on first use.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace aegis::gf65536 {

using Elem = std::uint16_t;

constexpr unsigned kPoly = 0x1100B;
constexpr unsigned kOrder = 65535;  // multiplicative group order

/// Field addition (== subtraction): XOR.
constexpr Elem add(Elem a, Elem b) { return a ^ b; }
constexpr Elem sub(Elem a, Elem b) { return a ^ b; }

/// Field multiplication (log/antilog tables, lazily initialized).
Elem mul(Elem a, Elem b);

/// Multiplicative inverse of a nonzero element.
Elem inv(Elem a);

/// Field division a / b (b != 0).
Elem div(Elem a, Elem b);

/// a^e, exponent reduced mod the group order.
Elem pow(Elem a, unsigned e);

/// Horner evaluation of coeffs[0] + coeffs[1] x + ... at x.
Elem poly_eval(const std::vector<Elem>& coeffs, Elem x);

/// Lagrange interpolation: returns P(x0) for the unique polynomial of
/// degree < xs.size() with P(xs[i]) = ys[i]. The xs must be distinct.
Elem interpolate_at(const std::vector<Elem>& xs, const std::vector<Elem>& ys,
                    Elem x0);

}  // namespace aegis::gf65536
