// Montgomery-form modular arithmetic for a fixed odd 256-bit modulus.
//
// One context instance serves one modulus (we instantiate two: the
// secp256k1 field prime p and the group order n). Values passed to
// mul/sqr/pow must be in Montgomery form (use to_mont / from_mont at the
// boundary); add/sub work in either form as long as both operands agree.
#pragma once

#include "gf/u256.h"

namespace aegis {

/// Montgomery multiplication context for an odd modulus m < 2^256.
class MontgomeryCtx {
 public:
  /// Precomputes n0' = -m^-1 mod 2^64 and R^2 mod m. Throws
  /// InvalidArgument if m is even or zero.
  explicit MontgomeryCtx(const U256& m);

  const U256& modulus() const { return m_; }

  /// Converts a < m into Montgomery form (a * R mod m).
  U256 to_mont(const U256& a) const;

  /// Converts out of Montgomery form.
  U256 from_mont(const U256& a) const;

  /// Montgomery product: a * b * R^-1 mod m.
  U256 mul(const U256& a, const U256& b) const;

  /// Montgomery square.
  U256 sqr(const U256& a) const { return mul(a, a); }

  /// (a + b) mod m — form-agnostic.
  U256 add(const U256& a, const U256& b) const { return add_mod(a, b, m_); }

  /// (a - b) mod m — form-agnostic.
  U256 sub(const U256& a, const U256& b) const { return sub_mod(a, b, m_); }

  /// a^e mod m, a in Montgomery form, result in Montgomery form.
  U256 pow(const U256& a, const U256& e) const;

  /// Multiplicative inverse via Fermat (requires m prime), Montgomery form
  /// in and out. Throws InvalidArgument on zero.
  U256 inv(const U256& a) const;

  /// The Montgomery representation of 1.
  const U256& one_mont() const { return r_mod_m_; }

  /// Reduces an arbitrary 512-bit value mod m (slow path, setup only).
  U256 reduce_wide(const U512& x) const { return mod_generic(x, m_); }

 private:
  U256 m_;
  std::uint64_t n0_;   // -m^-1 mod 2^64
  U256 r_mod_m_;       // R mod m   (Montgomery form of 1)
  U256 r2_mod_m_;      // R^2 mod m (for to_mont)
};

}  // namespace aegis
