// Process-wide cache of immutable Reed-Solomon codecs.
//
// Constructing a ReedSolomon is O(n·k²) field operations (Vandermonde
// systematization inverts a k×k block), which the hot paths in
// archive.cpp used to pay on *every* encode/decode/repair call. Codecs
// are stateless after construction, so one instance per (k, n, kind)
// geometry can serve every caller for the process lifetime.
//
// The cache is also a correctness guard: geometry is validated exactly
// once (the ReedSolomon constructor throws on bad k/n), and every later
// lookup with the same parameters is guaranteed to hit the same
// already-validated matrix — a k/n transposition typo cannot silently
// build a second, different codec mid-object.
#pragma once

#include "erasure/reed_solomon.h"

namespace aegis {

/// Returns the shared codec for (k, n, kind), constructing it on first
/// use. Thread-safe; the returned reference stays valid for the process
/// lifetime (entries are never evicted — the set of geometries in a
/// deployment is tiny). Throws InvalidArgument on invalid geometry.
const ReedSolomon& rs_codec(unsigned k, unsigned n,
                            RsMatrix kind = RsMatrix::kVandermonde);

}  // namespace aegis
