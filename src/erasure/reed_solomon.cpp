#include "erasure/reed_solomon.h"

#include <algorithm>

#include "gf/gf256.h"
#include "util/error.h"

namespace aegis {

namespace {

// Inverts a k×k matrix over GF(2^8) by Gauss-Jordan elimination.
// Throws InvalidArgument if singular (cannot happen for Vandermonde
// submatrices with distinct evaluation points, but guards corruption).
std::vector<std::uint8_t> invert_matrix(std::vector<std::uint8_t> m,
                                        unsigned k) {
  std::vector<std::uint8_t> inv(k * k, 0);
  for (unsigned i = 0; i < k; ++i) inv[i * k + i] = 1;

  for (unsigned col = 0; col < k; ++col) {
    // Find a pivot.
    unsigned pivot = col;
    while (pivot < k && m[pivot * k + col] == 0) ++pivot;
    if (pivot == k) throw InvalidArgument("RS: singular decode matrix");
    if (pivot != col) {
      for (unsigned j = 0; j < k; ++j) {
        std::swap(m[pivot * k + j], m[col * k + j]);
        std::swap(inv[pivot * k + j], inv[col * k + j]);
      }
    }
    // Normalize the pivot row.
    const std::uint8_t d = gf256::inv(m[col * k + col]);
    for (unsigned j = 0; j < k; ++j) {
      m[col * k + j] = gf256::mul(m[col * k + j], d);
      inv[col * k + j] = gf256::mul(inv[col * k + j], d);
    }
    // Eliminate the column everywhere else.
    for (unsigned r = 0; r < k; ++r) {
      if (r == col) continue;
      const std::uint8_t f = m[r * k + col];
      if (f == 0) continue;
      for (unsigned j = 0; j < k; ++j) {
        m[r * k + j] ^= gf256::mul(f, m[col * k + j]);
        inv[r * k + j] ^= gf256::mul(f, inv[col * k + j]);
      }
    }
  }
  return inv;
}

// Multiplies (a: r×k) x (b: k×k) over GF(2^8).
std::vector<std::uint8_t> mat_mul(const std::vector<std::uint8_t>& a,
                                  unsigned rows,
                                  const std::vector<std::uint8_t>& b,
                                  unsigned k) {
  std::vector<std::uint8_t> out(rows * k, 0);
  for (unsigned i = 0; i < rows; ++i) {
    for (unsigned j = 0; j < k; ++j) {
      std::uint8_t acc = 0;
      for (unsigned t = 0; t < k; ++t)
        acc ^= gf256::mul(a[i * k + t], b[t * k + j]);
      out[i * k + j] = acc;
    }
  }
  return out;
}

}  // namespace

ReedSolomon::ReedSolomon(unsigned k, unsigned n, RsMatrix kind)
    : k_(k), n_(n) {
  if (k == 0 || n < k || n > 255)
    throw InvalidArgument("ReedSolomon: need 1 <= k <= n <= 255");

  std::vector<std::uint8_t> base(static_cast<std::size_t>(n) * k);
  switch (kind) {
    case RsMatrix::kVandermonde: {
      // Evaluation points 0..n-1: row i = [i^0, i^1, ...]. (Point 0
      // gives row [1,0,0,...], fine.)
      for (unsigned i = 0; i < n; ++i)
        for (unsigned j = 0; j < k; ++j)
          base[i * k + j] = gf256::pow(static_cast<std::uint8_t>(i), j);
      break;
    }
    case RsMatrix::kCauchy: {
      // Disjoint point sets: y_j = j (columns), x_i = k + i (rows);
      // entry = 1/(x_i ^ y_j). Every square submatrix of a Cauchy
      // matrix is nonsingular, which is the MDS property directly.
      if (static_cast<unsigned>(k) + n > 256)
        throw InvalidArgument("ReedSolomon: Cauchy needs k + n <= 256");
      for (unsigned i = 0; i < n; ++i)
        for (unsigned j = 0; j < k; ++j)
          base[i * k + j] = gf256::inv(
              static_cast<std::uint8_t>((k + i) ^ j));
      break;
    }
  }

  // Systematize: M = B * inverse(top k rows of B). Top block becomes I.
  std::vector<std::uint8_t> top(base.begin(), base.begin() + k * k);
  matrix_ = mat_mul(base, n, invert_matrix(std::move(top), k), k);
}

std::vector<Bytes> ReedSolomon::encode(ByteView data, ThreadPool* pool) const {
  const std::size_t shard_size = (data.size() + k_ - 1) / k_;
  std::vector<Bytes> data_shards(k_, Bytes(shard_size, 0));
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * shard_size;
    if (off < data.size()) {
      const std::size_t take = std::min(shard_size, data.size() - off);
      std::copy(data.begin() + off, data.begin() + off + take,
                data_shards[i].begin());
    }
  }
  return encode_shards(data_shards, pool);
}

std::vector<Bytes> ReedSolomon::encode_shards(
    const std::vector<Bytes>& data_shards, ThreadPool* pool) const {
  if (data_shards.size() != k_)
    throw InvalidArgument("RS::encode_shards: need exactly k data shards");
  const std::size_t shard_size = data_shards[0].size();
  for (const auto& s : data_shards)
    if (s.size() != shard_size)
      throw InvalidArgument("RS::encode_shards: unequal shard sizes");

  std::vector<Bytes> shards = data_shards;
  shards.resize(n_);
  for (unsigned r = k_; r < n_; ++r) shards[r].assign(shard_size, 0);
  // Parity rows are independent accumulations into disjoint buffers, so
  // the partition across workers cannot change the result.
  parallel_blocks(pool, n_ - k_, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t p = b0; p < b1; ++p) {
      const unsigned r = k_ + static_cast<unsigned>(p);
      Bytes& parity = shards[r];
      for (unsigned j = 0; j < k_; ++j) {
        gf256::mul_add_row(MutByteView(parity.data(), parity.size()),
                           data_shards[j], row(r)[j]);
      }
    }
  });
  return shards;
}

std::vector<Bytes> ReedSolomon::reconstruct_shards(
    const std::vector<std::optional<Bytes>>& shards, ThreadPool* pool) const {
  if (shards.size() != n_)
    throw InvalidArgument("RS::reconstruct: need an n-entry shard vector");

  std::vector<unsigned> have;
  std::size_t shard_size = 0;
  for (unsigned i = 0; i < n_; ++i) {
    if (shards[i]) {
      if (have.empty()) {
        shard_size = shards[i]->size();
      } else if (shards[i]->size() != shard_size) {
        throw InvalidArgument("RS::reconstruct: unequal shard sizes");
      }
      have.push_back(i);
      if (have.size() == k_) break;
    }
  }
  if (have.size() < k_)
    throw UnrecoverableError("RS: only " + std::to_string(have.size()) +
                             " shards available, need " + std::to_string(k_));

  // Build and invert the k×k submatrix of the generator for the rows we
  // actually have; its inverse maps available shards -> data shards.
  std::vector<std::uint8_t> sub(k_ * k_);
  for (unsigned r = 0; r < k_; ++r)
    std::copy(row(have[r]), row(have[r]) + k_, sub.begin() + r * k_);
  const std::vector<std::uint8_t> inv = invert_matrix(std::move(sub), k_);

  std::vector<Bytes> data_shards(k_);
  for (unsigned i = 0; i < k_; ++i) data_shards[i].assign(shard_size, 0);
  parallel_blocks(pool, k_, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t i = b0; i < b1; ++i) {
      Bytes& out = data_shards[i];
      for (unsigned j = 0; j < k_; ++j) {
        gf256::mul_add_row(MutByteView(out.data(), out.size()),
                           *shards[have[j]], inv[i * k_ + j]);
      }
    }
  });
  return encode_shards(data_shards, pool);
}

Bytes ReedSolomon::decode(const std::vector<std::optional<Bytes>>& shards,
                          std::size_t original_size, ThreadPool* pool) const {
  // Fast path: all data shards present.
  bool all_data = true;
  for (unsigned i = 0; i < k_; ++i) {
    if (i >= shards.size() || !shards[i]) {
      all_data = false;
      break;
    }
  }

  std::vector<Bytes> full;
  if (all_data) {
    full.reserve(k_);
    for (unsigned i = 0; i < k_; ++i) full.push_back(*shards[i]);
  } else {
    full = reconstruct_shards(shards, pool);
  }

  Bytes out;
  out.reserve(original_size);
  for (unsigned i = 0; i < k_ && out.size() < original_size; ++i) {
    const std::size_t take =
        std::min(full[i].size(), original_size - out.size());
    out.insert(out.end(), full[i].begin(), full[i].begin() + take);
  }
  if (out.size() != original_size)
    throw InvalidArgument("RS::decode: original_size exceeds shard capacity");
  return out;
}

}  // namespace aegis
