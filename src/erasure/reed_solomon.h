// Systematic Reed-Solomon erasure coding over GF(2^8).
//
// The availability substrate for every dispersal-based archival scheme in
// the paper: AONT-RS disperses its package with systematic RS (§3.2);
// plain "erasure coding" is one of Figure 1's encodings; POTSHARDS
// combines secret sharing with RS-style fault tolerance.
//
// Construction: a Vandermonde matrix over GF(2^8) is systematized by
// multiplying with the inverse of its top k×k block, yielding an n×k
// generator whose first k rows are the identity. Any k of the n shards
// reconstruct the data (decode inverts the corresponding k×k row
// submatrix by Gaussian elimination).
#pragma once

#include <optional>
#include <vector>

#include "util/bytes.h"
#include "util/thread_pool.h"

namespace aegis {

/// How the generator matrix is constructed. Both yield MDS codes with
/// identical coding guarantees; they differ in construction cost and in
/// the structure of the parity rows (the ablation DESIGN.md calls out).
enum class RsMatrix : std::uint8_t {
  kVandermonde,  // powers of evaluation points, then systematized
  kCauchy,       // entries 1/(x_i + y_j), then systematized
};

/// A [n, k] systematic Reed-Solomon code: k data shards, n-k parity
/// shards, tolerates loss of any n-k shards. Requires 1 <= k <= n <= 255
/// (Cauchy: k + n <= 256, since the x and y point sets must be disjoint).
class ReedSolomon {
 public:
  explicit ReedSolomon(unsigned k, unsigned n,
                       RsMatrix kind = RsMatrix::kVandermonde);

  unsigned k() const { return k_; }
  unsigned n() const { return n_; }

  /// Splits `data` into k equal shards (zero-padded), appends n-k parity
  /// shards. shards()[i].size() == ceil(data.size()/k) for all i.
  /// Empty input yields n empty shards. A non-null `pool` parallelizes
  /// the parity rows; results are identical for every pool size.
  std::vector<Bytes> encode(ByteView data, ThreadPool* pool = nullptr) const;

  /// Encodes pre-split data shards (all the same size) into parity
  /// shards; returns the full n-shard vector (data shards first).
  std::vector<Bytes> encode_shards(const std::vector<Bytes>& data_shards,
                                   ThreadPool* pool = nullptr) const;

  /// Reconstructs the original data from any >= k surviving shards
  /// (nullopt marks a lost shard; order matters — index i is shard i).
  /// `original_size` trims the zero padding.
  /// Throws UnrecoverableError with fewer than k shards.
  Bytes decode(const std::vector<std::optional<Bytes>>& shards,
               std::size_t original_size, ThreadPool* pool = nullptr) const;

  /// Reconstructs *all* shards (e.g. to repair a failed node) from any
  /// >= k survivors.
  std::vector<Bytes> reconstruct_shards(
      const std::vector<std::optional<Bytes>>& shards,
      ThreadPool* pool = nullptr) const;

  /// Storage blowup factor n/k — the quantity on Figure 1's cost axis.
  double storage_overhead() const {
    return static_cast<double>(n_) / static_cast<double>(k_);
  }

 private:
  /// Row r of the systematic generator matrix (k entries).
  const std::uint8_t* row(unsigned r) const { return &matrix_[r * k_]; }

  unsigned k_, n_;
  std::vector<std::uint8_t> matrix_;  // n x k systematic generator
};

}  // namespace aegis
