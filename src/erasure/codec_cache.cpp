#include "erasure/codec_cache.h"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

namespace aegis {

const ReedSolomon& rs_codec(unsigned k, unsigned n, RsMatrix kind) {
  using Key = std::tuple<unsigned, unsigned, RsMatrix>;
  static std::mutex mu;
  static std::map<Key, std::unique_ptr<const ReedSolomon>>* cache =
      new std::map<Key, std::unique_ptr<const ReedSolomon>>();  // leaked:
  // references escape to callers, so the cache must outlive every
  // static destructor.

  const Key key{k, n, kind};
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, std::make_unique<const ReedSolomon>(k, n, kind))
             .first;
  }
  return *it->second;
}

}  // namespace aegis
