// Distributed verifiable proactive secret sharing — Herzberg share
// refresh run as an actual message-passing protocol between shareholder
// nodes, over protected channels, with Byzantine dealers detected by
// accusation.
//
// The sharing module's proactive_refresh_vss() computes the same result
// coordinator-style; this module is the wire-level version the paper's
// §3.2 cost analysis is really about: every sub-share is a sealed
// point-to-point message, every commitment set and accusation a
// broadcast, and the bus bills each one. Rounds are synchronous (the
// classic PSS network assumption) and broadcasts are reliable —
// assumptions stated by Herzberg et al. and inherited here.
//
//   round 1  deal()      every holder deals a zero-sharing: n-1 sealed
//                        sub-shares + broadcast commitments with the
//                        constant term's opening (proving it commits 0)
//   round 2  accuse()    holders verify what they received; bad or
//                        missing dealings draw a broadcast accusation
//   round 3  finalize()  everyone applies exactly the dealings from
//                        un-accused dealers; shares and public
//                        commitments update homomorphically
#pragma once

#include <optional>
#include <set>

#include "node/messaging.h"
#include "sharing/vss.h"
#include "util/rng.h"

namespace aegis {

/// One shareholder's protocol state. NodeId i holds VSS share index i+1.
class PssParticipant {
 public:
  PssParticipant(NodeId id, unsigned t, unsigned n, VssShare share,
                 VssCommitments commitments);

  NodeId id() const { return id_; }
  const VssShare& share() const { return share_; }
  const VssCommitments& commitments() const { return commitments_; }
  const std::set<NodeId>& accused() const { return accused_; }

  /// Makes this dealer Byzantine: it corrupts the sub-share sent to its
  /// successor holder (and should therefore be caught in round 2).
  void set_byzantine(bool v) { byzantine_ = v; }

  /// Round 1: deal a zero-sharing to all peers.
  void deal(MessageBus& bus, Rng& rng);

  /// Round 2: drain the bus, verify every dealing, broadcast
  /// accusations for dealers whose material is bad or missing.
  void accuse(MessageBus& bus);

  /// Round 3: drain accusations and apply all surviving dealings.
  /// Throws IntegrityError if fewer than one honest dealing survives
  /// (cannot happen with an honest majority).
  void finalize(MessageBus& bus);

 private:
  struct ReceivedDealing {
    VssShare sub;                       // my sub-share from this dealer
    bool have_sub = false;
    VssCommitments commitments;
    U256 blind0;                        // opening of the constant term
    bool have_commitments = false;
  };

  NodeId id_;
  unsigned t_, n_;
  VssShare share_;
  VssCommitments commitments_;
  bool byzantine_ = false;

  std::map<NodeId, ReceivedDealing> received_;
  std::set<NodeId> accused_;
};

/// Outcome of one full refresh round.
struct PssRoundResult {
  std::set<NodeId> accused;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Drives the three rounds across all participants. Participants must
/// hold a consistent dealing (same commitments) on entry; on exit every
/// honest participant holds a refreshed, mutually consistent sharing.
PssRoundResult run_pss_refresh(std::vector<PssParticipant>& nodes,
                               MessageBus& bus, Rng& rng);

}  // namespace aegis
