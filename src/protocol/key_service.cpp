#include "protocol/key_service.h"

#include <algorithm>

#include "util/error.h"
#include "util/serde.h"

namespace aegis {

void KeyHolder::accept_key(const std::string& key_id, VssShare share,
                           VssCommitments commitments) {
  if (share.index != id_ + 1)
    throw InvalidArgument("KeyHolder: share index mismatch");
  if (!vss_verify_share(share, commitments))
    throw IntegrityError("KeyHolder: dealt share fails verification",
                         ErrorCode::kShareVerifyFailed);
  keys_[key_id] = {std::move(share), std::move(commitments)};
}

std::optional<VssShare> KeyHolder::answer_fetch(
    const std::string& key_id) const {
  const auto it = keys_.find(key_id);
  if (it == keys_.end()) return std::nullopt;
  VssShare s = it->second.share;
  if (byzantine_) {
    // Lie: hand back a mutated share (detected against commitments).
    s.value = ec::Secp256k1::instance().fn().add(s.value, U256(7));
  }
  return s;
}

const VssCommitments* KeyHolder::commitments(
    const std::string& key_id) const {
  const auto it = keys_.find(key_id);
  return it == keys_.end() ? nullptr : &it->second.commitments;
}

PssParticipant KeyHolder::participant(const std::string& key_id) const {
  const auto it = keys_.find(key_id);
  if (it == keys_.end())
    throw InvalidArgument("KeyHolder: unknown key " + key_id);
  PssParticipant p(id_, static_cast<unsigned>(
                            it->second.commitments.threshold()),
                   n_, it->second.share, it->second.commitments);
  p.set_byzantine(byzantine_);
  return p;
}

void KeyHolder::update_key(const std::string& key_id, VssShare share,
                           VssCommitments commitments) {
  keys_.at(key_id) = {std::move(share), std::move(commitments)};
}

KeyService::KeyService(Cluster& cluster, unsigned t, unsigned n,
                       ChannelKind channel)
    : cluster_(cluster), t_(t), n_(n), bus_(cluster, channel) {
  if (t == 0 || t > n || n > cluster.size())
    throw InvalidArgument("KeyService: bad geometry for this cluster",
                          ErrorCode::kBadGeometry);
  for (NodeId i = 0; i < n; ++i) holders_.emplace_back(i, t, n);
}

unsigned KeyService::store(const std::string& key_id, const U256& key,
                           Rng& rng) {
  const VssDealing dealing = pedersen_deal(key, t_, n_, rng);

  unsigned accepted = 0;
  for (NodeId i = 0; i < n_; ++i) {
    // The dealing travels to each holder through a protected message.
    ByteWriter w;
    w.u32(dealing.shares[i].index);
    w.raw(dealing.shares[i].value.to_bytes_be());
    w.raw(dealing.shares[i].blind.to_bytes_be());
    ProtocolMessage m;
    m.from = i;  // client impersonates no node; attribute to recipient
    m.to = i;
    m.topic = "keysvc/store/" + key_id;
    m.payload = std::move(w).take();
    bus_.send(std::move(m));
    (void)bus_.drain(i);

    try {
      holders_[i].accept_key(key_id, dealing.shares[i],
                             dealing.commitments);
      ++accepted;
    } catch (const Error&) {
      // A holder that rejects simply does not store; the client sees
      // the count and can re-deal.
    }
  }
  if (std::find(key_ids_.begin(), key_ids_.end(), key_id) == key_ids_.end())
    key_ids_.push_back(key_id);
  return accepted;
}

U256 KeyService::fetch(const std::string& key_id) {
  std::vector<VssShare> verified;
  const VssCommitments* comms = nullptr;

  for (NodeId i = 0; i < n_ && verified.size() < t_; ++i) {
    if (!cluster_.node(i).online()) continue;
    const auto share = holders_[i].answer_fetch(key_id);
    if (!share) continue;
    if (comms == nullptr) comms = holders_[i].commitments(key_id);

    // The response travels back over a protected message.
    ByteWriter w;
    w.u32(share->index);
    w.raw(share->value.to_bytes_be());
    w.raw(share->blind.to_bytes_be());
    ProtocolMessage m;
    m.from = i;
    m.to = i;
    m.topic = "keysvc/fetch/" + key_id;
    m.payload = std::move(w).take();
    bus_.send(std::move(m));
    (void)bus_.drain(i);

    // Client-side verification against the standing commitments: a
    // Byzantine holder's lie dies here.
    if (comms != nullptr && vss_verify_share(*share, *comms))
      verified.push_back(*share);
  }

  if (verified.size() < t_)
    throw UnrecoverableError("KeyService: fewer than t verified responses");
  return vss_recover(verified, t_);
}

std::set<NodeId> KeyService::refresh(Rng& rng) {
  std::set<NodeId> accused;
  for (const std::string& key_id : key_ids_) {
    std::vector<PssParticipant> participants;
    participants.reserve(n_);
    for (NodeId i = 0; i < n_; ++i)
      participants.push_back(holders_[i].participant(key_id));

    const PssRoundResult r = run_pss_refresh(participants, bus_, rng);
    accused.insert(r.accused.begin(), r.accused.end());

    for (NodeId i = 0; i < n_; ++i) {
      holders_[i].update_key(key_id, participants[i].share(),
                             participants[i].commitments());
    }
  }
  return accused;
}

}  // namespace aegis
