#include "protocol/vsr.h"

#include <algorithm>

#include "crypto/pedersen.h"
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

namespace {

constexpr const char* kTopicSub = "vsr/subshare";
constexpr const char* kTopicComms = "vsr/commitments";
constexpr const char* kTopicAccuse = "vsr/accuse";

Bytes encode_share(const VssShare& s) {
  ByteWriter w;
  w.u32(s.index);
  w.raw(s.value.to_bytes_be());
  w.raw(s.blind.to_bytes_be());
  return std::move(w).take();
}

VssShare decode_share(ByteView wire) {
  ByteReader r(wire);
  VssShare s;
  s.index = r.u32();
  s.value = U256::from_bytes_be(r.raw(32));
  s.blind = U256::from_bytes_be(r.raw(32));
  r.expect_done();
  return s;
}

Bytes encode_comms(const VssCommitments& c) {
  ByteWriter w;
  w.u8(c.pedersen ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(c.points.size()));
  for (const Bytes& p : c.points) w.bytes(p);
  return std::move(w).take();
}

VssCommitments decode_comms(ByteView wire) {
  ByteReader r(wire);
  VssCommitments c;
  c.pedersen = r.u8() != 0;
  const std::uint32_t count = r.count(4);
  for (std::uint32_t i = 0; i < count; ++i) c.points.push_back(r.bytes());
  r.expect_done();
  return c;
}

/// Standing commitment to old holder `index`'s share: prod_j C_j^{i^j}.
PedersenCommitment standing_commitment(const VssCommitments& comms,
                                       std::uint32_t index) {
  const ec::Secp256k1& curve = ec::Secp256k1::instance();
  const MontgomeryCtx& fn = curve.fn();
  ec::Point acc;
  U256 x_pow(1);
  const U256 xm = fn.to_mont(U256(index));
  for (const Bytes& enc : comms.points) {
    acc = curve.add(acc, curve.mul(curve.decode(enc), x_pow));
    x_pow = fn.from_mont(fn.mul(fn.to_mont(x_pow), xm));
  }
  return PedersenCommitment{acc};
}

}  // namespace

VsrOldHolder::VsrOldHolder(NodeId id, unsigned t2, unsigned n2,
                           NodeId new_base, VssShare share)
    : id_(id), t2_(t2), n2_(n2), new_base_(new_base),
      share_(std::move(share)) {
  if (share_.index != id_ + 1)
    throw InvalidArgument("VsrOldHolder: share index must be node id + 1");
}

void VsrOldHolder::subshare(MessageBus& bus, Rng& rng) {
  U256 value = share_.value;
  if (byzantine_) {
    // Lie about the share: the sub-dealing's constant commitment will
    // not match the standing commitment.
    value = ec::Secp256k1::instance().fn().add(value, U256(1));
  }

  const VssDealing sub =
      pedersen_deal_fixed_blind0(value, share_.blind, t2_, n2_, rng);

  for (unsigned j = 0; j < n2_; ++j) {
    ProtocolMessage m;
    m.from = id_;
    m.to = new_base_ + j;
    m.topic = kTopicSub;
    m.payload = encode_share(sub.shares[j]);
    bus.send(std::move(m));
  }
  for (unsigned j = 0; j < n2_; ++j) {
    ProtocolMessage m;
    m.from = id_;
    m.to = new_base_ + j;
    m.topic = kTopicComms;
    m.payload = encode_comms(sub.commitments);
    bus.send(std::move(m));
  }
}

VsrNewHolder::VsrNewHolder(NodeId id, unsigned t, unsigned n, unsigned t2,
                           unsigned n2, NodeId new_base,
                           VssCommitments old_commitments)
    : id_(id),
      t_(t),
      n_(n),
      t2_(t2),
      n2_(n2),
      new_base_(new_base),
      old_commitments_(std::move(old_commitments)) {
  if (!old_commitments_.pedersen)
    throw InvalidArgument("VsrNewHolder: requires a Pedersen dealing");
  if (id_ < new_base_ || id_ >= new_base_ + n2_)
    throw InvalidArgument("VsrNewHolder: id outside the new group range");
}

void VsrNewHolder::accuse(MessageBus& bus) {
  for (const ProtocolMessage& m : bus.drain(id_)) {
    SubDealing& d = received_[m.from];
    try {
      if (m.topic == kTopicSub) {
        d.sub = decode_share(m.payload);
        d.have_sub = true;
      } else if (m.topic == kTopicComms) {
        d.commitments = decode_comms(m.payload);
        d.have_commitments = true;
      }
    } catch (const Error&) {
      // Malformed == missing; accused below.
    }
  }

  for (NodeId dealer = 0; dealer < n_; ++dealer) {
    const auto it = received_.find(dealer);
    bool ok = it != received_.end() && it->second.have_sub &&
              it->second.have_commitments &&
              !it->second.commitments.points.empty();
    if (ok) {
      const SubDealing& d = it->second;
      try {
        // The sub-dealing must provably carry the dealer's REAL share:
        // its constant commitment equals the standing commitment.
        const PedersenCommitment c0 =
            PedersenCommitment::decode(d.commitments.points[0]);
        ok = c0 == standing_commitment(old_commitments_, dealer + 1);
        ok = ok && d.sub.index == new_index() + 1 &&
             vss_verify_share(d.sub, d.commitments);
      } catch (const Error&) {
        ok = false;
      }
    }
    if (!ok) {
      accused_.insert(dealer);
      std::uint8_t payload[4] = {
          static_cast<std::uint8_t>(dealer),
          static_cast<std::uint8_t>(dealer >> 8),
          static_cast<std::uint8_t>(dealer >> 16),
          static_cast<std::uint8_t>(dealer >> 24)};
      for (unsigned j = 0; j < n2_; ++j) {
        if (new_base_ + j == id_) continue;
        ProtocolMessage m;
        m.from = id_;
        m.to = new_base_ + j;
        m.topic = kTopicAccuse;
        m.payload = to_bytes(ByteView(payload, 4));
        bus.send(std::move(m));
      }
    }
  }
}

void VsrNewHolder::finalize(MessageBus& bus) {
  for (const ProtocolMessage& m : bus.drain(id_)) {
    if (m.topic != kTopicAccuse || m.payload.size() != 4) continue;
    NodeId dealer = 0;
    for (int i = 0; i < 4; ++i)
      dealer |= static_cast<NodeId>(m.payload[i]) << (8 * i);
    if (dealer < n_) accused_.insert(dealer);
  }

  // Deterministic honest contributor set: the t lowest old indices that
  // nobody accused and that delivered complete material.
  std::vector<NodeId> contributors;
  for (NodeId dealer = 0; dealer < n_ && contributors.size() < t_; ++dealer) {
    if (accused_.count(dealer) > 0) continue;
    const auto it = received_.find(dealer);
    if (it == received_.end() || !it->second.have_sub ||
        !it->second.have_commitments)
      continue;
    contributors.push_back(dealer);
  }
  if (contributors.size() < t_)
    throw UnrecoverableError("VsrNewHolder: fewer than t honest old holders");

  std::vector<std::uint32_t> xs;
  for (NodeId c : contributors) xs.push_back(c + 1);

  const ec::Secp256k1& curve = ec::Secp256k1::instance();
  const MontgomeryCtx& fn = curve.fn();

  U256 value, blind;  // zero
  for (std::size_t i = 0; i < contributors.size(); ++i) {
    const U256 li = scalar_lagrange_at_zero(xs, i);
    const VssShare& s = received_[contributors[i]].sub;
    value = fn.add(
        value, fn.from_mont(fn.mul(fn.to_mont(li), fn.to_mont(s.value))));
    blind = fn.add(
        blind, fn.from_mont(fn.mul(fn.to_mont(li), fn.to_mont(s.blind))));
  }
  share_ = {new_index() + 1, value, blind};

  commitments_.pedersen = true;
  commitments_.points.clear();
  for (unsigned c = 0; c < t2_; ++c) {
    ec::Point acc;
    for (std::size_t i = 0; i < contributors.size(); ++i) {
      const U256 li = scalar_lagrange_at_zero(xs, i);
      const ec::Point pc =
          curve.decode(received_[contributors[i]].commitments.points[c]);
      acc = curve.add(acc, curve.mul(pc, li));
    }
    commitments_.points.push_back(curve.encode(acc));
  }
}

VsrResult run_vsr(std::vector<VsrOldHolder>& old_holders,
                  std::vector<VsrNewHolder>& new_holders, MessageBus& bus,
                  Rng& rng) {
  Observability& obs = bus.cluster().obs();
  AEGIS_SPAN(obs.tracer(), "protocol.vsr.redistribute");
  const std::uint64_t msgs0 = bus.messages_sent();
  const std::uint64_t bytes0 = bus.bytes_sent();

  const auto accused_so_far = [&new_holders] {
    std::set<NodeId> all;
    for (const auto& h : new_holders)
      all.insert(h.accused().begin(), h.accused().end());
    return static_cast<unsigned>(all.size());
  };
  const auto round = [&](const char* name, auto&& body) {
    const std::uint64_t m0 = bus.messages_sent();
    const std::uint64_t b0 = bus.bytes_sent();
    body();
    obs.emit(ProtocolRound{"vsr", name, bus.messages_sent() - m0,
                           bus.bytes_sent() - b0, accused_so_far()});
  };

  round("subshare", [&] {
    for (auto& o : old_holders) o.subshare(bus, rng);
  });
  round("accuse", [&] {
    for (auto& h : new_holders) h.accuse(bus);
  });
  round("finalize", [&] {
    for (auto& h : new_holders) h.finalize(bus);
  });

  VsrResult r;
  for (const auto& h : new_holders)
    r.accused.insert(h.accused().begin(), h.accused().end());
  r.messages = bus.messages_sent() - msgs0;
  r.bytes = bus.bytes_sent() - bytes0;

  MetricsRegistry& m = obs.metrics();
  m.counter("protocol.vsr.runs").inc();
  m.counter("protocol.vsr.messages").inc(r.messages);
  m.counter("protocol.vsr.bytes").inc(r.bytes);
  m.counter("protocol.vsr.accusations").inc(r.accused.size());
  return r;
}

}  // namespace aegis
