// A decentralized key-management service — the HasDPSS archetype (§4's
// "the concrete design of secret-shared archives may benefit from the
// key-management literature") as a running protocol service.
//
// The service is a group of key-holder nodes. A client:
//   * store()    deals a 256-bit key as a Pedersen VSS to the holders
//                (each holder verifies its share against the broadcast
//                commitments before accepting — a bad dealing is
//                rejected by the honest holders);
//   * fetch()    asks every holder for its share over protected
//                channels, verifies each response against the standing
//                commitments (a corrupted holder's lie is dropped), and
//                reconstructs once t verified shares arrive;
//   * refresh()  runs the distributed PSS round over all held keys, so
//                a mobile adversary's old share harvest goes stale.
//
// Every message is billed and wiretapped like all other cluster traffic,
// so key-plane exposure shows up in the same HNDL analysis as the data
// plane.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "protocol/pss.h"

namespace aegis {

/// One key-holder node's state: its share of every stored key.
class KeyHolder {
 public:
  KeyHolder(NodeId id, unsigned t, unsigned n) : id_(id), t_(t), n_(n) {}

  NodeId id() const { return id_; }

  /// If set, this holder answers fetches with a corrupted share and
  /// deals corrupt zero-sharings during refresh.
  void set_byzantine(bool v) { byzantine_ = v; }

  /// Handles one incoming store sub-share/commitment pair (dealer is the
  /// client, so there is no accusation round here: the holder just
  /// verifies and accepts or rejects).
  void accept_key(const std::string& key_id, VssShare share,
                  VssCommitments commitments);

  /// Answers a fetch: the share, possibly corrupted if Byzantine.
  std::optional<VssShare> answer_fetch(const std::string& key_id) const;

  /// The standing commitments for a key (public).
  const VssCommitments* commitments(const std::string& key_id) const;

  std::size_t keys_held() const { return keys_.size(); }

  /// Builds this holder's PSS participant view for one key's refresh.
  PssParticipant participant(const std::string& key_id) const;

  /// Writes back the refreshed share/commitments after a PSS round.
  void update_key(const std::string& key_id, VssShare share,
                  VssCommitments commitments);

 private:
  struct Held {
    VssShare share;
    VssCommitments commitments;
  };

  NodeId id_;
  unsigned t_, n_;
  bool byzantine_ = false;
  std::map<std::string, Held> keys_;
};

/// The client-facing service facade over a holder group.
class KeyService {
 public:
  /// Holders occupy cluster nodes 0..n-1. Threshold t of n.
  KeyService(Cluster& cluster, unsigned t, unsigned n, ChannelKind channel);

  unsigned t() const { return t_; }
  unsigned n() const { return n_; }
  KeyHolder& holder(NodeId id) { return holders_.at(id); }

  /// Stores a key under `key_id`. Returns the number of holders that
  /// accepted (verified) their share — all n for an honest client.
  unsigned store(const std::string& key_id, const U256& key, Rng& rng);

  /// Fetches and reconstructs the key from t VERIFIED holder responses.
  /// Byzantine holders' corrupted shares are detected against the
  /// standing commitments and skipped. Throws UnrecoverableError if
  /// fewer than t honest responses arrive.
  U256 fetch(const std::string& key_id);

  /// One distributed PSS refresh round over every stored key. Returns
  /// the union of accused holder ids across keys.
  std::set<NodeId> refresh(Rng& rng);

  std::uint64_t messages() const { return bus_.messages_sent(); }
  std::uint64_t bytes() const { return bus_.bytes_sent(); }

 private:
  Cluster& cluster_;
  unsigned t_, n_;
  MessageBus bus_;
  std::vector<KeyHolder> holders_;
  std::vector<std::string> key_ids_;
};

}  // namespace aegis
