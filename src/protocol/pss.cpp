#include "protocol/pss.h"

#include "crypto/pedersen.h"
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

namespace {

constexpr const char* kTopicSubShare = "pss/subshare";
constexpr const char* kTopicCommitments = "pss/commitments";
constexpr const char* kTopicAccuse = "pss/accuse";

Bytes encode_subshare(const VssShare& s) {
  ByteWriter w;
  w.u32(s.index);
  w.raw(s.value.to_bytes_be());
  w.raw(s.blind.to_bytes_be());
  return std::move(w).take();
}

VssShare decode_subshare(ByteView wire) {
  ByteReader r(wire);
  VssShare s;
  s.index = r.u32();
  s.value = U256::from_bytes_be(r.raw(32));
  s.blind = U256::from_bytes_be(r.raw(32));
  r.expect_done();
  return s;
}

Bytes encode_commitments(const VssCommitments& c, const U256& blind0) {
  ByteWriter w;
  w.u8(c.pedersen ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(c.points.size()));
  for (const Bytes& p : c.points) w.bytes(p);
  w.raw(blind0.to_bytes_be());
  return std::move(w).take();
}

void decode_commitments(ByteView wire, VssCommitments& c, U256& blind0) {
  ByteReader r(wire);
  c.pedersen = r.u8() != 0;
  const std::uint32_t count = r.count(4);
  c.points.clear();
  for (std::uint32_t i = 0; i < count; ++i) c.points.push_back(r.bytes());
  blind0 = U256::from_bytes_be(r.raw(32));
  r.expect_done();
}

}  // namespace

PssParticipant::PssParticipant(NodeId id, unsigned t, unsigned n,
                               VssShare share, VssCommitments commitments)
    : id_(id),
      t_(t),
      n_(n),
      share_(std::move(share)),
      commitments_(std::move(commitments)) {
  if (share_.index != id_ + 1)
    throw InvalidArgument("PssParticipant: share index must be node id + 1");
  if (!commitments_.pedersen)
    throw InvalidArgument("PssParticipant: requires a Pedersen dealing");
}

void PssParticipant::deal(MessageBus& bus, Rng& rng) {
  U256 blind0;
  VssDealing zero = pedersen_deal_opened(U256(), t_, n_, rng, blind0);

  if (byzantine_) {
    // Corrupt the successor's sub-share: the classic detected attack.
    const NodeId victim = (id_ + 1) % n_;
    VssShare& s = zero.shares[victim];
    s.value = ec::Secp256k1::instance().fn().add(s.value, U256(1));
  }

  // Keep my own sub-share locally (a dealer trusts itself).
  ReceivedDealing mine;
  mine.sub = zero.shares[id_];
  mine.have_sub = true;
  mine.commitments = zero.commitments;
  mine.blind0 = blind0;
  mine.have_commitments = true;
  received_[id_] = std::move(mine);

  for (NodeId peer = 0; peer < n_; ++peer) {
    if (peer == id_) continue;
    ProtocolMessage m;
    m.from = id_;
    m.to = peer;
    m.topic = kTopicSubShare;
    m.payload = encode_subshare(zero.shares[peer]);
    bus.send(std::move(m));
  }
  bus.broadcast(id_, kTopicCommitments,
                encode_commitments(zero.commitments, blind0));
}

void PssParticipant::accuse(MessageBus& bus) {
  for (const ProtocolMessage& m : bus.drain(id_)) {
    ReceivedDealing& d = received_[m.from];
    try {
      if (m.topic == kTopicSubShare) {
        d.sub = decode_subshare(m.payload);
        d.have_sub = true;
      } else if (m.topic == kTopicCommitments) {
        decode_commitments(m.payload, d.commitments, d.blind0);
        d.have_commitments = true;
      }
    } catch (const Error&) {
      // Malformed material is as good as missing: the checks below
      // will accuse the dealer.
    }
  }

  for (NodeId dealer = 0; dealer < n_; ++dealer) {
    const auto it = received_.find(dealer);
    bool ok = it != received_.end() && it->second.have_sub &&
              it->second.have_commitments;
    if (ok) {
      const ReceivedDealing& d = it->second;
      // The dealt secret must provably be zero...
      const PedersenCommitment c0 =
          PedersenCommitment::decode(d.commitments.points[0]);
      ok = pedersen_verify(c0, {U256(), d.blind0});
      // ...and my sub-share must lie on the committed polynomial.
      ok = ok && d.sub.index == id_ + 1 &&
           vss_verify_share(d.sub, d.commitments);
    }
    if (!ok) {
      accused_.insert(dealer);
      std::uint8_t payload[4] = {
          static_cast<std::uint8_t>(dealer),
          static_cast<std::uint8_t>(dealer >> 8),
          static_cast<std::uint8_t>(dealer >> 16),
          static_cast<std::uint8_t>(dealer >> 24)};
      bus.broadcast(id_, kTopicAccuse, ByteView(payload, 4));
    }
  }
}

void PssParticipant::finalize(MessageBus& bus) {
  // Union in everyone else's accusations so all honest parties exclude
  // the same dealer set (reliable broadcast assumption).
  for (const ProtocolMessage& m : bus.drain(id_)) {
    if (m.topic != kTopicAccuse || m.payload.size() != 4) continue;
    NodeId dealer = 0;
    for (int i = 0; i < 4; ++i)
      dealer |= static_cast<NodeId>(m.payload[i]) << (8 * i);
    if (dealer < n_) accused_.insert(dealer);
  }

  const MontgomeryCtx& fn = ec::Secp256k1::instance().fn();
  unsigned applied = 0;
  for (const auto& [dealer, d] : received_) {
    if (accused_.count(dealer) > 0) continue;
    if (!d.have_sub || !d.have_commitments) continue;

    share_.value = fn.add(share_.value, d.sub.value);
    share_.blind = fn.add(share_.blind, d.sub.blind);
    for (unsigned j = 0; j < t_; ++j) {
      const PedersenCommitment a =
          PedersenCommitment::decode(commitments_.points[j]);
      const PedersenCommitment b =
          PedersenCommitment::decode(d.commitments.points[j]);
      commitments_.points[j] = pedersen_add(a, b).encode();
    }
    ++applied;
  }
  if (applied == 0)
    throw IntegrityError("PssParticipant: no honest dealing survived",
                         ErrorCode::kNoHonestDealing);
}

PssRoundResult run_pss_refresh(std::vector<PssParticipant>& nodes,
                               MessageBus& bus, Rng& rng) {
  Observability& obs = bus.cluster().obs();
  AEGIS_SPAN(obs.tracer(), "protocol.pss.refresh");
  const std::uint64_t msgs0 = bus.messages_sent();
  const std::uint64_t bytes0 = bus.bytes_sent();

  const auto accused_so_far = [&nodes] {
    std::set<NodeId> all;
    for (const auto& node : nodes)
      all.insert(node.accused().begin(), node.accused().end());
    return static_cast<unsigned>(all.size());
  };
  const auto round = [&](const char* name, auto&& body) {
    const std::uint64_t m0 = bus.messages_sent();
    const std::uint64_t b0 = bus.bytes_sent();
    body();
    obs.emit(ProtocolRound{"pss", name, bus.messages_sent() - m0,
                           bus.bytes_sent() - b0, accused_so_far()});
  };

  round("deal", [&] {
    for (auto& node : nodes) node.deal(bus, rng);
  });
  round("accuse", [&] {
    for (auto& node : nodes) node.accuse(bus);
  });
  round("finalize", [&] {
    for (auto& node : nodes) node.finalize(bus);
  });

  PssRoundResult r;
  for (const auto& node : nodes) {
    r.accused.insert(node.accused().begin(), node.accused().end());
  }
  r.messages = bus.messages_sent() - msgs0;
  r.bytes = bus.bytes_sent() - bytes0;

  MetricsRegistry& m = obs.metrics();
  m.counter("protocol.pss.refreshes").inc();
  m.counter("protocol.pss.messages").inc(r.messages);
  m.counter("protocol.pss.bytes").inc(r.bytes);
  m.counter("protocol.pss.accusations").inc(r.accused.size());
  return r;
}

}  // namespace aegis
