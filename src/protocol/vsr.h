// Distributed verifiable share redistribution (Wong–Wang–Wing) at wire
// level: an old shareholder group (t, n) hands a secret to a NEW group
// (t2, n2) — disjoint node sets, protected point-to-point messages —
// without reconstructing it, and with cheating old holders caught
// against their standing Pedersen commitments.
//
// This is the protocol behind the paper's "VSR Archive" row, run the way
// the archive would run it when storage providers churn over decades:
//
//   round 1  subshare()   every old holder re-deals its share to the new
//                         group, using its share's blinding as the
//                         sub-dealing's constant blinding so the
//                         sub-commitment C'_0 provably equals its
//                         standing share commitment
//   round 2  accuse()     new holders verify each sub-dealing (C'_0
//                         match + own sub-share on the polynomial) and
//                         broadcast accusations
//   round 3  finalize()   new holders agree on the honest contributor
//                         set (deterministically: the t lowest-indexed
//                         un-accused old holders), Lagrange-combine
//                         their sub-shares, and derive the new public
//                         commitments homomorphically
#pragma once

#include <set>

#include "node/messaging.h"
#include "sharing/vss.h"
#include "util/rng.h"

namespace aegis {

/// An old-group shareholder (cluster NodeId == its old index).
class VsrOldHolder {
 public:
  /// New holders live at cluster ids new_base .. new_base + n2 - 1.
  VsrOldHolder(NodeId id, unsigned t2, unsigned n2, NodeId new_base,
               VssShare share);

  void set_byzantine(bool v) { byzantine_ = v; }
  NodeId id() const { return id_; }

  /// Round 1: sub-share my share to the entire new group.
  void subshare(MessageBus& bus, Rng& rng);

 private:
  NodeId id_;
  unsigned t2_, n2_;
  NodeId new_base_;
  VssShare share_;
  bool byzantine_ = false;
};

/// A new-group shareholder.
class VsrNewHolder {
 public:
  /// `old_commitments` is the standing public commitment vector of the
  /// old sharing — what cheaters are checked against.
  VsrNewHolder(NodeId id, unsigned t, unsigned n, unsigned t2, unsigned n2,
               NodeId new_base, VssCommitments old_commitments);

  NodeId id() const { return id_; }
  unsigned new_index() const { return static_cast<unsigned>(id_ - new_base_); }

  /// Round 2: verify received sub-dealings; broadcast accusations to the
  /// new group.
  void accuse(MessageBus& bus);

  /// Round 3: combine the deterministic honest set. Throws
  /// UnrecoverableError with fewer than t honest contributors.
  void finalize(MessageBus& bus);

  const VssShare& share() const { return share_; }
  const VssCommitments& commitments() const { return commitments_; }
  const std::set<NodeId>& accused() const { return accused_; }

 private:
  struct SubDealing {
    VssShare sub;
    bool have_sub = false;
    VssCommitments commitments;
    bool have_commitments = false;
  };

  NodeId id_;
  unsigned t_, n_, t2_, n2_;
  NodeId new_base_;
  VssCommitments old_commitments_;

  std::map<NodeId, SubDealing> received_;
  std::set<NodeId> accused_;
  VssShare share_;
  VssCommitments commitments_;
};

/// Result of one redistribution.
struct VsrResult {
  std::set<NodeId> accused;  // old holders caught cheating
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Drives the three rounds.
VsrResult run_vsr(std::vector<VsrOldHolder>& old_holders,
                  std::vector<VsrNewHolder>& new_holders, MessageBus& bus,
                  Rng& rng);

}  // namespace aegis
