#include "node/messaging.h"

#include "util/serde.h"

namespace aegis {

Bytes ProtocolMessage::serialize() const {
  ByteWriter w;
  w.u32(from);
  w.u32(to);
  w.str(topic);
  w.bytes(payload);
  return std::move(w).take();
}

ProtocolMessage ProtocolMessage::deserialize(ByteView wire) {
  ByteReader r(wire);
  ProtocolMessage m;
  m.from = r.u32();
  m.to = r.u32();
  m.topic = r.str();
  m.payload = r.bytes();
  r.expect_done();
  return m;
}

MessageBus::MessageBus(Cluster& cluster, ChannelKind kind)
    : cluster_(cluster), kind_(kind) {
  MetricsRegistry& m = cluster_.obs().metrics();
  m_messages_ = &m.counter("protocol.bus.messages");
  m_bytes_ = &m.counter("protocol.bus.bytes");
}

void MessageBus::send(ProtocolMessage msg) {
  const Bytes wire = msg.serialize();

  // The wiretap view: a "@proto/<topic>" pseudo-blob whose shard index
  // is the sender — enough for traffic analysis; the payload itself is
  // what a transit break would reveal.
  StoredBlob tap;
  tap.object = "@proto/" + msg.topic;
  tap.shard_index = msg.from;
  tap.data = wire;
  tap.stored_at = cluster_.now();

  const Bytes delivered = cluster_.protected_transfer(wire, tap, kind_);
  ++messages_sent_;
  bytes_sent_ += msg.payload.size();
  m_messages_->inc();
  m_bytes_->inc(msg.payload.size());
  queues_[msg.to].push_back(ProtocolMessage::deserialize(delivered));
}

void MessageBus::broadcast(NodeId from, const std::string& topic,
                           ByteView payload) {
  for (NodeId id = 0; id < cluster_.size(); ++id) {
    if (id == from) continue;
    ProtocolMessage m;
    m.from = from;
    m.to = id;
    m.topic = topic;
    m.payload = to_bytes(payload);
    send(std::move(m));
  }
}

std::vector<ProtocolMessage> MessageBus::drain(NodeId recipient) {
  auto& q = queues_[recipient];
  std::vector<ProtocolMessage> out(q.begin(), q.end());
  q.clear();
  return out;
}

}  // namespace aegis
