// The mobile adversary (Ostrovsky–Yung), the paper's §2 threat model.
//
// Per epoch, the adversary corrupts at most f nodes, copies everything
// they store (Harvest Now...), and releases them. Over enough epochs it
// touches every node — which is fatal for static secret sharing and
// harmless for proactively refreshed sharing, the exact contrast
// bench/hndl_timeline plots. What the harvested material is *worth* is
// decided later by the obsolescence analyzer (...Decrypt Later), once
// scheme breaks land.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "node/cluster.h"
#include "util/rng.h"

namespace aegis {

/// How the adversary chooses its per-epoch corruption set.
enum class CorruptionStrategy : std::uint8_t {
  kRandom,  // f fresh uniform nodes each epoch
  kSweep,   // round-robin: maximizes distinct nodes visited over time
  kSticky,  // same f nodes forever (a static adversary, for contrast)
};

const char* to_string(CorruptionStrategy s);

/// One harvested shard copy.
struct HarvestedBlob {
  StoredBlob blob;
  NodeId from = 0;
  Epoch taken_at = 0;
};

/// The mobile adversary: bounded corruptions per epoch, unbounded memory
/// of what it saw.
class MobileAdversary {
 public:
  MobileAdversary(unsigned max_corruptions_per_epoch,
                  CorruptionStrategy strategy, std::uint64_t seed);

  unsigned budget() const { return f_; }
  CorruptionStrategy strategy() const { return strategy_; }

  /// Runs one epoch of corruption against the cluster: picks <= f nodes,
  /// copies all their blobs into the harvest. Returns the nodes touched.
  std::vector<NodeId> corrupt_epoch(const Cluster& cluster);

  /// Everything stolen so far from storage nodes.
  const std::vector<HarvestedBlob>& harvest() const { return harvest_; }

  /// Distinct nodes corrupted at least once.
  std::size_t nodes_ever_corrupted() const { return visited_.size(); }

  std::uint64_t bytes_harvested() const { return bytes_harvested_; }

 private:
  unsigned f_;
  CorruptionStrategy strategy_;
  SimRng rng_;
  NodeId sweep_cursor_ = 0;
  std::vector<NodeId> sticky_set_;
  std::set<NodeId> visited_;
  std::vector<HarvestedBlob> harvest_;
  std::uint64_t bytes_harvested_ = 0;
};

}  // namespace aegis
