#include "node/adversary.h"

#include <algorithm>

#include "util/error.h"

namespace aegis {

const char* to_string(CorruptionStrategy s) {
  switch (s) {
    case CorruptionStrategy::kRandom: return "random";
    case CorruptionStrategy::kSweep: return "sweep";
    case CorruptionStrategy::kSticky: return "sticky";
  }
  return "?";
}

MobileAdversary::MobileAdversary(unsigned max_corruptions_per_epoch,
                                 CorruptionStrategy strategy,
                                 std::uint64_t seed)
    : f_(max_corruptions_per_epoch), strategy_(strategy), rng_(seed) {
  if (f_ == 0)
    throw InvalidArgument("MobileAdversary: corruption budget must be > 0");
}

std::vector<NodeId> MobileAdversary::corrupt_epoch(const Cluster& cluster) {
  const unsigned n = cluster.size();
  const unsigned take = std::min(f_, n);

  std::vector<NodeId> chosen;
  switch (strategy_) {
    case CorruptionStrategy::kRandom: {
      std::set<NodeId> set;
      while (set.size() < take)
        set.insert(static_cast<NodeId>(rng_.uniform(n)));
      chosen.assign(set.begin(), set.end());
      break;
    }
    case CorruptionStrategy::kSweep: {
      for (unsigned i = 0; i < take; ++i) {
        chosen.push_back(sweep_cursor_);
        sweep_cursor_ = (sweep_cursor_ + 1) % n;
      }
      break;
    }
    case CorruptionStrategy::kSticky: {
      if (sticky_set_.empty()) {
        std::set<NodeId> set;
        while (set.size() < take)
          set.insert(static_cast<NodeId>(rng_.uniform(n)));
        sticky_set_.assign(set.begin(), set.end());
      }
      chosen = sticky_set_;
      break;
    }
  }

  for (NodeId id : chosen) {
    visited_.insert(id);
    for (const StoredBlob* blob : cluster.node(id).all_blobs()) {
      harvest_.push_back({*blob, id, cluster.now()});
      bytes_harvested_ += blob->data.size();
    }
  }
  return chosen;
}

}  // namespace aegis
