// The geo-dispersed node cluster and its transport layer.
//
// Every client<->node conversation goes through a real Channel instance
// (plain, TLS-like or QKD-simulated) whose frames are recorded into a
// global wiretap: the simulation's standing assumption is a passive
// network adversary that records *everything* (the harvest half of
// Harvest Now, Decrypt Later). Each wiretap record keeps the protected
// payload alongside the transcript so the obsolescence analyzer can
// determine what a future cryptanalytic break releases.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/channel.h"
#include "node/faults.h"
#include "node/node.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace aegis {

/// Which channel construction protects client<->node transfers.
enum class ChannelKind : std::uint8_t {
  kPlain,  // cleartext
  kTls,    // ECDH + AES-256-CTR + HMAC (computational)
  kQkd,    // simulated QKD one-time pad (information-theoretic)
  kBsm,    // Bounded-Storage-Model-keyed one-time pad (ITS, Sec. 4)
};

const char* to_string(ChannelKind k);

/// One recorded conversation: the eavesdropper's transcript plus (held by
/// the omniscient simulator, NOT the adversary) the payload it protected.
struct WiretapRecord {
  ChannelTranscript transcript;
  StoredBlob payload;
  Epoch recorded_at = 0;
};

/// Per-node link profile for the virtual-time model: every conversation
/// with the node costs latency_ms plus payload/bandwidth. Defaults model
/// a WAN replica (40 ms RTT, 50 MB/s).
struct NodeProfile {
  double latency_ms = 40.0;
  double bandwidth_mbps = 50.0;  // megabytes per second
};

/// Transfer accounting.
struct NetworkStats {
  std::uint64_t uploads = 0;
  std::uint64_t downloads = 0;
  std::uint64_t bytes_up = 0;    // payload bytes client -> node
  std::uint64_t bytes_down = 0;  // payload bytes node -> client
  std::uint64_t refresh_messages = 0;
  std::uint64_t refresh_bytes = 0;
  std::uint64_t dropped = 0;     // conversations lost in flight
  std::uint64_t corrupted = 0;   // conversations corrupted in flight
  std::uint64_t quarantine_rejections = 0;  // refused by open breaker
};

/// How one transfer ended, so callers can distinguish failure modes —
/// an outage spans epochs (retrying now is pointless) while a drop or
/// in-flight corruption is per-conversation (retrying usually works).
enum class TransferStatus : std::uint8_t {
  kOk,
  kNodeOffline,  // target down (outage or manual fail_node)
  kQuarantined,  // circuit breaker open: request not even attempted
  kDropped,      // conversation lost in flight
  kCorrupted,    // payload corrupted in flight (detected end-to-end)
  kMissing,      // download only: node answered, shard absent
};

const char* to_string(TransferStatus s);

constexpr bool transfer_ok(TransferStatus s) {
  return s == TransferStatus::kOk;
}

/// Download outcome: a status plus the blob when one was delivered. A
/// corrupted-in-flight transfer may still carry a (damaged) blob when the
/// frame stayed parseable — callers must treat it as untrusted.
struct DownloadResult {
  TransferStatus status = TransferStatus::kMissing;
  std::optional<StoredBlob> blob;

  bool ok() const { return status == TransferStatus::kOk && blob.has_value(); }
  explicit operator bool() const { return ok(); }
  const StoredBlob& operator*() const { return *blob; }
  const StoredBlob* operator->() const { return &*blob; }
};

/// Per-node transfer health, driving the circuit breaker.
struct NodeHealth {
  std::uint64_t attempts = 0;
  std::uint64_t failures = 0;     // all failures, link- and node-level
  unsigned consecutive_failures = 0;  // node-attributable only (offline)
  unsigned quarantines = 0;       // times the breaker opened
  Epoch quarantined_until = 0;    // breaker open while now < this
  bool quarantined(Epoch now) const { return now < quarantined_until; }
};

/// Circuit-breaker tuning: a node racking up `failure_threshold`
/// consecutive failures is quarantined for `cooldown_epochs`; the first
/// request after the cooldown is the re-probe (success closes the
/// breaker, failure re-opens it immediately).
///
/// Only node-attributable failures (offline) feed the breaker. Dropped
/// or corrupted conversations are link faults: retry handles those, and
/// letting them trip the breaker turns a flaky network into a cascade of
/// quarantines that block the very writes repair needs to heal with.
struct BreakerPolicy {
  bool enabled = true;
  unsigned failure_threshold = 4;
  Epoch cooldown_epochs = 2;
};

/// A fixed-size cluster of storage nodes with an epoch clock.
class Cluster {
 public:
  Cluster(unsigned node_count, ChannelKind channel, std::uint64_t seed);

  unsigned size() const { return static_cast<unsigned>(nodes_.size()); }
  StorageNode& node(NodeId id);
  const StorageNode& node(NodeId id) const;

  Epoch now() const { return now_; }

  /// Advances the epoch clock and applies epoch-scoped faults (scheduled
  /// and random outages, at-rest bit-rot) via the fault injector.
  void advance_epoch();

  /// The cluster's fault source. Quiescent until configured.
  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }

  /// The deployment's observability context: metrics, event bus and
  /// trace ring, all stamped with this cluster's virtual epoch. The
  /// cluster reports transport/breaker activity here; the Archive,
  /// FaultInjector and protocol drivers layer their own evidence on top.
  Observability& obs() { return *obs_; }
  const Observability& obs() const { return *obs_; }

  ChannelKind channel_kind() const { return channel_; }

  /// Sends a blob to a node through a fresh protected conversation.
  /// `kind` selects the channel for THIS conversation (policies carry
  /// their own transport — a LINCOS tier rides QKD over the same cluster
  /// a cloud tier rides TLS on); nullopt uses the cluster default.
  TransferStatus upload(NodeId id, StoredBlob blob,
                        std::optional<ChannelKind> kind = std::nullopt);

  /// Fetches a shard back through a protected conversation.
  DownloadResult download(NodeId id, const ObjectId& object,
                          std::uint32_t shard,
                          std::optional<ChannelKind> kind = std::nullopt);

  /// Per-node transfer health (attempts, failures, breaker state).
  const NodeHealth& health(NodeId id) const;

  void set_breaker_policy(const BreakerPolicy& policy) { breaker_ = policy; }
  const BreakerPolicy& breaker_policy() const { return breaker_; }

  /// Records node-to-node refresh traffic (the protocols themselves run
  /// in the sharing module; the cluster just accounts for the I/O).
  void count_refresh_traffic(std::uint64_t messages, std::uint64_t bytes);

  /// Runs one protected conversation carrying an arbitrary payload
  /// (protocol messages, not blobs). `tap_payload` is what the wiretap
  /// record should show the conversation protected. Returns the payload
  /// as delivered. Used by MessageBus.
  Bytes protected_transfer(ByteView payload, const StoredBlob& tap_payload,
                           ChannelKind kind);

  /// Installs a link profile for one node (virtual-time accounting).
  void set_node_profile(NodeId id, NodeProfile profile);

  /// Accumulated virtual transfer time across all conversations,
  /// serialized (an upper bound; real systems parallelize across nodes —
  /// divide by the fan-out for the parallel estimate).
  double simulated_ms() const { return simulated_ms_; }

  /// Charges extra virtual time (client retry backoff, think time).
  void charge_ms(double ms) { simulated_ms_ += ms; }

  void fail_node(NodeId id) { node(id).set_online(false); }

  /// Brings a node back AND clears its breaker state: a manual restore
  /// is an administrator attesting the node is healthy again.
  void restore_node(NodeId id);
  unsigned online_count() const;

  const NetworkStats& stats() const { return stats_; }

  /// The global passive eavesdropper's haul.
  const std::vector<WiretapRecord>& wiretap() const { return wiretap_; }

  /// Total bytes resident across all nodes (the Figure 1 numerator).
  std::uint64_t total_bytes_stored() const;

 private:
  /// Runs one protected conversation carrying `payload`, recording the
  /// transcript. Returns the bytes as the receiving end saw them.
  Bytes converse(ByteView payload, const StoredBlob& blob_for_tap,
                 ChannelKind kind);

  /// Health bookkeeping shared by upload/download: records the failure,
  /// opens the breaker at the threshold (emitting NodeQuarantined).
  void record_failure(NodeId id);
  void record_link_failure(NodeHealth& health);

  // Declared first: members below report into it. Behind a unique_ptr so
  // the Cluster stays movable (the registry holds a mutex) and so every
  // handle/subscription into it survives a Cluster move.
  std::unique_ptr<Observability> obs_;
  // Hot-path metric handles (resolved once; registry lookups are mutexed).
  Counter* m_uploads_ = nullptr;
  Counter* m_downloads_ = nullptr;
  Counter* m_bytes_up_ = nullptr;
  Counter* m_bytes_down_ = nullptr;
  Counter* m_dropped_ = nullptr;
  Counter* m_corrupted_ = nullptr;
  Counter* m_quarantine_rejections_ = nullptr;
  Histogram* m_transfer_ms_ = nullptr;
  std::vector<StorageNode> nodes_;
  std::vector<NodeProfile> profiles_;
  std::vector<NodeHealth> health_;
  BreakerPolicy breaker_;
  ChannelKind channel_;
  double simulated_ms_ = 0.0;
  Epoch now_ = 0;
  SimRng rng_;
  FaultInjector faults_;
  NetworkStats stats_;
  std::vector<WiretapRecord> wiretap_;
};

}  // namespace aegis
