// The geo-dispersed node cluster and its transport layer.
//
// Every client<->node conversation goes through a real Channel instance
// (plain, TLS-like or QKD-simulated) whose frames are recorded into a
// global wiretap: the simulation's standing assumption is a passive
// network adversary that records *everything* (the harvest half of
// Harvest Now, Decrypt Later). Each wiretap record keeps the protected
// payload alongside the transcript so the obsolescence analyzer can
// determine what a future cryptanalytic break releases.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/channel.h"
#include "node/node.h"
#include "util/rng.h"

namespace aegis {

/// Which channel construction protects client<->node transfers.
enum class ChannelKind : std::uint8_t {
  kPlain,  // cleartext
  kTls,    // ECDH + AES-256-CTR + HMAC (computational)
  kQkd,    // simulated QKD one-time pad (information-theoretic)
  kBsm,    // Bounded-Storage-Model-keyed one-time pad (ITS, Sec. 4)
};

const char* to_string(ChannelKind k);

/// One recorded conversation: the eavesdropper's transcript plus (held by
/// the omniscient simulator, NOT the adversary) the payload it protected.
struct WiretapRecord {
  ChannelTranscript transcript;
  StoredBlob payload;
  Epoch recorded_at = 0;
};

/// Per-node link profile for the virtual-time model: every conversation
/// with the node costs latency_ms plus payload/bandwidth. Defaults model
/// a WAN replica (40 ms RTT, 50 MB/s).
struct NodeProfile {
  double latency_ms = 40.0;
  double bandwidth_mbps = 50.0;  // megabytes per second
};

/// Transfer accounting.
struct NetworkStats {
  std::uint64_t uploads = 0;
  std::uint64_t downloads = 0;
  std::uint64_t bytes_up = 0;    // payload bytes client -> node
  std::uint64_t bytes_down = 0;  // payload bytes node -> client
  std::uint64_t refresh_messages = 0;
  std::uint64_t refresh_bytes = 0;
};

/// A fixed-size cluster of storage nodes with an epoch clock.
class Cluster {
 public:
  Cluster(unsigned node_count, ChannelKind channel, std::uint64_t seed);

  unsigned size() const { return static_cast<unsigned>(nodes_.size()); }
  StorageNode& node(NodeId id);
  const StorageNode& node(NodeId id) const;

  Epoch now() const { return now_; }
  void advance_epoch() { ++now_; }

  ChannelKind channel_kind() const { return channel_; }

  /// Sends a blob to a node through a fresh protected conversation.
  /// Returns false if the node is offline. `kind` selects the channel
  /// for THIS conversation (policies carry their own transport — a
  /// LINCOS tier rides QKD over the same cluster a cloud tier rides TLS
  /// on); nullopt uses the cluster default.
  bool upload(NodeId id, StoredBlob blob,
              std::optional<ChannelKind> kind = std::nullopt);

  /// Fetches a shard back through a protected conversation.
  std::optional<StoredBlob> download(NodeId id, const ObjectId& object,
                                     std::uint32_t shard,
                                     std::optional<ChannelKind> kind =
                                         std::nullopt);

  /// Records node-to-node refresh traffic (the protocols themselves run
  /// in the sharing module; the cluster just accounts for the I/O).
  void count_refresh_traffic(std::uint64_t messages, std::uint64_t bytes);

  /// Runs one protected conversation carrying an arbitrary payload
  /// (protocol messages, not blobs). `tap_payload` is what the wiretap
  /// record should show the conversation protected. Returns the payload
  /// as delivered. Used by MessageBus.
  Bytes protected_transfer(ByteView payload, const StoredBlob& tap_payload,
                           ChannelKind kind);

  /// Installs a link profile for one node (virtual-time accounting).
  void set_node_profile(NodeId id, NodeProfile profile);

  /// Accumulated virtual transfer time across all conversations,
  /// serialized (an upper bound; real systems parallelize across nodes —
  /// divide by the fan-out for the parallel estimate).
  double simulated_ms() const { return simulated_ms_; }

  void fail_node(NodeId id) { node(id).set_online(false); }
  void restore_node(NodeId id) { node(id).set_online(true); }
  unsigned online_count() const;

  const NetworkStats& stats() const { return stats_; }

  /// The global passive eavesdropper's haul.
  const std::vector<WiretapRecord>& wiretap() const { return wiretap_; }

  /// Total bytes resident across all nodes (the Figure 1 numerator).
  std::uint64_t total_bytes_stored() const;

 private:
  /// Runs one protected conversation carrying `payload`, recording the
  /// transcript. Returns the bytes as the receiving end saw them.
  Bytes converse(ByteView payload, const StoredBlob& blob_for_tap,
                 ChannelKind kind);

  std::vector<StorageNode> nodes_;
  std::vector<NodeProfile> profiles_;
  ChannelKind channel_;
  double simulated_ms_ = 0.0;
  Epoch now_ = 0;
  SimRng rng_;
  NetworkStats stats_;
  std::vector<WiretapRecord> wiretap_;
};

}  // namespace aegis
