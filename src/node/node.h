// Simulated archival storage node.
//
// The paper's standing assumption (§2) is an archive spanning
// geographically dispersed, administratively independent storage nodes.
// A node here is a shard store with an online/offline switch; all
// adversarial behaviour lives in MobileAdversary, and all transport in
// Cluster, so the node itself stays an honest, dumb box — which is
// exactly what the threat model grants it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/scheme.h"
#include "util/bytes.h"

namespace aegis {

using NodeId = std::uint32_t;
using ObjectId = std::string;

/// One stored shard/share/replica.
struct StoredBlob {
  ObjectId object;
  std::uint32_t shard_index = 0;
  /// Refresh generation: proactive protocols bump this, making shares
  /// harvested from older generations non-combinable with newer ones.
  std::uint32_t generation = 0;
  Bytes data;
  Epoch stored_at = 0;

  Bytes serialize() const;
  static StoredBlob deserialize(ByteView wire);
};

/// A single storage node: keyed blob store plus availability state.
class StorageNode {
 public:
  explicit StorageNode(NodeId id) : id_(id) {}

  NodeId id() const { return id_; }

  bool online() const { return online_; }
  void set_online(bool v) { online_ = v; }

  /// Inserts or replaces the shard for (object, shard_index).
  void put(StoredBlob blob);

  /// nullptr when absent (or the node is offline — an offline node
  /// answers nothing, it does not error).
  const StoredBlob* get(const ObjectId& object, std::uint32_t shard) const;

  void erase(const ObjectId& object, std::uint32_t shard);
  void erase_object(const ObjectId& object);

  /// Node-local rename of one blob to a different object key (replacing
  /// any blob already there). The migration engine's promote step: moving
  /// a staged shard into its real slot is a metadata operation on the
  /// node's own store, not a transfer — like erase(), it applies directly
  /// to node state and therefore tolerates the node being offline (the
  /// rename lands when the disk does). Returns false when the source
  /// blob is absent.
  bool rename(const ObjectId& from_object, std::uint32_t shard,
              const ObjectId& to_object);

  /// Full contents — the mobile adversary's view when it owns the node.
  std::vector<const StoredBlob*> all_blobs() const;

  /// Mutable contents — the fault injector's hook for at-rest bit-rot.
  /// Bit flips keep sizes constant, so storage accounting stays valid;
  /// anything that resizes a blob must go through put()/erase().
  std::vector<StoredBlob*> all_blobs_mut();

  std::uint64_t bytes_stored() const { return bytes_stored_; }
  std::size_t blob_count() const { return blobs_.size(); }

 private:
  static std::string key(const ObjectId& object, std::uint32_t shard);

  NodeId id_;
  bool online_ = true;
  std::map<std::string, StoredBlob> blobs_;
  std::uint64_t bytes_stored_ = 0;
};

}  // namespace aegis
