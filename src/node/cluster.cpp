#include "node/cluster.h"

#include "channel/bsm_channel.h"
#include "channel/qkd_channel.h"
#include "channel/tls_channel.h"
#include "util/error.h"

namespace aegis {

const char* to_string(ChannelKind k) {
  switch (k) {
    case ChannelKind::kPlain: return "cleartext";
    case ChannelKind::kTls: return "TLS(ECDH+AES)";
    case ChannelKind::kQkd: return "QKD-OTP";
    case ChannelKind::kBsm: return "BSM-OTP";
  }
  return "?";
}

Cluster::Cluster(unsigned node_count, ChannelKind channel, std::uint64_t seed)
    : channel_(channel), rng_(seed) {
  if (node_count == 0)
    throw InvalidArgument("Cluster: need at least one node");
  nodes_.reserve(node_count);
  for (unsigned i = 0; i < node_count; ++i) nodes_.emplace_back(i);
  profiles_.assign(node_count, NodeProfile{});
}

StorageNode& Cluster::node(NodeId id) {
  if (id >= nodes_.size()) throw InvalidArgument("Cluster: bad node id");
  return nodes_[id];
}

const StorageNode& Cluster::node(NodeId id) const {
  if (id >= nodes_.size()) throw InvalidArgument("Cluster: bad node id");
  return const_cast<Cluster*>(this)->nodes_[id];
}

void Cluster::set_node_profile(NodeId id, NodeProfile profile) {
  if (id >= profiles_.size()) throw InvalidArgument("Cluster: bad node id");
  if (profile.latency_ms < 0 || profile.bandwidth_mbps <= 0)
    throw InvalidArgument("Cluster: bad node profile");
  profiles_[id] = profile;
}

unsigned Cluster::online_count() const {
  unsigned c = 0;
  for (const auto& n : nodes_) c += n.online();
  return c;
}

Bytes Cluster::converse(ByteView payload, const StoredBlob& blob_for_tap,
                        ChannelKind kind) {
  std::unique_ptr<Channel> sender, receiver;
  switch (kind) {
    case ChannelKind::kPlain: {
      sender = std::make_unique<PlainChannel>();
      receiver = std::make_unique<PlainChannel>();
      break;
    }
    case ChannelKind::kTls: {
      auto [l, r] = TlsChannel::handshake(rng_);
      sender = std::move(l);
      receiver = std::move(r);
      break;
    }
    case ChannelKind::kQkd: {
      auto res = QkdChannel::establish(payload.size() + 64, rng_);
      sender = std::move(res.left);
      receiver = std::move(res.right);
      break;
    }
    case ChannelKind::kBsm: {
      // Modest beacon geometry per conversation; multiple agreement
      // rounds run until the pad covers the payload.
      BsmParams params;
      params.stream_words = 1 << 12;
      params.samples_per_party = 256;
      params.adversary_words = 1 << 11;
      auto res = BsmChannel::establish(payload.size() + 64, params, rng_);
      sender = std::move(res.left);
      receiver = std::move(res.right);
      break;
    }
  }

  const Bytes frame = sender->seal(payload);
  Bytes delivered = receiver->open(frame);

  WiretapRecord rec;
  rec.transcript = sender->transcript();
  rec.payload = blob_for_tap;
  rec.recorded_at = now_;
  wiretap_.push_back(std::move(rec));
  return delivered;
}

bool Cluster::upload(NodeId id, StoredBlob blob,
                     std::optional<ChannelKind> kind) {
  StorageNode& target = node(id);
  if (!target.online()) return false;

  const Bytes wire = blob.serialize();
  const Bytes delivered = converse(wire, blob, kind.value_or(channel_));

  stats_.uploads += 1;
  stats_.bytes_up += blob.data.size();
  const NodeProfile& prof = profiles_[id];
  simulated_ms_ +=
      prof.latency_ms + wire.size() / (prof.bandwidth_mbps * 1000.0);
  target.put(StoredBlob::deserialize(delivered));
  return true;
}

std::optional<StoredBlob> Cluster::download(NodeId id, const ObjectId& object,
                                            std::uint32_t shard,
                                            std::optional<ChannelKind> kind) {
  StorageNode& source = node(id);
  const StoredBlob* blob = source.get(object, shard);
  if (blob == nullptr) return std::nullopt;

  const Bytes wire = blob->serialize();
  const Bytes delivered = converse(wire, *blob, kind.value_or(channel_));

  stats_.downloads += 1;
  stats_.bytes_down += blob->data.size();
  const NodeProfile& prof = profiles_[id];
  simulated_ms_ +=
      prof.latency_ms + wire.size() / (prof.bandwidth_mbps * 1000.0);
  return StoredBlob::deserialize(delivered);
}

Bytes Cluster::protected_transfer(ByteView payload,
                                  const StoredBlob& tap_payload,
                                  ChannelKind kind) {
  return converse(payload, tap_payload, kind);
}

void Cluster::count_refresh_traffic(std::uint64_t messages,
                                    std::uint64_t bytes) {
  stats_.refresh_messages += messages;
  stats_.refresh_bytes += bytes;
}

std::uint64_t Cluster::total_bytes_stored() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n.bytes_stored();
  return total;
}

}  // namespace aegis
