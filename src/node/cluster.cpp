#include "node/cluster.h"

#include "channel/bsm_channel.h"
#include "channel/qkd_channel.h"
#include "channel/tls_channel.h"
#include "util/error.h"

namespace aegis {

const char* to_string(ChannelKind k) {
  switch (k) {
    case ChannelKind::kPlain: return "cleartext";
    case ChannelKind::kTls: return "TLS(ECDH+AES)";
    case ChannelKind::kQkd: return "QKD-OTP";
    case ChannelKind::kBsm: return "BSM-OTP";
  }
  return "?";
}

const char* to_string(TransferStatus s) {
  switch (s) {
    case TransferStatus::kOk: return "ok";
    case TransferStatus::kNodeOffline: return "node-offline";
    case TransferStatus::kQuarantined: return "quarantined";
    case TransferStatus::kDropped: return "dropped";
    case TransferStatus::kCorrupted: return "corrupted";
    case TransferStatus::kMissing: return "missing";
  }
  return "?";
}

Cluster::Cluster(unsigned node_count, ChannelKind channel, std::uint64_t seed)
    : channel_(channel), rng_(seed), faults_(seed ^ 0xfa017c75ULL) {
  if (node_count == 0)
    throw InvalidArgument("Cluster: need at least one node");
  nodes_.reserve(node_count);
  for (unsigned i = 0; i < node_count; ++i) nodes_.emplace_back(i);
  profiles_.assign(node_count, NodeProfile{});
  health_.assign(node_count, NodeHealth{});

  obs_ = std::make_unique<Observability>();
  faults_.bind_events(&obs_->events());
  MetricsRegistry& m = obs_->metrics();
  m_uploads_ = &m.counter("cluster.upload.count");
  m_downloads_ = &m.counter("cluster.download.count");
  m_bytes_up_ = &m.counter("cluster.upload.bytes");
  m_bytes_down_ = &m.counter("cluster.download.bytes");
  m_dropped_ = &m.counter("cluster.transfer.dropped");
  m_corrupted_ = &m.counter("cluster.transfer.corrupted");
  m_quarantine_rejections_ = &m.counter("cluster.transfer.quarantine_rejections");
  m_transfer_ms_ = &m.histogram("cluster.transfer.ms");
  m.gauge("cluster.nodes_online").set(node_count);
}

void Cluster::advance_epoch() {
  ++now_;
  obs_->set_epoch(now_);
  faults_.on_epoch(now_, nodes_);
  obs_->metrics().gauge("cluster.epoch").set(static_cast<std::int64_t>(now_));
  obs_->metrics().gauge("cluster.nodes_online").set(online_count());
  obs_->emit(EpochAdvanced{online_count()});
}

void Cluster::restore_node(NodeId id) {
  node(id).set_online(true);
  health_[id].consecutive_failures = 0;
  health_[id].quarantined_until = 0;
  obs_->metrics().gauge("cluster.nodes_online").set(online_count());
  obs_->emit(NodeRestored{id});
}

const NodeHealth& Cluster::health(NodeId id) const {
  if (id >= health_.size()) throw InvalidArgument("Cluster: bad node id");
  return health_[id];
}

void Cluster::record_failure(NodeId id) {
  // A node-attributable failure: feeds the circuit breaker.
  NodeHealth& health = health_[id];
  ++health.failures;
  ++health.consecutive_failures;
  if (breaker_.enabled &&
      health.consecutive_failures >= breaker_.failure_threshold &&
      !health.quarantined(now_)) {
    health.quarantined_until = now_ + breaker_.cooldown_epochs;
    ++health.quarantines;
    // Same increment, two views: NodeHealth::quarantines (polled) and
    // the NodeQuarantined event stream (pushed) can never disagree.
    obs_->metrics().counter("cluster.breaker.quarantines").inc();
    obs_->emit(NodeQuarantined{id, health.quarantined_until,
                              health.consecutive_failures});
  }
}

void Cluster::record_link_failure(NodeHealth& health) {
  // A conversation-level fault (drop/corruption): counted, but it does
  // not advance the breaker — retry is the remedy, not quarantine.
  ++health.failures;
}

StorageNode& Cluster::node(NodeId id) {
  if (id >= nodes_.size()) throw InvalidArgument("Cluster: bad node id");
  return nodes_[id];
}

const StorageNode& Cluster::node(NodeId id) const {
  if (id >= nodes_.size()) throw InvalidArgument("Cluster: bad node id");
  return const_cast<Cluster*>(this)->nodes_[id];
}

void Cluster::set_node_profile(NodeId id, NodeProfile profile) {
  if (id >= profiles_.size()) throw InvalidArgument("Cluster: bad node id");
  if (profile.latency_ms < 0 || profile.bandwidth_mbps <= 0)
    throw InvalidArgument("Cluster: bad node profile");
  profiles_[id] = profile;
}

unsigned Cluster::online_count() const {
  unsigned c = 0;
  for (const auto& n : nodes_) c += n.online();
  return c;
}

Bytes Cluster::converse(ByteView payload, const StoredBlob& blob_for_tap,
                        ChannelKind kind) {
  std::unique_ptr<Channel> sender, receiver;
  switch (kind) {
    case ChannelKind::kPlain: {
      sender = std::make_unique<PlainChannel>();
      receiver = std::make_unique<PlainChannel>();
      break;
    }
    case ChannelKind::kTls: {
      auto [l, r] = TlsChannel::handshake(rng_);
      sender = std::move(l);
      receiver = std::move(r);
      break;
    }
    case ChannelKind::kQkd: {
      auto res = QkdChannel::establish(payload.size() + 64, rng_);
      sender = std::move(res.left);
      receiver = std::move(res.right);
      break;
    }
    case ChannelKind::kBsm: {
      // Modest beacon geometry per conversation; multiple agreement
      // rounds run until the pad covers the payload.
      BsmParams params;
      params.stream_words = 1 << 12;
      params.samples_per_party = 256;
      params.adversary_words = 1 << 11;
      auto res = BsmChannel::establish(payload.size() + 64, params, rng_);
      sender = std::move(res.left);
      receiver = std::move(res.right);
      break;
    }
  }

  const Bytes frame = sender->seal(payload);
  Bytes delivered = receiver->open(frame);

  WiretapRecord rec;
  rec.transcript = sender->transcript();
  rec.payload = blob_for_tap;
  rec.recorded_at = now_;
  wiretap_.push_back(std::move(rec));
  return delivered;
}

TransferStatus Cluster::upload(NodeId id, StoredBlob blob,
                               std::optional<ChannelKind> kind) {
  StorageNode& target = node(id);
  NodeHealth& health = health_[id];
  if (breaker_.enabled && health.quarantined(now_)) {
    ++stats_.quarantine_rejections;
    m_quarantine_rejections_->inc();
    return TransferStatus::kQuarantined;
  }
  ++health.attempts;
  if (!target.online()) {
    record_failure(id);
    return TransferStatus::kNodeOffline;
  }

  const Bytes wire = blob.serialize();
  const FaultInjector::TransferPlan plan =
      faults_.plan_transfer(id, now_, wire.size());
  const NodeProfile& prof = profiles_[id];
  const double cost =
      plan.latency_multiplier *
      (prof.latency_ms + wire.size() / (prof.bandwidth_mbps * 1000.0));
  m_transfer_ms_->observe(cost);

  if (plan.drop) {
    // The conversation times out: full cost paid, nothing lands.
    simulated_ms_ += cost;
    ++stats_.dropped;
    m_dropped_->inc();
    record_link_failure(health);
    return TransferStatus::kDropped;
  }

  Bytes delivered = converse(wire, blob, kind.value_or(channel_));
  simulated_ms_ += cost;
  stats_.uploads += 1;
  stats_.bytes_up += blob.data.size();
  m_uploads_->inc();
  m_bytes_up_->inc(blob.data.size());

  if (plan.corrupt) {
    delivered[plan.corrupt_bit / 8] ^=
        static_cast<std::uint8_t>(1u << (plan.corrupt_bit % 8));
    ++stats_.corrupted;
    m_corrupted_->inc();
    record_link_failure(health);
    // The node stores whatever frame still parses — a torn write the
    // client knows about (status) and a scrub (synchronous or a
    // background Doctor slice) can heal later.
    try {
      target.put(StoredBlob::deserialize(delivered));
    } catch (const Error&) {
      // frame unparseable: the write is simply lost
    }
    return TransferStatus::kCorrupted;
  }

  target.put(StoredBlob::deserialize(delivered));
  health.consecutive_failures = 0;
  obs_->emit(ShardWritten{blob.object, blob.shard_index, id,
                         blob.data.size()});
  return TransferStatus::kOk;
}

DownloadResult Cluster::download(NodeId id, const ObjectId& object,
                                 std::uint32_t shard,
                                 std::optional<ChannelKind> kind) {
  StorageNode& source = node(id);
  NodeHealth& health = health_[id];
  DownloadResult result;
  if (breaker_.enabled && health.quarantined(now_)) {
    ++stats_.quarantine_rejections;
    m_quarantine_rejections_->inc();
    result.status = TransferStatus::kQuarantined;
    return result;
  }
  ++health.attempts;
  if (!source.online()) {
    record_failure(id);
    result.status = TransferStatus::kNodeOffline;
    return result;
  }
  const StoredBlob* blob = source.get(object, shard);
  if (blob == nullptr) {
    // The node answered (it just lacks the shard): healthy transport.
    health.consecutive_failures = 0;
    result.status = TransferStatus::kMissing;
    return result;
  }

  const Bytes wire = blob->serialize();
  const FaultInjector::TransferPlan plan =
      faults_.plan_transfer(id, now_, wire.size());
  const NodeProfile& prof = profiles_[id];
  const double cost =
      plan.latency_multiplier *
      (prof.latency_ms + wire.size() / (prof.bandwidth_mbps * 1000.0));
  m_transfer_ms_->observe(cost);

  if (plan.drop) {
    simulated_ms_ += cost;
    ++stats_.dropped;
    m_dropped_->inc();
    record_link_failure(health);
    result.status = TransferStatus::kDropped;
    return result;
  }

  Bytes delivered = converse(wire, *blob, kind.value_or(channel_));
  simulated_ms_ += cost;
  stats_.downloads += 1;
  stats_.bytes_down += blob->data.size();
  m_downloads_->inc();
  m_bytes_down_->inc(blob->data.size());

  if (plan.corrupt) {
    delivered[plan.corrupt_bit / 8] ^=
        static_cast<std::uint8_t>(1u << (plan.corrupt_bit % 8));
    ++stats_.corrupted;
    m_corrupted_->inc();
    record_link_failure(health);
    result.status = TransferStatus::kCorrupted;
    try {
      result.blob = StoredBlob::deserialize(delivered);
    } catch (const Error&) {
      // frame unparseable: deliver status only
    }
    return result;
  }

  health.consecutive_failures = 0;
  result.status = TransferStatus::kOk;
  result.blob = StoredBlob::deserialize(delivered);
  return result;
}

Bytes Cluster::protected_transfer(ByteView payload,
                                  const StoredBlob& tap_payload,
                                  ChannelKind kind) {
  return converse(payload, tap_payload, kind);
}

void Cluster::count_refresh_traffic(std::uint64_t messages,
                                    std::uint64_t bytes) {
  stats_.refresh_messages += messages;
  stats_.refresh_bytes += bytes;
}

std::uint64_t Cluster::total_bytes_stored() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n.bytes_stored();
  return total;
}

}  // namespace aegis
