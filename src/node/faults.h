// Deterministic fault injection for the simulated cluster.
//
// The paper's §2 threat model spans decades of geo-dispersed operation:
// nodes crash and restart, WAN links drop and corrupt conversations, and
// media rots underneath the shards (Baker et al.: long-term durability is
// dominated by correlated transient faults and latent sector errors, not
// whole-node loss). The FaultInjector is the single, seeded source of all
// three fault classes so every chaos experiment replays exactly:
//
//   * transient node outages — scheduled crash/restart windows plus an
//     optional random crash process, applied as epochs advance;
//   * flaky links — per-conversation drop / corrupt-in-flight
//     probabilities and latency-spike multipliers folded into the
//     cluster's virtual-time accounting;
//   * at-rest bit-rot — bits flipped in stored shards as epochs advance.
//
// Every fault lands in a timeline log, so "same seed + same schedule =>
// identical fault sequence" is a testable property, and experiments can
// report exactly what they survived.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "node/node.h"
#include "obs/events.h"
#include "util/rng.h"

namespace aegis {

/// Per-conversation link fault process. Probabilities are evaluated
/// independently for every conversation with the node.
struct LinkFaults {
  double drop_prob = 0.0;        // conversation times out, nothing lands
  double corrupt_prob = 0.0;     // one wire bit flips in flight
  double spike_prob = 0.0;       // latency spike (congestion, reroute)
  double spike_multiplier = 8.0; // virtual-time multiplier for a spike
};

/// One entry in the fault timeline.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrash,    // node went offline (detail = restart epoch)
    kRestart,  // node came back online
    kBitRot,   // stored shard lost bits (detail = flip count)
    kDrop,     // conversation dropped in flight
    kCorrupt,  // conversation corrupted in flight (detail = bit index)
    kSpike,    // conversation hit a latency spike
  };
  Kind kind{};
  Epoch epoch = 0;
  NodeId node = 0;
  std::uint64_t detail = 0;

  bool operator==(const FaultEvent&) const = default;
};

const char* to_string(FaultEvent::Kind k);

/// Seeded source of node outages, link faults and bit-rot. Owned by
/// Cluster; quiescent until configured, so fault-free simulations pay
/// nothing and behave exactly as before.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  // ---- configuration ---------------------------------------------------

  /// Takes the node down at `start` for `duration` epochs (restart at
  /// start + duration). Windows may overlap; the node restarts when the
  /// last covering window ends.
  void schedule_outage(NodeId node, Epoch start, Epoch duration);

  /// Random transient crash process: each epoch every online node crashes
  /// with probability `crash_prob`, staying down for a uniform duration
  /// in [min_duration, max_duration] epochs.
  void set_random_outages(double crash_prob, Epoch min_duration,
                          Epoch max_duration);

  /// Installs a link fault process for every node.
  void set_link_faults(const LinkFaults& faults);

  /// Per-node override (e.g. one flaky WAN replica in a healthy fleet).
  void set_link_faults(NodeId node, const LinkFaults& faults);

  /// At-rest decay: expected bit flips per MiB of stored shard data per
  /// epoch, applied to every node (online or not — rot ignores power
  /// state) as epochs advance.
  void set_bitrot(double flips_per_mib_per_epoch);

  /// True once any fault source is configured.
  bool active() const;

  /// Mirrors every injected fault onto `bus` as a FaultInjected event
  /// (in addition to the timeline), so chaos tests can assert on
  /// observed causality. nullptr detaches. Set by Cluster.
  void bind_events(EventBus* bus) { bus_ = bus; }

  // ---- hooks driven by Cluster ------------------------------------------

  /// Applies epoch-scoped faults: ends expired outages, starts scheduled
  /// and random ones, then rots stored shards.
  void on_epoch(Epoch now, std::vector<StorageNode>& nodes);

  /// What happens to one conversation with `node` right now.
  struct TransferPlan {
    bool drop = false;
    bool corrupt = false;
    std::size_t corrupt_bit = 0;    // which wire bit flips
    double latency_multiplier = 1.0;
  };
  TransferPlan plan_transfer(NodeId node, Epoch now, std::size_t wire_bytes);

  /// Every fault injected so far, in injection order.
  const std::vector<FaultEvent>& timeline() const { return timeline_; }

 private:
  const LinkFaults& faults_for(NodeId node) const;

  /// Appends to the timeline and publishes the matching event.
  void record(FaultEvent event);

  struct Outage {
    NodeId node = 0;
    Epoch start = 0;
    Epoch end = 0;  // exclusive: node restarts at this epoch
    bool begun = false;
  };

  SimRng rng_;
  std::vector<Outage> outages_;
  double crash_prob_ = 0.0;
  Epoch crash_min_ = 1;
  Epoch crash_max_ = 1;
  LinkFaults default_link_;
  std::map<NodeId, LinkFaults> per_node_link_;
  double bitrot_per_mib_ = 0.0;
  std::vector<FaultEvent> timeline_;
  EventBus* bus_ = nullptr;
};

}  // namespace aegis
