// Typed node-to-node message bus for distributed protocols.
//
// The sharing-module protocol code (proactive refresh, redistribution)
// can run "coordinator style" for analysis, but the paper's cost
// argument (§3.2) is about real point-to-point traffic between
// shareholders. This bus routes protocol messages between nodes through
// the same protected conversations as blob transfers — every sub-share
// that crosses the (simulated) wire is sealed, counted, and recorded in
// the global wiretap for transit-HNDL analysis.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "node/cluster.h"

namespace aegis {

/// One protocol message.
struct ProtocolMessage {
  NodeId from = 0;
  NodeId to = 0;
  std::string topic;  // protocol routing key, e.g. "pss/subshare"
  Bytes payload;

  Bytes serialize() const;
  static ProtocolMessage deserialize(ByteView wire);
};

/// Delivery + accounting. Messages are queued per recipient and drained
/// by the protocol driver (synchronous rounds).
class MessageBus {
 public:
  /// `kind` selects the channel protecting each message in transit.
  MessageBus(Cluster& cluster, ChannelKind kind);

  /// Sends one message (runs a protected conversation; recorded in the
  /// cluster wiretap as a "@proto/<topic>" payload).
  void send(ProtocolMessage msg);

  /// Sends copies to every node except the sender.
  void broadcast(NodeId from, const std::string& topic, ByteView payload);

  /// Removes and returns everything queued for `recipient`.
  std::vector<ProtocolMessage> drain(NodeId recipient);

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// The cluster this bus routes over (protocol drivers reach its
  /// Observability through here).
  Cluster& cluster() { return cluster_; }

 private:
  Cluster& cluster_;
  ChannelKind kind_;
  std::map<NodeId, std::deque<ProtocolMessage>> queues_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  // `protocol.bus.*` handles mirroring messages_sent_/bytes_sent_.
  Counter* m_messages_ = nullptr;
  Counter* m_bytes_ = nullptr;
};

}  // namespace aegis
