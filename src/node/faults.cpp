#include "node/faults.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace aegis {

const char* to_string(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kRestart: return "restart";
    case FaultEvent::Kind::kBitRot: return "bit-rot";
    case FaultEvent::Kind::kDrop: return "drop";
    case FaultEvent::Kind::kCorrupt: return "corrupt";
    case FaultEvent::Kind::kSpike: return "spike";
  }
  return "?";
}

void FaultInjector::schedule_outage(NodeId node, Epoch start, Epoch duration) {
  if (duration == 0)
    throw InvalidArgument("FaultInjector: outage duration must be >= 1");
  outages_.push_back({node, start, start + duration, false});
}

void FaultInjector::set_random_outages(double crash_prob, Epoch min_duration,
                                       Epoch max_duration) {
  if (crash_prob < 0.0 || crash_prob > 1.0)
    throw InvalidArgument("FaultInjector: crash probability out of [0,1]");
  if (min_duration == 0 || min_duration > max_duration)
    throw InvalidArgument("FaultInjector: bad outage duration range");
  crash_prob_ = crash_prob;
  crash_min_ = min_duration;
  crash_max_ = max_duration;
}

namespace {
void check_link(const LinkFaults& f) {
  if (f.drop_prob < 0.0 || f.drop_prob > 1.0 || f.corrupt_prob < 0.0 ||
      f.corrupt_prob > 1.0 || f.spike_prob < 0.0 || f.spike_prob > 1.0)
    throw InvalidArgument("FaultInjector: link probability out of [0,1]");
  if (f.spike_multiplier < 1.0)
    throw InvalidArgument("FaultInjector: spike multiplier must be >= 1");
}
}  // namespace

void FaultInjector::set_link_faults(const LinkFaults& faults) {
  check_link(faults);
  default_link_ = faults;
}

void FaultInjector::set_link_faults(NodeId node, const LinkFaults& faults) {
  check_link(faults);
  per_node_link_[node] = faults;
}

void FaultInjector::set_bitrot(double flips_per_mib_per_epoch) {
  if (flips_per_mib_per_epoch < 0.0)
    throw InvalidArgument("FaultInjector: negative bit-rot rate");
  bitrot_per_mib_ = flips_per_mib_per_epoch;
}

bool FaultInjector::active() const {
  auto live = [](const LinkFaults& f) {
    return f.drop_prob > 0.0 || f.corrupt_prob > 0.0 || f.spike_prob > 0.0;
  };
  if (!outages_.empty() || crash_prob_ > 0.0 || bitrot_per_mib_ > 0.0 ||
      live(default_link_))
    return true;
  return std::any_of(per_node_link_.begin(), per_node_link_.end(),
                     [&](const auto& e) { return live(e.second); });
}

const LinkFaults& FaultInjector::faults_for(NodeId node) const {
  const auto it = per_node_link_.find(node);
  return it == per_node_link_.end() ? default_link_ : it->second;
}

void FaultInjector::record(FaultEvent event) {
  if (bus_ != nullptr)
    bus_->publish(event.epoch,
                  FaultInjected{to_string(event.kind), event.node,
                                event.detail});
  timeline_.push_back(event);
}

void FaultInjector::on_epoch(Epoch now, std::vector<StorageNode>& nodes) {
  // 1. Restarts: an outage window ended and no other window still covers
  //    the node. Expired windows are dropped afterwards.
  for (const Outage& o : outages_) {
    if (!o.begun || o.end > now || o.node >= nodes.size()) continue;
    const bool still_down = std::any_of(
        outages_.begin(), outages_.end(), [&](const Outage& other) {
          return other.begun && other.node == o.node && other.end > now;
        });
    if (still_down || nodes[o.node].online()) continue;
    nodes[o.node].set_online(true);
    record({FaultEvent::Kind::kRestart, now, o.node, 0});
  }
  outages_.erase(std::remove_if(outages_.begin(), outages_.end(),
                                [&](const Outage& o) {
                                  return o.begun && o.end <= now;
                                }),
                 outages_.end());

  // 2. Scheduled crashes reaching their window.
  for (Outage& o : outages_) {
    if (o.begun || o.start > now || o.end <= now || o.node >= nodes.size())
      continue;
    o.begun = true;
    if (nodes[o.node].online()) {
      nodes[o.node].set_online(false);
      record({FaultEvent::Kind::kCrash, now, o.node, o.end});
    }
  }

  // 3. Random transient crashes.
  if (crash_prob_ > 0.0) {
    for (NodeId id = 0; id < nodes.size(); ++id) {
      if (!nodes[id].online() || !rng_.chance(crash_prob_)) continue;
      const Epoch duration =
          crash_min_ + static_cast<Epoch>(rng_.uniform(crash_max_ -
                                                       crash_min_ + 1));
      outages_.push_back({id, now, now + duration, true});
      nodes[id].set_online(false);
      record({FaultEvent::Kind::kCrash, now, id, now + duration});
    }
  }

  // 4. At-rest bit-rot, power state notwithstanding.
  if (bitrot_per_mib_ > 0.0) {
    for (NodeId id = 0; id < nodes.size(); ++id) {
      for (StoredBlob* blob : nodes[id].all_blobs_mut()) {
        if (blob->data.empty()) continue;
        const double expected =
            bitrot_per_mib_ * static_cast<double>(blob->data.size()) /
            (1024.0 * 1024.0);
        std::uint64_t flips = static_cast<std::uint64_t>(expected);
        if (rng_.chance(expected - std::floor(expected))) ++flips;
        if (flips == 0) continue;
        for (std::uint64_t f = 0; f < flips; ++f) {
          const std::uint64_t bit = rng_.uniform(blob->data.size() * 8);
          blob->data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
        record({FaultEvent::Kind::kBitRot, now, id, flips});
      }
    }
  }
}

FaultInjector::TransferPlan FaultInjector::plan_transfer(
    NodeId node, Epoch now, std::size_t wire_bytes) {
  TransferPlan plan;
  const LinkFaults& f = faults_for(node);
  if (f.drop_prob == 0.0 && f.corrupt_prob == 0.0 && f.spike_prob == 0.0)
    return plan;

  // Fixed draw order keeps the rng stream (and so the whole timeline)
  // independent of which faults are configured at what probability.
  const bool drop = rng_.chance(f.drop_prob);
  const bool corrupt = rng_.chance(f.corrupt_prob);
  const bool spike = rng_.chance(f.spike_prob);

  if (spike) {
    plan.latency_multiplier = f.spike_multiplier;
    record({FaultEvent::Kind::kSpike, now, node, 0});
  }
  if (drop) {
    plan.drop = true;
    record({FaultEvent::Kind::kDrop, now, node, 0});
    return plan;  // nothing arrives; corruption is moot
  }
  if (corrupt && wire_bytes > 0) {
    plan.corrupt = true;
    plan.corrupt_bit = rng_.uniform(wire_bytes * 8);
    record({FaultEvent::Kind::kCorrupt, now, node, plan.corrupt_bit});
  }
  return plan;
}

}  // namespace aegis
