#include "node/node.h"

#include <type_traits>

#include "util/serde.h"

namespace aegis {

// The wire format narrows stored_at through ByteWriter::u32, and
// proactive-refresh semantics depend on exact epoch round-trips. If Epoch
// ever widens, widen the wire field (and bump the blob format) with it.
static_assert(std::is_unsigned_v<Epoch> &&
                  sizeof(Epoch) <= sizeof(std::uint32_t),
              "StoredBlob stores stored_at as a u32 on the wire; a wider "
              "Epoch would silently truncate");

Bytes StoredBlob::serialize() const {
  ByteWriter w;
  w.str(object);
  w.u32(shard_index);
  w.u32(generation);
  w.u32(stored_at);
  w.bytes(data);
  return std::move(w).take();
}

StoredBlob StoredBlob::deserialize(ByteView wire) {
  ByteReader r(wire);
  StoredBlob b;
  b.object = r.str();
  b.shard_index = r.u32();
  b.generation = r.u32();
  b.stored_at = r.u32();
  b.data = r.bytes();
  r.expect_done();
  return b;
}

std::string StorageNode::key(const ObjectId& object, std::uint32_t shard) {
  return object + "#" + std::to_string(shard);
}

void StorageNode::put(StoredBlob blob) {
  const std::string k = key(blob.object, blob.shard_index);
  const auto it = blobs_.find(k);
  if (it != blobs_.end()) bytes_stored_ -= it->second.data.size();
  bytes_stored_ += blob.data.size();
  blobs_[k] = std::move(blob);
}

const StoredBlob* StorageNode::get(const ObjectId& object,
                                   std::uint32_t shard) const {
  if (!online_) return nullptr;
  const auto it = blobs_.find(key(object, shard));
  return it == blobs_.end() ? nullptr : &it->second;
}

void StorageNode::erase(const ObjectId& object, std::uint32_t shard) {
  const auto it = blobs_.find(key(object, shard));
  if (it != blobs_.end()) {
    bytes_stored_ -= it->second.data.size();
    blobs_.erase(it);
  }
}

bool StorageNode::rename(const ObjectId& from_object, std::uint32_t shard,
                         const ObjectId& to_object) {
  const auto it = blobs_.find(key(from_object, shard));
  if (it == blobs_.end()) return false;
  StoredBlob blob = std::move(it->second);
  bytes_stored_ -= blob.data.size();
  blobs_.erase(it);
  blob.object = to_object;
  put(std::move(blob));
  return true;
}

void StorageNode::erase_object(const ObjectId& object) {
  for (auto it = blobs_.begin(); it != blobs_.end();) {
    if (it->second.object == object) {
      bytes_stored_ -= it->second.data.size();
      it = blobs_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<const StoredBlob*> StorageNode::all_blobs() const {
  std::vector<const StoredBlob*> out;
  out.reserve(blobs_.size());
  for (const auto& [k, b] : blobs_) out.push_back(&b);
  return out;
}

std::vector<StoredBlob*> StorageNode::all_blobs_mut() {
  std::vector<StoredBlob*> out;
  out.reserve(blobs_.size());
  for (auto& [k, b] : blobs_) out.push_back(&b);
  return out;
}

}  // namespace aegis
