// The doctor: continuous background scrubbing plus a threshold-rule
// alert engine — the archive's always-on health loop.
//
// Pergamum's argument is that archival media decays silently: nobody
// reads a cold object for years, so latent damage (bit-rot, torn
// writes, a node that quietly lost a disk) accumulates until the day a
// read finally needs more redundancy than survives. The only defense is
// continuous verification — touch every object on a cycle, repair what
// the audit surfaces, and *alert* when the rates say decay is outrunning
// repair.
//
// The Doctor is built on the MigrationEngine pattern: an epoch-sliced
// incremental job with a durable cursor (DoctorState serde), batch and
// bandwidth-fraction policy knobs (scrub_batch / scrub_bandwidth_frac,
// charged to the virtual clock), resumable on a fresh Archive instance.
// One step() verifies up to scrub_batch objects:
//
//        audit (proof-of-possession, no payload transfer)
//          │ clean ───────────────────────────► next object
//          ▼ damaged
//        repair (rebuild damaged shards from survivors)
//          ▼
//        re-audit ── clean ──► healed (leaves the degraded set)
//          │ still damaged / UnrecoverableError
//          ▼
//        degraded set (gauge archive.doctor.degraded_objects;
//        retried every pass until healed or the object is gone)
//
// The same per-object core backs the synchronous Archive::scrub(), so
// both entry points share metrics (archive.scrub.*), write identical
// per-object audit-ledger records, and emit ScrubCompleted events with
// identical fields.
//
// After each slice the AlertEngine evaluates its threshold rules
// against a metrics snapshot and emits AlertRaised / AlertCleared
// events (which the audit ledger records). Rules watch either a level
// (a gauge's current value) or a delta (a counter's growth since the
// previous evaluation — a rate per slice).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/reports.h"

namespace aegis {

class Counter;
class Gauge;
class Histogram;
class Observability;

/// One threshold rule over the metrics snapshot.
struct AlertRule {
  /// How `value` is derived from the watched metrics each evaluation.
  enum class Mode : std::uint8_t {
    kLevel = 0,  // current summed value (gauges, set sizes)
    kDelta = 1,  // growth since the previous evaluation (counter rates)
  };
  std::string name;                  // e.g. "scrub-corruption"
  std::vector<std::string> metrics;  // summed before comparison
  Mode mode = Mode::kLevel;
  double threshold = 1.0;  // fires while value >= threshold
};

/// Evaluates rules against snapshots, tracking raise/clear edges.
/// Deterministic: evaluation order is rule order, values come from the
/// virtual-time-driven metrics only.
class AlertEngine {
 public:
  void add_rule(AlertRule rule);

  /// The doctor's stock rule set: under-replication (degraded objects
  /// outstanding), breaker-open rate, retry-exhaustion rate, and
  /// scrub-found-corruption rate.
  static std::vector<AlertRule> default_rules();

  /// Evaluates every rule against `snap`; emits AlertRaised on a
  /// below→above threshold edge and AlertCleared on the way back down.
  /// Returns (raised, cleared) counts for this evaluation.
  std::pair<unsigned, unsigned> evaluate(const MetricsSnapshot& snap,
                                         Observability& obs);

  /// True while the named rule is above threshold.
  bool active(const std::string& rule) const;
  std::size_t rule_count() const { return rules_.size(); }

 private:
  struct RuleState {
    AlertRule rule;
    bool firing = false;
    double last_sum = 0;  // previous raw sum, for kDelta
    bool primed = false;  // first evaluation of a kDelta rule only arms it
  };
  std::vector<RuleState> rules_;
};

/// The doctor's durable cursor — serialize next to the catalog export
/// and a fresh Archive + Doctor pair resumes the scrub cycle where the
/// dead one stopped. Plain data on purpose, like MigrationState.
struct DoctorState {
  ObjectId cursor;  // last object id examined this pass; "" = pass start
  std::uint64_t passes = 0;           // completed full sweeps
  std::uint64_t objects_scanned = 0;  // cumulative, all passes
  std::uint64_t shards_repaired = 0;  // cumulative
  std::uint64_t unrecoverable = 0;    // cumulative damaged-beyond-repair
  // Current-pass accumulators (become the ScrubCompleted payload when
  // the cursor wraps).
  unsigned pass_objects = 0;
  unsigned pass_repaired = 0;
  unsigned pass_unrecoverable = 0;

  Bytes serialize() const;
  static DoctorState deserialize(ByteView wire);
};

/// Outcome of one Doctor::step() slice.
struct DoctorStepReport : OpReport {
  unsigned scanned = 0;        // objects examined this slice
  unsigned damaged = 0;        // objects whose audit surfaced damage
  unsigned shards_repaired = 0;
  unsigned unrecoverable = 0;  // objects repair could not recover
  unsigned alerts_raised = 0;
  unsigned alerts_cleared = 0;
  bool pass_completed = false;  // the cursor wrapped this slice
  std::string to_json() const;
};

/// Continuous scrub driver over one Archive. Typical background loop:
///
///   Doctor doc(archive);
///   while (running) {
///     doc.step();                          // scrub_batch objects
///     save(doc.checkpoint());              // durable cursor
///     cluster.advance_epoch();             // foreground interleaves
///   }
///
/// step() never throws for per-object damage (an unrecoverable object
/// is counted, alerted on, and retried next pass); only programming
/// errors (bad state) escape.
class Doctor {
 public:
  /// Fresh doctor with the stock alert rules.
  explicit Doctor(Archive& archive);

  /// Resumes from a checkpointed cursor on a (possibly fresh) Archive.
  Doctor(Archive& archive, DoctorState state);

  /// One slice: verify/repair up to policy.scrub_batch objects from the
  /// cursor, then evaluate alert rules. Runs as an `archive.doctor` op.
  DoctorStepReport step();

  /// The shared per-object verify → repair → re-audit core. Used by
  /// both Doctor::step and the synchronous Archive::scrub so the two
  /// paths cannot drift. Updates archive.scrub.* metrics and appends
  /// the per-object ledger record. Never throws for damage.
  struct ObjectOutcome {
    bool damaged = false;        // the audit surfaced a problem
    bool healed = false;         // repair ran and the re-audit is clean
    bool unrecoverable = false;  // repair threw UnrecoverableError
    unsigned shards_repaired = 0;
  };
  static ObjectOutcome scrub_object(Archive& archive, const ObjectId& id);

  const DoctorState& state() const { return state_; }
  Bytes checkpoint() const { return state_.serialize(); }
  AlertEngine& alerts() { return alerts_; }
  const AlertEngine& alerts() const { return alerts_; }

  /// Objects currently known-damaged (found damaged and not yet healed).
  std::size_t degraded_count() const { return degraded_.size(); }

 private:
  void bind_metrics();
  void throttle(double spent_ms);

  Archive& archive_;
  DoctorState state_;
  AlertEngine alerts_;
  std::set<ObjectId> degraded_;

  Counter* m_steps_ = nullptr;        // archive.doctor.steps
  Counter* m_passes_ = nullptr;       // archive.doctor.passes
  Counter* m_throttle_ms_ = nullptr;  // archive.doctor.throttle_ms
  Gauge* m_degraded_ = nullptr;       // archive.doctor.degraded_objects
  Histogram* m_object_ms_ = nullptr;  // archive.doctor.object_ms
};

}  // namespace aegis
