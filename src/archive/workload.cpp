#include "archive/workload.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace aegis {

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.object_count == 0)
    throw InvalidArgument("WorkloadGenerator: empty workload");
  if (config.min_size > config.max_size)
    throw InvalidArgument("WorkloadGenerator: min_size > max_size");
}

unsigned WorkloadGenerator::remaining() const {
  return produced_ >= config_.object_count
             ? 0
             : config_.object_count - produced_;
}

std::size_t WorkloadGenerator::sample_size() {
  // Log-normal via Box–Muller on the simulation RNG.
  const double u1 = std::max(rng_.uniform_double(), 1e-12);
  const double u2 = rng_.uniform_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  const double size = config_.median_size *
                      std::exp(config_.size_sigma * z);
  return std::clamp(static_cast<std::size_t>(size), config_.min_size,
                    config_.max_size);
}

Bytes WorkloadGenerator::structured_content(std::size_t size) {
  // Text-like content: words from a small vocabulary with punctuation —
  // measurably low entropy per byte, like real records.
  static const char* kWords[] = {"patient", "record", "archive", "ledger",
                                 "entry",   "signed", "sealed",  "dated",
                                 "annual",  "report", "account", "copy"};
  Bytes out;
  out.reserve(size);
  while (out.size() < size) {
    const char* w = kWords[rng_.uniform(12)];
    while (*w && out.size() < size) out.push_back(*w++);
    if (out.size() < size)
      out.push_back(rng_.chance(0.1) ? '\n' : ' ');
  }
  return out;
}

WorkloadItem WorkloadGenerator::next() {
  WorkloadItem item;
  item.id = "wl-" + std::to_string(produced_);
  const std::size_t size = sample_size();
  item.structured = rng_.chance(config_.text_fraction);
  item.data = item.structured ? structured_content(size) : rng_.bytes(size);
  ++produced_;
  bytes_generated_ += item.data.size();
  return item;
}

}  // namespace aegis
