// Key management for encrypted archival policies.
//
// Two custody models (§4's key-management discussion, HasDPSS row of
// Table 1):
//   * client vault — keys live only with the data owner. Immune to node
//     corruption, but a single point of loss and an operational burden
//     over decades.
//   * VSS on cluster — each object key is Pedersen-VSS-shared across the
//     storage nodes with threshold t_v and proactively refreshed. The
//     archive becomes self-contained; the mobile adversary must collect
//     t_v key shares *within one refresh generation* to steal a key.
//
// Keys are 256-bit scalars (they key AES-256/ChaCha via HKDF), so the
// scalar VSS machinery applies directly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "node/node.h"
#include "sharing/vss.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace aegis {

/// Per-object key material: one 32-byte master from which per-layer
/// cipher keys and IVs are derived with HKDF.
struct ObjectKey {
  SecureBytes master;  // 32 bytes

  /// Derives the key for cascade layer `layer` of cipher scheme `id`.
  SecureBytes layer_key(SchemeId id, unsigned layer) const;
  /// Derives the IV for that layer.
  Bytes layer_iv(SchemeId id, unsigned layer) const;
};

/// Key custody + VSS sharing state for one archive.
class KeyVault {
 public:
  explicit KeyVault(Rng& rng) : rng_(rng) {}

  /// Creates and records a fresh key for `object`.
  const ObjectKey& create(const ObjectId& object);

  /// nullptr if unknown.
  const ObjectKey* find(const ObjectId& object) const;

  void erase(const ObjectId& object) { keys_.erase(object); }

  /// Restores a key from a catalog backup (see Archive::import_catalog).
  void restore(const ObjectId& object, ByteView master);

  std::size_t size() const { return keys_.size(); }

  // ---- VSS custody --------------------------------------------------
  // When keys live on-cluster, each key is dealt as a Pedersen VSS among
  // n virtual key-holders (the storage nodes). The vault retains the
  // dealings so the simulation can refresh them and the analyzer can
  // reason about share theft.

  struct SharedKey {
    VssDealing dealing;
    std::uint32_t generation = 0;
  };

  /// Shares every key with threshold t among n holders.
  void share_all(unsigned t, unsigned n);

  /// Shares one key (used as objects arrive; existing dealings and their
  /// generations are untouched).
  void share_one(const ObjectId& object, unsigned t, unsigned n);

  /// Proactively refreshes every shared key (bumps generations).
  void refresh_shared(unsigned t, unsigned n);

  const std::map<ObjectId, SharedKey>& shared() const { return shared_; }
  bool is_shared() const { return !shared_.empty(); }

  /// Reconstructs a key from >= t harvested shares — what the adversary
  /// does after reaching the threshold (used by the analyzer to
  /// demonstrate actual key recovery, not just claim it).
  static SecureBytes reconstruct_key(const std::vector<VssShare>& shares,
                                     unsigned t);

 private:
  Rng& rng_;
  std::map<ObjectId, ObjectKey> keys_;
  std::map<ObjectId, SharedKey> shared_;
};

}  // namespace aegis
