#include "archive/keyvault.h"

#include "crypto/cipher.h"
#include "crypto/hmac.h"
#include "sharing/proactive.h"
#include "util/error.h"

namespace aegis {

SecureBytes ObjectKey::layer_key(SchemeId id, unsigned layer) const {
  const std::string info =
      "aegis/key/" + scheme_name(id) + "/" + std::to_string(layer);
  const std::size_t len = cipher_params(id).key_size;
  const Bytes okm = hkdf(ByteView(master.data(), master.size()), {},
                         to_bytes(info), len == 0 ? 32 : len);
  return to_secure(okm);
}

Bytes ObjectKey::layer_iv(SchemeId id, unsigned layer) const {
  const std::string info =
      "aegis/iv/" + scheme_name(id) + "/" + std::to_string(layer);
  const std::size_t len = cipher_params(id).iv_size;
  if (len == 0) return {};
  return hkdf(ByteView(master.data(), master.size()), {}, to_bytes(info),
              len);
}

const ObjectKey& KeyVault::create(const ObjectId& object) {
  ObjectKey k;
  k.master = rng_.secure_bytes(32);
  auto [it, inserted] = keys_.insert_or_assign(object, std::move(k));
  (void)inserted;
  return it->second;
}

void KeyVault::restore(const ObjectId& object, ByteView master) {
  ObjectKey k;
  k.master = to_secure(master);
  keys_.insert_or_assign(object, std::move(k));
}

const ObjectKey* KeyVault::find(const ObjectId& object) const {
  const auto it = keys_.find(object);
  return it == keys_.end() ? nullptr : &it->second;
}

namespace {
// A 32-byte key maps to a scalar below the group order by reduction; the
// vault stores the reduced form so share-and-reconstruct round-trips.
U256 key_to_scalar(const SecureBytes& master) {
  return ec::Secp256k1::instance().scalar_from_hash(
      Bytes(master.begin(), master.end()));
}
}  // namespace

void KeyVault::share_one(const ObjectId& object, unsigned t, unsigned n) {
  const auto it = keys_.find(object);
  if (it == keys_.end())
    throw InvalidArgument("KeyVault::share_one: unknown object " + object);
  ObjectKey& key = it->second;

  // Canonicalize the master to its scalar form so reconstruction from
  // shares yields exactly the bytes the cipher layer uses.
  const U256 scalar = key_to_scalar(key.master);
  key.master = to_secure(scalar.to_bytes_be());

  SharedKey sk;
  sk.dealing = pedersen_deal(scalar, t, n, rng_);
  sk.generation = 0;
  shared_[object] = std::move(sk);
}

void KeyVault::share_all(unsigned t, unsigned n) {
  for (const auto& entry : keys_) share_one(entry.first, t, n);
}

void KeyVault::refresh_shared(unsigned t, unsigned n) {
  for (auto& [object, sk] : shared_) {
    auto result = proactive_refresh_vss(sk.dealing, t, n, rng_);
    sk.dealing.shares = std::move(result.shares);
    sk.dealing.commitments = std::move(result.commitments);
    ++sk.generation;
  }
}

SecureBytes KeyVault::reconstruct_key(const std::vector<VssShare>& shares,
                                      unsigned t) {
  const U256 scalar = vss_recover(shares, t);
  return to_secure(scalar.to_bytes_be());
}

}  // namespace aegis
