#include "archive/obsolescence.h"

#include "crypto/chacha20.h"
#include "util/error.h"

namespace aegis {

TimelineResult run_timeline(const ArchivalPolicy& policy,
                            const TimelineConfig& config) {
  const unsigned nodes =
      config.node_count == 0 ? policy.n : config.node_count;

  Cluster cluster(nodes, policy.channel, config.seed);
  SchemeRegistry registry;
  for (const auto& [scheme, epoch] : config.breaks)
    registry.set_break_epoch(scheme, epoch);

  ChaChaRng crypto_rng(config.seed ^ 0xa55aa55aULL);
  SimRng workload_rng(config.seed ^ 0x5aa5ULL);
  TimestampAuthority tsa(crypto_rng);

  Archive archive(cluster, policy, registry, tsa, crypto_rng);
  MobileAdversary adversary(config.adversary_budget, config.strategy,
                            config.seed ^ 0xfeedULL);

  // Ingest the workload at epoch 0 — archival data arrives early and
  // then sits for decades, which is the whole point.
  for (unsigned i = 0; i < config.object_count; ++i) {
    archive.put("obj-" + std::to_string(i),
                workload_rng.bytes(config.object_size));
  }

  for (unsigned e = 0; e < config.epochs; ++e) {
    adversary.corrupt_epoch(cluster);
    if (policy.proactive_refresh) archive.refresh();
    cluster.advance_epoch();
  }

  TimelineResult r;
  r.policy_name = policy.name;
  r.epochs_run = cluster.now();
  r.storage = archive.storage_report();
  r.network = cluster.stats();
  r.adversary_bytes = adversary.bytes_harvested();
  r.nodes_ever_corrupted = adversary.nodes_ever_corrupted();

  const ExposureAnalyzer analyzer(archive, registry);
  r.exposure =
      analyzer.analyze(adversary.harvest(), cluster.wiretap(), cluster.now());

  for (unsigned i = 0; i < config.object_count; ++i) {
    try {
      (void)archive.get("obj-" + std::to_string(i));
    } catch (const Error&) {
      r.all_objects_retrievable = false;
    }
  }
  return r;
}

}  // namespace aegis
