// Archival policies: the encoding + protocol choices that distinguish the
// systems in the paper's Table 1, expressed as one configuration type.
//
// A policy decides, for data at rest: the secrecy/availability encoding
// and its geometry; for keys: where they live; for integrity: hash chains
// vs. Pedersen-commitment chains; for data in transit: the channel; and
// whether the shares are proactively refreshed. The named presets
// reproduce the systems the paper surveys.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/scheme.h"
#include "node/cluster.h"

namespace aegis {

/// The at-rest encodings of Figure 1.
enum class EncodingKind : std::uint8_t {
  kReplication,     // n copies, no secrecy
  kErasure,         // RS(k, n), no secrecy
  kEncryptErasure,  // Enc under a vaulted key, then RS (cloud baseline)
  kCascade,         // layered ciphers, then RS (ArchiveSafeLT)
  kAontRs,          // all-or-nothing transform + RS (AONT-RS/Cleversafe)
  kEntropicErasure, // entropically-secure XOR cipher, then RS
  kShamir,          // Shamir (t, n) (POTSHARDS)
  kPacked,          // packed secret sharing (t, k, n)
  kLrss,            // leakage-resilient sharing (t, n)
};

const char* to_string(EncodingKind k);

/// Where the decryption keys of encrypted encodings live.
enum class KeyCustody : std::uint8_t {
  kClientVault,   // keys never leave the data owner (cloud default)
  kVssOnCluster,  // keys Pedersen-VSS-shared across the nodes (HasDPSS)
};

/// Full policy configuration.
struct ArchivalPolicy {
  std::string name = "custom";
  EncodingKind encoding = EncodingKind::kEncryptErasure;

  // Geometry. For kReplication: n copies. For erasure-based encodings:
  // RS(k, n). For sharing encodings: threshold t out of n (packed adds
  // pack factor k with recovery threshold t + k).
  unsigned n = 5;
  unsigned k = 3;         // erasure data shards / packed pack factor
  unsigned t = 3;         // secrecy threshold for sharing encodings
  unsigned lrss_leak_bits = 128;

  // Ciphers for encrypted encodings. Single entry for kEncryptErasure /
  // kAontRs; the full (inner-to-outer) stack for kCascade.
  std::vector<SchemeId> ciphers = {SchemeId::kAes256Ctr};

  KeyCustody key_custody = KeyCustody::kClientVault;
  unsigned vault_threshold = 3;  // VSS threshold when keys live on-cluster

  // Integrity: Pedersen-commitment timestamp chains (LINCOS) vs. plain
  // hash-stamped chains.
  bool pedersen_timestamps = false;

  // Proactive refresh of at-rest shares each epoch (sharing encodings
  // and VSS-vaulted keys only — ciphertext cannot be "refreshed").
  bool proactive_refresh = false;

  ChannelKind channel = ChannelKind::kTls;

  // Client I/O robustness: transient transfer faults (drops, in-flight
  // corruption) are retried up to io_retries extra attempts per shard,
  // with exponential backoff (backoff_base_ms * 2^retry) charged to the
  // cluster's virtual clock. Outages and quarantines are NOT retried —
  // they span epochs; scrub()/repair() heal them instead.
  unsigned io_retries = 3;
  double backoff_base_ms = 5.0;

  // Migration engine (src/archive/migration.h) pacing. migrate_batch is
  // the number of objects one MigrationEngine::step() commits before
  // yielding (the checkpoint granularity). migrate_bandwidth_frac models
  // §3.2's reserved-foreground-capacity penalty: the fraction of the
  // cluster's bandwidth migration may consume — 0.5 means every byte the
  // engine moves is charged twice its nominal virtual time, exactly the
  // paper's ×2 reserve multiplier. 1.0 = unthrottled.
  unsigned migrate_batch = 16;
  double migrate_bandwidth_frac = 1.0;

  // Doctor (src/archive/doctor.h) pacing, mirroring the migration
  // knobs: scrub_batch objects are verified (and repaired if damaged)
  // per Doctor::step() slice, and scrub_bandwidth_frac is the fraction
  // of cluster bandwidth continuous scrubbing may consume — repair I/O
  // beyond that fraction is charged to the virtual clock as stretch
  // (Pergamum's idle-bandwidth scrubbing made explicit). 1.0 =
  // unthrottled.
  unsigned scrub_batch = 16;
  double scrub_bandwidth_frac = 1.0;

  // Worker threads for the encode/decode compute pipeline (RS parity
  // rows, share-column arithmetic). 0 or 1 = single-threaded on the
  // calling thread — the fully deterministic default. Results are
  // bit-identical for every value; only wall-clock changes. Cluster I/O
  // always stays on the calling thread regardless (the fault timeline
  // must replay deterministically).
  unsigned encode_workers = 1;

  /// Threshold an adversary must reach to reconstruct content from
  /// at-rest material alone: shares-needed for sharing encodings,
  /// data-shards-needed for erasure encodings, 1 for replication.
  unsigned reconstruction_threshold() const;

  /// Nominal storage blowup of the encoding (stored / logical).
  double nominal_overhead() const;

  /// Throws InvalidArgument on inconsistent geometry.
  void validate() const;

  // ---- Presets: the systems of Table 1 ------------------------------
  static ArchivalPolicy CloudBaseline();   // AWS/Azure/GCP: AES + RS + TLS
  static ArchivalPolicy ArchiveSafeLT();   // cascade ciphers + re-wrap
  static ArchivalPolicy AontRs();          // Cleversafe dispersal
  static ArchivalPolicy Potshards();       // Shamir to independent nodes
  static ArchivalPolicy VsrArchive();      // Shamir + redistribution/refresh
  static ArchivalPolicy Lincos();          // Shamir + QKD + Pedersen stamps
  static ArchivalPolicy HasDpss();         // enc data + VSS'd keys, refresh
  static ArchivalPolicy PasisReplication();// PASIS low-cost variant
  static ArchivalPolicy PasisSharing();    // PASIS high-security variant

  // ---- Figure 1 encoding points (pure encodings, default transport) --
  static ArchivalPolicy FigReplication();
  static ArchivalPolicy FigErasure();
  static ArchivalPolicy FigEncryption();
  static ArchivalPolicy FigEntropic();
  static ArchivalPolicy FigShamir();
  static ArchivalPolicy FigPacked();
  static ArchivalPolicy FigLrss();
};

}  // namespace aegis
