// The obsolescence timeline simulator: the paper's whole threat story in
// one loop.
//
// Epoch by epoch: the archive serves its policy (refreshing if it says
// to), the mobile adversary corrupts up to f nodes and harvests, the
// passive eavesdropper's wiretap accumulates, and the scheduled
// cryptanalytic breaks land. At the end the exposure analyzer decides,
// per object, whether the adversary holds the content — the experiment
// behind bench/hndl_timeline and the examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "archive/analyzer.h"
#include "archive/archive.h"
#include "node/adversary.h"

namespace aegis {

/// Timeline configuration shared across policies for fair comparison.
struct TimelineConfig {
  unsigned epochs = 40;            // ~decades at one refresh per epoch
  unsigned node_count = 0;         // 0 = policy.n
  unsigned object_count = 10;
  std::size_t object_size = 2048;
  unsigned adversary_budget = 1;   // f corruptions per epoch
  CorruptionStrategy strategy = CorruptionStrategy::kSweep;
  std::vector<std::pair<SchemeId, Epoch>> breaks;  // scheduled cryptanalysis
  std::uint64_t seed = 1;
};

/// Outcome of one policy's run.
struct TimelineResult {
  std::string policy_name;
  ExposureReport exposure;
  StorageReport storage;
  NetworkStats network;
  std::uint64_t adversary_bytes = 0;
  std::size_t nodes_ever_corrupted = 0;
  Epoch epochs_run = 0;
  bool all_objects_retrievable = true;  // honest availability at the end
};

/// Runs one policy through the timeline. Deterministic given the config.
TimelineResult run_timeline(const ArchivalPolicy& policy,
                            const TimelineConfig& config);

}  // namespace aegis
