// All-Or-Nothing Transform packaging, per the paper's §3.2 description of
// AONT-RS (Resch & Plank, FAST'11 — the Cleversafe scheme).
//
//   c_i     = m_i xor Enc_k(i+1)          for i in 1..s
//   c_{s+1} = k xor h(c_1 || ... || c_s)
//
// The key k is random *per package* and never stored anywhere: whoever
// holds the complete package recomputes it for free, and whoever misses
// even one block learns (computationally) nothing. Dispersing the package
// with systematic Reed-Solomon yields keyless encrypted dispersal — low
// cost, good availability, but: (a) any k-of-n shards rebuild the whole
// package, and (b) a broken Enc or h "gives the attacker the key", so a
// single harvested shard becomes plaintext after a break. Both failure
// modes are what the obsolescence analyzer charges this encoding for.
#pragma once

#include "crypto/scheme.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace aegis {

/// Applies the AONT: returns the self-contained package.
/// `cipher` must be a keyed stream/block cipher scheme (not the OTP).
Bytes aont_package(ByteView data, SchemeId cipher, Rng& rng);

/// Inverts the AONT. Throws ParseError on malformed packages and
/// IntegrityError if the embedded consistency check fails.
Bytes aont_unpackage(ByteView package);

/// The cipher scheme a package was built with (for break analysis).
SchemeId aont_package_cipher(ByteView package);

/// Package size for a given input size (for cost accounting).
std::size_t aont_package_size(std::size_t data_size);

}  // namespace aegis
