// PASIS-style multi-policy archive: "there is no one-size-fits-all
// approach to secure archival" (§4, quoting the PASIS project) made into
// an engine. Each sensitivity class maps to its own ArchivalPolicy —
// public records ride cheap erasure coding, top-secret material rides
// refreshed secret sharing — and one facade routes objects to the right
// sub-archive over a shared cluster.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>

#include "archive/archive.h"

namespace aegis {

/// Data-sensitivity classes with escalating protection defaults.
enum class Sensitivity : std::uint8_t {
  kPublic = 0,    // availability only: erasure coding
  kInternal,      // cloud baseline: AES + erasure
  kSecret,        // AONT-RS dispersal (keyless, computational)
  kTopSecret,     // proactively refreshed Shamir (ITS)
};

const char* to_string(Sensitivity s);
constexpr unsigned kSensitivityLevels = 4;

/// One archive facade over per-sensitivity sub-archives.
class MultiArchive {
 public:
  /// Installs the default policy ladder (override with set_policy before
  /// the first put of that class).
  MultiArchive(Cluster& cluster, const SchemeRegistry& registry,
               TimestampAuthority& tsa, Rng& rng);

  /// Replaces the policy for a class. Throws InvalidArgument once
  /// objects of that class exist (their encoding is already on disk).
  void set_policy(Sensitivity s, ArchivalPolicy policy);

  const ArchivalPolicy& policy(Sensitivity s) const;

  /// Stores under the class's policy. Object ids are global across
  /// classes (duplicates rejected).
  void put(const ObjectId& id, ByteView data, Sensitivity s);

  /// Retrieves regardless of class.
  Bytes get(const ObjectId& id);

  /// The class an object was stored under.
  Sensitivity sensitivity(const ObjectId& id) const;

  /// Refreshes every sub-archive whose policy asks for it.
  void refresh();

  /// Verify across classes.
  VerifyReport verify(const ObjectId& id);

  /// Aggregate storage accounting, and the per-class split (the
  /// "Low-High" cost row PASIS gets in Table 1).
  StorageReport storage_report() const;
  StorageReport storage_report(Sensitivity s) const;

  Archive& archive_for(Sensitivity s);

 private:
  std::array<std::unique_ptr<Archive>, kSensitivityLevels> archives_;
  std::array<bool, kSensitivityLevels> used_{};
  std::map<ObjectId, Sensitivity> index_;

  Cluster& cluster_;
  const SchemeRegistry& registry_;
  TimestampAuthority& tsa_;
  Rng& rng_;
};

}  // namespace aegis
