#include "archive/aont.h"

#include "crypto/cipher.h"
#include "crypto/sha256.h"
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

namespace {

// Keystream pad for block index i (1-based): the cipher keyed with the
// package key, IV derived from the block index — the "Enc_k(i+1)" of the
// paper, generalized over our cipher facade.
Bytes block_pad(SchemeId cipher, ByteView key, std::uint64_t index,
                std::size_t len) {
  const std::size_t iv_len = cipher_params(cipher).iv_size;
  Bytes iv(iv_len, 0);
  for (std::size_t b = 0; b < 8 && b < iv_len; ++b)
    iv[iv_len - 1 - b] = static_cast<std::uint8_t>(index >> (8 * b));
  const Bytes zeros(len, 0);
  return cipher_apply(cipher, key, iv, zeros);
}

constexpr std::uint32_t kMagic = 0x414f4e54;  // "AONT"

}  // namespace

Bytes aont_package(ByteView data, SchemeId cipher, Rng& rng) {
  const CipherParams params = cipher_params(cipher);
  if (params.key_size == 0)
    throw InvalidArgument("aont: needs a fixed-key cipher, not the OTP");

  const SecureBytes key = rng.secure_bytes(params.key_size);

  // Body: data XORed block-wise with Enc_k(i+1); 4 KiB blocks keep the
  // IV-per-block overhead negligible while preserving the structure.
  constexpr std::size_t kBlock = 4096;
  Bytes body = to_bytes(data);
  std::size_t off = 0;
  std::uint64_t index = 1;
  while (off < body.size()) {
    const std::size_t take = std::min(kBlock, body.size() - off);
    const Bytes pad = block_pad(cipher, ByteView(key.data(), key.size()),
                                index + 1, take);
    for (std::size_t i = 0; i < take; ++i) body[off + i] ^= pad[i];
    off += take;
    ++index;
  }

  // Canary: k xor h(body), padded/truncated to key size via HKDF-free
  // trick — we hash, then xor the first key_size bytes (SHA-256 gives 32;
  // all our cipher keys are <= 32 bytes).
  const Bytes digest = Sha256::hash(body);
  Bytes canary(key.begin(), key.end());
  for (std::size_t i = 0; i < canary.size(); ++i)
    canary[i] ^= digest[i % digest.size()];

  ByteWriter w;
  w.u32(kMagic);
  w.u16(static_cast<std::uint16_t>(cipher));
  w.u64(data.size());
  w.bytes(canary);
  w.raw(body);
  return std::move(w).take();
}

namespace {
struct ParsedPackage {
  SchemeId cipher;
  std::uint64_t size;
  Bytes canary;
  Bytes body;
};

ParsedPackage parse(ByteView package) {
  ByteReader r(package);
  if (r.u32() != kMagic) throw ParseError("aont: bad magic");
  ParsedPackage p;
  p.cipher = static_cast<SchemeId>(r.u16());
  p.size = r.u64();
  p.canary = r.bytes();
  p.body = r.raw(r.remaining());
  if (p.body.size() != p.size)
    throw ParseError("aont: body length mismatch");
  return p;
}
}  // namespace

SchemeId aont_package_cipher(ByteView package) {
  return parse(package).cipher;
}

Bytes aont_unpackage(ByteView package) {
  ParsedPackage p = parse(package);

  // Recover the key from the canary — no stored key anywhere.
  const Bytes digest = Sha256::hash(p.body);
  Bytes key = p.canary;
  for (std::size_t i = 0; i < key.size(); ++i)
    key[i] ^= digest[i % digest.size()];

  if (key.size() != cipher_params(p.cipher).key_size)
    throw IntegrityError("aont: canary length inconsistent with cipher",
                         ErrorCode::kCanaryMismatch);

  constexpr std::size_t kBlock = 4096;
  Bytes out = std::move(p.body);
  std::size_t off = 0;
  std::uint64_t index = 1;
  while (off < out.size()) {
    const std::size_t take = std::min(kBlock, out.size() - off);
    const Bytes pad = block_pad(p.cipher, key, index + 1, take);
    for (std::size_t i = 0; i < take; ++i) out[off + i] ^= pad[i];
    off += take;
    ++index;
  }
  return out;
}

std::size_t aont_package_size(std::size_t data_size) {
  // magic + scheme + size + canary(len-prefixed 32) + body
  return 4 + 2 + 8 + 4 + 32 + data_size;
}

}  // namespace aegis
