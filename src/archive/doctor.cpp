#include "archive/doctor.h"

#include <cstdio>
#include <utility>

#include "obs/obs.h"
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

namespace {

std::string num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += "+";
    out += n;
  }
  return out;
}

}  // namespace

// ---- AlertEngine ---------------------------------------------------------

void AlertEngine::add_rule(AlertRule rule) {
  rules_.push_back({std::move(rule), false, 0, false});
}

std::vector<AlertRule> AlertEngine::default_rules() {
  return {
      // Objects the doctor found damaged and has not yet healed: the
      // archive is running on reduced redundancy somewhere.
      {"under-replication",
       {"archive.doctor.degraded_objects"},
       AlertRule::Mode::kLevel,
       1.0},
      // The circuit breaker opened on a node since the last slice.
      {"breaker-open",
       {"cluster.breaker.quarantines"},
       AlertRule::Mode::kDelta,
       1.0},
      // Shard I/O abandoned after the full retry budget — the fault
      // rate is outrunning the bounded-retry regime.
      {"retry-exhaustion",
       {"archive.io.upload_failures", "archive.io.download_failures"},
       AlertRule::Mode::kDelta,
       1.0},
      // Scrubbing surfaced corrupt/missing shards since the last slice
      // (the bit-rot detector).
      {"scrub-corruption",
       {"archive.scrub.corrupt"},
       AlertRule::Mode::kDelta,
       1.0},
  };
}

std::pair<unsigned, unsigned> AlertEngine::evaluate(const MetricsSnapshot& snap,
                                                    Observability& obs) {
  unsigned raised = 0, cleared = 0;
  for (RuleState& rs : rules_) {
    double sum = 0;
    for (const std::string& name : rs.rule.metrics)
      if (const MetricsSnapshot::Entry* e = snap.find(name)) sum += e->value;

    double value = sum;
    if (rs.rule.mode == AlertRule::Mode::kDelta) {
      if (!rs.primed) {
        // First sight of this rule: arm the baseline, judge nothing.
        rs.primed = true;
        rs.last_sum = sum;
        continue;
      }
      value = sum - rs.last_sum;
      rs.last_sum = sum;
    }

    const bool above = value >= rs.rule.threshold;
    if (above && !rs.firing) {
      rs.firing = true;
      ++raised;
      obs.emit(AlertRaised{rs.rule.name, joined(rs.rule.metrics), value,
                           rs.rule.threshold});
    } else if (!above && rs.firing) {
      rs.firing = false;
      ++cleared;
      obs.emit(AlertCleared{rs.rule.name, joined(rs.rule.metrics), value,
                            rs.rule.threshold});
    }
  }
  return {raised, cleared};
}

bool AlertEngine::active(const std::string& rule) const {
  for (const RuleState& rs : rules_)
    if (rs.rule.name == rule) return rs.firing;
  return false;
}

// ---- DoctorState ---------------------------------------------------------

Bytes DoctorState::serialize() const {
  ByteWriter w;
  w.str(cursor);
  w.u64(passes);
  w.u64(objects_scanned);
  w.u64(shards_repaired);
  w.u64(unrecoverable);
  w.u32(pass_objects);
  w.u32(pass_repaired);
  w.u32(pass_unrecoverable);
  return std::move(w).take();
}

DoctorState DoctorState::deserialize(ByteView wire) {
  ByteReader r(wire);
  DoctorState s;
  s.cursor = r.str();
  s.passes = r.u64();
  s.objects_scanned = r.u64();
  s.shards_repaired = r.u64();
  s.unrecoverable = r.u64();
  s.pass_objects = r.u32();
  s.pass_repaired = r.u32();
  s.pass_unrecoverable = r.u32();
  r.expect_done();
  return s;
}

std::string DoctorStepReport::to_json() const {
  return "{" + json_head() + ",\"scanned\":" + num(scanned) +
         ",\"damaged\":" + num(damaged) +
         ",\"shards_repaired\":" + num(shards_repaired) +
         ",\"unrecoverable\":" + num(unrecoverable) +
         ",\"alerts_raised\":" + num(alerts_raised) +
         ",\"alerts_cleared\":" + num(alerts_cleared) +
         ",\"pass_completed\":" + (pass_completed ? "true" : "false") + "}";
}

// ---- Doctor --------------------------------------------------------------

Doctor::Doctor(Archive& archive) : archive_(archive) {
  for (AlertRule& r : AlertEngine::default_rules()) {
    // Moved element-wise; default_rules returns by value.
    alerts_.add_rule(std::move(r));
  }
  bind_metrics();
}

Doctor::Doctor(Archive& archive, DoctorState state)
    : archive_(archive), state_(std::move(state)) {
  for (AlertRule& r : AlertEngine::default_rules())
    alerts_.add_rule(std::move(r));
  bind_metrics();
}

void Doctor::bind_metrics() {
  MetricsRegistry& m = archive_.cluster_.obs().metrics();
  m_steps_ = &m.counter("archive.doctor.steps");
  m_passes_ = &m.counter("archive.doctor.passes");
  m_throttle_ms_ = &m.counter("archive.doctor.throttle_ms");
  m_degraded_ = &m.gauge("archive.doctor.degraded_objects");
  m_object_ms_ = &m.histogram("archive.doctor.object_ms");
  // Arm delta rules against the current counter values so a doctor
  // attached to a long-running archive does not alert on history.
  alerts_.evaluate(m.snapshot(), archive_.cluster_.obs());
}

Doctor::ObjectOutcome Doctor::scrub_object(Archive& archive,
                                           const ObjectId& id) {
  MetricsRegistry& metrics = archive.cluster_.obs().metrics();
  Counter& m_objects = metrics.counter("archive.scrub.objects");
  Counter& m_corrupt = metrics.counter("archive.scrub.corrupt");
  Counter& m_repaired = metrics.counter("archive.scrub.repaired");
  Counter& m_unrecoverable = metrics.counter("archive.scrub.unrecoverable");

  ObjectOutcome out;
  m_objects.inc();
  const AuditReport audit = archive.audit(id);
  std::string outcome = "clean";
  if (!audit.clean()) {
    out.damaged = true;
    m_corrupt.inc();
    try {
      out.shards_repaired = archive.repair(id);
      m_repaired.inc(out.shards_repaired);
      // A repair against a partially-offline cluster can leave shards
      // unwritten; only a clean re-audit counts as healed.
      out.healed = archive.audit(id).clean();
      outcome = (out.healed ? "repaired:" : "degraded:") +
                num(out.shards_repaired);
    } catch (const UnrecoverableError&) {
      out.unrecoverable = true;
      m_unrecoverable.inc();
      outcome = "unrecoverable";
    }
  }
  archive.cluster_.obs().ledger().append(archive.cluster_.now(),
                                         "archive.scrub.object", id, outcome);
  return out;
}

void Doctor::throttle(double spent_ms) {
  const double frac = archive_.policy_.scrub_bandwidth_frac;
  if (frac >= 1.0 || spent_ms <= 0.0) return;
  const double extra = spent_ms * (1.0 / frac - 1.0);
  archive_.cluster_.charge_ms(extra);
  m_throttle_ms_->inc(static_cast<std::uint64_t>(extra + 0.5));
}

DoctorStepReport Doctor::step() {
  Archive::OpScope scope = archive_.op_begin("doctor", ObjectId{});
  try {
    DoctorStepReport rep;
    m_steps_->inc();

    // Snapshot the slice's ids up front: repair of a sharing encoding
    // re-disperses (mutating the manifest in place) but never inserts
    // or erases manifests, so the cursor ordering stays stable.
    std::vector<ObjectId> slice;
    {
      auto it = state_.cursor.empty()
                    ? archive_.manifests_.begin()
                    : archive_.manifests_.upper_bound(state_.cursor);
      for (unsigned budget = archive_.policy_.scrub_batch;
           it != archive_.manifests_.end() && budget > 0; ++it, --budget)
        slice.push_back(it->first);
    }

    for (const ObjectId& id : slice) {
      const double t0 = archive_.cluster_.simulated_ms();
      const ObjectOutcome out = scrub_object(archive_, id);
      throttle(archive_.cluster_.simulated_ms() - t0);
      m_object_ms_->observe(archive_.cluster_.simulated_ms() - t0);

      state_.cursor = id;
      ++state_.objects_scanned;
      ++state_.pass_objects;
      ++rep.scanned;
      if (out.damaged) ++rep.damaged;
      rep.shards_repaired += out.shards_repaired;
      state_.shards_repaired += out.shards_repaired;
      state_.pass_repaired += out.shards_repaired;
      if (out.unrecoverable) {
        ++rep.unrecoverable;
        ++state_.unrecoverable;
        ++state_.pass_unrecoverable;
      }

      // Degraded set: damage that did not fully heal stays on the
      // watchlist and is retried every pass until clean (or removed).
      if (out.damaged && !out.healed)
        degraded_.insert(id);
      else
        degraded_.erase(id);
    }
    // Objects removed from the archive leave the watchlist too.
    for (auto it = degraded_.begin(); it != degraded_.end();) {
      if (archive_.manifests_.count(*it) == 0)
        it = degraded_.erase(it);
      else
        ++it;
    }
    m_degraded_->set(static_cast<std::int64_t>(degraded_.size()));

    // Pass wrap: the cursor swept every manifest. The ScrubCompleted
    // payload carries exactly the fields the synchronous scrub emits.
    const bool wrapped =
        !archive_.manifests_.empty() &&
        (state_.cursor == archive_.manifests_.rbegin()->first ||
         slice.empty());
    if (wrapped) {
      archive_.cluster_.obs().emit(ScrubCompleted{
          state_.pass_objects, state_.pass_repaired,
          state_.pass_unrecoverable});
      ++state_.passes;
      m_passes_->inc();
      state_.pass_objects = 0;
      state_.pass_repaired = 0;
      state_.pass_unrecoverable = 0;
      state_.cursor.clear();
      rep.pass_completed = true;
    }

    const auto [raised, cleared] = alerts_.evaluate(
        archive_.cluster_.obs().metrics().snapshot(), archive_.cluster_.obs());
    rep.alerts_raised = raised;
    rep.alerts_cleared = cleared;

    archive_.op_end(scope, &rep);
    return rep;
  } catch (const Error& e) {
    archive_.op_failed(scope, ObjectId{}, e);
    throw;
  }
}

}  // namespace aegis
