#include "archive/policy.h"

#include "util/error.h"

namespace aegis {

const char* to_string(EncodingKind k) {
  switch (k) {
    case EncodingKind::kReplication: return "replication";
    case EncodingKind::kErasure: return "erasure";
    case EncodingKind::kEncryptErasure: return "encrypt+erasure";
    case EncodingKind::kCascade: return "cascade+erasure";
    case EncodingKind::kAontRs: return "AONT-RS";
    case EncodingKind::kEntropicErasure: return "entropic+erasure";
    case EncodingKind::kShamir: return "shamir";
    case EncodingKind::kPacked: return "packed-shamir";
    case EncodingKind::kLrss: return "LRSS";
  }
  return "?";
}

unsigned ArchivalPolicy::reconstruction_threshold() const {
  switch (encoding) {
    case EncodingKind::kReplication:
      return 1;
    case EncodingKind::kErasure:
    case EncodingKind::kEncryptErasure:
    case EncodingKind::kCascade:
    case EncodingKind::kAontRs:
    case EncodingKind::kEntropicErasure:
      return k;
    case EncodingKind::kShamir:
    case EncodingKind::kLrss:
      return t;
    case EncodingKind::kPacked:
      return t + k;
  }
  return n;
}

double ArchivalPolicy::nominal_overhead() const {
  switch (encoding) {
    case EncodingKind::kReplication:
      return static_cast<double>(n);
    case EncodingKind::kErasure:
    case EncodingKind::kEncryptErasure:
    case EncodingKind::kCascade:
    case EncodingKind::kAontRs:
    case EncodingKind::kEntropicErasure:
      return static_cast<double>(n) / k;
    case EncodingKind::kShamir:
      return static_cast<double>(n);
    case EncodingKind::kPacked:
      return static_cast<double>(n) / k;
    case EncodingKind::kLrss:
      // Shamir-level blowup plus the extractor sources; the archive
      // reports the measured value, this is the floor.
      return static_cast<double>(n);
  }
  return 1.0;
}

void ArchivalPolicy::validate() const {
  if (n == 0) throw InvalidArgument("policy: n must be >= 1", ErrorCode::kBadPolicy);
  switch (encoding) {
    case EncodingKind::kReplication:
      break;
    case EncodingKind::kErasure:
    case EncodingKind::kEncryptErasure:
    case EncodingKind::kCascade:
    case EncodingKind::kAontRs:
    case EncodingKind::kEntropicErasure:
      if (k == 0 || k > n)
        throw InvalidArgument("policy: need 1 <= k <= n for erasure",
                              ErrorCode::kBadGeometry);
      break;
    case EncodingKind::kShamir:
    case EncodingKind::kLrss:
      if (t == 0 || t > n)
        throw InvalidArgument("policy: need 1 <= t <= n for sharing",
                              ErrorCode::kBadGeometry);
      break;
    case EncodingKind::kPacked:
      if (t == 0 || k == 0 || t + k > n)
        throw InvalidArgument("policy: need t,k >= 1 and t+k <= n",
                              ErrorCode::kBadGeometry);
      break;
  }
  if (backoff_base_ms < 0.0)
    throw InvalidArgument("policy: negative retry backoff",
                          ErrorCode::kBadPolicy);
  if (encode_workers > 256)
    throw InvalidArgument("policy: encode_workers > 256 is surely a typo",
                          ErrorCode::kBadPolicy);
  if (migrate_batch == 0)
    throw InvalidArgument("policy: migrate_batch must be >= 1",
                          ErrorCode::kBadPolicy);
  if (!(migrate_bandwidth_frac > 0.0) || migrate_bandwidth_frac > 1.0)
    throw InvalidArgument("policy: migrate_bandwidth_frac must be in (0, 1]",
                          ErrorCode::kBadPolicy);
  if (scrub_batch == 0)
    throw InvalidArgument("policy: scrub_batch must be >= 1",
                          ErrorCode::kBadPolicy);
  if (!(scrub_bandwidth_frac > 0.0) || scrub_bandwidth_frac > 1.0)
    throw InvalidArgument("policy: scrub_bandwidth_frac must be in (0, 1]",
                          ErrorCode::kBadPolicy);
  const bool needs_cipher = encoding == EncodingKind::kEncryptErasure ||
                            encoding == EncodingKind::kCascade ||
                            encoding == EncodingKind::kAontRs;
  if (needs_cipher && ciphers.empty())
    throw InvalidArgument("policy: encrypted encodings need a cipher",
                          ErrorCode::kBadPolicy);
  for (SchemeId c : ciphers) {
    if (scheme_info(c).kind != SchemeKind::kCipher)
      throw InvalidArgument("policy: " + scheme_name(c) + " is not a cipher",
                            ErrorCode::kBadPolicy);
  }
}

// ---- Table 1 presets ---------------------------------------------------

ArchivalPolicy ArchivalPolicy::CloudBaseline() {
  ArchivalPolicy p;
  p.name = "AWS/Azure/GCP";
  p.encoding = EncodingKind::kEncryptErasure;
  p.n = 9;
  p.k = 6;
  p.ciphers = {SchemeId::kAes256Ctr};
  p.channel = ChannelKind::kTls;
  return p;
}

ArchivalPolicy ArchivalPolicy::ArchiveSafeLT() {
  ArchivalPolicy p;
  p.name = "ArchiveSafeLT";
  p.encoding = EncodingKind::kCascade;
  p.n = 9;
  p.k = 6;
  p.ciphers = {SchemeId::kAes256Ctr, SchemeId::kChaCha20,
               SchemeId::kSpeck128Ctr};
  p.channel = ChannelKind::kTls;
  return p;
}

ArchivalPolicy ArchivalPolicy::AontRs() {
  ArchivalPolicy p;
  p.name = "AONT-RS";
  p.encoding = EncodingKind::kAontRs;
  p.n = 9;
  p.k = 6;
  p.ciphers = {SchemeId::kAes256Ctr};
  p.channel = ChannelKind::kTls;
  return p;
}

ArchivalPolicy ArchivalPolicy::Potshards() {
  ArchivalPolicy p;
  p.name = "POTSHARDS";
  p.encoding = EncodingKind::kShamir;
  p.n = 5;
  p.t = 3;
  p.channel = ChannelKind::kTls;
  return p;
}

ArchivalPolicy ArchivalPolicy::VsrArchive() {
  ArchivalPolicy p;
  p.name = "VSR Archive";
  p.encoding = EncodingKind::kShamir;
  p.n = 5;
  p.t = 3;
  p.proactive_refresh = true;
  p.channel = ChannelKind::kTls;
  return p;
}

ArchivalPolicy ArchivalPolicy::Lincos() {
  ArchivalPolicy p;
  p.name = "LINCOS";
  p.encoding = EncodingKind::kShamir;
  p.n = 5;
  p.t = 3;
  p.proactive_refresh = true;
  p.pedersen_timestamps = true;
  p.channel = ChannelKind::kQkd;
  return p;
}

ArchivalPolicy ArchivalPolicy::HasDpss() {
  ArchivalPolicy p;
  p.name = "HasDPSS";
  p.encoding = EncodingKind::kEncryptErasure;
  p.n = 9;
  p.k = 6;
  p.ciphers = {SchemeId::kAes256Ctr};
  p.key_custody = KeyCustody::kVssOnCluster;
  p.vault_threshold = 4;
  p.proactive_refresh = true;  // refreshes the key shares
  p.channel = ChannelKind::kTls;
  return p;
}

ArchivalPolicy ArchivalPolicy::PasisReplication() {
  ArchivalPolicy p;
  p.name = "PASIS(repl+enc)";
  p.encoding = EncodingKind::kEncryptErasure;
  p.n = 4;
  p.k = 1;  // replication of ciphertext
  p.ciphers = {SchemeId::kAes256Ctr};
  p.channel = ChannelKind::kTls;
  return p;
}

ArchivalPolicy ArchivalPolicy::PasisSharing() {
  ArchivalPolicy p;
  p.name = "PASIS(sharing)";
  p.encoding = EncodingKind::kShamir;
  p.n = 4;
  p.t = 2;
  p.channel = ChannelKind::kTls;
  return p;
}

// ---- Figure 1 encoding points ------------------------------------------

ArchivalPolicy ArchivalPolicy::FigReplication() {
  ArchivalPolicy p;
  p.name = "replication";
  p.encoding = EncodingKind::kReplication;
  p.n = 3;
  return p;
}

ArchivalPolicy ArchivalPolicy::FigErasure() {
  ArchivalPolicy p;
  p.name = "erasure-coding";
  p.encoding = EncodingKind::kErasure;
  p.n = 9;
  p.k = 6;
  return p;
}

ArchivalPolicy ArchivalPolicy::FigEncryption() {
  ArchivalPolicy p;
  p.name = "traditional-encryption";
  p.encoding = EncodingKind::kEncryptErasure;
  p.n = 9;
  p.k = 6;
  p.ciphers = {SchemeId::kAes256Ctr};
  return p;
}

ArchivalPolicy ArchivalPolicy::FigEntropic() {
  ArchivalPolicy p;
  p.name = "entropic-encryption";
  p.encoding = EncodingKind::kEntropicErasure;
  p.n = 9;
  p.k = 6;
  p.ciphers = {SchemeId::kEntropicXor};
  return p;
}

ArchivalPolicy ArchivalPolicy::FigShamir() {
  ArchivalPolicy p;
  p.name = "secret-sharing";
  p.encoding = EncodingKind::kShamir;
  p.n = 5;
  p.t = 3;
  return p;
}

ArchivalPolicy ArchivalPolicy::FigPacked() {
  ArchivalPolicy p;
  p.name = "packed-secret-sharing";
  p.encoding = EncodingKind::kPacked;
  p.n = 10;
  p.k = 4;
  p.t = 3;
  return p;
}

ArchivalPolicy ArchivalPolicy::FigLrss() {
  ArchivalPolicy p;
  p.name = "leakage-resilient-SS";
  p.encoding = EncodingKind::kLrss;
  p.n = 5;
  p.t = 3;
  return p;
}

}  // namespace aegis
