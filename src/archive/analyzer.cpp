#include "archive/analyzer.h"

#include <algorithm>
#include <map>

namespace aegis {

const char* confidentiality_label(SecurityClass c) {
  switch (c) {
    case SecurityClass::kNone: return "None";
    case SecurityClass::kComputational: return "Computational";
    case SecurityClass::kEntropic: return "Entropic";
    case SecurityClass::kInformationTheoretic: return "ITS";
  }
  return "?";
}

PolicyClassification classify(const ArchivalPolicy& policy) {
  PolicyClassification c;
  c.system = policy.name;
  c.nominal_overhead = policy.nominal_overhead();
  c.proactive = policy.proactive_refresh;
  c.hiding_timestamps = policy.pedersen_timestamps;

  switch (policy.encoding) {
    case EncodingKind::kReplication:
    case EncodingKind::kErasure:
      c.at_rest = SecurityClass::kNone;
      break;
    case EncodingKind::kEncryptErasure:
    case EncodingKind::kCascade:
    case EncodingKind::kAontRs:
      c.at_rest = SecurityClass::kComputational;
      break;
    case EncodingKind::kEntropicErasure:
      c.at_rest = SecurityClass::kEntropic;
      break;
    case EncodingKind::kShamir:
    case EncodingKind::kPacked:
    case EncodingKind::kLrss:
      c.at_rest = SecurityClass::kInformationTheoretic;
      break;
  }

  switch (policy.channel) {
    case ChannelKind::kPlain:
      c.in_transit = SecurityClass::kNone;
      break;
    case ChannelKind::kTls:
      c.in_transit = SecurityClass::kComputational;
      break;
    case ChannelKind::kQkd:
    case ChannelKind::kBsm:
      c.in_transit = SecurityClass::kInformationTheoretic;
      break;
  }
  return c;
}

namespace {

/// Per-(generation, shard) earliest acquisition epoch.
struct Acquisitions {
  // generation -> shard_index -> earliest epoch the adversary had it
  std::map<std::uint32_t, std::map<std::uint32_t, Epoch>> by_gen;

  void add(std::uint32_t gen, std::uint32_t shard, Epoch at) {
    auto& m = by_gen[gen];
    const auto it = m.find(shard);
    if (it == m.end() || at < it->second) m[shard] = at;
  }

  /// Epoch at which `threshold` distinct shards of one generation were
  /// first simultaneously held, minimized over generations; kNever if no
  /// generation reaches it. Also reports the best same-gen shard count.
  Epoch reach(unsigned threshold, unsigned* best_count = nullptr) const {
    Epoch best = kNever;
    unsigned best_n = 0;
    for (const auto& [gen, shards] : by_gen) {
      best_n = std::max<unsigned>(best_n,
                                  static_cast<unsigned>(shards.size()));
      if (shards.size() < threshold) continue;
      std::vector<Epoch> epochs;
      epochs.reserve(shards.size());
      for (const auto& [idx, e] : shards) epochs.push_back(e);
      std::nth_element(epochs.begin(), epochs.begin() + (threshold - 1),
                       epochs.end());
      best = std::min(best, epochs[threshold - 1]);
    }
    if (best_count) *best_count = best_n;
    return best;
  }
};

}  // namespace

const ObjectExposure* ExposureReport::find(const ObjectId& id) const {
  for (const auto& o : objects) {
    if (o.id == id) return &o;
  }
  return nullptr;
}

ExposureReport ExposureAnalyzer::analyze(
    const std::vector<HarvestedBlob>& harvest,
    const std::vector<WiretapRecord>& wiretap, Epoch now) const {
  // 1. Fold node harvest and fallen wiretap payloads into one
  //    acquisition table per object id (data objects and @key/ objects).
  std::map<ObjectId, Acquisitions> acq;

  for (const HarvestedBlob& h : harvest)
    acq[h.blob.object].add(h.blob.generation, h.blob.shard_index,
                           h.taken_at);

  for (const WiretapRecord& w : wiretap) {
    const Epoch falls = w.transcript.falls_at(registry_);
    if (falls == kNever || falls > now) continue;
    // The payload becomes adversary knowledge at the later of "recorded"
    // and "channel broken".
    const Epoch at = std::max(falls, w.recorded_at);
    acq[w.payload.object].add(w.payload.generation, w.payload.shard_index,
                              at);
  }

  const ArchivalPolicy& policy = archive_.policy();

  // 2. Key exposure epochs for VSS-custody keys.
  std::map<ObjectId, Epoch> key_exposed_at;  // data object id -> epoch
  if (policy.key_custody == KeyCustody::kVssOnCluster) {
    for (const auto& [id, m] : archive_.manifests()) {
      const auto it = acq.find(Archive::key_object_id(id));
      if (it == acq.end()) continue;
      const Epoch e = it->second.reach(policy.vault_threshold);
      if (e != kNever) key_exposed_at[id] = e;
    }
  }

  // 3. Per-object verdicts.
  ExposureReport report;
  for (const auto& [id, m] : archive_.manifests()) {
    ObjectExposure x;
    x.id = id;

    const auto it = acq.find(id);
    const Acquisitions empty;
    const Acquisitions& a = it == acq.end() ? empty : it->second;

    auto expose = [&](Epoch at, std::string how) {
      if (at == kNever || at > now) return;
      if (!x.content_exposed || at < x.exposed_at) {
        x.content_exposed = true;
        x.exposed_at = at;
        x.mechanism = std::move(how);
      }
    };

    switch (m.encoding) {
      case EncodingKind::kReplication:
        expose(a.reach(1, &x.best_generation_shards), "replica stolen");
        break;

      case EncodingKind::kErasure:
        // Full reassembly needs k shards, but systematic RS data shards
        // ARE plaintext fragments — one stolen shard is already content.
        expose(a.reach(1, &x.best_generation_shards),
               "systematic erasure shard is a plaintext fragment");
        break;

      case EncodingKind::kEncryptErasure:
      case EncodingKind::kEntropicErasure:
      case EncodingKind::kCascade: {
        // Ciphertext per generation; stack in force at that generation.
        for (const auto& [gen, shards] : a.by_gen) {
          x.best_generation_shards = std::max<unsigned>(
              x.best_generation_shards,
              static_cast<unsigned>(shards.size()));
          if (shards.size() < m.k) continue;
          std::vector<Epoch> epochs;
          for (const auto& [idx, e] : shards) epochs.push_back(e);
          std::nth_element(epochs.begin(), epochs.begin() + (m.k - 1),
                           epochs.end());
          const Epoch ct_at = epochs[m.k - 1];
          if (!x.ciphertext_held || ct_at < x.ciphertext_at) {
            x.ciphertext_held = true;
            x.ciphertext_at = ct_at;
          }

          if (m.encoding == EncodingKind::kEntropicErasure) {
            // Unconditionally hiding for high-entropy content. For
            // measurably low-entropy content the guarantee is void:
            // escalate to exposure instead of a caveat.
            constexpr double kRiskBitsPerByte = 1.0;
            if (m.est_entropy_per_byte < kRiskBitsPerByte) {
              expose(ct_at,
                     "entropic encoding over low-entropy content "
                     "(estimated " +
                         std::to_string(m.est_entropy_per_byte) +
                         " bits/byte)");
            } else {
              x.entropy_caveat = true;
            }
            continue;
          }

          // The stack for this generation; exposed when the LAST cipher
          // falls (cascade semantics) — a single-cipher stack is the
          // degenerate cascade.
          const auto& stack = m.cipher_history[std::min<std::size_t>(
              gen, m.cipher_history.size() - 1)];
          Epoch all_broken = 0;
          bool breaks_ever = true;
          for (SchemeId c : stack) {
            const auto b = registry_.break_epoch(c);
            if (!b) {
              breaks_ever = false;
              break;
            }
            all_broken = std::max(all_broken, *b);
          }
          if (breaks_ever && !stack.empty())
            expose(std::max(ct_at, all_broken),
                   "ciphertext harvested; cipher stack broken");
          if (stack.empty()) expose(ct_at, "unencrypted shards");

          // Key theft route (VSS custody).
          const auto ke = key_exposed_at.find(id);
          if (ke != key_exposed_at.end())
            expose(std::max(ct_at, ke->second),
                   "ciphertext harvested; vaulted key shares reached "
                   "threshold");
        }

        // Partial route: even ONE ciphertext shard becomes a plaintext
        // fragment once that generation's stack breaks (or the key
        // leaks) — sub-threshold harvests never protected the
        // fragments, only the whole object.
        if (m.encoding != EncodingKind::kEntropicErasure) {
          for (const auto& [gen, shards] : a.by_gen) {
            if (shards.empty()) continue;
            Epoch one = kNever;
            for (const auto& [idx, e] : shards) one = std::min(one, e);
            const auto& stack = m.cipher_history[std::min<std::size_t>(
                gen, m.cipher_history.size() - 1)];
            Epoch all_broken = 0;
            bool breaks_ever = !stack.empty();
            for (SchemeId c : stack) {
              const auto b = registry_.break_epoch(c);
              if (!b) {
                breaks_ever = false;
                break;
              }
              all_broken = std::max(all_broken, *b);
            }
            if (breaks_ever)
              expose(std::max(one, all_broken),
                     "shard fragments decrypted after stack break");
            const auto ke = key_exposed_at.find(id);
            if (ke != key_exposed_at.end())
              expose(std::max(one, ke->second),
                     "shard fragments decrypted with stolen key shares");
          }
        }
        break;
      }

      case EncodingKind::kAontRs: {
        // Route 1: full package from any k shards — keyless decode.
        expose(a.reach(m.k, &x.best_generation_shards),
               "k AONT-RS shards: full package, keyless decode");
        if (a.reach(m.k) != kNever) {
          x.ciphertext_held = true;
          x.ciphertext_at = a.reach(m.k);
        }
        // Route 2: any single shard + broken package cipher/hash.
        const Epoch one = a.reach(1);
        if (one != kNever) {
          const SchemeId cipher = m.current_ciphers()[0];
          const Epoch b = registry_.earliest_break(
              {cipher, SchemeId::kSha256});
          if (b != kNever)
            expose(std::max(one, b),
                   "AONT package primitive broken: key recoverable from "
                   "any shard");
        }
        break;
      }

      case EncodingKind::kShamir:
      case EncodingKind::kLrss:
        expose(a.reach(m.t, &x.best_generation_shards),
               "secrecy threshold of same-generation shares reached");
        break;

      case EncodingKind::kPacked: {
        expose(a.reach(m.t + m.k, &x.best_generation_shards),
               "packed reconstruction threshold reached");
        if (!x.content_exposed && a.reach(m.t + 1) != kNever &&
            a.reach(m.t + 1) <= now)
          x.partial_leak = true;  // above privacy, below reconstruction
        break;
      }
    }

    if (x.content_exposed) {
      ++report.exposed_count;
      report.first_exposure = std::min(report.first_exposure, x.exposed_at);
    }
    report.objects.push_back(std::move(x));
  }
  return report;
}

}  // namespace aegis
