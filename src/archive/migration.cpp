#include "archive/migration.h"

#include <cstdio>
#include <utility>

#include "archive/aont.h"
#include "crypto/cipher.h"
#include "crypto/sha256.h"
#include "erasure/codec_cache.h"
#include "erasure/reed_solomon.h"
#include "integrity/merkle.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

namespace {

// Mirrors the archive's internal helpers (anonymous namespace there).
bool uses_cipher_stack(EncodingKind e) {
  return e == EncodingKind::kEncryptErasure ||
         e == EncodingKind::kCascade ||
         e == EncodingKind::kEntropicErasure;
}

std::size_t payload_size(const ObjectManifest& m) {
  return m.encoding == EncodingKind::kAontRs ? aont_package_size(m.size)
                                             : m.size;
}

constexpr unsigned kAuditChallengesPerShard = 4;

std::string num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

const char* to_string(MigrationKind k) {
  switch (k) {
    case MigrationKind::kReencrypt: return "reencrypt";
    case MigrationKind::kRewrap: return "rewrap";
    case MigrationKind::kRenewTimestamps: return "renew_timestamps";
  }
  return "?";
}

Bytes MigrationState::serialize() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(static_cast<std::uint32_t>(fresh.size()));
  for (SchemeId c : fresh) w.u16(static_cast<std::uint16_t>(c));
  w.u16(static_cast<std::uint16_t>(outer));
  w.u64(migration_id);
  w.str(cursor);
  w.u64(objects_done);
  w.u64(objects_skipped);
  w.u64(objects_total);
  w.u64(bytes_moved);
  w.u8(complete ? 1 : 0);
  return std::move(w).take();
}

MigrationState MigrationState::deserialize(ByteView wire) {
  ByteReader r(wire);
  MigrationState s;
  s.kind = static_cast<MigrationKind>(r.u8());
  const std::uint32_t nf = r.count(2);
  s.fresh.reserve(nf);
  for (std::uint32_t i = 0; i < nf; ++i)
    s.fresh.push_back(static_cast<SchemeId>(r.u16()));
  s.outer = static_cast<SchemeId>(r.u16());
  s.migration_id = r.u64();
  s.cursor = r.str();
  s.objects_done = r.u64();
  s.objects_skipped = r.u64();
  s.objects_total = r.u64();
  s.bytes_moved = r.u64();
  s.complete = r.u8() != 0;
  r.expect_done();
  return s;
}

std::string MigrationStepReport::to_json() const {
  return "{" + json_head() + ",\"kind\":\"" + to_string(kind) + "\"" +
         ",\"migrated\":" + num(migrated) +
         ",\"promoted\":" + num(promoted) +
         ",\"skipped\":" + num(skipped) +
         ",\"bytes_moved\":" + num(bytes_moved) +
         ",\"done\":" + (done ? "true" : "false") + "}";
}

void MigrationEngine::validate(const Archive& archive, MigrationKind kind,
                               const std::vector<SchemeId>& fresh,
                               SchemeId outer) {
  switch (kind) {
    case MigrationKind::kReencrypt:
      if (!uses_cipher_stack(archive.policy_.encoding))
        throw InvalidArgument("Archive::reencrypt: policy has no cipher stack",
                              ErrorCode::kUnsupportedOperation);
      if (fresh.empty())
        throw InvalidArgument(
            "MigrationEngine: empty replacement cipher stack",
            ErrorCode::kBadPolicy);
      for (SchemeId c : fresh) {
        if (scheme_info(c).kind != SchemeKind::kCipher)
          throw InvalidArgument(
              "MigrationEngine: " + scheme_name(c) + " is not a cipher",
              ErrorCode::kBadPolicy);
      }
      break;
    case MigrationKind::kRewrap:
      if (archive.policy_.encoding != EncodingKind::kCascade)
        throw InvalidArgument("Archive::rewrap: policy is not a cascade",
                              ErrorCode::kUnsupportedOperation);
      if (scheme_info(outer).kind != SchemeKind::kCipher)
        throw InvalidArgument("Archive::rewrap: not a cipher");
      break;
    case MigrationKind::kRenewTimestamps:
      break;
  }
}

std::uint64_t MigrationEngine::fingerprint(const MigrationState& s,
                                           Epoch start) {
  // FNV-1a over the run parameters + start epoch: two runs with the same
  // parameters started at different epochs are distinct migrations.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(s.kind));
  mix(s.fresh.size());
  for (SchemeId c : s.fresh) mix(static_cast<std::uint64_t>(c));
  mix(static_cast<std::uint64_t>(s.outer));
  mix(static_cast<std::uint64_t>(start));
  return h == 0 ? 1 : h;  // 0 is the manifests' never-migrated sentinel
}

MigrationEngine::MigrationEngine(Archive& archive, MigrationSpec spec)
    : archive_(archive) {
  validate(archive, spec.kind, spec.fresh, spec.outer);
  state_.kind = spec.kind;
  state_.fresh = std::move(spec.fresh);
  state_.outer = spec.outer;
  state_.objects_total = archive.manifests_.size();
  state_.migration_id = fingerprint(state_, archive.cluster_.now());
  bind_metrics();
}

MigrationEngine::MigrationEngine(Archive& archive, MigrationState state)
    : archive_(archive), state_(std::move(state)) {
  validate(archive, state_.kind, state_.fresh, state_.outer);
  bind_metrics();
}

void MigrationEngine::bind_metrics() {
  MetricsRegistry& m = archive_.cluster_.obs().metrics();
  m_objects_ = &m.counter("archive.migrate.objects");
  m_skipped_ = &m.counter("archive.migrate.skipped");
  m_bytes_ = &m.counter("archive.migrate.bytes");
  m_throttle_ms_ = &m.counter("archive.migrate.throttle_ms");
  m_checkpoints_ = &m.counter("archive.migrate.checkpoints");
  m_stalls_ = &m.counter("archive.migrate.stalls");
  m_object_ms_ = &m.histogram("archive.migrate.object_ms");
}

bool MigrationEngine::eligible(const ObjectManifest& m) const {
  // Committed by THIS run already (visible even when the engine resumed
  // from a checkpoint older than the manifest state).
  if (m.last_migration == state_.migration_id) return false;
  switch (state_.kind) {
    case MigrationKind::kReencrypt:
      return uses_cipher_stack(m.encoding) &&
             m.current_ciphers() != state_.fresh;
    case MigrationKind::kRewrap:
      return m.encoding == EncodingKind::kCascade;
    case MigrationKind::kRenewTimestamps:
      return true;
  }
  return false;
}

void MigrationEngine::discard_staging(ObjectManifest& m) {
  if (!m.staged.has_value()) return;
  const ObjectId sid = Archive::staging_object_id(m.id);
  for (std::uint32_t i = 0; i < m.n; ++i)
    archive_.cluster_.node(archive_.shard_node(i)).erase(sid, i);
  m.staged.reset();
}

void MigrationEngine::promote(ObjectManifest& m) {
  // Node-local rename of staging blobs into the real shard slots. Like
  // erase(), this is node-side metadata surgery, not a transfer — it
  // works on offline nodes and moves no payload bytes. A missing staging
  // blob (its upload failed at stage time, or an earlier promotion pass
  // already moved it) leaves the real slot as-is; the shard reads as
  // stale/missing and repair() heals it like any other erasure.
  const ObjectId sid = Archive::staging_object_id(m.id);
  for (std::uint32_t i = 0; i < m.n; ++i)
    archive_.cluster_.node(archive_.shard_node(i)).rename(sid, i, m.id);
  m.staged.reset();
}

unsigned MigrationEngine::settle_staged() {
  unsigned promoted = 0;
  for (auto& [id, m] : archive_.manifests_) {
    if (!m.staged.has_value()) continue;
    if (m.staged->phase ==
        ObjectManifest::StagedGeneration::Phase::kPublished) {
      promote(m);
      ++promoted;
    } else {
      // kStaging residue from a crashed run: the commit point was never
      // reached, so roll back to the intact committed generation.
      discard_staging(m);
    }
  }
  return promoted;
}

void MigrationEngine::migrate_one(ObjectManifest& m) {
  if (state_.kind == MigrationKind::kRenewTimestamps) {
    m.chain.renew(archive_.tsa_, archive_.cluster_.now());
    m.last_migration = state_.migration_id;
    archive_.cluster_.obs().emit(ChainRenewed{m.id, m.chain.length()});
    return;
  }

  discard_staging(m);  // kStaging residue from a crashed run

  // Build the staged generation's payload.
  Bytes payload;
  std::vector<SchemeId> stack;
  if (state_.kind == MigrationKind::kReencrypt) {
    auto shards =
        archive_.gather(m, archive_.policy_.reconstruction_threshold());
    const Bytes plain = archive_.decode(m, std::move(shards));
    stack = state_.fresh;
    payload = archive_.apply_ciphers(m.id, plain, stack);
  } else {
    // Re-wrap: reconstruct the *layered ciphertext* — never the
    // plaintext — and add one outer layer.
    auto shards = archive_.gather(m, m.k);
    const Bytes ct = rs_codec(m.k, m.n).decode(shards, payload_size(m),
                                               &archive_.pool_);
    const ObjectKey* key = archive_.vault_.find(m.id);
    if (key == nullptr)
      throw InvalidArgument("MigrationEngine: no key for " + m.id,
                            ErrorCode::kKeyLost);
    const unsigned layer = static_cast<unsigned>(m.current_ciphers().size());
    const SecureBytes lk = key->layer_key(state_.outer, layer);
    const Bytes iv = key->layer_iv(state_.outer, layer);
    payload =
        cipher_apply(state_.outer, ByteView(lk.data(), lk.size()), iv, ct);
    stack = m.current_ciphers();
    stack.push_back(state_.outer);
  }

  const std::vector<Bytes> shards =
      rs_codec(m.k, m.n).encode(payload, &archive_.pool_);

  // Stage: the next generation's shards land under the staging key with
  // their full integrity metadata precomputed; the committed
  // generation's blobs and manifest stay untouched.
  ObjectManifest::StagedGeneration st;
  st.generation = m.generation + 1;
  st.ciphers = std::move(stack);
  st.audit_challenges.assign(shards.size(), {});
  std::vector<Bytes> leaves;
  leaves.reserve(shards.size());
  for (std::uint32_t i = 0; i < shards.size(); ++i) {
    st.shard_hashes.push_back(Sha256::hash(shards[i]));
    for (unsigned c = 0; c < kAuditChallengesPerShard; ++c) {
      ObjectManifest::ShardChallenge ch;
      ch.nonce = archive_.rng_.bytes(16);
      ch.expected = Sha256::hash_concat({shards[i], ch.nonce});
      st.audit_challenges[i].push_back(std::move(ch));
    }
    leaves.push_back(shards[i]);
  }
  st.merkle_root = MerkleTree(leaves).root();
  m.staged = std::move(st);

  const ObjectId sid = Archive::staging_object_id(m.id);
  unsigned written = 0;
  for (std::uint32_t i = 0; i < shards.size(); ++i) {
    StoredBlob blob;
    blob.object = sid;
    blob.shard_index = i;
    blob.generation = m.staged->generation;
    blob.data = shards[i];
    blob.stored_at = archive_.cluster_.now();
    if (archive_.upload_with_retry(archive_.shard_node(i), blob) ==
        TransferStatus::kOk)
      ++written;
  }

  if (written < archive_.policy_.reconstruction_threshold()) {
    // The staged set can never be read back; abandon it. The committed
    // generation was never touched, so the object stays fully readable —
    // the run stalls with the cursor at the previous object.
    discard_staging(m);
    m_stalls_->inc();
    throw UnrecoverableError(
        "MigrationEngine: only " + std::to_string(written) + " of " +
            std::to_string(shards.size()) + " staged shards of " + m.id +
            " landed — below the reconstruction threshold; resume from the "
            "last checkpoint once the cluster heals",
        ErrorCode::kBelowThreshold);
  }

  // Publish — the commit point. The manifest swaps to the staged
  // generation only now that its shard set is durable. Promotion of the
  // staging blobs into the real slots is deferred to the next step(), so
  // a checkpoint boundary always separates publish from promote; until
  // then reads fall back to the staging key (fetch_valid_shard).
  ObjectManifest::StagedGeneration& staged = *m.staged;
  m.generation = staged.generation;
  m.cipher_history.push_back(std::move(staged.ciphers));
  m.shard_hashes = std::move(staged.shard_hashes);
  m.merkle_root = std::move(staged.merkle_root);
  m.audit_challenges = std::move(staged.audit_challenges);
  m.audit_round = 0;
  m.last_migration = state_.migration_id;
  staged.phase = ObjectManifest::StagedGeneration::Phase::kPublished;
}

void MigrationEngine::throttle(double spent_ms) {
  const double frac = archive_.policy_.migrate_bandwidth_frac;
  if (frac >= 1.0 || spent_ms <= 0.0) return;
  // With only `frac` of the cluster's bandwidth available to background
  // work, moving the same bytes takes 1/frac as long: charge the
  // difference to virtual time (the paper's reserved-capacity
  // multiplier — frac = 0.5 doubles the migration's clock).
  const double extra = spent_ms * (1.0 / frac - 1.0);
  archive_.cluster_.charge_ms(extra);
  m_throttle_ms_->inc(static_cast<std::uint64_t>(extra + 0.5));
}

MigrationStepReport MigrationEngine::step() {
  Archive::OpScope scope = archive_.op_begin("migrate", ObjectId{});
  try {
    MigrationStepReport rep;
    rep.kind = state_.kind;

    // Settle what earlier steps (or a crashed run) left behind BEFORE
    // committing new work: published generations promote, staging
    // residue rolls back.
    rep.promoted = settle_staged();

    unsigned budget = archive_.policy_.migrate_batch;
    auto it = state_.cursor.empty()
                  ? archive_.manifests_.begin()
                  : archive_.manifests_.upper_bound(state_.cursor);
    for (; it != archive_.manifests_.end() && budget > 0; ++it) {
      ObjectManifest& m = it->second;
      if (!eligible(m)) {
        state_.cursor = m.id;
        ++state_.objects_skipped;
        ++rep.skipped;
        m_skipped_->inc();
        continue;
      }

      const double t0 = archive_.cluster_.simulated_ms();
      const std::uint64_t b0 = archive_.cluster_.stats().bytes_up +
                               archive_.cluster_.stats().bytes_down;
      migrate_one(m);  // throws on a stall; cursor stays put
      throttle(archive_.cluster_.simulated_ms() - t0);
      const std::uint64_t moved = archive_.cluster_.stats().bytes_up +
                                  archive_.cluster_.stats().bytes_down - b0;

      state_.cursor = m.id;
      ++state_.objects_done;
      state_.bytes_moved += moved;
      ++rep.migrated;
      rep.bytes_moved += moved;
      --budget;

      m_objects_->inc();
      m_bytes_->inc(moved);
      m_object_ms_->observe(archive_.cluster_.simulated_ms() - t0);
      archive_.cluster_.obs().emit(
          MigrationProgress{to_string(state_.kind), m.id, state_.objects_done,
                            state_.objects_total, state_.bytes_moved});
    }

    if (it == archive_.manifests_.end()) {
      // The cursor swept the whole catalog. The run completes one step
      // later, once the final batch's publishes have been promoted
      // behind a checkpoint boundary.
      bool pending = false;
      for (const auto& [id, m] : archive_.manifests_) {
        if (m.staged.has_value()) {
          pending = true;
          break;
        }
      }
      if (!pending) state_.complete = true;
    }

    rep.done = state_.complete;
    m_checkpoints_->inc();
    archive_.cluster_.obs().emit(
        MigrationCheckpoint{to_string(state_.kind), state_.cursor,
                            state_.objects_done, state_.objects_skipped,
                            state_.complete});
    archive_.op_end(scope, &rep);
    return rep;
  } catch (const Error& e) {
    archive_.op_failed(scope, ObjectId{}, e);
    throw;
  }
}

void MigrationEngine::run() {
  while (!state_.complete) step();
}

}  // namespace aegis
