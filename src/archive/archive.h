// The aegis Archive: a crypto-agile secure archival engine over a
// simulated geo-dispersed cluster.
//
// One Archive instance runs one ArchivalPolicy end-to-end:
//   put()    encode (encrypt/share/package) -> disperse over nodes,
//            stamp integrity (hash chain or LINCOS commitment chain);
//   get()    gather >= threshold shards -> decode -> verify;
//   refresh()            proactive share renewal (bumps generations);
//   rewrap()             add an outer cascade layer (ArchiveSafeLT);
//   reencrypt()          full download-decrypt-encrypt-upload migration;
//   renew_timestamps()   extend every object's timestamp chain;
//   verify()             shard integrity + temporal chain verification.
//
// The manifest records everything the obsolescence analyzer needs to
// judge what a harvest is worth, including the cipher stack *per
// generation* — a re-wrapped object's previously harvested ciphertext
// still carries only its old layers (re-wrapping cannot reach stolen
// copies; §3.2's core point about HNDL).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "archive/keyvault.h"
#include "archive/policy.h"
#include "integrity/notary.h"
#include "integrity/timestamp.h"
#include "node/cluster.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aegis {

/// Everything the archive remembers about one object.
struct ObjectManifest {
  ObjectId id;
  std::size_t size = 0;          // logical bytes
  EncodingKind encoding{};
  unsigned n = 0, k = 0, t = 0;
  std::uint32_t generation = 0;  // bumped by refresh/rewrap/reencrypt

  /// Cipher stack (inner to outer) in force at each generation;
  /// cipher_history[g] applies to shards harvested at generation g.
  std::vector<std::vector<SchemeId>> cipher_history;

  Bytes lrss_seed;                 // public extractor seed (LRSS only)
  std::vector<Bytes> shard_hashes; // SHA-256 per current-generation shard
  Bytes merkle_root;

  /// Precomputed proof-of-possession challenges (Juels–Kaliski sentinel
  /// style): per shard, a few (nonce, H(shard||nonce)) pairs minted at
  /// dispersal time so audits can verify possession without holding the
  /// shard. Consumed round-robin; regenerated whenever shards change.
  struct ShardChallenge {
    Bytes nonce;
    Bytes expected;
  };
  std::vector<std::vector<ShardChallenge>> audit_challenges;
  std::uint32_t audit_round = 0;

  /// Measured entropy estimate of the content (bits/byte), stamped at
  /// put time. Drives the entropic-encoding risk escalation: entropic
  /// security is unconditional only for high-entropy messages.
  double est_entropy_per_byte = 8.0;

  bool has_commitment = false;     // LINCOS-style stamping?
  PedersenCommitment commitment;
  PedersenOpening opening;         // stays client-side
  TimestampChain chain;

  Epoch created_at = 0;

  const std::vector<SchemeId>& current_ciphers() const {
    return cipher_history.back();
  }

  /// Wire format for catalog persistence (the client's backup of
  /// everything it needs besides keys to find and verify its data).
  Bytes serialize() const;
  static ObjectManifest deserialize(ByteView wire);
};

/// Outcome of Archive::put. A write is durable once at least the
/// reconstruction threshold of shards landed (put throws below that);
/// anything between threshold and n is an under-replicated write that
/// repair()/scrub() will heal once the missing nodes return.
struct PutReport {
  unsigned shards_total = 0;
  unsigned shards_written = 0;
  unsigned key_shares_failed = 0;  // VSS key-share uploads that failed
  std::vector<std::uint32_t> failed_shards;  // indices that never landed

  bool fully_replicated() const {
    return shards_written == shards_total && key_shares_failed == 0;
  }
  unsigned under_replication() const { return shards_total - shards_written; }
};

/// Client-side I/O accounting across retries.
struct IoStats {
  std::uint64_t upload_attempts = 0;
  std::uint64_t upload_retries = 0;
  std::uint64_t upload_failures = 0;  // shard writes abandoned
  std::uint64_t download_attempts = 0;
  std::uint64_t download_retries = 0;
  std::uint64_t download_failures = 0;  // shard reads abandoned
};

/// Outcome of Archive::verify.
struct VerifyReport {
  unsigned shards_seen = 0;
  unsigned shards_bad = 0;
  bool enough_shards = false;
  ChainStatus chain_status = ChainStatus::kEmpty;
  bool ok() const {
    return shards_bad == 0 && enough_shards &&
           chain_status == ChainStatus::kValid;
  }
};

/// Measured storage accounting (Figure 1's cost axis, measured not
/// nominal).
struct StorageReport {
  std::uint64_t logical_bytes = 0;
  std::uint64_t stored_bytes = 0;
  double overhead() const {
    return logical_bytes == 0
               ? 0.0
               : static_cast<double>(stored_bytes) / logical_bytes;
  }
};

class Archive {
 public:
  /// `registry` is consulted for chain verification; `tsa` issues
  /// timestamps. Both must outlive the archive.
  Archive(Cluster& cluster, ArchivalPolicy policy,
          const SchemeRegistry& registry, TimestampAuthority& tsa, Rng& rng);

  const ArchivalPolicy& policy() const { return policy_; }
  KeyVault& vault() { return vault_; }
  const KeyVault& vault() const { return vault_; }

  /// Stores an object. Shard I/O runs under the policy's bounded-retry
  /// regime; the report surfaces any under-replication left after the
  /// retries. Throws InvalidArgument on duplicate ids and
  /// UnrecoverableError (after rolling the partial write back) when
  /// fewer than the reconstruction threshold of shards land.
  PutReport put(const ObjectId& id, ByteView data);

  /// Retrieves an object from whatever nodes are still online. Shards
  /// failing their manifest hash are skipped silently (they count as
  /// erasures); throws UnrecoverableError when fewer than the
  /// reconstruction threshold survive.
  Bytes get(const ObjectId& id);

  void remove(const ObjectId& id);

  /// Integrity audit of one object at the cluster's current epoch.
  VerifyReport verify(const ObjectId& id);

  /// One proactive-refresh round over all refreshable material (sharing
  /// encodings re-randomize shares; VSS'd vault keys refresh). Counts
  /// traffic into the cluster stats. No-op for pure ciphertext policies.
  void refresh();

  /// Adds an outer cascade layer to every object (kCascade only).
  void rewrap(SchemeId new_outer_cipher);

  /// Full re-encryption migration: swaps the cipher stack for `fresh`
  /// on every encrypted object (the §3.2 "naive re-encryption" path).
  void reencrypt(const std::vector<SchemeId>& fresh);

  /// Renews every object's timestamp chain under the TSA's current key.
  void renew_timestamps();

  /// Registers every object's chain with a notary for automated renewal
  /// (call again after puts; chains of removed objects must not be
  /// watched — re-register on a fresh notary after removals).
  void watch_timestamps(NotaryService& notary);

  /// Disaster recovery (the POTSHARDS story): detects missing or
  /// corrupted shards of one object and rewrites them on their home
  /// nodes. Erasure-family encodings repair from any k survivors without
  /// touching plaintext; sharing encodings re-share through the dealer
  /// (bumping the generation, since partially-new share sets must not
  /// mix with old ones). Returns the number of shards rewritten.
  /// Throws UnrecoverableError below the reconstruction threshold.
  unsigned repair(const ObjectId& id);

  /// Remote integrity audit: challenges every home node to prove it
  /// still holds each shard, without transferring the shard — the node
  /// answers H(shard || nonce) and the archive checks it against the
  /// manifest hash chain. Returns per-object pass/fail counts.
  struct AuditReport {
    unsigned challenges = 0;
    unsigned passed = 0;
    unsigned failed = 0;   // wrong answer (corrupt shard)
    unsigned silent = 0;   // node offline / shard missing
    bool clean() const { return failed == 0 && silent == 0; }
  };
  AuditReport audit(const ObjectId& id);

  /// Pergamum-style scrub pass: audits every object and repairs the
  /// damage audits surface. Returns (objects audited, shards repaired).
  struct ScrubReport {
    unsigned objects = 0;
    unsigned shards_repaired = 0;
    unsigned unrecoverable = 0;  // objects beyond repair
  };
  ScrubReport scrub();

  /// Migrates every object of a sharing policy to a new (t2, n2) access
  /// structure (Wong et al. share redistribution) — e.g. when providers
  /// join/leave over the decades. Updates the policy geometry. Only
  /// valid for kShamir policies (the protocols for packed/LRSS would be
  /// dealer re-shares, available via refresh()).
  void redistribute_nodes(unsigned t2, unsigned n2);

  /// Catalog persistence: the archive is only as durable as its client's
  /// manifests and keys. export_catalog() captures both (manifests +
  /// vault masters) in one blob that a client stores out of band;
  /// import_catalog() restores a *fresh* Archive instance to full
  /// operation against the same cluster. Secrets in the blob: the vault
  /// masters — treat the export like a key backup.
  Bytes export_catalog() const;
  void import_catalog(ByteView blob);

  const ObjectManifest& manifest(const ObjectId& id) const;
  const std::map<ObjectId, ObjectManifest>& manifests() const {
    return manifests_;
  }

  StorageReport storage_report() const;

  /// The on-cluster object id carrying VSS key shares for `id` (HasDPSS
  /// custody). Exposed for the analyzer, which must recognize harvested
  /// key-share blobs.
  static std::string key_object_id(const ObjectId& id);

  /// Cumulative retry/failure counts for this archive's shard I/O.
  const IoStats& io_stats() const { return io_stats_; }

 private:
  /// Uploads the current generation of VSS key shares for one object.
  /// Returns how many share uploads failed after retries.
  unsigned upload_key_shares(const ObjectId& id);

  /// One shard write under the policy's bounded retry + exponential
  /// backoff (charged to virtual time). Retries only per-conversation
  /// faults (drops, in-flight corruption); outages and quarantines
  /// return immediately.
  TransferStatus upload_with_retry(NodeId node, const StoredBlob& blob);

  /// One shard read under the same retry regime.
  DownloadResult download_with_retry(NodeId node, const ObjectId& object,
                                     std::uint32_t shard);

  /// Encoding pipeline: logical bytes -> per-node shard payloads.
  std::vector<Bytes> encode(const ObjectId& id, ByteView data,
                            ObjectManifest& m);
  Bytes decode(const ObjectManifest& m,
               std::vector<std::optional<Bytes>> shards) const;

  /// Applies/removes the policy's cipher stack (empty stack = identity).
  Bytes apply_ciphers(const ObjectId& id, ByteView data,
                      const std::vector<SchemeId>& stack) const;

  /// Gathers up to `want` shards for the object at current generation.
  std::vector<std::optional<Bytes>> gather(const ObjectManifest& m,
                                           unsigned want,
                                           unsigned* bad_count = nullptr);

  /// Writes one shard set out (with retries), refreshing the manifest's
  /// integrity metadata. Reports which shard writes failed for good.
  struct DisperseReport {
    unsigned written = 0;
    std::vector<std::uint32_t> failed;
  };
  DisperseReport disperse(ObjectManifest& m, const std::vector<Bytes>& shards);
  NodeId shard_node(std::uint32_t shard_index) const;

  Cluster& cluster_;
  ArchivalPolicy policy_;
  const SchemeRegistry& registry_;
  TimestampAuthority& tsa_;
  Rng& rng_;
  KeyVault vault_;
  IoStats io_stats_;
  std::map<ObjectId, ObjectManifest> manifests_;
  // Compute pool for the encode/decode pipeline (policy.encode_workers).
  // Mutable because decode() is const but borrows the pool; the pool
  // carries no archive state. Cluster I/O never runs on it.
  mutable ThreadPool pool_;
};

}  // namespace aegis
