// The aegis Archive: a crypto-agile secure archival engine over a
// simulated geo-dispersed cluster.
//
// One Archive instance runs one ArchivalPolicy end-to-end:
//   put()    encode (encrypt/share/package) -> disperse over nodes,
//            stamp integrity (hash chain or LINCOS commitment chain);
//   get()    gather >= threshold shards -> decode -> verify;
//   refresh()            proactive share renewal (bumps generations);
//   rewrap()             add an outer cascade layer (ArchiveSafeLT);
//   reencrypt()          full download-decrypt-encrypt-upload migration;
//   renew_timestamps()   extend every object's timestamp chain;
//   verify()             shard integrity + temporal chain verification.
//
// The manifest records everything the obsolescence analyzer needs to
// judge what a harvest is worth, including the cipher stack *per
// generation* — a re-wrapped object's previously harvested ciphertext
// still carries only its old layers (re-wrapping cannot reach stolen
// copies; §3.2's core point about HNDL).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "archive/keyvault.h"
#include "archive/policy.h"
#include "archive/reports.h"
#include "integrity/notary.h"
#include "integrity/timestamp.h"
#include "node/cluster.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aegis {

/// Everything the archive remembers about one object.
struct ObjectManifest {
  ObjectId id;
  std::size_t size = 0;          // logical bytes
  EncodingKind encoding{};
  unsigned n = 0, k = 0, t = 0;
  std::uint32_t generation = 0;  // bumped by refresh/rewrap/reencrypt

  /// Cipher stack (inner to outer) in force at each generation;
  /// cipher_history[g] applies to shards harvested at generation g.
  std::vector<std::vector<SchemeId>> cipher_history;

  Bytes lrss_seed;                 // public extractor seed (LRSS only)
  std::vector<Bytes> shard_hashes; // SHA-256 per current-generation shard
  Bytes merkle_root;

  /// Precomputed proof-of-possession challenges (Juels–Kaliski sentinel
  /// style): per shard, a few (nonce, H(shard||nonce)) pairs minted at
  /// dispersal time so audits can verify possession without holding the
  /// shard. Consumed round-robin; regenerated whenever shards change.
  struct ShardChallenge {
    Bytes nonce;
    Bytes expected;
  };
  std::vector<std::vector<ShardChallenge>> audit_challenges;
  std::uint32_t audit_round = 0;

  /// In-flight migration state for THIS object (absent in steady state).
  /// The MigrationEngine stages a candidate next generation here while
  /// its shards are written to the staging key (staging_object_id), so
  /// the committed generation's shards stay untouched until the staged
  /// set is durable:
  ///
  ///   kStaging   — staged shards are landing at the staging key; the
  ///                manifest's committed fields still describe the old
  ///                generation, and reads ignore the staging area.
  ///   kPublished — the commit point passed: the manifest's committed
  ///                fields now describe the staged generation, but its
  ///                blobs may still live (wholly or partly) under the
  ///                staging key until the engine promotes them into the
  ///                real slots. Reads fall back to the staging key for
  ///                any shard whose real slot is stale or missing.
  ///
  /// A crash in either phase leaves the object readable under exactly
  /// one coherent cipher stack: kStaging rolls forward by re-staging,
  /// kPublished by re-promoting (both idempotent).
  struct StagedGeneration {
    enum class Phase : std::uint8_t { kStaging = 0, kPublished = 1 };
    Phase phase = Phase::kStaging;
    std::uint32_t generation = 0;  // committed generation + 1
    std::vector<SchemeId> ciphers;
    std::vector<Bytes> shard_hashes;
    Bytes merkle_root;
    std::vector<std::vector<ShardChallenge>> audit_challenges;
  };
  std::optional<StagedGeneration> staged;

  /// Fingerprint of the last MigrationEngine run that committed this
  /// object — the idempotence marker a resumed run uses to skip objects
  /// it already migrated (the cursor alone cannot tell when the engine
  /// resumes from a checkpoint older than the manifest state).
  std::uint64_t last_migration = 0;

  /// Measured entropy estimate of the content (bits/byte), stamped at
  /// put time. Drives the entropic-encoding risk escalation: entropic
  /// security is unconditional only for high-entropy messages.
  double est_entropy_per_byte = 8.0;

  bool has_commitment = false;     // LINCOS-style stamping?
  PedersenCommitment commitment;
  PedersenOpening opening;         // stays client-side
  TimestampChain chain;

  Epoch created_at = 0;

  const std::vector<SchemeId>& current_ciphers() const {
    return cipher_history.back();
  }

  /// Wire format for catalog persistence (the client's backup of
  /// everything it needs besides keys to find and verify its data).
  Bytes serialize() const;
  static ObjectManifest deserialize(ByteView wire);
};

// Report types (PutReport, GetReport, VerifyReport, AuditReport,
// ScrubReport, DisperseReport, StorageReport, IoStats) live in
// archive/reports.h; they all derive from OpReport and render as JSON.

/// Result of Archive::get_report: the reconstructed bytes plus the
/// evidence trail of how the read went.
struct GetResult {
  Bytes data;
  GetReport report;
};

class Archive {
 public:
  /// `registry` is consulted for chain verification; `tsa` issues
  /// timestamps. Both must outlive the archive.
  Archive(Cluster& cluster, ArchivalPolicy policy,
          const SchemeRegistry& registry, TimestampAuthority& tsa, Rng& rng);

  const ArchivalPolicy& policy() const { return policy_; }
  KeyVault& vault() { return vault_; }
  const KeyVault& vault() const { return vault_; }

  /// Stores an object. Shard I/O runs under the policy's bounded-retry
  /// regime; the report surfaces any under-replication left after the
  /// retries. Throws InvalidArgument on duplicate ids and
  /// UnrecoverableError (after rolling the partial write back) when
  /// fewer than the reconstruction threshold of shards land.
  PutReport put(const ObjectId& id, ByteView data);

  /// Retrieves an object from whatever nodes are still online. Shards
  /// failing their manifest hash are skipped silently (they count as
  /// erasures); throws UnrecoverableError when fewer than the
  /// reconstruction threshold survive.
  Bytes get(const ObjectId& id);

  /// Like get(), but also returns the evidence: shards gathered, bad
  /// shards skipped, download retries spent, bytes moved. get() is a
  /// thin wrapper over this.
  GetResult get_report(const ObjectId& id);

  void remove(const ObjectId& id);

  /// Integrity audit of one object at the cluster's current epoch.
  VerifyReport verify(const ObjectId& id);

  /// One proactive-refresh round over all refreshable material (sharing
  /// encodings re-randomize shares; VSS'd vault keys refresh). Counts
  /// traffic into the cluster stats. No-op for pure ciphertext policies.
  void refresh();

  /// Adds an outer cascade layer to every object (kCascade only).
  void rewrap(SchemeId new_outer_cipher);

  /// Full re-encryption migration: swaps the cipher stack for `fresh`
  /// on every encrypted object (the §3.2 "naive re-encryption" path).
  void reencrypt(const std::vector<SchemeId>& fresh);

  /// Renews every object's timestamp chain under the TSA's current key.
  void renew_timestamps();

  /// Registers every object's chain with a notary for automated renewal
  /// (call again after puts; chains of removed objects must not be
  /// watched — re-register on a fresh notary after removals).
  void watch_timestamps(NotaryService& notary);

  /// Disaster recovery (the POTSHARDS story): detects missing or
  /// corrupted shards of one object and rewrites them on their home
  /// nodes. Erasure-family encodings repair from any k survivors without
  /// touching plaintext; sharing encodings re-share through the dealer
  /// (bumping the generation, since partially-new share sets must not
  /// mix with old ones). Returns the number of shards rewritten.
  /// Throws UnrecoverableError below the reconstruction threshold.
  unsigned repair(const ObjectId& id);

  /// Remote integrity audit: challenges every home node to prove it
  /// still holds each shard, without transferring the shard — the node
  /// answers H(shard || nonce) and the archive checks it against the
  /// manifest hash chain. Returns per-object pass/fail counts.
  /// (Historical nested name; the struct now lives in reports.h.)
  using AuditReport = aegis::AuditReport;
  AuditReport audit(const ObjectId& id);

  /// Pergamum-style scrub pass: audits every object and repairs the
  /// damage audits surface. Returns (objects audited, shards repaired).
  using ScrubReport = aegis::ScrubReport;
  ScrubReport scrub();

  /// Migrates every object of a sharing policy to a new (t2, n2) access
  /// structure (Wong et al. share redistribution) — e.g. when providers
  /// join/leave over the decades. Updates the policy geometry. Only
  /// valid for kShamir policies (the protocols for packed/LRSS would be
  /// dealer re-shares, available via refresh()).
  void redistribute_nodes(unsigned t2, unsigned n2);

  /// Catalog persistence: the archive is only as durable as its client's
  /// manifests and keys. export_catalog() captures both (manifests +
  /// vault masters) in one blob that a client stores out of band;
  /// import_catalog() restores a *fresh* Archive instance to full
  /// operation against the same cluster. Secrets in the blob: the vault
  /// masters — treat the export like a key backup.
  Bytes export_catalog() const;
  void import_catalog(ByteView blob);

  const ObjectManifest& manifest(const ObjectId& id) const;
  const std::map<ObjectId, ObjectManifest>& manifests() const {
    return manifests_;
  }

  StorageReport storage_report() const;

  /// The on-cluster object id carrying VSS key shares for `id` (HasDPSS
  /// custody). Exposed for the analyzer, which must recognize harvested
  /// key-share blobs.
  static std::string key_object_id(const ObjectId& id);

  /// The on-cluster object id the MigrationEngine stages next-generation
  /// shards under while the committed generation's blobs stay intact.
  static std::string staging_object_id(const ObjectId& id);

  /// Cumulative retry/failure counts for this archive's shard I/O.
  const IoStats& io_stats() const { return io_stats_; }

 private:
  /// Uploads the current generation of VSS key shares for one object.
  /// Returns how many share uploads failed after retries.
  unsigned upload_key_shares(const ObjectId& id);

  /// One shard write under the policy's bounded retry + exponential
  /// backoff (charged to virtual time). Retries only per-conversation
  /// faults (drops, in-flight corruption); outages and quarantines
  /// return immediately.
  TransferStatus upload_with_retry(NodeId node, const StoredBlob& blob);

  /// One shard read under the same retry regime.
  DownloadResult download_with_retry(NodeId node, const ObjectId& object,
                                     std::uint32_t shard);

  /// Encoding pipeline: logical bytes -> per-node shard payloads.
  std::vector<Bytes> encode(const ObjectId& id, ByteView data,
                            ObjectManifest& m);
  Bytes decode(const ObjectManifest& m,
               std::vector<std::optional<Bytes>> shards) const;

  /// Applies/removes the policy's cipher stack (empty stack = identity).
  Bytes apply_ciphers(const ObjectId& id, ByteView data,
                      const std::vector<SchemeId>& stack) const;

  /// Downloads and validates one shard of the committed generation.
  /// When the real slot is stale or missing and the object has a
  /// published-but-unpromoted staged generation, falls back to the
  /// staging key — mid-migration reads must serve whichever slot holds
  /// the committed bytes. Sets *bad when a hash-mismatched (corrupt)
  /// real-slot shard was seen.
  std::optional<Bytes> fetch_valid_shard(const ObjectManifest& m,
                                         std::uint32_t shard,
                                         bool* bad = nullptr);

  /// Gathers up to `want` shards for the object at current generation.
  std::vector<std::optional<Bytes>> gather(const ObjectManifest& m,
                                           unsigned want,
                                           unsigned* bad_count = nullptr);

  /// Writes one shard set out (with retries), refreshing the manifest's
  /// integrity metadata. Reports which shard writes failed for good.
  /// (Historical nested name; the struct now lives in reports.h.)
  using DisperseReport = aegis::DisperseReport;
  DisperseReport disperse(ObjectManifest& m, const std::vector<Bytes>& shards);
  NodeId shard_node(std::uint32_t shard_index) const;

  /// Per-op observability scaffolding. Public operations run through
  /// run_op, which sets current_op_ (so the shared retry helpers can
  /// attribute retries to `archive.<op>.retries`), opens an
  /// `archive.<op>` trace span, bumps `archive.<op>.count`, observes
  /// virtual duration into `archive.<op>.ms`, and stamps the OpReport
  /// header on the result. On an Error it records
  /// `archive.<op>.failures`, emits OperationFailed{code} and rethrows.
  /// Ops nest (scrub -> audit/repair/get): OpScope restores the outer
  /// op on exit.
  struct OpScope {
    const char* op = nullptr;    // short name, e.g. "put"
    const char* prev = nullptr;  // outer op, restored on exit
    double t0_ms = 0;            // cluster virtual ms at entry
    std::unique_ptr<TraceSpan> span;
  };
  OpScope op_begin(const char* op, const ObjectId& object);
  void op_end(OpScope& scope, OpReport* report);
  void op_failed(OpScope& scope, const ObjectId& object, const Error& e);
  template <class Fn>
  auto run_op(const char* op, const ObjectId& object, Fn&& fn);

  // Un-instrumented operation bodies; the public entry points wrap these
  // in run_op.
  PutReport put_impl(const ObjectId& id, ByteView data);
  unsigned repair_impl(const ObjectId& id);
  AuditReport audit_impl(const ObjectId& id);
  void refresh_impl();
  void rewrap_impl(SchemeId new_outer_cipher);
  void reencrypt_impl(const std::vector<SchemeId>& fresh);
  void redistribute_nodes_impl(unsigned t2, unsigned n2);

  // The migration engine drives the staged-generation protocol through
  // the archive's private encode/transfer plumbing (it is the archive's
  // background half, split into its own type so runs can pause, resume
  // and checkpoint across archive instances).
  friend class MigrationEngine;

  // The doctor shares the archive's per-object verify/repair core and
  // runs its slices as `archive.doctor` ops through the same
  // instrumentation (op_begin/op_end) as every foreground operation.
  friend class Doctor;

  Cluster& cluster_;
  ArchivalPolicy policy_;
  const SchemeRegistry& registry_;
  TimestampAuthority& tsa_;
  Rng& rng_;
  KeyVault vault_;
  IoStats io_stats_;
  // Hot-path metric handles mirroring io_stats_ increment-for-increment
  // (`archive.io.*`): the metric view and the struct view can never
  // disagree. Resolved once in the constructor.
  Counter* m_up_attempts_ = nullptr;
  Counter* m_up_retries_ = nullptr;
  Counter* m_up_failures_ = nullptr;
  Counter* m_down_attempts_ = nullptr;
  Counter* m_down_retries_ = nullptr;
  Counter* m_down_failures_ = nullptr;
  // Operation the archive is currently inside (null between ops); lets
  // the shared retry helpers attribute retries/failures per operation.
  const char* current_op_ = nullptr;
  std::map<ObjectId, ObjectManifest> manifests_;
  // Compute pool for the encode/decode pipeline (policy.encode_workers).
  // Mutable because decode() is const but borrows the pool; the pool
  // carries no archive state. Cluster I/O never runs on it.
  mutable ThreadPool pool_;
};

}  // namespace aegis
