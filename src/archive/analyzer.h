// Security analysis: Table 1 classification and the Harvest-Now-
// Decrypt-Later deduction engine.
//
// The analyzer answers two questions:
//   1. classify(policy): the long-term confidentiality class of a policy
//      at rest and in transit, plus its nominal storage cost — the three
//      columns of the paper's Table 1.
//   2. ExposureAnalyzer::analyze(...): given everything a mobile
//      adversary harvested (node blobs + wiretapped conversations) and a
//      break timeline, which objects' *content* does the adversary hold,
//      since when, and through which mechanism? This is the deduction an
//      actual attacker would run; the simulator runs it omnisciently so
//      experiments can report ground truth.
//
// Deduction rules (per object, per refresh generation — shares from
// different generations never combine):
//   replication        1 shard                       -> content
//   erasure            1 systematic shard            -> content fragment
//                      (counted as exposure: the encoding has no secrecy)
//   encrypt+erasure    k shards -> ciphertext; content when every cipher
//                      in that generation's stack is broken, or when the
//                      key is exposed (VSS custody: vault_threshold key
//                      shares of one key generation). Even ONE shard
//                      becomes a plaintext fragment at the same break —
//                      sub-threshold harvests are only safe while the
//                      stack holds.
//   AONT-RS            k shards -> the whole package -> content with NO
//                      break needed (keyless design); or >=1 shard plus a
//                      broken package cipher/hash
//   entropic+erasure   k shards -> content only for low-entropy messages
//                      (reported as a caveat, not an exposure)
//   shamir/LRSS        t same-generation shares      -> content (ITS:
//                      breaks never matter)
//   packed             t+k same-generation shares -> content; more than t
//                      but fewer than t+k is flagged partial
//   wiretap            a conversation's payload joins the harvest at the
//                      epoch its channel falls (TLS: min break of ECDH /
//                      AES; QKD: never; cleartext: immediately)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "node/adversary.h"

namespace aegis {

/// One row of Table 1, computed from a policy.
struct PolicyClassification {
  std::string system;
  SecurityClass at_rest;
  SecurityClass in_transit;
  double nominal_overhead;
  bool proactive;
  bool hiding_timestamps;  // LINCOS-style commitment chains
};

PolicyClassification classify(const ArchivalPolicy& policy);

/// Printable label for a confidentiality class ("Computational", "ITS"..).
const char* confidentiality_label(SecurityClass c);

/// Verdict for one object.
struct ObjectExposure {
  ObjectId id;
  bool content_exposed = false;
  Epoch exposed_at = kNever;
  std::string mechanism;      // human-readable cause
  bool ciphertext_held = false;   // adversary can rebuild the ciphertext
  Epoch ciphertext_at = kNever;
  bool partial_leak = false;      // packed sharing above privacy threshold
  bool entropy_caveat = false;    // entropic encoding: low-entropy risk
  unsigned best_generation_shards = 0;  // max same-gen distinct shards
};

/// Aggregate over an archive.
struct ExposureReport {
  std::vector<ObjectExposure> objects;
  unsigned exposed_count = 0;
  Epoch first_exposure = kNever;

  const ObjectExposure* find(const ObjectId& id) const;
};

/// Runs the HNDL deduction for one archive against one adversary haul.
class ExposureAnalyzer {
 public:
  ExposureAnalyzer(const Archive& archive, const SchemeRegistry& registry)
      : archive_(archive), registry_(registry) {}

  ExposureReport analyze(const std::vector<HarvestedBlob>& harvest,
                         const std::vector<WiretapRecord>& wiretap,
                         Epoch now) const;

 private:
  const Archive& archive_;
  const SchemeRegistry& registry_;
};

}  // namespace aegis
