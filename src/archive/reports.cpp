#include "archive/reports.h"

#include <cstdio>

namespace aegis {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string index_list(const std::vector<std::uint32_t>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ',';
    out += num(static_cast<std::uint64_t>(xs[i]));
  }
  return out + "]";
}

const char* bool_str(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string OpReport::json_head() const {
  return "\"op\":\"" + op + "\",\"epoch\":" +
         num(static_cast<std::uint64_t>(epoch)) +
         ",\"duration_ms\":" + num(duration_ms);
}

std::string PutReport::to_json() const {
  return "{" + json_head() + ",\"shards_total\":" + num(std::uint64_t{shards_total}) +
         ",\"shards_written\":" + num(std::uint64_t{shards_written}) +
         ",\"key_shares_failed\":" + num(std::uint64_t{key_shares_failed}) +
         ",\"failed_shards\":" + index_list(failed_shards) +
         ",\"ok\":" + bool_str(ok()) + "}";
}

std::string GetReport::to_json() const {
  return "{" + json_head() +
         ",\"shards_gathered\":" + num(std::uint64_t{shards_gathered}) +
         ",\"shards_bad\":" + num(std::uint64_t{shards_bad}) +
         ",\"retries\":" + num(retries) +
         ",\"bytes_down\":" + num(bytes_down) +
         ",\"logical_bytes\":" + num(logical_bytes) +
         ",\"ok\":" + bool_str(ok()) + "}";
}

std::string VerifyReport::to_json() const {
  return "{" + json_head() +
         ",\"shards_seen\":" + num(std::uint64_t{shards_seen}) +
         ",\"shards_bad\":" + num(std::uint64_t{shards_bad}) +
         ",\"enough_shards\":" + bool_str(enough_shards) +
         ",\"chain_status\":\"" + to_string(chain_status) + "\"" +
         ",\"ok\":" + bool_str(ok()) + "}";
}

std::string AuditReport::to_json() const {
  return "{" + json_head() +
         ",\"challenges\":" + num(std::uint64_t{challenges}) +
         ",\"passed\":" + num(std::uint64_t{passed}) +
         ",\"failed\":" + num(std::uint64_t{failed}) +
         ",\"silent\":" + num(std::uint64_t{silent}) +
         ",\"ok\":" + bool_str(ok()) + "}";
}

std::string ScrubReport::to_json() const {
  return "{" + json_head() + ",\"objects\":" + num(std::uint64_t{objects}) +
         ",\"shards_repaired\":" + num(std::uint64_t{shards_repaired}) +
         ",\"unrecoverable\":" + num(std::uint64_t{unrecoverable}) +
         ",\"ok\":" + bool_str(ok()) + "}";
}

std::string DisperseReport::to_json() const {
  return "{" + json_head() + ",\"written\":" + num(std::uint64_t{written}) +
         ",\"failed\":" + index_list(failed) + ",\"ok\":" + bool_str(ok()) +
         "}";
}

std::string IoStats::to_json() const {
  return std::string("{\"op\":\"archive.io\"") +
         ",\"upload_attempts\":" + num(upload_attempts) +
         ",\"upload_retries\":" + num(upload_retries) +
         ",\"upload_failures\":" + num(upload_failures) +
         ",\"download_attempts\":" + num(download_attempts) +
         ",\"download_retries\":" + num(download_retries) +
         ",\"download_failures\":" + num(download_failures) + "}";
}

std::string StorageReport::to_json() const {
  return "{" + json_head() + ",\"logical_bytes\":" + num(logical_bytes) +
         ",\"stored_bytes\":" + num(stored_bytes) +
         ",\"overhead\":" + num(overhead()) + "}";
}

}  // namespace aegis
