#include "archive/multi.h"

#include "util/error.h"

namespace aegis {

const char* to_string(Sensitivity s) {
  switch (s) {
    case Sensitivity::kPublic: return "public";
    case Sensitivity::kInternal: return "internal";
    case Sensitivity::kSecret: return "secret";
    case Sensitivity::kTopSecret: return "top-secret";
  }
  return "?";
}

namespace {
ArchivalPolicy default_policy(Sensitivity s) {
  switch (s) {
    case Sensitivity::kPublic: {
      ArchivalPolicy p = ArchivalPolicy::FigErasure();
      p.name = "pasis/public";
      return p;
    }
    case Sensitivity::kInternal: {
      ArchivalPolicy p = ArchivalPolicy::CloudBaseline();
      p.name = "pasis/internal";
      return p;
    }
    case Sensitivity::kSecret: {
      ArchivalPolicy p = ArchivalPolicy::AontRs();
      p.name = "pasis/secret";
      return p;
    }
    case Sensitivity::kTopSecret: {
      ArchivalPolicy p = ArchivalPolicy::VsrArchive();
      p.name = "pasis/top-secret";
      return p;
    }
  }
  throw InvalidArgument("default_policy: bad sensitivity");
}

std::size_t idx(Sensitivity s) { return static_cast<std::size_t>(s); }
}  // namespace

MultiArchive::MultiArchive(Cluster& cluster, const SchemeRegistry& registry,
                           TimestampAuthority& tsa, Rng& rng)
    : cluster_(cluster), registry_(registry), tsa_(tsa), rng_(rng) {
  for (unsigned s = 0; s < kSensitivityLevels; ++s) {
    archives_[s] = std::make_unique<Archive>(
        cluster_, default_policy(static_cast<Sensitivity>(s)), registry_,
        tsa_, rng_);
  }
}

void MultiArchive::set_policy(Sensitivity s, ArchivalPolicy policy) {
  if (used_[idx(s)])
    throw InvalidArgument(
        "MultiArchive: class already has stored objects; policy is fixed");
  archives_[idx(s)] = std::make_unique<Archive>(cluster_, std::move(policy),
                                                registry_, tsa_, rng_);
}

const ArchivalPolicy& MultiArchive::policy(Sensitivity s) const {
  return archives_[idx(s)]->policy();
}

void MultiArchive::put(const ObjectId& id, ByteView data, Sensitivity s) {
  if (index_.count(id) > 0)
    throw InvalidArgument("MultiArchive: duplicate object id " + id);
  archives_[idx(s)]->put(id, data);
  index_[id] = s;
  used_[idx(s)] = true;
}

Sensitivity MultiArchive::sensitivity(const ObjectId& id) const {
  const auto it = index_.find(id);
  if (it == index_.end())
    throw InvalidArgument("MultiArchive: unknown object " + id);
  return it->second;
}

Bytes MultiArchive::get(const ObjectId& id) {
  return archives_[idx(sensitivity(id))]->get(id);
}

VerifyReport MultiArchive::verify(const ObjectId& id) {
  return archives_[idx(sensitivity(id))]->verify(id);
}

void MultiArchive::refresh() {
  for (auto& a : archives_) {
    if (a->policy().proactive_refresh) a->refresh();
  }
}

StorageReport MultiArchive::storage_report() const {
  StorageReport total;
  for (const auto& a : archives_) {
    const StorageReport r = a->storage_report();
    total.logical_bytes += r.logical_bytes;
    total.stored_bytes += r.stored_bytes;
  }
  return total;
}

StorageReport MultiArchive::storage_report(Sensitivity s) const {
  return archives_[idx(s)]->storage_report();
}

Archive& MultiArchive::archive_for(Sensitivity s) {
  return *archives_[idx(s)];
}

}  // namespace aegis
