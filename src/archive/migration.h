// Crash-consistent background migration: re-encryption, re-wrap and
// timestamp renewal as an incremental, resumable, throttled job.
//
// The paper's §3.2 argues that whole-archive re-encryption is the cost
// that makes crypto-agility hard: the operator must move every byte,
// without pausing foreground traffic, without ever leaving an object in
// a state where neither the old nor the new ciphertext is recoverable.
// The legacy rewrap_impl/reencrypt_impl paths had exactly that bug:
// they bumped the manifest generation and cipher history *before*
// dispersing the new shards, so a fault mid-dispersal stranded the
// object — manifest pointing at a generation whose shards never landed,
// old shards already overwritten or stale.
//
// The MigrationEngine replaces the one-shot loops with a three-phase
// per-object protocol whose commit point is explicit:
//
//   stage    — the next generation's shards are written under the
//              staging key (Archive::staging_object_id); the committed
//              generation's blobs and manifest are untouched. A fault
//              here costs only the staging writes.
//   publish  — only once >= reconstruction_threshold staged shards
//              landed does the manifest swap to the staged generation
//              (generation, cipher_history, hashes, merkle root, audit
//              challenges move in one assignment). This is the commit.
//   promote  — the staged blobs are renamed node-locally into the real
//              shard slots. Promotion is deferred to the START of the
//              NEXT step(), so a checkpoint boundary always separates
//              publish from promote: a crash between them leaves the
//              object readable through the staging-key fallback in
//              Archive::fetch_valid_shard, and re-promotion is
//              idempotent.
//
// The engine's cursor (MigrationState) serializes to a few dozen bytes;
// together with Archive::export_catalog() it forms a checkpoint from
// which a *fresh* Archive + MigrationEngine pair resumes the run after
// a crash, finishing exactly the objects the dead run did not commit.
// Per-object idempotence across stale checkpoints comes from the
// manifest's last_migration fingerprint, not the cursor alone.
//
// Throttling models §3.2's reserved-foreground-capacity multiplier:
// with policy.migrate_bandwidth_frac = f, every object's migration I/O
// is stretched to 1/f of its nominal virtual time (f = 0.5 is the
// paper's "reserve ×2 capacity" case). Progress and checkpoints are
// observable as MigrationProgress / MigrationCheckpoint events and
// archive.migrate.* metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/reports.h"

namespace aegis {

class Counter;
class Histogram;

/// What a migration run rewrites.
enum class MigrationKind : std::uint8_t {
  kReencrypt = 0,        // swap the cipher stack (decrypt + re-encrypt)
  kRewrap = 1,           // add an outer cascade layer (never decrypts)
  kRenewTimestamps = 2,  // extend every timestamp chain
};

const char* to_string(MigrationKind k);

/// Parameters of a new migration run.
struct MigrationSpec {
  MigrationKind kind = MigrationKind::kReencrypt;
  std::vector<SchemeId> fresh;  // kReencrypt: replacement stack
  SchemeId outer = SchemeId::kAes256Ctr;  // kRewrap: new outer layer
};

/// The engine's durable cursor. Serialize it next to the catalog export
/// between step() calls and a crashed run can be resumed on a fresh
/// Archive instance; every field is plain data on purpose.
struct MigrationState {
  MigrationKind kind = MigrationKind::kReencrypt;
  std::vector<SchemeId> fresh;
  SchemeId outer = SchemeId::kAes256Ctr;

  /// Fingerprint of (kind, parameters, start epoch); stamped into each
  /// committed manifest's last_migration so a resumed run recognizes
  /// objects it already migrated even from a stale checkpoint.
  std::uint64_t migration_id = 0;

  ObjectId cursor;  // last object id committed or skipped; "" = start
  std::uint64_t objects_done = 0;     // committed by this run
  std::uint64_t objects_skipped = 0;  // ineligible or already migrated
  std::uint64_t objects_total = 0;    // manifests when the run started
  std::uint64_t bytes_moved = 0;      // cumulative up+down payload bytes
  bool complete = false;

  Bytes serialize() const;
  static MigrationState deserialize(ByteView wire);
};

/// Outcome of one MigrationEngine::step() — one checkpoint interval.
struct MigrationStepReport : OpReport {
  MigrationKind kind = MigrationKind::kReencrypt;
  unsigned migrated = 0;   // objects staged + published this step
  unsigned promoted = 0;   // earlier publishes promoted this step
  unsigned skipped = 0;    // ineligible objects passed over
  std::uint64_t bytes_moved = 0;  // payload bytes this step
  bool done = false;       // the whole run finished (incl. promotions)
  std::string to_json() const;
};

/// Drives one migration run over one Archive. The engine borrows the
/// archive's private plumbing (gather/decode/cipher/transfer) so its
/// reads never inflate the client-facing archive.get.* metrics, and all
/// of its own work lands under archive.migrate.*.
///
/// Typical background loop:
///
///   MigrationEngine eng(archive, {MigrationKind::kReencrypt, fresh});
///   while (!eng.done()) {
///     eng.step();                        // migrates policy.migrate_batch
///     save(eng.checkpoint(), archive.export_catalog());
///     cluster.advance_epoch();           // foreground work interleaves
///   }
///
/// step() throws UnrecoverableError (kBelowThreshold) when a staged
/// dispersal cannot reach the reconstruction threshold; the cursor stays
/// at the last committed object and the same engine (or a resumed one)
/// retries from there. Nothing is ever stranded: the failed object's
/// committed generation is still fully intact.
class MigrationEngine {
 public:
  /// Starts a fresh run. Throws InvalidArgument when the spec does not
  /// fit the archive's policy (re-encrypting a policy with no cipher
  /// stack, re-wrapping a non-cascade, a non-cipher outer scheme).
  MigrationEngine(Archive& archive, MigrationSpec spec);

  /// Resumes a checkpointed run — typically on a fresh Archive restored
  /// via import_catalog(). Validates the state against the policy.
  MigrationEngine(Archive& archive, MigrationState state);

  /// One checkpoint interval: promotes generations published by the
  /// previous step, then stages + publishes up to policy.migrate_batch
  /// eligible objects. Runs as an `archive.migrate` operation.
  MigrationStepReport step();

  /// Steps until done. Equivalent to the legacy one-shot rewrap /
  /// reencrypt drive (which now routes through here).
  void run();

  /// True once every eligible object is committed AND promoted.
  bool done() const { return state_.complete; }

  const MigrationState& state() const { return state_; }

  /// Serialized cursor — store it next to export_catalog() after each
  /// step; the pair is the crash-resume checkpoint.
  Bytes checkpoint() const { return state_.serialize(); }

 private:
  static void validate(const Archive& archive, MigrationKind kind,
                       const std::vector<SchemeId>& fresh, SchemeId outer);
  static std::uint64_t fingerprint(const MigrationState& s, Epoch start);
  void bind_metrics();

  bool eligible(const ObjectManifest& m) const;
  /// Clears kStaging residue and promotes kPublished staged generations
  /// left by earlier steps (or a crashed run). Returns promotions done.
  unsigned settle_staged();
  void promote(ObjectManifest& m);
  void discard_staging(ObjectManifest& m);
  /// Stage + publish one object. Throws on a below-threshold dispersal.
  void migrate_one(ObjectManifest& m);
  /// Charges the reserved-capacity penalty for work that took `spent`
  /// virtual ms at full bandwidth.
  void throttle(double spent_ms);

  Archive& archive_;
  MigrationState state_;

  Counter* m_objects_ = nullptr;      // archive.migrate.objects
  Counter* m_skipped_ = nullptr;      // archive.migrate.skipped
  Counter* m_bytes_ = nullptr;        // archive.migrate.bytes
  Counter* m_throttle_ms_ = nullptr;  // archive.migrate.throttle_ms
  Counter* m_checkpoints_ = nullptr;  // archive.migrate.checkpoints
  Counter* m_stalls_ = nullptr;       // archive.migrate.stalls
  Histogram* m_object_ms_ = nullptr;  // archive.migrate.object_ms
};

}  // namespace aegis
