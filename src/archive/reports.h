// Operation reports: one common shape for everything the archive
// measures about its own operations.
//
// Every public Archive operation returns (or accumulates into) a report
// deriving from OpReport: the operation name, the cluster virtual epoch
// it completed at, and the virtual milliseconds it consumed — plus the
// operation-specific fields the previous ad-hoc structs carried, under
// their original names. Each report renders itself as a single JSON
// object (to_json) in the same one-line shape the BENCH_*.json artifacts
// and the metrics snapshot use, so per-op evidence and aggregate metrics
// land in one pipeline.
//
// The structs live at namespace scope (the Archive class re-exports its
// historical nested names as aliases) so non-archive code — benches,
// multi-archive orchestration, tests — can name them without dragging in
// the Archive definition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/scheme.h"  // Epoch
#include "integrity/timestamp.h"  // ChainStatus
#include "util/bytes.h"

namespace aegis {

/// Common header every per-operation report starts with. Derived reports
/// keep aggregate semantics: plain data, field-by-field access, no
/// virtuals. `duration_ms` is *virtual* (simulated transport + backoff)
/// time, so it is deterministic for a given seed and safe to assert on.
struct OpReport {
  std::string op;          // e.g. "archive.put"
  Epoch epoch = 0;         // cluster epoch at completion
  double duration_ms = 0;  // virtual milliseconds consumed

  /// JSON fragment `"op":...,"epoch":...,"duration_ms":...` shared by
  /// every derived to_json().
  std::string json_head() const;
};

/// Outcome of Archive::put. A write is durable once at least the
/// reconstruction threshold of shards landed (put throws below that);
/// anything between threshold and n is an under-replicated write that
/// repair()/scrub() will heal once the missing nodes return.
struct PutReport : OpReport {
  unsigned shards_total = 0;
  unsigned shards_written = 0;
  unsigned key_shares_failed = 0;  // VSS key-share uploads that failed
  std::vector<std::uint32_t> failed_shards;  // indices that never landed

  bool fully_replicated() const {
    return shards_written == shards_total && key_shares_failed == 0;
  }
  unsigned under_replication() const { return shards_total - shards_written; }
  bool ok() const { return fully_replicated(); }
  std::string to_json() const;
};

/// Outcome of Archive::get_report: what the gather actually saw on the
/// way to reconstructing the object.
struct GetReport : OpReport {
  unsigned shards_gathered = 0;  // intact, current-generation shards used
  unsigned shards_bad = 0;       // hash-mismatched shards skipped
  std::uint64_t retries = 0;     // download retries spent on this read
  std::uint64_t bytes_down = 0;  // payload bytes moved node -> client
  std::uint64_t logical_bytes = 0;  // size of the reconstructed object

  /// A clean read: no corrupt shards surfaced and no retries were needed.
  bool ok() const { return shards_bad == 0 && retries == 0; }
  std::string to_json() const;
};

/// Outcome of Archive::verify.
struct VerifyReport : OpReport {
  unsigned shards_seen = 0;
  unsigned shards_bad = 0;
  bool enough_shards = false;
  ChainStatus chain_status = ChainStatus::kEmpty;
  bool ok() const {
    return shards_bad == 0 && enough_shards &&
           chain_status == ChainStatus::kValid;
  }
  std::string to_json() const;
};

/// Outcome of Archive::audit — remote proof-of-possession challenges.
struct AuditReport : OpReport {
  unsigned challenges = 0;
  unsigned passed = 0;
  unsigned failed = 0;   // wrong answer (corrupt shard)
  unsigned silent = 0;   // node offline / shard missing
  bool clean() const { return failed == 0 && silent == 0; }
  bool ok() const { return clean(); }
  std::string to_json() const;
};

/// Outcome of Archive::scrub — audit-everything-repair-damage pass.
struct ScrubReport : OpReport {
  unsigned objects = 0;
  unsigned shards_repaired = 0;
  unsigned unrecoverable = 0;  // objects beyond repair
  bool ok() const { return unrecoverable == 0; }
  std::string to_json() const;
};

/// Outcome of one shard-set write (Archive's dispersal step).
struct DisperseReport : OpReport {
  unsigned written = 0;
  std::vector<std::uint32_t> failed;
  bool ok() const { return failed.empty(); }
  std::string to_json() const;
};

/// Client-side I/O accounting across retries (cumulative, not per-op).
struct IoStats {
  std::uint64_t upload_attempts = 0;
  std::uint64_t upload_retries = 0;
  std::uint64_t upload_failures = 0;  // shard writes abandoned
  std::uint64_t download_attempts = 0;
  std::uint64_t download_retries = 0;
  std::uint64_t download_failures = 0;  // shard reads abandoned
  std::string to_json() const;
};

/// Measured storage accounting (Figure 1's cost axis, measured not
/// nominal).
struct StorageReport : OpReport {
  std::uint64_t logical_bytes = 0;
  std::uint64_t stored_bytes = 0;
  double overhead() const {
    return logical_bytes == 0
               ? 0.0
               : static_cast<double>(stored_bytes) / logical_bytes;
  }
  std::string to_json() const;
};

}  // namespace aegis
