#include "archive/archive.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "archive/aont.h"
#include "archive/doctor.h"
#include "archive/migration.h"
#include "crypto/cipher.h"
#include "crypto/sha256.h"
#include "erasure/codec_cache.h"
#include "erasure/reed_solomon.h"
#include "integrity/merkle.h"
#include "integrity/notary.h"
#include "sharing/lrss.h"
#include "sharing/packed.h"
#include "sharing/proactive.h"
#include "sharing/redistribute.h"
#include "sharing/shamir.h"
#include "util/entropy.h"
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

namespace {

bool is_erasure_family(EncodingKind e) {
  return e == EncodingKind::kReplication || e == EncodingKind::kErasure ||
         e == EncodingKind::kEncryptErasure ||
         e == EncodingKind::kCascade || e == EncodingKind::kAontRs ||
         e == EncodingKind::kEntropicErasure;
}

bool uses_cipher_stack(EncodingKind e) {
  return e == EncodingKind::kEncryptErasure ||
         e == EncodingKind::kCascade ||
         e == EncodingKind::kEntropicErasure;
}

/// Pre-dispersal payload size for erasure-family encodings.
std::size_t payload_size(const ObjectManifest& m) {
  return m.encoding == EncodingKind::kAontRs ? aont_package_size(m.size)
                                             : m.size;
}

}  // namespace

Bytes ObjectManifest::serialize() const {
  ByteWriter w;
  w.str(id);
  w.u64(size);
  w.u8(static_cast<std::uint8_t>(encoding));
  w.u32(n);
  w.u32(k);
  w.u32(t);
  w.u32(generation);

  w.u32(static_cast<std::uint32_t>(cipher_history.size()));
  for (const auto& stack : cipher_history) {
    w.u32(static_cast<std::uint32_t>(stack.size()));
    for (SchemeId c : stack) w.u16(static_cast<std::uint16_t>(c));
  }

  w.bytes(lrss_seed);
  w.u32(static_cast<std::uint32_t>(shard_hashes.size()));
  for (const Bytes& h : shard_hashes) w.bytes(h);
  w.bytes(merkle_root);

  w.u32(static_cast<std::uint32_t>(audit_challenges.size()));
  for (const auto& pool : audit_challenges) {
    w.u32(static_cast<std::uint32_t>(pool.size()));
    for (const auto& ch : pool) {
      w.bytes(ch.nonce);
      w.bytes(ch.expected);
    }
  }
  w.u32(audit_round);

  std::uint64_t entropy_bits;
  static_assert(sizeof entropy_bits == sizeof est_entropy_per_byte);
  std::memcpy(&entropy_bits, &est_entropy_per_byte, 8);
  w.u64(entropy_bits);

  w.u8(has_commitment ? 1 : 0);
  if (has_commitment) {
    w.bytes(commitment.encode());
    w.raw(opening.value.to_bytes_be());
    w.raw(opening.blind.to_bytes_be());
  }
  w.bytes(chain.serialize());
  w.u32(created_at);

  w.u8(staged.has_value() ? 1 : 0);
  if (staged.has_value()) {
    w.u8(static_cast<std::uint8_t>(staged->phase));
    w.u32(staged->generation);
    w.u32(static_cast<std::uint32_t>(staged->ciphers.size()));
    for (SchemeId c : staged->ciphers) w.u16(static_cast<std::uint16_t>(c));
    w.u32(static_cast<std::uint32_t>(staged->shard_hashes.size()));
    for (const Bytes& h : staged->shard_hashes) w.bytes(h);
    w.bytes(staged->merkle_root);
    w.u32(static_cast<std::uint32_t>(staged->audit_challenges.size()));
    for (const auto& pool : staged->audit_challenges) {
      w.u32(static_cast<std::uint32_t>(pool.size()));
      for (const auto& ch : pool) {
        w.bytes(ch.nonce);
        w.bytes(ch.expected);
      }
    }
  }
  w.u64(last_migration);
  return std::move(w).take();
}

ObjectManifest ObjectManifest::deserialize(ByteView wire) {
  ByteReader r(wire);
  ObjectManifest m;
  m.id = r.str();
  m.size = r.u64();
  m.encoding = static_cast<EncodingKind>(r.u8());
  m.n = r.u32();
  m.k = r.u32();
  m.t = r.u32();
  m.generation = r.u32();

  const std::uint32_t stacks = r.count(4);
  for (std::uint32_t s = 0; s < stacks; ++s) {
    std::vector<SchemeId> stack(r.count(2));
    for (auto& c : stack) c = static_cast<SchemeId>(r.u16());
    m.cipher_history.push_back(std::move(stack));
  }

  m.lrss_seed = r.bytes();
  const std::uint32_t hashes = r.count(4);
  for (std::uint32_t i = 0; i < hashes; ++i)
    m.shard_hashes.push_back(r.bytes());
  m.merkle_root = r.bytes();

  const std::uint32_t pools = r.count(4);
  m.audit_challenges.resize(pools);
  for (std::uint32_t i = 0; i < pools; ++i) {
    const std::uint32_t count = r.count(8);
    for (std::uint32_t c = 0; c < count; ++c) {
      ShardChallenge ch;
      ch.nonce = r.bytes();
      ch.expected = r.bytes();
      m.audit_challenges[i].push_back(std::move(ch));
    }
  }
  m.audit_round = r.u32();

  const std::uint64_t entropy_bits = r.u64();
  std::memcpy(&m.est_entropy_per_byte, &entropy_bits, 8);

  m.has_commitment = r.u8() != 0;
  if (m.has_commitment) {
    m.commitment = PedersenCommitment::decode(r.bytes());
    m.opening.value = U256::from_bytes_be(r.raw(32));
    m.opening.blind = U256::from_bytes_be(r.raw(32));
  }
  m.chain = TimestampChain::deserialize(r.bytes());
  m.created_at = r.u32();

  if (r.u8() != 0) {
    StagedGeneration st;
    st.phase = static_cast<StagedGeneration::Phase>(r.u8());
    st.generation = r.u32();
    std::vector<SchemeId> stack(r.count(2));
    for (auto& c : stack) c = static_cast<SchemeId>(r.u16());
    st.ciphers = std::move(stack);
    const std::uint32_t staged_hashes = r.count(4);
    for (std::uint32_t i = 0; i < staged_hashes; ++i)
      st.shard_hashes.push_back(r.bytes());
    st.merkle_root = r.bytes();
    const std::uint32_t staged_pools = r.count(4);
    st.audit_challenges.resize(staged_pools);
    for (std::uint32_t i = 0; i < staged_pools; ++i) {
      const std::uint32_t count = r.count(8);
      for (std::uint32_t c = 0; c < count; ++c) {
        ShardChallenge ch;
        ch.nonce = r.bytes();
        ch.expected = r.bytes();
        st.audit_challenges[i].push_back(std::move(ch));
      }
    }
    m.staged = std::move(st);
  }
  m.last_migration = r.u64();
  r.expect_done();
  return m;
}

Archive::Archive(Cluster& cluster, ArchivalPolicy policy,
                 const SchemeRegistry& registry, TimestampAuthority& tsa,
                 Rng& rng)
    : cluster_(cluster),
      policy_(std::move(policy)),
      registry_(registry),
      tsa_(tsa),
      rng_(rng),
      vault_(rng),
      // pool_ initializes after policy_ (declaration order); workers are
      // clamped so a bogus policy throws in validate() below rather than
      // exhausting threads here.
      pool_(policy_.encode_workers <= 1 ? 0
                                        : std::min(policy_.encode_workers,
                                                   256u)) {
  policy_.validate();
  if (policy_.n > cluster_.size())
    throw InvalidArgument(
        "Archive: policy needs more nodes than the cluster has",
        ErrorCode::kBadGeometry);

  MetricsRegistry& m = cluster_.obs().metrics();
  m_up_attempts_ = &m.counter("archive.io.upload_attempts");
  m_up_retries_ = &m.counter("archive.io.upload_retries");
  m_up_failures_ = &m.counter("archive.io.upload_failures");
  m_down_attempts_ = &m.counter("archive.io.download_attempts");
  m_down_retries_ = &m.counter("archive.io.download_retries");
  m_down_failures_ = &m.counter("archive.io.download_failures");
  pool_.bind_metrics(&m, "archive.pool");
}

Archive::OpScope Archive::op_begin(const char* op, const ObjectId& object) {
  OpScope scope;
  scope.op = op;
  scope.prev = current_op_;
  scope.t0_ms = cluster_.simulated_ms();
  current_op_ = op;
  Observability& obs = cluster_.obs();
  obs.metrics().counter(std::string("archive.") + op + ".count").inc();
  SpanAttrs attrs;
  if (!object.empty()) attrs.push_back({"object", object});
  scope.span = std::make_unique<TraceSpan>(
      obs.tracer(), std::string("archive.") + op, std::move(attrs));
  return scope;
}

void Archive::op_end(OpScope& scope, OpReport* report) {
  const double dur = cluster_.simulated_ms() - scope.t0_ms;
  cluster_.obs()
      .metrics()
      .histogram(std::string("archive.") + scope.op + ".ms")
      .observe(dur);
  if (report != nullptr) {
    report->op = std::string("archive.") + scope.op;
    report->epoch = cluster_.now();
    report->duration_ms = dur;
  }
  scope.span.reset();
  current_op_ = scope.prev;
}

void Archive::op_failed(OpScope& scope, const ObjectId& object,
                        const Error& e) {
  Observability& obs = cluster_.obs();
  obs.metrics()
      .counter(std::string("archive.") + scope.op + ".failures")
      .inc();
  obs.emit(OperationFailed{std::string("archive.") + scope.op, object,
                           e.code()});
  scope.span.reset();
  current_op_ = scope.prev;
}

template <class Fn>
auto Archive::run_op(const char* op, const ObjectId& object, Fn&& fn) {
  OpScope scope = op_begin(op, object);
  try {
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      op_end(scope, nullptr);
    } else {
      auto result = fn();
      using R = decltype(result);
      if constexpr (std::is_base_of_v<OpReport, R>) {
        op_end(scope, &result);
      } else if constexpr (std::is_same_v<R, GetResult>) {
        op_end(scope, &result.report);
      } else {
        op_end(scope, nullptr);
      }
      return result;
    }
  } catch (const Error& e) {
    op_failed(scope, object, e);
    throw;
  }
}

NodeId Archive::shard_node(std::uint32_t shard_index) const {
  // One shard per node; policies never exceed the cluster size.
  return shard_index % cluster_.size();
}

Bytes Archive::apply_ciphers(const ObjectId& id, ByteView data,
                             const std::vector<SchemeId>& stack) const {
  const ObjectKey* key = vault_.find(id);
  if (key == nullptr && !stack.empty())
    throw InvalidArgument("Archive: no key for encrypted object " + id,
                          ErrorCode::kKeyLost);
  Bytes cur = to_bytes(data);
  for (unsigned layer = 0; layer < stack.size(); ++layer) {
    const SchemeId c = stack[layer];
    const SecureBytes lk = key->layer_key(c, layer);
    const Bytes iv = key->layer_iv(c, layer);
    cur = cipher_apply(c, ByteView(lk.data(), lk.size()), iv, cur);
  }
  return cur;
}

std::vector<Bytes> Archive::encode(const ObjectId& id, ByteView data,
                                   ObjectManifest& m) {
  switch (m.encoding) {
    case EncodingKind::kReplication:
      return std::vector<Bytes>(m.n, to_bytes(data));

    case EncodingKind::kErasure:
      return rs_codec(m.k, m.n).encode(data, &pool_);

    case EncodingKind::kEncryptErasure:
    case EncodingKind::kEntropicErasure:
    case EncodingKind::kCascade: {
      const Bytes ct = apply_ciphers(id, data, m.current_ciphers());
      return rs_codec(m.k, m.n).encode(ct, &pool_);
    }

    case EncodingKind::kAontRs: {
      const Bytes package =
          aont_package(data, m.current_ciphers()[0], rng_);
      return rs_codec(m.k, m.n).encode(package, &pool_);
    }

    case EncodingKind::kShamir: {
      const auto shares = shamir_split(data, m.t, m.n, rng_, &pool_);
      std::vector<Bytes> out;
      out.reserve(shares.size());
      for (const auto& s : shares) out.push_back(s.data);
      return out;
    }

    case EncodingKind::kPacked: {
      const PackedSharing& ps = packed_codec(m.t, m.k, m.n);
      const auto shares = ps.split(data, rng_, &pool_);
      std::vector<Bytes> out;
      out.reserve(shares.size());
      for (const auto& s : shares) out.push_back(s.data);
      return out;
    }

    case EncodingKind::kLrss: {
      const Lrss lrss(m.t, m.n, policy_.lrss_leak_bits);
      LrssSharing sharing = lrss.split(data, rng_);
      m.lrss_seed = sharing.seed;
      std::vector<Bytes> out;
      out.reserve(sharing.shares.size());
      for (const auto& s : sharing.shares) out.push_back(s.serialize());
      return out;
    }
  }
  throw InvalidArgument("Archive: unknown encoding");
}

Bytes Archive::decode(const ObjectManifest& m,
                      std::vector<std::optional<Bytes>> shards) const {
  switch (m.encoding) {
    case EncodingKind::kReplication: {
      for (auto& s : shards) {
        if (s) return std::move(*s);
      }
      throw UnrecoverableError("Archive: no replica of " + m.id +
                                   " survives",
                               ErrorCode::kNoReplica);
    }

    case EncodingKind::kErasure:
      return rs_codec(m.k, m.n).decode(shards, payload_size(m), &pool_);

    case EncodingKind::kEncryptErasure:
    case EncodingKind::kEntropicErasure:
    case EncodingKind::kCascade: {
      const Bytes ct =
          rs_codec(m.k, m.n).decode(shards, payload_size(m), &pool_);
      // XOR-stream ciphers invert by re-application, outermost first.
      std::vector<SchemeId> stack = m.current_ciphers();
      const ObjectKey* key = vault_.find(m.id);
      if (key == nullptr)
        throw UnrecoverableError("Archive: key lost for " + m.id,
                                 ErrorCode::kKeyLost);
      Bytes cur = ct;
      for (unsigned layer = static_cast<unsigned>(stack.size()); layer-- > 0;) {
        const SchemeId c = stack[layer];
        const SecureBytes lk = key->layer_key(c, layer);
        const Bytes iv = key->layer_iv(c, layer);
        cur = cipher_apply(c, ByteView(lk.data(), lk.size()), iv, cur);
      }
      return cur;
    }

    case EncodingKind::kAontRs: {
      const Bytes package =
          rs_codec(m.k, m.n).decode(shards, payload_size(m), &pool_);
      return aont_unpackage(package);
    }

    case EncodingKind::kShamir: {
      std::vector<Share> have;
      for (std::uint32_t i = 0; i < shards.size(); ++i) {
        if (shards[i])
          have.push_back(
              {static_cast<std::uint8_t>(i + 1), std::move(*shards[i])});
        if (have.size() == m.t) break;
      }
      return shamir_recover(have, m.t, &pool_);
    }

    case EncodingKind::kPacked: {
      const PackedSharing& ps = packed_codec(m.t, m.k, m.n);
      std::vector<PackedShare> have;
      for (std::uint32_t i = 0; i < shards.size(); ++i) {
        if (shards[i])
          have.push_back({static_cast<std::uint16_t>(i + 1),
                          std::move(*shards[i])});
        if (have.size() == ps.recover_threshold()) break;
      }
      return ps.recover(have, m.size, &pool_);
    }

    case EncodingKind::kLrss: {
      const Lrss lrss(m.t, m.n, policy_.lrss_leak_bits);
      std::vector<LrssShare> have;
      for (std::uint32_t i = 0; i < shards.size(); ++i) {
        if (shards[i]) have.push_back(LrssShare::deserialize(*shards[i]));
        if (have.size() == m.t) break;
      }
      return lrss.recover(have, m.lrss_seed);
    }
  }
  throw InvalidArgument("Archive: unknown encoding");
}

namespace {
constexpr unsigned kAuditChallengesPerShard = 4;

bool retryable(TransferStatus s) {
  return s == TransferStatus::kDropped || s == TransferStatus::kCorrupted;
}
}  // namespace

TransferStatus Archive::upload_with_retry(NodeId node,
                                          const StoredBlob& blob) {
  double backoff = policy_.backoff_base_ms;
  TransferStatus status = TransferStatus::kNodeOffline;
  for (unsigned attempt = 0; attempt <= policy_.io_retries; ++attempt) {
    if (attempt > 0) {
      cluster_.charge_ms(backoff);
      backoff *= 2.0;
      ++io_stats_.upload_retries;
      m_up_retries_->inc();
      if (current_op_ != nullptr)
        cluster_.obs()
            .metrics()
            .counter(std::string("archive.") + current_op_ + ".retries")
            .inc();
    }
    ++io_stats_.upload_attempts;
    m_up_attempts_->inc();
    status = cluster_.upload(node, blob, policy_.channel);
    if (!retryable(status)) break;
  }
  if (status != TransferStatus::kOk) {
    ++io_stats_.upload_failures;
    m_up_failures_->inc();
    if (retryable(status))
      cluster_.obs().emit(RetryExhausted{"upload", blob.object, node,
                                         policy_.io_retries + 1,
                                         to_string(status)});
  }
  return status;
}

DownloadResult Archive::download_with_retry(NodeId node,
                                            const ObjectId& object,
                                            std::uint32_t shard) {
  double backoff = policy_.backoff_base_ms;
  DownloadResult result;
  for (unsigned attempt = 0; attempt <= policy_.io_retries; ++attempt) {
    if (attempt > 0) {
      cluster_.charge_ms(backoff);
      backoff *= 2.0;
      ++io_stats_.download_retries;
      m_down_retries_->inc();
      if (current_op_ != nullptr)
        cluster_.obs()
            .metrics()
            .counter(std::string("archive.") + current_op_ + ".retries")
            .inc();
    }
    ++io_stats_.download_attempts;
    m_down_attempts_->inc();
    result = cluster_.download(node, object, shard, policy_.channel);
    if (!retryable(result.status)) break;
  }
  if (!result.ok() && result.status != TransferStatus::kMissing) {
    ++io_stats_.download_failures;
    m_down_failures_->inc();
    if (retryable(result.status))
      cluster_.obs().emit(RetryExhausted{"download", object, node,
                                         policy_.io_retries + 1,
                                         to_string(result.status)});
  }
  return result;
}

Archive::DisperseReport Archive::disperse(ObjectManifest& m,
                                          const std::vector<Bytes>& shards) {
  m.shard_hashes.clear();
  m.audit_challenges.assign(shards.size(), {});
  m.audit_round = 0;
  DisperseReport report;
  std::vector<Bytes> leaves;
  leaves.reserve(shards.size());
  for (std::uint32_t i = 0; i < shards.size(); ++i) {
    m.shard_hashes.push_back(Sha256::hash(shards[i]));
    for (unsigned c = 0; c < kAuditChallengesPerShard; ++c) {
      ObjectManifest::ShardChallenge ch;
      ch.nonce = rng_.bytes(16);
      ch.expected = Sha256::hash_concat({shards[i], ch.nonce});
      m.audit_challenges[i].push_back(std::move(ch));
    }
    leaves.push_back(shards[i]);

    StoredBlob blob;
    blob.object = m.id;
    blob.shard_index = i;
    blob.generation = m.generation;
    blob.data = shards[i];
    blob.stored_at = cluster_.now();
    const TransferStatus status = upload_with_retry(shard_node(i), blob);
    if (status == TransferStatus::kOk) {
      ++report.written;
    } else {
      report.failed.push_back(i);
      cluster_.obs().emit(
          ShardWriteFailed{m.id, i, shard_node(i), to_string(status)});
    }
  }
  m.merkle_root = MerkleTree(leaves).root();
  return report;
}

PutReport Archive::put(const ObjectId& id, ByteView data) {
  PutReport report = run_op("put", id, [&] { return put_impl(id, data); });
  // Mutations leave an explicit audit-ledger record (failures already do,
  // via the OperationFailed event the bus routes into the ledger).
  cluster_.obs().ledger().append(
      cluster_.now(), "archive.put", id,
      report.fully_replicated()
          ? "ok"
          : "under:" + std::to_string(report.under_replication()));
  return report;
}

PutReport Archive::put_impl(const ObjectId& id, ByteView data) {
  if (manifests_.count(id) > 0)
    throw InvalidArgument("Archive: duplicate object id " + id,
                          ErrorCode::kDuplicateObject);

  ObjectManifest m;
  m.id = id;
  m.size = data.size();
  m.encoding = policy_.encoding;
  m.n = policy_.n;
  m.k = policy_.k;
  m.t = policy_.t;
  m.created_at = cluster_.now();
  m.est_entropy_per_byte = estimate_entropy_per_byte(data);
  m.cipher_history.push_back(
      uses_cipher_stack(m.encoding) || m.encoding == EncodingKind::kAontRs
          ? policy_.ciphers
          : std::vector<SchemeId>{});

  PutReport report;
  if (uses_cipher_stack(m.encoding)) {
    vault_.create(id);
    if (policy_.key_custody == KeyCustody::kVssOnCluster) {
      vault_.share_one(id, policy_.vault_threshold, policy_.n);
      report.key_shares_failed = upload_key_shares(id);
    }
  }

  const std::vector<Bytes> shards = encode(id, data, m);
  const DisperseReport d = disperse(m, shards);
  report.shards_total = static_cast<unsigned>(shards.size());
  report.shards_written = d.written;
  report.failed_shards = d.failed;

  if (report.shards_written < policy_.reconstruction_threshold()) {
    // The write can never be read back: roll it back rather than leave a
    // zombie object behind (shards land on node-local state directly —
    // deleting tolerates offline nodes).
    for (std::uint32_t i = 0; i < shards.size(); ++i)
      cluster_.node(shard_node(i)).erase(id, i);
    if (vault_.find(id) != nullptr) {
      for (std::uint32_t i = 0; i < m.n; ++i)
        cluster_.node(shard_node(i)).erase(key_object_id(id), i);
      vault_.erase(id);
    }
    throw UnrecoverableError(
        "Archive::put: only " + std::to_string(report.shards_written) +
        " of " + std::to_string(report.shards_total) + " shards of " + id +
        " landed — below the reconstruction threshold",
        ErrorCode::kBelowThreshold);
  }

  // Integrity stamping.
  if (policy_.pedersen_timestamps) {
    CommittedStamp stamp = commit_and_stamp(tsa_, data, cluster_.now(), rng_);
    m.has_commitment = true;
    m.commitment = stamp.commitment;
    m.opening = stamp.opening;
    m.chain = std::move(stamp.chain);
  } else {
    m.chain = TimestampChain::begin(tsa_, Sha256::hash(data),
                                    SchemeId::kSha256, cluster_.now());
  }

  manifests_[id] = std::move(m);
  return report;
}

std::optional<Bytes> Archive::fetch_valid_shard(const ObjectManifest& m,
                                                std::uint32_t shard,
                                                bool* bad) {
  auto blob = download_with_retry(shard_node(shard), m.id, shard);
  if (blob && blob->generation == m.generation) {
    if (ct_equal(Sha256::hash(blob->data), m.shard_hashes[shard]))
      return std::move(blob->data);
    // Corrupted shard: note it (the staging fallback may still save the
    // read, but the damage is real and scrub should hear about it).
    if (bad) *bad = true;
  }
  // Mid-migration window: the committed generation was published but its
  // blobs may still live under the staging key until promotion.
  if (m.staged.has_value() &&
      m.staged->phase == ObjectManifest::StagedGeneration::Phase::kPublished) {
    auto st = download_with_retry(shard_node(shard), staging_object_id(m.id),
                                  shard);
    if (st && st->generation == m.generation &&
        ct_equal(Sha256::hash(st->data), m.shard_hashes[shard]))
      return std::move(st->data);
  }
  return std::nullopt;
}

std::vector<std::optional<Bytes>> Archive::gather(const ObjectManifest& m,
                                                  unsigned want,
                                                  unsigned* bad_count) {
  std::vector<std::optional<Bytes>> shards(m.n);
  unsigned have = 0;
  for (std::uint32_t i = 0; i < m.n && have < want; ++i) {
    bool bad = false;
    shards[i] = fetch_valid_shard(m, i, &bad);
    if (bad && bad_count) ++*bad_count;
    have += shards[i].has_value();
  }
  return shards;
}

Bytes Archive::get(const ObjectId& id) { return get_report(id).data; }

GetResult Archive::get_report(const ObjectId& id) {
  return run_op("get", id, [&] {
    GetResult res;
    const ObjectManifest& m = manifest(id);
    // Deltas over the shared accounting isolate THIS read's I/O.
    const std::uint64_t retries0 = io_stats_.download_retries;
    const std::uint64_t bytes0 = cluster_.stats().bytes_down;
    auto shards = gather(m, policy_.reconstruction_threshold(),
                         &res.report.shards_bad);
    for (const auto& s : shards) res.report.shards_gathered += s.has_value();
    res.data = decode(m, std::move(shards));
    res.report.retries = io_stats_.download_retries - retries0;
    res.report.bytes_down = cluster_.stats().bytes_down - bytes0;
    res.report.logical_bytes = res.data.size();
    return res;
  });
}

void Archive::remove(const ObjectId& id) {
  const ObjectManifest& m = manifest(id);
  for (std::uint32_t i = 0; i < m.n; ++i) {
    cluster_.node(shard_node(i)).erase(id, i);
    cluster_.node(shard_node(i)).erase(staging_object_id(id), i);
  }
  vault_.erase(id);
  manifests_.erase(id);
  cluster_.obs().ledger().append(cluster_.now(), "archive.remove", id, "ok");
}

VerifyReport Archive::verify(const ObjectId& id) {
  return run_op("verify", id, [&] {
    const ObjectManifest& m = manifest(id);
    VerifyReport r;
    auto shards = gather(m, m.n, &r.shards_bad);
    for (const auto& s : shards) r.shards_seen += s.has_value();
    r.enough_shards = r.shards_seen >= policy_.reconstruction_threshold();

    if (m.has_commitment) {
      r.chain_status =
          m.chain.verify(m.commitment.encode(), registry_, cluster_.now());
    } else if (r.enough_shards) {
      // Hash chains stamp H(data): re-derive it from the stored shards.
      const Bytes data = decode(m, shards);
      r.chain_status =
          m.chain.verify(Sha256::hash(data), registry_, cluster_.now());
    }
    return r;
  });
}

void Archive::refresh() {
  run_op("refresh", ObjectId{}, [&] { refresh_impl(); });
}

void Archive::refresh_impl() {
  for (auto& [id, m] : manifests_) {
    switch (m.encoding) {
      case EncodingKind::kShamir: {
        // Herzberg refresh over the full share vector (no reconstruction).
        auto stored = gather(m, m.n);
        std::vector<Share> shares;
        bool complete = true;
        for (std::uint32_t i = 0; i < m.n; ++i) {
          if (!stored[i]) {
            complete = false;
            break;
          }
          shares.push_back(
              {static_cast<std::uint8_t>(i + 1), std::move(*stored[i])});
        }
        if (!complete) break;  // degraded: repair first, refresh next epoch
        RefreshStats stats;
        const auto fresh = proactive_refresh(shares, m.t, rng_, &stats, &pool_);
        cluster_.count_refresh_traffic(stats.messages, stats.bytes);
        ++m.generation;
        m.cipher_history.push_back(m.current_ciphers());
        std::vector<Bytes> out;
        out.reserve(fresh.size());
        for (const auto& s : fresh) out.push_back(s.data);
        disperse(m, out);
        break;
      }
      case EncodingKind::kPacked:
      case EncodingKind::kLrss: {
        // Dealer-based re-share: recover and re-split. (No in-place
        // proactive protocol exists for these encodings; the dealer is
        // the data owner, which is the honest-but-costlier variant.)
        Bytes data = get(id);
        ++m.generation;
        m.cipher_history.push_back(m.current_ciphers());
        const auto shards = encode(id, data, m);
        cluster_.count_refresh_traffic(m.n, data.size());
        disperse(m, shards);
        break;
      }
      default:
        break;  // ciphertext cannot be proactively refreshed
    }
  }
  if (vault_.is_shared()) {
    vault_.refresh_shared(policy_.vault_threshold, policy_.n);
    for (const auto& entry : vault_.shared())
      upload_key_shares(entry.first);
    // Herzberg traffic for the key plane: n dealers x (n-1) sub-shares
    // of two scalars each, per key.
    cluster_.count_refresh_traffic(
        vault_.shared().size() * policy_.n * (policy_.n - 1),
        vault_.shared().size() * policy_.n * (policy_.n - 1) * 64);
  }
}

unsigned Archive::upload_key_shares(const ObjectId& id) {
  const auto it = vault_.shared().find(id);
  if (it == vault_.shared().end()) return 0;
  const KeyVault::SharedKey& sk = it->second;
  unsigned failed = 0;
  for (std::uint32_t i = 0; i < sk.dealing.shares.size(); ++i) {
    const VssShare& s = sk.dealing.shares[i];
    ByteWriter w;
    w.u32(s.index);
    w.raw(s.value.to_bytes_be());
    w.raw(s.blind.to_bytes_be());

    StoredBlob blob;
    blob.object = key_object_id(id);
    blob.shard_index = i;
    blob.generation = sk.generation;
    blob.data = std::move(w).take();
    blob.stored_at = cluster_.now();
    if (upload_with_retry(shard_node(i), blob) != TransferStatus::kOk)
      ++failed;
  }
  return failed;
}

std::string Archive::key_object_id(const ObjectId& id) {
  return "@key/" + id;
}

std::string Archive::staging_object_id(const ObjectId& id) {
  return "@mig/" + id;
}

void Archive::rewrap(SchemeId new_outer_cipher) {
  run_op("rewrap", ObjectId{}, [&] { rewrap_impl(new_outer_cipher); });
  cluster_.obs().ledger().append(cluster_.now(), "archive.rewrap", ObjectId{},
                                 "outer:" + scheme_name(new_outer_cipher));
}

void Archive::rewrap_impl(SchemeId new_outer_cipher) {
  // One-shot drive of the migration engine: every object commits through
  // the staged-generation protocol (new shards land under the staging
  // key, the manifest publishes only after the staged set is durable),
  // so a fault mid-pass can no longer strand an object at a generation
  // whose shards were never written. run() throws on a stall, leaving
  // completed objects coherently re-wrapped and untouched ones on their
  // old stack; the policy stack only changes once every object migrated.
  MigrationSpec spec;
  spec.kind = MigrationKind::kRewrap;
  spec.outer = new_outer_cipher;
  MigrationEngine engine(*this, spec);
  engine.run();
  policy_.ciphers.push_back(new_outer_cipher);
}

void Archive::reencrypt(const std::vector<SchemeId>& fresh) {
  run_op("reencrypt", ObjectId{}, [&] { reencrypt_impl(fresh); });
  std::string stack;
  for (SchemeId c : fresh) {
    if (!stack.empty()) stack += "+";
    stack += scheme_name(c);
  }
  cluster_.obs().ledger().append(cluster_.now(), "archive.reencrypt",
                                 ObjectId{}, "stack:" + stack);
}

void Archive::reencrypt_impl(const std::vector<SchemeId>& fresh) {
  // Same commit-after-disperse story as rewrap_impl — and the engine
  // reads through the archive's internal gather/decode path, so operator
  // metrics (archive.get.count) keep counting only client traffic.
  MigrationSpec spec;
  spec.kind = MigrationKind::kReencrypt;
  spec.fresh = fresh;
  MigrationEngine engine(*this, spec);
  engine.run();
  policy_.ciphers = fresh;
}

void Archive::renew_timestamps() {
  run_op("renew_timestamps", ObjectId{}, [&] {
    for (auto& [id, m] : manifests_) {
      m.chain.renew(tsa_, cluster_.now());
      cluster_.obs().emit(ChainRenewed{id, m.chain.length()});
    }
  });
  cluster_.obs().ledger().append(
      cluster_.now(), "archive.renew_timestamps", ObjectId{},
      "objects:" + std::to_string(manifests_.size()));
}

void Archive::watch_timestamps(NotaryService& notary) {
  // std::map node stability makes the chain addresses durable for the
  // manifest's lifetime.
  run_op("watch_timestamps", ObjectId{}, [&] {
    for (auto& [id, m] : manifests_) notary.watch(&m.chain);
  });
}

unsigned Archive::repair(const ObjectId& id) {
  return run_op("repair", id, [&] {
    const unsigned rewritten = repair_impl(id);
    if (rewritten > 0) cluster_.obs().emit(RepairCompleted{id, rewritten});
    return rewritten;
  });
}

unsigned Archive::repair_impl(const ObjectId& id) {
  auto it = manifests_.find(id);
  if (it == manifests_.end())
    throw InvalidArgument("Archive: unknown object " + id,
                          ErrorCode::kUnknownObject);
  ObjectManifest& m = it->second;

  // Identify damage: missing, stale-generation, or hash-mismatched. A
  // shard served from the staging key counts as intact — its real slot
  // is promote-pending, not damaged, and the rebuilt codeword below
  // would write the identical bytes anyway.
  std::vector<std::optional<Bytes>> shards(m.n);
  std::vector<bool> damaged(m.n, false);
  unsigned damage_count = 0;
  for (std::uint32_t i = 0; i < m.n; ++i) {
    shards[i] = fetch_valid_shard(m, i);
    if (!shards[i]) {
      damaged[i] = true;
      ++damage_count;
    }
  }
  if (damage_count == 0) return 0;

  if (is_erasure_family(m.encoding)) {
    // Rebuild only the damaged shards; the survivors (same generation,
    // same codeword) stay in place. Plaintext never surfaces.
    std::vector<Bytes> full;
    if (m.encoding == EncodingKind::kReplication) {
      const Bytes* good = nullptr;
      for (const auto& s : shards) {
        if (s) {
          good = &*s;
          break;
        }
      }
      if (good == nullptr)
        throw UnrecoverableError("repair: no replica of " + id + " survives",
                                 ErrorCode::kNoReplica);
      full.assign(m.n, *good);
    } else {
      full = rs_codec(m.k, m.n).reconstruct_shards(shards, &pool_);
    }
    unsigned rewritten = 0;
    for (std::uint32_t i = 0; i < m.n; ++i) {
      if (!damaged[i]) continue;
      StoredBlob blob;
      blob.object = m.id;
      blob.shard_index = i;
      blob.generation = m.generation;
      blob.data = full[i];
      blob.stored_at = cluster_.now();
      // A shard whose home node is still down stays damaged; the next
      // scrub pass retries once the node returns.
      if (upload_with_retry(shard_node(i), blob) == TransferStatus::kOk)
        ++rewritten;
    }
    return rewritten;
  }

  // Sharing encodings: a partially-new share set must not mix with the
  // old polynomial, so repair is a dealer re-share at a new generation.
  const Bytes data = decode(m, std::move(shards));
  ++m.generation;
  m.cipher_history.push_back(m.current_ciphers());
  return disperse(m, encode(id, data, m)).written;
}

Archive::AuditReport Archive::audit(const ObjectId& id) {
  return run_op("audit", id, [&] { return audit_impl(id); });
}

AuditReport Archive::audit_impl(const ObjectId& id) {
  auto it = manifests_.find(id);
  if (it == manifests_.end())
    throw InvalidArgument("Archive: unknown object " + id,
                          ErrorCode::kUnknownObject);
  ObjectManifest& m = it->second;

  AuditReport report;
  const std::uint32_t round = m.audit_round++;
  for (std::uint32_t i = 0; i < m.n; ++i) {
    ++report.challenges;
    const auto& pool = m.audit_challenges[i];
    const ObjectManifest::ShardChallenge& ch = pool[round % pool.size()];

    // The node computes the response locally; only 32 bytes transit.
    const StoredBlob* blob = cluster_.node(shard_node(i)).get(m.id, i);
    if (blob == nullptr || blob->generation != m.generation) {
      ++report.silent;
      continue;
    }
    const Bytes answer = Sha256::hash_concat({blob->data, ch.nonce});
    if (ct_equal(answer, ch.expected)) {
      ++report.passed;
    } else {
      ++report.failed;
    }
  }
  return report;
}

Archive::ScrubReport Archive::scrub() {
  return run_op("scrub", ObjectId{}, [&] {
    // One whole-catalog pass through the doctor's per-object core, so
    // the synchronous path and the background Doctor share metrics
    // (archive.scrub.*), per-object ledger records, and ScrubCompleted
    // field semantics — the two entry points cannot drift.
    ScrubReport report;
    std::vector<ObjectId> ids;
    ids.reserve(manifests_.size());
    for (const auto& entry : manifests_) ids.push_back(entry.first);
    for (const ObjectId& id : ids) {
      ++report.objects;
      const Doctor::ObjectOutcome out = Doctor::scrub_object(*this, id);
      report.shards_repaired += out.shards_repaired;
      if (out.unrecoverable) ++report.unrecoverable;
    }
    cluster_.obs().emit(ScrubCompleted{report.objects, report.shards_repaired,
                                       report.unrecoverable});
    return report;
  });
}

void Archive::redistribute_nodes(unsigned t2, unsigned n2) {
  run_op("redistribute", ObjectId{},
         [&] { redistribute_nodes_impl(t2, n2); });
}

void Archive::redistribute_nodes_impl(unsigned t2, unsigned n2) {
  if (policy_.encoding != EncodingKind::kShamir)
    throw InvalidArgument(
        "Archive::redistribute_nodes: policy is not Shamir sharing",
        ErrorCode::kUnsupportedOperation);
  if (t2 == 0 || t2 > n2 || n2 > cluster_.size())
    throw InvalidArgument("Archive::redistribute_nodes: bad geometry",
                          ErrorCode::kBadGeometry);

  for (auto& [id, m] : manifests_) {
    auto stored = gather(m, m.n);
    std::vector<Share> shares;
    for (std::uint32_t i = 0; i < m.n; ++i) {
      if (stored[i])
        shares.push_back(
            {static_cast<std::uint8_t>(i + 1), std::move(*stored[i])});
    }
    RefreshStats stats;
    const auto fresh = redistribute(shares, m.t, t2, n2, rng_, &stats);
    cluster_.count_refresh_traffic(stats.messages, stats.bytes);

    // Clear the old layout (n may shrink), then disperse the new one.
    for (std::uint32_t i = 0; i < m.n; ++i)
      cluster_.node(shard_node(i)).erase(id, i);
    m.t = t2;
    m.n = n2;
    ++m.generation;
    m.cipher_history.push_back(m.current_ciphers());
    std::vector<Bytes> out;
    out.reserve(fresh.size());
    for (const auto& s : fresh) out.push_back(s.data);
    disperse(m, out);
  }
  policy_.t = t2;
  policy_.n = n2;
}

const ObjectManifest& Archive::manifest(const ObjectId& id) const {
  const auto it = manifests_.find(id);
  if (it == manifests_.end())
    throw InvalidArgument("Archive: unknown object " + id,
                          ErrorCode::kUnknownObject);
  return it->second;
}

Bytes Archive::export_catalog() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(manifests_.size()));
  for (const auto& [id, m] : manifests_) w.bytes(m.serialize());

  // Vault masters for encrypted objects (secret material!).
  std::uint32_t key_count = 0;
  for (const auto& [id, m] : manifests_)
    if (vault_.find(id) != nullptr) ++key_count;
  w.u32(key_count);
  for (const auto& [id, m] : manifests_) {
    const ObjectKey* key = vault_.find(id);
    if (key == nullptr) continue;
    w.str(id);
    w.bytes(ByteView(key->master.data(), key->master.size()));
  }
  return std::move(w).take();
}

void Archive::import_catalog(ByteView blob) {
  ByteReader r(blob);
  std::map<ObjectId, ObjectManifest> manifests;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    ObjectManifest m = ObjectManifest::deserialize(r.bytes());
    manifests.emplace(m.id, std::move(m));
  }
  const std::uint32_t keys = r.u32();
  std::map<ObjectId, Bytes> masters;
  for (std::uint32_t i = 0; i < keys; ++i) {
    const ObjectId id = r.str();
    masters[id] = r.bytes();
  }
  r.expect_done();

  manifests_ = std::move(manifests);
  for (const auto& [id, master] : masters) vault_.restore(id, master);
}

StorageReport Archive::storage_report() const {
  StorageReport r;
  r.op = "archive.storage";
  r.epoch = cluster_.now();
  for (const auto& [id, m] : manifests_) {
    r.logical_bytes += m.size;
    for (std::uint32_t i = 0; i < m.n; ++i) {
      const StoredBlob* b = cluster_.node(shard_node(i)).get(m.id, i);
      if (b != nullptr) r.stored_bytes += b->data.size();
    }
  }
  return r;
}

}  // namespace aegis
