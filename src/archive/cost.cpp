#include "archive/cost.h"

#include <cmath>

#include "util/error.h"

namespace aegis {

// Media parameters assembled from the paper's citations: LTO tape
// economics (Goodwin/IDC), Project Silica (glass), DNA synthesis costs
// (Bornholt et al., scaled to trend), piql film. Absolute dollars are
// order-of-magnitude; the *orderings* (tape cheap to keep but migrates
// every decade; DNA brutal to write, nearly free to keep; glass no
// migration) are what the §4 bench exercises.

MediaModel MediaModel::Tape() {
  return {"LTO tape", 0.35, 10.0, 25.0, 10.0, 6.6e-6};
}
MediaModel MediaModel::Hdd() {
  return {"HDD", 1.60, 18.0, 180.0, 5.0, 8.0e-7};
}
MediaModel MediaModel::Glass() {
  // Silica: write-once, no migration within a century, modest readout.
  // Density: 429 TB/in^3 (Zhang et al.) = 2.62e-2 TB/mm^3.
  return {"silica glass", 0.08, 40.0, 8.0, 1000.0, 2.62e-2};
}
MediaModel MediaModel::Dna() {
  // Synthesis dominates: ~$1k/TB on optimistic 2030s trend lines; reads
  // are slow sequencing runs. Density is the headline: 1 EB/mm^3.
  return {"DNA", 0.01, 1000.0, 0.5, 500.0, 1.0e6};
}
MediaModel MediaModel::Film() {
  return {"photosensitive film", 0.20, 60.0, 2.0, 200.0, 1.2e-7};
}

std::vector<MediaModel> MediaModel::all() {
  return {Tape(), Hdd(), Glass(), Dna(), Film()};
}

double total_cost_usd(const MediaModel& media, double dataset_tb,
                      double storage_overhead, double years) {
  if (dataset_tb < 0 || storage_overhead < 1.0 || years <= 0)
    throw InvalidArgument("total_cost_usd: bad parameters");
  const double stored_tb = dataset_tb * storage_overhead;
  // Initial write plus one full rewrite per expired media lifetime.
  const double writes = 1.0 + std::floor(years / media.media_lifetime_years);
  const double write_cost = writes * stored_tb * media.write_cost_per_tb;
  const double keep_cost =
      stored_tb * media.capacity_cost_per_tb_month * years * 12.0;
  return write_cost + keep_cost;
}

SiteModel SiteModel::OakRidgeHpss() {
  return {"Oak Ridge HPSS", 80000.0, 400.0};
}
SiteModel SiteModel::EcmwfMars() {
  return {"ECMWF MARS", 37900.0, 120.0};
}
SiteModel SiteModel::CernEos() {
  return {"CERN EOS", 230000.0, 909.0};
}
SiteModel SiteModel::Pergamum() {
  // 10 PB at 5 GB/s aggregate = 432 TB/day.
  return {"Pergamum (10PB)", 10000.0, 432.0};
}
SiteModel SiteModel::Exabyte() {
  return {"hypothetical 1 EB", 1.0e6, 909.0};
}
SiteModel SiteModel::Zettabyte() {
  return {"hypothetical 1 ZB", 1.0e9, 909.0};
}

std::vector<SiteModel> SiteModel::paper_sites() {
  return {OakRidgeHpss(), EcmwfMars(), CernEos(), Pergamum()};
}

double days_to_months(double days) { return days / (365.25 / 12.0); }

double mttdl_years(unsigned n, unsigned reconstruction_threshold,
                   double annual_failure_rate, double repair_hours) {
  if (n == 0 || reconstruction_threshold == 0 ||
      reconstruction_threshold > n)
    throw InvalidArgument("mttdl_years: bad geometry");
  if (annual_failure_rate <= 0 || repair_hours <= 0)
    throw InvalidArgument("mttdl_years: rates must be positive");

  const unsigned r = n - reconstruction_threshold;  // tolerated failures
  const double lambda = annual_failure_rate / 8766.0;  // per hour
  const double mu = 1.0 / repair_hours;

  // Path through r repairable degradations into the absorbing state.
  double denominator = std::pow(lambda, r + 1);
  for (unsigned i = 0; i <= r; ++i) denominator *= (n - i);
  const double hours = std::pow(mu, r) / denominator;
  return hours / 8766.0;
}

ReencryptionEstimate estimate_reencryption(const SiteModel& site,
                                           double write_penalty,
                                           double reserve_penalty,
                                           double cipher_mb_per_s,
                                           unsigned crypto_streams) {
  if (site.read_tb_per_day <= 0)
    throw InvalidArgument("estimate_reencryption: no read bandwidth");
  ReencryptionEstimate e{};
  e.read_days = site.capacity_tb / site.read_tb_per_day;
  e.read_months = days_to_months(e.read_days);
  e.practical_months = e.read_months * write_penalty * reserve_penalty;

  if (cipher_mb_per_s > 0 && crypto_streams > 0) {
    const double tb_per_day =
        cipher_mb_per_s * crypto_streams * 86400.0 / 1.0e6;
    e.cpu_bound_months = days_to_months(site.capacity_tb / tb_per_day);
  }
  return e;
}

}  // namespace aegis
