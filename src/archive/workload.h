// Synthetic archival workload generation.
//
// Archives ingest a characteristic mix: object sizes are heavy-tailed
// (log-normal body, occasional giants), most content is structured
// (documents, records — low entropy) with a fraction of incompressible
// media, writes dominate and reads are rare. The generator produces a
// reproducible stream with those properties so end-to-end benches
// exercise realistic object populations instead of uniform blobs.
#pragma once

#include <cstdint>
#include <string>

#include "node/node.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace aegis {

/// Workload shape parameters.
struct WorkloadConfig {
  unsigned object_count = 100;
  double median_size = 16 * 1024;   // log-normal median, bytes
  double size_sigma = 1.2;          // log-space std dev (heavier = wilder)
  std::size_t min_size = 64;
  std::size_t max_size = 4 << 20;
  double text_fraction = 0.5;       // structured low-entropy objects
  std::uint64_t seed = 1;
};

/// One generated object.
struct WorkloadItem {
  ObjectId id;
  Bytes data;
  bool structured = false;  // low-entropy (text-like) content
};

/// Deterministic generator over a config.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadConfig& config);

  /// Produces the next object; cycles id numbering past object_count.
  WorkloadItem next();

  /// Remaining objects in the configured population (0 = exhausted).
  unsigned remaining() const;

  std::uint64_t bytes_generated() const { return bytes_generated_; }

 private:
  std::size_t sample_size();
  Bytes structured_content(std::size_t size);

  WorkloadConfig config_;
  SimRng rng_;
  unsigned produced_ = 0;
  std::uint64_t bytes_generated_ = 0;
};

}  // namespace aegis
