// Cost models: archival media (§4) and the whole-archive re-encryption
// arithmetic of §3.2.
//
// The paper's §3.2 argument is numeric: reading an entire archive at its
// aggregate throughput already takes months, a write-back/verify pass at
// least doubles it, and reserving capacity for foreground traffic
// doubles it again — so "just re-encrypt when a cipher breaks" stretches
// into years, during which harvested ciphertext sits exposed. These
// models regenerate those numbers from the cited systems' published
// capacity/throughput figures and extrapolate to exabyte/zettabyte
// archives.
#pragma once

#include <string>
#include <vector>

namespace aegis {

/// An archival storage medium (per-TB economics; §4's candidates).
struct MediaModel {
  std::string name;
  double capacity_cost_per_tb_month;  // $ / TB / month, media+power+space
  double write_cost_per_tb;           // one-time $ / TB (DNA synthesis!)
  double read_tb_per_day;             // per-unit aggregate throughput
  double media_lifetime_years;        // rewrite/migrate cycle
  double density_tb_per_mm3;          // volumetric density

  static MediaModel Tape();
  static MediaModel Hdd();
  static MediaModel Glass();  // Project Silica
  static MediaModel Dna();
  static MediaModel Film();   // piql / Arctic World Archive
  static std::vector<MediaModel> all();
};

/// Total cost of keeping `dataset_tb` logical TB for `years`, with the
/// policy's storage overhead factored in: initial write, periodic
/// migration rewrites at end-of-life, and capacity-months.
double total_cost_usd(const MediaModel& media, double dataset_tb,
                      double storage_overhead, double years);

/// A real archive site from the paper's §3.2 examples.
struct SiteModel {
  std::string name;
  double capacity_tb;       // total stored data
  double read_tb_per_day;   // aggregate read throughput

  static SiteModel OakRidgeHpss();  // 80 PB, 400 TB/day
  static SiteModel EcmwfMars();     // 37.9 PB, 120 TB/day
  static SiteModel CernEos();       // 230 PB, 909 TB/day
  static SiteModel Pergamum();      // 10 PB, 5 GB/s
  static SiteModel Exabyte();       // 1 EB at CERN-class throughput
  static SiteModel Zettabyte();     // 1 ZB likewise
  static std::vector<SiteModel> paper_sites();
};

/// §3.2 re-encryption estimate.
struct ReencryptionEstimate {
  double read_days;         // capacity / read throughput
  double read_months;       // the paper's headline number
  double practical_months;  // x write/verify penalty x reserve penalty
  double cpu_bound_months;  // if the cipher, not the media, is the limit
};

/// write_penalty: write-back + verify at least doubles the pass (§3.2);
/// reserve_penalty: foreground traffic keeps a share of the bandwidth;
/// cipher_mb_per_s: measured single-stream cipher throughput, scaled by
/// `crypto_streams` parallel pipelines for the CPU-bound estimate.
ReencryptionEstimate estimate_reencryption(const SiteModel& site,
                                           double write_penalty = 2.0,
                                           double reserve_penalty = 2.0,
                                           double cipher_mb_per_s = 0.0,
                                           unsigned crypto_streams = 1);

/// Days -> months with 30.44-day months (365.25/12).
double days_to_months(double days);

/// Mean time to data loss (years) for an encoding that loses data once
/// MORE than `n - reconstruction_threshold` nodes are simultaneously
/// down: the classic Markov birth-death approximation
///     MTTDL ~ mu^r / (lambda^(r+1) * prod_{i=0..r} (n - i)),
/// with per-node failure rate lambda = afr/8766 per hour and repair rate
/// mu = 1/repair_hours. Good to within the approximation's usual factor
/// when repairs are much faster than failures (mu >> n*lambda) —
/// exactly the archival regime. The §1 "reliability" requirement as a
/// number, comparable across Figure 1's encodings.
double mttdl_years(unsigned n, unsigned reconstruction_threshold,
                   double annual_failure_rate, double repair_hours);

}  // namespace aegis
