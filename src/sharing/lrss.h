// Leakage-resilient secret sharing (LRSS) — the paper's §4 research
// direction — plus the local-leakage attack on Shamir that motivates it
// (Benhamouda–Degwekar–Ishai–Rabin line of work).
//
// Shamir over a small characteristic-2 field is NOT leakage resilient:
// each bit of each share is a GF(2)-linear function of the secret and
// coefficient bits, so an adversary that leaks just ONE bit from every
// share (never holding t full shares!) can linearly eliminate the
// randomness and learn an exact parity of the secret. The attack is
// implemented in this module and exercised by bench/lrss_leakage.
//
// The LRSS construction is the standard two-layer compiler: Shamir-share
// the secret, then protect each share s_i behind a seeded randomness
// extractor:   store_i = (w_i,  s_i xor Ext(w_i, seed)),
// with w_i a fresh high-entropy source sized so that even after L bits of
// local leakage from store_i, w_i retains enough min-entropy for the
// leftover-hash lemma to make the mask statistically close to uniform.
// Ext is a multi-point polynomial universal hash over GF(2^64): output
// word j is b * P_w(a xor (j+1)), P_w the polynomial with the source
// words as coefficients. Shares grow by |w_i| — the extra storage cost
// Figure 1 assigns to the "Leakage Resilient Secret Sharing" point.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sharing/packed.h"
#include "sharing/shamir.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace aegis {

/// One LRSS share: the extractor source and the masked Shamir share.
struct LrssShare {
  std::uint8_t index = 0;
  Bytes source;  // w_i, high-entropy, per-share
  Bytes masked;  // s_i xor Ext(w_i, seed)

  Bytes serialize() const;
  static LrssShare deserialize(ByteView wire);

  std::size_t stored_size() const { return source.size() + masked.size(); }
};

/// A complete LRSS sharing; `seed` is public.
struct LrssSharing {
  std::vector<LrssShare> shares;
  Bytes seed;  // 16 bytes, public extractor seed
};

/// LRSS codec with (t, n) threshold and a per-share leakage budget.
class Lrss {
 public:
  /// `leakage_budget_bits`: how many bits of arbitrary local leakage per
  /// share the scheme must survive; sizes the extractor sources.
  Lrss(unsigned t, unsigned n, unsigned leakage_budget_bits = 128);

  unsigned t() const { return t_; }
  unsigned n() const { return n_; }
  unsigned leakage_budget_bits() const { return leak_bits_; }

  LrssSharing split(ByteView secret, Rng& rng) const;

  /// Recovers from any >= t shares (seed required).
  Bytes recover(const std::vector<LrssShare>& shares, ByteView seed) const;

  /// Stored bytes per share for a secret of `secret_len` bytes; the
  /// overhead vs. plain Shamir is stored/secret_len - 1.
  std::size_t share_size(std::size_t secret_len) const;

 private:
  Bytes extract(ByteView source, ByteView seed, std::size_t out_len) const;

  unsigned t_, n_, leak_bits_;
};

// ----------------------------------------------------------------------
// The local-leakage attack on GF(2^8) Shamir.

/// A successful attack yields a GF(2) functional of the secret:
/// for every byte position p of the secret,
///   parity( leaked_lsb(share_i[p]) for i with lambda_i = 1 )
///     == parity( secret[p] & secret_mask ).
struct LeakageAttackPlan {
  bool feasible = false;
  std::vector<std::uint8_t> lambda;  // which shares' leaked bits to XOR
  std::uint8_t secret_mask = 0;      // which secret bits the parity covers
};

/// Computes the attack plan from *public* information only: the threshold
/// and the share evaluation points. Feasible whenever the leaked bits
/// span the coefficient space — in practice once n >= 8(t-1)+1.
LeakageAttackPlan plan_shamir_lsb_attack(
    unsigned t, const std::vector<std::uint8_t>& share_indices);

/// Executes the plan: XORs the leaked LSBs (one bit per share — strictly
/// less than a full share, and fewer than t shares are never combined).
/// Returns, per secret byte, the learned parity bit.
std::vector<int> apply_shamir_lsb_attack(const LeakageAttackPlan& plan,
                                         const std::vector<Share>& shares);

/// Ground truth for evaluating the attack: parity(secret[p] & mask).
std::vector<int> secret_parities(ByteView secret, std::uint8_t mask);

// ----------------------------------------------------------------------
// The same attack against PACKED sharing over GF(2^16): every bit of a
// share element is GF(2)-linear in the bits of the k packed secrets and
// the t randomness elements, so leaking the LSB of each share element
// again yields an exact parity of the *secrets* once the randomness
// columns are eliminated. This substantiates charging packed sharing
// the "not leakage-resilient" column in the Figure 1 bench.

/// Plan against a PackedSharing geometry (public information only).
struct PackedLeakagePlan {
  bool feasible = false;
  std::vector<std::uint8_t> lambda;        // which shares to XOR
  std::vector<std::uint16_t> secret_masks; // one 16-bit mask per packed
                                           // secret slot (k entries)
};

PackedLeakagePlan plan_packed_lsb_attack(const PackedSharing& ps);

/// Executes the plan on real packed shares: XORs the leaked LSBs of each
/// selected share, one bit per share per batch. Returns one predicted
/// parity per batch.
std::vector<int> apply_packed_lsb_attack(
    const PackedLeakagePlan& plan, const std::vector<PackedShare>& shares);

/// Ground truth: parity over the masked bits of the k secrets in each
/// batch (secret laid out as big-endian 16-bit elements, k per batch,
/// zero padded).
std::vector<int> packed_secret_parities(ByteView secret, unsigned k,
                                        const std::vector<std::uint16_t>& masks);

}  // namespace aegis
