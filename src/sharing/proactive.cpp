#include "sharing/proactive.h"

#include "crypto/pedersen.h"
#include "util/error.h"

namespace aegis {

std::vector<Share> proactive_refresh(const std::vector<Share>& shares,
                                     unsigned t, Rng& rng,
                                     RefreshStats* stats, ThreadPool* pool) {
  if (shares.empty()) throw InvalidArgument("refresh: no shares");
  const auto n = static_cast<unsigned>(shares.size());
  if (t == 0 || t > n) throw InvalidArgument("refresh: need 1 <= t <= n");
  const std::size_t len = shares[0].data.size();

  std::vector<Share> fresh = shares;

  // Every shareholder acts as a dealer of one zero-sharing. Dealer d's
  // sub-share for holder i is delta_d[i]; holder i adds (XORs, char 2)
  // every delta it receives. The aggregate is a random degree-(t-1)
  // polynomial with constant term zero, so the secret is preserved while
  // the share vector becomes independent of the old one.
  for (unsigned d = 0; d < n; ++d) {
    const std::vector<Share> delta = shamir_zero_sharing(len, t, n, rng, pool);
    for (unsigned i = 0; i < n; ++i) {
      if (fresh[i].index != delta[i].index)
        throw InvalidArgument("refresh: share index layout mismatch");
      xor_inplace(MutByteView(fresh[i].data.data(), fresh[i].data.size()),
                  delta[i].data);
      if (stats && i != d) {
        ++stats->messages;
        stats->bytes += delta[i].data.size();
      }
    }
    if (stats) ++stats->dealers;
  }
  return fresh;
}

VerifiableRefreshResult proactive_refresh_vss(
    const VssDealing& dealing, unsigned t, unsigned n, Rng& rng,
    const std::set<std::uint32_t>& corrupt_dealers) {
  if (dealing.shares.size() != n)
    throw InvalidArgument("refresh_vss: need all n shares");
  if (!dealing.commitments.pedersen)
    throw InvalidArgument("refresh_vss: requires a Pedersen dealing");

  const MontgomeryCtx& fn = ec::Secp256k1::instance().fn();

  VerifiableRefreshResult out;
  out.shares = dealing.shares;
  out.commitments = dealing.commitments;

  for (std::uint32_t d = 1; d <= n; ++d) {
    // Dealer d publishes a zero-dealing and the opening of its constant
    // term so everyone can check the dealt secret really is zero.
    U256 blind0;
    VssDealing zero = pedersen_deal_opened(U256(), t, n, rng, blind0);

    bool accused = false;

    // Public check: C_0 must open to (0, blind0).
    const PedersenCommitment c0 =
        PedersenCommitment::decode(zero.commitments.points[0]);
    if (!pedersen_verify(c0, {U256(), blind0})) accused = true;

    // A corrupt dealer mutates the sub-share sent to the first other
    // holder; that holder's verification against the commitments fails.
    if (corrupt_dealers.count(d) > 0) {
      const std::uint32_t victim = d == 1 ? 2 : 1;
      VssShare& s = zero.shares[victim - 1];
      s.value = fn.add(s.value, U256(1));
    }

    for (unsigned i = 0; i < n && !accused; ++i) {
      if (!vss_verify_share(zero.shares[i], zero.commitments))
        accused = true;
    }

    out.stats.messages += n - 1;
    out.stats.bytes += static_cast<std::uint64_t>(n - 1) * 64;  // two scalars

    if (accused) {
      out.accused.push_back(d);
      continue;  // exclude this dealing entirely
    }
    ++out.stats.dealers;

    // Apply the zero-dealing: shares add pointwise, commitments add
    // homomorphically, so verification keys stay consistent.
    for (unsigned i = 0; i < n; ++i) {
      out.shares[i].value = fn.add(out.shares[i].value, zero.shares[i].value);
      out.shares[i].blind = fn.add(out.shares[i].blind, zero.shares[i].blind);
    }
    for (unsigned j = 0; j < t; ++j) {
      const PedersenCommitment a =
          PedersenCommitment::decode(out.commitments.points[j]);
      const PedersenCommitment b =
          PedersenCommitment::decode(zero.commitments.points[j]);
      out.commitments.points[j] = pedersen_add(a, b).encode();
    }
  }
  return out;
}

}  // namespace aegis
