// Packed (multi-secret) secret sharing over GF(2^16) — Figure 1's
// "Packed Secret Sharing" point.
//
// Franklin–Yung batching: one polynomial of degree t+k-1 carries k
// secrets (at k fixed evaluation points) plus t degrees of randomness.
// Any t shares remain information-theoretically independent of all k
// secrets; any t+k shares reconstruct them. Storage blowup drops from
// Shamir's n/1 to n/k — the mid-cost/high-security quadrant the paper
// points at — at the price of a higher reconstruction threshold and a
// smaller privacy margin for fixed n.
//
// Point layout in GF(2^16): secrets at 1..k, randomness anchors at
// k+1..k+t, shares at k+t+1..k+t+n. All distinct; n + t + k <= 65535.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aegis {

/// One packed share: evaluation point + one GF(2^16) element per batch.
struct PackedShare {
  std::uint16_t index = 0;  // share number in [1, n], not the field point
  Bytes data;               // 2 bytes per batch, big-endian elements

  Bytes serialize() const;
  static PackedShare deserialize(ByteView wire);
};

/// Packed secret-sharing codec with fixed (t, k, n) geometry.
class PackedSharing {
 public:
  /// privacy threshold t, pack factor k, share count n.
  /// Reconstruction needs t+k shares. Requires t >= 1, k >= 1,
  /// n >= t+k, and n+t+k <= 65535.
  PackedSharing(unsigned t, unsigned k, unsigned n);

  unsigned t() const { return t_; }
  unsigned k() const { return k_; }
  unsigned n() const { return n_; }
  unsigned recover_threshold() const { return t_ + k_; }

  /// Storage blowup per secret byte: n/k.
  double storage_overhead() const {
    return static_cast<double>(n_) / static_cast<double>(k_);
  }

  /// Splits a secret into n shares. The secret is processed as 16-bit
  /// elements, k per batch (zero-padded); each share stores one element
  /// per batch, so |share| ~ |secret| / k. Randomness is drawn on the
  /// calling thread in batch order, so output is identical for every
  /// pool size.
  std::vector<PackedShare> split(ByteView secret, Rng& rng,
                                 ThreadPool* pool = nullptr) const;

  /// Recovers the secret from any >= t+k shares.
  /// `original_size` trims padding.
  Bytes recover(const std::vector<PackedShare>& shares,
                std::size_t original_size, ThreadPool* pool = nullptr) const;

  /// Encode-matrix entry: share s (0-based) = sum_j coeff(s, j) * c_j,
  /// where c_0..c_{k-1} are the packed secrets and c_k..c_{k+t-1} the
  /// randomness. Public structure — exactly what the local-leakage
  /// attack (sharing/lrss.h) exploits.
  std::uint16_t enc_coeff(unsigned share, unsigned j) const;

 private:
  unsigned t_, k_, n_;
  // Encode matrix: share s = sum_j enc_[s][j] * construction_value[j],
  // where construction values are the k secrets followed by t randoms.
  std::vector<std::uint16_t> enc_;  // n x (t+k)
};

/// Shared immutable codec for (t, k, n), built on first use. Same
/// contract as rs_codec: thread-safe, process-lifetime reference, the
/// O(n·(t+k)²) basis-row construction is paid exactly once per
/// geometry. Throws InvalidArgument on invalid geometry.
const PackedSharing& packed_codec(unsigned t, unsigned k, unsigned n);

}  // namespace aegis
