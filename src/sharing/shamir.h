// Shamir (t, n) threshold secret sharing over GF(2^8), byte-parallel.
//
// The information-theoretic workhorse of POTSHARDS-style archives: any t
// shares reconstruct the secret, any t-1 reveal *nothing*, regardless of
// adversarial computing power (Definition 2.1 with eps = 0). The price is
// the paper's Figure 1 cost: every share is as large as the secret, so
// storage blowup is n× — replication-level cost with less availability
// (tolerates only n-t losses).
//
// Implementation: one independent degree-(t-1) polynomial per byte
// position, all evaluated with row operations so splitting is
// O(t·n·len) table-multiplies. Share index i corresponds to evaluation
// point x = i (1-based; 0 is the secret's point and is never issued).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace aegis {

/// One Shamir share: evaluation point + one byte per secret byte.
struct Share {
  std::uint8_t index = 0;  // evaluation point x in [1, 255]
  Bytes data;

  /// Wire encoding (index byte + length-prefixed data).
  Bytes serialize() const;
  static Share deserialize(ByteView wire);
};

/// Splits `secret` into n shares with reconstruction threshold t.
/// Requires 1 <= t <= n <= 255. Randomness must come from a
/// cryptographic RNG (ChaChaRng) in anything but tests. All randomness
/// is drawn on the calling thread before any parallel work, so the
/// output is identical for every pool size (including none).
std::vector<Share> shamir_split(ByteView secret, unsigned t, unsigned n,
                                Rng& rng, ThreadPool* pool = nullptr);

/// Reconstructs the secret from exactly-or-more than t shares (the first
/// t found are used). Throws UnrecoverableError with fewer than t shares
/// and InvalidArgument on duplicate indices or length mismatches.
/// A non-null pool parallelizes across byte-column blocks.
Bytes shamir_recover(const std::vector<Share>& shares, unsigned t,
                     ThreadPool* pool = nullptr);

/// Lagrange coefficient L_i(0) for interpolation point set `xs` — the
/// byte-constant each share is scaled by during recovery. Exposed for the
/// proactive-refresh and redistribution protocols, which re-share along
/// these same weights.
std::uint8_t shamir_lagrange_at_zero(const std::vector<std::uint8_t>& xs,
                                     std::size_t i);

/// Deals a sharing of the all-zero secret (used by Herzberg proactive
/// refresh: adding a zero-sharing re-randomizes shares without changing
/// the secret).
std::vector<Share> shamir_zero_sharing(std::size_t secret_len, unsigned t,
                                       unsigned n, Rng& rng,
                                       ThreadPool* pool = nullptr);

}  // namespace aegis
