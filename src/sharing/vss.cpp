#include "sharing/vss.h"

#include <algorithm>

#include "util/error.h"

namespace aegis {

using ec::Secp256k1;

namespace {

void check_params(unsigned t, unsigned n) {
  if (t == 0 || t > n)
    throw InvalidArgument("vss: need 1 <= t <= n");
}

/// Evaluates poly (coefficients in plain form, constant first) at x.
U256 poly_eval_fn(const std::vector<U256>& coeffs, std::uint32_t x) {
  const MontgomeryCtx& fn = Secp256k1::instance().fn();
  const U256 xm = fn.to_mont(U256(x));
  U256 acc;  // zero
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = fn.add(fn.from_mont(fn.mul(fn.to_mont(acc), xm)), coeffs[i]);
  }
  return acc;
}

std::vector<U256> random_poly(const U256& secret, unsigned t, Rng& rng) {
  const Secp256k1& curve = Secp256k1::instance();
  std::vector<U256> coeffs(t);
  coeffs[0] = secret;
  for (unsigned i = 1; i < t; ++i) coeffs[i] = curve.random_scalar(rng);
  return coeffs;
}

}  // namespace

VssDealing feldman_deal(const U256& secret, unsigned t, unsigned n,
                        Rng& rng) {
  check_params(t, n);
  const Secp256k1& curve = Secp256k1::instance();
  if (!(secret < curve.order()))
    throw InvalidArgument("vss: secret must be < group order");

  const std::vector<U256> f = random_poly(secret, t, rng);

  VssDealing d;
  d.commitments.pedersen = false;
  for (unsigned j = 0; j < t; ++j)
    d.commitments.points.push_back(curve.encode(curve.mul_gen(f[j])));

  d.shares.resize(n);
  for (unsigned i = 1; i <= n; ++i) {
    d.shares[i - 1] = {i, poly_eval_fn(f, i), U256()};
  }
  return d;
}

VssDealing pedersen_deal(const U256& secret, unsigned t, unsigned n,
                         Rng& rng) {
  U256 unused;
  return pedersen_deal_opened(secret, t, n, rng, unused);
}

VssDealing pedersen_deal_opened(const U256& secret, unsigned t, unsigned n,
                                Rng& rng, U256& blind0_out) {
  check_params(t, n);
  const Secp256k1& curve = Secp256k1::instance();
  if (!(secret < curve.order()))
    throw InvalidArgument("vss: secret must be < group order");

  const std::vector<U256> f = random_poly(secret, t, rng);
  const std::vector<U256> g = random_poly(curve.random_scalar(rng), t, rng);
  blind0_out = g[0];

  VssDealing d;
  d.commitments.pedersen = true;
  for (unsigned j = 0; j < t; ++j) {
    d.commitments.points.push_back(
        pedersen_commit(f[j], g[j]).encode());
  }

  d.shares.resize(n);
  for (unsigned i = 1; i <= n; ++i) {
    d.shares[i - 1] = {i, poly_eval_fn(f, i), poly_eval_fn(g, i)};
  }
  return d;
}

VssDealing pedersen_deal_fixed_blind0(const U256& secret, const U256& blind0,
                                      unsigned t, unsigned n, Rng& rng) {
  check_params(t, n);
  const Secp256k1& curve = Secp256k1::instance();
  if (!(secret < curve.order()) || !(blind0 < curve.order()))
    throw InvalidArgument("vss: secret/blind must be < group order");

  const std::vector<U256> f = random_poly(secret, t, rng);
  std::vector<U256> g = random_poly(blind0, t, rng);
  g[0] = blind0;

  VssDealing d;
  d.commitments.pedersen = true;
  for (unsigned j = 0; j < t; ++j)
    d.commitments.points.push_back(pedersen_commit(f[j], g[j]).encode());

  d.shares.resize(n);
  for (unsigned i = 1; i <= n; ++i)
    d.shares[i - 1] = {i, poly_eval_fn(f, i), poly_eval_fn(g, i)};
  return d;
}

bool vss_verify_share(const VssShare& share, const VssCommitments& c) {
  if (share.index == 0 || c.points.empty()) return false;
  const Secp256k1& curve = Secp256k1::instance();
  const MontgomeryCtx& fn = curve.fn();

  try {
    // Expected commitment to f(i) (and g(i)): prod_j C_j^{i^j}.
    ec::Point expect;  // identity
    U256 x_pow = U256(1);
    const U256 xm = fn.to_mont(U256(share.index));
    for (const Bytes& enc : c.points) {
      const ec::Point cj = curve.decode(enc);
      expect = curve.add(expect, curve.mul(cj, x_pow));
      x_pow = fn.from_mont(fn.mul(fn.to_mont(x_pow), xm));
    }

    const ec::Point actual =
        c.pedersen ? pedersen_commit(share.value, share.blind).point
                   : curve.mul_gen(share.value);
    return curve.eq(expect, actual);
  } catch (const Error&) {
    return false;  // malformed commitment encodings
  }
}

U256 scalar_lagrange_at_zero(const std::vector<std::uint32_t>& xs,
                             std::size_t i) {
  const Secp256k1& curve = Secp256k1::instance();
  const MontgomeryCtx& fn = curve.fn();
  // L_i(0) = prod_{j != i} x_j / (x_j - x_i) over Z_n.
  U256 num = fn.to_mont(U256(1));
  U256 den = fn.to_mont(U256(1));
  for (std::size_t j = 0; j < xs.size(); ++j) {
    if (j == i) continue;
    num = fn.mul(num, fn.to_mont(U256(xs[j])));
    const U256 diff = fn.sub(U256(xs[j]), U256(xs[i]));
    if (diff.is_zero())
      throw InvalidArgument("vss: duplicate share indices");
    den = fn.mul(den, fn.to_mont(diff));
  }
  return fn.from_mont(fn.mul(num, fn.inv(den)));
}

namespace {
U256 recover_field(const std::vector<VssShare>& shares, unsigned t,
                   bool blind) {
  if (t == 0) throw InvalidArgument("vss_recover: t must be >= 1");
  if (shares.size() < t)
    throw UnrecoverableError("vss: have " + std::to_string(shares.size()) +
                             " shares, need " + std::to_string(t));
  const MontgomeryCtx& fn = Secp256k1::instance().fn();

  std::vector<std::uint32_t> xs;
  xs.reserve(t);
  for (unsigned i = 0; i < t; ++i) {
    if (shares[i].index == 0)
      throw InvalidArgument("vss: share index 0 is reserved");
    if (std::find(xs.begin(), xs.end(), shares[i].index) != xs.end())
      throw InvalidArgument("vss: duplicate share indices");
    xs.push_back(shares[i].index);
  }

  U256 acc;  // zero
  for (unsigned i = 0; i < t; ++i) {
    const U256 li = scalar_lagrange_at_zero(xs, i);
    const U256& v = blind ? shares[i].blind : shares[i].value;
    acc = fn.add(acc, fn.from_mont(fn.mul(fn.to_mont(li), fn.to_mont(v))));
  }
  return acc;
}
}  // namespace

U256 vss_recover(const std::vector<VssShare>& shares, unsigned t) {
  return recover_field(shares, t, /*blind=*/false);
}

U256 vss_recover_blind(const std::vector<VssShare>& shares, unsigned t) {
  return recover_field(shares, t, /*blind=*/true);
}

}  // namespace aegis
