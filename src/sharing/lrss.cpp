#include "sharing/lrss.h"

#include <array>
#include <bit>
#include <cstring>

#include "crypto/entropic.h"  // gf64_mul
#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

Bytes LrssShare::serialize() const {
  ByteWriter w;
  w.u8(index);
  w.bytes(source);
  w.bytes(masked);
  return std::move(w).take();
}

LrssShare LrssShare::deserialize(ByteView wire) {
  ByteReader r(wire);
  LrssShare s;
  s.index = r.u8();
  s.source = r.bytes();
  s.masked = r.bytes();
  r.expect_done();
  return s;
}

Lrss::Lrss(unsigned t, unsigned n, unsigned leakage_budget_bits)
    : t_(t), n_(n), leak_bits_(leakage_budget_bits) {
  if (t == 0 || t > n || n > 255)
    throw InvalidArgument("Lrss: need 1 <= t <= n <= 255");
}

std::size_t Lrss::share_size(std::size_t secret_len) const {
  // Source must hold: output entropy (= share length) + leakage budget
  // + 128 bits of leftover-hash slack.
  const std::size_t out_words = (secret_len + 7) / 8;
  const std::size_t src_words = out_words + (leak_bits_ + 63) / 64 + 2;
  return src_words * 8 + secret_len;
}

Bytes Lrss::extract(ByteView source, ByteView seed,
                    std::size_t out_len) const {
  if (seed.size() != 16)
    throw InvalidArgument("Lrss: seed must be 16 bytes");
  std::uint64_t a, b;
  std::memcpy(&a, seed.data(), 8);
  std::memcpy(&b, seed.data() + 8, 8);
  if (a == 0) a = 1;

  const std::size_t m = source.size() / 8;
  std::vector<std::uint64_t> w(m);
  std::memcpy(w.data(), source.data(), m * 8);

  // Output word j = b * P_w(a_j), where P_w is the polynomial with the
  // source words as coefficients and a_j = a xor (j+1) gives each output
  // word its own evaluation point: a multi-point polynomial universal
  // hash (per-word collision probability <= m/2^64), evaluated by
  // Horner in O(m) multiplies per word.
  Bytes out(out_len, 0);
  const std::size_t out_words = (out_len + 7) / 8;
  for (std::size_t j = 0; j < out_words; ++j) {
    const std::uint64_t point = a ^ (j + 1);
    std::uint64_t acc = 0;
    for (std::size_t l = m; l-- > 0;) acc = gf64_mul(acc, point) ^ w[l];
    acc = gf64_mul(acc, b);
    std::uint8_t word[8];
    std::memcpy(word, &acc, 8);
    const std::size_t take = std::min<std::size_t>(8, out_len - j * 8);
    std::memcpy(out.data() + j * 8, word, take);
  }
  return out;
}

LrssSharing Lrss::split(ByteView secret, Rng& rng) const {
  LrssSharing out;
  out.seed = rng.bytes(16);

  const std::vector<Share> inner = shamir_split(secret, t_, n_, rng);
  const std::size_t out_words = (secret.size() + 7) / 8;
  const std::size_t src_words = out_words + (leak_bits_ + 63) / 64 + 2;

  out.shares.resize(n_);
  for (unsigned i = 0; i < n_; ++i) {
    LrssShare& s = out.shares[i];
    s.index = inner[i].index;
    s.source = rng.bytes(src_words * 8);
    const Bytes mask = extract(s.source, out.seed, secret.size());
    s.masked = xor_bytes(inner[i].data, mask);
  }
  return out;
}

Bytes Lrss::recover(const std::vector<LrssShare>& shares,
                    ByteView seed) const {
  if (shares.size() < t_)
    throw UnrecoverableError("Lrss: have " + std::to_string(shares.size()) +
                             " shares, need " + std::to_string(t_));
  std::vector<Share> inner;
  inner.reserve(t_);
  for (unsigned i = 0; i < t_; ++i) {
    const LrssShare& s = shares[i];
    const Bytes mask = extract(s.source, seed, s.masked.size());
    inner.push_back({s.index, xor_bytes(s.masked, mask)});
  }
  return shamir_recover(inner, t_);
}

// ----------------------------------------------------------------------
// Local-leakage attack on GF(2^8) Shamir.

namespace {

// bit0 of (c * m) over GF(2^8) is GF(2)-linear in the bits of c:
// row_bits[b] = bit0((1<<b) * m).
std::uint8_t lsb_row_for_multiplier(std::uint8_t m) {
  std::uint8_t row = 0;
  for (int b = 0; b < 8; ++b) {
    if (gf256::mul(static_cast<std::uint8_t>(1 << b), m) & 1)
      row |= static_cast<std::uint8_t>(1 << b);
  }
  return row;
}

}  // namespace

LeakageAttackPlan plan_shamir_lsb_attack(
    unsigned t, const std::vector<std::uint8_t>& share_indices) {
  LeakageAttackPlan plan;
  const std::size_t n = share_indices.size();
  if (t == 0 || n == 0) return plan;

  // Unknown vector u = (secret bits || coeff_1 bits || ... || coeff_{t-1}).
  // Leaked bit of share i: l_i = <A_i, u> with A_i derived from the
  // field's multiplication structure: share_i = sum_j a_j * x_i^j.
  const unsigned cols = 8 * t;
  std::vector<std::vector<std::uint8_t>> a(n,
                                           std::vector<std::uint8_t>(t, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (unsigned j = 0; j < t; ++j) {
      const std::uint8_t xij =
          gf256::pow(share_indices[i], j);  // multiplier of coeff j
      a[i][j] = lsb_row_for_multiplier(xij);
    }
  }

  // We need lambda in GF(2)^n with  sum_i lambda_i A_i == 0 on the
  // coefficient columns (j >= 1) and != 0 on the secret columns (j == 0).
  // Equivalently: lambda in the nullspace of B^T where B is the n x
  // 8(t-1) coefficient block. Gaussian elimination over GF(2), rows as
  // bitsets of width n (n <= 255 -> 4 words).
  const unsigned coeff_cols = cols - 8;
  // Build B^T: coeff_cols rows, each n bits.
  std::vector<std::array<std::uint64_t, 4>> bt(
      coeff_cols, std::array<std::uint64_t, 4>{});
  for (std::size_t i = 0; i < n; ++i) {
    for (unsigned j = 1; j < t; ++j) {
      for (int b = 0; b < 8; ++b) {
        if ((a[i][j] >> b) & 1) {
          const unsigned r = (j - 1) * 8 + b;
          bt[r][i / 64] |= 1ULL << (i % 64);
        }
      }
    }
  }

  // Nullspace of B^T via column-style elimination: track which variable
  // (share) is pivot for each row; free variables generate nullspace.
  std::vector<int> pivot_of_row(coeff_cols, -1);
  std::vector<bool> is_pivot(n, false);
  unsigned rank = 0;
  for (std::size_t col = 0; col < n && rank < coeff_cols; ++col) {
    // find a row >= rank with bit `col` set
    std::size_t sel = coeff_cols;
    for (std::size_t r = rank; r < coeff_cols; ++r) {
      if ((bt[r][col / 64] >> (col % 64)) & 1) {
        sel = r;
        break;
      }
    }
    if (sel == coeff_cols) continue;
    std::swap(bt[rank], bt[sel]);
    for (std::size_t r = 0; r < coeff_cols; ++r) {
      if (r != rank && ((bt[r][col / 64] >> (col % 64)) & 1)) {
        for (int wi = 0; wi < 4; ++wi) bt[r][wi] ^= bt[rank][wi];
      }
    }
    pivot_of_row[rank] = static_cast<int>(col);
    is_pivot[col] = true;
    ++rank;
  }

  // For each free variable f, the nullspace vector sets lambda_f = 1 and
  // lambda_pivot = bt[row][f] for each pivot row. Try each; accept the
  // first whose secret-column image is nonzero.
  for (std::size_t f = 0; f < n; ++f) {
    if (is_pivot[f]) continue;
    std::vector<std::uint8_t> lambda(n, 0);
    lambda[f] = 1;
    for (unsigned r = 0; r < rank; ++r) {
      if ((bt[r][f / 64] >> (f % 64)) & 1)
        lambda[static_cast<std::size_t>(pivot_of_row[r])] = 1;
    }
    std::uint8_t mask = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (lambda[i]) mask ^= a[i][0];
    if (mask != 0) {
      plan.feasible = true;
      plan.lambda = std::move(lambda);
      plan.secret_mask = mask;
      return plan;
    }
  }
  return plan;  // infeasible: leakage spans no secret-only functional
}

std::vector<int> apply_shamir_lsb_attack(const LeakageAttackPlan& plan,
                                         const std::vector<Share>& shares) {
  if (!plan.feasible)
    throw InvalidArgument("leakage attack: plan is infeasible");
  if (shares.size() != plan.lambda.size())
    throw InvalidArgument("leakage attack: share count mismatch");
  const std::size_t len = shares.empty() ? 0 : shares[0].data.size();

  std::vector<int> parities(len, 0);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (!plan.lambda[i]) continue;
    for (std::size_t p = 0; p < len; ++p)
      parities[p] ^= shares[i].data[p] & 1;  // leak: LSB only
  }
  return parities;
}

std::vector<int> secret_parities(ByteView secret, std::uint8_t mask) {
  std::vector<int> out(secret.size());
  for (std::size_t p = 0; p < secret.size(); ++p)
    out[p] = std::popcount(static_cast<unsigned>(secret[p] & mask)) & 1;
  return out;
}

// ----------------------------------------------------------------------
// Packed-sharing (GF(2^16)) variant of the attack.

namespace {

// bit0 of ((1<<b) * m) over GF(2^16) for b = 0..15, packed into a mask.
std::uint16_t lsb_row_for_multiplier16(std::uint16_t m) {
  std::uint16_t row = 0;
  for (int b = 0; b < 16; ++b) {
    if (gf65536::mul(static_cast<std::uint16_t>(1u << b), m) & 1)
      row |= static_cast<std::uint16_t>(1u << b);
  }
  return row;
}

using BitRow = std::vector<std::uint64_t>;  // n-bit row, 64-bit words

bool get_bit(const BitRow& r, std::size_t i) {
  return (r[i / 64] >> (i % 64)) & 1;
}
void set_bit(BitRow& r, std::size_t i) { r[i / 64] |= 1ULL << (i % 64); }
void xor_rows(BitRow& dst, const BitRow& src) {
  for (std::size_t w = 0; w < dst.size(); ++w) dst[w] ^= src[w];
}

}  // namespace

PackedLeakagePlan plan_packed_lsb_attack(const PackedSharing& ps) {
  PackedLeakagePlan plan;
  const unsigned n = ps.n();
  const unsigned k = ps.k();
  const unsigned t = ps.t();
  const std::size_t words = (n + 63) / 64;

  // A[i][j]: 16-bit GF(2)-row mapping the bits of construction value j
  // to the leaked bit of share i.
  std::vector<std::vector<std::uint16_t>> a(
      n, std::vector<std::uint16_t>(k + t, 0));
  for (unsigned i = 0; i < n; ++i)
    for (unsigned j = 0; j < k + t; ++j)
      a[i][j] = lsb_row_for_multiplier16(ps.enc_coeff(i, j));

  // B^T over the randomness bit-columns (j >= k): 16*t rows of n bits.
  const unsigned coeff_rows = 16 * t;
  std::vector<BitRow> bt(coeff_rows, BitRow(words, 0));
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = 0; j < t; ++j) {
      for (int b = 0; b < 16; ++b) {
        if ((a[i][k + j] >> b) & 1) set_bit(bt[j * 16 + b], i);
      }
    }
  }

  // Nullspace of B^T.
  std::vector<int> pivot_of_row(coeff_rows, -1);
  std::vector<bool> is_pivot(n, false);
  unsigned rank = 0;
  for (std::size_t col = 0; col < n && rank < coeff_rows; ++col) {
    std::size_t sel = coeff_rows;
    for (std::size_t r = rank; r < coeff_rows; ++r) {
      if (get_bit(bt[r], col)) {
        sel = r;
        break;
      }
    }
    if (sel == coeff_rows) continue;
    std::swap(bt[rank], bt[sel]);
    for (std::size_t r = 0; r < coeff_rows; ++r) {
      if (r != rank && get_bit(bt[r], col)) xor_rows(bt[r], bt[rank]);
    }
    pivot_of_row[rank] = static_cast<int>(col);
    is_pivot[col] = true;
    ++rank;
  }

  for (std::size_t f = 0; f < n; ++f) {
    if (is_pivot[f]) continue;
    std::vector<std::uint8_t> lambda(n, 0);
    lambda[f] = 1;
    for (unsigned r = 0; r < rank; ++r) {
      if (get_bit(bt[r], f))
        lambda[static_cast<std::size_t>(pivot_of_row[r])] = 1;
    }
    std::vector<std::uint16_t> masks(k, 0);
    bool nonzero = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!lambda[i]) continue;
      for (unsigned s = 0; s < k; ++s) masks[s] ^= a[i][s];
    }
    for (std::uint16_t m : masks) nonzero = nonzero || m != 0;
    if (nonzero) {
      plan.feasible = true;
      plan.lambda = std::move(lambda);
      plan.secret_masks = std::move(masks);
      return plan;
    }
  }
  return plan;
}

std::vector<int> apply_packed_lsb_attack(
    const PackedLeakagePlan& plan, const std::vector<PackedShare>& shares) {
  if (!plan.feasible)
    throw InvalidArgument("packed leakage attack: plan is infeasible");
  if (shares.size() != plan.lambda.size())
    throw InvalidArgument("packed leakage attack: share count mismatch");

  const std::size_t batches =
      shares.empty() ? 0 : shares[0].data.size() / 2;
  std::vector<int> parities(batches, 0);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (!plan.lambda[i]) continue;
    // Shares may arrive in any order; index them by their share number.
    const PackedShare& s = shares[i];
    if (s.index != i + 1)
      throw InvalidArgument("packed leakage attack: shares must be in "
                            "index order");
    for (std::size_t b = 0; b < batches; ++b) {
      // Element b is big-endian 16-bit: LSB is the second byte.
      parities[b] ^= s.data[b * 2 + 1] & 1;
    }
  }
  return parities;
}

std::vector<int> packed_secret_parities(
    ByteView secret, unsigned k, const std::vector<std::uint16_t>& masks) {
  const std::size_t total_elems = (secret.size() + 1) / 2;
  const std::size_t batches = (total_elems + k - 1) / k;
  auto load = [&](std::size_t idx) -> std::uint16_t {
    const std::size_t off = idx * 2;
    const std::uint8_t hi = off < secret.size() ? secret[off] : 0;
    const std::uint8_t lo = off + 1 < secret.size() ? secret[off + 1] : 0;
    return static_cast<std::uint16_t>((hi << 8) | lo);
  };
  std::vector<int> out(batches, 0);
  for (std::size_t b = 0; b < batches; ++b) {
    int parity = 0;
    for (unsigned s = 0; s < k; ++s)
      parity ^= std::popcount(
                    static_cast<unsigned>(load(b * k + s) & masks[s])) &
                1;
    out[b] = parity;
  }
  return out;
}

}  // namespace aegis
