#include "sharing/redistribute.h"

#include "crypto/pedersen.h"
#include "gf/gf256.h"
#include "util/error.h"

namespace aegis {

std::vector<Share> redistribute(const std::vector<Share>& shares, unsigned t,
                                unsigned t2, unsigned n2, Rng& rng,
                                RefreshStats* stats) {
  if (shares.size() < t)
    throw UnrecoverableError("redistribute: need at least t old shares");
  if (t2 == 0 || t2 > n2 || n2 > 255)
    throw InvalidArgument("redistribute: need 1 <= t2 <= n2 <= 255");

  const std::size_t len = shares[0].data.size();
  std::vector<std::uint8_t> xs;
  for (unsigned i = 0; i < t; ++i) xs.push_back(shares[i].index);

  // Each contributing old holder sub-shares its share; the new share j is
  // the Lagrange-weighted XOR of the sub-shares it receives. Linearity of
  // Shamir sharing makes the result a fresh (t2, n2) sharing of
  // sum_i L_i * s_i = secret.
  std::vector<Share> fresh(n2);
  for (unsigned j = 0; j < n2; ++j) {
    fresh[j].index = static_cast<std::uint8_t>(j + 1);
    fresh[j].data.assign(len, 0);
  }

  for (unsigned i = 0; i < t; ++i) {
    const std::uint8_t li = shamir_lagrange_at_zero(xs, i);
    const std::vector<Share> sub = shamir_split(shares[i].data, t2, n2, rng);
    for (unsigned j = 0; j < n2; ++j) {
      Bytes scaled(len);
      gf256::mul_row(MutByteView(scaled.data(), len), sub[j].data, li);
      xor_inplace(MutByteView(fresh[j].data.data(), len), scaled);
      if (stats) {
        ++stats->messages;
        stats->bytes += len;
      }
    }
    if (stats) ++stats->dealers;
  }
  return fresh;
}

RedistributeResult redistribute_vss(
    const VssDealing& dealing, unsigned t, unsigned t2, unsigned n2,
    Rng& rng, const std::set<std::uint32_t>& corrupt_holders) {
  if (!dealing.commitments.pedersen)
    throw InvalidArgument("redistribute_vss: requires a Pedersen dealing");
  if (t2 == 0 || t2 > n2)
    throw InvalidArgument("redistribute_vss: need 1 <= t2 <= n2");

  const ec::Secp256k1& curve = ec::Secp256k1::instance();
  const MontgomeryCtx& fn = curve.fn();

  RedistributeResult out;

  // Standing commitment to holder i's share: prod_j C_j^{i^j}.
  auto standing_commitment = [&](std::uint32_t index) {
    ec::Point acc;
    U256 x_pow(1);
    const U256 xm = fn.to_mont(U256(index));
    for (const Bytes& enc : dealing.commitments.points) {
      acc = curve.add(acc, curve.mul(curve.decode(enc), x_pow));
      x_pow = fn.from_mont(fn.mul(fn.to_mont(x_pow), xm));
    }
    return PedersenCommitment{acc};
  };

  // Every old holder produces a sub-dealing; cheaters corrupt the value.
  // New holders accept a sub-dealing iff (a) its constant commitment
  // equals the holder's standing commitment and (b) their own sub-share
  // verifies. The first t accepted sub-dealings are combined.
  struct Accepted {
    std::uint32_t holder;
    VssDealing sub;
  };
  std::vector<Accepted> accepted;

  for (const VssShare& old : dealing.shares) {
    U256 value = old.value;
    if (corrupt_holders.count(old.index) > 0)
      value = fn.add(value, U256(1));  // lie about the share

    VssDealing sub =
        pedersen_deal_fixed_blind0(value, old.blind, t2, n2, rng);

    out.stats.messages += n2;
    out.stats.bytes += static_cast<std::uint64_t>(n2) * 64;

    const PedersenCommitment c0 =
        PedersenCommitment::decode(sub.commitments.points[0]);
    bool ok = c0 == standing_commitment(old.index);
    for (unsigned j = 0; j < n2 && ok; ++j)
      ok = vss_verify_share(sub.shares[j], sub.commitments);

    if (!ok) {
      out.accused.push_back(old.index);
      continue;
    }
    accepted.push_back({old.index, std::move(sub)});
    ++out.stats.dealers;
    if (accepted.size() == t) break;
  }

  if (accepted.size() < t)
    throw UnrecoverableError(
        "redistribute_vss: fewer than t honest holders");

  std::vector<std::uint32_t> xs;
  for (const auto& a : accepted) xs.push_back(a.holder);

  // New share j = sum_i L_i * sub_i(j); commitments combine the same way.
  out.shares.resize(n2);
  for (unsigned j = 0; j < n2; ++j) {
    U256 value, blind;  // zero
    for (std::size_t i = 0; i < accepted.size(); ++i) {
      const U256 li = scalar_lagrange_at_zero(xs, i);
      const VssShare& s = accepted[i].sub.shares[j];
      value = fn.add(value,
                     fn.from_mont(fn.mul(fn.to_mont(li), fn.to_mont(s.value))));
      blind = fn.add(blind,
                     fn.from_mont(fn.mul(fn.to_mont(li), fn.to_mont(s.blind))));
    }
    out.shares[j] = {j + 1, value, blind};
  }

  out.commitments.pedersen = true;
  for (unsigned c = 0; c < t2; ++c) {
    ec::Point acc;
    for (std::size_t i = 0; i < accepted.size(); ++i) {
      const U256 li = scalar_lagrange_at_zero(xs, i);
      const ec::Point pc = curve.decode(accepted[i].sub.commitments.points[c]);
      acc = curve.add(acc, curve.mul(pc, li));
    }
    out.commitments.points.push_back(curve.encode(acc));
  }
  return out;
}

}  // namespace aegis
