#include "sharing/shamir.h"

#include <algorithm>

#include "gf/gf256.h"
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

Bytes Share::serialize() const {
  ByteWriter w;
  w.u8(index);
  w.bytes(data);
  return std::move(w).take();
}

Share Share::deserialize(ByteView wire) {
  ByteReader r(wire);
  Share s;
  s.index = r.u8();
  s.data = r.bytes();
  r.expect_done();
  return s;
}

namespace {

void check_params(unsigned t, unsigned n) {
  if (t == 0 || t > n || n > 255)
    throw InvalidArgument("shamir: need 1 <= t <= n <= 255");
}

// Core splitter: constant term is `secret` (or zeros for a zero-sharing).
std::vector<Share> split_impl(ByteView secret, bool zero_secret, unsigned t,
                              unsigned n, Rng& rng, ThreadPool* pool) {
  check_params(t, n);

  // Coefficient rows: row 0 is the secret, rows 1..t-1 are random.
  // Drawn serially up front so the rng stream — and hence the shares —
  // are independent of the worker count.
  std::vector<Bytes> coeffs;
  coeffs.reserve(t);
  coeffs.emplace_back(zero_secret ? Bytes(secret.size(), 0)
                                  : to_bytes(secret));
  for (unsigned c = 1; c < t; ++c) coeffs.push_back(rng.bytes(secret.size()));

  std::vector<Share> shares(n);
  // Each share is an independent polynomial evaluation over the fixed
  // coefficient rows; parallelize across shares.
  parallel_blocks(pool, n, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t i = b0; i < b1; ++i) {
      const auto x = static_cast<std::uint8_t>(i + 1);
      Share& s = shares[i];
      s.index = x;
      s.data.assign(secret.size(), 0);
      // Horner, vectorized over byte positions: acc = acc*x + coeff[c].
      for (unsigned c = t; c-- > 0;) {
        gf256::mul_row(MutByteView(s.data.data(), s.data.size()), s.data, x);
        xor_inplace(MutByteView(s.data.data(), s.data.size()), coeffs[c]);
      }
    }
  });
  return shares;
}

}  // namespace

std::vector<Share> shamir_split(ByteView secret, unsigned t, unsigned n,
                                Rng& rng, ThreadPool* pool) {
  return split_impl(secret, /*zero_secret=*/false, t, n, rng, pool);
}

std::vector<Share> shamir_zero_sharing(std::size_t secret_len, unsigned t,
                                       unsigned n, Rng& rng,
                                       ThreadPool* pool) {
  const Bytes dummy(secret_len, 0);
  return split_impl(dummy, /*zero_secret=*/true, t, n, rng, pool);
}

std::uint8_t shamir_lagrange_at_zero(const std::vector<std::uint8_t>& xs,
                                     std::size_t i) {
  // L_i(0) = prod_{j != i} x_j / (x_j - x_i); char-2 subtraction is XOR.
  std::uint8_t num = 1, den = 1;
  for (std::size_t j = 0; j < xs.size(); ++j) {
    if (j == i) continue;
    num = gf256::mul(num, xs[j]);
    den = gf256::mul(den, gf256::add(xs[j], xs[i]));
  }
  if (den == 0)
    throw InvalidArgument("shamir: duplicate share indices");
  return gf256::div(num, den);
}

Bytes shamir_recover(const std::vector<Share>& shares, unsigned t,
                     ThreadPool* pool) {
  if (t == 0) throw InvalidArgument("shamir_recover: t must be >= 1");
  if (shares.size() < t)
    throw UnrecoverableError("shamir: have " +
                             std::to_string(shares.size()) +
                             " shares, need " + std::to_string(t));

  const std::size_t len = shares[0].data.size();
  std::vector<std::uint8_t> xs;
  xs.reserve(t);
  for (unsigned i = 0; i < t; ++i) {
    const Share& s = shares[i];
    if (s.index == 0)
      throw InvalidArgument("shamir: share index 0 is reserved");
    if (s.data.size() != len)
      throw InvalidArgument("shamir: share length mismatch");
    if (std::find(xs.begin(), xs.end(), s.index) != xs.end())
      throw InvalidArgument("shamir: duplicate share indices");
    xs.push_back(s.index);
  }

  std::vector<std::uint8_t> lagrange(t);
  for (unsigned i = 0; i < t; ++i) lagrange[i] = shamir_lagrange_at_zero(xs, i);

  Bytes secret(len, 0);
  // Column blocks are disjoint slices of the output, so the partition
  // cannot change the result.
  parallel_blocks(pool, len, [&](std::size_t b0, std::size_t b1) {
    for (unsigned i = 0; i < t; ++i) {
      gf256::mul_add_row(MutByteView(secret.data() + b0, b1 - b0),
                         ByteView(shares[i].data.data() + b0, b1 - b0),
                         lagrange[i]);
    }
  });
  return secret;
}

}  // namespace aegis
