// Proactive secret sharing: Herzberg-style share refresh.
//
// The mobile adversary (Ostrovsky–Yung) corrupts up to f nodes *per
// epoch*; over archival timescales it eventually touches more than t
// distinct nodes. Proactive refresh defeats it: each epoch the
// shareholders jointly re-randomize their shares without ever
// reconstructing the secret, so shares stolen in different epochs do not
// combine. The paper (§3.2) notes the cost: every shareholder sends a
// sub-share to every other shareholder — O(n^2) messages of share size —
// which is what bench/refresh_cost measures against whole-archive
// re-encryption.
//
// Two protocols:
//   * proactive_refresh        — bulk GF(2^8) Shamir shares (data plane);
//   * proactive_refresh_vss    — Pedersen-VSS scalar shares (key plane),
//     verifiable: a corrupt dealer's inconsistent zero-sharing is
//     detected and excluded, and dealers must prove their constant term
//     is zero by revealing its blinding.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "sharing/shamir.h"
#include "sharing/vss.h"
#include "util/rng.h"

namespace aegis {

/// Communication accounting for a refresh round (the §3.2 cost story).
struct RefreshStats {
  std::uint64_t messages = 0;  // point-to-point sub-share transfers
  std::uint64_t bytes = 0;     // payload bytes moved
  unsigned dealers = 0;        // honest dealings combined
};

/// One refresh round for bulk Shamir shares. Every share's holder deals a
/// zero-sharing to all others; each new share is the old one plus all
/// received deltas. The secret is unchanged; any pre-refresh share is
/// statistically independent of the post-refresh sharing.
///
/// `shares` must hold all n shares (the simulation plays every node).
/// A non-null pool parallelizes each dealer's zero-sharing evaluation;
/// rng draws stay on the calling thread, so output is pool-independent.
std::vector<Share> proactive_refresh(const std::vector<Share>& shares,
                                     unsigned t, Rng& rng,
                                     RefreshStats* stats = nullptr,
                                     ThreadPool* pool = nullptr);

/// Result of a verifiable refresh round.
struct VerifiableRefreshResult {
  std::vector<VssShare> shares;  // refreshed shares
  VssCommitments commitments;    // updated public commitments
  RefreshStats stats;
  std::vector<std::uint32_t> accused;  // dealers whose dealings failed
};

/// One verifiable refresh round for a Pedersen-VSS dealing. Dealers in
/// `corrupt_dealers` distribute an inconsistent sub-share to the first
/// other party (the attack §3.3 worries about); honest parties detect the
/// bad dealing via the commitments and exclude it, so the refresh still
/// completes correctly.
VerifiableRefreshResult proactive_refresh_vss(
    const VssDealing& dealing, unsigned t, unsigned n, Rng& rng,
    const std::set<std::uint32_t>& corrupt_dealers = {});

}  // namespace aegis
