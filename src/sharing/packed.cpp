#include "sharing/packed.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "gf/gf65536.h"
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

using gf65536::Elem;

Bytes PackedShare::serialize() const {
  ByteWriter w;
  w.u16(index);
  w.bytes(data);
  return std::move(w).take();
}

PackedShare PackedShare::deserialize(ByteView wire) {
  ByteReader r(wire);
  PackedShare s;
  s.index = r.u16();
  s.data = r.bytes();
  r.expect_done();
  return s;
}

namespace {

// Field points: secrets at 1..k, randomness at k+1..k+t, share s (1-based)
// at k+t+s.
Elem secret_point(unsigned k, unsigned i) {
  (void)k;
  return static_cast<Elem>(1 + i);
}
Elem random_point(unsigned k, unsigned j) {
  return static_cast<Elem>(k + 1 + j);
}
Elem share_point(unsigned k, unsigned t, unsigned s) {
  return static_cast<Elem>(k + t + s);
}

// Lagrange basis row: weights w_j such that P(x0) = sum_j w_j * P(xs[j])
// for any polynomial of degree < xs.size().
std::vector<Elem> basis_row(const std::vector<Elem>& xs, Elem x0) {
  std::vector<Elem> row(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    Elem num = 1, den = 1;
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      num = gf65536::mul(num, gf65536::add(x0, xs[j]));
      den = gf65536::mul(den, gf65536::add(xs[i], xs[j]));
    }
    row[i] = gf65536::div(num, den);
  }
  return row;
}

Elem load_elem(ByteView b, std::size_t idx) {
  // Big-endian 16-bit elements; out-of-range reads are zero padding.
  const std::size_t off = idx * 2;
  const std::uint8_t hi = off < b.size() ? b[off] : 0;
  const std::uint8_t lo = off + 1 < b.size() ? b[off + 1] : 0;
  return static_cast<Elem>((hi << 8) | lo);
}

void store_elem(Bytes& b, Elem e) {
  b.push_back(static_cast<std::uint8_t>(e >> 8));
  b.push_back(static_cast<std::uint8_t>(e));
}

}  // namespace

PackedSharing::PackedSharing(unsigned t, unsigned k, unsigned n)
    : t_(t), k_(k), n_(n) {
  if (t == 0 || k == 0 || n < t + k ||
      static_cast<unsigned long long>(n) + t + k > 65535ull)
    throw InvalidArgument(
        "PackedSharing: need t,k >= 1, n >= t+k, n+t+k <= 65535");

  // Construction points: the k secret points then the t random anchors.
  std::vector<Elem> cons;
  cons.reserve(t + k);
  for (unsigned i = 0; i < k; ++i) cons.push_back(secret_point(k, i));
  for (unsigned j = 0; j < t; ++j) cons.push_back(random_point(k, j));

  enc_.resize(static_cast<std::size_t>(n) * (t + k));
  for (unsigned s = 1; s <= n; ++s) {
    const std::vector<Elem> row = basis_row(cons, share_point(k, t, s));
    std::copy(row.begin(), row.end(),
              enc_.begin() + static_cast<std::size_t>(s - 1) * (t + k));
  }
}

std::uint16_t PackedSharing::enc_coeff(unsigned share, unsigned j) const {
  if (share >= n_ || j >= t_ + k_)
    throw InvalidArgument("PackedSharing::enc_coeff: index out of range");
  return enc_[static_cast<std::size_t>(share) * (t_ + k_) + j];
}

std::vector<PackedShare> PackedSharing::split(ByteView secret, Rng& rng,
                                              ThreadPool* pool) const {
  const std::size_t total_elems = (secret.size() + 1) / 2;
  const std::size_t batches = (total_elems + k_ - 1) / k_;

  std::vector<PackedShare> shares(n_);
  for (unsigned s = 0; s < n_; ++s) {
    shares[s].index = static_cast<std::uint16_t>(s + 1);
    shares[s].data.assign(batches * 2, 0);
  }

  // Randomness drawn up front on the calling thread, one fill per batch
  // exactly as the serial loop always did — the rng stream (and hence
  // the shares) are identical for every pool size.
  Bytes randomness(batches * 2 * t_);
  for (std::size_t b = 0; b < batches; ++b)
    rng.fill(MutByteView(randomness.data() + b * 2 * t_, 2 * t_));

  parallel_blocks(pool, batches, [&](std::size_t b0, std::size_t b1) {
    std::vector<Elem> cons(t_ + k_);
    for (std::size_t b = b0; b < b1; ++b) {
      for (unsigned i = 0; i < k_; ++i)
        cons[i] = load_elem(secret, b * k_ + i);
      const ByteView batch_rand(randomness.data() + b * 2 * t_, 2 * t_);
      for (unsigned j = 0; j < t_; ++j)
        cons[k_ + j] = load_elem(batch_rand, j);

      for (unsigned s = 0; s < n_; ++s) {
        const std::uint16_t* row =
            &enc_[static_cast<std::size_t>(s) * (t_ + k_)];
        Elem acc = 0;
        for (unsigned j = 0; j < t_ + k_; ++j)
          acc = gf65536::add(acc, gf65536::mul(row[j], cons[j]));
        shares[s].data[b * 2] = static_cast<std::uint8_t>(acc >> 8);
        shares[s].data[b * 2 + 1] = static_cast<std::uint8_t>(acc);
      }
    }
  });
  return shares;
}

Bytes PackedSharing::recover(const std::vector<PackedShare>& shares,
                             std::size_t original_size,
                             ThreadPool* pool) const {
  const unsigned need = recover_threshold();
  if (shares.size() < need)
    throw UnrecoverableError("packed: have " +
                             std::to_string(shares.size()) +
                             " shares, need " + std::to_string(need));

  std::vector<Elem> xs;
  std::vector<const PackedShare*> used;
  const std::size_t batch_bytes = shares[0].data.size();
  for (const PackedShare& s : shares) {
    if (s.index == 0 || s.index > n_)
      throw InvalidArgument("packed: share index out of range");
    if (s.data.size() != batch_bytes)
      throw InvalidArgument("packed: share length mismatch");
    const Elem x = share_point(k_, t_, s.index);
    if (std::find(xs.begin(), xs.end(), x) != xs.end())
      throw InvalidArgument("packed: duplicate share indices");
    xs.push_back(x);
    used.push_back(&s);
    if (xs.size() == need) break;
  }

  // One interpolation row per secret point, reused across batches.
  std::vector<std::vector<Elem>> rows;
  rows.reserve(k_);
  for (unsigned i = 0; i < k_; ++i)
    rows.push_back(basis_row(xs, secret_point(k_, i)));

  const std::size_t batches = batch_bytes / 2;
  Bytes out(batches * k_ * 2, 0);
  parallel_blocks(pool, batches, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      for (unsigned i = 0; i < k_; ++i) {
        Elem acc = 0;
        for (unsigned j = 0; j < need; ++j) {
          acc = gf65536::add(
              acc, gf65536::mul(rows[i][j], load_elem(used[j]->data, b)));
        }
        const std::size_t off = (b * k_ + i) * 2;
        out[off] = static_cast<std::uint8_t>(acc >> 8);
        out[off + 1] = static_cast<std::uint8_t>(acc);
      }
    }
  });

  if (original_size > out.size())
    throw InvalidArgument("packed: original_size exceeds share capacity");
  out.resize(original_size);
  return out;
}

const PackedSharing& packed_codec(unsigned t, unsigned k, unsigned n) {
  using Key = std::tuple<unsigned, unsigned, unsigned>;
  static std::mutex mu;
  static auto* cache =
      new std::map<Key, std::unique_ptr<const PackedSharing>>();  // leaked:
  // returned references must outlive every static destructor.

  const Key key{t, k, n};
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, std::make_unique<const PackedSharing>(t, k, n))
             .first;
  }
  return *it->second;
}

}  // namespace aegis
