// Verifiable secret sharing for 256-bit scalars (keys, not bulk data).
//
// Two dealers are provided:
//   * Feldman VSS — commitments are g^{a_j}. Verification is simple but
//     the commitments leak g^{secret}: hiding is only computational, so
//     a future discrete-log break retroactively exposes the secret. This
//     is the trap §3.3 warns about.
//   * Pedersen VSS — commitments are g^{a_j} h^{b_j} with a parallel
//     blinding polynomial. Hiding is information-theoretic: even an
//     unbounded adversary learns nothing about the secret from the
//     public commitments (binding, and hence share verification, is what
//     becomes computational). This is the LINCOS-compatible choice.
//
// Both protect reconstruction against a *corrupt dealer or shareholder*
// handing out inconsistent shares — the integrity requirement §3.3 puts
// on share renewal.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/pedersen.h"
#include "crypto/secp256k1.h"
#include "gf/u256.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace aegis {

/// A share of a scalar secret: f(index), plus the blinding share g(index)
/// for Pedersen dealings (zero for Feldman).
struct VssShare {
  std::uint32_t index = 0;  // evaluation point, in [1, n]
  U256 value;
  U256 blind;
};

/// Public commitment vector published by the dealer (one group element
/// per polynomial coefficient).
struct VssCommitments {
  std::vector<Bytes> points;  // encoded curve points, degree+1 of them
  bool pedersen = false;      // which dealer produced them

  unsigned threshold() const {
    return static_cast<unsigned>(points.size());
  }
};

/// A complete dealing: n shares plus the public commitments.
struct VssDealing {
  std::vector<VssShare> shares;
  VssCommitments commitments;
};

/// Deals `secret` with threshold t to n parties, Feldman style.
/// Requires 1 <= t <= n. Secret must be < group order.
VssDealing feldman_deal(const U256& secret, unsigned t, unsigned n, Rng& rng);

/// Deals `secret` with threshold t to n parties, Pedersen style.
VssDealing pedersen_deal(const U256& secret, unsigned t, unsigned n, Rng& rng);

/// Pedersen dealing that also reveals the blinding of the constant-term
/// commitment. Proactive refresh needs this: a zero-dealing's dealer must
/// prove its constant term really is zero, which it does by opening
/// C_0 = commit(0, blind0) — revealing blind0 leaks nothing since the
/// committed value is public anyway.
VssDealing pedersen_deal_opened(const U256& secret, unsigned t, unsigned n,
                                Rng& rng, U256& blind0_out);

/// Pedersen dealing with a *caller-chosen* constant-term blinding.
/// Share redistribution needs this: an old holder re-sharing its share
/// (value v, blind b) uses blind0 = b so the sub-dealing's constant
/// commitment provably equals the holder's standing share commitment.
VssDealing pedersen_deal_fixed_blind0(const U256& secret, const U256& blind0,
                                      unsigned t, unsigned n, Rng& rng);

/// Verifies one share against the dealer's commitments. Detects a corrupt
/// dealer (inconsistent shares) and a corrupt shareholder (mutated share).
bool vss_verify_share(const VssShare& share, const VssCommitments& c);

/// Reconstructs the secret from any >= t shares (Lagrange at 0 over the
/// scalar field). Throws UnrecoverableError with fewer than t.
U256 vss_recover(const std::vector<VssShare>& shares, unsigned t);

/// Reconstructs the blinding polynomial's constant term (needed when a
/// Pedersen-committed secret must be re-opened against an old commitment).
U256 vss_recover_blind(const std::vector<VssShare>& shares, unsigned t);

/// Lagrange coefficient at zero over the scalar field for point set `xs`.
U256 scalar_lagrange_at_zero(const std::vector<std::uint32_t>& xs,
                             std::size_t i);

}  // namespace aegis
