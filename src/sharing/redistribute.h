// Verifiable share redistribution (Wong–Wang–Wing, SISW'02): move a
// shared secret from an old access structure (t, n) to a new one
// (t', n') — with a disjoint or overlapping set of shareholders — without
// ever reconstructing the secret.
//
// Archives need this when storage providers come and go over decades:
// the VSR Archive row of Table 1 is exactly this protocol run as a
// datastore. Each old shareholder sub-shares its share to the new group;
// each new shareholder Lagrange-combines the sub-shares from any t old
// holders. Verifiability (for the scalar/VSS variant) means a corrupt old
// holder who sub-shares a *wrong* share value is caught against its
// standing Pedersen commitment before the new sharing is accepted.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "sharing/proactive.h"
#include "sharing/shamir.h"
#include "sharing/vss.h"

namespace aegis {

/// Redistributes bulk GF(2^8) Shamir shares from (t, n) to (t2, n2).
/// `shares` must contain at least t shares of the original sharing.
/// Returns a brand-new (t2, n2) sharing of the same secret.
std::vector<Share> redistribute(const std::vector<Share>& shares, unsigned t,
                                unsigned t2, unsigned n2, Rng& rng,
                                RefreshStats* stats = nullptr);

/// Result of a verifiable redistribution.
struct RedistributeResult {
  std::vector<VssShare> shares;  // the new (t2, n2) sharing
  VssCommitments commitments;    // commitments for the new sharing
  RefreshStats stats;
  std::vector<std::uint32_t> accused;  // old holders caught cheating
};

/// Verifiably redistributes a Pedersen-VSS dealing from (t, n) to
/// (t2, n2). Holders listed in `corrupt_holders` sub-share a corrupted
/// value; they are detected (their sub-dealing's constant commitment
/// must equal their standing share commitment) and excluded. Throws
/// UnrecoverableError if fewer than t honest holders remain.
RedistributeResult redistribute_vss(
    const VssDealing& dealing, unsigned t, unsigned t2, unsigned n2,
    Rng& rng, const std::set<std::uint32_t>& corrupt_holders = {});

}  // namespace aegis
