#include "util/bytes.h"

#include <stdexcept>

namespace aegis {

void secure_wipe(void* p, std::size_t n) noexcept {
  // volatile pointer write defeats dead-store elimination on the
  // compilers we target; memset_s is not universally available.
  auto* vp = static_cast<volatile std::uint8_t*>(p);
  for (std::size_t i = 0; i < n; ++i) vp[i] = 0;
}

Bytes to_bytes(ByteView v) { return Bytes(v.begin(), v.end()); }

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

SecureBytes to_secure(ByteView v) { return SecureBytes(v.begin(), v.end()); }

std::string to_string(ByteView v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("hex_decode: invalid hex digit");
}
}  // namespace

std::string hex_encode(ByteView v) {
  std::string out;
  out.reserve(v.size() * 2);
  for (std::uint8_t b : v) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

Bytes hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0)
    throw std::invalid_argument("hex_decode: odd-length input");
  Bytes out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((hex_nibble(hex[2 * i]) << 4) |
                                       hex_nibble(hex[2 * i + 1]));
  }
  return out;
}

Bytes xor_bytes(ByteView a, ByteView b) {
  if (a.size() != b.size())
    throw std::invalid_argument("xor_bytes: length mismatch");
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

void xor_inplace(MutByteView dst, ByteView src) {
  if (dst.size() != src.size())
    throw std::invalid_argument("xor_inplace: length mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

bool ct_equal(ByteView a, ByteView b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace aegis
