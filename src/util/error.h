// Exception hierarchy and error taxonomy for aegis.
//
// Per the C++ Core Guidelines (E.2), programming errors and unrecoverable
// conditions throw; *expected* protocol outcomes (a share failing
// verification, a decode with too few shares) are returned as values so
// simulation code can count them.
//
// Every exception carries an ErrorCode so observers (the EventBus's
// OperationFailed event, log scrapers, chaos-test assertions) can
// classify failures without parsing what() strings. Each exception class
// supplies a sensible default code; throw sites on classified paths name
// a specific one.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace aegis {

/// Machine-readable failure classification. Grouped by layer; values are
/// stable identifiers (append, never renumber) so logged codes stay
/// meaningful across versions.
enum class ErrorCode : std::uint16_t {
  kUnknown = 0,

  // ---- caller-supplied parameters / configuration
  kBadArgument = 100,      // generic malformed argument
  kBadGeometry = 101,      // inconsistent (t, k, n) / cluster sizing
  kBadPolicy = 102,        // policy validation failed
  kDuplicateObject = 103,  // object id already archived
  kUnknownObject = 104,    // no manifest for the object id
  kUnsupportedOperation = 105,  // op not valid for this policy/encoding

  // ---- serialized-data parsing
  kMalformedData = 200,  // undecodable wire bytes
  kTruncatedData = 201,  // record ends early
  kTrailingData = 202,   // bytes left after a complete record

  // ---- integrity / cryptographic verification
  kIntegrityViolation = 300,  // generic failed check
  kMacMismatch = 301,         // channel MAC verification failed
  kChainInvalid = 302,        // timestamp chain failed verification
  kShareVerifyFailed = 303,   // VSS share fails its commitments
  kCanaryMismatch = 304,      // AONT canary wrong after unpackage
  kReplayDetected = 305,      // channel sequence violation
  kNoHonestDealing = 306,     // PSS round left no un-accused dealer

  // ---- recovery / durability
  kInsufficientShares = 400,  // below the reconstruction threshold
  kBelowThreshold = 401,      // write landed under the durability floor
  kNoReplica = 402,           // no replica of a replicated object survives
  kKeyLost = 403,             // decryption key unrecoverable

  // ---- transport / key material
  kEntropyExhausted = 500,  // OTP/QKD/BSM key material ran out
};

const char* to_string(ErrorCode code);

/// Base class for all aegis errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCode code = ErrorCode::kUnknown)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Malformed or inconsistent caller-supplied parameters.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what,
                           ErrorCode code = ErrorCode::kBadArgument)
      : Error(what, code) {}
};

/// Corrupt, truncated or otherwise undecodable serialized data.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what,
                      ErrorCode code = ErrorCode::kMalformedData)
      : Error(what, code) {}
};

/// A cryptographic check failed where the caller demanded success
/// (e.g. Archive::get with integrity verification enabled).
class IntegrityError : public Error {
 public:
  explicit IntegrityError(const std::string& what,
                          ErrorCode code = ErrorCode::kIntegrityViolation)
      : Error(what, code) {}
};

/// Not enough intact shares / replicas to reconstruct an object.
class UnrecoverableError : public Error {
 public:
  explicit UnrecoverableError(const std::string& what,
                              ErrorCode code = ErrorCode::kInsufficientShares)
      : Error(what, code) {}
};

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown: return "unknown";
    case ErrorCode::kBadArgument: return "bad-argument";
    case ErrorCode::kBadGeometry: return "bad-geometry";
    case ErrorCode::kBadPolicy: return "bad-policy";
    case ErrorCode::kDuplicateObject: return "duplicate-object";
    case ErrorCode::kUnknownObject: return "unknown-object";
    case ErrorCode::kUnsupportedOperation: return "unsupported-operation";
    case ErrorCode::kMalformedData: return "malformed-data";
    case ErrorCode::kTruncatedData: return "truncated-data";
    case ErrorCode::kTrailingData: return "trailing-data";
    case ErrorCode::kIntegrityViolation: return "integrity-violation";
    case ErrorCode::kMacMismatch: return "mac-mismatch";
    case ErrorCode::kChainInvalid: return "chain-invalid";
    case ErrorCode::kShareVerifyFailed: return "share-verify-failed";
    case ErrorCode::kCanaryMismatch: return "canary-mismatch";
    case ErrorCode::kReplayDetected: return "replay-detected";
    case ErrorCode::kNoHonestDealing: return "no-honest-dealing";
    case ErrorCode::kInsufficientShares: return "insufficient-shares";
    case ErrorCode::kBelowThreshold: return "below-threshold";
    case ErrorCode::kNoReplica: return "no-replica";
    case ErrorCode::kKeyLost: return "key-lost";
    case ErrorCode::kEntropyExhausted: return "entropy-exhausted";
  }
  return "?";
}

}  // namespace aegis
