// Exception hierarchy for aegis.
//
// Per the C++ Core Guidelines (E.2), programming errors and unrecoverable
// conditions throw; *expected* protocol outcomes (a share failing
// verification, a decode with too few shares) are returned as values so
// simulation code can count them.
#pragma once

#include <stdexcept>
#include <string>

namespace aegis {

/// Base class for all aegis errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or inconsistent caller-supplied parameters.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Corrupt, truncated or otherwise undecodable serialized data.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A cryptographic check failed where the caller demanded success
/// (e.g. Archive::get with integrity verification enabled).
class IntegrityError : public Error {
 public:
  explicit IntegrityError(const std::string& what) : Error(what) {}
};

/// Not enough intact shares / replicas to reconstruct an object.
class UnrecoverableError : public Error {
 public:
  explicit UnrecoverableError(const std::string& what) : Error(what) {}
};

}  // namespace aegis
