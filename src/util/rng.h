// Random-number source abstraction.
//
// Two implementations exist:
//   * SimRng (here) — a fast xoshiro256** generator for *simulation*
//     randomness: adversary choices, failure injection, workloads. It is
//     seedable so every experiment is reproducible.
//   * ChaChaRng (src/crypto/drbg.h) — a ChaCha20-based DRBG used for
//     *cryptographic* randomness: keys, pads, polynomial coefficients.
//
// Both satisfy the Rng interface so protocol code is agnostic.
#pragma once

#include <cstdint>
#include <limits>

#include "util/bytes.h"

namespace aegis {

/// Abstract source of random bytes. Implementations must be deterministic
/// given a seed, so simulations replay exactly.
class Rng {
 public:
  virtual ~Rng() = default;

  /// Fills `out` with random bytes.
  virtual void fill(MutByteView out) = 0;

  /// Returns a uniformly random 64-bit value.
  virtual std::uint64_t next_u64() = 0;

  /// Returns a fresh buffer of `n` random bytes.
  Bytes bytes(std::size_t n) {
    Bytes out(n);
    fill(out);
    return out;
  }

  /// Returns `n` random bytes in a zeroizing buffer (for key material).
  SecureBytes secure_bytes(std::size_t n) {
    SecureBytes out(n);
    fill(MutByteView(out.data(), out.size()));
    return out;
  }

  /// Uniform integer in [0, bound). Throws InvalidArgument on bound==0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform_double() < p; }
};

/// xoshiro256** — fast, high-quality, *non-cryptographic* PRNG for
/// simulation decisions (node failures, adversary moves, workloads).
class SimRng final : public Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit SimRng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  void fill(MutByteView out) override;
  std::uint64_t next_u64() override;

 private:
  std::uint64_t s_[4];
};

}  // namespace aegis
