// Empirical entropy estimation for archived content.
//
// Entropically-secure encryption (crypto/entropic.h) is unconditional
// ONLY for messages with high min-entropy; a low-entropy message (a
// form letter, a disk of zeros) is not protected. The archive cannot
// prove a message's entropy, but it can estimate it and surface the
// risk — these estimators feed the manifest's entropy annotation and
// the exposure analyzer's entropic-caveat escalation.
//
// Estimators are frequency-based (order-0) and first-order Markov;
// both are *upper bounds* on the true per-byte entropy of structured
// data, so a low estimate is a strong warning.
#pragma once

#include "util/bytes.h"

namespace aegis {

/// Order-0 Shannon entropy in bits per byte (0..8).
double shannon_entropy_per_byte(ByteView data);

/// Min-entropy per byte: -log2(max byte frequency). The quantity the
/// Dodis–Smith bound actually cares about (per-symbol proxy).
double min_entropy_per_byte(ByteView data);

/// First-order (Markov) conditional entropy in bits per byte — catches
/// structure that order-0 misses (e.g. "ababab..."). Falls back to
/// order-0 for inputs under 2 bytes.
double markov1_entropy_per_byte(ByteView data);

/// The archive's composite estimate: min of the three (conservative).
double estimate_entropy_per_byte(ByteView data);

}  // namespace aegis
