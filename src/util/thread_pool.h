// A deliberately small fixed-size thread pool for the data-plane fast
// path (RS encode/decode and sharing-scheme column arithmetic).
//
// Design constraints, in order:
//   * Determinism. Parallel callers only ever write disjoint output
//     ranges and join before reading, so results are bit-identical for
//     any worker count. With <= 1 worker, parallel_blocks degrades to a
//     plain loop on the calling thread — byte-for-byte the serial path,
//     which is what the fault-injection suites run against.
//   * The simulated Cluster is single-threaded by contract: all node
//     I/O stays on the calling thread. The pool only ever sees pure
//     compute closures, which keeps the fault timeline replayable.
//   * No work stealing, no task graph: submit + futures + a blocked
//     range helper is all the hot paths need.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"  // handles only; fast paths are header-inline

namespace aegis {

class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 means fully inline: submit() runs the
  /// task on the calling thread before returning. 1 gives a single FIFO
  /// worker (deterministic execution order).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 in inline mode).
  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// Enqueues one task. The future resolves when it finishes and
  /// carries any exception it threw.
  std::future<void> submit(std::function<void()> fn);

  /// Registers this pool's gauges/counters under `<prefix>.` in `m`
  /// (queue_depth gauge, tasks counter, task_ms latency histogram —
  /// wall-clock, operator-facing only). nullptr detaches. The registry
  /// must outlive the pool; all updates are lock-free atomics, safe from
  /// every worker.
  void bind_metrics(MetricsRegistry* m, const std::string& prefix);

  /// Runs body(begin, end) over a partition of [0, count) — one
  /// contiguous chunk per worker plus one for the calling thread, which
  /// always participates. Blocks until every chunk finishes; rethrows
  /// the lowest-chunk exception. With <= 1 worker (or count <= 1) this
  /// is exactly body(0, count) on the calling thread.
  void parallel_blocks(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();
  void run_task(std::packaged_task<void()>& task);

  std::vector<std::thread> threads_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  // Optional instrumentation (null when unbound).
  Gauge* m_queue_depth_ = nullptr;
  Counter* m_tasks_ = nullptr;
  Histogram* m_task_ms_ = nullptr;
};

/// Null-tolerant helper for optional-parallelism call sites: a null pool
/// (or a pool with <= 1 worker) runs body(0, count) inline.
inline void parallel_blocks(
    ThreadPool* pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (pool == nullptr) {
    body(0, count);
    return;
  }
  pool->parallel_blocks(count, body);
}

}  // namespace aegis
