#include "util/entropy.h"

#include <array>
#include <cmath>
#include <vector>

namespace aegis {

double shannon_entropy_per_byte(ByteView data) {
  if (data.empty()) return 0.0;
  std::array<std::size_t, 256> counts{};
  for (std::uint8_t b : data) ++counts[b];
  double h = 0.0;
  const double n = static_cast<double>(data.size());
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = c / n;
    h -= p * std::log2(p);
  }
  return h;
}

double min_entropy_per_byte(ByteView data) {
  if (data.empty()) return 0.0;
  std::array<std::size_t, 256> counts{};
  std::size_t max_count = 0;
  for (std::uint8_t b : data) max_count = std::max(max_count, ++counts[b]);
  return -std::log2(static_cast<double>(max_count) / data.size());
}

double markov1_entropy_per_byte(ByteView data) {
  if (data.size() < 2) return shannon_entropy_per_byte(data);
  // Sparse first-order model: H(X_{i+1} | X_i), averaged over contexts.
  std::vector<std::size_t> counts(256 * 256, 0);
  std::array<std::size_t, 256> ctx_totals{};
  for (std::size_t i = 0; i + 1 < data.size(); ++i) {
    ++counts[data[i] * 256 + data[i + 1]];
    ++ctx_totals[data[i]];
  }
  double h = 0.0;
  const double n = static_cast<double>(data.size() - 1);
  for (unsigned ctx = 0; ctx < 256; ++ctx) {
    if (ctx_totals[ctx] == 0) continue;
    const double p_ctx = ctx_totals[ctx] / n;
    double h_ctx = 0.0;
    for (unsigned next = 0; next < 256; ++next) {
      const std::size_t c = counts[ctx * 256 + next];
      if (c == 0) continue;
      const double p = static_cast<double>(c) / ctx_totals[ctx];
      h_ctx -= p * std::log2(p);
    }
    h += p_ctx * h_ctx;
  }
  return h;
}

double estimate_entropy_per_byte(ByteView data) {
  const double h0 = min_entropy_per_byte(data);
  if (data.size() < 2) return h0;

  // Finite-sample guard for the Markov estimate: with s samples per
  // context one can observe at most ~log2(s) bits of conditional
  // entropy, so an estimate near that ceiling is saturation, not
  // structure — ignore it rather than under-report random data.
  std::array<bool, 256> seen{};
  for (std::size_t i = 0; i + 1 < data.size(); ++i) seen[data[i]] = true;
  unsigned contexts = 0;
  for (bool s : seen) contexts += s;
  const double per_context =
      static_cast<double>(data.size() - 1) / std::max(1u, contexts);
  const double ceiling = std::log2(std::min(256.0, per_context));

  const double h1 = markov1_entropy_per_byte(data);
  if (ceiling > 0 && h1 > 0.8 * ceiling && contexts > 64) return h0;
  return std::min(h0, h1);
}

}  // namespace aegis
