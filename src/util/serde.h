// Minimal binary serialization for on-"disk" archive records.
//
// Fixed-width integers are little-endian; variable-length buffers are
// length-prefixed with a u32. ByteReader throws ParseError on truncation,
// never reads past the end, and exposes remaining() so callers can detect
// trailing garbage.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace aegis {

/// Appends primitive values to a growing byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  /// Length-prefixed (u32) byte string.
  void bytes(ByteView v);

  /// Raw bytes with no length prefix (caller knows the framing).
  void raw(ByteView v);

  /// Length-prefixed UTF-8 string.
  void str(const std::string& s);

  /// Releases the accumulated buffer.
  Bytes take() && { return std::move(buf_); }
  const Bytes& data() const { return buf_; }

 private:
  Bytes buf_;
};

/// Reads primitive values back; throws ParseError on truncated input.
class ByteReader {
 public:
  explicit ByteReader(ByteView v) : data_(v) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  /// Reads a u32 length prefix then that many bytes.
  Bytes bytes();

  /// Reads exactly n raw bytes.
  Bytes raw(std::size_t n);

  std::string str();

  /// Reads a u32 element count and validates it against the bytes left:
  /// each element must occupy at least `min_element_bytes`, so a count
  /// claiming more elements than could possibly follow is rejected
  /// BEFORE any allocation sized by it (malformed input must never
  /// drive a giant reserve/resize).
  std::uint32_t count(std::size_t min_element_bytes = 1);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

  /// Throws ParseError unless the entire input has been consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace aegis
