#include "util/serde.h"

#include <cstring>

#include "util/error.h"

namespace aegis {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::bytes(ByteView v) {
  if (v.size() > 0xffffffffULL)
    throw InvalidArgument("ByteWriter::bytes: buffer too large");
  u32(static_cast<std::uint32_t>(v.size()));
  raw(v);
}

void ByteWriter::raw(ByteView v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

void ByteWriter::str(const std::string& s) {
  bytes(ByteView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n)
    throw ParseError("ByteReader: truncated input",
                     ErrorCode::kTruncatedData);
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Bytes ByteReader::bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

std::uint32_t ByteReader::count(std::size_t min_element_bytes) {
  const std::uint32_t n = u32();
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (static_cast<std::uint64_t>(n) * min_element_bytes > remaining())
    throw ParseError("ByteReader: element count exceeds available bytes");
  return n;
}

std::string ByteReader::str() {
  Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

void ByteReader::expect_done() const {
  if (!done())
    throw ParseError("ByteReader: trailing bytes after record",
                     ErrorCode::kTrailingData);
}

}  // namespace aegis
