#include "util/rng.h"

#include <cstring>

#include "util/error.h"

namespace aegis {

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw InvalidArgument("Rng::uniform: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() -
      std::numeric_limits<std::uint64_t>::max() % bound;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % bound;
}

double Rng::uniform_double() {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

SimRng::SimRng(std::uint64_t seed) {
  // Expand the seed through splitmix64 per the xoshiro authors' advice,
  // so nearby seeds do not produce correlated streams.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t SimRng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void SimRng::fill(MutByteView out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t x = next_u64();
    std::memcpy(out.data() + i, &x, 8);
    i += 8;
  }
  if (i < out.size()) {
    const std::uint64_t x = next_u64();
    std::memcpy(out.data() + i, &x, out.size() - i);
  }
}

}  // namespace aegis
