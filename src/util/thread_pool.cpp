#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>

namespace aegis {

ThreadPool::ThreadPool(unsigned workers) {
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::bind_metrics(MetricsRegistry* m, const std::string& prefix) {
  if (m == nullptr) {
    m_queue_depth_ = nullptr;
    m_tasks_ = nullptr;
    m_task_ms_ = nullptr;
    return;
  }
  m_queue_depth_ = &m->gauge(prefix + ".queue_depth");
  m_tasks_ = &m->counter(prefix + ".tasks");
  m_task_ms_ = &m->histogram(prefix + ".task_ms");
}

void ThreadPool::run_task(std::packaged_task<void()>& task) {
  if (m_tasks_ != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    task();
    m_tasks_->inc();
    m_task_ms_->observe(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
    return;
  }
  task();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (m_queue_depth_ != nullptr) m_queue_depth_->sub(1);
    run_task(task);
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  if (threads_.empty()) {
    run_task(task);  // inline mode: run on the calling thread
    return fut;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  if (m_queue_depth_ != nullptr) m_queue_depth_->add(1);
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_blocks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks =
      std::min<std::size_t>(count, static_cast<std::size_t>(workers()) + 1);
  if (chunks <= 1) {
    body(0, count);
    return;
  }

  // Balanced contiguous partition: chunk i covers
  // [i*count/chunks, (i+1)*count/chunks).
  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  for (std::size_t i = 1; i < chunks; ++i) {
    const std::size_t begin = i * count / chunks;
    const std::size_t end = (i + 1) * count / chunks;
    futures.push_back(submit([&body, begin, end] { body(begin, end); }));
  }

  std::exception_ptr first;
  try {
    body(0, count / chunks);  // calling thread takes chunk 0
  } catch (...) {
    first = std::current_exception();
  }
  // Join everything before rethrowing: the closures capture locals.
  for (auto& f : futures) f.wait();
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace aegis
