// Byte-buffer utilities shared by every aegis module.
//
// Conventions:
//   * `Bytes` is the universal owning buffer for both plaintext and
//     ciphertext. Secret material that should not linger in freed memory
//     uses `SecureBytes`, whose allocator zeroizes on deallocation.
//   * All bulk interfaces take `std::span<const std::uint8_t>` so callers
//     may pass either buffer type (or raw arrays) without copies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace aegis {

/// Owning byte buffer used throughout the library.
using Bytes = std::vector<std::uint8_t>;

/// Read-only view over bytes; the library's universal input type.
using ByteView = std::span<const std::uint8_t>;

/// Writable view over bytes.
using MutByteView = std::span<std::uint8_t>;

/// Best-effort memory wipe that the optimizer may not elide.
void secure_wipe(void* p, std::size_t n) noexcept;

/// Allocator that zeroizes memory before returning it to the heap.
/// Used for key material so that freed buffers do not leak secrets.
template <typename T>
struct ZeroizingAllocator {
  using value_type = T;

  ZeroizingAllocator() noexcept = default;
  template <typename U>
  ZeroizingAllocator(const ZeroizingAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) { return std::allocator<T>{}.allocate(n); }

  void deallocate(T* p, std::size_t n) noexcept {
    secure_wipe(p, n * sizeof(T));
    std::allocator<T>{}.deallocate(p, n);
  }

  template <typename U>
  bool operator==(const ZeroizingAllocator<U>&) const noexcept {
    return true;
  }
};

/// Byte buffer whose storage is wiped on destruction; use for keys, pads,
/// polynomial coefficients and any other long-term secret.
using SecureBytes = std::vector<std::uint8_t, ZeroizingAllocator<std::uint8_t>>;

/// Copies a view into an owning buffer.
Bytes to_bytes(ByteView v);

/// Copies a string's bytes into an owning buffer (no terminator).
Bytes to_bytes(std::string_view s);

/// Copies a view into a zeroizing buffer.
SecureBytes to_secure(ByteView v);

/// Interprets a buffer as text (for examples/tests; not for binary data).
std::string to_string(ByteView v);

/// Lower-case hex encoding, e.g. {0xde,0xad} -> "dead".
std::string hex_encode(ByteView v);

/// Inverse of hex_encode. Throws std::invalid_argument on malformed input.
Bytes hex_decode(std::string_view hex);

/// XOR of two equal-length buffers. Throws std::invalid_argument on length
/// mismatch. The fundamental operation of one-time pads and AONTs.
Bytes xor_bytes(ByteView a, ByteView b);

/// In-place XOR: dst ^= src. Buffers must have equal length.
void xor_inplace(MutByteView dst, ByteView src);

/// Constant-time equality for MAC/commitment comparison.
bool ct_equal(ByteView a, ByteView b) noexcept;

/// Concatenates buffers (used when building transcript hashes).
Bytes concat(std::initializer_list<ByteView> parts);

}  // namespace aegis
