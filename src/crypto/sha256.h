// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for Merkle trees, timestamp chains, HMAC/HKDF, the AONT-RS key
// blinding step and hash-to-point for the Pedersen generator. The
// incremental interface supports streaming large archive objects.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace aegis {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  /// Absorbs more input; may be called any number of times.
  void update(ByteView data);

  /// Finalizes and returns the 32-byte digest. The hasher must not be
  /// used again afterwards (reconstruct for a new message).
  Bytes finish();

  /// One-shot convenience.
  static Bytes hash(ByteView data);

  /// One-shot over a concatenation (avoids an intermediate buffer).
  static Bytes hash_concat(std::initializer_list<ByteView> parts);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Incremental SHA-512 hasher (FIPS 180-4). Used where a wider digest is
/// wanted (key vault fingerprints, BSM extractor seeds).
class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;

  Sha512();
  void update(ByteView data);
  Bytes finish();
  static Bytes hash(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;  // bytes; < 2^61 is plenty here
};

}  // namespace aegis
