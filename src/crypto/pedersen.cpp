#include "crypto/pedersen.h"

#include "crypto/sha256.h"

namespace aegis {

using ec::Secp256k1;

Bytes PedersenCommitment::encode() const {
  return Secp256k1::instance().encode(point);
}

PedersenCommitment PedersenCommitment::decode(ByteView enc) {
  return PedersenCommitment{Secp256k1::instance().decode(enc)};
}

bool PedersenCommitment::operator==(const PedersenCommitment& o) const {
  return Secp256k1::instance().eq(point, o.point);
}

PedersenCommitment pedersen_commit(const U256& value, const U256& blind) {
  const Secp256k1& curve = Secp256k1::instance();
  const ec::Point gv = curve.mul_gen(value);
  const ec::Point hr = curve.mul(curve.pedersen_h(), blind);
  return PedersenCommitment{curve.add(gv, hr)};
}

PedersenCommitment pedersen_commit(const U256& value, Rng& rng,
                                   PedersenOpening& opening_out) {
  const Secp256k1& curve = Secp256k1::instance();
  opening_out.value = value;
  opening_out.blind = curve.random_scalar(rng);
  return pedersen_commit(opening_out.value, opening_out.blind);
}

PedersenCommitment pedersen_commit_bytes(ByteView message, Rng& rng,
                                         PedersenOpening& opening_out) {
  const Secp256k1& curve = Secp256k1::instance();
  const U256 v = curve.scalar_from_hash(Sha256::hash(message));
  return pedersen_commit(v, rng, opening_out);
}

bool pedersen_verify(const PedersenCommitment& c, const PedersenOpening& o) {
  return pedersen_commit(o.value, o.blind) == c;
}

bool pedersen_verify_bytes(const PedersenCommitment& c, ByteView message,
                           const U256& blind) {
  const Secp256k1& curve = Secp256k1::instance();
  const U256 v = curve.scalar_from_hash(Sha256::hash(message));
  return pedersen_commit(v, blind) == c;
}

PedersenCommitment pedersen_add(const PedersenCommitment& a,
                                const PedersenCommitment& b) {
  return PedersenCommitment{Secp256k1::instance().add(a.point, b.point)};
}

PedersenCommitment pedersen_scale(const PedersenCommitment& c,
                                  const U256& k) {
  return PedersenCommitment{Secp256k1::instance().mul(c.point, k)};
}

}  // namespace aegis
