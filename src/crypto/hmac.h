// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HMAC provides integrity tags for channel messages; HKDF derives
// per-layer cascade keys and per-object keys from archive master secrets.
#pragma once

#include "util/bytes.h"

namespace aegis {

/// HMAC-SHA256 of `data` under `key`. Returns a 32-byte tag.
Bytes hmac_sha256(ByteView key, ByteView data);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: derives `length` bytes (<= 255*32) from a PRK and info
/// string. Throws InvalidArgument if length is out of range.
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// One-shot extract-then-expand.
Bytes hkdf(ByteView ikm, ByteView salt, ByteView info, std::size_t length);

}  // namespace aegis
