// Entropically-secure encryption (Figure 1's "Entropically Secure
// Encryption" quadrant point).
//
// Russell–Wang / Dodis–Smith: if the message has min-entropy ≥ t, one can
// encrypt with a key of only ~(n - t) + 2 log(1/eps) bits and achieve
// *information-theoretic* indistinguishability for that message class —
// a middle ground between the one-time pad (key == message) and
// computational ciphers (short key, breakable assumptions).
//
// We instantiate the standard construction: C = M xor G(K), where G is a
// small-bias (epsilon-biased) generator. Our G is the "powering"
// construction of Alon–Goldreich–Håstad–Peralta over GF(2^64):
//     pad word i = a^(i+1) * b   in GF(2^64),  key K = (a, b).
// Every nonzero linear combination of pad bits has bias ≤ (#words)/2^64,
// which is what entropic security needs. The key is 16 bytes regardless
// of message length, and security is unconditional *given message
// entropy* — there is nothing for future cryptanalysis to break, but a
// low-entropy message (all zeros) is NOT protected. This is exactly the
// trade-off the paper's Figure 1 places between traditional encryption
// and secret sharing.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace aegis {

/// Entropically-secure XOR cipher with a 16-byte key.
class EntropicXor {
 public:
  static constexpr std::size_t kKeySize = 16;  // (a, b) in GF(2^64)^2

  /// Throws InvalidArgument unless key is 16 bytes with a != 0.
  explicit EntropicXor(ByteView key);

  /// Encrypts/decrypts (involution): data xor G(key).
  Bytes apply(ByteView data) const;

  /// Bias bound of the underlying generator for a given message length:
  /// eps = ceil(len/8) / 2^64. Reported by the Figure 1 bench.
  static double bias_bound(std::size_t message_len);

 private:
  std::uint64_t a_;
  std::uint64_t b_;
};

/// Carry-less (GF(2)[x]) multiplication reduced mod
/// x^64 + x^4 + x^3 + x + 1 — GF(2^64) multiply, exposed for tests.
std::uint64_t gf64_mul(std::uint64_t a, std::uint64_t b);

}  // namespace aegis
