// Robust combiners for encryption (Herzberg; the paper's §3.2 backdrop
// for ArchiveSafeLT's cascade).
//
// A (1, k)-robust combiner stays secure as long as at least one of its k
// component ciphers is secure. Two classical constructions with very
// different small print:
//
//   * CascadeCombiner — E_k(...E_2(E_1(m))). With independent keys a
//     cascade is at least as secure as its FIRST cipher in general, and
//     as secure as the BEST cipher against attackers that cannot exploit
//     ordering (Maurer–Massey's "importance of being first"). Cost: no
//     ciphertext expansion; keys grow linearly.
//
//   * XorCombiner — split m into one-time-pad-style halves:
//     c = (E_1(m xor r), E_2(r)). Recovering m requires breaking BOTH
//     components (a clean (1,2)-robust combiner with no ordering
//     caveat). Cost: 2x ciphertext expansion — storage the archive must
//     pay, which is why ArchiveSafeLT chose the cascade.
//
// Both report their composite break epoch against a SchemeRegistry so
// the obsolescence machinery can reason about them.
#pragma once

#include <vector>

#include "crypto/cipher.h"
#include "crypto/scheme.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace aegis {

/// Keys + IVs for one combiner instance (one entry per component).
struct CombinerKeys {
  std::vector<SecureBytes> keys;
  std::vector<Bytes> ivs;
};

/// Cascade of stream ciphers (inner first).
class CascadeCombiner {
 public:
  /// Components must all be keyed ciphers; throws InvalidArgument on an
  /// empty list or a non-cipher scheme.
  explicit CascadeCombiner(std::vector<SchemeId> components);

  const std::vector<SchemeId>& components() const { return components_; }

  /// Generates fresh independent keys/IVs for every layer.
  CombinerKeys keygen(Rng& rng) const;

  /// Applies all layers, inner (components()[0]) first.
  Bytes seal(ByteView plaintext, const CombinerKeys& keys) const;

  /// Peels all layers, outer first.
  Bytes open(ByteView ciphertext, const CombinerKeys& keys) const;

  /// Ciphertext expansion factor (cascades: exactly 1.0).
  double expansion() const { return 1.0; }

  /// The epoch at which harvested ciphertext falls: when the LAST
  /// component breaks (kNever if any component never breaks).
  Epoch falls_at(const SchemeRegistry& reg) const;

 private:
  std::vector<SchemeId> components_;
};

/// XOR-split two-cipher combiner.
class XorCombiner {
 public:
  XorCombiner(SchemeId first, SchemeId second);

  CombinerKeys keygen(Rng& rng) const;

  /// c = E1(m xor r) || E2(r), r fresh per message from `rng`.
  Bytes seal(ByteView plaintext, const CombinerKeys& keys, Rng& rng) const;

  Bytes open(ByteView ciphertext, const CombinerKeys& keys) const;

  double expansion() const { return 2.0; }

  /// Falls only when BOTH components are broken.
  Epoch falls_at(const SchemeRegistry& reg) const;

  SchemeId first() const { return first_; }
  SchemeId second() const { return second_; }

 private:
  SchemeId first_, second_;
};

}  // namespace aegis
