#include "crypto/entropic.h"

#include <cstring>

#include "util/error.h"

namespace aegis {

std::uint64_t gf64_mul(std::uint64_t a, std::uint64_t b) {
  // Carry-less multiply with a 4-bit window (16 precomputed multiples of
  // a), then reduce mod x^64 + x^4 + x^3 + x + 1 (a primitive
  // pentanomial for GF(2^64)). ~4x faster than bit-serial schoolbook,
  // which matters: the LRSS extractor runs this in O(m) per output word.
  std::uint64_t tab_lo[16], tab_hi[16];
  tab_lo[0] = 0;
  tab_hi[0] = 0;
  tab_lo[1] = a;
  tab_hi[1] = 0;
  for (int i = 2; i < 16; i += 2) {
    tab_lo[i] = tab_lo[i / 2] << 1;
    tab_hi[i] = (tab_hi[i / 2] << 1) | (tab_lo[i / 2] >> 63);
    tab_lo[i + 1] = tab_lo[i] ^ a;
    tab_hi[i + 1] = tab_hi[i];
  }
  std::uint64_t lo = 0, hi = 0;
  for (int shift = 60; shift >= 0; shift -= 4) {
    hi = (hi << 4) | (lo >> 60);
    lo <<= 4;
    const unsigned nib = (b >> shift) & 0xF;
    lo ^= tab_lo[nib];
    hi ^= tab_hi[nib];
  }
  // Reduce the high half: x^64 == x^4 + x^3 + x + 1.
  for (int pass = 0; pass < 2; ++pass) {
    const std::uint64_t h = hi;
    hi = (h >> 60) ^ (h >> 61) ^ (h >> 63);  // overflow of the fold itself
    lo ^= h ^ (h << 4) ^ (h << 3) ^ (h << 1);
  }
  return lo;
}

EntropicXor::EntropicXor(ByteView key) {
  if (key.size() != kKeySize)
    throw InvalidArgument("EntropicXor: key must be 16 bytes");
  std::memcpy(&a_, key.data(), 8);
  std::memcpy(&b_, key.data() + 8, 8);
  if (a_ == 0) a_ = 1;  // a == 0 would yield an all-zero pad
}

Bytes EntropicXor::apply(ByteView data) const {
  Bytes out(data.begin(), data.end());
  std::uint64_t power = a_;  // a^(i+1)
  std::size_t off = 0;
  while (off < out.size()) {
    const std::uint64_t word = gf64_mul(power, b_);
    std::uint8_t pad[8];
    std::memcpy(pad, &word, 8);
    const std::size_t take = std::min<std::size_t>(8, out.size() - off);
    for (std::size_t i = 0; i < take; ++i) out[off + i] ^= pad[i];
    off += take;
    power = gf64_mul(power, a_);
  }
  return out;
}

double EntropicXor::bias_bound(std::size_t message_len) {
  const double words = static_cast<double>((message_len + 7) / 8);
  return words / 18446744073709551616.0;  // words / 2^64
}

}  // namespace aegis
