#include "crypto/cipher.h"

#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/entropic.h"
#include "crypto/speck.h"
#include "util/error.h"

namespace aegis {

CipherParams cipher_params(SchemeId id) {
  switch (id) {
    case SchemeId::kAes128Ctr:
      return {16, 16};
    case SchemeId::kAes256Ctr:
      return {32, 16};
    case SchemeId::kChaCha20:
      return {32, 12};
    case SchemeId::kSpeck128Ctr:
      return {16, 16};
    case SchemeId::kOneTimePad:
      return {0, 0};  // key length == message length
    case SchemeId::kEntropicXor:
      return {EntropicXor::kKeySize, 0};
    default:
      throw InvalidArgument("cipher_params: " + scheme_name(id) +
                            " is not a cipher");
  }
}

Bytes cipher_apply(SchemeId id, ByteView key, ByteView iv, ByteView data) {
  const CipherParams p = cipher_params(id);
  if (p.key_size != 0 && key.size() != p.key_size)
    throw InvalidArgument("cipher_apply: wrong key size for " +
                          scheme_name(id));
  if (iv.size() != p.iv_size)
    throw InvalidArgument("cipher_apply: wrong IV size for " +
                          scheme_name(id));

  switch (id) {
    case SchemeId::kAes128Ctr:
    case SchemeId::kAes256Ctr:
      return aes_ctr(key, iv, data);
    case SchemeId::kChaCha20:
      return chacha20(key, iv, data);
    case SchemeId::kSpeck128Ctr:
      return speck_ctr(key, iv, data);
    case SchemeId::kOneTimePad:
      if (key.size() != data.size())
        throw InvalidArgument("one-time pad: key must equal message length");
      return xor_bytes(data, key);
    case SchemeId::kEntropicXor:
      return EntropicXor(key).apply(data);
    default:
      throw InvalidArgument("cipher_apply: unsupported scheme");
  }
}

SecureBytes generate_key(SchemeId id, Rng& rng, std::size_t message_size) {
  const CipherParams p = cipher_params(id);
  const std::size_t n = p.key_size == 0 ? message_size : p.key_size;
  if (n == 0)
    throw InvalidArgument(
        "generate_key: one-time pad needs the message size");
  return rng.secure_bytes(n);
}

Bytes generate_iv(SchemeId id, Rng& rng) {
  return rng.bytes(cipher_params(id).iv_size);
}

}  // namespace aegis
