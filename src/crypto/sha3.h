// SHA3-256 (FIPS 202, Keccak-f[1600]), implemented from scratch.
//
// Why a second hash: hash *generations* matter to timestamp chains the
// same way cipher generations matter to cascades — renewing a chain onto
// a structurally independent hash family hedges against cryptanalysis of
// the old one. SHA-2 (Merkle–Damgård/ARX) and SHA-3 (sponge/Keccak) are
// the canonical independent pair; the SchemeRegistry can break one while
// the other stands.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace aegis {

/// Incremental SHA3-256 hasher.
class Sha3_256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kRate = 136;  // 1088-bit rate

  Sha3_256() = default;

  void update(ByteView data);

  /// Finalizes (pad10*1 with SHA-3 domain bits) and returns the digest.
  Bytes finish();

  static Bytes hash(ByteView data);

 private:
  void absorb_block(const std::uint8_t* block);
  void keccak_f();

  std::array<std::uint64_t, 25> state_{};
  std::array<std::uint8_t, kRate> buf_{};
  std::size_t buf_len_ = 0;
};

}  // namespace aegis
