// Crypto-agility metadata: scheme identifiers, security classification and
// the break-epoch registry.
//
// The paper's central thesis is that every *computationally* secure
// primitive must be assumed breakable on archival timescales (§3.1), while
// information-theoretic constructions are immune. To make that measurable,
// every primitive in aegis carries a SchemeId, and a SchemeRegistry maps
// scheme -> the epoch at which cryptanalysis "breaks" it. The mobile
// adversary consults the registry: harvested ciphertext under a broken
// scheme is treated as plaintext (Harvest Now, Decrypt Later).
//
// Information-theoretic schemes (one-time pad, Shamir sharing below
// threshold, Pedersen hiding) have no break epoch by construction; the
// registry refuses to assign one.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "util/error.h"

namespace aegis {

/// Simulation epoch. One epoch ≈ one proactive-refresh period (think
/// "one year"); breaks, corruptions and refreshes are all epoch-indexed.
using Epoch = std::uint32_t;

/// Sentinel for "never".
constexpr Epoch kNever = 0xffffffff;

/// Identifies a cryptographic scheme/primitive instance family.
enum class SchemeId : std::uint16_t {
  kNone = 0,

  // Symmetric ciphers (computational).
  kAes128Ctr,
  kAes256Ctr,
  kChaCha20,
  kSpeck128Ctr,

  // Information-theoretic encodings.
  kOneTimePad,
  kShamirGf256,
  kPackedGf65536,
  kLrssGf256,

  // Entropic security: information-theoretic *for high-entropy messages*.
  kEntropicXor,

  // Hashes / MACs (computational).
  kSha256,
  kSha512,
  kSha3_256,
  kHmacSha256,

  // Public-key (computational).
  kSchnorrSecp256k1,
  kEcdhSecp256k1,

  // Signature-scheme *generations* for timestamp chains: all instantiated
  // by Schnorr in this simulator, but registered as independent schemes
  // so a timeline can break generation A while generation B (the
  // "post-quantum successor" a real archive would migrate to) survives.
  kSigGenA,
  kSigGenB,
  kSigGenC,

  // Commitments.
  kHashCommit,      // binding computational+, hiding computational
  kPedersenCommit,  // hiding information-theoretic, binding computational

  // Erasure codes / replication — availability encodings, no secrecy.
  kReedSolomon,
  kReplication,

  kMaxScheme
};

/// Long-term confidentiality classification (Definition 2.1 vs 2.2).
enum class SecurityClass : std::uint8_t {
  /// No secrecy at all (replication, plain erasure coding).
  kNone,
  /// Secure only against PPT adversaries; assumed broken eventually.
  kComputational,
  /// Secure for high-min-entropy inputs regardless of compute power.
  kEntropic,
  /// Secure against unbounded adversaries (Definition 2.1, eps ~ 0).
  kInformationTheoretic,
};

/// What role the scheme plays; used by the analyzer when deducing what a
/// break yields to the adversary.
enum class SchemeKind : std::uint8_t {
  kCipher,
  kSharing,
  kHash,
  kMac,
  kSignature,
  kKeyAgreement,
  kCommitment,
  kErasure,
};

/// Static metadata about a scheme.
struct SchemeInfo {
  SchemeId id;
  const char* name;
  SchemeKind kind;
  SecurityClass confidentiality;  // what it offers for secrecy
  bool breakable;                 // computational => true
};

/// Returns static metadata (table lookup, never fails for valid ids).
const SchemeInfo& scheme_info(SchemeId id);

/// Human-readable scheme name.
std::string scheme_name(SchemeId id);

/// Registry of cryptanalytic break events for a simulated timeline.
///
/// A scheme is "broken at epoch e": from e onward, any artifact whose
/// confidentiality/integrity rests on that scheme yields to the adversary
/// — including artifacts *harvested before e* (the HNDL attack).
class SchemeRegistry {
 public:
  SchemeRegistry() = default;

  /// Declares that `id` falls to cryptanalysis at `epoch`.
  /// Throws InvalidArgument for information-theoretic schemes: the whole
  /// point of ITS is that no such epoch can exist.
  void set_break_epoch(SchemeId id, Epoch epoch);

  /// Removes a scheduled break (for what-if analyses).
  void clear_break(SchemeId id);

  /// True if `id` is broken at (or before) `now`.
  bool is_broken(SchemeId id, Epoch now) const;

  /// The break epoch, if one is scheduled.
  std::optional<Epoch> break_epoch(SchemeId id) const;

  /// Earliest epoch at which *any* of the given schemes is broken
  /// (kNever if none are scheduled). A cascade survives until its last
  /// cipher falls, a single-cipher object until its first.
  Epoch earliest_break(std::initializer_list<SchemeId> ids) const;
  Epoch latest_break(std::initializer_list<SchemeId> ids) const;

 private:
  std::map<SchemeId, Epoch> breaks_;
};

}  // namespace aegis
