#include "crypto/combiner.h"

#include "util/error.h"
#include "util/serde.h"

namespace aegis {

namespace {
void check_cipher(SchemeId id) {
  if (scheme_info(id).kind != SchemeKind::kCipher ||
      id == SchemeId::kOneTimePad) {
    throw InvalidArgument("combiner: " + scheme_name(id) +
                          " is not a fixed-key cipher");
  }
}
}  // namespace

CascadeCombiner::CascadeCombiner(std::vector<SchemeId> components)
    : components_(std::move(components)) {
  if (components_.empty())
    throw InvalidArgument("CascadeCombiner: need at least one component");
  for (SchemeId c : components_) check_cipher(c);
}

CombinerKeys CascadeCombiner::keygen(Rng& rng) const {
  CombinerKeys out;
  for (SchemeId c : components_) {
    out.keys.push_back(generate_key(c, rng));
    out.ivs.push_back(generate_iv(c, rng));
  }
  return out;
}

Bytes CascadeCombiner::seal(ByteView plaintext,
                            const CombinerKeys& keys) const {
  if (keys.keys.size() != components_.size())
    throw InvalidArgument("CascadeCombiner: key count mismatch");
  Bytes cur = to_bytes(plaintext);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    cur = cipher_apply(components_[i],
                       ByteView(keys.keys[i].data(), keys.keys[i].size()),
                       keys.ivs[i], cur);
  }
  return cur;
}

Bytes CascadeCombiner::open(ByteView ciphertext,
                            const CombinerKeys& keys) const {
  if (keys.keys.size() != components_.size())
    throw InvalidArgument("CascadeCombiner: key count mismatch");
  Bytes cur = to_bytes(ciphertext);
  for (std::size_t i = components_.size(); i-- > 0;) {
    cur = cipher_apply(components_[i],
                       ByteView(keys.keys[i].data(), keys.keys[i].size()),
                       keys.ivs[i], cur);
  }
  return cur;
}

Epoch CascadeCombiner::falls_at(const SchemeRegistry& reg) const {
  Epoch latest = 0;
  for (SchemeId c : components_) {
    const auto b = reg.break_epoch(c);
    if (!b) return kNever;
    latest = std::max(latest, *b);
  }
  return latest;
}

XorCombiner::XorCombiner(SchemeId first, SchemeId second)
    : first_(first), second_(second) {
  check_cipher(first);
  check_cipher(second);
}

CombinerKeys XorCombiner::keygen(Rng& rng) const {
  CombinerKeys out;
  out.keys.push_back(generate_key(first_, rng));
  out.keys.push_back(generate_key(second_, rng));
  out.ivs.push_back(generate_iv(first_, rng));
  out.ivs.push_back(generate_iv(second_, rng));
  return out;
}

Bytes XorCombiner::seal(ByteView plaintext, const CombinerKeys& keys,
                        Rng& rng) const {
  if (keys.keys.size() != 2)
    throw InvalidArgument("XorCombiner: need exactly two keys");
  const Bytes r = rng.bytes(plaintext.size());
  const Bytes half1 = xor_bytes(plaintext, r);

  const Bytes c1 =
      cipher_apply(first_, ByteView(keys.keys[0].data(), keys.keys[0].size()),
                   keys.ivs[0], half1);
  const Bytes c2 = cipher_apply(
      second_, ByteView(keys.keys[1].data(), keys.keys[1].size()),
      keys.ivs[1], r);

  ByteWriter w;
  w.bytes(c1);
  w.bytes(c2);
  return std::move(w).take();
}

Bytes XorCombiner::open(ByteView ciphertext, const CombinerKeys& keys) const {
  if (keys.keys.size() != 2)
    throw InvalidArgument("XorCombiner: need exactly two keys");
  ByteReader rd(ciphertext);
  const Bytes c1 = rd.bytes();
  const Bytes c2 = rd.bytes();
  rd.expect_done();

  const Bytes half1 =
      cipher_apply(first_, ByteView(keys.keys[0].data(), keys.keys[0].size()),
                   keys.ivs[0], c1);
  const Bytes r = cipher_apply(
      second_, ByteView(keys.keys[1].data(), keys.keys[1].size()),
      keys.ivs[1], c2);
  return xor_bytes(half1, r);
}

Epoch XorCombiner::falls_at(const SchemeRegistry& reg) const {
  const auto b1 = reg.break_epoch(first_);
  const auto b2 = reg.break_epoch(second_);
  if (!b1 || !b2) return kNever;
  return std::max(*b1, *b2);
}

}  // namespace aegis
