#include "crypto/scheme.h"

#include <array>

namespace aegis {

namespace {

constexpr std::array<SchemeInfo, static_cast<std::size_t>(SchemeId::kMaxScheme)>
    kInfos = {{
        {SchemeId::kNone, "none", SchemeKind::kCipher, SecurityClass::kNone,
         false},

        {SchemeId::kAes128Ctr, "AES-128-CTR", SchemeKind::kCipher,
         SecurityClass::kComputational, true},
        {SchemeId::kAes256Ctr, "AES-256-CTR", SchemeKind::kCipher,
         SecurityClass::kComputational, true},
        {SchemeId::kChaCha20, "ChaCha20", SchemeKind::kCipher,
         SecurityClass::kComputational, true},
        {SchemeId::kSpeck128Ctr, "Speck128-CTR", SchemeKind::kCipher,
         SecurityClass::kComputational, true},

        {SchemeId::kOneTimePad, "One-Time-Pad", SchemeKind::kCipher,
         SecurityClass::kInformationTheoretic, false},
        {SchemeId::kShamirGf256, "Shamir-GF256", SchemeKind::kSharing,
         SecurityClass::kInformationTheoretic, false},
        {SchemeId::kPackedGf65536, "Packed-Shamir-GF65536",
         SchemeKind::kSharing, SecurityClass::kInformationTheoretic, false},
        {SchemeId::kLrssGf256, "LRSS-GF256", SchemeKind::kSharing,
         SecurityClass::kInformationTheoretic, false},

        {SchemeId::kEntropicXor, "Entropic-XOR", SchemeKind::kCipher,
         SecurityClass::kEntropic, false},

        {SchemeId::kSha256, "SHA-256", SchemeKind::kHash,
         SecurityClass::kComputational, true},
        {SchemeId::kSha512, "SHA-512", SchemeKind::kHash,
         SecurityClass::kComputational, true},
        {SchemeId::kSha3_256, "SHA3-256", SchemeKind::kHash,
         SecurityClass::kComputational, true},
        {SchemeId::kHmacSha256, "HMAC-SHA256", SchemeKind::kMac,
         SecurityClass::kComputational, true},

        {SchemeId::kSchnorrSecp256k1, "Schnorr-secp256k1",
         SchemeKind::kSignature, SecurityClass::kComputational, true},
        {SchemeId::kEcdhSecp256k1, "ECDH-secp256k1",
         SchemeKind::kKeyAgreement, SecurityClass::kComputational, true},

        {SchemeId::kSigGenA, "Signature-GenA", SchemeKind::kSignature,
         SecurityClass::kComputational, true},
        {SchemeId::kSigGenB, "Signature-GenB", SchemeKind::kSignature,
         SecurityClass::kComputational, true},
        {SchemeId::kSigGenC, "Signature-GenC", SchemeKind::kSignature,
         SecurityClass::kComputational, true},

        {SchemeId::kHashCommit, "Hash-Commitment", SchemeKind::kCommitment,
         SecurityClass::kComputational, true},
        {SchemeId::kPedersenCommit, "Pedersen-Commitment",
         SchemeKind::kCommitment, SecurityClass::kInformationTheoretic,
         // Pedersen is ITS-*hiding*; its binding is computational. For
         // confidentiality purposes (our axis here) it never breaks.
         false},

        {SchemeId::kReedSolomon, "Reed-Solomon", SchemeKind::kErasure,
         SecurityClass::kNone, false},
        {SchemeId::kReplication, "Replication", SchemeKind::kErasure,
         SecurityClass::kNone, false},
    }};

}  // namespace

const SchemeInfo& scheme_info(SchemeId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= kInfos.size())
    throw InvalidArgument("scheme_info: unknown SchemeId");
  return kInfos[idx];
}

std::string scheme_name(SchemeId id) { return scheme_info(id).name; }

void SchemeRegistry::set_break_epoch(SchemeId id, Epoch epoch) {
  const SchemeInfo& info = scheme_info(id);
  if (!info.breakable) {
    throw InvalidArgument("SchemeRegistry: " + std::string(info.name) +
                          " is information-theoretic and cannot break");
  }
  breaks_[id] = epoch;
}

void SchemeRegistry::clear_break(SchemeId id) { breaks_.erase(id); }

bool SchemeRegistry::is_broken(SchemeId id, Epoch now) const {
  const auto it = breaks_.find(id);
  return it != breaks_.end() && it->second <= now;
}

std::optional<Epoch> SchemeRegistry::break_epoch(SchemeId id) const {
  const auto it = breaks_.find(id);
  if (it == breaks_.end()) return std::nullopt;
  return it->second;
}

Epoch SchemeRegistry::earliest_break(
    std::initializer_list<SchemeId> ids) const {
  Epoch e = kNever;
  for (SchemeId id : ids) {
    const auto b = break_epoch(id);
    if (b && *b < e) e = *b;
  }
  return e;
}

Epoch SchemeRegistry::latest_break(std::initializer_list<SchemeId> ids) const {
  // "Latest" means the cascade survives until all fall; if any member has
  // no scheduled break, the cascade never falls.
  Epoch e = 0;
  for (SchemeId id : ids) {
    const auto b = break_epoch(id);
    if (!b) return kNever;
    if (*b > e) e = *b;
  }
  return e;
}

}  // namespace aegis
