// Speck128/128 block cipher (NSA lightweight cipher, 2013 specification)
// in CTR mode.
//
// Speck is the library's *third* independent cipher family. Three
// structurally distinct designs (SPN AES, ARX-stream ChaCha20, ARX-block
// Speck) let cascade experiments model "one cipher family falls" events
// realistically — exactly the hedge ArchiveSafeLT's cascades rely on.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace aegis {

/// Speck128/128: 128-bit blocks, 128-bit keys, 32 rounds.
class Speck128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr int kRounds = 32;

  /// Expands a 16-byte key; throws InvalidArgument otherwise.
  explicit Speck128(ByteView key);

  /// Encrypts a block given as two little-endian 64-bit words.
  void encrypt_block(std::uint64_t& x, std::uint64_t& y) const;

 private:
  std::uint64_t round_keys_[kRounds];
};

/// Speck128/128-CTR keystream XOR (16-byte key, 16-byte IV).
Bytes speck_ctr(ByteView key, ByteView iv, ByteView data);

/// In-place variant.
void speck_ctr_inplace(ByteView key, ByteView iv, MutByteView data);

}  // namespace aegis
