// Uniform facade over the symmetric ciphers, keyed by SchemeId.
//
// Crypto agility demands that archive code never hardcode a cipher: an
// ArchivalPolicy names a SchemeId, and encode/decode paths route through
// this facade. All our ciphers are XOR-stream constructions, so apply()
// is an involution (encrypt == decrypt), which the cascade module
// exploits to peel layers in any order consistent with its IV bookkeeping.
#pragma once

#include "crypto/scheme.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace aegis {

/// Key/IV geometry for a cipher scheme.
struct CipherParams {
  std::size_t key_size;  // 0 means "same as message" (one-time pad)
  std::size_t iv_size;
};

/// Returns the geometry for a cipher SchemeId.
/// Throws InvalidArgument if `id` is not a cipher.
CipherParams cipher_params(SchemeId id);

/// Applies the keystream of cipher `id` to `data` (encrypts or decrypts —
/// identical for stream ciphers). Key and IV sizes must match
/// cipher_params(id); the one-time pad requires key.size()==data.size()
/// and an empty IV.
Bytes cipher_apply(SchemeId id, ByteView key, ByteView iv, ByteView data);

/// Generates a fresh random key of the right size for `id` (for the OTP
/// this is `message_size` bytes of pad).
SecureBytes generate_key(SchemeId id, Rng& rng, std::size_t message_size = 0);

/// Generates a fresh random IV of the right size for `id`.
Bytes generate_iv(SchemeId id, Rng& rng);

}  // namespace aegis
