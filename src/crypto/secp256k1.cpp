#include "crypto/secp256k1.h"

#include "crypto/sha256.h"
#include "util/error.h"

namespace aegis::ec {

namespace {
const char* kP =
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f";
const char* kN =
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141";
const char* kGx =
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798";
const char* kGy =
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8";
}  // namespace

const Secp256k1& Secp256k1::instance() {
  static const Secp256k1 curve;
  return curve;
}

Secp256k1::Secp256k1()
    : p_(U256::from_hex(kP)),
      n_(U256::from_hex(kN)),
      fp_(p_),
      fn_(n_),
      seven_mont_(fp_.to_mont(U256(7))) {
  g_ = from_affine(U256::from_hex(kGx), U256::from_hex(kGy));
  h_ = hash_to_point(to_bytes("aegis/pedersen/generator-H/v1"));
}

Point Secp256k1::from_affine(const U256& x, const U256& y) const {
  Point p;
  p.x = fp_.to_mont(x);
  p.y = fp_.to_mont(y);
  p.z = fp_.one_mont();
  p.inf = false;
  return p;
}

Point Secp256k1::neg(const Point& p) const {
  if (p.inf) return p;
  Point r = p;
  r.y = fp_.sub(U256(), p.y);  // 0 - y mod p
  return r;
}

Point Secp256k1::dbl(const Point& p) const {
  if (p.inf || p.y.is_zero()) return Point{};  // identity

  const MontgomeryCtx& f = fp_;
  const U256 y2 = f.sqr(p.y);            // Y^2
  const U256 s0 = f.mul(p.x, y2);        // X*Y^2
  const U256 s = f.add(f.add(s0, s0), f.add(s0, s0));  // 4*X*Y^2
  const U256 x2 = f.sqr(p.x);
  const U256 m = f.add(f.add(x2, x2), x2);  // 3*X^2 (a = 0)
  Point r;
  r.inf = false;
  r.x = f.sub(f.sqr(m), f.add(s, s));    // M^2 - 2S
  const U256 y4 = f.sqr(y2);
  U256 y4_8 = f.add(y4, y4);             // 2
  y4_8 = f.add(y4_8, y4_8);              // 4
  y4_8 = f.add(y4_8, y4_8);              // 8*Y^4
  r.y = f.sub(f.mul(m, f.sub(s, r.x)), y4_8);
  const U256 yz = f.mul(p.y, p.z);
  r.z = f.add(yz, yz);                   // 2*Y*Z
  return r;
}

Point Secp256k1::add(const Point& p, const Point& q) const {
  if (p.inf) return q;
  if (q.inf) return p;

  const MontgomeryCtx& f = fp_;
  const U256 z1z1 = f.sqr(p.z);
  const U256 z2z2 = f.sqr(q.z);
  const U256 u1 = f.mul(p.x, z2z2);
  const U256 u2 = f.mul(q.x, z1z1);
  const U256 s1 = f.mul(p.y, f.mul(z2z2, q.z));
  const U256 s2 = f.mul(q.y, f.mul(z1z1, p.z));

  if (u1 == u2) {
    if (s1 == s2) return dbl(p);
    return Point{};  // P + (-P) = identity
  }

  const U256 h = f.sub(u2, u1);
  const U256 r0 = f.sub(s2, s1);
  const U256 h2 = f.sqr(h);
  const U256 h3 = f.mul(h2, h);
  const U256 u1h2 = f.mul(u1, h2);

  Point r;
  r.inf = false;
  r.x = f.sub(f.sub(f.sqr(r0), h3), f.add(u1h2, u1h2));
  r.y = f.sub(f.mul(r0, f.sub(u1h2, r.x)), f.mul(s1, h3));
  r.z = f.mul(h, f.mul(p.z, q.z));
  return r;
}

Point Secp256k1::mul(const Point& p, const U256& k) const {
  // Reduce k mod n so callers can pass raw hash outputs.
  U256 scalar = k;
  if (scalar >= n_) {
    U256 t;
    sub_borrow(scalar, n_, t);
    scalar = t;
  }
  Point acc;  // identity
  const unsigned bits = scalar.bit_length();
  for (unsigned i = bits; i-- > 0;) {
    acc = dbl(acc);
    if (scalar.bit(i)) acc = add(acc, p);
  }
  return acc;
}

bool Secp256k1::eq(const Point& p, const Point& q) const {
  if (p.inf || q.inf) return p.inf == q.inf;
  // Cross-multiplied Jacobian comparison avoids inversions:
  // X1*Z2^2 == X2*Z1^2 and Y1*Z2^3 == Y2*Z1^3.
  const MontgomeryCtx& f = fp_;
  const U256 z1z1 = f.sqr(p.z);
  const U256 z2z2 = f.sqr(q.z);
  if (!(f.mul(p.x, z2z2) == f.mul(q.x, z1z1))) return false;
  return f.mul(p.y, f.mul(z2z2, q.z)) == f.mul(q.y, f.mul(z1z1, p.z));
}

void Secp256k1::to_affine(const Point& p, U256& x, U256& y) const {
  if (p.inf) throw InvalidArgument("to_affine: point at infinity");
  const MontgomeryCtx& f = fp_;
  const U256 zinv = f.inv(p.z);
  const U256 zinv2 = f.sqr(zinv);
  x = f.from_mont(f.mul(p.x, zinv2));
  y = f.from_mont(f.mul(p.y, f.mul(zinv2, zinv)));
}

Bytes Secp256k1::encode(const Point& p) const {
  if (p.inf) return Bytes{0x00};
  U256 x, y;
  to_affine(p, x, y);
  Bytes out;
  out.reserve(33);
  out.push_back(y.is_odd() ? 0x03 : 0x02);
  Bytes xb = x.to_bytes_be();
  out.insert(out.end(), xb.begin(), xb.end());
  return out;
}

bool Secp256k1::sqrt_fp(const U256& a_mont, U256& out) const {
  // p ≡ 3 (mod 4): sqrt(a) = a^((p+1)/4).
  U256 e = p_;  // (p+1)/4 == (p-3)/4 + 1; compute via shift of p+1
  U256 one(1);
  U256 pp1;
  add_carry(e, one, pp1);  // p+1 (no overflow: p < 2^256-1)
  shr1(pp1);
  shr1(pp1);
  const U256 r = fp_.pow(a_mont, pp1);
  if (!(fp_.sqr(r) == a_mont)) return false;
  out = r;
  return true;
}

Point Secp256k1::decode(ByteView enc) const {
  if (enc.size() == 1 && enc[0] == 0x00) return Point{};
  if (enc.size() != 33 || (enc[0] != 0x02 && enc[0] != 0x03))
    throw ParseError("Secp256k1::decode: malformed point encoding");
  const U256 x = U256::from_bytes_be(enc.subspan(1));
  if (x >= p_) throw ParseError("Secp256k1::decode: x out of range");

  const U256 xm = fp_.to_mont(x);
  const U256 rhs = fp_.add(fp_.mul(fp_.sqr(xm), xm), seven_mont_);
  U256 ym;
  if (!sqrt_fp(rhs, ym)) throw ParseError("Secp256k1::decode: not on curve");

  U256 y = fp_.from_mont(ym);
  const bool want_odd = enc[0] == 0x03;
  if (y.is_odd() != want_odd) {
    U256 t;
    sub_borrow(p_, y, t);
    y = t;
  }
  Point p;
  p.x = xm;
  p.y = fp_.to_mont(y);
  p.z = fp_.one_mont();
  p.inf = false;
  return p;
}

Point Secp256k1::hash_to_point(ByteView label) const {
  // Try-and-increment: hash(label || ctr) as candidate x until the cubic
  // has a root. Expected ~2 attempts; deterministic for a fixed label.
  for (std::uint32_t ctr = 0;; ++ctr) {
    std::uint8_t ctr_le[4] = {
        std::uint8_t(ctr), std::uint8_t(ctr >> 8), std::uint8_t(ctr >> 16),
        std::uint8_t(ctr >> 24)};
    Bytes digest = Sha256::hash_concat({label, ByteView(ctr_le, 4)});
    U256 x = U256::from_bytes_be(digest);
    if (x >= p_ || x.is_zero()) continue;
    const U256 xm = fp_.to_mont(x);
    const U256 rhs = fp_.add(fp_.mul(fp_.sqr(xm), xm), seven_mont_);
    U256 ym;
    if (!sqrt_fp(rhs, ym)) continue;
    Point p;
    p.x = xm;
    p.y = ym;
    p.z = fp_.one_mont();
    p.inf = false;
    return p;
  }
}

U256 Secp256k1::random_scalar(Rng& rng) const {
  // Rejection-sample 32-byte strings until one lands in [1, n-1].
  for (;;) {
    Bytes b = rng.bytes(32);
    const U256 k = U256::from_bytes_be(b);
    if (!k.is_zero() && k < n_) return k;
  }
}

U256 Secp256k1::scalar_from_hash(ByteView digest32) const {
  if (digest32.size() != 32)
    throw InvalidArgument("scalar_from_hash: need 32 bytes");
  U256 k = U256::from_bytes_be(digest32);
  while (k >= n_) {
    U256 t;
    sub_borrow(k, n_, t);
    k = t;
  }
  return k;
}

}  // namespace aegis::ec
