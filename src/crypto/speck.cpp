#include "crypto/speck.h"

#include <bit>
#include <cstring>

#include "util/error.h"

namespace aegis {

namespace {
inline void speck_round(std::uint64_t& x, std::uint64_t& y, std::uint64_t k) {
  x = std::rotr(x, 8);
  x += y;
  x ^= k;
  y = std::rotl(y, 3);
  y ^= x;
}
}  // namespace

Speck128::Speck128(ByteView key) {
  if (key.size() != 16)
    throw InvalidArgument("Speck128: key must be 16 bytes");
  std::uint64_t a, b;
  std::memcpy(&a, key.data(), 8);      // little-endian word order
  std::memcpy(&b, key.data() + 8, 8);
  round_keys_[0] = a;
  for (int i = 0; i < kRounds - 1; ++i) {
    speck_round(b, a, static_cast<std::uint64_t>(i));
    round_keys_[i + 1] = a;
  }
}

void Speck128::encrypt_block(std::uint64_t& x, std::uint64_t& y) const {
  for (int i = 0; i < kRounds; ++i) speck_round(x, y, round_keys_[i]);
}

void speck_ctr_inplace(ByteView key, ByteView iv, MutByteView data) {
  if (iv.size() != Speck128::kBlockSize)
    throw InvalidArgument("speck_ctr: IV must be 16 bytes");
  const Speck128 cipher(key);

  std::uint64_t n0, n1;
  std::memcpy(&n0, iv.data(), 8);
  std::memcpy(&n1, iv.data() + 8, 8);

  std::size_t off = 0;
  std::uint64_t ctr = 0;
  while (off < data.size()) {
    std::uint64_t x = n0 ^ ctr, y = n1;
    cipher.encrypt_block(x, y);
    std::uint8_t ks[16];
    std::memcpy(ks, &x, 8);
    std::memcpy(ks + 8, &y, 8);
    const std::size_t take = std::min<std::size_t>(16, data.size() - off);
    for (std::size_t i = 0; i < take; ++i) data[off + i] ^= ks[i];
    off += take;
    ++ctr;
  }
}

Bytes speck_ctr(ByteView key, ByteView iv, ByteView data) {
  Bytes out(data.begin(), data.end());
  speck_ctr_inplace(key, iv, MutByteView(out.data(), out.size()));
  return out;
}

}  // namespace aegis
