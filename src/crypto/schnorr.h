// Schnorr signatures over secp256k1 (key-prefixed, Fiat–Shamir).
//
// The computationally secure signature used by timestamp chains (§3.3)
// and node identities. Nonces are derived deterministically from the key
// and message (RFC 6979 flavour, via HMAC) so signing never consumes
// entropy and replays are bit-identical in simulations.
#pragma once

#include "crypto/secp256k1.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace aegis {

/// A Schnorr key pair.
struct SchnorrKeyPair {
  U256 secret;      // x in [1, n-1]
  Bytes public_key; // compressed point P = x·G
};

/// A signature (R, s) in wire form: 33-byte R || 32-byte s.
struct SchnorrSignature {
  Bytes bytes;  // 65 bytes

  static constexpr std::size_t kSize = 65;
};

/// Generates a key pair from the given RNG.
SchnorrKeyPair schnorr_keygen(Rng& rng);

/// Signs a message. Deterministic given (secret, message).
SchnorrSignature schnorr_sign(const SchnorrKeyPair& key, ByteView message);

/// Verifies a signature against a compressed public key.
bool schnorr_verify(ByteView public_key, ByteView message,
                    const SchnorrSignature& sig);

}  // namespace aegis
