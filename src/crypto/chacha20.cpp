#include "crypto/chacha20.h"

#include <bit>
#include <cstring>

#include "crypto/sha256.h"
#include "util/error.h"

namespace aegis {

namespace {

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = std::uint8_t(v);
  p[1] = std::uint8_t(v >> 8);
  p[2] = std::uint8_t(v >> 16);
  p[3] = std::uint8_t(v >> 24);
}

// Produces one 64-byte keystream block.
void chacha_block(const std::uint8_t key[32], const std::uint8_t nonce[12],
                  std::uint32_t counter, std::uint8_t out[64]) {
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce + 4 * i);

  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int i = 0; i < 10; ++i) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) store_le32(out + 4 * i, x[i] + state[i]);
}

}  // namespace

void chacha20_inplace(ByteView key, ByteView nonce, MutByteView data,
                      std::uint32_t counter) {
  if (key.size() != 32)
    throw InvalidArgument("chacha20: key must be 32 bytes");
  if (nonce.size() != 12)
    throw InvalidArgument("chacha20: nonce must be 12 bytes");

  std::uint8_t ks[64];
  std::size_t off = 0;
  while (off < data.size()) {
    chacha_block(key.data(), nonce.data(), counter++, ks);
    const std::size_t take = std::min<std::size_t>(64, data.size() - off);
    for (std::size_t i = 0; i < take; ++i) data[off + i] ^= ks[i];
    off += take;
  }
}

Bytes chacha20(ByteView key, ByteView nonce, ByteView data,
               std::uint32_t counter) {
  Bytes out(data.begin(), data.end());
  chacha20_inplace(key, nonce, MutByteView(out.data(), out.size()), counter);
  return out;
}

ChaChaRng::ChaChaRng(ByteView seed) {
  Bytes k = Sha256::hash(seed);
  std::copy(k.begin(), k.end(), key_.begin());
}

ChaChaRng::ChaChaRng(std::uint64_t seed)
    : ChaChaRng(ByteView(reinterpret_cast<const std::uint8_t*>(&seed), 8)) {}

void ChaChaRng::refill() {
  // 96-bit nonce carries the high bits of the block index; the 32-bit
  // counter carries the low bits. Together they never repeat.
  std::uint8_t nonce[12] = {};
  const std::uint64_t hi = block_ >> 32;
  std::memcpy(nonce, &hi, 8);
  std::uint8_t zero[64] = {};
  std::memcpy(buf_.data(), zero, 64);
  chacha20_inplace(ByteView(key_.data(), 32), ByteView(nonce, 12),
                   MutByteView(buf_.data(), 64),
                   static_cast<std::uint32_t>(block_));
  ++block_;
  buf_pos_ = 0;
}

void ChaChaRng::fill(MutByteView out) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (buf_pos_ == 64) refill();
    const std::size_t take = std::min(out.size() - off, 64 - buf_pos_);
    std::memcpy(out.data() + off, buf_.data() + buf_pos_, take);
    buf_pos_ += take;
    off += take;
  }
}

std::uint64_t ChaChaRng::next_u64() {
  std::uint8_t b[8];
  fill(MutByteView(b, 8));
  std::uint64_t v;
  std::memcpy(&v, b, 8);
  return v;
}

}  // namespace aegis
