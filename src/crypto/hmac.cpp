#include "crypto/hmac.h"

#include "crypto/sha256.h"
#include "util/error.h"

namespace aegis {

Bytes hmac_sha256(ByteView key, ByteView data) {
  constexpr std::size_t kBlock = Sha256::kBlockSize;
  Bytes k(kBlock, 0);
  if (key.size() > kBlock) {
    Bytes kh = Sha256::hash(key);
    std::copy(kh.begin(), kh.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Bytes inner = Sha256::hash_concat({ipad, data});
  return Sha256::hash_concat({opad, inner});
}

Bytes hkdf_extract(ByteView salt, ByteView ikm) {
  static const Bytes kZeroSalt(Sha256::kDigestSize, 0);
  return hmac_sha256(salt.empty() ? ByteView(kZeroSalt) : salt, ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
  if (length == 0 || length > 255 * Sha256::kDigestSize)
    throw InvalidArgument("hkdf_expand: length out of range");
  Bytes out;
  out.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes block = concat({t, info, ByteView(&counter, 1)});
    t = hmac_sha256(prk, block);
    const std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
    ++counter;
  }
  return out;
}

Bytes hkdf(ByteView ikm, ByteView salt, ByteView info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace aegis
