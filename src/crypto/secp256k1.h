// secp256k1 elliptic-curve group, implemented from scratch on top of the
// Montgomery field arithmetic in gf/mont.h.
//
// This group backs every discrete-log-based construction in the library:
//   * Pedersen commitments (information-theoretically hiding) — the
//     LINCOS trick for confidentiality-preserving timestamping and the
//     verification layer of Pedersen VSS;
//   * Feldman VSS commitments;
//   * Schnorr signatures for timestamp chains;
//   * ECDH for the TLS-like (computationally secure) channel.
//
// Points are held in Jacobian coordinates with field elements in
// Montgomery form; conversion happens only at the encode/decode boundary.
// This is a simulator, not a production signer: we do not attempt
// constant-time execution.
#pragma once

#include "gf/mont.h"
#include "gf/u256.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace aegis::ec {

/// A curve point in Jacobian coordinates (X/Z^2, Y/Z^3), Montgomery form.
struct Point {
  U256 x, y, z;
  bool inf = true;  // default-constructed point is the identity
};

/// The secp256k1 group: y^2 = x^3 + 7 over F_p, prime order n.
class Secp256k1 {
 public:
  /// Returns the process-wide instance (construction precomputes the
  /// Montgomery contexts and the Pedersen generator H).
  static const Secp256k1& instance();

  /// Field modulus context (mod p).
  const MontgomeryCtx& fp() const { return fp_; }
  /// Scalar/order context (mod n).
  const MontgomeryCtx& fn() const { return fn_; }
  /// Group order n as an integer.
  const U256& order() const { return n_; }

  /// The standard base point G.
  const Point& generator() const { return g_; }

  /// A second generator H with unknown discrete log w.r.t. G, derived by
  /// hash-to-curve from a fixed label — the Pedersen generator.
  const Point& pedersen_h() const { return h_; }

  bool is_infinity(const Point& p) const { return p.inf; }

  /// Group law.
  Point add(const Point& p, const Point& q) const;
  Point dbl(const Point& p) const;
  Point neg(const Point& p) const;

  /// Scalar multiplication k*P (double-and-add; k taken mod n).
  Point mul(const Point& p, const U256& k) const;

  /// k*G.
  Point mul_gen(const U256& k) const { return mul(g_, k); }

  /// Constant-free equality (compares the underlying affine points).
  bool eq(const Point& p, const Point& q) const;

  /// Converts to affine (x, y) as plain integers. Precondition: !p.inf.
  void to_affine(const Point& p, U256& x, U256& y) const;

  /// Compressed SEC1 encoding: 33 bytes (0x02/0x03 || x). The identity
  /// encodes as a single 0x00 byte.
  Bytes encode(const Point& p) const;

  /// Inverse of encode. Throws ParseError on invalid encodings or points
  /// not on the curve.
  Point decode(ByteView enc) const;

  /// Deterministic try-and-increment hash-to-curve (for Pedersen H and
  /// test fixtures). Never returns the identity.
  Point hash_to_point(ByteView label) const;

  /// Uniform scalar in [1, n-1].
  U256 random_scalar(Rng& rng) const;

  /// Reduces an arbitrary 32-byte string to a scalar mod n (for
  /// Fiat-Shamir challenges).
  U256 scalar_from_hash(ByteView digest32) const;

 private:
  Secp256k1();

  /// Makes an affine point from plain (non-Montgomery) coordinates.
  Point from_affine(const U256& x, const U256& y) const;

  /// Square root mod p (p ≡ 3 mod 4). Input/output Montgomery form.
  /// Returns false if the input is a non-residue.
  bool sqrt_fp(const U256& a_mont, U256& out) const;

  U256 p_, n_;
  MontgomeryCtx fp_, fn_;
  U256 seven_mont_;  // curve b coefficient in Montgomery form
  Point g_, h_;
};

}  // namespace aegis::ec
