#include "crypto/sha3.h"

#include <bit>
#include <cstring>

namespace aegis {

namespace {

constexpr std::uint64_t kRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr int kRho[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
                          25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14};

}  // namespace

void Sha3_256::keccak_f() {
  auto& a = state_;
  for (int round = 0; round < 24; ++round) {
    // theta
    std::uint64_t c[5], d[5];
    for (int x = 0; x < 5; ++x)
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    for (int x = 0; x < 5; ++x)
      d[x] = c[(x + 4) % 5] ^ std::rotl(c[(x + 1) % 5], 1);
    for (int x = 0; x < 5; ++x)
      for (int y = 0; y < 5; ++y) a[x + 5 * y] ^= d[x];

    // rho + pi
    std::uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        b[y + 5 * ((2 * x + 3 * y) % 5)] =
            std::rotl(a[x + 5 * y], kRho[x + 5 * y]);
      }
    }

    // chi
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        a[x + 5 * y] = b[x + 5 * y] ^
                       (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }

    // iota
    a[0] ^= kRoundConstants[round];
  }
}

void Sha3_256::absorb_block(const std::uint8_t* block) {
  for (std::size_t i = 0; i < kRate / 8; ++i) {
    std::uint64_t lane;
    std::memcpy(&lane, block + 8 * i, 8);
    state_[i] ^= lane;  // little-endian lanes (x86 layout matches FIPS)
  }
  keccak_f();
}

void Sha3_256::update(ByteView data) {
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t take = std::min(kRate - buf_len_, data.size());
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off = take;
    if (buf_len_ == kRate) {
      absorb_block(buf_.data());
      buf_len_ = 0;
    }
  }
  while (off + kRate <= data.size()) {
    absorb_block(data.data() + off);
    off += kRate;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

Bytes Sha3_256::finish() {
  // SHA-3 padding: message || 0b01 || 10*1 over the rate block.
  std::memset(buf_.data() + buf_len_, 0, kRate - buf_len_);
  buf_[buf_len_] = 0x06;
  buf_[kRate - 1] |= 0x80;
  absorb_block(buf_.data());

  Bytes digest(kDigestSize);
  std::memcpy(digest.data(), state_.data(), kDigestSize);
  return digest;
}

Bytes Sha3_256::hash(ByteView data) {
  Sha3_256 h;
  h.update(data);
  return h.finish();
}

}  // namespace aegis
