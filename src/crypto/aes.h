// AES-128 / AES-256 (FIPS 197) block cipher and CTR mode.
//
// Only the forward cipher is implemented because every mode we use (CTR)
// needs only encryption. This is a straightforward byte-oriented
// implementation — clarity over speed; the archive's throughput models
// calibrate against whatever this measures.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace aegis {

/// AES block cipher context (128- or 256-bit key).
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Expands a 16- or 32-byte key. Throws InvalidArgument otherwise.
  explicit Aes(ByteView key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(std::uint8_t block[16]) const;

  std::size_t key_size() const { return key_size_; }

 private:
  std::size_t key_size_;
  int rounds_;
  std::array<std::uint32_t, 60> round_keys_{};  // max for AES-256
};

/// AES-CTR keystream XOR: out = data ^ keystream(key, iv).
/// Encryption and decryption are the same operation. `iv` is 16 bytes
/// (12-byte nonce + 4-byte counter is the convention used here; the
/// counter occupies the last 4 bytes big-endian and starts at the value
/// embedded in the IV).
Bytes aes_ctr(ByteView key, ByteView iv, ByteView data);

/// In-place variant for large buffers.
void aes_ctr_inplace(ByteView key, ByteView iv, MutByteView data);

}  // namespace aegis
