#include "crypto/schnorr.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/error.h"

namespace aegis {

using ec::Secp256k1;

SchnorrKeyPair schnorr_keygen(Rng& rng) {
  const Secp256k1& curve = Secp256k1::instance();
  SchnorrKeyPair kp;
  kp.secret = curve.random_scalar(rng);
  kp.public_key = curve.encode(curve.mul_gen(kp.secret));
  return kp;
}

namespace {
// Challenge e = H(R || P || m) reduced mod n (key-prefixed Schnorr).
U256 challenge(const Bytes& r_enc, ByteView pub, ByteView msg) {
  const Bytes e = Sha256::hash_concat({r_enc, pub, msg});
  return Secp256k1::instance().scalar_from_hash(e);
}
}  // namespace

SchnorrSignature schnorr_sign(const SchnorrKeyPair& key, ByteView message) {
  const Secp256k1& curve = Secp256k1::instance();

  // Deterministic nonce: k = HMAC(secret, message) reduced mod n,
  // re-derived with a counter in the (cosmically unlikely) zero case.
  const Bytes sk = key.secret.to_bytes_be();
  U256 k;
  for (std::uint8_t ctr = 0;; ++ctr) {
    Bytes mac = hmac_sha256(sk, concat({message, ByteView(&ctr, 1)}));
    k = curve.scalar_from_hash(mac);
    if (!k.is_zero()) break;
  }

  const ec::Point r_pt = curve.mul_gen(k);
  const Bytes r_enc = curve.encode(r_pt);
  const U256 e = challenge(r_enc, key.public_key, message);

  // s = k + e*x mod n
  const MontgomeryCtx& fn = curve.fn();
  const U256 ex =
      fn.from_mont(fn.mul(fn.to_mont(e), fn.to_mont(key.secret)));
  const U256 s = fn.add(k, ex);

  SchnorrSignature sig;
  sig.bytes = concat({r_enc, s.to_bytes_be()});
  return sig;
}

bool schnorr_verify(ByteView public_key, ByteView message,
                    const SchnorrSignature& sig) {
  if (sig.bytes.size() != SchnorrSignature::kSize) return false;
  const Secp256k1& curve = Secp256k1::instance();
  try {
    const ByteView r_enc = ByteView(sig.bytes).subspan(0, 33);
    const ec::Point r_pt = curve.decode(r_enc);
    const U256 s = U256::from_bytes_be(ByteView(sig.bytes).subspan(33, 32));
    if (s >= curve.order()) return false;
    const ec::Point pub = curve.decode(public_key);
    if (curve.is_infinity(pub) || curve.is_infinity(r_pt)) return false;

    const U256 e = challenge(to_bytes(r_enc), public_key, message);
    // Check s·G == R + e·P.
    const ec::Point lhs = curve.mul_gen(s);
    const ec::Point rhs = curve.add(r_pt, curve.mul(pub, e));
    return curve.eq(lhs, rhs);
  } catch (const Error&) {
    return false;
  }
}

}  // namespace aegis
