// Pedersen commitments over secp256k1.
//
// C = g^v · h^r where nobody knows log_g(h). Hiding is
// *information-theoretic* (C is uniform over the group for random r);
// binding is computational (discrete log). The paper (§3.3, LINCOS)
// relies on exactly this asymmetry: a timestamp chain built from Pedersen
// commitments keeps long-term confidentiality even after the binding
// assumption falls, because the commitment string itself never leaks the
// committed value.
//
// The homomorphism commit(a,r)·commit(b,s) = commit(a+b, r+s) is what
// Pedersen VSS and proactive share-refresh verification are built on.
#pragma once

#include "crypto/secp256k1.h"
#include "gf/u256.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace aegis {

/// An opened commitment: the value/blinding pair.
struct PedersenOpening {
  U256 value;  // scalar mod n
  U256 blind;  // scalar mod n
};

/// A Pedersen commitment (a curve point).
struct PedersenCommitment {
  ec::Point point;

  /// Compressed wire encoding.
  Bytes encode() const;
  static PedersenCommitment decode(ByteView enc);

  bool operator==(const PedersenCommitment& o) const;
};

/// Commits to a scalar value with the given blinding factor.
PedersenCommitment pedersen_commit(const U256& value, const U256& blind);

/// Commits to a scalar with a fresh random blinding; returns the opening.
PedersenCommitment pedersen_commit(const U256& value, Rng& rng,
                                   PedersenOpening& opening_out);

/// Commits to an arbitrary byte string by first reducing SHA-256(m) to a
/// scalar. Hiding remains information-theoretic; binding additionally
/// assumes collision resistance of SHA-256 (as in LINCOS).
PedersenCommitment pedersen_commit_bytes(ByteView message, Rng& rng,
                                         PedersenOpening& opening_out);

/// Verifies an opening against a commitment.
bool pedersen_verify(const PedersenCommitment& c, const PedersenOpening& o);

/// Verifies a byte-string opening (recomputes the scalar from m).
bool pedersen_verify_bytes(const PedersenCommitment& c, ByteView message,
                           const U256& blind);

/// Homomorphic combination: commit(a,r) + commit(b,s) = commit(a+b, r+s).
PedersenCommitment pedersen_add(const PedersenCommitment& a,
                                const PedersenCommitment& b);

/// Scalar multiple: k * commit(v, r) = commit(k·v, k·r).
PedersenCommitment pedersen_scale(const PedersenCommitment& c, const U256& k);

}  // namespace aegis
