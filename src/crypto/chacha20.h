// ChaCha20 stream cipher (RFC 8439) and a ChaCha20-based deterministic
// random bit generator.
//
// ChaCha20 is the library's second independent cipher family (ARX vs.
// AES's SPN), which matters for cascade ciphers: a cascade hedges only
// if its layers do not share a structural weakness. ChaChaRng is the
// cryptographic RNG used for keys, pads and sharing polynomials.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"
#include "util/rng.h"

namespace aegis {

/// ChaCha20 keystream XOR. key = 32 bytes, nonce = 12 bytes, counter is
/// the initial 32-bit block counter (0 unless resuming a stream).
Bytes chacha20(ByteView key, ByteView nonce, ByteView data,
               std::uint32_t counter = 0);

/// In-place variant.
void chacha20_inplace(ByteView key, ByteView nonce, MutByteView data,
                      std::uint32_t counter = 0);

/// Deterministic random bit generator: ChaCha20 keyed by a seed, running
/// over an incrementing block counter. Cryptographic-quality output,
/// reproducible from the seed — exactly what experiment scripts need for
/// "random" keys that replay across runs.
class ChaChaRng final : public Rng {
 public:
  /// Seeds from arbitrary bytes (hashed to 32 bytes internally).
  explicit ChaChaRng(ByteView seed);

  /// Convenience: seeds from a 64-bit value.
  explicit ChaChaRng(std::uint64_t seed);

  void fill(MutByteView out) override;
  std::uint64_t next_u64() override;

 private:
  void refill();

  std::array<std::uint8_t, 32> key_{};
  std::uint64_t block_ = 0;
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_pos_ = 64;  // empty
};

}  // namespace aegis
