#include "channel/bsm_channel.h"

#include "channel/otp_framing.h"
#include "util/error.h"

namespace aegis {

BsmChannel::BsmChannel(SecureBytes pad) : pad_(std::move(pad)) {
  transcript_.key_agreement = SchemeId::kOneTimePad;
  transcript_.cipher = SchemeId::kOneTimePad;
}

BsmChannel::Result BsmChannel::establish(std::size_t pad_budget,
                                         const BsmParams& params, Rng& rng) {
  Result res;
  SecureBytes pad;
  pad.reserve(pad_budget);

  // Distil pad one agreement round at a time. Rounds with an empty
  // sample intersection yield nothing; the parties simply run another
  // round (more beacon traffic — the cost the bench reports).
  constexpr unsigned kMaxRounds = 10000;  // backstop against tiny params
  while (pad.size() < pad_budget) {
    if (++res.rounds > kMaxRounds)
      throw UnrecoverableError(
          "BsmChannel: key agreement not converging (sampling too sparse "
          "for the requested pad budget)",
          ErrorCode::kEntropyExhausted);
    const BsmResult round =
        bsm_key_agreement(params, BsmAdversaryStrategy::kRandom, rng);
    res.bytes_streamed += round.bytes_streamed;
    if (!round.agreed) continue;
    pad.insert(pad.end(), round.key.begin(), round.key.end());
  }
  pad.resize(pad_budget);

  res.left = std::unique_ptr<BsmChannel>(new BsmChannel(pad));
  res.right = std::unique_ptr<BsmChannel>(new BsmChannel(std::move(pad)));
  return res;
}

SecureBytes BsmChannel::take_pad(std::size_t n) {
  if (pad_remaining() < n)
    throw UnrecoverableError(
        "BsmChannel: one-time-pad budget exhausted (stream more beacon "
        "rounds)",
        ErrorCode::kEntropyExhausted);
  SecureBytes out(pad_.begin() + pad_pos_, pad_.begin() + pad_pos_ + n);
  pad_pos_ += n;
  return out;
}

Bytes BsmChannel::seal(ByteView plaintext) {
  const SecureBytes body_pad = take_pad(plaintext.size());
  const SecureBytes mac_pad = take_pad(kOtpMacPadSize);
  Bytes frame = otp_seal_frame(plaintext,
                               ByteView(body_pad.data(), body_pad.size()),
                               ByteView(mac_pad.data(), mac_pad.size()));
  record(frame, plaintext.size());
  return frame;
}

Bytes BsmChannel::open(ByteView frame) {
  const OtpFrame f = otp_parse_frame(frame);
  const SecureBytes body_pad = take_pad(f.ct.size());
  const SecureBytes mac_pad = take_pad(kOtpMacPadSize);
  if (!otp_check_tag(f.ct, f.tag, ByteView(mac_pad.data(), mac_pad.size())))
    throw IntegrityError("BsmChannel: one-time MAC verification failed",
                         ErrorCode::kMacMismatch);
  return xor_bytes(f.ct, ByteView(body_pad.data(), body_pad.size()));
}

}  // namespace aegis
