#include "channel/bsm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/error.h"

namespace aegis {

namespace {

// Draw `count` distinct positions in [0, n).
std::set<std::uint64_t> sample_positions(std::uint64_t n, unsigned count,
                                         Rng& rng) {
  std::set<std::uint64_t> out;
  while (out.size() < count) out.insert(rng.uniform(n));
  return out;
}

}  // namespace

BsmResult bsm_key_agreement(const BsmParams& p, BsmAdversaryStrategy strategy,
                            Rng& rng) {
  if (p.stream_words == 0 || p.samples_per_party == 0)
    throw InvalidArgument("bsm: empty stream or sample set");
  if (p.samples_per_party > p.stream_words)
    throw InvalidArgument("bsm: cannot sample more than the stream");

  BsmResult res;
  res.bytes_streamed = p.stream_words * 8;

  // Parties commit to positions before the stream starts.
  const auto alice = sample_positions(p.stream_words, p.samples_per_party, rng);
  const auto bob = sample_positions(p.stream_words, p.samples_per_party, rng);

  std::set<std::uint64_t> adv;
  if (strategy == BsmAdversaryStrategy::kRandom) {
    // Bounded random sampling; a set this large is built from intervals
    // to stay cheap when the bound is a large fraction of the stream.
    adv = sample_positions(p.stream_words,
                           static_cast<unsigned>(std::min<std::uint64_t>(
                               p.adversary_words, p.stream_words)),
                           rng);
  }

  // The beacon: a keyed PRG stands in for the satellite's true randomness
  // — equivalent here because nobody in the simulation inverts it; the
  // security argument is purely about who *stored* which words.
  ChaChaRng beacon(rng.next_u64());

  std::vector<std::pair<std::uint64_t, std::uint64_t>> alice_words,
      bob_words;
  std::set<std::uint64_t> adv_known_words;

  for (std::uint64_t pos = 0; pos < p.stream_words; ++pos) {
    const std::uint64_t word = beacon.next_u64();
    const bool a = alice.count(pos) > 0;
    const bool b = bob.count(pos) > 0;
    if (a) alice_words.emplace_back(pos, word);
    if (b) bob_words.emplace_back(pos, word);
    const bool adversary_stores =
        strategy == BsmAdversaryStrategy::kPrefix
            ? pos < p.adversary_words
            : adv.count(pos) > 0;
    if (adversary_stores && (a || b)) adv_known_words.insert(pos);
  }

  // Public phase: reveal position sets, intersect.
  std::vector<std::uint64_t> common;
  std::set_intersection(alice.begin(), alice.end(), bob.begin(), bob.end(),
                        std::back_inserter(common));
  res.intersection_size = static_cast<unsigned>(common.size());
  if (common.empty()) return res;  // agreement failed this round

  // Distil: hash the common words (a practical stand-in for a seeded
  // extractor; with at least one word unknown to the adversary, the
  // input has >= 64 bits of min-entropy from its point of view).
  Sha256 h;
  for (std::uint64_t pos : common) {
    const auto it = std::lower_bound(
        alice_words.begin(), alice_words.end(), pos,
        [](const auto& pr, std::uint64_t v) { return pr.first < v; });
    std::uint8_t buf[16];
    std::memcpy(buf, &pos, 8);
    std::memcpy(buf + 8, &it->second, 8);
    h.update(ByteView(buf, 16));
    if (adv_known_words.count(pos) > 0) ++res.adversary_known;
  }
  Bytes digest = h.finish();
  Bytes key = hkdf(digest, {}, to_bytes(std::string_view("aegis/bsm/v1")),
                   p.key_bytes);
  res.key = to_secure(key);
  res.agreed = true;
  res.adversary_has_key = res.adversary_known == res.intersection_size;
  return res;
}

double bsm_adversary_success_probability(double storage_ratio,
                                         unsigned intersection_size) {
  if (storage_ratio >= 1.0) return 1.0;
  if (storage_ratio <= 0.0) return intersection_size == 0 ? 1.0 : 0.0;
  return std::pow(storage_ratio, intersection_size);
}

}  // namespace aegis
