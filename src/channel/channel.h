// Secure-channel abstraction for data in transit.
//
// §3.2's closing observation: a secret-shared datastore with
// information-theoretic protection *at rest* can still lose everything to
// an adversary who records TLS traffic and decrypts it after the key
// exchange falls — HNDL on the wire. Channels therefore carry the same
// SchemeId/security-class metadata as at-rest encodings, and every frame
// they emit can be tapped into a transcript for the HNDL simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/scheme.h"
#include "util/bytes.h"

namespace aegis {

/// What an eavesdropper records from one protected conversation.
struct ChannelTranscript {
  SchemeId key_agreement = SchemeId::kNone;  // what must break first
  SchemeId cipher = SchemeId::kNone;         // ... or this
  std::vector<Bytes> frames;                 // every on-wire frame
  std::uint64_t plaintext_bytes = 0;         // how much was protected

  /// The epoch at which a harvested copy of this transcript yields its
  /// plaintext (kNever for information-theoretic channels).
  Epoch falls_at(const SchemeRegistry& reg) const;
};

/// A bidirectional secure pipe. seal() on one endpoint produces a frame
/// that open() on the peer endpoint accepts; both endpoints share state
/// established by the constructor/handshake.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Protects a message for the wire.
  virtual Bytes seal(ByteView plaintext) = 0;

  /// Recovers a message from the wire. Throws IntegrityError on
  /// tampered frames.
  virtual Bytes open(ByteView frame) = 0;

  /// Long-term confidentiality class of the channel.
  virtual SecurityClass security() const = 0;

  /// Scheme metadata for the HNDL analyzer.
  virtual SchemeId key_agreement_scheme() const = 0;
  virtual SchemeId cipher_scheme() const = 0;

  /// The eavesdropper's view so far (frames recorded by seal()).
  const ChannelTranscript& transcript() const { return transcript_; }

 protected:
  void record(ByteView frame, std::size_t plaintext_len);

  ChannelTranscript transcript_;
};

/// No protection at all: frames are the plaintext.
class PlainChannel final : public Channel {
 public:
  PlainChannel();
  Bytes seal(ByteView plaintext) override;
  Bytes open(ByteView frame) override;
  SecurityClass security() const override { return SecurityClass::kNone; }
  SchemeId key_agreement_scheme() const override { return SchemeId::kNone; }
  SchemeId cipher_scheme() const override { return SchemeId::kNone; }
};

}  // namespace aegis
