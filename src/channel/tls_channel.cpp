#include "channel/tls_channel.h"

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/secp256k1.h"
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

namespace {
constexpr std::size_t kTagSize = 32;
constexpr std::size_t kIvSize = 16;
}  // namespace

TlsChannel::TlsChannel(SecureBytes enc_key, SecureBytes mac_key)
    : enc_key_(std::move(enc_key)), mac_key_(std::move(mac_key)) {
  transcript_.key_agreement = SchemeId::kEcdhSecp256k1;
  transcript_.cipher = SchemeId::kAes256Ctr;
}

std::pair<std::unique_ptr<TlsChannel>, std::unique_ptr<TlsChannel>>
TlsChannel::handshake(Rng& rng) {
  const auto& curve = ec::Secp256k1::instance();

  // Ephemeral ECDH: shared point = a * (b*G) = b * (a*G).
  const U256 a = curve.random_scalar(rng);
  const U256 b = curve.random_scalar(rng);
  const ec::Point pa = curve.mul_gen(a);
  const ec::Point pb = curve.mul_gen(b);
  const ec::Point shared = curve.mul(pb, a);

  U256 x, y;
  curve.to_affine(shared, x, y);
  const Bytes ikm = x.to_bytes_be();

  // Derive directional keys; both endpoints get both (the pair is an
  // in-process simulation of one full-duplex session).
  const Bytes okm =
      hkdf(ikm, /*salt=*/{}, to_bytes(std::string_view("aegis/tls/v1")), 64);
  SecureBytes enc_key(okm.begin(), okm.begin() + 32);
  SecureBytes mac_key(okm.begin() + 32, okm.end());

  auto left = std::unique_ptr<TlsChannel>(
      new TlsChannel(enc_key, mac_key));
  auto right = std::unique_ptr<TlsChannel>(
      new TlsChannel(std::move(enc_key), std::move(mac_key)));

  // Eavesdropper sees both ephemeral public keys fly by.
  const Bytes hs = concat({curve.encode(pa), curve.encode(pb)});
  left->record(hs, 0);
  right->record(hs, 0);
  return {std::move(left), std::move(right)};
}

Bytes TlsChannel::seal(ByteView plaintext) {
  ByteWriter w;
  w.u64(send_seq_);

  Bytes iv(kIvSize, 0);
  // Deterministic per-sequence IV: sequence number in the low 8 bytes.
  for (int i = 0; i < 8; ++i)
    iv[8 + i] = static_cast<std::uint8_t>(send_seq_ >> (8 * i));
  ++send_seq_;

  const Bytes ct =
      aes_ctr(ByteView(enc_key_.data(), enc_key_.size()), iv, plaintext);
  w.bytes(ct);

  const Bytes tag =
      hmac_sha256(ByteView(mac_key_.data(), mac_key_.size()), w.data());
  w.raw(tag);

  Bytes frame = std::move(w).take();
  record(frame, plaintext.size());
  return frame;
}

Bytes TlsChannel::open(ByteView frame) {
  if (frame.size() < 8 + 4 + kTagSize)
    throw IntegrityError("TlsChannel: truncated frame",
                         ErrorCode::kTruncatedData);

  const ByteView body = frame.subspan(0, frame.size() - kTagSize);
  const ByteView tag = frame.subspan(frame.size() - kTagSize);
  const Bytes expect =
      hmac_sha256(ByteView(mac_key_.data(), mac_key_.size()), body);
  if (!ct_equal(tag, expect))
    throw IntegrityError("TlsChannel: MAC verification failed",
                         ErrorCode::kMacMismatch);

  ByteReader r(body);
  const std::uint64_t seq = r.u64();
  if (seq != recv_seq_)
    throw IntegrityError("TlsChannel: bad sequence (replay or drop)",
                         ErrorCode::kReplayDetected);
  ++recv_seq_;

  const Bytes ct = r.bytes();
  Bytes iv(kIvSize, 0);
  for (int i = 0; i < 8; ++i)
    iv[8 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
  return aes_ctr(ByteView(enc_key_.data(), enc_key_.size()), iv, ct);
}

}  // namespace aegis
