#include "channel/qkd_channel.h"

#include "channel/otp_framing.h"
#include "util/error.h"

namespace aegis {

QkdChannel::QkdChannel(SecureBytes pad) : pad_(std::move(pad)) {
  transcript_.key_agreement = SchemeId::kOneTimePad;
  transcript_.cipher = SchemeId::kOneTimePad;
}

QkdChannel::Result QkdChannel::establish(std::size_t key_budget, Rng& rng,
                                         bool eavesdropper_present,
                                         unsigned sample_bits) {
  Result res;
  if (eavesdropper_present) {
    // Intercept-resend gives each sampled check bit a 25% flip chance;
    // the endpoints detect the eavesdropper unless every sampled bit
    // happens to survive.
    bool detected = false;
    for (unsigned i = 0; i < sample_bits && !detected; ++i)
      detected = rng.chance(0.25);
    if (detected) {
      res.eavesdropper_detected = true;
      return res;  // abort: no key material is ever used
    }
  }
  SecureBytes pad = rng.secure_bytes(key_budget);
  res.left = std::unique_ptr<QkdChannel>(new QkdChannel(pad));
  res.right = std::unique_ptr<QkdChannel>(new QkdChannel(std::move(pad)));
  return res;
}

SecureBytes QkdChannel::take_pad(std::size_t n) {
  if (pad_remaining() < n)
    throw UnrecoverableError(
        "QkdChannel: one-time-pad budget exhausted (key rate limit)",
        ErrorCode::kEntropyExhausted);
  SecureBytes out(pad_.begin() + pad_pos_, pad_.begin() + pad_pos_ + n);
  pad_pos_ += n;
  return out;
}

Bytes QkdChannel::seal(ByteView plaintext) {
  const SecureBytes body_pad = take_pad(plaintext.size());
  const SecureBytes mac_pad = take_pad(kOtpMacPadSize);

  Bytes frame = otp_seal_frame(plaintext,
                               ByteView(body_pad.data(), body_pad.size()),
                               ByteView(mac_pad.data(), mac_pad.size()));
  record(frame, plaintext.size());
  return frame;
}

Bytes QkdChannel::open(ByteView frame) {
  const OtpFrame f = otp_parse_frame(frame);
  const SecureBytes body_pad = take_pad(f.ct.size());
  const SecureBytes mac_pad = take_pad(kOtpMacPadSize);

  if (!otp_check_tag(f.ct, f.tag, ByteView(mac_pad.data(), mac_pad.size())))
    throw IntegrityError("QkdChannel: one-time MAC verification failed",
                         ErrorCode::kMacMismatch);
  return xor_bytes(f.ct, ByteView(body_pad.data(), body_pad.size()));
}

}  // namespace aegis
