// The Bounded Storage Model as a *transport*: §4 proposes the BSM as an
// alternative to QKD for information-theoretic channels; this adapter
// turns repeated BSM key agreements into the pad supply of an OTP
// channel with the same frame format as QkdChannel.
//
// The practicality question the paper raises shows up as two numbers the
// channel tracks: how many bytes had to be *streamed* from the beacon
// per byte of pad distilled, and how many agreement rounds ran. Expect
// thousands of streamed bytes per pad byte — the measured answer to
// "are the costs low enough in practice?".
#pragma once

#include "channel/bsm.h"
#include "channel/channel.h"

namespace aegis {

/// One endpoint of a BSM-keyed OTP channel.
class BsmChannel final : public Channel {
 public:
  struct Result {
    std::unique_ptr<BsmChannel> left, right;
    std::uint64_t bytes_streamed = 0;  // total beacon traffic consumed
    unsigned rounds = 0;               // agreement rounds run
  };

  /// Establishes a pair holding `pad_budget` bytes of shared pad,
  /// distilled from as many BSM rounds as needed. `params.key_bytes` is
  /// the per-round yield. Rounds whose sample sets fail to intersect
  /// contribute nothing and are retried (counted in `rounds`).
  static Result establish(std::size_t pad_budget, const BsmParams& params,
                          Rng& rng);

  std::size_t pad_remaining() const { return pad_.size() - pad_pos_; }

  Bytes seal(ByteView plaintext) override;
  Bytes open(ByteView frame) override;

  SecurityClass security() const override {
    return SecurityClass::kInformationTheoretic;
  }
  SchemeId key_agreement_scheme() const override {
    return SchemeId::kOneTimePad;
  }
  SchemeId cipher_scheme() const override { return SchemeId::kOneTimePad; }

 private:
  explicit BsmChannel(SecureBytes pad);
  SecureBytes take_pad(std::size_t n);

  SecureBytes pad_;
  std::size_t pad_pos_ = 0;
};

}  // namespace aegis
