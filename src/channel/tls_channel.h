// A TLS-like computationally secure channel: ephemeral ECDH key
// agreement over secp256k1, HKDF key derivation, AES-256-CTR encryption
// and HMAC-SHA256 authentication with explicit sequence numbers.
//
// This models what real archives use on the wire today (Table 1's
// "Computational / in transit" column for every system but LINCOS) and
// is the harvestable artifact of the paper's transit-HNDL scenario: the
// recorded handshake + frames yield all payloads once ECDH *or* AES
// falls.
#pragma once

#include "channel/channel.h"
#include "util/rng.h"

namespace aegis {

/// One endpoint of a TLS-like channel. Construct a connected pair via
/// handshake().
class TlsChannel final : public Channel {
 public:
  /// Runs an (in-process) ephemeral ECDH handshake and returns the two
  /// connected endpoints. The exchanged public keys are recorded in both
  /// transcripts, as a network eavesdropper would see them.
  static std::pair<std::unique_ptr<TlsChannel>, std::unique_ptr<TlsChannel>>
  handshake(Rng& rng);

  Bytes seal(ByteView plaintext) override;
  Bytes open(ByteView frame) override;

  SecurityClass security() const override {
    return SecurityClass::kComputational;
  }
  SchemeId key_agreement_scheme() const override {
    return SchemeId::kEcdhSecp256k1;
  }
  SchemeId cipher_scheme() const override { return SchemeId::kAes256Ctr; }

 private:
  TlsChannel(SecureBytes enc_key, SecureBytes mac_key);

  SecureBytes enc_key_;  // AES-256
  SecureBytes mac_key_;  // HMAC-SHA256
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

}  // namespace aegis
