#include "channel/otp_framing.h"

#include <cstring>

#include "crypto/entropic.h"  // gf64_mul
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

namespace {

// Wegman-Carter one-time MAC: polynomial hash of the message under key r,
// masked with one-time key s. Unconditionally unforgeable for one use.
std::uint64_t poly_mac(ByteView msg, std::uint64_t r, std::uint64_t s) {
  std::uint64_t acc = 0;
  std::size_t off = 0;
  while (off < msg.size()) {
    std::uint64_t word = 0;
    const std::size_t take = std::min<std::size_t>(8, msg.size() - off);
    std::memcpy(&word, msg.data() + off, take);
    acc = gf64_mul(acc ^ word, r);
    off += take;
  }
  // Mixing the length in defeats padding/extension ambiguity.
  acc = gf64_mul(acc ^ static_cast<std::uint64_t>(msg.size()), r);
  return acc ^ s;
}

void mac_keys(ByteView mac_pad, std::uint64_t& r, std::uint64_t& s) {
  if (mac_pad.size() != kOtpMacPadSize)
    throw InvalidArgument("otp_framing: mac pad must be 24 bytes");
  std::memcpy(&r, mac_pad.data(), 8);
  std::memcpy(&s, mac_pad.data() + 8, 8);
  if (r == 0) r = 1;
}

}  // namespace

Bytes otp_seal_frame(ByteView plaintext, ByteView body_pad,
                     ByteView mac_pad) {
  Bytes ct = xor_bytes(plaintext, body_pad);
  std::uint64_t r, s;
  mac_keys(mac_pad, r, s);
  const std::uint64_t tag = poly_mac(ct, r, s);

  ByteWriter w;
  w.bytes(ct);
  w.u64(tag);
  return std::move(w).take();
}

OtpFrame otp_parse_frame(ByteView frame) {
  ByteReader rd(frame);
  OtpFrame f;
  f.ct = rd.bytes();
  f.tag = rd.u64();
  rd.expect_done();
  return f;
}

bool otp_check_tag(ByteView ct, std::uint64_t tag, ByteView mac_pad) {
  std::uint64_t r, s;
  mac_keys(mac_pad, r, s);
  return poly_mac(ct, r, s) == tag;
}

}  // namespace aegis
