#include "channel/channel.h"

namespace aegis {

Epoch ChannelTranscript::falls_at(const SchemeRegistry& reg) const {
  // The transcript yields once EITHER the key agreement or the bulk
  // cipher breaks (whichever first). ITS channels have neither.
  Epoch e = kNever;
  if (key_agreement != SchemeId::kNone &&
      scheme_info(key_agreement).breakable) {
    if (const auto b = reg.break_epoch(key_agreement); b && *b < e) e = *b;
  }
  if (cipher != SchemeId::kNone && scheme_info(cipher).breakable) {
    if (const auto b = reg.break_epoch(cipher); b && *b < e) e = *b;
  }
  // A cleartext channel yields immediately.
  if (key_agreement == SchemeId::kNone && cipher == SchemeId::kNone) e = 0;
  return e;
}

void Channel::record(ByteView frame, std::size_t plaintext_len) {
  transcript_.frames.push_back(to_bytes(frame));
  transcript_.plaintext_bytes += plaintext_len;
}

PlainChannel::PlainChannel() {
  transcript_.key_agreement = SchemeId::kNone;
  transcript_.cipher = SchemeId::kNone;
}

Bytes PlainChannel::seal(ByteView plaintext) {
  Bytes frame = to_bytes(plaintext);
  record(frame, plaintext.size());
  return frame;
}

Bytes PlainChannel::open(ByteView frame) { return to_bytes(frame); }

}  // namespace aegis
