// Simulated Quantum Key Distribution channel (the LINCOS transport).
//
// What the paper needs from QKD is a *property*, not photons: two parties
// obtain a stream of shared one-time-pad key material such that (a) the
// key is information-theoretically secret, and (b) an eavesdropper on the
// quantum link is *detected* (disturbance raises the qubit error rate
// above threshold) rather than merely resisted. We simulate exactly that
// interface, with a configurable key rate — QKD's practical weakness
// (§3.2: "specialized infrastructure... engineering challenges") shows up
// as a hard budget of pad bytes per epoch.
//
// Frames are OTP-encrypted and authenticated with a Wegman–Carter
// one-time MAC (polynomial universal hash over GF(2^64), tag masked by
// fresh pad) — authentication is information-theoretic too.
#pragma once

#include "channel/channel.h"
#include "util/rng.h"

namespace aegis {

/// One endpoint of a QKD-keyed OTP channel.
class QkdChannel final : public Channel {
 public:
  /// Establishes a pair sharing `key_budget` bytes of QKD-derived pad.
  /// If `eavesdropper_present`, the quantum-bit error rate check fails
  /// with probability 1 - 0.75^sample_bits (intercept-resend raises QBER
  /// to 25%); on detection the endpoints refuse to come up and this
  /// returns {nullptr, nullptr, true}.
  struct Result {
    std::unique_ptr<QkdChannel> left, right;
    bool eavesdropper_detected = false;
  };
  static Result establish(std::size_t key_budget, Rng& rng,
                          bool eavesdropper_present = false,
                          unsigned sample_bits = 128);

  /// Remaining pad bytes (each sealed byte consumes pad; each frame also
  /// consumes 24 bytes of MAC keying).
  std::size_t pad_remaining() const { return pad_.size() - pad_pos_; }

  /// Throws UnrecoverableError when the pad budget is exhausted — the
  /// paper's "QKD key rate" constraint surfacing as a hard error.
  Bytes seal(ByteView plaintext) override;
  Bytes open(ByteView frame) override;

  SecurityClass security() const override {
    return SecurityClass::kInformationTheoretic;
  }
  SchemeId key_agreement_scheme() const override {
    return SchemeId::kOneTimePad;  // ITS; never breaks
  }
  SchemeId cipher_scheme() const override { return SchemeId::kOneTimePad; }

 private:
  explicit QkdChannel(SecureBytes pad);

  /// Consumes n pad bytes (both endpoints stay in lockstep because every
  /// seal has a matching open).
  SecureBytes take_pad(std::size_t n);

  SecureBytes pad_;
  std::size_t pad_pos_ = 0;
};

}  // namespace aegis
