// Bounded Storage Model key agreement (Maurer '92), the paper's §4
// alternative to QKD for information-theoretic channels.
//
// A public beacon broadcasts a huge random stream. Honest parties each
// sample a small random subset of positions *while the stream flies by*;
// afterwards they reveal their position sets, intersect them, and distil
// a key from the words both captured. An adversary whose storage is
// bounded below the stream size must drop most of the stream, so with
// high probability it misses at least one intersection word — and a
// min-entropy extractor then makes the key statistically uniform from
// its point of view. Security is *unconditional given the storage bound*:
// nothing here ever "breaks" by cryptanalysis.
//
// The paper asks for a practical re-evaluation of the BSM; bench/bsm
// measures agreement rate, key material per GiB streamed, and adversary
// success probability as a function of the storage ratio.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace aegis {

/// Parameters of one BSM key-agreement run.
struct BsmParams {
  std::uint64_t stream_words = 1 << 20;  // beacon length (8-byte words)
  unsigned samples_per_party = 4096;     // positions each party stores
  std::uint64_t adversary_words = 1 << 19;  // adversary storage bound
  std::size_t key_bytes = 32;            // desired key length
};

/// Outcome of a run.
struct BsmResult {
  bool agreed = false;            // parties derived a key
  SecureBytes key;                // the agreed key (empty if !agreed)
  unsigned intersection_size = 0; // words both parties captured
  unsigned adversary_known = 0;   // of those, words the adversary stored
  bool adversary_has_key = false; // true iff it captured ALL of them
  std::uint64_t bytes_streamed = 0;
};

/// How the bounded adversary spends its storage.
enum class BsmAdversaryStrategy {
  kPrefix,  // store the first C words of the stream
  kRandom,  // store C uniformly random positions
};

/// Executes one key agreement against a bounded-storage eavesdropper.
/// The beacon stream is generated on the fly and never materialized (the
/// whole point is that nobody can hold it).
BsmResult bsm_key_agreement(const BsmParams& params,
                            BsmAdversaryStrategy strategy, Rng& rng);

/// Analytic success probability for the random-sampling adversary:
/// P(adversary knows all m intersection words) = (C/N)^m in expectation
/// over positions. Used by the bench to cross-check the simulation.
double bsm_adversary_success_probability(double storage_ratio,
                                         unsigned intersection_size);

}  // namespace aegis
