// Shared one-time-pad frame format for ITS channels (QKD- and BSM-keyed):
// length-prefixed OTP ciphertext plus a Wegman-Carter one-time MAC
// (polynomial hash over GF(2^64), tag masked with fresh pad).
//
// Pad discipline is the caller's job: every frame consumes
// |plaintext| + kMacPadSize bytes of pad on BOTH endpoints, in lockstep.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace aegis {

constexpr std::size_t kOtpMacPadSize = 24;  // r, s, spare

/// Builds a frame: OTP-encrypts `plaintext` with `body_pad` and tags it
/// with the one-time MAC keys in `mac_pad` (kOtpMacPadSize bytes).
Bytes otp_seal_frame(ByteView plaintext, ByteView body_pad,
                     ByteView mac_pad);

/// Parsed frame: ciphertext + tag.
struct OtpFrame {
  Bytes ct;
  std::uint64_t tag = 0;
};

/// Parses a frame (throws ParseError on malformed input).
OtpFrame otp_parse_frame(ByteView frame);

/// Verifies the one-time MAC.
bool otp_check_tag(ByteView ct, std::uint64_t tag, ByteView mac_pad);

}  // namespace aegis
