// Merkle hash trees over SHA-256, with membership proofs.
//
// The archive's bulk-integrity workhorse: one root authenticates a whole
// batch of objects/shares, and per-object proofs are logarithmic. Leaves
// and internal nodes use domain-separated hashing (0x00 / 0x01 prefixes)
// so a leaf can never be confused with a node — the classic
// second-preimage defence.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace aegis {

/// Immutable Merkle tree built over a list of leaf payloads.
class MerkleTree {
 public:
  /// Builds the tree; O(n) hashes. Throws InvalidArgument on empty input.
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  /// The 32-byte root.
  const Bytes& root() const { return levels_.back()[0]; }

  std::size_t leaf_count() const { return levels_[0].size(); }

  /// Membership proof for leaf i. Each step records the sibling hash and
  /// which side it sits on; levels where the node was promoted (odd tail)
  /// contribute no step. Directions are data, not trust: a tampered
  /// direction simply fails the root comparison.
  struct Proof {
    struct Step {
      bool sibling_on_left = false;
      Bytes hash;
    };
    std::size_t leaf_index = 0;
    std::vector<Step> steps;  // bottom-up
  };

  Proof prove(std::size_t leaf_index) const;

  /// Verifies that `leaf_data` is the proof's leaf under `root`.
  static bool verify(ByteView root, ByteView leaf_data, const Proof& proof);

 private:
  // levels_[0] = leaf hashes, levels_.back() = {root}. An odd node at the
  // end of a level is promoted unchanged (Bitcoin-style duplication is
  // avoided deliberately: promotion has no second-preimage quirk).
  std::vector<std::vector<Bytes>> levels_;
};

}  // namespace aegis
