#include "integrity/notary.h"

#include <algorithm>

#include "util/error.h"

namespace aegis {

NotaryService::NotaryService(TimestampAuthority& tsa,
                             const SchemeRegistry& registry, Rng& rng,
                             std::vector<SchemeId> ladder)
    : tsa_(tsa), registry_(registry), rng_(rng), ladder_(std::move(ladder)) {
  if (ladder_.empty())
    throw InvalidArgument("NotaryService: empty generation ladder");
  for (SchemeId s : ladder_) {
    if (scheme_info(s).kind != SchemeKind::kSignature)
      throw InvalidArgument("NotaryService: ladder entry is not a signature");
  }
}

void NotaryService::watch(TimestampChain* chain) {
  if (chain == nullptr)
    throw InvalidArgument("NotaryService: null chain");
  if (std::find(chains_.begin(), chains_.end(), chain) == chains_.end())
    chains_.push_back(chain);
}

bool NotaryService::needs_renewal(const TimestampChain& chain,
                                  const SchemeRegistry& registry, Epoch now,
                                  Epoch lead) {
  if (chain.links().empty()) return false;
  const SchemeId head = chain.links().back().sig_scheme;
  const auto b = registry.break_epoch(head);
  // Saturating horizon: now + lead.
  const Epoch horizon = now > kNever - lead ? kNever : now + lead;
  return b.has_value() && *b <= horizon;
}

unsigned NotaryService::tick(Epoch now, Epoch lead) {
  const Epoch horizon = now > kNever - lead ? kNever : now + lead;

  // Does anything actually need renewing? (Rotating the TSA for no
  // reason would churn keys.)
  bool any_due = false;
  for (const TimestampChain* c : chains_)
    any_due = any_due || needs_renewal(*c, registry_, now, lead);
  if (!any_due) return 0;

  // Make sure the TSA's generation survives past the horizon; climb the
  // ladder to the first generation that does.
  const auto current_break = registry_.break_epoch(tsa_.generation());
  if (current_break && *current_break <= horizon) {
    bool rotated = false;
    for (SchemeId gen : ladder_) {
      const auto b = registry_.break_epoch(gen);
      if (!b || *b > horizon) {
        tsa_.rotate(gen, rng_);
        rotated = true;
        break;
      }
    }
    if (!rotated)
      throw IntegrityError(
          "NotaryService: every generation on the ladder breaks within "
          "the horizon — no safe scheme to renew onto");
  }

  unsigned renewed = 0;
  for (TimestampChain* c : chains_) {
    if (needs_renewal(*c, registry_, now, lead)) {
      c->renew(tsa_, now);
      ++renewed;
    }
  }
  return renewed;
}

}  // namespace aegis
