#include "integrity/merkle.h"

#include "crypto/sha256.h"
#include "util/error.h"

namespace aegis {

namespace {
const std::uint8_t kLeafTag = 0x00;
const std::uint8_t kNodeTag = 0x01;

Bytes leaf_hash(ByteView data) {
  return Sha256::hash_concat({ByteView(&kLeafTag, 1), data});
}

Bytes node_hash(ByteView l, ByteView r) {
  return Sha256::hash_concat({ByteView(&kNodeTag, 1), l, r});
}
}  // namespace

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves) {
  if (leaves.empty())
    throw InvalidArgument("MerkleTree: need at least one leaf");

  std::vector<Bytes> level;
  level.reserve(leaves.size());
  for (const Bytes& l : leaves) level.push_back(leaf_hash(l));
  levels_.push_back(std::move(level));

  while (levels_.back().size() > 1) {
    const std::vector<Bytes>& prev = levels_.back();
    std::vector<Bytes> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2)
      next.push_back(node_hash(prev[i], prev[i + 1]));
    if (prev.size() % 2 == 1) next.push_back(prev.back());  // promote
    levels_.push_back(std::move(next));
  }
}

MerkleTree::Proof MerkleTree::prove(std::size_t leaf_index) const {
  if (leaf_index >= levels_[0].size())
    throw InvalidArgument("MerkleTree::prove: leaf index out of range");
  Proof p;
  p.leaf_index = leaf_index;
  std::size_t idx = leaf_index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& nodes = levels_[lvl];
    const std::size_t sib = idx ^ 1;
    if (sib < nodes.size()) {
      p.steps.push_back({/*sibling_on_left=*/idx % 2 == 1, nodes[sib]});
    }
    // A promoted node (odd tail) has no sibling at this level and keeps
    // its "last element" position, which is exactly idx/2 one level up.
    idx /= 2;
  }
  return p;
}

bool MerkleTree::verify(ByteView root, ByteView leaf_data,
                        const Proof& proof) {
  Bytes acc = leaf_hash(leaf_data);
  for (const Proof::Step& step : proof.steps) {
    acc = step.sibling_on_left ? node_hash(step.hash, acc)
                               : node_hash(acc, step.hash);
  }
  return ct_equal(acc, root);
}

}  // namespace aegis
