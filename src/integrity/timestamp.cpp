#include "integrity/timestamp.h"

#include "crypto/sha256.h"
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

Bytes TimestampLink::serialize_unsigned() const {
  ByteWriter w;
  w.u32(epoch);
  w.bytes(payload);
  w.u16(static_cast<std::uint16_t>(digest_scheme));
  w.bytes(prev_hash);
  w.u16(static_cast<std::uint16_t>(sig_scheme));
  w.bytes(signer_pub);
  return std::move(w).take();
}

Bytes TimestampLink::serialize() const {
  ByteWriter w;
  w.raw(serialize_unsigned());
  w.bytes(signature);
  return std::move(w).take();
}

TimestampLink TimestampLink::deserialize(ByteView wire) {
  ByteReader r(wire);
  TimestampLink l;
  l.epoch = r.u32();
  l.payload = r.bytes();
  l.digest_scheme = static_cast<SchemeId>(r.u16());
  l.prev_hash = r.bytes();
  l.sig_scheme = static_cast<SchemeId>(r.u16());
  l.signer_pub = r.bytes();
  l.signature = r.bytes();
  r.expect_done();
  return l;
}

Bytes TimestampLink::link_hash() const { return Sha256::hash(serialize()); }

TimestampAuthority::TimestampAuthority(Rng& rng, SchemeId generation)
    : generation_(generation), key_(schnorr_keygen(rng)) {
  if (scheme_info(generation).kind != SchemeKind::kSignature)
    throw InvalidArgument("TimestampAuthority: not a signature scheme");
}

void TimestampAuthority::rotate(SchemeId new_generation, Rng& rng) {
  if (scheme_info(new_generation).kind != SchemeKind::kSignature)
    throw InvalidArgument("TimestampAuthority: not a signature scheme");
  generation_ = new_generation;
  key_ = schnorr_keygen(rng);
}

TimestampLink TimestampAuthority::stamp(ByteView payload,
                                        SchemeId digest_scheme,
                                        ByteView prev_hash, Epoch now) const {
  TimestampLink l;
  l.epoch = now;
  l.payload = to_bytes(payload);
  l.digest_scheme = digest_scheme;
  l.prev_hash = to_bytes(prev_hash);
  l.sig_scheme = generation_;
  l.signer_pub = key_.public_key;
  l.signature = schnorr_sign(key_, l.serialize_unsigned()).bytes;
  return l;
}

const char* to_string(ChainStatus s) {
  switch (s) {
    case ChainStatus::kValid: return "valid";
    case ChainStatus::kBadSignature: return "bad-signature";
    case ChainStatus::kBrokenChainLink: return "broken-chain-link";
    case ChainStatus::kExpiredGuarantee: return "expired-guarantee";
    case ChainStatus::kEmpty: return "empty";
  }
  return "?";
}

TimestampChain TimestampChain::begin(const TimestampAuthority& tsa,
                                     ByteView payload,
                                     SchemeId digest_scheme, Epoch now) {
  TimestampChain c;
  c.links_.push_back(tsa.stamp(payload, digest_scheme, {}, now));
  return c;
}

void TimestampChain::renew(const TimestampAuthority& tsa, Epoch now) {
  if (links_.empty())
    throw InvalidArgument("TimestampChain::renew: empty chain");
  const TimestampLink& head = links_.back();
  // The renewal stamps the hash of the entire previous link — signature
  // included — so the old signature's validity is preserved by the new
  // one (the Haber–Stornetta argument).
  links_.push_back(
      tsa.stamp(head.payload, head.digest_scheme, head.link_hash(), now));
}

ChainStatus TimestampChain::verify(ByteView payload,
                                   const SchemeRegistry& registry,
                                   Epoch now) const {
  if (links_.empty()) return ChainStatus::kEmpty;

  for (std::size_t i = 0; i < links_.size(); ++i) {
    const TimestampLink& l = links_[i];

    // Payload continuity: every link stamps the same payload.
    if (!ct_equal(l.payload, payload)) return ChainStatus::kBrokenChainLink;

    // Hash linkage.
    if (i == 0) {
      if (!l.prev_hash.empty()) return ChainStatus::kBrokenChainLink;
    } else {
      if (!ct_equal(l.prev_hash, links_[i - 1].link_hash()))
        return ChainStatus::kBrokenChainLink;
    }

    // Cryptographic signature check.
    SchnorrSignature sig;
    sig.bytes = l.signature;
    if (!schnorr_verify(l.signer_pub, l.serialize_unsigned(), sig))
      return ChainStatus::kBadSignature;

    // Temporal rule: the link's scheme must have been unbroken when the
    // *next* guarantee took over (or now, for the head).
    const Epoch must_hold_until =
        i + 1 < links_.size() ? links_[i + 1].epoch : now;
    if (registry.is_broken(l.sig_scheme, must_hold_until))
      return ChainStatus::kExpiredGuarantee;
  }
  return ChainStatus::kValid;
}

Bytes TimestampChain::serialize() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(links_.size()));
  for (const TimestampLink& l : links_) w.bytes(l.serialize());
  return std::move(w).take();
}

TimestampChain TimestampChain::deserialize(ByteView wire) {
  ByteReader r(wire);
  TimestampChain c;
  const std::uint32_t count = r.count(4);
  c.links_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i)
    c.links_.push_back(TimestampLink::deserialize(r.bytes()));
  r.expect_done();
  return c;
}

bool TimestampChain::leaks_content_on_digest_break() const {
  return !links_.empty() &&
         links_[0].digest_scheme != SchemeId::kPedersenCommit;
}

CommittedStamp commit_and_stamp(const TimestampAuthority& tsa, ByteView data,
                                Epoch now, Rng& rng) {
  CommittedStamp out;
  out.commitment = pedersen_commit_bytes(data, rng, out.opening);
  out.chain = TimestampChain::begin(tsa, out.commitment.encode(),
                                    SchemeId::kPedersenCommit, now);
  return out;
}

bool verify_committed_stamp(const CommittedStamp& stamp, ByteView data,
                            const SchemeRegistry& registry, Epoch now) {
  if (stamp.chain.verify(stamp.commitment.encode(), registry, now) !=
      ChainStatus::kValid)
    return false;
  return pedersen_verify_bytes(stamp.commitment, data, stamp.opening.blind);
}

}  // namespace aegis
