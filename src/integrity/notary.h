// The notary: a long-term evidence service that keeps timestamp chains
// alive across signature-scheme generations.
//
// §3.3's renewal rule is unforgiving — a chain whose scheme breaks
// before its next renewal is dead forever. Real archives therefore need
// an *automated* service that (a) tracks the (announced) cryptanalytic
// weather, (b) rotates the timestamp authority onto the next scheme
// generation before the current one falls, and (c) re-stamps every
// registered chain in time. LINCOS calls this role the evidence
// service; this is that component.
//
// Break schedules here are the SchemeRegistry's — in reality "announced
// deprecation dates" (think SHA-1, 2017): the notary renews `lead`
// epochs before the scheduled fall, mirroring how standards bodies
// deprecate ahead of practical breaks.
#pragma once

#include <vector>

#include "integrity/timestamp.h"
#include "util/rng.h"

namespace aegis {

/// Watches chains and renews them ahead of scheme breaks.
class NotaryService {
 public:
  /// `ladder` is the rotation order of signature generations; the
  /// notary starts the TSA on ladder.front() if it differs.
  NotaryService(TimestampAuthority& tsa, const SchemeRegistry& registry,
                Rng& rng,
                std::vector<SchemeId> ladder = {SchemeId::kSigGenA,
                                                SchemeId::kSigGenB,
                                                SchemeId::kSigGenC});

  /// Registers a chain for care (non-owning; caller keeps it alive).
  void watch(TimestampChain* chain);

  std::size_t watched() const { return chains_.size(); }

  /// True if this chain's head guarantee falls within `lead` epochs.
  static bool needs_renewal(const TimestampChain& chain,
                            const SchemeRegistry& registry, Epoch now,
                            Epoch lead);

  /// One epoch of service: rotates the TSA if its generation is due to
  /// break within `lead` epochs (to the first ladder entry that is not),
  /// then renews every watched chain whose head needs it. Returns the
  /// number of chains renewed. Throws IntegrityError if no unbroken
  /// generation remains on the ladder when one is needed.
  unsigned tick(Epoch now, Epoch lead = 2);

 private:
  TimestampAuthority& tsa_;
  const SchemeRegistry& registry_;
  Rng& rng_;
  std::vector<SchemeId> ladder_;
  std::vector<TimestampChain*> chains_;
};

}  // namespace aegis
