// Long-term integrity via chained digital timestamps (Haber–Stornetta),
// with the LINCOS twist: confidentiality-preserving chains stamp a
// Pedersen commitment instead of a plaintext hash.
//
// The paper's §3.3 argument, made executable:
//   * a single signature is only computationally secure — it falls when
//     its scheme's break epoch arrives;
//   * but a *chain* survives: signing the old link with a newer scheme
//     preserves integrity as long as each link was renewed before its
//     own scheme broke. Verification below enforces exactly that
//     temporal rule against a SchemeRegistry timeline.
//   * stamping H(data) leaks data to an adversary who later inverts the
//     hash (HNDL on the integrity metadata!); stamping a Pedersen
//     commitment leaks nothing, information-theoretically.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/pedersen.h"
#include "crypto/scheme.h"
#include "crypto/schnorr.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace aegis {

/// One link in a timestamp chain.
struct TimestampLink {
  Epoch epoch = 0;          // when the TSA issued this link
  Bytes payload;            // digest or commitment being stamped
  SchemeId digest_scheme =  // what `payload` is
      SchemeId::kSha256;    //   kSha256 (leaky) or kPedersenCommit (hiding)
  Bytes prev_hash;          // SHA-256 of the previous link (empty in link 0)
  SchemeId sig_scheme = SchemeId::kSigGenA;  // signature generation
  Bytes signer_pub;
  Bytes signature;          // Schnorr over serialize_unsigned()

  Bytes serialize_unsigned() const;
  Bytes serialize() const;
  static TimestampLink deserialize(ByteView wire);

  /// SHA-256 of the full serialized link (what the next link stamps).
  Bytes link_hash() const;
};

/// A timestamping authority holding the current signing key; keys rotate
/// to a new scheme generation when the old one nears obsolescence.
class TimestampAuthority {
 public:
  explicit TimestampAuthority(Rng& rng,
                              SchemeId generation = SchemeId::kSigGenA);

  /// Rotates to a fresh key under a (presumably newer) scheme generation.
  void rotate(SchemeId new_generation, Rng& rng);

  SchemeId generation() const { return generation_; }
  const Bytes& public_key() const { return key_.public_key; }

  /// Issues a signed link over (payload, prev_hash) at `now`.
  TimestampLink stamp(ByteView payload, SchemeId digest_scheme,
                      ByteView prev_hash, Epoch now) const;

 private:
  SchemeId generation_;
  SchnorrKeyPair key_;
};

/// Verification verdict for a chain at a given evaluation time.
enum class ChainStatus {
  kValid,
  kBadSignature,       // cryptographic verification failed outright
  kBrokenChainLink,    // prev_hash mismatch
  kExpiredGuarantee,   // a link's scheme broke before it was renewed
  kEmpty,
};

const char* to_string(ChainStatus s);

/// A renewal chain over one stamped payload.
class TimestampChain {
 public:
  TimestampChain() = default;

  /// Starts a chain by stamping `payload` (a digest or a commitment).
  static TimestampChain begin(const TimestampAuthority& tsa,
                              ByteView payload, SchemeId digest_scheme,
                              Epoch now);

  /// Renews: the TSA re-stamps the head link (old signature included)
  /// with its current key/generation.
  void renew(const TimestampAuthority& tsa, Epoch now);

  /// Verifies the whole chain against a break timeline:
  ///   * every signature must verify,
  ///   * every prev_hash must match,
  ///   * link i's signature generation must be unbroken at the epoch of
  ///     link i+1 (it was renewed in time), and the head's at `now`.
  ChainStatus verify(ByteView payload, const SchemeRegistry& registry,
                     Epoch now) const;

  const std::vector<TimestampLink>& links() const { return links_; }
  std::size_t length() const { return links_.size(); }

  /// Wire format for catalog persistence.
  Bytes serialize() const;
  static TimestampChain deserialize(ByteView wire);

  /// True if the chain's stamped payload would reveal object content to
  /// an adversary once `digest_scheme` breaks (hash chains do; Pedersen
  /// chains never do — §3.3's confidentiality observation).
  bool leaks_content_on_digest_break() const;

 private:
  std::vector<TimestampLink> links_;
};

/// Convenience bundle for the LINCOS pattern: commit to the data, stamp
/// the commitment, keep the opening private.
struct CommittedStamp {
  PedersenCommitment commitment;
  PedersenOpening opening;  // secret: stays with the data owner
  TimestampChain chain;
};

/// Commits to `data` and starts a hiding timestamp chain over it.
CommittedStamp commit_and_stamp(const TimestampAuthority& tsa, ByteView data,
                                Epoch now, Rng& rng);

/// Full LINCOS verification: the chain is temporally valid AND the
/// commitment opens to `data`.
bool verify_committed_stamp(const CommittedStamp& stamp, ByteView data,
                            const SchemeRegistry& registry, Epoch now);

}  // namespace aegis
