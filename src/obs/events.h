// Structured event bus: typed, subscriber-driven notifications from the
// archive's control loops, transport layer and fault substrate.
//
// Events are the causal record a metrics counter can't carry: *which*
// node was quarantined, *which* object exhausted its retries, *what*
// fault the injector fired. Chaos tests subscribe and assert on observed
// causality ("the forced outage produced the matching NodeQuarantined");
// operators would ship the same stream to a log pipeline.
//
// Threading contract: the bus is written from the simulation's control
// plane, which is single-threaded by the Cluster's own contract (the
// shard ThreadPool only ever runs pure compute). publish/subscribe are
// therefore unsynchronized and deterministic — same seed, same event
// sequence. Re-entrancy IS supported: a subscriber may subscribe or
// unsubscribe (itself included) during dispatch; subscribers added
// mid-dispatch first see the *next* event.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "crypto/scheme.h"  // Epoch
#include "util/error.h"

namespace aegis {

// Matches node/node.h (obs sits below the node layer; re-declaring the
// identical aliases keeps the dependency arrow pointing one way).
using NodeId = std::uint32_t;
using ObjectId = std::string;

// ---- event payloads ------------------------------------------------------

/// A shard landed on its home node.
struct ShardWritten {
  ObjectId object;
  std::uint32_t shard = 0;
  NodeId node = 0;
  std::uint64_t bytes = 0;
};

/// A shard write was abandoned after the retry budget.
struct ShardWriteFailed {
  ObjectId object;
  std::uint32_t shard = 0;
  NodeId node = 0;
  std::string status;  // to_string(TransferStatus)
};

/// A bounded-retry loop used every attempt and still failed.
struct RetryExhausted {
  std::string op;  // "upload" | "download"
  ObjectId object;
  NodeId node = 0;
  unsigned attempts = 0;
  std::string status;  // final to_string(TransferStatus)
};

/// The circuit breaker opened on a node.
struct NodeQuarantined {
  NodeId node = 0;
  Epoch until = 0;  // breaker re-probes at this epoch
  unsigned consecutive_failures = 0;
};

/// An administrator (or test) attested a node healthy again.
struct NodeRestored {
  NodeId node = 0;
};

/// An object's timestamp chain was extended under a fresh TSA key.
struct ChainRenewed {
  ObjectId object;
  std::size_t links = 0;  // chain length after renewal
};

/// repair() rewrote shards on their home nodes.
struct RepairCompleted {
  ObjectId object;
  unsigned shards_rewritten = 0;
};

/// One full scrub pass ended.
struct ScrubCompleted {
  unsigned objects = 0;
  unsigned shards_repaired = 0;
  unsigned unrecoverable = 0;
};

/// The FaultInjector fired one fault (kind = to_string(FaultEvent::Kind)).
struct FaultInjected {
  std::string kind;
  NodeId node = 0;
  std::uint64_t detail = 0;
};

/// A public archive operation threw; `code` classifies why.
struct OperationFailed {
  std::string op;  // e.g. "archive.put"
  ObjectId object;
  ErrorCode code = ErrorCode::kUnknown;
};

/// One synchronous round of a distributed protocol (PSS/VSR) completed.
struct ProtocolRound {
  std::string protocol;  // "pss" | "vsr"
  std::string round;     // "deal" | "accuse" | "finalize" | ...
  std::uint64_t messages = 0;  // bus messages this round
  std::uint64_t bytes = 0;
  unsigned accused = 0;  // dealers accused so far
};

/// The cluster's epoch clock ticked.
struct EpochAdvanced {
  unsigned online_nodes = 0;
};

/// The MigrationEngine committed one object to its new generation.
struct MigrationProgress {
  std::string op;  // "reencrypt" | "rewrap" | "renew_timestamps"
  ObjectId object;
  std::uint64_t objects_done = 0;
  std::uint64_t objects_total = 0;  // manifests when the migration started
  std::uint64_t bytes_moved = 0;    // cumulative migration payload bytes
};

/// The MigrationEngine's durable cursor advanced to a step boundary —
/// the point a crashed run resumes from.
struct MigrationCheckpoint {
  std::string op;
  ObjectId cursor;  // last object id committed or skipped
  std::uint64_t objects_done = 0;
  std::uint64_t objects_skipped = 0;
  bool complete = false;
};

/// The doctor's alert engine found a threshold rule newly firing.
struct AlertRaised {
  std::string rule;    // rule name, e.g. "scrub-corruption"
  std::string metric;  // the metric (or summed metrics) evaluated
  double value = 0;    // observed value (level or per-window delta)
  double threshold = 0;
};

/// A previously raised alert rule fell back under its threshold.
struct AlertCleared {
  std::string rule;
  std::string metric;
  double value = 0;
  double threshold = 0;
};

using EventPayload =
    std::variant<ShardWritten, ShardWriteFailed, RetryExhausted,
                 NodeQuarantined, NodeRestored, ChainRenewed, RepairCompleted,
                 ScrubCompleted, FaultInjected, OperationFailed, ProtocolRound,
                 EpochAdvanced, MigrationProgress, MigrationCheckpoint,
                 AlertRaised, AlertCleared>;

/// Order matches the EventPayload alternatives exactly.
enum class EventKind : std::uint8_t {
  kShardWritten = 0,
  kShardWriteFailed,
  kRetryExhausted,
  kNodeQuarantined,
  kNodeRestored,
  kChainRenewed,
  kRepairCompleted,
  kScrubCompleted,
  kFaultInjected,
  kOperationFailed,
  kProtocolRound,
  kEpochAdvanced,
  kMigrationProgress,
  kMigrationCheckpoint,
  kAlertRaised,
  kAlertCleared,
};

inline constexpr std::size_t kEventKindCount =
    std::variant_size_v<EventPayload>;

const char* to_string(EventKind k);

/// One published event: payload plus delivery metadata.
struct Event {
  std::uint64_t seq = 0;  // monotonically increasing per bus
  Epoch epoch = 0;        // cluster virtual time at publication
  EventPayload payload;

  EventKind kind() const { return static_cast<EventKind>(payload.index()); }
};

class EventBus {
 public:
  using SubscriberId = std::uint64_t;
  using Callback = std::function<void(const Event&)>;

  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Registers a callback for every event. Safe during dispatch (the new
  /// subscriber first sees the next event).
  SubscriberId subscribe(Callback fn);

  /// Registers a callback for one payload type only.
  template <class T>
  SubscriberId subscribe_to(std::function<void(const T&, const Event&)> fn) {
    return subscribe([fn = std::move(fn)](const Event& e) {
      if (const T* p = std::get_if<T>(&e.payload)) fn(*p, e);
    });
  }

  /// Idempotent; safe during dispatch (an unsubscribed callback not yet
  /// invoked for the in-flight event is skipped).
  void unsubscribe(SubscriberId id);

  /// Stamps seq + epoch, counts, and dispatches to live subscribers in
  /// subscription order.
  void publish(Epoch epoch, EventPayload payload);

  /// Events published so far of one kind / in total (counted whether or
  /// not anyone subscribes).
  std::uint64_t count(EventKind k) const;
  std::uint64_t total() const { return next_seq_; }

  std::size_t subscriber_count() const;

 private:
  struct Subscriber {
    SubscriberId id = 0;
    Callback fn;
    bool alive = true;
  };

  void compact();

  // Deque: push_back during dispatch must not invalidate the reference
  // to the callback currently executing.
  std::deque<Subscriber> subscribers_;
  unsigned dispatch_depth_ = 0;
  bool needs_compaction_ = false;
  SubscriberId next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t counts_[kEventKindCount] = {};
};

}  // namespace aegis
