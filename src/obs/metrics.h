// Metrics registry: named counters, gauges and fixed-bucket latency
// histograms for the archive's control loops and hot paths.
//
// Contract:
//   * The increment fast path is lock-free (std::atomic, relaxed): a
//     Counter/Gauge/Histogram reference obtained once can be hammered
//     from any thread (the shard ThreadPool included) with no contention
//     beyond the cache line.
//   * Registration/lookup by name takes a mutex — hot call sites hold
//     the returned reference instead of re-looking-up per event.
//   * References returned by the registry stay valid for the registry's
//     lifetime (node-stable storage underneath).
//   * Naming convention: `layer.op.metric` (e.g. archive.put.retries,
//     cluster.transfer.ms, protocol.pss.rounds) — lowercase, dot-
//     separated, [a-z0-9._] only; enforced at registration.
//   * snapshot() exports every metric; MetricsSnapshot::to_json_lines()
//     renders them in the repo's BENCH_*.json one-object-per-line shape
//     (print each prefixed "JSON " and scrape with grep, as the benches
//     do).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.h"

namespace aegis {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time level (queue depth, epoch, online nodes).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges,
/// with an implicit +inf overflow bucket. Observations and the running
/// sum are atomic; bucket layout never changes after construction.
/// (Fully inline so util-layer code — the ThreadPool — can hold a handle
/// without a link-time dependency on the obs library.)
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);  // inline below

  void observe(double v) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // No fetch_add for atomic<double> pre-C++20: CAS loop.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<std::uint64_t> buckets() const;

  /// Millisecond-scale latency edges used when no bounds are supplied.
  static std::vector<double> default_latency_bounds_ms() {
    return {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000};
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One exported metric value (flattened for JSON rendering).
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    std::string type;  // "counter" | "gauge" | "histogram"
    double value = 0;  // counter/gauge value; histogram observation count
    // Histogram-only:
    double sum = 0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
  };
  std::vector<Entry> entries;  // sorted by name

  /// nullptr when absent.
  const Entry* find(const std::string& name) const;

  /// One JSON object per metric:
  ///   {"bench":"<bench>","metric":"...","type":"counter","value":12}
  /// histograms add "sum" and "buckets":[{"le":5,"n":3},..,{"le":"inf",..}].
  std::vector<std::string> to_json_lines(
      const std::string& bench = "metrics") const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. Throws InvalidArgument on a malformed name or a
  /// name already registered as a different metric type. (Inline below —
  /// like the fast paths, so util-layer code can register without a
  /// link-time dependency on the obs library.)
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first registration (empty = the default
  /// millisecond latency edges).
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;

 private:
  void check_name(const std::string& name) const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// ---- inline definitions (registration path) ------------------------------

inline Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds_ms();
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw InvalidArgument("Histogram: bucket bounds must be strictly ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

inline void MetricsRegistry::check_name(const std::string& name) const {
  if (name.empty() || name.front() == '.' || name.back() == '.')
    throw InvalidArgument("MetricsRegistry: bad metric name '" + name + "'");
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_';
    if (!ok)
      throw InvalidArgument("MetricsRegistry: bad metric name '" + name + "'");
  }
}

inline Counter& MetricsRegistry::counter(const std::string& name) {
  check_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) || histograms_.count(name))
    throw InvalidArgument("MetricsRegistry: '" + name +
                          "' already registered as another type");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

inline Gauge& MetricsRegistry::gauge(const std::string& name) {
  check_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || histograms_.count(name))
    throw InvalidArgument("MetricsRegistry: '" + name +
                          "' already registered as another type");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

inline Histogram& MetricsRegistry::histogram(const std::string& name,
                                             std::vector<double> bounds) {
  check_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) || gauges_.count(name))
    throw InvalidArgument("MetricsRegistry: '" + name +
                          "' already registered as another type");
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

}  // namespace aegis
