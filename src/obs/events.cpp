#include "obs/events.h"

#include <algorithm>

namespace aegis {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kShardWritten: return "shard-written";
    case EventKind::kShardWriteFailed: return "shard-write-failed";
    case EventKind::kRetryExhausted: return "retry-exhausted";
    case EventKind::kNodeQuarantined: return "node-quarantined";
    case EventKind::kNodeRestored: return "node-restored";
    case EventKind::kChainRenewed: return "chain-renewed";
    case EventKind::kRepairCompleted: return "repair-completed";
    case EventKind::kScrubCompleted: return "scrub-completed";
    case EventKind::kFaultInjected: return "fault-injected";
    case EventKind::kOperationFailed: return "operation-failed";
    case EventKind::kProtocolRound: return "protocol-round";
    case EventKind::kEpochAdvanced: return "epoch-advanced";
    case EventKind::kMigrationProgress: return "migration-progress";
    case EventKind::kMigrationCheckpoint: return "migration-checkpoint";
    case EventKind::kAlertRaised: return "alert-raised";
    case EventKind::kAlertCleared: return "alert-cleared";
  }
  return "?";
}

EventBus::SubscriberId EventBus::subscribe(Callback fn) {
  const SubscriberId id = next_id_++;
  subscribers_.push_back({id, std::move(fn), true});
  return id;
}

void EventBus::unsubscribe(SubscriberId id) {
  for (Subscriber& s : subscribers_) {
    if (s.id != id) continue;
    s.alive = false;
    needs_compaction_ = true;
    break;
  }
  if (dispatch_depth_ == 0) compact();
}

void EventBus::compact() {
  if (!needs_compaction_) return;
  subscribers_.erase(std::remove_if(subscribers_.begin(), subscribers_.end(),
                                    [](const Subscriber& s) {
                                      return !s.alive;
                                    }),
                     subscribers_.end());
  needs_compaction_ = false;
}

std::size_t EventBus::subscriber_count() const {
  std::size_t n = 0;
  for (const Subscriber& s : subscribers_) n += s.alive;
  return n;
}

void EventBus::publish(Epoch epoch, EventPayload payload) {
  Event event;
  event.seq = next_seq_++;
  event.epoch = epoch;
  event.payload = std::move(payload);
  ++counts_[event.payload.index()];

  // Index-based iteration over a size snapshot: subscribers added during
  // dispatch (push_back may reallocate) are not invoked for this event,
  // and ones unsubscribed mid-dispatch are skipped. Compaction waits for
  // the outermost dispatch to unwind so indices stay stable.
  ++dispatch_depth_;
  const std::size_t snapshot = subscribers_.size();
  for (std::size_t i = 0; i < snapshot; ++i) {
    if (!subscribers_[i].alive) continue;
    subscribers_[i].fn(event);
  }
  if (--dispatch_depth_ == 0) compact();
}

std::uint64_t EventBus::count(EventKind k) const {
  return counts_[static_cast<std::size_t>(k)];
}

}  // namespace aegis
