#include "obs/trace.h"

#include <algorithm>

#include "util/error.h"

namespace aegis {

Tracer::Tracer(std::size_t capacity) {
  if (capacity == 0)
    throw InvalidArgument("Tracer: ring capacity must be >= 1");
  ring_.resize(capacity);
}

std::uint64_t Tracer::begin_span() {
  const std::uint64_t id = ++started_;  // span ids start at 1; 0 = no parent
  open_.push_back(id);
  return id;
}

void Tracer::end_span(SpanRecord rec) {
  // RAII guarantees LIFO completion within the (single) control thread.
  if (!open_.empty() && open_.back() == rec.id) open_.pop_back();
  rec.epoch_end = now();
  ring_[next_slot_] = std::move(rec);
  next_slot_ = (next_slot_ + 1) % ring_.size();
  ++finished_;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  const std::size_t have = std::min<std::size_t>(finished_, ring_.size());
  out.reserve(have);
  // Oldest surviving record sits at next_slot_ once the ring has wrapped.
  const std::size_t begin = finished_ > ring_.size() ? next_slot_ : 0;
  for (std::size_t i = 0; i < have; ++i)
    out.push_back(ring_[(begin + i) % ring_.size()]);
  return out;
}

TraceSpan::TraceSpan(Tracer& tracer, std::string name, SpanAttrs attrs)
    : tracer_(tracer), wall_begin_(std::chrono::steady_clock::now()) {
  rec_.parent = tracer_.current();
  rec_.depth = tracer_.open_depth();
  rec_.id = tracer_.begin_span();
  rec_.name = std::move(name);
  rec_.attrs = std::move(attrs);
  rec_.epoch_begin = tracer_.now();
}

void TraceSpan::annotate(std::string key, std::string value) {
  rec_.attrs.emplace_back(std::move(key), std::move(value));
}

TraceSpan::~TraceSpan() {
  rec_.wall_us = std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - wall_begin_)
                     .count();
  tracer_.end_span(std::move(rec_));
}

}  // namespace aegis
