#include "obs/audit.h"

#include <cstdio>
#include <utility>

#include "crypto/sha256.h"
#include "obs/export.h"  // json_escape
#include "util/error.h"
#include "util/serde.h"

namespace aegis {

namespace {

constexpr std::size_t kHashSize = Sha256::kDigestSize;

std::string num_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

Bytes AuditRecord::compute_hash() const {
  // Canonical serialization of exactly the bound fields (entry_hash
  // excluded — it IS the hash). Length prefixes from ByteWriter keep the
  // encoding injective: no two distinct field tuples share bytes.
  ByteWriter w;
  w.u64(seq);
  w.bytes(prev_hash);
  w.u32(epoch);
  w.str(op);
  w.str(object);
  w.str(outcome);
  return Sha256::hash(w.data());
}

std::string AuditRecord::to_json() const {
  return "{\"seq\":" + num_u64(seq) + ",\"epoch\":" + num_u64(epoch) +
         ",\"op\":\"" + json_escape(op) + "\",\"object\":\"" +
         json_escape(object) + "\",\"outcome\":\"" + json_escape(outcome) +
         "\",\"hash\":\"" + hex_encode(entry_hash) + "\"}";
}

const AuditRecord& AuditLedger::append(Epoch epoch, std::string op,
                                       std::string object,
                                       std::string outcome) {
  AuditRecord rec;
  rec.seq = records_.size();
  rec.prev_hash = head_;
  rec.epoch = epoch;
  rec.op = std::move(op);
  rec.object = std::move(object);
  rec.outcome = std::move(outcome);
  rec.entry_hash = rec.compute_hash();
  head_ = rec.entry_hash;
  records_.push_back(std::move(rec));
  return records_.back();
}

void AuditLedger::attach(EventBus& bus) {
  bus.subscribe([this](const Event& e) {
    switch (e.kind()) {
      case EventKind::kNodeQuarantined: {
        const auto& p = std::get<NodeQuarantined>(e.payload);
        append(e.epoch, "cluster.quarantine", "node:" + num_u64(p.node),
               "until:" + num_u64(p.until));
        break;
      }
      case EventKind::kNodeRestored: {
        const auto& p = std::get<NodeRestored>(e.payload);
        append(e.epoch, "cluster.restore", "node:" + num_u64(p.node), "ok");
        break;
      }
      case EventKind::kChainRenewed: {
        const auto& p = std::get<ChainRenewed>(e.payload);
        append(e.epoch, "archive.renew", p.object,
               "links:" + num_u64(p.links));
        break;
      }
      case EventKind::kRepairCompleted: {
        const auto& p = std::get<RepairCompleted>(e.payload);
        append(e.epoch, "archive.repair", p.object,
               "rewritten:" + num_u64(p.shards_rewritten));
        break;
      }
      case EventKind::kScrubCompleted: {
        const auto& p = std::get<ScrubCompleted>(e.payload);
        append(e.epoch, "archive.scrub", "",
               "objects:" + num_u64(p.objects) +
                   ",repaired:" + num_u64(p.shards_repaired) +
                   ",unrecoverable:" + num_u64(p.unrecoverable));
        break;
      }
      case EventKind::kOperationFailed: {
        const auto& p = std::get<OperationFailed>(e.payload);
        append(e.epoch, p.op, p.object,
               std::string("failed:") + to_string(p.code));
        break;
      }
      case EventKind::kMigrationProgress: {
        // The cipher-suite trail: one record per object committed to a
        // new generation under the run's stack.
        const auto& p = std::get<MigrationProgress>(e.payload);
        append(e.epoch, "archive.migrate." + p.op, p.object,
               "done:" + num_u64(p.objects_done) + "/" +
                   num_u64(p.objects_total));
        break;
      }
      case EventKind::kMigrationCheckpoint: {
        const auto& p = std::get<MigrationCheckpoint>(e.payload);
        append(e.epoch, "archive.migrate.checkpoint", p.cursor,
               std::string(p.complete ? "complete" : "partial") +
                   ",done:" + num_u64(p.objects_done));
        break;
      }
      case EventKind::kAlertRaised: {
        const auto& p = std::get<AlertRaised>(e.payload);
        append(e.epoch, "doctor.alert", p.rule, "raised");
        break;
      }
      case EventKind::kAlertCleared: {
        const auto& p = std::get<AlertCleared>(e.payload);
        append(e.epoch, "doctor.alert", p.rule, "cleared");
        break;
      }
      default:
        break;  // data-plane noise stays out of the ledger
    }
  });
}

ChainVerdict AuditLedger::verify_chain() const {
  ChainVerdict v;
  Bytes running(kHashSize, 0);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const AuditRecord& rec = records_[i];
    if (rec.seq != i) {
      return {false, i, "seq " + num_u64(rec.seq) + " at index " +
                            num_u64(i)};
    }
    if (rec.prev_hash != running)
      return {false, i, "prev_hash of record " + num_u64(i) +
                            " does not extend the chain"};
    if (rec.entry_hash != rec.compute_hash())
      return {false, i,
              "record " + num_u64(i) + " content does not match its hash"};
    running = rec.entry_hash;
  }
  if (head_ != running) {
    const std::uint64_t last =
        records_.empty() ? 0 : records_.size() - 1;
    return {false, last, "stored head does not match the recomputed chain"};
  }
  return v;
}

Bytes AuditLedger::serialize() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(records_.size()));
  for (const AuditRecord& rec : records_) {
    w.u64(rec.seq);
    w.bytes(rec.prev_hash);
    w.u32(rec.epoch);
    w.str(rec.op);
    w.str(rec.object);
    w.str(rec.outcome);
    w.bytes(rec.entry_hash);
  }
  w.bytes(head_);
  return std::move(w).take();
}

AuditLedger AuditLedger::deserialize(ByteView wire) {
  ByteReader r(wire);
  AuditLedger ledger;
  const std::uint32_t n = r.count(8 + 4 + kHashSize);
  ledger.records_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    AuditRecord rec;
    rec.seq = r.u64();
    rec.prev_hash = r.bytes();
    rec.epoch = r.u32();
    rec.op = r.str();
    rec.object = r.str();
    rec.outcome = r.str();
    rec.entry_hash = r.bytes();
    if (rec.prev_hash.size() != kHashSize ||
        rec.entry_hash.size() != kHashSize)
      throw ParseError("AuditLedger: hash field of record " + num_u64(i) +
                           " has the wrong width",
                       ErrorCode::kMalformedData);
    ledger.records_.push_back(std::move(rec));
  }
  ledger.head_ = r.bytes();
  if (ledger.head_.size() != kHashSize)
    throw ParseError("AuditLedger: head hash has the wrong width",
                     ErrorCode::kMalformedData);
  r.expect_done();
  return ledger;
}

}  // namespace aegis
