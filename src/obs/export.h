// Standard-format exporters for the observability planes.
//
// PR 3 built the in-process views (MetricsRegistry, Tracer); this file
// renders them in the two formats operators actually scrape:
//
//   * Prometheus text exposition (version 0.0.4) from a MetricsSnapshot.
//     Metric names mangle `layer.op.metric` -> `aegis_layer_op_metric`;
//     histograms render the canonical `_bucket{le="..."}` / `_sum` /
//     `_count` triple with CUMULATIVE bucket counts and a final
//     `le="+Inf"` bucket equal to `_count` (the registry stores
//     per-bucket counts; the exporter accumulates).
//   * Chrome trace-event JSON ("X" complete events) from the Tracer's
//     span ring, loadable in about://tracing or https://ui.perfetto.dev.
//     Timestamps are synthesized deterministically by laying the span
//     tree out as a bracket sequence (children in begin order, strictly
//     inside their parent, siblings disjoint), so Perfetto renders the
//     recorded nesting regardless of wall clock; the real clocks
//     (virtual epochs, wall-clock us) ride along in "args".
//
// Both renderers are pure functions of a snapshot — no registry locks
// held while formatting, and output for a given seed is byte-identical.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aegis {

/// `layer.op.metric` -> `aegis_layer_op_metric`. Registry names are
/// already [a-z0-9._]; dots become underscores and the `aegis_`
/// namespace prefix is added. A leading digit after the prefix is
/// impossible (names cannot start with '.'), so the result is always a
/// valid Prometheus metric name.
std::string prometheus_name(const std::string& metric);

/// Renders the whole snapshot in Prometheus text exposition format,
/// `# TYPE` comment per family, families in snapshot (name) order.
std::string to_prometheus(const MetricsSnapshot& snap);

/// Renders completed spans as a Chrome trace-event JSON array. Spans are
/// emitted oldest-first; `pid` is 1 and `tid` is 1 (one control plane).
std::string to_chrome_trace(const std::vector<SpanRecord>& spans);

/// Escapes a string for embedding in a JSON double-quoted literal
/// (backslash, quote, control characters). Shared by the exporters and
/// the audit ledger's JSON rendering.
std::string json_escape(const std::string& s);

}  // namespace aegis
