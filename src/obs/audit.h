// Tamper-evident audit ledger: the offline-verifiable record of who
// touched what, when, and with what outcome.
//
// The paper's threat model spans decades — long after the operators who
// ran a migration are gone, an auditor must still be able to establish
// that the archive's mutation history is intact (ArchiveSafeLT and
// LINCOS both make this trail central to long-term trust). Metrics and
// events are in-process views; the ledger is the durable one: an
// append-only sequence of records, each SHA-256 hash-chained to its
// predecessor, serializable as a single blob a client stores out of
// band next to the catalog export.
//
// Chain construction. Every record binds
//     (seq, prev_hash, epoch, op, object, outcome)
// and stores entry_hash = SHA-256 over exactly those fields; prev_hash
// is the predecessor's entry_hash (zeros for the genesis record). The
// ledger additionally tracks head() — the newest entry_hash — which an
// auditor anchors externally (a notary, a newspaper, another archive).
//
// verify_chain() recomputes every hash offline and localizes the FIRST
// record whose bytes no longer match the chain: flipping any single
// byte of any field of record i (entry_hash and prev_hash included)
// is reported as record i, because entry_hash covers every other field
// of the record and the prev link covers the predecessor.
//
// Population: Observability attaches the ledger to its EventBus for the
// control-plane events worth auditing (quarantines, repairs, scrubs,
// renewals, migration progress, alerts, operation failures), and the
// Archive appends explicit records from every mutating operation
// (put / remove / rewrap / reencrypt / renew_timestamps). Single-
// threaded by the control plane's contract, like the bus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/events.h"
#include "util/bytes.h"

namespace aegis {

class EventBus;

/// One audit record. Plain data; entry_hash is stored (not implied) so
/// a serialized ledger carries its own evidence.
struct AuditRecord {
  std::uint64_t seq = 0;
  Bytes prev_hash;      // predecessor's entry_hash; 32 zero bytes for seq 0
  Epoch epoch = 0;      // cluster virtual time at append
  std::string op;       // e.g. "archive.put", "cluster.quarantine"
  std::string object;   // object id / node id / rule name; may be empty
  std::string outcome;  // e.g. "ok", "repaired:2", "failed:below-threshold"
  Bytes entry_hash;     // SHA-256 over (seq, prev_hash, epoch, op, object,
                        // outcome)

  /// Recomputes the hash from the other fields (canonical serialization).
  Bytes compute_hash() const;

  /// One-line JSON rendering (for aegisctl / log pipelines).
  std::string to_json() const;
};

/// Outcome of AuditLedger::verify_chain.
struct ChainVerdict {
  bool ok = true;
  std::uint64_t first_bad = 0;  // index of the first tampered record
  std::string reason;           // human-readable mismatch description

  explicit operator bool() const { return ok; }
};

class AuditLedger {
 public:
  AuditLedger() = default;
  AuditLedger(const AuditLedger&) = delete;
  AuditLedger& operator=(const AuditLedger&) = delete;
  AuditLedger(AuditLedger&&) = default;
  AuditLedger& operator=(AuditLedger&&) = default;

  /// Appends one record, chaining it to the current head. Returns it.
  const AuditRecord& append(Epoch epoch, std::string op, std::string object,
                            std::string outcome);

  /// Subscribes to `bus` and appends a record for every audit-worthy
  /// event (quarantine/restore, repair, scrub, chain renewal, migration
  /// progress/checkpoints, alerts, operation failures). High-volume
  /// data-plane events (ShardWritten, faults) are deliberately not
  /// ledgered. Call at most once per bus.
  void attach(EventBus& bus);

  const std::vector<AuditRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// The newest entry_hash (32 zero bytes while empty) — the value an
  /// auditor anchors externally.
  const Bytes& head() const { return head_; }

  /// Full offline re-verification: recomputes every entry_hash, checks
  /// every prev link and seq, and checks the stored head. On failure,
  /// first_bad names the first record whose bytes diverge from the
  /// chain.
  ChainVerdict verify_chain() const;

  /// Wire format: every record plus the head hash. A deserialized
  /// ledger is ready for verify_chain() and further appends.
  Bytes serialize() const;
  static AuditLedger deserialize(ByteView wire);

 private:
  std::vector<AuditRecord> records_;
  Bytes head_ = Bytes(32, 0);
};

}  // namespace aegis
