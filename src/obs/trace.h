// RAII trace spans over a bounded in-memory ring.
//
//   void Archive::put(...) {
//     AEGIS_SPAN(obs.tracer(), "archive.put", {{"object", id}});
//     ...
//   }
//
// Spans nest: the tracer keeps an open-span stack, so a span begun while
// another is open records it as its parent (archive.scrub ->
// archive.audit -> cluster download, etc.). Completed spans land in a
// fixed-capacity ring — the newest N survive, older ones are overwritten
// — so tracing is always-on with bounded memory.
//
// Determinism: every span carries BOTH the cluster's virtual epoch
// (begin/end, from the tracer's epoch source) and a wall-clock duration.
// Tests and replayable experiments assert only on names, nesting and
// epochs; wall_us is operator-facing and excluded from assertions by
// convention.
//
// Threading: spans are control-plane only (single-threaded by the
// Cluster's contract). The shard ThreadPool reports through metrics, not
// spans.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "crypto/scheme.h"  // Epoch

namespace aegis {

using SpanAttrs = std::vector<std::pair<std::string, std::string>>;

/// One completed span.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  unsigned depth = 0;        // 0 = root
  std::string name;          // layer.op, e.g. "archive.put"
  SpanAttrs attrs;
  Epoch epoch_begin = 0;  // virtual time — deterministic, assert on these
  Epoch epoch_end = 0;
  double wall_us = 0.0;  // wall clock — operator-facing only
};

class TraceSpan;

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1024);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Supplies the virtual clock (e.g. [&cluster]{ return cluster.now(); }).
  /// Unset, spans carry epoch 0.
  void set_epoch_source(std::function<Epoch()> fn) { epoch_fn_ = std::move(fn); }

  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t started() const { return started_; }
  std::uint64_t finished() const { return finished_; }
  /// True iff finished spans have been overwritten (finished > capacity).
  bool overflowed() const { return finished_ > ring_.size(); }

  /// Completed spans, oldest surviving first.
  std::vector<SpanRecord> snapshot() const;

  /// Id of the innermost open span (0 when none) — the parent the next
  /// span will record.
  std::uint64_t current() const {
    return open_.empty() ? 0 : open_.back();
  }
  unsigned open_depth() const { return static_cast<unsigned>(open_.size()); }

 private:
  friend class TraceSpan;

  std::uint64_t begin_span();  // returns the new span id, pushes open stack
  void end_span(SpanRecord rec);  // pops, stamps epoch_end, stores in ring

  Epoch now() const { return epoch_fn_ ? epoch_fn_() : 0; }

  std::function<Epoch()> epoch_fn_;
  std::vector<SpanRecord> ring_;
  std::size_t next_slot_ = 0;
  std::uint64_t started_ = 0;
  std::uint64_t finished_ = 0;
  std::vector<std::uint64_t> open_;
};

/// RAII span handle. Construction begins the span (recording parent and
/// virtual epoch); destruction completes it into the tracer's ring.
class TraceSpan {
 public:
  TraceSpan(Tracer& tracer, std::string name, SpanAttrs attrs = {});
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an attribute after construction (e.g. a result count).
  void annotate(std::string key, std::string value);

  std::uint64_t id() const { return rec_.id; }

 private:
  Tracer& tracer_;
  SpanRecord rec_;
  std::chrono::steady_clock::time_point wall_begin_;
};

// AEGIS_SPAN(tracer, "archive.put") or
// AEGIS_SPAN(tracer, "archive.put", {{"object", id}})
#define AEGIS_SPAN_CAT2(a, b) a##b
#define AEGIS_SPAN_CAT(a, b) AEGIS_SPAN_CAT2(a, b)
#define AEGIS_SPAN(tracer, ...) \
  ::aegis::TraceSpan AEGIS_SPAN_CAT(aegis_span_, __LINE__){(tracer), __VA_ARGS__}

}  // namespace aegis
