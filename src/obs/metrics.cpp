#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/error.h"

namespace aegis {

std::vector<std::uint64_t> Histogram::buckets() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.type = "counter";
    e.value = static_cast<double>(c->value());
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.type = "gauge";
    e.value = static_cast<double>(g->value());
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.type = "histogram";
    e.value = static_cast<double>(h->count());
    e.sum = h->sum();
    e.bounds = h->bounds();
    e.buckets = h->buckets();
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const {
  for (const Entry& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

namespace {

// %g keeps integers clean (no trailing .000000) and doubles short.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

std::vector<std::string> MetricsSnapshot::to_json_lines(
    const std::string& bench) const {
  std::vector<std::string> lines;
  lines.reserve(entries.size());
  for (const Entry& e : entries) {
    std::string line = "{\"bench\":\"" + bench + "\",\"metric\":\"" + e.name +
                       "\",\"type\":\"" + e.type + "\"";
    if (e.type == "histogram") {
      line += ",\"count\":" + num(e.value) + ",\"sum\":" + num(e.sum) +
              ",\"buckets\":[";
      for (std::size_t i = 0; i < e.buckets.size(); ++i) {
        if (i > 0) line += ',';
        line += "{\"le\":";
        line += i < e.bounds.size() ? num(e.bounds[i]) : "\"inf\"";
        line += ",\"n\":" + num(static_cast<double>(e.buckets[i])) + "}";
      }
      line += "]";
    } else {
      line += ",\"value\":" + num(e.value);
    }
    line += "}";
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace aegis
