// The observability context: one MetricsRegistry + EventBus + Tracer,
// sharing a virtual-epoch source.
//
// Ownership: the Cluster owns one Observability per simulated
// deployment and exposes it via Cluster::obs(); everything operating
// against that cluster (Archive, FaultInjector, MessageBus, protocol
// drivers) reports into it. Per-cluster rather than process-global so
// benches that stand up many clusters keep their evidence separate, and
// so metric values stay exactly reconcilable with the cluster's own
// NetworkStats / NodeHealth (same source of truth, two views).
#pragma once

#include <functional>
#include <utility>

#include "obs/audit.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aegis {

class Observability {
 public:
  explicit Observability(std::size_t span_capacity = 1024)
      : tracer_(span_capacity) {
    // The tracer reads the owner-pushed epoch; capturing our own `this`
    // is safe because Observability is pinned (non-copyable, non-movable
    // — owners that must move hold it behind a unique_ptr).
    tracer_.set_epoch_source([this] { return epoch_; });
    // The ledger hears every audit-worthy control-plane event; archive
    // mutating ops append their own records on top.
    ledger_.attach(events_);
  }

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  EventBus& events() { return events_; }
  const EventBus& events() const { return events_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  AuditLedger& ledger() { return ledger_; }
  const AuditLedger& ledger() const { return ledger_; }

  /// The owner (the Cluster) pushes its virtual clock here whenever it
  /// ticks; all three views stamp from this value. Pushed rather than
  /// pulled (no callback into the owner) so the owner stays freely
  /// movable.
  void set_epoch(Epoch e) { epoch_ = e; }

  Epoch epoch() const { return epoch_; }

  /// Publishes an event stamped with the current virtual epoch.
  void emit(EventPayload payload) {
    events_.publish(epoch(), std::move(payload));
  }

 private:
  Epoch epoch_ = 0;
  MetricsRegistry metrics_;
  EventBus events_;
  Tracer tracer_;
  AuditLedger ledger_;
};

}  // namespace aegis
