#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>

namespace aegis {

namespace {

// %g keeps integers clean (no trailing .000000) and doubles short —
// matches MetricsSnapshot::to_json_lines.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string num_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string prometheus_name(const std::string& metric) {
  std::string out = "aegis_";
  out.reserve(metric.size() + out.size());
  for (char c : metric) out.push_back(c == '.' ? '_' : c);
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const MetricsSnapshot::Entry& e : snap.entries) {
    const std::string name = prometheus_name(e.name);
    if (e.type == "histogram") {
      out += "# TYPE " + name + " histogram\n";
      // The registry stores per-bucket counts; Prometheus buckets are
      // cumulative and always end with le="+Inf" == _count.
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < e.buckets.size(); ++i) {
        cum += e.buckets[i];
        out += name + "_bucket{le=\"";
        out += i < e.bounds.size() ? num(e.bounds[i]) : "+Inf";
        out += "\"} " + num_u64(cum) + "\n";
      }
      out += name + "_sum " + num(e.sum) + "\n";
      out += name + "_count " + num(e.value) + "\n";
    } else {
      out += "# TYPE " + name + " " + e.type + "\n";
      out += name + " " + num(e.value) + "\n";
    }
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string to_chrome_trace(const std::vector<SpanRecord>& spans) {
  // Synthetic microsecond timeline. Wall clocks are nondeterministic and
  // virtual epochs too coarse, so the exporter reconstructs the span
  // tree (parent links; ids are begin order) and lays it out as a
  // bracket sequence — one clock tick per span entry and exit, children
  // visited in id order. Children land strictly inside their parent and
  // siblings are disjoint, so Perfetto renders exactly the recorded
  // nesting; the real clocks ride along in "args". A span whose parent
  // was evicted from the ring is promoted to a root.
  std::map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;
  std::map<std::uint64_t, std::vector<std::uint64_t>> children;
  std::vector<std::uint64_t> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent != 0 && by_id.count(s.parent) > 0)
      children[s.parent].push_back(s.id);
    else
      roots.push_back(s.id);
  }
  std::sort(roots.begin(), roots.end());
  for (auto& [parent, kids] : children) std::sort(kids.begin(), kids.end());

  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> interval;
  std::uint64_t clock = 0;
  const std::function<void(std::uint64_t)> layout = [&](std::uint64_t id) {
    interval[id].first = clock++;
    auto kids = children.find(id);
    if (kids != children.end())
      for (std::uint64_t child : kids->second) layout(child);
    interval[id].second = clock++;
  };
  for (std::uint64_t root : roots) layout(root);

  std::string out = "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    const auto [begin, end] = interval[s.id];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + json_escape(s.name) + "\",\"ph\":\"X\"";
    out += ",\"ts\":" + num_u64(begin);
    out += ",\"dur\":" + num_u64(end - begin);
    out += ",\"pid\":1,\"tid\":1,\"args\":{";
    out += "\"span_id\":" + num_u64(s.id);
    out += ",\"parent\":" + num_u64(s.parent);
    out += ",\"depth\":" + num_u64(s.depth);
    out += ",\"epoch_begin\":" + num_u64(s.epoch_begin);
    out += ",\"epoch_end\":" + num_u64(s.epoch_end);
    out += ",\"wall_us\":" + num(s.wall_us);
    for (const auto& [k, v] : s.attrs)
      out += ",\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
    out += "}}";
  }
  out += "]";
  return out;
}

}  // namespace aegis
