// A century of medical records vs. a mobile adversary.
//
// The scenario from the paper's introduction: records that must stay
// confidential for a human lifetime, stored across independent providers,
// attacked by an adversary that compromises one provider per year and
// keeps everything it copies.
//
// Act 1 runs a static secret-shared archive (POTSHARDS-style): after t
// years the adversary holds t shares of the SAME sharing and we
// literally reconstruct the patient record from its harvest.
// Act 2 runs the same archive with proactive refresh (VSR-style): stolen
// shares go stale every year, and the same 100-year campaign yields
// nothing — demonstrated by attempting the same reconstruction.
#include <cstdio>
#include <map>

#include "archive/analyzer.h"
#include "archive/archive.h"
#include "crypto/chacha20.h"
#include "node/adversary.h"
#include "sharing/shamir.h"

namespace {

using namespace aegis;

const char* kRecord =
    "Patient 4711: hereditary condition XYZ; donor registry entry; "
    "psychiatric history 1998-2004. RELEASE AFTER 2126.";

// What an actual attacker does with its harvest: group stolen blobs of
// the object by refresh generation and run Shamir reconstruction on the
// best generation. Returns the recovered plaintext if any generation has
// enough shares.
bool try_reconstruct(const MobileAdversary& adv, const ObjectId& id,
                     unsigned t, Bytes& out) {
  std::map<std::uint32_t, std::map<std::uint32_t, Bytes>> by_gen;
  for (const HarvestedBlob& h : adv.harvest()) {
    if (h.blob.object == id)
      by_gen[h.blob.generation][h.blob.shard_index] = h.blob.data;
  }
  for (const auto& [gen, shards] : by_gen) {
    if (shards.size() < t) continue;
    std::vector<Share> shares;
    for (const auto& [idx, data] : shards) {
      shares.push_back({static_cast<std::uint8_t>(idx + 1), data});
      if (shares.size() == t) break;
    }
    out = shamir_recover(shares, t);
    return true;
  }
  return false;
}

void run_century(bool proactive) {
  ArchivalPolicy policy =
      proactive ? ArchivalPolicy::VsrArchive() : ArchivalPolicy::Potshards();

  Cluster cluster(policy.n, policy.channel, /*seed=*/77);
  SchemeRegistry registry;  // no cryptanalysis needed in this story
  ChaChaRng rng(77);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, policy, registry, tsa, rng);
  MobileAdversary adversary(/*f=*/1, CorruptionStrategy::kSweep, 99);

  archive.put("patient-4711", to_bytes(std::string_view(kRecord)));

  for (unsigned year = 0; year < 100; ++year) {
    adversary.corrupt_epoch(cluster);
    if (policy.proactive_refresh) archive.refresh();
    cluster.advance_epoch();
  }

  std::printf(
      "--- %s (t=%u of n=%u, %s refresh) ---\n"
      "100 years: adversary corrupted %zu distinct providers, harvested "
      "%llu bytes\n",
      policy.name.c_str(), policy.t, policy.n,
      policy.proactive_refresh ? "yearly" : "no",
      adversary.nodes_ever_corrupted(),
      static_cast<unsigned long long>(adversary.bytes_harvested()));

  Bytes stolen;
  if (try_reconstruct(adversary, "patient-4711", policy.t, stolen)) {
    std::printf("RECONSTRUCTED from harvest: \"%s\"\n",
                to_string(stolen).c_str());
  } else {
    std::printf(
        "reconstruction failed: no refresh generation ever yielded %u "
        "shares\n",
        policy.t);
  }

  // Cross-check with the analyzer's omniscient deduction.
  const ExposureAnalyzer analyzer(archive, registry);
  const auto report =
      analyzer.analyze(adversary.harvest(), cluster.wiretap(), cluster.now());
  std::printf("analyzer verdict: %s\n",
              report.exposed_count > 0
                  ? ("EXPOSED at year " +
                     std::to_string(report.first_exposure))
                        .c_str()
                  : "confidential after 100 years");

  // The patient can still read their own record.
  const Bytes mine = archive.get("patient-4711");
  std::printf("owner retrieval still works: %s\n\n",
              to_string(mine) == kRecord ? "yes" : "NO (data lost!)");
}

}  // namespace

int main() {
  std::printf(
      "Century-scale medical archive vs a mobile adversary "
      "(1 provider compromised per year)\n\n");
  run_century(/*proactive=*/false);
  run_century(/*proactive=*/true);
  std::printf(
      "Moral (paper Sec. 3.2): information-theoretic sharing alone is "
      "not enough on\narchival timescales — the shares must be "
      "proactively re-randomized so stolen\nones expire. The price is "
      "the O(n^2) renewal traffic shown in bench/refresh_cost.\n");
  return 0;
}
