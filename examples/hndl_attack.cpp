// Harvest Now, Decrypt Later — executed end-to-end.
//
// 2026: a government archive stores classified records on a cloud-style
//       AES-256 + Reed-Solomon policy. An adversary quietly copies three
//       storage nodes' shards (below the erasure threshold is NOT
//       required — k shards rebuild the ciphertext).
// 2045: cryptanalysis (say, a cryptographically relevant quantum
//       computer) breaks the cipher. The 2026 harvest — untouched for
//       19 years — yields the plaintext.
//
// The demo reconstructs the ciphertext from the harvested shards alone,
// shows it is garbage while AES stands, then invokes the break oracle
// (emulated with the simulator's key escrow — a broken cipher means
// ANYONE can invert Enc without the key) and prints the recovered
// classified record. The same timeline against a LINCOS-style archive
// recovers nothing.
#include <cstdio>
#include <map>

#include "archive/analyzer.h"
#include "archive/archive.h"
#include "crypto/chacha20.h"
#include "crypto/cipher.h"
#include "erasure/reed_solomon.h"
#include "node/adversary.h"

namespace {

using namespace aegis;

const char* kSecret =
    "TOP SECRET // REL 2126: agent roster for operation GLASSFJORD.";

constexpr Epoch kHarvestYears = 3;   // 2026-2028
constexpr Epoch kBreakYear = 19;     // "2045"

void attack_cloud() {
  ArchivalPolicy policy = ArchivalPolicy::CloudBaseline();  // AES+RS(6,9)
  Cluster cluster(policy.n, policy.channel, 1);
  SchemeRegistry registry;
  ChaChaRng rng(1);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, policy, registry, tsa, rng);
  MobileAdversary adversary(2, CorruptionStrategy::kSweep, 5);

  archive.put("glassfjord", to_bytes(std::string_view(kSecret)));

  // Harvest phase: 3 years, 2 nodes a year = 6 nodes = k shards.
  for (Epoch y = 0; y < kHarvestYears; ++y) {
    adversary.corrupt_epoch(cluster);
    cluster.advance_epoch();
  }

  // Rebuild the ciphertext from the harvest alone.
  const ObjectManifest& m = archive.manifest("glassfjord");
  std::vector<std::optional<Bytes>> shards(m.n);
  for (const auto& h : adversary.harvest()) {
    if (h.blob.object == "glassfjord") shards[h.blob.shard_index] = h.blob.data;
  }
  const Bytes ciphertext =
      ReedSolomon(m.k, m.n).decode(shards, m.size);

  std::printf("2028: adversary reassembled the ciphertext from %u stolen "
              "shards:\n      \"%.40s...\" (unreadable)\n",
              m.k, hex_encode(ciphertext).c_str());

  // Years pass; nothing about the stolen copy changes.
  while (cluster.now() < kBreakYear) cluster.advance_epoch();
  registry.set_break_epoch(SchemeId::kAes256Ctr, kBreakYear);

  const ExposureAnalyzer analyzer(archive, registry);
  const auto report =
      analyzer.analyze(adversary.harvest(), cluster.wiretap(), cluster.now());
  std::printf("2045: %s falls. analyzer: %u object(s) exposed (%s)\n",
              scheme_name(SchemeId::kAes256Ctr).c_str(),
              report.exposed_count,
              report.objects[0].mechanism.c_str());

  // Break oracle: with the cipher broken, Enc is invertible without the
  // key; the simulator emulates the oracle via its key escrow.
  const ObjectKey* key = archive.vault().find("glassfjord");
  const SecureBytes lk = key->layer_key(SchemeId::kAes256Ctr, 0);
  const Bytes iv = key->layer_iv(SchemeId::kAes256Ctr, 0);
  const Bytes plaintext = cipher_apply(
      SchemeId::kAes256Ctr, ByteView(lk.data(), lk.size()), iv, ciphertext);
  std::printf("      decrypted 2026 harvest: \"%s\"\n\n",
              to_string(plaintext).c_str());
}

void attack_lincos() {
  ArchivalPolicy policy = ArchivalPolicy::Lincos();
  Cluster cluster(policy.n, policy.channel, 2);
  SchemeRegistry registry;
  ChaChaRng rng(2);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, policy, registry, tsa, rng);
  MobileAdversary adversary(2, CorruptionStrategy::kSweep, 6);

  archive.put("glassfjord", to_bytes(std::string_view(kSecret)));

  for (Epoch y = 0; y < kBreakYear; ++y) {
    adversary.corrupt_epoch(cluster);
    archive.refresh();
    cluster.advance_epoch();
  }
  registry.set_break_epoch(SchemeId::kAes256Ctr, kBreakYear);
  registry.set_break_epoch(SchemeId::kEcdhSecp256k1, kBreakYear);

  const ExposureAnalyzer analyzer(archive, registry);
  const auto report =
      analyzer.analyze(adversary.harvest(), cluster.wiretap(), cluster.now());
  const auto* x = report.find("glassfjord");
  std::printf(
      "Same 19-year campaign vs %s (refreshed Shamir + QKD transport):\n"
      "  harvested %llu bytes across %zu providers; best same-generation "
      "haul: %u of %u shares\n  verdict: %s\n\n",
      policy.name.c_str(),
      static_cast<unsigned long long>(adversary.bytes_harvested()),
      adversary.nodes_ever_corrupted(), x->best_generation_shards, policy.t,
      x->content_exposed ? "EXPOSED" : "nothing to decrypt, now or ever");
}

}  // namespace

int main() {
  std::printf("Harvest Now, Decrypt Later (paper Sec. 1/3.2), executed\n\n");
  attack_cloud();
  attack_lincos();
  std::printf(
      "Moral: re-encryption after 2045 cannot reach the 2026 harvest — "
      "the only\ndefences are encodings with no cryptographic assumption "
      "to break.\n");
  return 0;
}
