// A chaos drill against a self-healing archive.
//
// The operational story behind the paper's "reliability over decades"
// requirement: storage nodes crash and restart, links drop and corrupt
// frames, media rots at rest — and an archive earns its keep by riding
// it out. This drill turns every fault class on at once and narrates a
// year of epochs: what the client saw (degraded writes, retried reads),
// what the circuit breaker did, and what scrubbing repaired.
#include <cstdio>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "crypto/chacha20.h"
#include "util/error.h"
#include "util/rng.h"

int main() {
  using namespace aegis;

  ArchivalPolicy policy = ArchivalPolicy::FigErasure();  // RS(6,9)
  Cluster cluster(policy.n, policy.channel, 2026);
  SchemeRegistry registry;
  ChaChaRng rng(2026);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, policy, registry, tsa, rng);

  std::printf("== Chaos drill: RS(6,9) archive, every fault class on ==\n\n");

  // Live narration off the event bus: the breaker and retry loops
  // announce themselves as they act.
  unsigned quarantine_events = 0;
  cluster.obs().events().subscribe([&](const Event& e) {
    if (const auto* q = std::get_if<NodeQuarantined>(&e.payload)) {
      ++quarantine_events;
      std::printf("  [event @%llu] node %u quarantined until epoch %llu "
                  "(%u consecutive failures)\n",
                  static_cast<unsigned long long>(e.epoch), q->node,
                  static_cast<unsigned long long>(q->until),
                  q->consecutive_failures);
    } else if (const auto* r = std::get_if<RetryExhausted>(&e.payload)) {
      std::printf("  [event @%llu] %s of %s gave up on node %u after %u "
                  "attempts (%s)\n",
                  static_cast<unsigned long long>(e.epoch), r->op.c_str(),
                  r->object.c_str(), r->node, r->attempts, r->status.c_str());
    }
  });

  // The substrate: flaky links, yearly-scale bit-rot, rolling outages.
  LinkFaults flaky;
  flaky.drop_prob = 0.15;
  flaky.corrupt_prob = 0.1;
  flaky.spike_prob = 0.1;
  cluster.faults().set_link_faults(flaky);
  cluster.faults().set_bitrot(8.0);
  cluster.faults().set_random_outages(0.05, 1, 2);
  cluster.faults().schedule_outage(3, 4, 2);  // node 3 dark, epochs 4-5

  // Ingest through the flaky network: put() reports what landed.
  SimRng sim(7);
  const Bytes record = sim.bytes(16 * 1024);
  const PutReport report = archive.put("ledger/2026", record);
  std::printf("put: %u/%u shards written (%u upload retries)\n",
              report.shards_written, report.shards_total,
              static_cast<unsigned>(archive.io_stats().upload_retries));
  if (!report.fully_replicated())
    std::printf("     under-replicated by %u — scrub will finish the job\n",
                report.under_replication());
  // All upload retries so far happened inside put(): the per-op metric
  // archive.put.retries must match this exactly at the end of the drill.
  const std::uint64_t retries_during_puts = archive.io_stats().upload_retries;

  // A year of epochs: read every epoch, scrub every epoch.
  unsigned repaired_total = 0;
  for (Epoch e = 1; e <= 12; ++e) {
    cluster.advance_epoch();
    std::string note;
    try {
      if (archive.get("ledger/2026") != record) note = "WRONG BYTES";
    } catch (const UnrecoverableError&) {
      note = "read failed (beyond tolerance this instant)";
    }
    const Archive::ScrubReport scrub = archive.scrub();
    repaired_total += scrub.shards_repaired;
    std::printf("epoch %2u: online=%u/%u  scrub repaired %u shard(s)%s%s\n",
                e, cluster.online_count(), policy.n, scrub.shards_repaired,
                note.empty() ? "" : "  !! ", note.c_str());
  }

  // The ledger: what the substrate did and what healing cost.
  const NetworkStats& net = cluster.stats();
  std::printf(
      "\nafter 12 epochs: %u shards repaired; %llu conversations dropped, "
      "%llu corrupted, %llu refused by the breaker\n",
      repaired_total, static_cast<unsigned long long>(net.dropped),
      static_cast<unsigned long long>(net.corrupted),
      static_cast<unsigned long long>(net.quarantine_rejections));
  unsigned quarantines = 0;
  for (NodeId id = 0; id < policy.n; ++id)
    quarantines += cluster.health(id).quarantines;
  std::printf("breaker opened %u time(s) across %u nodes\n", quarantines,
              policy.n);
  std::printf("fault timeline recorded %zu events\n",
              cluster.faults().timeline().size());

  const bool intact = archive.get("ledger/2026") == record &&
                      archive.verify("ledger/2026").ok();
  std::printf("\nfinal read + integrity verify: %s\n",
              intact ? "INTACT — nothing lost" : "DATA LOSS");

  // The same story, machine-readable: every counter, gauge and histogram
  // as one JSON object per line (scrape with: grep '^JSON ' | cut -c6-).
  std::printf("\n-- metrics snapshot --\n");
  const MetricsSnapshot snap = cluster.obs().metrics().snapshot();
  for (const std::string& line : snap.to_json_lines("chaos_drill"))
    std::printf("JSON %s\n", line.c_str());

  // Reconciliation: the metric view, the event view and the struct view
  // of the same activity must agree exactly — a drill that cannot trust
  // its own instruments fails.
  bool reconciled = true;
  const auto expect_metric = [&](const char* name, std::uint64_t want) {
    const MetricsSnapshot::Entry* e = snap.find(name);
    const double got = e != nullptr ? e->value : 0.0;
    if (got != static_cast<double>(want)) {
      std::printf("RECONCILE FAIL: %s = %.0f, expected %llu\n", name, got,
                  static_cast<unsigned long long>(want));
      reconciled = false;
    }
  };
  expect_metric("archive.put.retries", retries_during_puts);
  expect_metric("archive.io.upload_retries", archive.io_stats().upload_retries);
  expect_metric("archive.io.download_retries",
                archive.io_stats().download_retries);
  expect_metric("cluster.breaker.quarantines", quarantines);
  const std::uint64_t quarantined_seen =
      cluster.obs().events().count(EventKind::kNodeQuarantined);
  if (quarantined_seen != quarantines || quarantine_events != quarantines) {
    std::printf("RECONCILE FAIL: %llu NodeQuarantined events (%u delivered) "
                "vs %u breaker openings\n",
                static_cast<unsigned long long>(quarantined_seen),
                quarantine_events, quarantines);
    reconciled = false;
  }
  std::printf("reconcile: metrics/events/structs %s\n",
              reconciled ? "agree exactly" : "DISAGREE");
  return (intact && reconciled) ? 0 : 1;
}
