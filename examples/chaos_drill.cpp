// A chaos drill against a self-healing archive.
//
// The operational story behind the paper's "reliability over decades"
// requirement: storage nodes crash and restart, links drop and corrupt
// frames, media rots at rest — and an archive earns its keep by riding
// it out. This drill turns every fault class on at once and narrates a
// year of epochs: what the client saw (degraded writes, retried reads),
// what the circuit breaker did, and what scrubbing repaired.
#include <cstdio>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "crypto/chacha20.h"
#include "util/error.h"
#include "util/rng.h"

int main() {
  using namespace aegis;

  ArchivalPolicy policy = ArchivalPolicy::FigErasure();  // RS(6,9)
  Cluster cluster(policy.n, policy.channel, 2026);
  SchemeRegistry registry;
  ChaChaRng rng(2026);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, policy, registry, tsa, rng);

  std::printf("== Chaos drill: RS(6,9) archive, every fault class on ==\n\n");

  // The substrate: flaky links, yearly-scale bit-rot, rolling outages.
  LinkFaults flaky;
  flaky.drop_prob = 0.15;
  flaky.corrupt_prob = 0.1;
  flaky.spike_prob = 0.1;
  cluster.faults().set_link_faults(flaky);
  cluster.faults().set_bitrot(8.0);
  cluster.faults().set_random_outages(0.05, 1, 2);
  cluster.faults().schedule_outage(3, 4, 2);  // node 3 dark, epochs 4-5

  // Ingest through the flaky network: put() reports what landed.
  SimRng sim(7);
  const Bytes record = sim.bytes(16 * 1024);
  const PutReport report = archive.put("ledger/2026", record);
  std::printf("put: %u/%u shards written (%u upload retries)\n",
              report.shards_written, report.shards_total,
              static_cast<unsigned>(archive.io_stats().upload_retries));
  if (!report.fully_replicated())
    std::printf("     under-replicated by %u — scrub will finish the job\n",
                report.under_replication());

  // A year of epochs: read every epoch, scrub every epoch.
  unsigned repaired_total = 0;
  for (Epoch e = 1; e <= 12; ++e) {
    cluster.advance_epoch();
    std::string note;
    try {
      if (archive.get("ledger/2026") != record) note = "WRONG BYTES";
    } catch (const UnrecoverableError&) {
      note = "read failed (beyond tolerance this instant)";
    }
    const Archive::ScrubReport scrub = archive.scrub();
    repaired_total += scrub.shards_repaired;
    std::printf("epoch %2u: online=%u/%u  scrub repaired %u shard(s)%s%s\n",
                e, cluster.online_count(), policy.n, scrub.shards_repaired,
                note.empty() ? "" : "  !! ", note.c_str());
  }

  // The ledger: what the substrate did and what healing cost.
  const NetworkStats& net = cluster.stats();
  std::printf(
      "\nafter 12 epochs: %u shards repaired; %llu conversations dropped, "
      "%llu corrupted, %llu refused by the breaker\n",
      repaired_total, static_cast<unsigned long long>(net.dropped),
      static_cast<unsigned long long>(net.corrupted),
      static_cast<unsigned long long>(net.quarantine_rejections));
  unsigned quarantines = 0;
  for (NodeId id = 0; id < policy.n; ++id)
    quarantines += cluster.health(id).quarantines;
  std::printf("breaker opened %u time(s) across %u nodes\n", quarantines,
              policy.n);
  std::printf("fault timeline recorded %zu events\n",
              cluster.faults().timeline().size());

  const bool intact = archive.get("ledger/2026") == record &&
                      archive.verify("ledger/2026").ok();
  std::printf("\nfinal read + integrity verify: %s\n",
              intact ? "INTACT — nothing lost" : "DATA LOSS");
  return intact ? 0 : 1;
}
