// A century of archive operations — everything the library provides,
// running together on one timeline the way an operator would schedule it:
//
//   yearly    mobile adversary strikes; proactive share refresh;
//             scrub (audit + repair) over bit-rot; notary renews
//             timestamp chains ahead of announced scheme breaks
//   decade    providers churn: redistribute shares to a new (t, n)
//   at 40     AES-256 and ECDH fall to cryptanalysis
//   at 100    full health check + HNDL exposure verdict + the bill
//
// Run it:  ./archive_operations
#include <cstdio>

#include "archive/analyzer.h"
#include "archive/archive.h"
#include "archive/cost.h"
#include "archive/workload.h"
#include "crypto/chacha20.h"
#include "node/adversary.h"

int main() {
  using namespace aegis;

  // The LINCOS-shaped stack: refreshed Shamir 3-of-5 over QKD transport
  // with Pedersen-commitment timestamping.
  ArchivalPolicy policy = ArchivalPolicy::Lincos();

  Cluster cluster(9, policy.channel, 2026);
  SchemeRegistry registry;
  registry.set_break_epoch(SchemeId::kAes256Ctr, 40);
  registry.set_break_epoch(SchemeId::kEcdhSecp256k1, 40);
  registry.set_break_epoch(SchemeId::kSigGenA, 35);
  registry.set_break_epoch(SchemeId::kSigGenB, 70);

  ChaChaRng rng(2026);
  TimestampAuthority tsa(rng, SchemeId::kSigGenA);
  Archive archive(cluster, policy, registry, tsa, rng);
  NotaryService notary(tsa, registry, rng);
  MobileAdversary adversary(1, CorruptionStrategy::kSweep, 13);
  SimRng chaos(99);  // bit rot

  // Ingest a realistic population.
  WorkloadConfig wl;
  wl.object_count = 12;
  wl.median_size = 8192;
  wl.max_size = 64 * 1024;
  wl.seed = 5;
  WorkloadGenerator gen(wl);
  std::uint64_t logical = 0;
  while (gen.remaining() > 0) {
    const WorkloadItem item = gen.next();
    logical += item.data.size();
    archive.put(item.id, item.data);
  }
  archive.watch_timestamps(notary);
  std::printf("year 0: ingested %u objects (%llu bytes) under %s\n",
              wl.object_count, static_cast<unsigned long long>(logical),
              policy.name.c_str());

  unsigned repairs = 0, renewals = 0;
  for (Epoch year = 0; year < 100; ++year) {
    adversary.corrupt_epoch(cluster);

    // Bit rot: a random stored shard decays every few years.
    if (chaos.chance(0.3)) {
      const NodeId victim = static_cast<NodeId>(chaos.uniform(9));
      StorageNode& node = cluster.node(victim);
      const auto blobs = node.all_blobs();
      if (!blobs.empty()) {
        StoredBlob bad = *blobs[chaos.uniform(blobs.size())];
        if (!bad.data.empty()) {
          bad.data[chaos.uniform(bad.data.size())] ^= 0x40;
          node.put(bad);
        }
      }
    }

    archive.refresh();                      // proactive share renewal
    repairs += archive.scrub().shards_repaired;  // audit + repair
    renewals += notary.tick(year);          // integrity care

    if (year > 0 && year % 25 == 0) {
      // Provider churn: migrate to a fresh 4-of-7 layout and back.
      const unsigned t2 = year % 50 == 0 ? 3 : 4;
      const unsigned n2 = year % 50 == 0 ? 5 : 7;
      archive.redistribute_nodes(t2, n2);
      std::printf("year %u: redistributed to (%u,%u)\n", year, t2, n2);
    }
    cluster.advance_epoch();
  }

  // Final accounting.
  unsigned healthy = 0, chains_valid = 0;
  for (const auto& [id, m] : archive.manifests()) {
    const VerifyReport r = archive.verify(id);
    healthy += r.shards_bad == 0 && r.enough_shards;
    chains_valid += r.chain_status == ChainStatus::kValid;
  }

  const ExposureAnalyzer analyzer(archive, registry);
  const auto exposure =
      analyzer.analyze(adversary.harvest(), cluster.wiretap(), cluster.now());

  const StorageReport storage = archive.storage_report();
  std::printf(
      "\nyear 100 report\n"
      "  objects healthy:        %u/%u (scrub repaired %u shards along "
      "the way)\n"
      "  timestamp chains valid: %u/%u (%u notary renewals across 2 "
      "scheme breaks)\n"
      "  adversary harvested:    %llu bytes from %zu provider "
      "corruptions\n"
      "  content exposed:        %u objects%s\n"
      "  storage bill:           %.2fx logical; refresh traffic %llu MB "
      "over the century\n",
      healthy, wl.object_count, repairs, chains_valid, wl.object_count,
      renewals,
      static_cast<unsigned long long>(adversary.bytes_harvested()),
      adversary.nodes_ever_corrupted(), exposure.exposed_count,
      exposure.exposed_count == 0 ? " — HNDL defeated" : "",
      storage.overhead(),
      static_cast<unsigned long long>(cluster.stats().refresh_bytes /
                                      1000000));

  std::printf(
      "\nEvery mechanism the paper surveys ran on this timeline: ITS "
      "sharing,\nproactive refresh, verifiable redistribution, sentinel "
      "audits + repair,\ncommitment timestamping with notarized renewal, "
      "and an ITS transport —\nthe cost columns above are what the "
      "paper's Figure 1 smiley face charges.\n");
  return 0;
}
