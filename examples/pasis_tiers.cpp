// "No one size fits all" (PASIS, §4): one archive, four protection
// tiers, one bill.
//
// A university archive stores: course catalogs (public), payroll
// (internal), research under embargo (secret), and a whistleblower
// dossier (top-secret). Each tier rides a different policy over the same
// 12-node cluster; the example prints what each tier costs and what a
// decade of mobile-adversary pressure plus a future AES break does to
// each.
#include <cstdio>

#include "archive/analyzer.h"
#include "archive/multi.h"
#include "crypto/chacha20.h"
#include "node/adversary.h"

int main() {
  using namespace aegis;

  Cluster cluster(12, ChannelKind::kTls, 314);
  SchemeRegistry registry;
  ChaChaRng rng(314);
  TimestampAuthority tsa(rng);
  MultiArchive archive(cluster, registry, tsa, rng);

  // The default top-secret tier (refreshed Shamir over TLS) still loses
  // to a transit-cipher break — recorded refresh traffic IS a full share
  // set. Upgrade the tier to the LINCOS stack (QKD transport) so the
  // dossier actually survives the timeline below.
  archive.set_policy(Sensitivity::kTopSecret, ArchivalPolicy::Lincos());

  struct Item {
    const char* id;
    const char* text;
    Sensitivity tier;
  };
  const Item items[] = {
      {"catalog-2026", "Course catalog, academic year 2026/27.",
       Sensitivity::kPublic},
      {"payroll-q2", "Payroll ledger Q2 2026 — salaries, bank details.",
       Sensitivity::kInternal},
      {"embargo-paper", "Embargoed results: room-temp superconductor.",
       Sensitivity::kSecret},
      {"dossier-17", "Whistleblower dossier #17. Seal for 90 years.",
       Sensitivity::kTopSecret},
  };

  for (const Item& item : items)
    archive.put(item.id, to_bytes(std::string_view(item.text)), item.tier);

  std::printf("%-16s %-12s %-22s %10s %10s\n", "object", "tier", "policy",
              "at-rest", "cost(x)");
  for (const Item& item : items) {
    const ArchivalPolicy& p = archive.policy(item.tier);
    std::printf("%-16s %-12s %-22s %10s %9.1fx\n", item.id,
                to_string(item.tier), p.name.c_str(),
                confidentiality_label(classify(p).at_rest),
                archive.storage_report(item.tier).overhead());
  }

  // A decade of pressure: mobile adversary, yearly refresh of the tiers
  // that support it, then an AES break.
  MobileAdversary adversary(1, CorruptionStrategy::kSweep, 999);
  for (int year = 0; year < 10; ++year) {
    adversary.corrupt_epoch(cluster);
    archive.refresh();
    cluster.advance_epoch();
  }
  registry.set_break_epoch(SchemeId::kAes256Ctr, cluster.now());

  std::printf("\nafter 10 years of f=1 sweep corruption + AES-256 break:\n");
  for (const Item& item : items) {
    const ExposureAnalyzer analyzer(archive.archive_for(item.tier),
                                    registry);
    const auto report = analyzer.analyze(adversary.harvest(),
                                         cluster.wiretap(), cluster.now());
    const auto* x = report.find(item.id);
    std::printf("  %-16s %s\n", item.id,
                x->content_exposed
                    ? ("EXPOSED (" + x->mechanism + ")").c_str()
                    : "still confidential");
  }

  const StorageReport total = archive.storage_report();
  std::printf(
      "\ntotal: %llu logical bytes stored as %llu (%.2fx blended) — "
      "paying the ITS\npremium only where the data warrants it is "
      "PASIS's answer to Figure 1.\n",
      static_cast<unsigned long long>(total.logical_bytes),
      static_cast<unsigned long long>(total.stored_bytes),
      total.overhead());
  return 0;
}
