// aegisctl — an interactive console for driving an aegis archive.
//
// Usage:   ./aegisctl [policy]        (default: potshards)
// Then type commands; `help` lists them. Scriptable via stdin:
//
//   printf 'put deed Title deed of 1 Main St\nattack\nattack\nattack\n
//           exposure\nget deed\nquit\n' | ./aegisctl potshards
//
// Policies: cloud, archivesafe, aontrs, potshards, vsr, lincos, hasdpss.
// The console wires together the full stack: archive, mobile adversary,
// scheme-break registry, notary, scrub — a sandbox for replaying every
// scenario in the paper by hand.
#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "archive/analyzer.h"
#include "archive/archive.h"
#include "archive/doctor.h"
#include "crypto/chacha20.h"
#include "node/adversary.h"
#include "obs/export.h"

namespace {

using namespace aegis;

ArchivalPolicy policy_by_name(const std::string& name) {
  if (name == "cloud") return ArchivalPolicy::CloudBaseline();
  if (name == "archivesafe") return ArchivalPolicy::ArchiveSafeLT();
  if (name == "aontrs") return ArchivalPolicy::AontRs();
  if (name == "potshards") return ArchivalPolicy::Potshards();
  if (name == "vsr") return ArchivalPolicy::VsrArchive();
  if (name == "lincos") return ArchivalPolicy::Lincos();
  if (name == "hasdpss") return ArchivalPolicy::HasDpss();
  throw InvalidArgument("unknown policy: " + name);
}

SchemeId scheme_by_name(const std::string& name) {
  for (int i = 1; i < static_cast<int>(SchemeId::kMaxScheme); ++i) {
    const auto id = static_cast<SchemeId>(i);
    if (scheme_name(id) == name) return id;
  }
  throw InvalidArgument("unknown scheme: " + name +
                        " (try AES-256-CTR, ChaCha20, ECDH-secp256k1...)");
}

void print_help() {
  std::printf(
      "commands:\n"
      "  put <id> <text...>     archive a document\n"
      "  get <id>               retrieve and print\n"
      "  verify <id>            shard + timestamp-chain verification\n"
      "  audit <id>             challenge nodes for proof of possession\n"
      "  scrub                  audit + repair everything\n"
      "  refresh                proactive share refresh (bumps generation)\n"
      "  rewrap <scheme>        add a cascade layer (cascade policies)\n"
      "  fail <node> | restore <node>   node availability\n"
      "  corrupt <node>         flip a byte in one of the node's shards\n"
      "  attack                 one mobile-adversary epoch (f=1 sweep)\n"
      "  break <scheme>         cryptanalysis: scheme falls NOW\n"
      "  epoch                  advance the clock one epoch\n"
      "  exposure               what does the adversary hold?\n"
      "  report                 storage + traffic accounting\n"
      "  metrics                Prometheus text exposition of all metrics\n"
      "  trace                  Chrome trace-event JSON (about://tracing)\n"
      "  audit verify           verify the hash-chained audit ledger\n"
      "  doctor step            one background scrub slice (verify+repair)\n"
      "  doctor status          doctor cursor, passes, degraded set, alerts\n"
      "  help | quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string policy_name = argc > 1 ? argv[1] : "potshards";
  ArchivalPolicy policy;
  try {
    policy = policy_by_name(policy_name);
  } catch (const Error& e) {
    std::printf("%s\n", e.what());
    return 1;
  }

  Cluster cluster(12, policy.channel, 20260705);
  SchemeRegistry registry;
  ChaChaRng rng(20260705);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, policy, registry, tsa, rng);
  MobileAdversary adversary(1, CorruptionStrategy::kSweep, 31337);
  SimRng chaos(4242);
  // Created lazily on the first `doctor` command (it binds metrics and
  // arms its alert baselines at construction).
  std::optional<Doctor> doctor;

  std::printf("aegisctl — policy %s over %u nodes (%s transport). "
              "'help' for commands.\n",
              policy.name.c_str(), cluster.size(),
              to_string(policy.channel));

  std::string line;
  while (std::printf("aegis> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;

    try {
      if (cmd == "quit" || cmd == "exit") {
        break;
      } else if (cmd == "help") {
        print_help();
      } else if (cmd == "put") {
        std::string id;
        in >> id;
        std::string text;
        std::getline(in, text);
        if (!text.empty() && text[0] == ' ') text.erase(0, 1);
        archive.put(id, to_bytes(text));
        std::printf("stored %zu bytes as %s (gen 0)\n", text.size(),
                    to_string(policy.encoding));
      } else if (cmd == "get") {
        std::string id;
        in >> id;
        std::printf("\"%s\"\n", to_string(archive.get(id)).c_str());
      } else if (cmd == "verify") {
        std::string id;
        in >> id;
        const VerifyReport r = archive.verify(id);
        std::printf("shards %u seen / %u bad; chain %s -> %s\n",
                    r.shards_seen, r.shards_bad,
                    to_string(r.chain_status), r.ok() ? "OK" : "FAILED");
      } else if (cmd == "audit") {
        std::string id;
        in >> id;
        if (id == "verify") {
          const AuditLedger& ledger = cluster.obs().ledger();
          const ChainVerdict v = ledger.verify_chain();
          if (v.ok)
            std::printf("ledger OK: %zu records, head %s\n", ledger.size(),
                        hex_encode(ledger.head()).c_str());
          else
            std::printf("ledger TAMPERED at record %llu: %s\n",
                        static_cast<unsigned long long>(v.first_bad),
                        v.reason.c_str());
        } else {
          const auto r = archive.audit(id);
          std::printf("%u challenged: %u passed, %u failed, %u silent\n",
                      r.challenges, r.passed, r.failed, r.silent);
        }
      } else if (cmd == "metrics") {
        std::fputs(to_prometheus(cluster.obs().metrics().snapshot()).c_str(),
                   stdout);
      } else if (cmd == "trace") {
        std::printf("%s\n",
                    to_chrome_trace(cluster.obs().tracer().snapshot()).c_str());
      } else if (cmd == "doctor") {
        std::string sub;
        in >> sub;
        if (!doctor) doctor.emplace(archive);
        if (sub == "step") {
          const DoctorStepReport r = doctor->step();
          std::printf(
              "scanned %u (damaged %u), %u shards repaired, %u "
              "unrecoverable; alerts +%u/-%u%s\n",
              r.scanned, r.damaged, r.shards_repaired, r.unrecoverable,
              r.alerts_raised, r.alerts_cleared,
              r.pass_completed ? "; pass complete" : "");
        } else if (sub == "status") {
          const DoctorState& s = doctor->state();
          std::printf(
              "cursor '%s'; %llu passes, %llu objects scanned, %llu "
              "shards repaired, %llu unrecoverable; %zu degraded\n",
              s.cursor.c_str(), static_cast<unsigned long long>(s.passes),
              static_cast<unsigned long long>(s.objects_scanned),
              static_cast<unsigned long long>(s.shards_repaired),
              static_cast<unsigned long long>(s.unrecoverable),
              doctor->degraded_count());
          for (const AlertRule& rule : AlertEngine::default_rules())
            if (doctor->alerts().active(rule.name))
              std::printf("  ALERT %s\n", rule.name.c_str());
        } else {
          std::printf("usage: doctor step | doctor status\n");
        }
      } else if (cmd == "scrub") {
        const auto r = archive.scrub();
        std::printf("%u objects, %u shards repaired, %u unrecoverable\n",
                    r.objects, r.shards_repaired, r.unrecoverable);
      } else if (cmd == "refresh") {
        archive.refresh();
        std::printf("refreshed; refresh traffic so far: %llu bytes\n",
                    static_cast<unsigned long long>(
                        cluster.stats().refresh_bytes));
      } else if (cmd == "rewrap") {
        std::string s;
        in >> s;
        archive.rewrap(scheme_by_name(s));
        std::printf("wrapped a new %s layer\n", s.c_str());
      } else if (cmd == "fail" || cmd == "restore") {
        unsigned node;
        in >> node;
        if (cmd == "fail")
          cluster.fail_node(node);
        else
          cluster.restore_node(node);
        std::printf("%u/%u nodes online\n", cluster.online_count(),
                    cluster.size());
      } else if (cmd == "corrupt") {
        unsigned node;
        in >> node;
        auto blobs = cluster.node(node).all_blobs();
        if (blobs.empty()) {
          std::printf("node %u stores nothing\n", node);
        } else {
          StoredBlob bad = *blobs[chaos.uniform(blobs.size())];
          if (!bad.data.empty())
            bad.data[chaos.uniform(bad.data.size())] ^= 0xff;
          cluster.node(node).put(bad);
          std::printf("flipped a byte in %s#%u on node %u\n",
                      bad.object.c_str(), bad.shard_index, node);
        }
      } else if (cmd == "attack") {
        const auto touched = adversary.corrupt_epoch(cluster);
        cluster.advance_epoch();
        std::printf("epoch %u: corrupted node %u; harvest now %llu bytes "
                    "from %zu nodes ever\n",
                    cluster.now(), touched.empty() ? 0 : touched[0],
                    static_cast<unsigned long long>(
                        adversary.bytes_harvested()),
                    adversary.nodes_ever_corrupted());
      } else if (cmd == "break") {
        std::string s;
        in >> s;
        registry.set_break_epoch(scheme_by_name(s), cluster.now());
        std::printf("%s broken as of epoch %u\n", s.c_str(), cluster.now());
      } else if (cmd == "epoch") {
        cluster.advance_epoch();
        std::printf("epoch %u\n", cluster.now());
      } else if (cmd == "exposure") {
        const ExposureAnalyzer analyzer(archive, registry);
        const auto report = analyzer.analyze(
            adversary.harvest(), cluster.wiretap(), cluster.now());
        for (const auto& o : report.objects) {
          std::printf("  %-16s %s%s\n", o.id.c_str(),
                      o.content_exposed
                          ? ("EXPOSED@" + std::to_string(o.exposed_at) +
                             " (" + o.mechanism + ")")
                                .c_str()
                          : "confidential",
                      o.ciphertext_held && !o.content_exposed
                          ? " [ciphertext held]"
                          : "");
        }
        if (report.objects.empty()) std::printf("  (archive empty)\n");
      } else if (cmd == "report") {
        const StorageReport s = archive.storage_report();
        const NetworkStats& net = cluster.stats();
        std::printf(
            "objects %zu; %llu logical -> %llu stored (%.2fx); "
            "up %llu B, down %llu B, refresh %llu B; wiretap %zu "
            "conversations\n",
            archive.manifests().size(),
            static_cast<unsigned long long>(s.logical_bytes),
            static_cast<unsigned long long>(s.stored_bytes), s.overhead(),
            static_cast<unsigned long long>(net.bytes_up),
            static_cast<unsigned long long>(net.bytes_down),
            static_cast<unsigned long long>(net.refresh_bytes),
            cluster.wiretap().size());
      } else {
        std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
      }
    } catch (const Error& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  std::printf("\n");
  return 0;
}
