// Crypto-agility drills: what does it cost to react when a cipher nears
// obsolescence?
//
// Three responses on the same archive (ArchiveSafeLT-style cascade over
// RS(6,9)):
//   1. full re-encryption  — download, decrypt, re-encrypt, re-upload
//                            (the §3.2 naive path);
//   2. cascade re-wrap     — add an outer layer without decrypting
//                            (ArchiveSafeLT's move; same I/O, no
//                            plaintext exposure, key history grows);
//   3. timestamp renewal   — integrity chains hop to a new signature
//                            generation (cheap: metadata only).
//   4. the background way  — the MigrationEngine runs the same
//                            re-encryption as an incremental job:
//                            batched commits, a durable checkpoint
//                            cursor, crash + resume on a fresh archive
//                            instance, optional bandwidth throttling.
//
// The example measures actual bytes moved on the simulated cluster for
// each, then projects the I/O onto a real archive with the §3.2 cost
// model.
#include <cstdio>

#include "archive/archive.h"
#include "archive/cost.h"
#include "archive/migration.h"
#include "crypto/chacha20.h"

int main() {
  using namespace aegis;

  ArchivalPolicy policy = ArchivalPolicy::ArchiveSafeLT();
  policy.migrate_batch = 3;  // checkpoint every 3 objects
  Cluster cluster(policy.n, policy.channel, 11);
  SchemeRegistry registry;
  ChaChaRng rng(11);
  TimestampAuthority tsa(rng, SchemeId::kSigGenA);
  Archive archive(cluster, policy, registry, tsa, rng);

  // A small working set; per-object numbers scale linearly.
  SimRng workload(3);
  const unsigned kObjects = 8;
  const std::size_t kSize = 32 * 1024;
  std::uint64_t logical = 0;
  for (unsigned i = 0; i < kObjects; ++i) {
    archive.put("tape-" + std::to_string(i), workload.bytes(kSize));
    logical += kSize;
  }

  const auto baseline = cluster.stats();
  std::printf("archive: %u objects, %llu logical bytes, cascade depth %zu\n\n",
              kObjects, static_cast<unsigned long long>(logical),
              policy.ciphers.size());

  // --- Response 1: full re-encryption. --------------------------------
  archive.reencrypt({SchemeId::kChaCha20, SchemeId::kSpeck128Ctr});
  const auto after_reenc = cluster.stats();
  const std::uint64_t reenc_io =
      (after_reenc.bytes_down - baseline.bytes_down) +
      (after_reenc.bytes_up - baseline.bytes_up);
  std::printf(
      "full re-encryption : %10llu bytes moved (%.1fx logical) — and the "
      "plaintext\n                     existed in memory during the pass\n",
      static_cast<unsigned long long>(reenc_io),
      static_cast<double>(reenc_io) / logical);

  // --- Response 2: cascade re-wrap. ------------------------------------
  archive.rewrap(SchemeId::kAes128Ctr);
  const auto after_rewrap = cluster.stats();
  const std::uint64_t rewrap_io =
      (after_rewrap.bytes_down - after_reenc.bytes_down) +
      (after_rewrap.bytes_up - after_reenc.bytes_up);
  std::printf(
      "cascade re-wrap    : %10llu bytes moved (%.1fx logical) — no "
      "plaintext surfaced,\n                     stack is now %zu layers "
      "(key history retained)\n",
      static_cast<unsigned long long>(rewrap_io),
      static_cast<double>(rewrap_io) / logical,
      archive.manifest("tape-0").current_ciphers().size());

  // --- Response 3: timestamp renewal. ----------------------------------
  tsa.rotate(SchemeId::kSigGenB, rng);
  archive.renew_timestamps();
  std::printf(
      "timestamp renewal  : %10u bytes moved — chains now %zu links, "
      "metadata only\n\n",
      0u, archive.manifest("tape-0").chain.length());

  // --- Response 4: the background engine. ------------------------------
  // The one-shot calls above block until the whole pass lands; §3.2 says
  // the real pass takes months, so production runs it incrementally. The
  // MigrationEngine commits `migrate_batch` objects per step and hands
  // back a durable cursor; (cursor, catalog) saved together is a
  // checkpoint any fresh process can resume from.
  std::printf("background engine  : re-encrypting to a fresh stack in "
              "batches of %u\n",
              policy.migrate_batch);
  MigrationSpec spec;
  spec.kind = MigrationKind::kReencrypt;
  spec.fresh = {SchemeId::kAes256Ctr, SchemeId::kChaCha20};
  MigrationEngine engine(archive, spec);
  engine.step();  // one checkpoint interval, then the process "crashes"
  const Bytes cursor = engine.checkpoint();
  const Bytes catalog = archive.export_catalog();
  std::printf(
      "                     step 1: %llu/%llu objects committed, then "
      "simulated crash\n"
      "                     checkpoint = %zu B cursor + %zu B catalog\n",
      static_cast<unsigned long long>(engine.state().objects_done),
      static_cast<unsigned long long>(engine.state().objects_total),
      cursor.size(), catalog.size());

  // A brand-new Archive instance (new process) restores the pair over
  // the same cluster and finishes the job. Mid-flight objects stay
  // readable the whole time.
  Archive restored(cluster, policy, registry, tsa, rng);
  restored.import_catalog(catalog);
  MigrationEngine resumed(restored, MigrationState::deserialize(cursor));
  unsigned steps = 1;
  while (!resumed.done()) {
    resumed.step();
    ++steps;
  }
  std::printf(
      "                     resumed and finished: %llu objects, %llu "
      "bytes moved, %u steps\n"
      "                     (policy.migrate_bandwidth_frac throttles the "
      "pass; 0.5 = x2 wall clock)\n\n",
      static_cast<unsigned long long>(resumed.state().objects_done),
      static_cast<unsigned long long>(resumed.state().bytes_moved), steps);

  // Everything still reads back — through the restored instance.
  bool ok = true;
  for (unsigned i = 0; i < kObjects; ++i)
    ok = ok && !restored.get("tape-" + std::to_string(i)).empty();
  std::printf("post-migration reads: %s\n\n", ok ? "all OK" : "FAILED");

  // Project the measured I/O multiple onto real archives (Sec. 3.2).
  const double io_multiple = static_cast<double>(reenc_io) / logical;
  std::printf(
      "projection: a pass that moves %.1fx the logical archive, at each "
      "site's\naggregate bandwidth (x2 write/verify, x2 reserved "
      "capacity):\n",
      io_multiple);
  for (const SiteModel& site : SiteModel::paper_sites()) {
    const auto e = estimate_reencryption(site, 2.0, 2.0);
    std::printf("  %-18s %7.1f months\n", site.name.c_str(),
                e.practical_months * io_multiple / 2.0);
    // io_multiple/2: the model's read+write already counts 2x.
  }
  std::printf(
      "\nMoral: re-wrap beats re-encrypt on exposure but not on I/O — "
      "both pay the\nfull read+write pass that Sec. 3.2 shows takes "
      "months-to-years, and neither\nhelps data an adversary has already "
      "harvested (see hndl_attack).\n");
  return 0;
}
