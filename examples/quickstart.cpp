// Quickstart: store and retrieve a document with the aegis archive.
//
//   $ ./quickstart
//
// Builds a 5-node simulated cluster, archives a document under the
// POTSHARDS-style secret-sharing policy, survives two node failures,
// verifies integrity, and shows that the archive's guarantees are
// information-theoretic (no cryptanalytic break schedule can matter).
#include <cstdio>

#include "archive/analyzer.h"
#include "archive/archive.h"
#include "crypto/chacha20.h"

int main() {
  using namespace aegis;

  // 1. A policy: Shamir 3-of-5 sharing, TLS transport, one shard per node.
  ArchivalPolicy policy = ArchivalPolicy::Potshards();
  std::printf("policy: %s (encoding=%s, t=%u, n=%u)\n", policy.name.c_str(),
              to_string(policy.encoding), policy.t, policy.n);

  // 2. The substrate: cluster, break-timeline registry, timestamp
  //    authority, and a cryptographic RNG.
  Cluster cluster(5, policy.channel, /*seed=*/2024);
  SchemeRegistry registry;
  ChaChaRng rng(2024);
  TimestampAuthority tsa(rng);

  Archive archive(cluster, policy, registry, tsa, rng);

  // 3. Store.
  const Bytes document = to_bytes(std::string_view(
      "Deed of ownership, recorded 2026-07-05. Keep for 100 years."));
  archive.put("deed-0001", document);
  std::printf("stored %zu bytes as %u shares (measured overhead %.2fx)\n",
              document.size(), policy.n,
              archive.storage_report().overhead());

  // 4. Retrieve — even after losing n - t nodes.
  cluster.fail_node(0);
  cluster.fail_node(3);
  const Bytes back = archive.get("deed-0001");
  std::printf("retrieved after 2 node failures: \"%s\"\n",
              to_string(back).c_str());

  // 5. Verify integrity (shard hashes + timestamp chain).
  cluster.restore_node(0);
  cluster.restore_node(3);
  const VerifyReport report = archive.verify("deed-0001");
  std::printf("verify: %u shards seen, %u bad, chain=%s -> %s\n",
              report.shards_seen, report.shards_bad,
              to_string(report.chain_status),
              report.ok() ? "OK" : "FAILED");

  // 6. The long-term point: classification of what you just used.
  const PolicyClassification c = classify(policy);
  std::printf(
      "confidentiality: at rest = %s, in transit = %s\n"
      "(at-rest secrecy here cannot be broken by future cryptanalysis;\n"
      " the trade-off is the %.1fx storage cost — see DESIGN.md)\n",
      confidentiality_label(c.at_rest), confidentiality_label(c.in_transit),
      c.nominal_overhead);
  return 0;
}
