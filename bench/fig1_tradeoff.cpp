// Figure 1: the storage-cost vs. security-level quadrant, measured.
//
// The paper draws this qualitatively; we regenerate it quantitatively:
//   * storage cost  — measured blowup (stored bytes / logical bytes) of
//     each encoding run end-to-end through the archive;
//   * security level — a composite score from the encoding's long-term
//     confidentiality class, whether HNDL cryptanalysis can ever expose
//     harvested material, and resistance to sub-threshold local leakage.
//
// Expected shape (the paper's quadrants): replication and erasure coding
// sit at zero security (cost 3x and 1.5x); traditional encryption is
// cheap but falls to future cryptanalysis; entropically secure
// encryption is cheap with conditional ITS; secret sharing is expensive
// with full ITS; packed sharing pulls the cost down at the same class;
// LRSS pays extra for leakage resistance on top of ITS.
#include <cstdio>
#include <vector>

#include "archive/analyzer.h"
#include "archive/obsolescence.h"
#include "sharing/lrss.h"

namespace aegis {
namespace {

struct Row {
  ArchivalPolicy policy;
};

/// Security score in [0, 10]:
///   class: none=0, computational=2, entropic=5, ITS=8
///   +1 if no cryptanalytic break schedule can ever expose harvested
///      at-rest material (measured, not asserted)
///   +1 if sub-threshold single-bit local leakage does not reveal a
///      secret functional (measured with the GF(2^8) attack planner)
double security_score(const ArchivalPolicy& p, bool hndl_immune,
                      bool leak_resilient) {
  double s = 0;
  switch (classify(p).at_rest) {
    case SecurityClass::kNone: s = 0; break;
    case SecurityClass::kComputational: s = 2; break;
    case SecurityClass::kEntropic: s = 5; break;
    case SecurityClass::kInformationTheoretic: s = 8; break;
  }
  if (hndl_immune) s += 1;
  if (leak_resilient) s += 1;
  return s;
}

}  // namespace
}  // namespace aegis

int main() {
  using namespace aegis;

  std::vector<ArchivalPolicy> encodings = {
      ArchivalPolicy::FigReplication(), ArchivalPolicy::FigErasure(),
      ArchivalPolicy::FigEncryption(),  ArchivalPolicy::FigEntropic(),
      ArchivalPolicy::FigShamir(),      ArchivalPolicy::FigPacked(),
      ArchivalPolicy::FigLrss()};

  std::printf(
      "Figure 1 (measured): storage cost vs security level per encoding\n"
      "%-26s %11s %9s %13s %13s %9s\n",
      "encoding", "overhead(x)", "class", "HNDL-immune", "leak-resist",
      "score");

  for (ArchivalPolicy p : encodings) {
    // Isolate the at-rest encoding: transport over the ITS channel so
    // wiretap breaks cannot contaminate the measurement.
    p.channel = ChannelKind::kQkd;

    // Measure the blowup by actually archiving 64 KiB.
    TimelineConfig cfg;
    cfg.epochs = 1;
    cfg.object_count = 4;
    cfg.object_size = 16384;
    const TimelineResult base = run_timeline(p, cfg);

    // HNDL immunity of the encoding: the adversary sweeps one node per
    // epoch until it holds threshold-1 distinct shards (the bounded-
    // subset premise of Figure 1's axis), and EVERY breakable scheme
    // falls at epoch 1. Does the analyzer hand it the content?
    TimelineConfig hndl = cfg;
    hndl.epochs = std::max(1u, p.reconstruction_threshold() - 1);
    hndl.breaks = {{SchemeId::kAes128Ctr, 1},      {SchemeId::kAes256Ctr, 1},
                   {SchemeId::kChaCha20, 1},       {SchemeId::kSpeck128Ctr, 1},
                   {SchemeId::kSha256, 1},         {SchemeId::kSha512, 1},
                   {SchemeId::kHmacSha256, 1},     {SchemeId::kEcdhSecp256k1, 1},
                   {SchemeId::kSchnorrSecp256k1, 1}};
    const TimelineResult attacked = run_timeline(p, hndl);
    const bool hndl_immune = attacked.exposure.exposed_count == 0;

    // Leakage resistance: does the one-bit-per-share linear attack find
    // a secret functional against this encoding's stored shares?
    // Measured with the actual attack planners for both GF(2^8) Shamir
    // and GF(2^16) packed sharing. A small-n packed geometry can be
    // incidentally safe, so the packed point is charged at the archival
    // scale it is meant for (many shares).
    bool leak_resilient = true;
    if (p.encoding == EncodingKind::kShamir) {
      std::vector<std::uint8_t> xs;
      for (unsigned i = 1; i <= p.n; ++i)
        xs.push_back(static_cast<std::uint8_t>(i));
      leak_resilient = !plan_shamir_lsb_attack(p.t, xs).feasible;
    } else if (p.encoding == EncodingKind::kPacked) {
      const PackedSharing at_scale(p.t, p.k, 16 * p.t + p.k + 1);
      leak_resilient = !plan_packed_lsb_attack(at_scale).feasible;
    } else if (p.encoding == EncodingKind::kReplication ||
               p.encoding == EncodingKind::kErasure) {
      leak_resilient = false;
    }

    const double overhead = base.storage.overhead();
    const double score = security_score(p, hndl_immune, leak_resilient);
    std::printf("%-26s %11.2f %9s %13s %13s %9.1f\n", p.name.c_str(),
                overhead, confidentiality_label(classify(p).at_rest),
                hndl_immune ? "yes" : "NO", leak_resilient ? "yes" : "NO",
                score);
  }

  std::printf(
      "\nQuadrant check (paper's Figure 1):\n"
      "  low-cost/low-security   : erasure, traditional encryption\n"
      "  low-cost/mid-security   : entropically secure encryption\n"
      "  mid-cost/high-security  : packed secret sharing\n"
      "  high-cost/high-security : secret sharing, LRSS\n"
      "  high-cost/low-security  : replication\n");
  return 0;
}
