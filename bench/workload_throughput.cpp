// End-to-end archive throughput per policy under a realistic synthetic
// workload (log-normal sizes, mixed structured/random content).
//
// This is the "compute tax" companion to Figure 1's storage axis: what
// does each protection level cost in ingest and retrieval bandwidth on
// the same hardware? It also times one full proactive-refresh pass —
// the recurring cost §3.2 worries about — for the policies that run one.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive.h"
#include "archive/workload.h"
#include "crypto/chacha20.h"

namespace {

double secs_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace aegis;

  WorkloadConfig wl;
  wl.object_count = 48;
  wl.median_size = 16 * 1024;
  wl.size_sigma = 1.0;
  wl.max_size = 256 * 1024;
  wl.seed = 7;

  std::vector<std::string> metric_lines;
  const std::vector<ArchivalPolicy> policies = {
      ArchivalPolicy::FigReplication(), ArchivalPolicy::FigErasure(),
      ArchivalPolicy::CloudBaseline(),  ArchivalPolicy::ArchiveSafeLT(),
      ArchivalPolicy::AontRs(),         ArchivalPolicy::Potshards(),
      ArchivalPolicy::VsrArchive(),     ArchivalPolicy::FigPacked()};

  std::printf(
      "End-to-end throughput, synthetic workload (%u objects, log-normal "
      "median %.0f KiB)\n\n%-22s %10s %11s %11s %13s %11s\n",
      wl.object_count, wl.median_size / 1024, "policy", "stored(x)",
      "ingest MB/s", "read MB/s", "refresh s/GB", "WAN sim s");

  for (const ArchivalPolicy& p : policies) {
    Cluster cluster(12, ChannelKind::kPlain, 1);  // isolate encoding cost
    SchemeRegistry registry;
    ChaChaRng rng(1);
    TimestampAuthority tsa(rng);
    Archive archive(cluster, p, registry, tsa, rng);

    WorkloadGenerator gen(wl);
    std::vector<ObjectId> ids;
    std::uint64_t logical = 0;

    auto start = std::chrono::steady_clock::now();
    while (gen.remaining() > 0) {
      WorkloadItem item = gen.next();
      logical += item.data.size();
      archive.put(item.id, item.data);
      ids.push_back(item.id);
    }
    const double ingest_s = secs_since(start);

    start = std::chrono::steady_clock::now();
    for (const ObjectId& id : ids) (void)archive.get(id);
    const double read_s = secs_since(start);

    double refresh_s_per_gb = 0.0;
    if (p.proactive_refresh) {
      start = std::chrono::steady_clock::now();
      archive.refresh();
      refresh_s_per_gb = secs_since(start) / (logical / 1.0e9);
    }

    const double mb = logical / 1.0e6;
    // Virtual WAN time (40ms + 50 MB/s per conversation, serialized):
    // what the same traffic would cost against real geo-dispersed nodes.
    std::printf("%-22s %9.2fx %11.1f %11.1f %13.1f %11.1f\n",
                p.name.c_str(), archive.storage_report().overhead(),
                mb / ingest_s, mb / read_s, refresh_s_per_gb,
                cluster.simulated_ms() / 1000.0);

    // Full observability snapshot per policy, kept out of the table and
    // printed at the end (CI scrapes '^JSON ' into the bench artifact).
    for (std::string& line : cluster.obs().metrics().snapshot().to_json_lines(
             "workload." + p.name))
      metric_lines.push_back(std::move(line));
  }

  // -------------------------------------------------- pool scaling
  // Same workload under the heaviest sharing policy at several
  // encode_workers settings. Output is bit-identical across rows (the
  // determinism contract); only wall-clock moves, and only on
  // multi-core hosts.
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "\nPool scaling, policy potshards (hardware threads: %u)\n\n"
      "%-16s %11s %11s\n",
      hw, "encode_workers", "ingest MB/s", "read MB/s");
  for (unsigned workers : {1u, 2u, 4u, hw}) {
    ArchivalPolicy p = ArchivalPolicy::Potshards();
    p.encode_workers = workers;
    Cluster cluster(12, ChannelKind::kPlain, 1);
    SchemeRegistry registry;
    ChaChaRng rng(1);
    TimestampAuthority tsa(rng);
    Archive archive(cluster, p, registry, tsa, rng);

    WorkloadGenerator gen(wl);
    std::vector<ObjectId> ids;
    std::uint64_t logical = 0;
    auto start = std::chrono::steady_clock::now();
    while (gen.remaining() > 0) {
      WorkloadItem item = gen.next();
      logical += item.data.size();
      archive.put(item.id, item.data);
      ids.push_back(item.id);
    }
    const double ingest_s = secs_since(start);
    start = std::chrono::steady_clock::now();
    for (const ObjectId& id : ids) (void)archive.get(id);
    const double read_s = secs_since(start);
    const double mb = logical / 1.0e6;
    std::printf("%-16u %11.1f %11.1f\n", workers, mb / ingest_s,
                mb / read_s);
  }

  std::printf(
      "\nShape: replication is cheapest (copying) and reads fastest "
      "(first replica);\nciphers add their keystream cost; Shamir "
      "splitting pays ~t field multiplies\nper byte per share; the "
      "refresh column is the recurring bill only sharing\npolicies pay "
      "(simulation includes full transport + integrity bookkeeping,\nso "
      "absolute MB/s are simulator numbers — ratios are the result).\n");

  std::printf("\n");
  for (const std::string& line : metric_lines)
    std::printf("JSON %s\n", line.c_str());
  return 0;
}
