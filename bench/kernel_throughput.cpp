// Data-plane kernel benchmarks with machine-readable output.
//
// Measures the GF(256) row kernels (every selectable implementation
// against the scalar baseline), cached-vs-per-call Reed-Solomon codec
// construction, end-to-end RS(10,14) encode, and Shamir splitting —
// the exact quantities the ISSUE-2 fast path targets. Each row is also
// emitted as a JSON line (prefix "JSON ", the BENCH_*.json convention
// shared with bench/fault_recovery) so the perf trajectory can be
// diffed across PRs; the repo seeds BENCH_kernels.json with one run.
//
// Run:   ./build/bench/kernel_throughput
// JSON:  ./build/bench/kernel_throughput | grep '^JSON ' | cut -c6- \
//            > BENCH_kernels.json
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "erasure/codec_cache.h"
#include "erasure/reed_solomon.h"
#include "gf/gf256.h"
#include "sharing/shamir.h"
#include "util/rng.h"
#include "util/thread_pool.h"

#if defined(__linux__)
#include <sys/utsname.h>
#endif

namespace {

using namespace aegis;
using Clock = std::chrono::steady_clock;

std::string machine_tag() {
  if (const char* env = std::getenv("AEGIS_BENCH_MACHINE")) return env;
  std::string tag;
#if defined(__linux__)
  utsname u{};
  if (uname(&u) == 0) tag = u.machine;
#endif
  if (tag.empty()) tag = "unknown";
  tag += "-" + std::to_string(std::thread::hardware_concurrency()) + "c";
  return tag;
}

/// Runs fn repeatedly for >= 0.25 s (after one warmup call) and returns
/// throughput in MB/s given bytes-per-call.
template <typename Fn>
double measure_mbs(std::size_t bytes_per_call, Fn&& fn) {
  fn();  // warmup (page-in, first-touch, branch warm)
  const auto start = Clock::now();
  std::size_t calls = 0;
  double elapsed = 0.0;
  do {
    fn();
    ++calls;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < 0.25);
  return static_cast<double>(bytes_per_call) * calls / elapsed / 1.0e6;
}

struct KernelRow {
  gf256::RowKernel id;
  const char* name;
};

constexpr KernelRow kKernels[] = {
    {gf256::RowKernel::kScalar, "scalar"},
    {gf256::RowKernel::kPortable, "portable"},
    {gf256::RowKernel::kSsse3, "ssse3"},
    {gf256::RowKernel::kAvx2, "avx2"},
};

}  // namespace

int main() {
  const std::string machine = machine_tag();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("Data-plane kernel throughput (machine %s, auto kernel %s)\n\n",
              machine.c_str(), gf256::row_kernel_name());

  SimRng rng(7);
  const std::vector<std::size_t> lens = {4 * 1024, 64 * 1024, 256 * 1024,
                                         1024 * 1024};

  // ------------------------------------------------ GF(256) row kernels
  std::printf("%-12s %-10s %10s %12s %10s\n", "op", "kernel", "len",
              "MB/s", "vs scalar");
  for (const char* op : {"mul_add_row", "mul_row"}) {
    const bool is_add = std::string(op) == "mul_add_row";
    for (std::size_t len : lens) {
      Bytes src = rng.bytes(len);
      Bytes dst = rng.bytes(len);
      double scalar_mbs = 0.0;
      for (const KernelRow& k : kKernels) {
        if (!gf256::row_kernel_available(k.id)) continue;
        gf256::set_row_kernel(k.id);
        const double mbs = measure_mbs(len, [&] {
          if (is_add)
            gf256::mul_add_row(MutByteView(dst.data(), len), src, 0x53);
          else
            gf256::mul_row(MutByteView(dst.data(), len), src, 0x53);
        });
        if (k.id == gf256::RowKernel::kScalar) scalar_mbs = mbs;
        const double speedup = scalar_mbs > 0 ? mbs / scalar_mbs : 1.0;
        std::printf("%-12s %-10s %10zu %12.1f %9.2fx\n", op, k.name, len,
                    mbs, speedup);
        std::printf(
            "JSON {\"bench\":\"kernel_throughput\",\"op\":\"%s\","
            "\"kernel\":\"%s\",\"len\":%zu,\"mb_per_s\":%.1f,"
            "\"speedup_vs_scalar\":%.2f,\"machine\":\"%s\",\"threads\":1}\n",
            op, k.name, len, mbs, speedup, machine.c_str());
      }
    }
  }
  gf256::set_row_kernel(gf256::RowKernel::kAuto);

  // --------------------------------------------------- RS(10,14) encode
  const std::size_t kBuf = 256 * 1024;
  const Bytes data = rng.bytes(kBuf);
  std::printf("\n%-28s %12s %10s\n", "rs_encode_10_14 variant", "MB/s",
              "vs base");

  struct RsVariant {
    const char* name;
    gf256::RowKernel kernel;
    bool cached;
    unsigned workers;  // 0 = no pool
  };
  const RsVariant variants[] = {
      {"scalar_percall", gf256::RowKernel::kScalar, false, 0},
      {"scalar_cached", gf256::RowKernel::kScalar, true, 0},
      {"simd_cached", gf256::RowKernel::kAuto, true, 0},
      {"simd_cached_pool2", gf256::RowKernel::kAuto, true, 2},
      {"simd_cached_pool4", gf256::RowKernel::kAuto, true, 4},
  };
  double base_mbs = 0.0;
  for (const RsVariant& v : variants) {
    gf256::set_row_kernel(v.kernel);
    ThreadPool pool(v.workers);
    ThreadPool* p = v.workers > 0 ? &pool : nullptr;
    const double mbs = measure_mbs(kBuf, [&] {
      if (v.cached) {
        (void)rs_codec(10, 14).encode(data, p);
      } else {
        (void)ReedSolomon(10, 14).encode(data, p);
      }
    });
    if (base_mbs == 0.0) base_mbs = mbs;
    std::printf("%-28s %12.1f %9.2fx\n", v.name, mbs, mbs / base_mbs);
    std::printf(
        "JSON {\"bench\":\"kernel_throughput\",\"op\":\"rs_encode_10_14\","
        "\"kernel\":\"%s\",\"len\":%zu,\"mb_per_s\":%.1f,"
        "\"speedup_vs_scalar\":%.2f,\"machine\":\"%s\",\"threads\":%u}\n",
        v.name, kBuf, mbs, mbs / base_mbs, machine.c_str(),
        v.workers > 0 ? v.workers : 1);
  }
  gf256::set_row_kernel(gf256::RowKernel::kAuto);

  // -------------------------------------------------- Shamir split(3,5)
  std::printf("\n%-28s %12s %10s\n", "shamir_split_3_5 variant", "MB/s",
              "vs base");
  const struct {
    const char* name;
    gf256::RowKernel kernel;
  } shamir_variants[] = {
      {"scalar", gf256::RowKernel::kScalar},
      {"simd", gf256::RowKernel::kAuto},
  };
  double shamir_base = 0.0;
  for (const auto& v : shamir_variants) {
    gf256::set_row_kernel(v.kernel);
    SimRng srng(3);
    const double mbs =
        measure_mbs(kBuf, [&] { (void)shamir_split(data, 3, 5, srng); });
    if (shamir_base == 0.0) shamir_base = mbs;
    std::printf("%-28s %12.1f %9.2fx\n", v.name, mbs, mbs / shamir_base);
    std::printf(
        "JSON {\"bench\":\"kernel_throughput\",\"op\":\"shamir_split_3_5\","
        "\"kernel\":\"%s\",\"len\":%zu,\"mb_per_s\":%.1f,"
        "\"speedup_vs_scalar\":%.2f,\"machine\":\"%s\",\"threads\":1}\n",
        v.name, kBuf, mbs, mbs / shamir_base, machine.c_str());
  }
  gf256::set_row_kernel(gf256::RowKernel::kAuto);

  std::printf(
      "\nShape: the PSHUFB kernels replace two table lookups per byte with\n"
      "two 16-byte shuffles per 16/32 bytes, so mul_add_row should gain\n"
      ">= 4x at 256 KiB rows; RS encode inherits most of it (the target\n"
      "is >= 2x end-to-end) plus the amortized codec construction; pool\n"
      "variants only help on multi-core hosts (%u hardware threads "
      "here).\n",
      hw);
  return 0;
}
