// The Harvest-Now-Decrypt-Later timeline experiment (the paper's §3.1/
// §3.2 narrative, measured).
//
// One shared scenario: f=1 mobile sweep adversary, passive global
// wiretap, AES-256 and ECDH fall at epoch 12, ChaCha20 at epoch 22,
// Speck at epoch 30, 40 epochs total. For each policy we report when
// (if ever) the adversary first holds object content and through which
// route. The paper's claims this demonstrates:
//   * re-encryption/cascades do not stop HNDL on already-stolen data;
//   * static secret sharing falls to the mobile adversary alone;
//   * proactive refresh closes that, but TLS transport re-opens it;
//   * only the LINCOS-shaped stack (ITS at rest + ITS transit +
//     refresh) survives the full schedule.
#include <cstdio>
#include <vector>

#include "archive/analyzer.h"
#include "archive/obsolescence.h"

int main() {
  using namespace aegis;

  TimelineConfig cfg;
  cfg.epochs = 40;
  cfg.object_count = 4;
  cfg.object_size = 4096;
  cfg.adversary_budget = 1;
  cfg.strategy = CorruptionStrategy::kSweep;
  cfg.breaks = {{SchemeId::kAes256Ctr, 12},
                {SchemeId::kEcdhSecp256k1, 12},
                {SchemeId::kChaCha20, 22},
                {SchemeId::kSpeck128Ctr, 30},
                {SchemeId::kSha256, 22}};

  std::vector<ArchivalPolicy> policies = {
      ArchivalPolicy::CloudBaseline(), ArchivalPolicy::ArchiveSafeLT(),
      ArchivalPolicy::AontRs(),        ArchivalPolicy::Potshards(),
      ArchivalPolicy::VsrArchive(),    ArchivalPolicy::HasDpss(),
      ArchivalPolicy::Lincos()};

  std::printf(
      "HNDL timeline: breaks AES/ECDH@12, ChaCha/SHA-256@22, Speck@30; "
      "f=1 sweep adversary, 40 epochs\n\n"
      "%-18s %-9s %-10s %-46s %9s\n",
      "policy", "exposed", "first@", "mechanism", "stored(x)");

  for (const ArchivalPolicy& p : policies) {
    const TimelineResult r = run_timeline(p, cfg);
    std::string mech = "-";
    std::string at = "-";
    if (r.exposure.exposed_count > 0) {
      at = std::to_string(r.exposure.first_exposure);
      for (const auto& o : r.exposure.objects) {
        if (o.content_exposed && o.exposed_at == r.exposure.first_exposure) {
          mech = o.mechanism;
          break;
        }
      }
    }
    std::printf("%-18s %u/%-7u %-10s %-46s %9.2f\n", r.policy_name.c_str(),
                r.exposure.exposed_count,
                static_cast<unsigned>(r.exposure.objects.size()), at.c_str(),
                mech.substr(0, 46).c_str(), r.storage.overhead());
  }

  std::printf(
      "\nExpected shape: cloud exposed @12 (harvested ciphertext falls "
      "with AES);\ncascade holds to @30 (last layer); AONT-RS falls to "
      "share collection alone;\nPOTSHARDS falls @2 (t=3 nodes swept, no "
      "cryptanalysis); VSR holds at rest but\nfalls @12 via recorded TLS "
      "refresh traffic; HasDPSS falls @12 with its data\ncipher (the ITS "
      "in its Table 1 row is about keys, not data); only the\nLINCOS "
      "stack (ITS rest + ITS transit + refresh) survives the whole "
      "schedule.\n");
  return 0;
}
