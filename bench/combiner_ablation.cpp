// Ablation: robust-combiner constructions (§3.2's hedge against single-
// cipher breaks) — cascade vs XOR-split, measured on three axes:
// ciphertext expansion, throughput, and the break schedule each
// construction survives.
#include <chrono>
#include <cstdio>

#include "crypto/chacha20.h"
#include "crypto/combiner.h"
#include "util/rng.h"

namespace {

using namespace aegis;

double mbps(std::size_t bytes, double secs) {
  return static_cast<double>(bytes) / 1.0e6 / secs;
}

template <typename Fn>
double time_it(Fn&& fn, int iters = 8) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count() / iters;
}

}  // namespace

int main() {
  using namespace aegis;

  ChaChaRng rng(1);
  SimRng sim(1);
  const Bytes msg = sim.bytes(1 << 20);  // 1 MiB

  std::printf(
      "Robust combiners: cascade vs XOR-split (1 MiB messages)\n\n"
      "%-34s %10s %12s %-26s\n",
      "construction", "expand", "MB/s", "falls when");

  // Cascades of depth 1..3.
  const SchemeId kLayers[3] = {SchemeId::kAes256Ctr, SchemeId::kChaCha20,
                               SchemeId::kSpeck128Ctr};
  for (unsigned depth = 1; depth <= 3; ++depth) {
    std::vector<SchemeId> comps(kLayers, kLayers + depth);
    const CascadeCombiner cc(comps);
    const auto keys = cc.keygen(rng);
    const double secs = time_it([&] { (void)cc.seal(msg, keys); });

    std::string name = "cascade[";
    for (unsigned i = 0; i < depth; ++i)
      name += std::string(i ? "+" : "") + scheme_name(comps[i]);
    name += "]";
    std::printf("%-34s %9.2fx %12.1f %-26s\n", name.c_str(), cc.expansion(),
                mbps(msg.size(), secs),
                depth == 1 ? "its one cipher breaks" : "ALL layers break");
  }

  // XOR combiner.
  {
    const XorCombiner xc(SchemeId::kAes256Ctr, SchemeId::kChaCha20);
    const auto keys = xc.keygen(rng);
    const double secs = time_it([&] { (void)xc.seal(msg, keys, rng); });
    std::printf("%-34s %9.2fx %12.1f %-26s\n", "xor-split[AES-256|ChaCha20]",
                xc.expansion(), mbps(msg.size(), secs),
                "BOTH components break");
  }

  // Break-schedule survival table.
  std::printf("\nSurvival vs break schedules (o = survives, X = falls):\n"
              "%-34s %12s %12s %12s\n",
              "construction", "AES@10", "AES+ChaCha", "all three");
  struct Case {
    const char* name;
    Epoch falls[3];
  };
  SchemeRegistry r1, r2, r3;
  r1.set_break_epoch(SchemeId::kAes256Ctr, 10);
  r2.set_break_epoch(SchemeId::kAes256Ctr, 10);
  r2.set_break_epoch(SchemeId::kChaCha20, 20);
  r3.set_break_epoch(SchemeId::kAes256Ctr, 10);
  r3.set_break_epoch(SchemeId::kChaCha20, 20);
  r3.set_break_epoch(SchemeId::kSpeck128Ctr, 30);

  const CascadeCombiner c1({SchemeId::kAes256Ctr});
  const CascadeCombiner c2({SchemeId::kAes256Ctr, SchemeId::kChaCha20});
  const CascadeCombiner c3(
      {SchemeId::kAes256Ctr, SchemeId::kChaCha20, SchemeId::kSpeck128Ctr});
  const XorCombiner x2(SchemeId::kAes256Ctr, SchemeId::kChaCha20);

  auto cell = [](Epoch e) -> std::string {
    return e == kNever ? "o" : "X@" + std::to_string(e);
  };
  auto row = [&](const char* name, Epoch a, Epoch b, Epoch c) {
    std::printf("%-34s %12s %12s %12s\n", name, cell(a).c_str(),
                cell(b).c_str(), cell(c).c_str());
  };
  row("single AES-256", c1.falls_at(r1), c1.falls_at(r2), c1.falls_at(r3));
  row("cascade depth 2", c2.falls_at(r1), c2.falls_at(r2), c2.falls_at(r3));
  row("cascade depth 3", c3.falls_at(r1), c3.falls_at(r2), c3.falls_at(r3));
  row("xor-split (AES,ChaCha)", x2.falls_at(r1), x2.falls_at(r2),
      x2.falls_at(r3));

  std::printf(
      "\nShape: hedging costs throughput (cascade) or storage (xor-split) "
      "and both\nsurvive single-cipher breaks — but NONE of them stop "
      "HNDL on harvested\nciphertext once the whole portfolio falls "
      "(see bench/hndl_timeline).\n");
  return 0;
}
