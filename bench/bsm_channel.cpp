// §4's Bounded Storage Model direction, measured: the "practical
// evaluation the BSM is overdue for" at laptop scale.
//
// Sweeps (1) the adversary storage ratio at fixed honest sampling —
// success probability should fall off as ratio^|intersection| — and
// (2) the honest sampling rate — key-agreement success and key material
// per MB streamed, the practicality number the paper asks about.
#include <cstdio>
#include <vector>

#include "channel/bsm.h"
#include "util/rng.h"

int main() {
  using namespace aegis;

  std::printf(
      "BSM key agreement (Maurer sampling), stream = 2^18 words (2 MiB)\n\n"
      "Sweep 1: adversary storage ratio (honest: 2048 samples/party)\n"
      "%-10s %10s %12s %14s %14s\n",
      "ratio", "agreed", "E[|I|]", "P[steal] sim", "P[steal] model");

  SimRng rng(42);
  for (double ratio : {0.125, 0.25, 0.5, 0.75, 0.9}) {
    BsmParams p;
    p.stream_words = 1 << 18;
    p.samples_per_party = 2048;  // E[I] = 2048^2 / 2^18 = 16
    p.adversary_words =
        static_cast<std::uint64_t>(ratio * p.stream_words);

    int agreed = 0, steals = 0;
    double isum = 0;
    const int runs = 20;
    for (int i = 0; i < runs; ++i) {
      const auto r = bsm_key_agreement(p, BsmAdversaryStrategy::kRandom, rng);
      agreed += r.agreed;
      steals += r.adversary_has_key;
      isum += r.intersection_size;
    }
    const double mean_i = isum / runs;
    std::printf("%-10.3f %7d/%02d %12.1f %14.3f %14.6f\n", ratio, agreed,
                runs, mean_i, static_cast<double>(steals) / runs,
                bsm_adversary_success_probability(
                    ratio, static_cast<unsigned>(mean_i + 0.5)));
  }

  std::printf(
      "\nSweep 2: honest sampling rate (adversary at 50%% storage)\n"
      "%-12s %10s %12s %18s\n",
      "samples", "agreed", "E[|I|]", "key B / MiB streamed");
  for (unsigned samples : {256u, 512u, 1024u, 2048u, 4096u}) {
    BsmParams p;
    p.stream_words = 1 << 18;
    p.samples_per_party = samples;
    p.adversary_words = p.stream_words / 2;

    int agreed = 0;
    double isum = 0;
    const int runs = 20;
    for (int i = 0; i < runs; ++i) {
      const auto r = bsm_key_agreement(p, BsmAdversaryStrategy::kRandom, rng);
      agreed += r.agreed;
      isum += r.intersection_size;
    }
    const double mib = (static_cast<double>(p.stream_words) * 8) / (1 << 20);
    // 32 B of key per successful agreement.
    const double key_per_mib = 32.0 * agreed / runs / mib;
    std::printf("%-12u %7d/%02d %12.1f %18.2f\n", samples, agreed, runs,
                isum / runs, key_per_mib);
  }

  std::printf(
      "\nShape: the adversary's steal probability collapses once the "
      "intersection has\na few words it probably missed (ratio^|I|); key "
      "yield per streamed MiB is tiny\n-- the paper's practicality "
      "question in one number. Prefix-storing adversaries\ndo no better "
      "(positions are random).\n");
  return 0;
}
