// §3.2's proactive-refresh cost argument, measured: share renewal is
// O(n^2) messages of share size per object, so refreshing a large
// archive runs into the same wall as whole-archive re-encryption.
//
// Two sweeps:
//   1. geometry sweep — refresh traffic per object as (t, n) grows;
//   2. archive-scale projection — renewal bytes for a 10 PB archive at
//      each geometry, converted to days on the paper's archive-class
//      aggregate bandwidths.
#include <cstdio>
#include <vector>

#include "archive/cost.h"
#include "crypto/chacha20.h"
#include "sharing/proactive.h"
#include "sharing/shamir.h"

int main() {
  using namespace aegis;

  std::printf(
      "Proactive refresh (Herzberg) communication cost, measured per "
      "object\n\n%-10s %12s %14s %16s\n",
      "(t,n)", "messages", "bytes/object", "blowup vs object");

  ChaChaRng rng(1);
  const std::size_t object_size = 64 * 1024;
  const Bytes secret(object_size, 0x5a);

  struct Geometry { unsigned t, n; };
  const std::vector<Geometry> geometries = {
      {2, 3}, {3, 5}, {4, 7}, {5, 9}, {7, 13}, {9, 17}, {13, 25}};

  std::vector<double> per_object_bytes;
  for (const auto [t, n] : geometries) {
    const auto shares = shamir_split(secret, t, n, rng);
    RefreshStats stats;
    const auto fresh = proactive_refresh(shares, t, rng, &stats);
    (void)fresh;
    per_object_bytes.push_back(static_cast<double>(stats.bytes));
    std::printf("(%2u,%2u)    %12llu %14llu %15.1fx\n", t, n,
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(stats.bytes),
                static_cast<double>(stats.bytes) / object_size);
  }

  std::printf(
      "\nProjection: one renewal pass over a 10 PB (logical) archive\n"
      "%-10s %16s %20s %20s\n",
      "(t,n)", "renewal PB", "days @400TB/day", "days @909TB/day");
  for (std::size_t i = 0; i < geometries.size(); ++i) {
    const double factor = per_object_bytes[i] / object_size;
    const double renewal_tb = 10000.0 * factor;
    std::printf("(%2u,%2u)    %16.1f %20.1f %20.1f\n", geometries[i].t,
                geometries[i].n, renewal_tb / 1000.0, renewal_tb / 400.0,
                renewal_tb / 909.0);
  }

  std::printf(
      "\nShape: traffic grows ~n(n-1)x the object size — a renewal pass "
      "over a\nlarge archive takes months-to-years of aggregate "
      "bandwidth, mirroring the\nre-encryption wall (bench/"
      "reencrypt_model). This is the paper's point that\nshare renewal "
      "'may become impractical for the same reasons as re-encryption'.\n");
  return 0;
}
