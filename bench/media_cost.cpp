// §4's archival-media comparison: tape, HDD, glass (Project Silica),
// DNA, photosensitive film — density, migration cadence, and the total
// cost of keeping 1 PB for a century under each policy's storage blowup.
#include <cstdio>
#include <vector>

#include "archive/cost.h"
#include "archive/policy.h"

int main() {
  using namespace aegis;

  std::printf(
      "Archival media models (paper Sec. 4)\n\n"
      "%-20s %14s %12s %12s %14s\n",
      "medium", "TB/mm^3", "life (y)", "$/TB write", "$/TB/month");
  for (const MediaModel& m : MediaModel::all()) {
    std::printf("%-20s %14.2e %12.0f %12.0f %14.2f\n", m.name.c_str(),
                m.density_tb_per_mm3, m.media_lifetime_years,
                m.write_cost_per_tb, m.capacity_cost_per_tb_month);
  }

  std::printf(
      "\nDensity headline: DNA ~ 1 EB/mm^3 (8 orders over tape); glass "
      "429 TB/in^3\n= %.1e TB/mm^3.\n",
      429.0 / 16387.064);

  // 100-year cost of 1 PB logical under representative policies.
  const std::vector<ArchivalPolicy> policies = {
      ArchivalPolicy::CloudBaseline(),  // 1.5x
      ArchivalPolicy::Potshards(),      // 5x
      ArchivalPolicy::Lincos(),         // 5x
  };

  std::printf(
      "\n100-year cost of 1 PB logical (policy overhead applied), $M\n"
      "%-20s", "medium");
  for (const auto& p : policies)
    std::printf(" %12s(%.1fx)", p.name.substr(0, 10).c_str(),
                p.nominal_overhead());
  std::printf("\n");

  for (const MediaModel& m : MediaModel::all()) {
    std::printf("%-20s", m.name.c_str());
    for (const auto& p : policies) {
      const double usd =
          total_cost_usd(m, 1000.0, p.nominal_overhead(), 100.0);
      std::printf(" %18.2f", usd / 1e6);
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape: glass wins the century (no migration rewrites); tape "
      "re-buys itself\nevery decade; DNA's synthesis cost dominates at "
      "PB scale but its density makes\nit the only medium where a "
      "zettabyte fits in a shoebox. The 3-5x overhead of\nITS encodings "
      "multiplies straight through every column — the Figure 1 trade-off\n"
      "in dollars.\n");
  return 0;
}
