// Availability vs. storage cost — the paper's §1 baseline requirement
// ("reliability... data is never lost") quantified per encoding.
//
// For each Figure 1 policy: inject every possible count of simultaneous
// node failures (Monte Carlo over failure sets) and report the measured
// probability the object is still retrievable, alongside the measured
// storage blowup. The classic trade: Shamir (t,n) pays replication-level
// storage for erasure-level-or-worse availability — the paper's "same
// overhead as replication with less availability" jab at POTSHARDS.
#include <cstdio>
#include <vector>

#include "archive/archive.h"
#include "archive/cost.h"
#include "crypto/chacha20.h"
#include "util/rng.h"

int main() {
  using namespace aegis;

  std::vector<ArchivalPolicy> policies = {
      ArchivalPolicy::FigReplication(),  // n=3
      ArchivalPolicy::FigErasure(),      // (6,9)
      ArchivalPolicy::FigEncryption(),   // (6,9)
      ArchivalPolicy::FigShamir(),       // (3,5)
      ArchivalPolicy::FigPacked(),       // t=3,k=4,n=10
      ArchivalPolicy::FigLrss(),         // (3,5)
  };

  std::printf(
      "Availability under simultaneous node failures (200 trials per "
      "cell)\n\n%-24s %8s %9s | P[retrievable] with f failed nodes\n"
      "%-24s %8s %9s |    f=1    f=2    f=3    f=4    f=5\n",
      "encoding", "(geo)", "cost(x)", "", "", "");

  for (const ArchivalPolicy& p : policies) {
    Cluster cluster(p.n, ChannelKind::kPlain, 1);
    SchemeRegistry registry;
    ChaChaRng rng(1);
    TimestampAuthority tsa(rng);
    Archive archive(cluster, p, registry, tsa, rng);
    SimRng sim(p.n * 31 + p.k * 7 + p.t);

    const Bytes data = sim.bytes(4096);
    archive.put("obj", data);
    const double cost = archive.storage_report().overhead();

    char geo[32];
    if (p.encoding == EncodingKind::kReplication) {
      std::snprintf(geo, sizeof geo, "n=%u", p.n);
    } else if (p.encoding == EncodingKind::kShamir ||
               p.encoding == EncodingKind::kLrss) {
      std::snprintf(geo, sizeof geo, "(%u,%u)", p.t, p.n);
    } else if (p.encoding == EncodingKind::kPacked) {
      std::snprintf(geo, sizeof geo, "t%u k%u n%u", p.t, p.k, p.n);
    } else {
      std::snprintf(geo, sizeof geo, "(%u,%u)", p.k, p.n);
    }

    std::printf("%-24s %8s %8.2fx |", p.name.c_str(), geo, cost);
    for (unsigned failures = 1; failures <= 5; ++failures) {
      if (failures >= p.n) {
        std::printf("%7s", "-");
        continue;
      }
      int ok = 0;
      const int trials = 200;
      for (int trial = 0; trial < trials; ++trial) {
        // Fail a random distinct set.
        std::vector<NodeId> ids(p.n);
        for (unsigned i = 0; i < p.n; ++i) ids[i] = i;
        for (unsigned i = 0; i < failures; ++i) {
          const auto j = i + sim.uniform(p.n - i);
          std::swap(ids[i], ids[j]);
          cluster.fail_node(ids[i]);
        }
        try {
          ok += archive.get("obj") == data;
        } catch (const Error&) {
        }
        for (unsigned i = 0; i < failures; ++i) cluster.restore_node(ids[i]);
      }
      std::printf(" %6.2f", static_cast<double>(ok) / trials);
    }
    // MTTDL at 4% node AFR, 24h repair: the reliability number behind
    // the probabilities.
    std::printf("   MTTDL %.1e y\n",
                mttdl_years(p.n, p.reconstruction_threshold(), 0.04, 24));
  }

  std::printf(
      "\nShape: RS(6,9) and replication(3) both survive any 2 losses at "
      "1.5x vs 3x\ncost; Shamir(3,5) survives exactly 2 at 5x — "
      "replication-grade cost, erasure-\ngrade-or-worse availability. "
      "Packed sharing buys some of that back (t+k of n).\n");
  return 0;
}
