// §4's LRSS direction, measured: (1) the local-leakage attack against
// GF(2^8) Shamir — one leaked bit per share, never t full shares — and
// (2) the two-layer LRSS compiler's resistance and its storage price.
//
// Output: for each (t, n), whether a secret-parity functional is
// computable from LSB leakage (and the verified distinguisher advantage),
// then the same leakage applied to LRSS shares (advantage ~ 0), then the
// LRSS share-size overhead as a function of the leakage budget — the
// extra storage Figure 1 charges the LRSS quadrant point.
#include <cstdio>
#include <vector>

#include "crypto/chacha20.h"
#include "sharing/lrss.h"
#include "sharing/shamir.h"
#include "util/rng.h"

int main() {
  using namespace aegis;

  std::printf(
      "Local leakage attack on Shamir over GF(2^8): one LSB per share\n\n"
      "%-10s %10s %12s %16s\n",
      "(t,n)", "feasible", "mask", "advantage");

  struct Geometry { unsigned t, n; };
  const std::vector<Geometry> geometries = {{2, 3},  {2, 8},  {3, 8},
                                            {3, 20}, {5, 30}, {8, 60},
                                            {10, 100}};

  ChaChaRng rng(1);
  for (const auto [t, n] : geometries) {
    std::vector<std::uint8_t> xs;
    for (unsigned i = 1; i <= n; ++i)
      xs.push_back(static_cast<std::uint8_t>(i));
    const auto plan = plan_shamir_lsb_attack(t, xs);

    double advantage = 0.0;
    if (plan.feasible) {
      // Verified distinguisher: predicted parity vs ground truth over
      // many sharings; advantage = 2*|accuracy - 1/2|.
      int agree = 0, total = 0;
      for (int trial = 0; trial < 40; ++trial) {
        SimRng sim(trial);
        const Bytes secret = sim.bytes(16);
        const auto shares = shamir_split(secret, t, n, rng);
        const auto predicted = apply_shamir_lsb_attack(plan, shares);
        const auto truth = secret_parities(secret, plan.secret_mask);
        for (std::size_t p = 0; p < truth.size(); ++p) {
          agree += predicted[p] == truth[p];
          ++total;
        }
      }
      advantage = 2.0 * (static_cast<double>(agree) / total - 0.5);
    }
    std::printf("(%2u,%3u)   %10s %#12x %15.3f\n", t, n,
                plan.feasible ? "YES" : "no",
                static_cast<unsigned>(plan.secret_mask), advantage);
  }

  // The attack generalizes to packed sharing over GF(2^16).
  std::printf(
      "\nSame attack vs packed sharing over GF(2^16) (LSB per share):\n"
      "%-16s %10s %16s\n",
      "(t,k,n)", "feasible", "advantage");
  {
    struct PG { unsigned t, k, n; };
    for (const auto [t, k, n] :
         {PG{3, 2, 8}, PG{3, 4, 49}, PG{3, 4, 60}, PG{5, 8, 100}}) {
      const PackedSharing ps(t, k, n);
      const auto plan = plan_packed_lsb_attack(ps);
      double adv = 0.0;
      if (plan.feasible) {
        int agree = 0, total = 0;
        for (int trial = 0; trial < 20; ++trial) {
          SimRng sim(trial + 31);
          const Bytes secret = sim.bytes(64);
          const auto shares = ps.split(secret, rng);
          const auto pred = apply_packed_lsb_attack(plan, shares);
          const auto truth =
              packed_secret_parities(secret, k, plan.secret_masks);
          for (std::size_t b = 0; b < truth.size(); ++b) {
            agree += pred[b] == truth[b];
            ++total;
          }
        }
        adv = 2.0 * (static_cast<double>(agree) / total - 0.5);
      }
      std::printf("(%u,%u,%3u)       %10s %15.3f\n", t, k, n,
                  plan.feasible ? "YES" : "no", adv);
    }
  }

  // The same leakage against LRSS-wrapped shares.
  std::printf("\nSame leakage vs LRSS (t=3, n=20), 40 trials:\n");
  {
    const unsigned t = 3, n = 20;
    std::vector<std::uint8_t> xs;
    for (unsigned i = 1; i <= n; ++i)
      xs.push_back(static_cast<std::uint8_t>(i));
    const auto plan = plan_shamir_lsb_attack(t, xs);
    const Lrss lrss(t, n);
    int agree = 0, total = 0;
    for (int trial = 0; trial < 40; ++trial) {
      SimRng sim(trial + 5000);
      const Bytes secret = sim.bytes(16);
      const auto sharing = lrss.split(secret, rng);
      std::vector<Share> view;
      for (const auto& s : sharing.shares) view.push_back({s.index, s.masked});
      const auto predicted = apply_shamir_lsb_attack(plan, view);
      const auto truth = secret_parities(secret, plan.secret_mask);
      for (std::size_t p = 0; p < truth.size(); ++p) {
        agree += predicted[p] == truth[p];
        ++total;
      }
    }
    const double adv = 2.0 * (static_cast<double>(agree) / total - 0.5);
    std::printf("  distinguisher advantage: %.3f (Shamir gives 1.000)\n",
                adv);
  }

  // Storage price of leakage resilience.
  std::printf(
      "\nLRSS share size vs leakage budget (1 KiB secret, t=3, n=5; "
      "Shamir share = 1024 B)\n%-16s %14s %10s\n",
      "budget (bits)", "share bytes", "overhead");
  for (unsigned budget : {64u, 128u, 512u, 4096u, 16384u}) {
    const Lrss lrss(3, 5, budget);
    const std::size_t sz = lrss.share_size(1024);
    std::printf("%-16u %14zu %9.2fx\n", budget, sz,
                static_cast<double>(sz) / 1024.0);
  }

  std::printf(
      "\nShape: the attack is total (advantage 1.0) against plain Shamir "
      "for every\ngeometry with enough shares, and flat against LRSS; "
      "LRSS pays ~2-4x extra\nper share depending on how much leakage "
      "it must absorb.\n");
  return 0;
}
