// Microbenchmarks (google-benchmark): every primitive's throughput, plus
// the ablations DESIGN.md calls out — cascade depth, Shamir (t,n),
// packed pack-factor, AONT-vs-Shamir at equal geometry.
//
// These numbers feed the re-encryption CPU-bound model and quantify the
// paper's implicit claim that ITS encodings cost more than ciphers not
// just in storage but in compute.
#include <benchmark/benchmark.h>

#include "archive/aont.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/cipher.h"
#include "crypto/entropic.h"
#include "crypto/pedersen.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"
#include "crypto/sha3.h"
#include "crypto/speck.h"
#include "erasure/codec_cache.h"
#include "erasure/reed_solomon.h"
#include "gf/gf256.h"
#include "integrity/merkle.h"
#include "sharing/lrss.h"
#include "sharing/packed.h"
#include "sharing/proactive.h"
#include "sharing/shamir.h"
#include "sharing/vss.h"
#include "util/rng.h"

namespace aegis {
namespace {

constexpr std::size_t kBuf = 256 * 1024;

Bytes buffer(std::size_t n = kBuf) {
  SimRng rng(7);
  return rng.bytes(n);
}

// ------------------------------------------------------- GF(256) rows
//
// The row kernels are the data-plane inner loop: RS encode, Shamir
// evaluation/interpolation, and packed sharing all reduce to
// mul_add_row. Each selectable kernel is benchmarked so the dispatch
// table's win is visible in one run (unavailable kernels skip).

void BM_GfMulAddRow(benchmark::State& state, gf256::RowKernel kernel) {
  if (!gf256::row_kernel_available(kernel)) {
    state.SkipWithError("kernel not available on this host");
    return;
  }
  gf256::set_row_kernel(kernel);
  const Bytes src = buffer();
  Bytes dst = buffer();
  for (auto _ : state) {
    gf256::mul_add_row(MutByteView(dst.data(), dst.size()), src, 0x53);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * kBuf);
  gf256::set_row_kernel(gf256::RowKernel::kAuto);
}
BENCHMARK_CAPTURE(BM_GfMulAddRow, scalar, gf256::RowKernel::kScalar);
BENCHMARK_CAPTURE(BM_GfMulAddRow, portable, gf256::RowKernel::kPortable);
BENCHMARK_CAPTURE(BM_GfMulAddRow, ssse3, gf256::RowKernel::kSsse3);
BENCHMARK_CAPTURE(BM_GfMulAddRow, avx2, gf256::RowKernel::kAvx2);

void BM_GfMulRow(benchmark::State& state, gf256::RowKernel kernel) {
  if (!gf256::row_kernel_available(kernel)) {
    state.SkipWithError("kernel not available on this host");
    return;
  }
  gf256::set_row_kernel(kernel);
  const Bytes src = buffer();
  Bytes dst(kBuf);
  for (auto _ : state) {
    gf256::mul_row(MutByteView(dst.data(), dst.size()), src, 0x53);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * kBuf);
  gf256::set_row_kernel(gf256::RowKernel::kAuto);
}
BENCHMARK_CAPTURE(BM_GfMulRow, scalar, gf256::RowKernel::kScalar);
BENCHMARK_CAPTURE(BM_GfMulRow, portable, gf256::RowKernel::kPortable);
BENCHMARK_CAPTURE(BM_GfMulRow, ssse3, gf256::RowKernel::kSsse3);
BENCHMARK_CAPTURE(BM_GfMulRow, avx2, gf256::RowKernel::kAvx2);

// ------------------------------------------------------------- hashes

void BM_Sha256(benchmark::State& state) {
  const Bytes data = buffer();
  for (auto _ : state) benchmark::DoNotOptimize(Sha256::hash(data));
  state.SetBytesProcessed(state.iterations() * kBuf);
}
BENCHMARK(BM_Sha256);

void BM_Sha512(benchmark::State& state) {
  const Bytes data = buffer();
  for (auto _ : state) benchmark::DoNotOptimize(Sha512::hash(data));
  state.SetBytesProcessed(state.iterations() * kBuf);
}
BENCHMARK(BM_Sha512);

void BM_Sha3_256(benchmark::State& state) {
  const Bytes data = buffer();
  for (auto _ : state) benchmark::DoNotOptimize(Sha3_256::hash(data));
  state.SetBytesProcessed(state.iterations() * kBuf);
}
BENCHMARK(BM_Sha3_256);

// ------------------------------------------------------------- ciphers

void BM_Cipher(benchmark::State& state, SchemeId id) {
  ChaChaRng rng(1);
  Bytes data = buffer();
  const SecureBytes key = generate_key(id, rng, data.size());
  const Bytes iv = generate_iv(id, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cipher_apply(id, ByteView(key.data(), key.size()), iv, data));
  }
  state.SetBytesProcessed(state.iterations() * kBuf);
}
BENCHMARK_CAPTURE(BM_Cipher, aes128, SchemeId::kAes128Ctr);
BENCHMARK_CAPTURE(BM_Cipher, aes256, SchemeId::kAes256Ctr);
BENCHMARK_CAPTURE(BM_Cipher, chacha20, SchemeId::kChaCha20);
BENCHMARK_CAPTURE(BM_Cipher, speck128, SchemeId::kSpeck128Ctr);
BENCHMARK_CAPTURE(BM_Cipher, otp, SchemeId::kOneTimePad);
BENCHMARK_CAPTURE(BM_Cipher, entropic, SchemeId::kEntropicXor);

// Ablation: cascade depth (ArchiveSafeLT's knob). Depth d applies d
// cipher layers; throughput should fall ~linearly.
void BM_CascadeDepth(benchmark::State& state) {
  const unsigned depth = static_cast<unsigned>(state.range(0));
  const SchemeId layers[3] = {SchemeId::kAes256Ctr, SchemeId::kChaCha20,
                              SchemeId::kSpeck128Ctr};
  ChaChaRng rng(2);
  Bytes data = buffer();
  std::vector<SecureBytes> keys;
  std::vector<Bytes> ivs;
  for (unsigned i = 0; i < depth; ++i) {
    keys.push_back(generate_key(layers[i % 3], rng));
    ivs.push_back(generate_iv(layers[i % 3], rng));
  }
  for (auto _ : state) {
    Bytes cur = data;
    for (unsigned i = 0; i < depth; ++i) {
      cur = cipher_apply(layers[i % 3],
                         ByteView(keys[i].data(), keys[i].size()), ivs[i],
                         cur);
    }
    benchmark::DoNotOptimize(cur);
  }
  state.SetBytesProcessed(state.iterations() * kBuf);
}
BENCHMARK(BM_CascadeDepth)->DenseRange(1, 6);

// ------------------------------------------------------------- erasure

void BM_RsEncode(benchmark::State& state) {
  const ReedSolomon rs(static_cast<unsigned>(state.range(0)),
                       static_cast<unsigned>(state.range(1)));
  const Bytes data = buffer();
  for (auto _ : state) benchmark::DoNotOptimize(rs.encode(data));
  state.SetBytesProcessed(state.iterations() * kBuf);
}
BENCHMARK(BM_RsEncode)->Args({6, 9})->Args({10, 14})->Args({100, 120});

// Same encode through the process-wide codec cache — what Archive now
// does. The delta vs BM_RsEncode is pure codec-construction amortization
// (tiny per call at these sizes; the win shows up when callers used to
// rebuild the Vandermonde matrix per object).
void BM_RsEncodeCached(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const unsigned n = static_cast<unsigned>(state.range(1));
  const Bytes data = buffer();
  for (auto _ : state)
    benchmark::DoNotOptimize(rs_codec(k, n).encode(data));
  state.SetBytesProcessed(state.iterations() * kBuf);
}
BENCHMARK(BM_RsEncodeCached)->Args({6, 9})->Args({10, 14})->Args({100, 120});

// Ablation: generator-matrix construction cost, Vandermonde vs Cauchy.
void BM_RsConstruct(benchmark::State& state) {
  const auto kind = state.range(2) == 0 ? RsMatrix::kVandermonde
                                        : RsMatrix::kCauchy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ReedSolomon(static_cast<unsigned>(state.range(0)),
                    static_cast<unsigned>(state.range(1)), kind));
  }
}
BENCHMARK(BM_RsConstruct)
    ->Args({6, 9, 0})
    ->Args({6, 9, 1})
    ->Args({64, 96, 0})
    ->Args({64, 96, 1});

void BM_RsDecodeWorstCase(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const unsigned n = static_cast<unsigned>(state.range(1));
  const ReedSolomon rs(k, n);
  const Bytes data = buffer();
  auto shards = rs.encode(data);
  std::vector<std::optional<Bytes>> partial(shards.begin(), shards.end());
  for (unsigned i = 0; i < n - k; ++i) partial[i].reset();  // lose data shards
  for (auto _ : state)
    benchmark::DoNotOptimize(rs.decode(partial, data.size()));
  state.SetBytesProcessed(state.iterations() * kBuf);
}
BENCHMARK(BM_RsDecodeWorstCase)->Args({6, 9})->Args({10, 14});

// ------------------------------------------------------------- sharing

void BM_ShamirSplit(benchmark::State& state) {
  const unsigned t = static_cast<unsigned>(state.range(0));
  const unsigned n = static_cast<unsigned>(state.range(1));
  ChaChaRng rng(3);
  const Bytes data = buffer(64 * 1024);
  for (auto _ : state)
    benchmark::DoNotOptimize(shamir_split(data, t, n, rng));
  state.SetBytesProcessed(state.iterations() * 64 * 1024);
}
BENCHMARK(BM_ShamirSplit)
    ->Args({2, 3})
    ->Args({3, 5})
    ->Args({5, 9})
    ->Args({9, 17})
    ->Args({17, 33});

void BM_ShamirRecover(benchmark::State& state) {
  const unsigned t = static_cast<unsigned>(state.range(0));
  ChaChaRng rng(4);
  const Bytes data = buffer(64 * 1024);
  auto shares = shamir_split(data, t, t + 2, rng);
  shares.resize(t);
  for (auto _ : state) benchmark::DoNotOptimize(shamir_recover(shares, t));
  state.SetBytesProcessed(state.iterations() * 64 * 1024);
}
BENCHMARK(BM_ShamirRecover)->Arg(2)->Arg(3)->Arg(5)->Arg(9)->Arg(17);

// Ablation: packed sharing pack factor k at fixed privacy t=3, n=k+t+2.
void BM_PackedSplit(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const PackedSharing ps(3, k, k + 5);
  ChaChaRng rng(5);
  const Bytes data = buffer(64 * 1024);
  for (auto _ : state) benchmark::DoNotOptimize(ps.split(data, rng));
  state.SetBytesProcessed(state.iterations() * 64 * 1024);
}
BENCHMARK(BM_PackedSplit)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_LrssSplit(benchmark::State& state) {
  const Lrss lrss(3, 5, static_cast<unsigned>(state.range(0)));
  ChaChaRng rng(6);
  const Bytes data = buffer(4 * 1024);
  for (auto _ : state) benchmark::DoNotOptimize(lrss.split(data, rng));
  state.SetBytesProcessed(state.iterations() * 4 * 1024);
}
BENCHMARK(BM_LrssSplit)->Arg(128)->Arg(4096);

// AONT-RS vs Shamir at matched availability geometry (lose 3 of 9).
void BM_AontRsPath(benchmark::State& state) {
  ChaChaRng rng(7);
  const ReedSolomon rs(6, 9);
  const Bytes data = buffer(64 * 1024);
  for (auto _ : state) {
    const Bytes pkg = aont_package(data, SchemeId::kAes256Ctr, rng);
    benchmark::DoNotOptimize(rs.encode(pkg));
  }
  state.SetBytesProcessed(state.iterations() * 64 * 1024);
}
BENCHMARK(BM_AontRsPath);

void BM_ShamirPathSameGeometry(benchmark::State& state) {
  ChaChaRng rng(8);
  const Bytes data = buffer(64 * 1024);
  for (auto _ : state)
    benchmark::DoNotOptimize(shamir_split(data, 6, 9, rng));
  state.SetBytesProcessed(state.iterations() * 64 * 1024);
}
BENCHMARK(BM_ShamirPathSameGeometry);

// ------------------------------------------------------------ refresh

void BM_ProactiveRefresh(benchmark::State& state) {
  const unsigned t = static_cast<unsigned>(state.range(0));
  const unsigned n = static_cast<unsigned>(state.range(1));
  ChaChaRng rng(9);
  const Bytes data = buffer(16 * 1024);
  const auto shares = shamir_split(data, t, n, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(proactive_refresh(shares, t, rng));
  state.SetBytesProcessed(state.iterations() * 16 * 1024);
}
BENCHMARK(BM_ProactiveRefresh)->Args({3, 5})->Args({5, 9})->Args({9, 17});

// ---------------------------------------------------------- public key

void BM_PedersenCommit(benchmark::State& state) {
  ChaChaRng rng(10);
  const auto& curve = ec::Secp256k1::instance();
  const U256 v = curve.random_scalar(rng);
  const U256 r = curve.random_scalar(rng);
  for (auto _ : state) benchmark::DoNotOptimize(pedersen_commit(v, r));
}
BENCHMARK(BM_PedersenCommit);

void BM_SchnorrSign(benchmark::State& state) {
  ChaChaRng rng(11);
  const auto kp = schnorr_keygen(rng);
  const Bytes msg = buffer(256);
  for (auto _ : state) benchmark::DoNotOptimize(schnorr_sign(kp, msg));
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  ChaChaRng rng(12);
  const auto kp = schnorr_keygen(rng);
  const Bytes msg = buffer(256);
  const auto sig = schnorr_sign(kp, msg);
  for (auto _ : state)
    benchmark::DoNotOptimize(schnorr_verify(kp.public_key, msg, sig));
}
BENCHMARK(BM_SchnorrVerify);

void BM_PedersenVssDeal(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  ChaChaRng rng(13);
  const U256 secret(123456);
  for (auto _ : state)
    benchmark::DoNotOptimize(pedersen_deal(secret, (n + 1) / 2, n, rng));
}
BENCHMARK(BM_PedersenVssDeal)->Arg(5)->Arg(9);

void BM_VssVerifyShare(benchmark::State& state) {
  ChaChaRng rng(14);
  const auto d = pedersen_deal(U256(42), 3, 5, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(vss_verify_share(d.shares[0], d.commitments));
}
BENCHMARK(BM_VssVerifyShare);

// ------------------------------------------------------------- integrity

void BM_MerkleBuild(benchmark::State& state) {
  SimRng rng(15);
  std::vector<Bytes> leaves;
  for (int i = 0; i < 256; ++i) leaves.push_back(rng.bytes(1024));
  for (auto _ : state) benchmark::DoNotOptimize(MerkleTree(leaves).root());
  state.SetBytesProcessed(state.iterations() * 256 * 1024);
}
BENCHMARK(BM_MerkleBuild);

}  // namespace
}  // namespace aegis

BENCHMARK_MAIN();
