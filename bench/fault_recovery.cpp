// Fault recovery cost — what self-healing spends as the fault substrate
// turns up the noise.
//
// For each headline policy: sweep link-fault intensity (drops, in-flight
// corruption, at-rest rot all scale together) and measure what degraded
// operation costs — virtual read latency (retry backoff and latency
// spikes included), retry counts, scrub/repair shard rewrites, and the
// repair traffic in bytes. The paper's archival point made quantitative:
// redundancy is not free at rest and keeping it healthy is not free over
// time either.
//
// Each row is also emitted as a JSON line (prefix "JSON ") so plots can
// be regenerated without scraping the table.
#include <cstdio>
#include <vector>

#include "archive/archive.h"
#include "crypto/chacha20.h"
#include "util/error.h"
#include "util/rng.h"

int main() {
  using namespace aegis;

  const std::vector<ArchivalPolicy> policies = {
      ArchivalPolicy::FigErasure(),  // RS(6,9)
      ArchivalPolicy::FigShamir(),   // Shamir (3,5)
      ArchivalPolicy::Lincos(),      // Shamir + commitments
  };
  const std::vector<double> intensities = {0.0, 0.1, 0.2, 0.3};
  constexpr int kObjects = 4;
  constexpr std::size_t kObjectBytes = 8 * 1024;
  constexpr Epoch kEpochs = 8;

  std::printf(
      "Degraded reads and repair traffic vs fault intensity\n"
      "(intensity i: drop=i, corrupt=i/2, spikes=i, rot=20i flips/MiB; "
      "%d objects x %zu KiB, %u epochs, scrub each epoch)\n\n"
      "%-18s %9s | %10s %6s %8s %8s | %8s %10s %6s\n",
      kObjects, kObjectBytes / 1024, kEpochs, "policy", "intensity",
      "ms/read", "fail", "up-rtry", "dn-rtry", "repaired", "traffic",
      "unrec");

  for (const ArchivalPolicy& policy : policies) {
    for (const double intensity : intensities) {
      Cluster cluster(policy.n, policy.channel, 42);
      SchemeRegistry registry;
      ChaChaRng rng(42);
      TimestampAuthority tsa(rng);
      Archive archive(cluster, policy, registry, tsa, rng);
      SimRng sim(97);

      // Ingest on a clean network; faults begin after the data is down.
      std::vector<Bytes> truth;
      for (int i = 0; i < kObjects; ++i) {
        truth.push_back(sim.bytes(kObjectBytes));
        archive.put("obj" + std::to_string(i), truth.back());
      }

      LinkFaults flaky;
      flaky.drop_prob = intensity;
      flaky.corrupt_prob = intensity / 2;
      flaky.spike_prob = intensity;
      cluster.faults().set_link_faults(flaky);
      cluster.faults().set_bitrot(20.0 * intensity);

      double read_ms = 0.0;
      unsigned reads = 0, reads_failed = 0;
      unsigned repaired = 0, unrecoverable = 0;
      std::uint64_t repair_bytes = 0;

      for (Epoch e = 1; e <= kEpochs; ++e) {
        cluster.advance_epoch();
        for (int i = 0; i < kObjects; ++i) {
          const double before = cluster.simulated_ms();
          try {
            if (archive.get("obj" + std::to_string(i)) != truth[i])
              ++reads_failed;  // should never happen: wrong bytes
          } catch (const Error&) {
            ++reads_failed;  // beyond tolerance this epoch
          }
          read_ms += cluster.simulated_ms() - before;
          ++reads;
        }

        const std::uint64_t up = cluster.stats().bytes_up;
        const std::uint64_t down = cluster.stats().bytes_down;
        const Archive::ScrubReport scrub = archive.scrub();
        repaired += scrub.shards_repaired;
        unrecoverable += scrub.unrecoverable;
        repair_bytes += (cluster.stats().bytes_up - up) +
                        (cluster.stats().bytes_down - down);
      }

      const IoStats& io = archive.io_stats();
      std::printf(
          "%-18s %9.2f | %10.2f %6u %8llu %8llu | %8u %9lluB %6u\n",
          policy.name.c_str(), intensity, read_ms / reads, reads_failed,
          static_cast<unsigned long long>(io.upload_retries),
          static_cast<unsigned long long>(io.download_retries), repaired,
          static_cast<unsigned long long>(repair_bytes), unrecoverable);
      std::printf(
          "JSON {\"bench\":\"fault_recovery\",\"policy\":\"%s\","
          "\"intensity\":%.2f,\"read_ms_avg\":%.3f,\"reads\":%u,"
          "\"reads_failed\":%u,\"upload_retries\":%llu,"
          "\"download_retries\":%llu,\"shards_repaired\":%u,"
          "\"repair_bytes\":%llu,\"unrecoverable\":%u}\n",
          policy.name.c_str(), intensity, read_ms / reads, reads,
          reads_failed,
          static_cast<unsigned long long>(io.upload_retries),
          static_cast<unsigned long long>(io.download_retries), repaired,
          static_cast<unsigned long long>(repair_bytes), unrecoverable);
    }
    std::printf("\n");
  }
  return 0;
}
