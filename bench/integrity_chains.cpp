// §3.3 measured: timestamp chains under cryptanalytic breaks.
//
// Sweeps renewal cadence against a fixed break schedule and reports
// whether a chain of each cadence survives a century-scale timeline —
// the Haber–Stornetta "renew before your scheme breaks" rule — plus the
// confidentiality comparison between hash-stamped and Pedersen-stamped
// chains and their byte costs.
#include <cstdio>
#include <vector>

#include "crypto/chacha20.h"
#include "crypto/sha256.h"
#include "integrity/timestamp.h"

int main() {
  using namespace aegis;

  // Signature generations fall every 30 epochs; a chain must hop to the
  // next generation before its current one dies.
  SchemeRegistry reg;
  reg.set_break_epoch(SchemeId::kSigGenA, 30);
  reg.set_break_epoch(SchemeId::kSigGenB, 60);
  // Generation C never falls within the horizon.

  const Epoch horizon = 100;
  const Bytes doc = to_bytes(std::string_view("century-lived record"));
  const Bytes digest = Sha256::hash(doc);

  std::printf(
      "Timestamp-chain survival over %u epochs (SigGenA breaks @30, "
      "SigGenB @60)\n\n%-18s %10s %10s %-20s\n",
      horizon, "renew every", "links", "bytes", "verdict @100");

  for (Epoch cadence : {Epoch(10), Epoch(25), Epoch(29), Epoch(31),
                        Epoch(50), Epoch(200)}) {
    ChaChaRng rng(cadence);
    TimestampAuthority tsa(rng, SchemeId::kSigGenA);
    auto chain = TimestampChain::begin(tsa, digest, SchemeId::kSha256, 0);

    for (Epoch e = cadence; e < horizon; e += cadence) {
      // The TSA rotates to the newest unbroken generation as time passes.
      if (e >= 50 && tsa.generation() != SchemeId::kSigGenC) {
        tsa.rotate(SchemeId::kSigGenC, rng);
      } else if (e >= 20 && tsa.generation() == SchemeId::kSigGenA) {
        tsa.rotate(SchemeId::kSigGenB, rng);
      }
      chain.renew(tsa, e);
    }

    std::size_t bytes = 0;
    for (const auto& l : chain.links()) bytes += l.serialize().size();

    const ChainStatus status = chain.verify(digest, reg, horizon);
    std::printf("%-18u %10zu %10zu %-20s\n", cadence, chain.length(),
                bytes, to_string(status));
  }

  // Confidentiality of the chain itself: hash-stamped chains expose the
  // object to HNDL once the hash falls; Pedersen chains never do.
  ChaChaRng rng(99);
  TimestampAuthority tsa(rng, SchemeId::kSigGenC);
  const auto hash_chain =
      TimestampChain::begin(tsa, digest, SchemeId::kSha256, 0);
  const auto stamp = commit_and_stamp(tsa, doc, 0, rng);

  std::size_t hash_bytes = 0, commit_bytes = 0;
  for (const auto& l : hash_chain.links()) hash_bytes += l.serialize().size();
  for (const auto& l : stamp.chain.links())
    commit_bytes += l.serialize().size();

  std::printf(
      "\nChain confidentiality (LINCOS observation):\n"
      "  hash-stamped chain:     leaks content on digest break = %s, "
      "%zu B/link\n"
      "  Pedersen-stamped chain: leaks content on digest break = %s, "
      "%zu B/link\n"
      "  Pedersen opening verifies: %s\n",
      hash_chain.leaks_content_on_digest_break() ? "YES" : "no", hash_bytes,
      stamp.chain.leaks_content_on_digest_break() ? "YES" : "no",
      commit_bytes,
      verify_committed_stamp(stamp, doc, reg, 10) ? "yes" : "NO");

  std::printf(
      "\nShape: any cadence <= 29 epochs survives the schedule; cadences "
      "that miss a\nbreak (>=31) die with expired-guarantee; the "
      "commitment chain costs ~same bytes\nbut keeps information-"
      "theoretic confidentiality of the stamped content.\n");
  return 0;
}
