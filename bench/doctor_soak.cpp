// Doctor soak — continuous background scrub under recurring bit-rot.
//
// One archive, one Doctor, many rounds: each round flips a burst of
// at-rest bits, then lets the doctor's epoch-sliced scrub find and heal
// the damage. Measured per round: detection latency (slices from
// injection until a slice reports damage) and heal latency (slices until
// the degraded set drains). Aggregate throughput is objects verified per
// virtual second, with the bandwidth throttle charged to the same clock.
//
// The aggregate row is emitted as a JSON line (prefix "JSON ") for
// BENCH_doctor.json, and the final Prometheus exposition snapshot is
// printed between PROM-SNAPSHOT-BEGIN/END markers so CI can upload both
// artifacts from one run.
#include <cstdio>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/doctor.h"
#include "crypto/chacha20.h"
#include "obs/export.h"
#include "util/rng.h"

int main() {
  using namespace aegis;

  ArchivalPolicy policy = ArchivalPolicy::FigErasure();  // RS(6,9)
  policy.scrub_batch = 8;
  policy.scrub_bandwidth_frac = 0.5;
  constexpr int kObjects = 24;
  constexpr std::size_t kObjectBytes = 4 * 1024;
  constexpr int kRounds = 6;
  constexpr int kMaxSlicesPerRound = 64;
  constexpr double kRotFlipsPerMib = 24.0;

  Cluster cluster(policy.n, policy.channel, 20260807);
  SchemeRegistry registry;
  ChaChaRng rng(20260807);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, policy, registry, tsa, rng);
  SimRng sim(41);

  for (int i = 0; i < kObjects; ++i)
    archive.put("obj" + std::to_string(i), sim.bytes(kObjectBytes));

  Doctor doctor(archive);

  std::printf(
      "Doctor soak: %d objects x %zu KiB, %s, batch=%u frac=%.2f, "
      "%d rot bursts (%.1f flips/MiB)\n\n"
      "%6s %14s %12s %9s %7s\n",
      kObjects, kObjectBytes / 1024, policy.name.c_str(),
      policy.scrub_batch, policy.scrub_bandwidth_frac, kRounds,
      kRotFlipsPerMib, "round", "detect-slices", "heal-slices", "repaired",
      "unrec");

  unsigned total_detect = 0, max_detect = 0;
  unsigned alerts_raised = 0, alerts_cleared = 0;
  unsigned long long total_slices = 0;
  for (int round = 1; round <= kRounds; ++round) {
    // One epoch of rot, then quiet: the doctor has to notice on its own.
    cluster.faults().set_bitrot(kRotFlipsPerMib);
    cluster.advance_epoch();
    cluster.faults().set_bitrot(0.0);

    int detect = -1, heal = -1;
    unsigned repaired = 0, unrecoverable = 0;
    for (int slice = 1; slice <= kMaxSlicesPerRound; ++slice) {
      cluster.advance_epoch();
      ++total_slices;
      const DoctorStepReport rep = doctor.step();
      repaired += rep.shards_repaired;
      unrecoverable += rep.unrecoverable;
      alerts_raised += rep.alerts_raised;
      alerts_cleared += rep.alerts_cleared;
      if (detect < 0 && rep.damaged > 0) detect = slice;
      // Healed (or nothing was damaged): stop once a full pass after
      // detection has completed with the degraded set empty.
      if (detect >= 0 && rep.pass_completed && doctor.degraded_count() == 0) {
        heal = slice;
        break;
      }
      if (detect < 0 && rep.pass_completed && slice >= 2 * kObjects) break;
    }

    if (detect < 0) {
      std::printf("%6d %14s %12s %9u %7u\n", round, "-", "-", repaired,
                  unrecoverable);
      continue;
    }
    total_detect += static_cast<unsigned>(detect);
    if (static_cast<unsigned>(detect) > max_detect)
      max_detect = static_cast<unsigned>(detect);
    std::printf("%6d %14d %12d %9u %7u\n", round, detect, heal, repaired,
                unrecoverable);
  }

  const DoctorState& st = doctor.state();
  const double virtual_s = cluster.simulated_ms() / 1000.0;
  const double per_s = virtual_s > 0 ? st.objects_scanned / virtual_s : 0;
  std::printf(
      "\nscanned %llu objects over %llu slices (%llu passes) in %.2f "
      "virtual s -> %.1f objects/s; %llu shards repaired, %llu "
      "unrecoverable, alerts %u raised / %u cleared\n",
      static_cast<unsigned long long>(st.objects_scanned), total_slices,
      static_cast<unsigned long long>(st.passes), virtual_s, per_s,
      static_cast<unsigned long long>(st.shards_repaired),
      static_cast<unsigned long long>(st.unrecoverable), alerts_raised,
      alerts_cleared);

  std::printf(
      "JSON {\"bench\":\"doctor_soak\",\"objects\":%d,\"rounds\":%d,"
      "\"objects_scanned\":%llu,\"passes\":%llu,\"virtual_s\":%.3f,"
      "\"objects_per_s\":%.2f,\"detect_slices_avg\":%.2f,"
      "\"detect_slices_max\":%u,\"shards_repaired\":%llu,"
      "\"unrecoverable\":%llu,\"alerts_raised\":%u,\"alerts_cleared\":%u}\n",
      kObjects, kRounds,
      static_cast<unsigned long long>(st.objects_scanned),
      static_cast<unsigned long long>(st.passes), virtual_s, per_s,
      kRounds > 0 ? static_cast<double>(total_detect) / kRounds : 0.0,
      max_detect, static_cast<unsigned long long>(st.shards_repaired),
      static_cast<unsigned long long>(st.unrecoverable), alerts_raised,
      alerts_cleared);

  std::printf("PROM-SNAPSHOT-BEGIN\n%sPROM-SNAPSHOT-END\n",
              to_prometheus(cluster.obs().metrics().snapshot()).c_str());
  return 0;
}
