// §3.2's re-encryption arithmetic, regenerated — with this library's own
// measured cipher throughput plugged into the CPU-bound column, and the
// MigrationEngine's *measured* end-to-end cost run against the
// analytical estimate.
//
// For each archive the paper cites, we print: raw read-out time, the
// practical estimate after the paper's two penalties (write-back+verify
// ~2x, reserved foreground capacity ~2x), and the crypto-compute bound
// using the AES-256-CTR throughput measured on this machine. Then we
// extrapolate to the exabyte/zettabyte archives the paper envisions.
//
// The second half drives a real staged-generation migration
// (archive/migration.h) over a simulated cluster, measures the bytes it
// actually moves and the virtual time it consumes — throttled and not —
// and projects THOSE multipliers onto the same sites. Every measured row
// is also emitted as a JSON line (prefix "JSON ", the BENCH_*.json
// convention) for the CI artifact.
#include <chrono>
#include <cstdio>
#include <vector>

#include "archive/archive.h"
#include "archive/cost.h"
#include "archive/migration.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "util/rng.h"

namespace {

// Measures this build's AES-256-CTR throughput in MB/s.
double measure_aes_mbps() {
  using namespace aegis;
  SimRng rng(1);
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(16);
  Bytes buf = rng.bytes(4 << 20);  // 4 MiB

  // Warm-up then timed passes.
  aes_ctr_inplace(key, iv, MutByteView(buf.data(), buf.size()));
  const auto start = std::chrono::steady_clock::now();
  int passes = 0;
  for (; passes < 8; ++passes)
    aes_ctr_inplace(key, iv, MutByteView(buf.data(), buf.size()));
  const auto end = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(end - start).count();
  return (static_cast<double>(buf.size()) * passes / 1.0e6) / secs;
}

struct EngineRun {
  std::uint64_t logical = 0;      // bytes the client stored
  std::uint64_t bytes_moved = 0;  // up+down bytes the migration moved
  double virtual_ms = 0;          // simulated time the run consumed
  unsigned steps = 0;             // checkpoint intervals
};

// One measured whole-archive re-encryption through the MigrationEngine
// (cloud-baseline policy: AES under RS(6,9)) at the given bandwidth
// fraction. Deterministic: same seed, same numbers, every run.
EngineRun run_engine(double bandwidth_frac) {
  using namespace aegis;
  ArchivalPolicy policy = ArchivalPolicy::CloudBaseline();
  policy.migrate_bandwidth_frac = bandwidth_frac;
  policy.migrate_batch = 4;
  Cluster cluster(policy.n, policy.channel, 5);
  SchemeRegistry registry;
  ChaChaRng rng(5);
  TimestampAuthority tsa(rng);
  Archive archive(cluster, policy, registry, tsa, rng);

  EngineRun run;
  SimRng workload(9);
  const unsigned kObjects = 16;
  const std::size_t kSize = 64 * 1024;
  for (unsigned i = 0; i < kObjects; ++i) {
    archive.put("tape-" + std::to_string(i), workload.bytes(kSize));
    run.logical += kSize;
  }

  MigrationSpec spec;
  spec.kind = MigrationKind::kReencrypt;
  spec.fresh = {SchemeId::kChaCha20};
  MigrationEngine engine(archive, spec);
  const double t0 = cluster.simulated_ms();
  while (!engine.done()) {
    engine.step();
    ++run.steps;
  }
  run.virtual_ms = cluster.simulated_ms() - t0;
  run.bytes_moved = engine.state().bytes_moved;
  return run;
}

}  // namespace

int main() {
  using namespace aegis;

  const double aes_mbps = measure_aes_mbps();
  // A production archive would run hardware AES across many cores; model
  // 64 parallel streams at 10x our table-based software speed.
  const double hw_mbps = aes_mbps * 10.0;
  const unsigned streams = 64;

  std::printf(
      "Whole-archive re-encryption time model (paper Sec. 3.2)\n"
      "measured AES-256-CTR (this build, 1 core): %.1f MB/s; CPU model: "
      "%u streams x %.0f MB/s\n\n",
      aes_mbps, streams, hw_mbps);

  std::printf("%-22s %10s %11s %12s %15s %15s\n", "archive", "PB",
              "TB/day", "read(mo)", "practical(mo)", "CPU-bound(mo)");

  std::vector<SiteModel> sites = SiteModel::paper_sites();
  sites.push_back(SiteModel::Exabyte());
  sites.push_back(SiteModel::Zettabyte());

  for (const SiteModel& s : sites) {
    const ReencryptionEstimate e =
        estimate_reencryption(s, 2.0, 2.0, hw_mbps, streams);
    std::printf("%-22s %10.1f %11.0f %12.2f %15.2f %15.2f\n",
                s.name.c_str(), s.capacity_tb / 1000.0, s.read_tb_per_day,
                e.read_months, e.practical_months, e.cpu_bound_months);
  }

  std::printf(
      "\nPaper's printed read-out values: HPSS 6.75 mo, MARS 10.35 mo, "
      "EOS 8.3 mo,\nPergamum 0.76 mo (rounding/source-snapshot deltas "
      "documented in EXPERIMENTS.md).\n"
      "Practical column applies the paper's x2 write/verify and x2 "
      "reserved-capacity\npenalties: months become years — during which "
      "all not-yet-re-encrypted data\nremains under the broken cipher, "
      "and nothing helps data already harvested.\n");

  // ---- Measured: the MigrationEngine's own multipliers. ----------------
  // The paper's penalties are estimates; the engine's are measurements.
  // io_multiple is what a staged read+re-disperse pass really moves per
  // logical byte (RS overhead n/k on the write leg, threshold k/k on the
  // read leg, staged writes included). throttle_factor is the measured
  // virtual-time stretch of reserving half the bandwidth for foreground
  // traffic (the paper's reserve penalty, observed rather than assumed).
  const EngineRun full = run_engine(1.0);
  const EngineRun throttled = run_engine(0.5);
  const double io_multiple =
      static_cast<double>(full.bytes_moved) / full.logical;
  const double throttle_factor = throttled.virtual_ms / full.virtual_ms;
  const double mb_per_vs =
      full.bytes_moved / 1.0e6 / (full.virtual_ms / 1000.0);

  std::printf(
      "\nMeasured staged-generation migration (MigrationEngine, "
      "cloud-baseline policy):\n"
      "  %llu logical bytes -> %llu moved (%.2fx logical), %u checkpoint "
      "steps\n"
      "  virtual time: %.0f ms unthrottled, %.0f ms at 50%% bandwidth "
      "(x%.2f)\n"
      "  effective migration throughput: %.1f MB per virtual second\n",
      static_cast<unsigned long long>(full.logical),
      static_cast<unsigned long long>(full.bytes_moved), io_multiple,
      full.steps, full.virtual_ms, throttled.virtual_ms, throttle_factor,
      mb_per_vs);
  std::printf(
      "JSON {\"bench\":\"migration_engine\",\"policy\":\"cloud-baseline\","
      "\"objects\":16,\"logical_bytes\":%llu,\"bytes_moved\":%llu,"
      "\"io_multiple\":%.3f,\"steps\":%u,\"virtual_ms_full\":%.1f,"
      "\"virtual_ms_throttled\":%.1f,\"throttle_factor\":%.3f,"
      "\"mb_per_virtual_s\":%.1f}\n",
      static_cast<unsigned long long>(full.logical),
      static_cast<unsigned long long>(full.bytes_moved), io_multiple,
      full.steps, full.virtual_ms, throttled.virtual_ms, throttle_factor,
      mb_per_vs);

  // Project the measured multipliers onto the same sites the analytical
  // table used: months = read_months x (bytes actually moved per logical
  // byte) x (measured bandwidth-reservation stretch).
  std::printf(
      "\nprojection with MEASURED multipliers (vs the paper's x4 "
      "practical estimate):\n%-22s %12s %15s %15s\n",
      "archive", "read(mo)", "paper-x4(mo)", "engine(mo)");
  for (const SiteModel& s : sites) {
    const ReencryptionEstimate e =
        estimate_reencryption(s, 2.0, 2.0, hw_mbps, streams);
    const double engine_months =
        e.read_months * io_multiple * throttle_factor;
    std::printf("%-22s %12.2f %15.2f %15.2f\n", s.name.c_str(),
                e.read_months, e.practical_months, engine_months);
    std::printf(
        "JSON {\"bench\":\"migration_model\",\"site\":\"%s\","
        "\"read_months\":%.2f,\"practical_months\":%.2f,"
        "\"engine_months\":%.2f,\"io_multiple\":%.3f,"
        "\"throttle_factor\":%.3f}\n",
        s.name.c_str(), e.read_months, e.practical_months, engine_months,
        io_multiple, throttle_factor);
  }
  std::printf(
      "\nThe engine's measured pass moves MORE than the paper's x4: the "
      "x2 reserve\nshows up as measured, but the write leg pays the full "
      "RS n/k blowup and the\nstaged protocol's read leg — "
      "crash-consistency is not free, it is bytes.\n");
  return 0;
}
