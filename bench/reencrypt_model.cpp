// §3.2's re-encryption arithmetic, regenerated — with this library's own
// measured cipher throughput plugged into the CPU-bound column.
//
// For each archive the paper cites, we print: raw read-out time, the
// practical estimate after the paper's two penalties (write-back+verify
// ~2x, reserved foreground capacity ~2x), and the crypto-compute bound
// using the AES-256-CTR throughput measured on this machine. Then we
// extrapolate to the exabyte/zettabyte archives the paper envisions.
#include <chrono>
#include <cstdio>
#include <vector>

#include "archive/cost.h"
#include "crypto/aes.h"
#include "util/rng.h"

namespace {

// Measures this build's AES-256-CTR throughput in MB/s.
double measure_aes_mbps() {
  using namespace aegis;
  SimRng rng(1);
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(16);
  Bytes buf = rng.bytes(4 << 20);  // 4 MiB

  // Warm-up then timed passes.
  aes_ctr_inplace(key, iv, MutByteView(buf.data(), buf.size()));
  const auto start = std::chrono::steady_clock::now();
  int passes = 0;
  for (; passes < 8; ++passes)
    aes_ctr_inplace(key, iv, MutByteView(buf.data(), buf.size()));
  const auto end = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(end - start).count();
  return (static_cast<double>(buf.size()) * passes / 1.0e6) / secs;
}

}  // namespace

int main() {
  using namespace aegis;

  const double aes_mbps = measure_aes_mbps();
  // A production archive would run hardware AES across many cores; model
  // 64 parallel streams at 10x our table-based software speed.
  const double hw_mbps = aes_mbps * 10.0;
  const unsigned streams = 64;

  std::printf(
      "Whole-archive re-encryption time model (paper Sec. 3.2)\n"
      "measured AES-256-CTR (this build, 1 core): %.1f MB/s; CPU model: "
      "%u streams x %.0f MB/s\n\n",
      aes_mbps, streams, hw_mbps);

  std::printf("%-22s %10s %11s %12s %15s %15s\n", "archive", "PB",
              "TB/day", "read(mo)", "practical(mo)", "CPU-bound(mo)");

  std::vector<SiteModel> sites = SiteModel::paper_sites();
  sites.push_back(SiteModel::Exabyte());
  sites.push_back(SiteModel::Zettabyte());

  for (const SiteModel& s : sites) {
    const ReencryptionEstimate e =
        estimate_reencryption(s, 2.0, 2.0, hw_mbps, streams);
    std::printf("%-22s %10.1f %11.0f %12.2f %15.2f %15.2f\n",
                s.name.c_str(), s.capacity_tb / 1000.0, s.read_tb_per_day,
                e.read_months, e.practical_months, e.cpu_bound_months);
  }

  std::printf(
      "\nPaper's printed read-out values: HPSS 6.75 mo, MARS 10.35 mo, "
      "EOS 8.3 mo,\nPergamum 0.76 mo (rounding/source-snapshot deltas "
      "documented in EXPERIMENTS.md).\n"
      "Practical column applies the paper's x2 write/verify and x2 "
      "reserved-capacity\npenalties: months become years — during which "
      "all not-yet-re-encrypted data\nremains under the broken cipher, "
      "and nothing helps data already harvested.\n");
  return 0;
}
