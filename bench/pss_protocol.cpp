// Wire-level cost of distributed verifiable proactive secret sharing —
// the §3.2 renewal-cost argument measured on an actual message-passing
// protocol run (sealed point-to-point sub-shares, broadcast commitments,
// accusations) instead of an analytic count.
//
// Sweeps the shareholder count and compares honest rounds with rounds
// under Byzantine dealers; the commitment broadcasts dominate (t curve
// points per dealer to n-1 peers), which is the verifiability premium on
// top of Herzberg's bare n(n-1) sub-shares.
#include <chrono>
#include <cstdio>

#include "crypto/chacha20.h"
#include "protocol/pss.h"

int main() {
  using namespace aegis;

  std::printf(
      "Distributed verifiable PSS refresh: wire cost per round (one "
      "256-bit secret)\n\n%-10s %10s %12s %12s %12s %10s\n",
      "(t,n)", "messages", "payload B", "wire B", "accused", "ms");

  struct Geometry { unsigned t, n; };
  for (const auto [t, n] :
       {Geometry{2, 3}, Geometry{3, 5}, Geometry{4, 7}, Geometry{5, 9},
        Geometry{7, 13}}) {
    for (const bool byzantine : {false, true}) {
      Cluster cluster(n, ChannelKind::kPlain, 1);
      MessageBus bus(cluster, ChannelKind::kTls);
      ChaChaRng rng(1);

      const U256 secret(123456789);
      const VssDealing d = pedersen_deal(secret, t, n, rng);
      std::vector<PssParticipant> nodes;
      for (NodeId i = 0; i < n; ++i)
        nodes.emplace_back(i, t, n, d.shares[i], d.commitments);
      if (byzantine) nodes[0].set_byzantine(true);

      const auto start = std::chrono::steady_clock::now();
      const PssRoundResult r = run_pss_refresh(nodes, bus, rng);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();

      // Wire bytes include channel framing: read from the wiretap.
      std::uint64_t wire = 0;
      for (const auto& rec : cluster.wiretap())
        for (const auto& f : rec.transcript.frames) wire += f.size();

      char geo[16];
      std::snprintf(geo, sizeof geo, "(%u,%u)%s", t, n,
                    byzantine ? "*" : " ");
      std::printf("%-10s %10llu %12llu %12llu %12zu %10.1f\n", geo,
                  static_cast<unsigned long long>(r.messages),
                  static_cast<unsigned long long>(r.bytes),
                  static_cast<unsigned long long>(wire),
                  r.accused.size(), ms);
    }
  }

  std::printf(
      "\n(* = one Byzantine dealer: detected, accused by every honest "
      "holder, excluded.)\n"
      "Shape: messages grow as 2n(n-1) plus n(n-1) accusation broadcasts "
      "per cheater;\nper-object traffic is dozens of KiB for one 32-byte "
      "secret — multiply by an\narchive's object count and the renewal "
      "pass rivals whole-archive re-encryption\n(bench/refresh_cost "
      "scales this to bulk data).\n");
  return 0;
}
